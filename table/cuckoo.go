package table

import (
	"fmt"
	"math/bits"

	"repro/hashfn"
	"repro/internal/prng"
)

// DefaultCuckooWays is the number of subtables (and hash functions) used by
// NewCuckoo: the paper's CuckooH4, the only traditional Cuckoo variant whose
// achievable load factor (~96.7%) covers the paper's sweep up to 90% (§2.5,
// §5.2).
const DefaultCuckooWays = 4

// DefaultMaxKicks bounds the displacement chain of one insertion before the
// table gives up and rehashes with freshly drawn hash functions.
const DefaultMaxKicks = 500

// Cuckoo is k-ary Cuckoo hashing (§2.5): k subtables T_0..T_{k-1}, each with
// its own hash function; every key resides in exactly one of its k candidate
// slots, so lookups probe at most k locations regardless of load factor.
// Inserts may trigger chains of displacements ("kicks"); a chain longer than
// maxKicks aborts into a full rehash with new hash functions, exactly as the
// paper describes. Cuckoo hashing is sensitive to weak hash functions during
// construction, but once built, its lookups are insensitive to both load
// factor and unsuccessful-probe ratio — the behaviour the paper observes at
// load factors >= 80%.
type Cuckoo struct {
	slots    []pair // k contiguous subtables of subCap slots each
	ways     int
	subCap   uint64
	size     int
	fns      []hashfn.Function
	family   hashfn.Family
	seed     uint64
	gen      uint64 // function generation; bumped on every redraw
	maxLF    float64
	maxKicks int
	rng      prng.SplitMix64
	sent     sentinels

	rehashes   int
	totalKicks uint64
	grows      int
	// fixedWall memoizes the occupancy at which a growth-disabled insert
	// was last refused (0 = none): while set, further inserts
	// short-circuit to ErrFull instead of re-paying insertFixed's rebuild
	// attempts. Any mutation that could change feasibility — a delete, or
	// any rebuild — clears it.
	fixedWall int
	batchState
}

var _ Table = (*Cuckoo)(nil)

// NewCuckoo returns an empty 4-ary Cuckoo table configured by cfg.
func NewCuckoo(cfg Config) *Cuckoo { return NewCuckooK(cfg, DefaultCuckooWays) }

// NewCuckooK returns an empty k-ary Cuckoo table, k in [2, 8]. Subtables
// need not have power-of-two capacity: candidate slots are derived with
// multiply-shift range reduction, so k = 3 (the paper's ~88%-load-factor
// variant) works too.
func NewCuckooK(cfg Config, k int) *Cuckoo {
	if k < 2 || k > 8 {
		panic(fmt.Sprintf("table: cuckoo ways must be in [2, 8]; got %d", k))
	}
	cfg = cfg.withDefaults()
	if cfg.InitialCapacity < 8*k {
		cfg.InitialCapacity = 8 * k
	}
	t := &Cuckoo{
		ways:     k,
		family:   cfg.Family,
		seed:     cfg.Seed,
		maxLF:    cfg.MaxLoadFactor,
		maxKicks: DefaultMaxKicks,
		rng:      *prng.NewSplitMix64(cfg.Seed ^ 0xc0c0c0c0c0c0c0c0),
	}
	t.drawFunctions()
	t.init(cfg.InitialCapacity)
	return t
}

// drawFunctions draws the current generation of k hash functions.
func (t *Cuckoo) drawFunctions() {
	t.fns = make([]hashfn.Function, t.ways)
	for j := range t.fns {
		t.fns[j] = t.family.New(prng.Mix(t.seed ^ (t.gen*uint64(t.ways) + uint64(j) + 1)))
	}
}

func (t *Cuckoo) init(capacity int) {
	// Round the requested total down to a multiple of k so the flat array
	// splits into k equal subtables (for power-of-two k this is exact).
	sub := capacity / t.ways
	if sub < 2 {
		sub = 2
	}
	t.subCap = uint64(sub)
	t.slots = make([]pair, sub*t.ways)
	t.size = 0
	t.fixedWall = 0
}

// pos returns the flat index of key's candidate slot in subtable j. The
// in-subtable index is derived with Lemire's multiply-shift reduction
// (high 64 bits of hash x subCap), which maps the full hash uniformly onto
// [0, subCap) for any subtable size — this is what lets k = 3 work — and
// for the multiplicative families weights exactly the high-quality top
// bits.
func (t *Cuckoo) pos(j int, key uint64) int {
	hi, _ := bits.Mul64(t.fns[j].Hash(key), t.subCap)
	return j*int(t.subCap) + int(hi)
}

// Name implements Map.
func (t *Cuckoo) Name() string { return fmt.Sprintf("CuckooH%d", t.ways) }

// HashName returns the hash-function family name.
func (t *Cuckoo) HashName() string { return t.family.Name() }

// Ways returns the number of subtables k.
func (t *Cuckoo) Ways() int { return t.ways }

// Len implements Map.
func (t *Cuckoo) Len() int { return t.size + t.sent.len() }

// Capacity implements Map.
func (t *Cuckoo) Capacity() int { return len(t.slots) }

// LoadFactor implements Map.
func (t *Cuckoo) LoadFactor() float64 {
	return float64(t.Len()) / float64(len(t.slots))
}

// MemoryFootprint implements Map.
func (t *Cuckoo) MemoryFootprint() uint64 {
	return uint64(len(t.slots)) * pairBytes
}

// Rehashes returns how many full rehashes (function redraws) construction
// has needed so far; the paper's construction-failure discussion (§2.5).
func (t *Cuckoo) Rehashes() int { return t.rehashes }

// TotalKicks returns the total number of displacement steps performed by
// all inserts, the cost driver behind Cuckoo's slow writes (§5.2).
func (t *Cuckoo) TotalKicks() uint64 { return t.totalKicks }

// Get implements Map: at most k probes, one per subtable.
func (t *Cuckoo) Get(key uint64) (uint64, bool) {
	if isSentinelKey(key) {
		return t.sent.get(key)
	}
	for j := 0; j < t.ways; j++ {
		s := &t.slots[t.pos(j, key)]
		if s.key == key {
			return s.val, true
		}
	}
	return 0, false
}

// Put implements Map. On a full growth-disabled table it grows once
// instead of failing; use TryPut for the ErrFull-reporting contract.
func (t *Cuckoo) Put(key, val uint64) bool {
	if isSentinelKey(key) {
		return t.sent.put(key, val)
	}
	// Update in place if present.
	for j := 0; j < t.ways; j++ {
		s := &t.slots[t.pos(j, key)]
		if s.key == key {
			s.val = val
			return false
		}
	}
	t.maybeGrow()
	if t.maxLF == 0 && t.size >= len(t.slots) {
		t.growTo(len(t.slots) * 2)
	}
	t.insertFresh(pair{key, val})
	return true
}

// rmwHashed is the single-probe read-modify-write primitive; see
// LinearProbing.rmwHashed. Cuckoo derives its k candidate slots from its
// own per-subtable functions, so the precomputed hash is unused.
func (t *Cuckoo) rmwHashed(key, val, _ uint64, overwrite bool, fn func(uint64, bool) uint64) (uint64, bool, error) {
	if isSentinelKey(key) {
		v, existed := t.sent.rmw(key, val, overwrite, fn)
		return v, existed, nil
	}
	for j := 0; j < t.ways; j++ {
		s := &t.slots[t.pos(j, key)]
		if s.key == key {
			if fn != nil {
				s.val = fn(s.val, true)
			} else if overwrite {
				s.val = val
			}
			return s.val, true, nil
		}
	}
	if fn == nil {
		// Value known upfront and no caller side effects: place directly.
		if err := t.placeFresh(pair{key, val}); err != nil {
			return 0, false, err
		}
		return val, false, nil
	}
	// Upsert: the callback may have side effects (agg folds state through
	// it), so place a hole first and invoke fn only once the insert is
	// guaranteed, matching the other schemes' fn-after-room-check order.
	if err := t.placeFresh(pair{key, 0}); err != nil {
		return 0, false, err
	}
	v := fn(0, false)
	for j := 0; j < t.ways; j++ {
		if s := &t.slots[t.pos(j, key)]; s.key == key {
			s.val = v
			break
		}
	}
	return v, false, nil
}

// placeFresh inserts an entry known to be absent, honouring the growth
// contract: with growth disabled the fixed pre-allocated capacity is hard
// — a key the capacity cannot place reports ErrFull instead of
// insertFresh's doubling fallback. After a refusal, further inserts
// short-circuit to ErrFull in O(1) until a delete frees a slot (which
// invalidates the memo), so a caller looping TryPut against a full table
// pays insertFixed's rebuild attempts once, not per key.
func (t *Cuckoo) placeFresh(cur pair) error {
	if t.maxLF == 0 {
		if t.size >= len(t.slots) {
			return errFull(t.Name(), t.size, len(t.slots))
		}
		if t.fixedWall > 0 && !t.emptyCandidate(cur.key) {
			// A prior insert was refused at this occupancy and this key
			// has no free candidate slot: refuse in O(k) rather than
			// re-paying the rebuild attempts. Keys with a free candidate
			// bypass the memo — they place in one sweep.
			return errFull(t.Name(), t.size, len(t.slots))
		}
		if !t.insertFixed(cur) {
			t.fixedWall = t.size
			return errFull(t.Name(), t.size, len(t.slots))
		}
		return nil
	}
	t.maybeGrow()
	t.insertFresh(cur)
	return nil
}

// emptyCandidate reports whether any of key's k candidate slots is free.
func (t *Cuckoo) emptyCandidate(key uint64) bool {
	for j := 0; j < t.ways; j++ {
		if t.slots[t.pos(j, key)].key == emptyKey {
			return true
		}
	}
	return false
}

// insertFixed inserts an entry known to be absent WITHOUT ever growing:
// a failed kick chain redraws the hash functions and rebuilds at the same
// capacity a bounded number of times (the paper's construction-failure
// handling, minus the doubling last resort). When even that fails — the
// occupancy is past the scheme's feasibility threshold (~96.7% for k=4,
// §2.5) — it restores a table holding exactly the prior entries and
// reports false.
func (t *Cuckoo) insertFixed(cur pair) bool {
	newKey := cur.key
	left, ok := t.kickInsert(cur)
	if ok {
		t.size++
		return true
	}
	entries := make([]pair, 0, t.size+1)
	for i := range t.slots {
		if t.slots[i].key != emptyKey {
			entries = append(entries, t.slots[i])
		}
	}
	entries = append(entries, left)
	const fixedAttempts = 16
	for a := 0; a < fixedAttempts; a++ {
		t.gen++
		t.rehashes++
		t.drawFunctions()
		t.init(len(t.slots))
		if t.buildFrom(entries) {
			t.size = len(entries)
			return true
		}
	}
	// The new entry does not fit this capacity. Rebuild without it; the
	// prior configuration was feasible (it existed), so a function redraw
	// succeeds with overwhelming probability per attempt.
	prior := entries[:0]
	for _, e := range entries {
		if e.key != newKey {
			prior = append(prior, e)
		}
	}
	for {
		t.gen++
		t.rehashes++
		t.drawFunctions()
		t.init(len(t.slots))
		if t.buildFrom(prior) {
			t.size = len(prior)
			return false
		}
	}
}

// insertFresh inserts an entry known to be absent, rehashing (and as a last
// resort growing) until it fits. A successful placement proves the layout
// can still accept entries, so it clears the fixedWall refusal memo.
func (t *Cuckoo) insertFresh(cur pair) {
	left, ok := t.kickInsert(cur)
	if ok {
		t.size++
		t.fixedWall = 0
		return
	}
	// Kick chain exceeded maxKicks: redraw functions and rebuild with the
	// homeless entry carried along (rehashAll places it and fixes size).
	t.rehashAll(&left)
}

// kickInsert runs the displacement loop for cur. On success it returns
// (zero, true); on failure it returns the entry left homeless and false.
func (t *Cuckoo) kickInsert(cur pair) (pair, bool) {
	for kicks := 0; kicks <= t.maxKicks; kicks++ {
		// First give cur a chance at any empty candidate slot.
		for j := 0; j < t.ways; j++ {
			s := &t.slots[t.pos(j, cur.key)]
			if s.key == emptyKey {
				*s = cur
				return pair{}, true
			}
		}
		// All candidates occupied: evict from a randomly chosen subtable
		// (a random walk avoids the short cycles a fixed rotation can
		// fall into on k-ary tables).
		j := int(t.rng.Next() % uint64(t.ways))
		p := t.pos(j, cur.key)
		cur, t.slots[p] = t.slots[p], cur
		t.totalKicks++
	}
	return cur, false
}

// rehashAll redraws the hash functions and rebuilds the table, carrying the
// homeless entry pending. After several failed attempts at the same
// capacity it doubles the table as a last resort so that construction
// always terminates.
func (t *Cuckoo) rehashAll(pending *pair) {
	entries := make([]pair, 0, t.size+1)
	for i := range t.slots {
		if t.slots[i].key != emptyKey {
			entries = append(entries, t.slots[i])
		}
	}
	if pending.key != emptyKey {
		entries = append(entries, *pending)
		pending.key = emptyKey
	}
	capacity := len(t.slots)
	const attemptsPerCapacity = 16
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%attemptsPerCapacity == 0 {
			capacity *= 2
		}
		t.gen++
		t.rehashes++
		t.drawFunctions()
		t.init(capacity)
		if t.buildFrom(entries) {
			t.size = len(entries)
			return
		}
	}
}

// buildFrom inserts all entries, reporting failure instead of recursing
// into another rehash.
func (t *Cuckoo) buildFrom(entries []pair) bool {
	for _, e := range entries {
		if _, ok := t.kickInsert(e); !ok {
			return false
		}
	}
	return true
}

// Delete implements Map: Cuckoo needs no tombstones, slots are simply
// cleared.
func (t *Cuckoo) Delete(key uint64) bool {
	if isSentinelKey(key) {
		return t.sent.delete(key)
	}
	for j := 0; j < t.ways; j++ {
		s := &t.slots[t.pos(j, key)]
		if s.key == key {
			*s = pair{}
			t.size--
			t.fixedWall = 0 // freed a slot: inserts may be feasible again
			return true
		}
	}
	return false
}

func (t *Cuckoo) maybeGrow() {
	if t.maxLF == 0 {
		return
	}
	if t.size+1 <= int(t.maxLF*float64(len(t.slots))) {
		return
	}
	t.growTo(len(t.slots) * 2)
}

// growTo rebuilds the table at the given total capacity, redrawing hash
// functions on construction failure.
func (t *Cuckoo) growTo(capacity int) {
	t.grows++
	entries := make([]pair, 0, t.size)
	for i := range t.slots {
		if t.slots[i].key != emptyKey {
			entries = append(entries, t.slots[i])
		}
	}
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			t.gen++
			t.rehashes++
			t.drawFunctions()
		}
		t.init(capacity)
		if t.buildFrom(entries) {
			t.size = len(entries)
			return
		}
	}
}

// Range implements Map.
func (t *Cuckoo) Range(fn func(key, val uint64) bool) {
	if !t.sent.rng(fn) {
		return
	}
	for i := range t.slots {
		if t.slots[i].key == emptyKey {
			continue
		}
		if !fn(t.slots[i].key, t.slots[i].val) {
			return
		}
	}
}

// SubtableOccupancy returns the number of live entries per subtable, useful
// for verifying that the k functions spread load evenly.
func (t *Cuckoo) SubtableOccupancy() []int {
	occ := make([]int, t.ways)
	for i := range t.slots {
		if t.slots[i].key != emptyKey {
			occ[uint64(i)/t.subCap]++
		}
	}
	return occ
}
