package table

// The policy-driven open-addressing probe kernel. kern implements the
// complete Table surface — scalar point operations, the single-probe
// read-modify-write primitive, the group-interleaved batch walks, the
// error-based mutations, iterators and the diagnostics Stats feeds on —
// exactly once, against the policy dimensions of policy.go. A scheme is a
// thin instantiation:
//
//	LinearProbing    = kern(aosLayout, linearSeq, noDisplace)
//	LinearProbingSoA = kern(soaLayout, linearSeq, noDisplace)
//	QuadraticProbing = kern(aosLayout, quadSeq,   noDisplace)
//	RobinHood        = kern(aosLayout, linearSeq, robinDisplace)
//	DoubleHashing    = kern(aosLayout, dhSeq,     noDisplace)
//
// The policies are consulted once, at construction: probe stepping
// reduces to si += sstep; sstep += sinc (see probeSpec), slot access to
// direct indexing of the hoisted column views (see colView), and the
// remaining behavioral switches (bounded, contiguous, robin) to
// loop-invariant booleans the hot loops keep in registers. The shared
// loops therefore compile to the same per-slot instruction mix as the
// hand-written per-scheme copies they replaced (formerly spread over
// linear.go, soa.go, quadratic.go, robinhood.go, batched_linear.go,
// batched_probe.go and rmw.go).
//
// # Scaled slot cursors
//
// Hot loops address slots through their word index in the key column —
// si = slot << ks — rather than the slot number itself: kc[si] is the
// slot's key and vc[si|ks] its value under either layout, reached with
// the ordinary x8 addressing mode. Keeping the cursor pre-scaled keeps
// the variable shift off the load's address-computation critical path,
// which is what per-probe latency is made of; the probe geometry scales
// along with it (smask, sone, sinc, slineEnd are the mask, unit step,
// step increment and line-end test in word units). A 64-byte cache line
// is always 8 words of key column (4 AoS slots or 8 SoA keys), so the
// batch walk's line-crossing test is the constant si&^7.
//
// Sentinel handling (keys 0 and 2^64-1 routed to side fields), the
// one-empty-slot invariant of unbounded probe sequences, the ErrFull
// contract of growth-disabled tables, and the legacy Map grow-once
// behavior all live here, shared by every scheme.

import (
	"iter"

	"repro/hashfn"
)

// lineWordsM masks the within-cache-line part of a scaled cursor: 8
// words of key column per 64-byte line under either layout.
const lineWordsM = 8 - 1

// kern is the shared open-addressing core. Its fields are the union the
// former schemes each carried — slot storage (as a column view), derived
// hash geometry, occupancy counters, the hash function, growth
// configuration, sentinel side fields and the lazily allocated batch
// buffer — plus the hoisted policy state.
type kern struct {
	colView        // slot storage; also exposes slots / keys / vals to in-package diagnostics
	layout  layoutPolicy
	perLine uint64 // slots per 64-byte key-column cache line (4 AoS, 8 SoA)

	// Hoisted probe policy: the initial step of a key's sequence is
	// (hash & strideMask) | 1 slots, and the step grows by stepInc after
	// every probe. strideMask is 0 except under double hashing, where it
	// is the table mask (recomputed on growth).
	strideMask uint64
	stepInc    uint64
	lowStride  bool // probeSpec.lowBitsStride; strideMask follows the mask
	bounded    bool // probeSpec.bounded
	contig     bool // probeSpec.contiguous
	robin      bool // displacePolicy.robinHood

	// Scaled probe geometry (word units, see the package comment):
	// smask wraps a scaled cursor, sone is one slot, sinc the scaled
	// step increment, slineEnd the scaled line-end test mask.
	smask    uint64
	sone     uint64
	sinc     uint64
	slineEnd uint64
	sshift   uint64 // shift - ks: scaled home cursor = hash>>sshift &^ (sone-1)
	// rEnd gates the Robin Hood early abort in the scalar lookup
	// without a flag register: it equals slineEnd under robinDisplace
	// and ^0 otherwise — cursors never exceed smask, so ^0 can never
	// match and the branch predicts away for the other schemes.
	rEnd uint64

	shift  uint // 64 - log2(capacity); home = hash >> shift
	mask   uint64
	size   int // live entries in slots (sentinel-keyed entries excluded)
	tombs  int // tombstoned slots (always 0 under robinDisplace)
	fn     hashfn.Function
	maxLF  float64
	grows  int    // rehash events (growth and in-place), for Stats
	scheme string // paper-style scheme name, e.g. "LP"
	sent   sentinels
	batchState
}

// setup configures a zeroed kernel from cfg and the scheme's three
// policies; name is the paper-style scheme name returned by Name.
func (c *kern) setup(cfg Config, name string, lay layoutPolicy, pp probePolicy, dp displacePolicy) {
	cfg = cfg.withDefaults()
	c.maxLF = cfg.MaxLoadFactor
	c.scheme = name
	c.fn = cfg.Family.New(cfg.Seed)
	c.layout = lay
	c.perLine = lay.perLine()
	ps := pp.probe()
	c.stepInc = ps.inc
	c.lowStride = ps.lowBitsStride
	c.bounded = ps.bounded
	c.contig = ps.contiguous
	c.robin = dp.robinHood()
	c.init(cfg.InitialCapacity)
}

func (c *kern) init(capacity int) {
	c.colView = c.layout.alloc(capacity)
	c.shift = 64 - log2(capacity)
	c.mask = uint64(capacity - 1)
	c.strideMask = 0
	if c.lowStride {
		c.strideMask = c.mask
	}
	c.smask = c.mask << c.ks
	c.sone = 1 << c.ks
	c.sshift = uint64(c.shift) - c.ks
	c.sinc = c.stepInc << c.ks
	c.slineEnd = (c.perLine - 1) << c.ks
	c.rEnd = ^uint64(0)
	if c.robin {
		c.rEnd = c.slineEnd
	}
	c.size = 0
	c.tombs = 0
}

// scursor derives a key's probe start state from its hash code: the
// scaled home cursor and initial scaled step. The &63 lets the compiler
// emit a bare shift (no >=64 guard), and folding the cursor scaling into
// the home shift plus a low-bit clear keeps the whole derivation a
// handful of instructions — scalar lookups are short enough that the
// out-of-order window overlaps consecutive calls, so every prologue
// instruction costs throughput.
func (c *kern) scursor(hash uint64) (si, sstep uint64) {
	return (hash >> (c.sshift & 63)) &^ (c.sone - 1), ((hash & c.strideMask) | 1) * c.sone
}

// keyAtS, valAtS, setAtS and setValAtS address a slot by its scaled
// cursor; they inline to direct array indexing under either layout.
func (c *kern) keyAtS(si uint64) uint64 { return c.kc[si] }
func (c *kern) valAtS(si uint64) uint64 { return c.vc[si|c.ks] }
func (c *kern) setValAtS(si, v uint64)  { c.vc[si|c.ks] = v }
func (c *kern) setAtS(si, k, v uint64) {
	c.kc[si] = k
	c.vc[si|c.ks] = v
}

// keyAt and valAt address a slot by its slot number, for the
// diagnostics and iteration paths.
func (c *kern) keyAt(i uint64) uint64 { return c.kc[i<<c.ks] }
func (c *kern) valAt(i uint64) uint64 { return c.vc[(i<<c.ks)|c.ks] }

// slotCount returns the capacity in slots.
func (c *kern) slotCount() int { return len(c.kc) >> c.ks }

// home returns the optimal slot of key: the paper's h(k, 0).
func (c *kern) home(key uint64) uint64 { return c.fn.Hash(key) >> (c.shift & 63) }

// homeS returns the scaled cursor of key's optimal slot.
func (c *kern) homeS(key uint64) uint64 {
	return (c.fn.Hash(key) >> (c.sshift & 63)) &^ (c.sone - 1)
}

// sdisp converts the scaled cursor distance si-from into a displacement
// in slots.
func (c *kern) sdisp(si, from uint64) uint64 { return ((si - from) & c.smask) >> c.ks }

// Name implements Map, returning the scheme name used in the paper.
func (c *kern) Name() string { return c.scheme }

// HashName returns the hash-function family name (e.g. "Mult").
func (c *kern) HashName() string { return c.fn.Name() }

// Len implements Map.
func (c *kern) Len() int { return c.size + c.sent.len() }

// Capacity implements Map.
func (c *kern) Capacity() int { return c.slotCount() }

// LoadFactor implements Map.
func (c *kern) LoadFactor() float64 {
	return float64(c.Len()) / float64(c.slotCount())
}

// MemoryFootprint implements Map: capacity x 16 bytes under either layout.
func (c *kern) MemoryFootprint() uint64 { return uint64(c.slotCount()) * pairBytes }

// Tombstones returns the number of tombstoned slots (diagnostics; always
// zero under Robin Hood displacement, which deletes by backward shift).
func (c *kern) Tombstones() int { return c.tombs }

// Rehashes returns the number of rehash events (growth and in-place) so
// far, for Stats.
func (c *kern) Rehashes() int { return c.grows }

// fullSweepOnly reports that probe loops may not rely on hitting a truly
// empty slot to terminate: the table is completely occupied (live +
// tombstones), which only a bounded sequence permits. The batch walks
// are written for the common case — at least one empty slot, which a
// permutation sequence is guaranteed to find — and divert to the scalar
// lookups in this degenerate state; the scalar loops handle it in place
// with their cursor-cycle termination check.
func (c *kern) fullSweepOnly() bool {
	return c.bounded && c.size+c.tombs == c.slotCount()
}

// Get implements Map, including the Robin Hood cache-line-granular early
// abort when the displacement policy enables it.
func (c *kern) Get(key uint64) (uint64, bool) {
	if isSentinelKey(key) {
		return c.sent.get(key)
	}
	hash := c.fn.Hash(key)
	kc, smask := c.kc, c.smask
	sinc, rEnd := c.sinc, c.rEnd
	si, sstep := c.scursor(hash)
	si0 := si
	for {
		k := kc[si]
		if k == key {
			return c.valAtS(si), true
		}
		if k == emptyKey {
			return 0, false
		}
		// Early abort, checked once at the end of each cache line
		// (§2.4); see robinAbort.
		if si&rEnd == rEnd && c.robinAbort(si, si0, k) {
			return 0, false
		}
		si = (si + sstep) & smask
		sstep += sinc
		if si == si0 {
			// Cursor cycle: every slot examined, none empty — the
			// fully-occupied bounded-sequence miss. (The triangular
			// sequence closes its cycle only on a second sweep;
			// nothing but this degenerate state ever pays that.)
			return 0, false
		}
	}
}

// robinAbort reports whether the Robin Hood ordering proves the probed
// key absent at cursor si: the resident k there is closer to its home
// than the probed key — whose sequence started at cursor si0 — is to its
// own (§2.4); a poorer key would have robbed the slot during insertion.
// The probed key's displacement is its cursor distance from home, since
// displacement-ordered sequences are linear. Kept out of line so the
// hash-interface call it makes does not sit inside the probe loops'
// register allocation; it runs at most once per cache line.
//
//go:noinline
func (c *kern) robinAbort(si, si0, k uint64) bool {
	return c.sdisp(si, c.homeS(k)) < c.sdisp(si, si0)
}

// Put implements Map. On a full growth-disabled table it grows once
// instead of failing; use TryPut for the ErrFull-reporting contract.
func (c *kern) Put(key, val uint64) bool {
	if isSentinelKey(key) {
		return c.sent.put(key, val)
	}
	return c.mustPutHashed(key, val, c.fn.Hash(key))
}

// mustPutHashed is the insert primitive of the legacy Map contract: a
// full growth-disabled table grows once instead of failing.
func (c *kern) mustPutHashed(key, val, hash uint64) bool {
	_, existed, err := c.rmwHashed(key, val, hash, true, nil)
	if err != nil {
		// Growth disabled and full, and the key is new (rmwHashed
		// updates existing keys in place without needing room): grow
		// once.
		c.rehashTo(c.slotCount() * 2)
		_, existed, _ = c.rmwHashed(key, val, hash, true, nil)
	}
	return !existed
}

// rmwHashed is the single-probe read-modify-write primitive behind
// GetOrPut, Upsert and the error-based put: one probe sequence finds the
// key or its insertion point. With fn nil and overwrite false it is
// GetOrPut(val); with overwrite true it is a plain put; with fn set it is
// Upsert(fn). It returns the value now stored and whether the key already
// existed. The growth-disabled full check fires only when an insert is
// actually needed, so operations that resolve to an existing key keep
// working on a full table.
//
// Fullness itself follows the probe policy: bounded sequences detect it
// naturally at the end of their full-table sweep (and may therefore fill
// to 100% occupancy), while unbounded ones preserve one truly empty slot
// for probe termination and refuse the last insert.
func (c *kern) rmwHashed(key, val, hash uint64, overwrite bool, fn func(uint64, bool) uint64) (uint64, bool, error) {
	if isSentinelKey(key) {
		v, existed := c.sent.rmw(key, val, overwrite, fn)
		return v, existed, nil
	}
	if c.maxLF != 0 {
		c.maybeGrow()
	} else if c.tombs > 0 {
		// Shed tombstone pressure so the probe below is guaranteed a
		// truly empty slot to terminate on (bounded sequences need that
		// only once tombstones block the very last slot).
		if c.bounded {
			if c.size+c.tombs == c.slotCount() {
				c.rehashTo(c.slotCount())
			}
		} else if c.size+c.tombs+1 >= c.slotCount() {
			c.rehashTo(c.slotCount())
		}
	}
	kc, smask := c.kc, c.smask
	robin, sinc := c.robin, c.sinc
	si, sstep := c.scursor(hash)
	si0 := si
	firstTomb := -1
	for {
		k := kc[si]
		if k == key {
			if fn != nil {
				c.setValAtS(si, fn(c.valAtS(si), true))
			} else if overwrite {
				c.setValAtS(si, val)
			}
			return c.valAtS(si), true, nil
		}
		if k == emptyKey {
			if !c.bounded && c.maxLF == 0 && c.size+1 >= c.slotCount() {
				return 0, false, errFull(c.scheme, c.size, c.slotCount())
			}
			v := val
			if fn != nil {
				v = fn(0, false)
			}
			if firstTomb >= 0 {
				c.setAtS(uint64(firstTomb), key, v)
				c.tombs--
			} else {
				c.setAtS(si, key, v)
			}
			c.size++
			return v, false, nil
		}
		if robin {
			if de := c.sdisp(si, c.homeS(k)); de < c.sdisp(si, si0) {
				// The resident is richer than us: our key cannot lie
				// further on, so it is absent. Take this slot and push
				// the rest of the displacement chain down, the
				// standard Robin Hood insert.
				if c.maxLF == 0 && c.size+1 >= c.slotCount() {
					return 0, false, errFull(c.scheme, c.size, c.slotCount())
				}
				v := val
				if fn != nil {
					v = fn(0, false)
				}
				cur := pair{k, c.valAtS(si)}
				c.setAtS(si, key, v)
				c.size++
				c.shiftChain(cur, (si+c.sone)&smask, de+1)
				return v, false, nil
			}
		} else if k == tombKey && firstTomb < 0 {
			firstTomb = int(si)
		}
		si = (si + sstep) & smask
		sstep += sinc
		if si == si0 {
			// Cursor cycle: the full sweep examined every slot and
			// found none empty. Recycle the first tombstone seen, or
			// report the table full.
			if firstTomb >= 0 {
				v := val
				if fn != nil {
					v = fn(0, false)
				}
				c.setAtS(uint64(firstTomb), key, v)
				c.tombs--
				c.size++
				return v, false, nil
			}
			return 0, false, errFull(c.scheme, c.size, c.slotCount())
		}
	}
}

// shiftChain continues a Robin Hood displacement chain: cur was just
// evicted from the slot before cursor si and sits at displacement d
// there.
func (c *kern) shiftChain(cur pair, si, d uint64) {
	for {
		k := c.keyAtS(si)
		if k == emptyKey {
			c.setAtS(si, cur.key, cur.val)
			return
		}
		if de := c.sdisp(si, c.homeS(k)); de < d {
			evicted := pair{k, c.valAtS(si)}
			c.setAtS(si, cur.key, cur.val)
			cur = evicted
			d = de
		}
		si = (si + c.sone) & c.smask
		d++
	}
}

// Delete implements Map with the policy-derived strategy: backward shift
// under Robin Hood displacement, the optimized tombstone placement on
// contiguous sequences, and unconditional tombstones otherwise.
func (c *kern) Delete(key uint64) bool {
	if isSentinelKey(key) {
		return c.sent.delete(key)
	}
	if c.robin {
		return c.deleteBackshift(key)
	}
	hash := c.fn.Hash(key)
	kc, smask := c.kc, c.smask
	contig := c.contig
	sinc, sone := c.sinc, c.sone
	si, sstep := c.scursor(hash)
	si0 := si
	for {
		k := kc[si]
		if k == key {
			if contig {
				next := (si + sone) & smask
				if c.keyAtS(next) == emptyKey {
					// Cluster ends here: no tombstone needed. Clearing
					// this slot may also strand tombstones directly
					// before it at the new cluster end; clear those
					// too.
					c.setAtS(si, emptyKey, 0)
					j := (si - sone) & smask
					for c.keyAtS(j) == tombKey {
						c.setAtS(j, emptyKey, 0)
						c.tombs--
						j = (j - sone) & smask
					}
				} else {
					c.setAtS(si, tombKey, 0)
					c.tombs++
				}
			} else {
				// Probe sequences through a slot are not physically
				// contiguous: the "is the next slot occupied" shortcut
				// has no analogue, so tombstone unconditionally.
				c.setAtS(si, tombKey, 0)
				c.tombs++
			}
			c.size--
			return true
		}
		if k == emptyKey {
			return false
		}
		si = (si + sstep) & smask
		sstep += sinc
		if si == si0 {
			return false
		}
	}
}

// deleteBackshift is Robin Hood deletion (§2.4): the cluster tail after
// the deleted entry is shifted back one slot until an entry in its
// optimal position or an empty slot ends the cluster, re-establishing
// the displacement ordering without tombstones.
func (c *kern) deleteBackshift(key uint64) bool {
	si := c.homeS(key)
	for n := uint64(0); ; n++ {
		k := c.keyAtS(si)
		if k == emptyKey {
			return false
		}
		if k == key {
			break
		}
		if c.sdisp(si, c.homeS(k)) < n {
			return false
		}
		si = (si + c.sone) & c.smask
	}
	for {
		j := (si + c.sone) & c.smask
		nk := c.keyAtS(j)
		if nk == emptyKey || (j-c.homeS(nk))&c.smask == 0 {
			c.setAtS(si, emptyKey, 0)
			break
		}
		c.setAtS(si, nk, c.valAtS(j))
		si = j
	}
	c.size--
	return true
}

// ensureRoom keeps the probing invariant that probe loops can terminate:
// unbounded sequences reserve one truly empty slot, bounded (permutation)
// sequences only need the table not to be live-full. With growth enabled
// it defers to maybeGrow; with growth disabled it sheds tombstone
// pressure by rehashing in place, and reports ErrFull only when live
// entries alone exhaust the fixed capacity.
func (c *kern) ensureRoom() error {
	if c.maxLF != 0 {
		c.maybeGrow()
		return nil
	}
	spare := 1
	if c.bounded {
		spare = 0 // permutation sequences may fill to 100%
	}
	if c.size+c.tombs+spare < c.slotCount() {
		return nil
	}
	if c.size+spare >= c.slotCount() {
		return errFull(c.scheme, c.size, c.slotCount())
	}
	c.rehashTo(c.slotCount())
	return nil
}

// maybeGrow rehashes when occupancy (live + tombstones) would exceed the
// configured threshold: it doubles when live entries alone demand it, and
// rehashes in place when the pressure comes from tombstones.
func (c *kern) maybeGrow() {
	if c.maxLF == 0 {
		return
	}
	threshold := int(c.maxLF * float64(c.slotCount()))
	if c.size+c.tombs+1 <= threshold {
		return
	}
	newCap := c.slotCount()
	if c.size+1 > threshold {
		newCap *= 2
	}
	c.rehashTo(newCap)
}

// rehashTo rebuilds the table with the given capacity, dropping
// tombstones.
func (c *kern) rehashTo(capacity int) {
	c.grows++
	old := c.colView
	oldSlots := len(old.kc) >> old.ks
	c.init(capacity)
	for idx := 0; idx < oldSlots; idx++ {
		si := uint64(idx) << old.ks
		k := old.kc[si]
		if k == emptyKey || k == tombKey {
			continue
		}
		c.reinsert(k, old.vc[si|old.ks])
	}
}

// reinsert places an entry known to be absent, maintaining the Robin
// Hood ordering when the displacement policy demands it.
func (c *kern) reinsert(key, val uint64) {
	hash := c.fn.Hash(key)
	si, sstep := c.scursor(hash)
	if c.robin {
		cur := pair{key, val}
		for n := uint64(0); ; n++ {
			k := c.keyAtS(si)
			if k == emptyKey {
				c.setAtS(si, cur.key, cur.val)
				c.size++
				return
			}
			if de := c.sdisp(si, c.homeS(k)); de < n {
				evicted := pair{k, c.valAtS(si)}
				c.setAtS(si, cur.key, cur.val)
				cur = evicted
				n = de
			}
			si = (si + c.sone) & c.smask
		}
	}
	for {
		if c.keyAtS(si) == emptyKey {
			c.setAtS(si, key, val)
			c.size++
			return
		}
		si = (si + sstep) & c.smask
		sstep += c.sinc
	}
}

// Range implements Map.
func (c *kern) Range(fn func(key, val uint64) bool) {
	if !c.sent.rng(fn) {
		return
	}
	n := c.slotCount()
	for i := 0; i < n; i++ {
		k := c.keyAt(uint64(i))
		if k == emptyKey || k == tombKey {
			continue
		}
		if !fn(k, c.valAt(uint64(i))) {
			return
		}
	}
}

// All implements Table.
func (c *kern) All() iter.Seq2[uint64, uint64] { return allOf(c) }

// ---------------------------------------------------------------------------
// Single-probe read-modify-write surface
// ---------------------------------------------------------------------------

// TryPut implements Table. Unlike the legacy Put it reports ErrFull on a
// full growth-disabled table; an update of an existing key still succeeds
// there (the full check fires only when an insert is needed).
func (c *kern) TryPut(key, val uint64) (bool, error) {
	_, existed, err := c.rmwHashed(key, val, c.fn.Hash(key), true, nil)
	return !existed && err == nil, err
}

// GetOrPut implements Table.
func (c *kern) GetOrPut(key, val uint64) (uint64, bool, error) {
	return c.rmwHashed(key, val, c.fn.Hash(key), false, nil)
}

// Upsert implements Table.
func (c *kern) Upsert(key uint64, fn func(old uint64, exists bool) uint64) (uint64, error) {
	v, _, err := c.rmwHashed(key, 0, c.fn.Hash(key), false, fn)
	return v, err
}

// TryPutBatch implements Table: PutBatch with the ErrFull contract. It
// stops at the first failing key, leaving earlier pairs applied.
func (c *kern) TryPutBatch(keys, vals []uint64) (int, error) {
	checkBatchPut(len(keys), len(vals))
	bt := c.buf()
	inserted := 0
	for lo := 0; lo < len(keys); lo += BatchWidth {
		hi := min(lo+BatchWidth, len(keys))
		kc, vc := keys[lo:hi], vals[lo:hi]
		hashfn.HashBatch(c.fn, kc, bt.hash[:])
		for l, k := range kc {
			_, existed, err := c.rmwHashed(k, vc[l], bt.hash[l], true, nil)
			if err != nil {
				return inserted, err
			}
			if !existed {
				inserted++
			}
		}
	}
	return inserted, nil
}

// GetOrPutBatch implements Table: the batched GetOrPut, one probe per
// key, results in slice order.
func (c *kern) GetOrPutBatch(keys, vals, out []uint64, loaded []bool) (int, error) {
	checkBatchGetOrPut(len(keys), len(vals), len(out), len(loaded))
	bt := c.buf()
	inserted := 0
	for lo := 0; lo < len(keys); lo += BatchWidth {
		hi := min(lo+BatchWidth, len(keys))
		kc := keys[lo:hi]
		hashfn.HashBatch(c.fn, kc, bt.hash[:])
		for l, k := range kc {
			v, existed, err := c.rmwHashed(k, vals[lo+l], bt.hash[l], false, nil)
			if err != nil {
				return inserted, err
			}
			out[lo+l], loaded[lo+l] = v, existed
			if !existed {
				inserted++
			}
		}
	}
	return inserted, nil
}

// UpsertBatch implements Table. One adapter closure is allocated per call
// (not per key); the current lane is threaded through it.
func (c *kern) UpsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (int, error) {
	bt := c.buf()
	lane := 0
	adapter := func(old uint64, exists bool) uint64 { return fn(lane, old, exists) }
	inserted := 0
	for lo := 0; lo < len(keys); lo += BatchWidth {
		hi := min(lo+BatchWidth, len(keys))
		kc := keys[lo:hi]
		hashfn.HashBatch(c.fn, kc, bt.hash[:])
		for l, k := range kc {
			lane = lo + l
			_, existed, err := c.rmwHashed(k, 0, bt.hash[l], false, adapter)
			if err != nil {
				return inserted, err
			}
			if !existed {
				inserted++
			}
		}
	}
	return inserted, nil
}

// ---------------------------------------------------------------------------
// Batched pipeline
// ---------------------------------------------------------------------------

// GetBatch implements Batcher: the chunk is bulk-hashed once, a
// first-probe pass walks every lane to the end of its home cache line
// (at moderate load factors most lookups resolve right there), and
// unresolved lanes enter a round-robin walk that advances each live
// probe sequence one cache line per round — consecutive loads belong to
// different sequences, so the memory system overlaps their misses.
func (c *kern) GetBatch(keys []uint64, vals []uint64, ok []bool) int {
	checkBatchGet(len(keys), len(vals), len(ok))
	bt := c.buf()
	hits := 0
	chunks(len(keys), func(lo, hi int) {
		hits += c.getChunk(bt, keys[lo:hi], vals[lo:hi], ok[lo:hi])
	})
	return hits
}

// getChunk resolves one chunk through one of four walk variants, chosen
// once per chunk from the hoisted policy state. The variants exist
// because the round-robin walk is bound by memory-level parallelism: its
// entire value is how many independent lane loads fit the out-of-order
// window, so each walk body must stay small (a shared parameterized body
// — or a walk behind a call — measurably serializes the lanes). Each
// variant still serves every scheme with its policy shape: linear covers
// LP and LPSoA (the column view folds the layouts), stepped covers QP
// and DH (triangular and fixed strides are both si += sstep; sstep +=
// sinc), robin covers RH, and sweep covers any bounded scheme on a
// degenerate completely-occupied table, where only the probe-counting
// full-sweep lookup terminates.
func (c *kern) getChunk(bt *batchBuf, keys, vals []uint64, ok []bool) int {
	if c.fullSweepOnly() {
		return c.getChunkSweep(keys, vals, ok)
	}
	hashfn.HashBatch(c.fn, keys, bt.hash[:])
	switch {
	case c.robin:
		return c.getChunkRobin(bt, keys, vals, ok)
	case c.bounded:
		return c.getChunkStepped(bt, keys, vals, ok)
	default:
		return c.getChunkLinear(bt, keys, vals, ok)
	}
}

// getChunkLinear is the walk for plain linear probing under either
// layout. A lane's resume state is its scaled cursor (bt.a); the walk
// yields whenever the advanced cursor enters a new cache line.
func (c *kern) getChunkLinear(bt *batchBuf, keys, vals []uint64, ok []bool) int {
	kc, smask := c.kc, c.smask
	vcb := c.vc[c.ks:]
	sone := c.sone
	// Cursor geometry as locals: stores through vals/ok/bt could alias
	// the receiver for all the compiler knows, so reading these from c
	// inside the lane loop would reload them per lane.
	sshift, soneM := c.sshift, c.sone-1
	hits := 0
	live := bt.lane[:0]
	// First-probe pass: walk every lane from its home slot to the end of
	// the home cache line; at moderate load factors most lookups resolve
	// without ever becoming a live lane. Survivors yield at the line
	// boundary — the next slot is the first truly new (potentially
	// missing) load of the sequence.
	for l := range keys {
		key := keys[l]
		if isSentinelKey(key) {
			vals[l], ok[l] = c.sent.get(key)
			if ok[l] {
				hits++
			}
			continue
		}
		si := (bt.hash[l] >> (sshift & 63)) &^ soneM
		for {
			k := kc[si]
			if k == key {
				vals[l], ok[l] = vcb[si], true
				hits++
				break
			}
			if k == emptyKey {
				vals[l], ok[l] = 0, false
				break
			}
			si = (si + sone) & smask
			if si&lineWordsM == 0 {
				bt.a[l] = si
				live = append(live, int32(l))
				break
			}
		}
	}
	// Round-robin walk, one cache line per live lane per round: within a
	// line the walk is sequential (the load already paid for the line),
	// across lanes the line-crossing loads are independent and overlap
	// in the memory system.
	for len(live) > 0 {
		w := 0
		for _, l := range live {
			key := keys[l]
			si := bt.a[l]
			for {
				k := kc[si]
				if k == key {
					vals[l], ok[l] = vcb[si], true
					hits++
					break
				}
				if k == emptyKey {
					vals[l], ok[l] = 0, false
					break
				}
				si = (si + sone) & smask
				if si&lineWordsM == 0 {
					bt.a[l] = si
					live[w] = l
					w++
					break
				}
			}
		}
		live = live[:w]
	}
	return hits
}

// getChunkRobin is the walk under Robin Hood displacement: the
// cache-line-granular early abort fires at line ends, which is also
// where unresolved lanes yield — one ordering check per line, as in the
// scalar Get. The probed key's own displacement is its cursor distance
// from home (bt.b carries the home cursor).
func (c *kern) getChunkRobin(bt *batchBuf, keys, vals []uint64, ok []bool) int {
	kc, smask := c.kc, c.smask
	vcb := c.vc[c.ks:]
	sone, lineEnd := c.sone, c.slineEnd
	sshift, soneM := c.sshift, c.sone-1
	hits := 0
	live := bt.lane[:0]
	for l := range keys {
		key := keys[l]
		if isSentinelKey(key) {
			vals[l], ok[l] = c.sent.get(key)
			if ok[l] {
				hits++
			}
			continue
		}
		si := (bt.hash[l] >> (sshift & 63)) &^ soneM
		si0 := si
		for {
			k := kc[si]
			if k == key {
				vals[l], ok[l] = vcb[si], true
				hits++
				break
			}
			if k == emptyKey {
				vals[l], ok[l] = 0, false
				break
			}
			if si&lineEnd == lineEnd {
				if c.sdisp(si, c.homeS(k)) < c.sdisp(si, si0) {
					vals[l], ok[l] = 0, false
					break
				}
				bt.a[l], bt.b[l] = (si+sone)&smask, si0
				live = append(live, int32(l))
				break
			}
			si = (si + sone) & smask
		}
	}
	for len(live) > 0 {
		w := 0
		for _, l := range live {
			key := keys[l]
			si, si0 := bt.a[l], bt.b[l]
			for {
				k := kc[si]
				if k == key {
					vals[l], ok[l] = vcb[si], true
					hits++
					break
				}
				if k == emptyKey {
					vals[l], ok[l] = 0, false
					break
				}
				if si&lineEnd == lineEnd {
					if c.sdisp(si, c.homeS(k)) < c.sdisp(si, si0) {
						vals[l], ok[l] = 0, false
						break
					}
					bt.a[l] = (si + sone) & smask
					live[w] = l
					w++
					break
				}
				si = (si + sone) & smask
			}
		}
		live = live[:w]
	}
	return hits
}

// getChunkStepped is the walk for the stepping sequences (triangular
// quadratic and double hashing): a lane advances by sstep slots per
// probe, with sstep growing by sinc, and yields when the advance leaves
// the current cache line. bt.a carries the cursor and bt.b the next
// step. No full-sweep guard is needed here: the caller diverted the
// degenerate completely-occupied state to the sweep variant, and a
// permutation sequence otherwise terminates on an empty slot.
func (c *kern) getChunkStepped(bt *batchBuf, keys, vals []uint64, ok []bool) int {
	kc, smask := c.kc, c.smask
	vcb := c.vc[c.ks:]
	sinc := c.sinc
	sshift, soneM := c.sshift, c.sone-1
	strideM, sone := c.strideMask, c.sone
	hits := 0
	live := bt.lane[:0]
	for l := range keys {
		key := keys[l]
		if isSentinelKey(key) {
			vals[l], ok[l] = c.sent.get(key)
			if ok[l] {
				hits++
			}
			continue
		}
		hash := bt.hash[l]
		si := (hash >> (sshift & 63)) &^ soneM
		sstep := ((hash & strideM) | 1) * sone
		for {
			k := kc[si]
			if k == key {
				vals[l], ok[l] = vcb[si], true
				hits++
				break
			}
			if k == emptyKey {
				vals[l], ok[l] = 0, false
				break
			}
			next := (si + sstep) & smask
			sstep += sinc
			if next&^lineWordsM != si&^lineWordsM {
				bt.a[l], bt.b[l] = next, sstep
				live = append(live, int32(l))
				break
			}
			si = next
		}
	}
	for len(live) > 0 {
		w := 0
		for _, l := range live {
			key := keys[l]
			si, sstep := bt.a[l], bt.b[l]
			for {
				k := kc[si]
				if k == key {
					vals[l], ok[l] = vcb[si], true
					hits++
					break
				}
				if k == emptyKey {
					vals[l], ok[l] = 0, false
					break
				}
				next := (si + sstep) & smask
				sstep += sinc
				if next&^lineWordsM != si&^lineWordsM {
					bt.a[l], bt.b[l] = next, sstep
					live[w] = l
					w++
					break
				}
				si = next
			}
		}
		live = live[:w]
	}
	return hits
}

// getChunkSweep resolves a chunk on a completely occupied
// bounded-sequence table through the scalar lookups, whose cursor-cycle
// check terminates without an empty slot.
func (c *kern) getChunkSweep(keys, vals []uint64, ok []bool) int {
	hits := 0
	for l := range keys {
		vals[l], ok[l] = c.Get(keys[l])
		if ok[l] {
			hits++
		}
	}
	return hits
}

// PutBatch implements Batcher: the chunk is bulk-hashed once, then
// inserted in slice order so duplicate keys inside a batch keep
// sequential (last wins) semantics. Growth mid-batch is safe because
// slot indexes are derived from the stored hash codes at insert time.
func (c *kern) PutBatch(keys []uint64, vals []uint64) int {
	checkBatchPut(len(keys), len(vals))
	bt := c.buf()
	inserted := 0
	chunks(len(keys), func(lo, hi int) {
		kc, vc := keys[lo:hi], vals[lo:hi]
		hashfn.HashBatch(c.fn, kc, bt.hash[:])
		for l, k := range kc {
			if isSentinelKey(k) {
				if c.sent.put(k, vc[l]) {
					inserted++
				}
				continue
			}
			if c.mustPutHashed(k, vc[l], bt.hash[l]) {
				inserted++
			}
		}
	})
	return inserted
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

// Displacements returns, for every live entry, its displacement d: the
// number of probe steps from its optimal slot along the scheme's probe
// sequence (§2.2). The sum of the returned values is the table's total
// displacement; Stats derives MeanProbe/MaxProbe from them. Contiguous
// sequences compute d directly; the others replay the probe sequence per
// entry, costing O(n * avg displacement).
func (c *kern) Displacements() []int {
	out := make([]int, 0, c.size)
	slots := c.slotCount()
	for idx := 0; idx < slots; idx++ {
		k := c.keyAt(uint64(idx))
		if k == emptyKey || k == tombKey {
			continue
		}
		hash := c.fn.Hash(k)
		si, sstep := c.scursor(hash)
		target := uint64(idx) << c.ks
		if c.contig {
			out = append(out, int(c.sdisp(target, si)))
			continue
		}
		d := 0
		for si != target {
			si = (si + sstep) & c.smask
			sstep += c.sinc
			d++
		}
		out = append(out, d)
	}
	return out
}

// MaxDisplacement returns the maximum displacement among live entries,
// the paper's d_max (often an order of magnitude above the mean at high
// load factors, which is why the naive d_max abort criterion
// underperforms).
func (c *kern) MaxDisplacement() int {
	max := 0
	for _, d := range c.Displacements() {
		if d > max {
			max = d
		}
	}
	return max
}

// ClusterLengths returns the lengths of all maximal runs of occupied
// slots (tombstones count as occupied, since probes must traverse them).
// Primary clustering shows up as a heavy tail here.
func (c *kern) ClusterLengths() []int {
	occupied := func(i int) bool { return c.keyAt(uint64(i)) != emptyKey }
	return clusterLengths(c.slotCount(), occupied)
}

// ProbeSlots invokes visit for every slot a lookup of key examines, in
// probe order, ending at the matching or first empty slot (inclusive),
// or earlier if visit returns false. Sentinel-routed keys (0 and 2^64-1)
// touch no slots. This diagnostic feeds the §7 layout/cache analysis:
// the slot trace converts to cache-line traces under AoS (16 B/slot) or
// SoA (8 B/slot key column) layout.
func (c *kern) ProbeSlots(key uint64, visit func(slot int) bool) {
	if isSentinelKey(key) {
		return
	}
	hash := c.fn.Hash(key)
	si, sstep := c.scursor(hash)
	for n := uint64(0); ; n++ {
		if !visit(int(si >> c.ks)) {
			return
		}
		k := c.keyAtS(si)
		if k == key || k == emptyKey {
			return
		}
		if c.bounded && n >= c.mask {
			return
		}
		si = (si + sstep) & c.smask
		sstep += c.sinc
	}
}

// displacementAt returns the displacement of the entry stored at slot i
// under a contiguous probe sequence. The slot must be occupied.
func (c *kern) displacementAt(i uint64) uint64 {
	return (i - c.home(c.keyAt(i))) & c.mask
}
