package table

// The workload-aware façade: Open builds a Handle from functional options,
// walking the paper's Figure 8 decision graph when the caller describes a
// workload instead of naming a scheme, and optionally striping the table
// across partitions for shared-memory concurrent use. Handle unifies the
// scalar, batched and single-probe read-modify-write operations in one
// surface, reports ErrFull instead of the legacy grow-on-full behavior,
// and exposes Stats and Go 1.23 iterators for observability.

import (
	"fmt"
	"iter"
	"math/bits"
	"sync"

	"repro/hashfn"
)

// DefaultMaxLoadFactor is the growth threshold Open uses when
// WithMaxLoadFactor is not given: production-friendly growth just below
// the level where probing schemes degrade (§5.2). Pass
// WithMaxLoadFactor(0) for the paper's pre-allocated (WORM) contract.
const DefaultMaxLoadFactor = 0.85

// defaultOpenCapacity is the initial capacity when WithCapacity is absent.
const defaultOpenCapacity = 1 << 10

// openConfig accumulates the functional options of Open.
type openConfig struct {
	scheme     Scheme
	schemeSet  bool
	workload   *Workload
	capacity   int
	maxLF      float64
	maxLFSet   bool
	family     hashfn.Family
	seed       uint64
	partitions int
}

// Option configures Open.
type Option func(*openConfig) error

// WithScheme pins the hashing scheme. Mutually exclusive with
// WithWorkload, which derives the scheme from a workload description.
func WithScheme(s Scheme) Option {
	return func(c *openConfig) error {
		c.scheme = s
		c.schemeSet = true
		return nil
	}
}

// WithWorkload describes the anticipated workload and lets Open walk the
// paper's Figure 8 decision graph to select the scheme (the decision path
// is retained on the Handle for auditing). Mutually exclusive with
// WithScheme.
func WithWorkload(w Workload) Option {
	return func(c *openConfig) error {
		if err := w.Validate(); err != nil {
			return err
		}
		c.workload = &w
		return nil
	}
}

// WithCapacity sets the initial slot capacity, rounded up to a power of
// two (total across partitions when combined with WithPartitions).
func WithCapacity(n int) Option {
	return func(c *openConfig) error {
		if n < 0 {
			return fmt.Errorf("table: negative capacity %d", n)
		}
		c.capacity = n
		return nil
	}
}

// WithMaxLoadFactor sets the occupancy threshold at which the table grows.
// Zero disables growth (the paper's pre-allocated WORM contract: mutations
// return ErrFull when the fixed capacity is exhausted). Values outside
// [0, 1) are rejected by Open — under the legacy Config they silently
// disabled growth, which is exactly the surprise this validation removes.
func WithMaxLoadFactor(f float64) Option {
	return func(c *openConfig) error {
		c.maxLF = f
		c.maxLFSet = true
		return nil
	}
}

// WithHashFamily sets the hash-function class (default Mult, the paper's
// overall recommendation).
func WithHashFamily(f hashfn.Family) Option {
	return func(c *openConfig) error {
		if f == nil {
			return fmt.Errorf("table: nil hash family")
		}
		c.family = f
		return nil
	}
}

// WithSeed derives all hash-function parameters. Two handles opened with
// identical options are identical.
func WithSeed(seed uint64) Option {
	return func(c *openConfig) error {
		c.seed = seed
		return nil
	}
}

// WithPartitions stripes the handle across n independently locked tables
// (rounded up to a power of two) — the paper's "striped locking" extension
// for shared-memory concurrency (§1). Keys are routed by a dedicated
// partition hash drawn independently of the per-stripe table functions.
// n <= 1 keeps the handle single-table and lock-free.
func WithPartitions(n int) Option {
	return func(c *openConfig) error {
		if n < 0 {
			return fmt.Errorf("table: negative partition count %d", n)
		}
		c.partitions = n
		return nil
	}
}

// Handle is the unified table façade produced by Open: scalar and batched
// point operations, single-probe read-modify-write primitives, error-based
// growth (ErrFull), iterators, and a Stats snapshot. A single-partition
// Handle is a zero-lock pass-through to one scheme and inherits its
// single-threaded contract; a Handle opened WithPartitions(n > 1) is safe
// for arbitrary concurrent use, one mutex per stripe.
type Handle struct {
	tables []Table
	locks  []sync.Mutex // nil when single-partition
	router hashfn.Function
	shift  uint // 64 - log2(len(tables)); stripe = routerHash >> shift
	scheme Scheme
	family string
	path   []string // Figure 8 decision trail when opened WithWorkload
}

// Open builds a Handle from functional options. With no options it opens
// a growing Robin Hood table with multiply-shift hashing — the paper's
// all-rounder. Invalid or conflicting options return descriptive errors
// rather than silently degrading.
func Open(opts ...Option) (*Handle, error) {
	cfg := openConfig{
		capacity:   defaultOpenCapacity,
		maxLF:      DefaultMaxLoadFactor,
		family:     hashfn.MultFamily{},
		partitions: 1,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.maxLFSet && (cfg.maxLF < 0 || cfg.maxLF >= 1) {
		if cfg.maxLF < 0 {
			return nil, fmt.Errorf("table: max load factor %v is negative; use 0 to disable growth explicitly", cfg.maxLF)
		}
		return nil, fmt.Errorf("table: max load factor %v >= 1 can never trigger growth; use a value in (0,1), or 0 to disable growth", cfg.maxLF)
	}
	if cfg.schemeSet && cfg.workload != nil {
		return nil, fmt.Errorf("table: WithScheme and WithWorkload are mutually exclusive; drop one")
	}

	h := &Handle{scheme: SchemeRH, family: cfg.family.Name()}
	if cfg.schemeSet {
		h.scheme = cfg.scheme
	}
	if cfg.workload != nil {
		scheme, path, err := Recommend(*cfg.workload)
		if err != nil {
			return nil, err
		}
		h.scheme, h.path = scheme, path
	}

	p := cfg.partitions
	if p < 1 {
		p = 1
	}
	p = 1 << uint(bits.Len(uint(p-1)))
	perStripe := cfg.capacity / p
	h.tables = make([]Table, p)
	for i := range h.tables {
		t, err := New(h.scheme, Config{
			InitialCapacity: perStripe,
			MaxLoadFactor:   cfg.maxLF,
			Family:          cfg.family,
			Seed:            cfg.seed + uint64(i)*0x9e3779b97f4a7c15,
		})
		if err != nil {
			return nil, err
		}
		h.tables[i] = t
	}
	if p > 1 {
		h.locks = make([]sync.Mutex, p)
		// The router must be independent of the per-stripe functions;
		// derive it from a distinct seed stream.
		h.router = cfg.family.New(cfg.seed ^ 0x9a77_e4b0_0f00_d001)
		h.shift = uint(64 - bits.TrailingZeros(uint(p)))
	}
	return h, nil
}

// MustOpen is Open that panics on error, for tests and static
// configuration.
func MustOpen(opts ...Option) *Handle {
	h, err := Open(opts...)
	if err != nil {
		panic(err)
	}
	return h
}

// stripe returns the index of the partition owning key.
func (h *Handle) stripe(key uint64) int {
	if h.locks == nil {
		return 0
	}
	return int(h.router.Hash(key) >> h.shift)
}

// Scheme returns the hashing scheme behind the handle.
func (h *Handle) Scheme() Scheme { return h.scheme }

// HashName returns the hash-function family name, e.g. "Mult".
func (h *Handle) HashName() string { return h.family }

// Name returns the paper-style label, e.g. "RHMult", prefixed with the
// stripe count when partitioned.
func (h *Handle) Name() string {
	if h.locks != nil {
		return fmt.Sprintf("Striped[%dx%s%s]", len(h.tables), h.scheme, h.family)
	}
	return string(h.scheme) + h.family
}

// Partitions returns the number of stripes (1 for an unpartitioned
// handle).
func (h *Handle) Partitions() int { return len(h.tables) }

// DecisionPath returns the Figure 8 audit trail when the handle was opened
// WithWorkload, nil otherwise.
func (h *Handle) DecisionPath() []string { return h.path }

// Put inserts or updates key -> val, reporting whether the key was newly
// inserted. On a full growth-disabled handle it returns ErrFull (wrapped
// in a *FullError) and leaves the table unchanged.
func (h *Handle) Put(key, val uint64) (bool, error) {
	if h.locks == nil {
		return h.tables[0].TryPut(key, val)
	}
	j := h.stripe(key)
	h.locks[j].Lock()
	defer h.locks[j].Unlock()
	return h.tables[j].TryPut(key, val)
}

// Get returns the value stored under key and whether it is present.
func (h *Handle) Get(key uint64) (uint64, bool) {
	if h.locks == nil {
		return h.tables[0].Get(key)
	}
	j := h.stripe(key)
	h.locks[j].Lock()
	defer h.locks[j].Unlock()
	return h.tables[j].Get(key)
}

// Delete removes key, reporting whether it was present.
func (h *Handle) Delete(key uint64) bool {
	if h.locks == nil {
		return h.tables[0].Delete(key)
	}
	j := h.stripe(key)
	h.locks[j].Lock()
	defer h.locks[j].Unlock()
	return h.tables[j].Delete(key)
}

// GetOrPut returns the value stored under key if present (loaded true);
// otherwise it inserts val and returns it (loaded false). Exactly one
// probe sequence is issued either way.
func (h *Handle) GetOrPut(key, val uint64) (actual uint64, loaded bool, err error) {
	if h.locks == nil {
		return h.tables[0].GetOrPut(key, val)
	}
	j := h.stripe(key)
	h.locks[j].Lock()
	defer h.locks[j].Unlock()
	return h.tables[j].GetOrPut(key, val)
}

// Upsert applies fn to the value stored under key (exists true) or to
// (0, false) when absent, stores the result, and returns it — one probe
// sequence. fn must not call back into the handle.
func (h *Handle) Upsert(key uint64, fn func(old uint64, exists bool) uint64) (uint64, error) {
	if h.locks == nil {
		return h.tables[0].Upsert(key, fn)
	}
	j := h.stripe(key)
	h.locks[j].Lock()
	defer h.locks[j].Unlock()
	return h.tables[j].Upsert(key, fn)
}

// Len returns the number of live entries across all stripes.
func (h *Handle) Len() int {
	n := 0
	for j, t := range h.tables {
		if h.locks != nil {
			h.locks[j].Lock()
		}
		n += t.Len()
		if h.locks != nil {
			h.locks[j].Unlock()
		}
	}
	return n
}

// Capacity returns the total slot capacity across all stripes.
func (h *Handle) Capacity() int {
	n := 0
	for j, t := range h.tables {
		if h.locks != nil {
			h.locks[j].Lock()
		}
		n += t.Capacity()
		if h.locks != nil {
			h.locks[j].Unlock()
		}
	}
	return n
}

// LoadFactor returns Len/Capacity.
func (h *Handle) LoadFactor() float64 {
	return float64(h.Len()) / float64(h.Capacity())
}

// MemoryFootprint returns the total bytes across all stripes.
func (h *Handle) MemoryFootprint() uint64 {
	var n uint64
	for j, t := range h.tables {
		if h.locks != nil {
			h.locks[j].Lock()
		}
		n += t.MemoryFootprint()
		if h.locks != nil {
			h.locks[j].Unlock()
		}
	}
	return n
}

// Range calls fn for every entry until fn returns false. On a partitioned
// handle one stripe lock is held at a time; entries written concurrently
// may or may not be observed.
func (h *Handle) Range(fn func(key, val uint64) bool) {
	for j, t := range h.tables {
		if h.locks != nil {
			h.locks[j].Lock()
		}
		stopped := false
		t.Range(func(k, v uint64) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if h.locks != nil {
			h.locks[j].Unlock()
		}
		if stopped {
			return
		}
	}
}

// All returns a Go 1.23 range-over-func iterator over the entries,
// equivalent to Range.
func (h *Handle) All() iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) { h.Range(yield) }
}

// Stats collects a point-in-time snapshot across all stripes. It walks
// every table (O(capacity)); intended for observability, not hot paths.
func (h *Handle) Stats() Stats {
	var s Stats
	for j, t := range h.tables {
		if h.locks != nil {
			h.locks[j].Lock()
		}
		st := StatsOf(t)
		if h.locks != nil {
			h.locks[j].Unlock()
		}
		if j == 0 {
			s = st
		} else {
			s.merge(st)
		}
	}
	return s
}

// ---------------------------------------------------------------------------
// Batched operations
// ---------------------------------------------------------------------------

// GetBatch looks up keys[i] into vals[i], ok[i] for every i and returns
// the number of hits. vals and ok must be at least as long as keys.
func (h *Handle) GetBatch(keys, vals []uint64, ok []bool) int {
	if h.locks == nil {
		return h.tables[0].GetBatch(keys, vals, ok)
	}
	checkBatchGet(len(keys), len(vals), len(ok))
	st := h.scatter(keys)
	hits := 0
	for j := range h.tables {
		lo, hi := st.starts[j], st.starts[j+1]
		if lo == hi {
			continue
		}
		h.locks[j].Lock()
		hits += h.tables[j].GetBatch(st.keys[lo:hi], st.vals[lo:hi], st.ok[lo:hi])
		h.locks[j].Unlock()
	}
	for i, oi := range st.orig {
		vals[oi], ok[oi] = st.vals[i], st.ok[i]
	}
	return hits
}

// PutBatch upserts the pairs (keys[i], vals[i]) in slice order, returning
// the number of newly inserted keys. On ErrFull it stops; pairs already
// applied remain.
func (h *Handle) PutBatch(keys, vals []uint64) (int, error) {
	if h.locks == nil {
		return h.tables[0].TryPutBatch(keys, vals)
	}
	checkBatchPut(len(keys), len(vals))
	st := h.scatter(keys)
	for i, oi := range st.orig {
		st.vals[i] = vals[oi]
	}
	inserted := 0
	for j := range h.tables {
		lo, hi := st.starts[j], st.starts[j+1]
		if lo == hi {
			continue
		}
		h.locks[j].Lock()
		n, err := h.tables[j].TryPutBatch(st.keys[lo:hi], st.vals[lo:hi])
		h.locks[j].Unlock()
		inserted += n
		if err != nil {
			return inserted, err
		}
	}
	return inserted, nil
}

// GetOrPutBatch applies GetOrPut to every (keys[i], vals[i]) pair in slice
// order: out[i] receives the resulting value, loaded[i] whether the key
// already existed. It returns the number of newly inserted keys; on
// ErrFull it stops, with earlier pairs applied.
func (h *Handle) GetOrPutBatch(keys, vals, out []uint64, loaded []bool) (int, error) {
	if h.locks == nil {
		return h.tables[0].GetOrPutBatch(keys, vals, out, loaded)
	}
	checkBatchGetOrPut(len(keys), len(vals), len(out), len(loaded))
	st := h.scatter(keys)
	for i, oi := range st.orig {
		st.vals[i] = vals[oi]
	}
	inserted := 0
	for j := range h.tables {
		lo, hi := st.starts[j], st.starts[j+1]
		if lo == hi {
			continue
		}
		h.locks[j].Lock()
		// out aliases vals within each stripe's staged range: the schemes
		// read the insert value before writing the result lane.
		n, err := h.tables[j].GetOrPutBatch(st.keys[lo:hi], st.vals[lo:hi], st.vals[lo:hi], st.ok[lo:hi])
		h.locks[j].Unlock()
		inserted += n
		if err != nil {
			return inserted, err
		}
	}
	for i, oi := range st.orig {
		out[oi], loaded[oi] = st.vals[i], st.ok[i]
	}
	return inserted, nil
}

// UpsertBatch applies an Upsert to every key, passing fn the key's lane
// index in the original slice. Duplicate keys are processed in slice order
// (they always share a stripe). It returns the number of newly inserted
// keys.
func (h *Handle) UpsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (int, error) {
	if h.locks == nil {
		return h.tables[0].UpsertBatch(keys, fn)
	}
	st := h.scatter(keys)
	inserted := 0
	for j := range h.tables {
		lo, hi := st.starts[j], st.starts[j+1]
		if lo == hi {
			continue
		}
		orig := st.orig[lo:hi]
		h.locks[j].Lock()
		n, err := h.tables[j].UpsertBatch(st.keys[lo:hi], func(lane int, old uint64, exists bool) uint64 {
			return fn(int(orig[lane]), old, exists)
		})
		h.locks[j].Unlock()
		inserted += n
		if err != nil {
			return inserted, err
		}
	}
	return inserted, nil
}

// scattered is one stable stripe scatter of a key column: keys regrouped
// by stripe, the original lane of every staged slot, per-stripe extents,
// and value/flag staging areas sized to match.
type scattered struct {
	keys   []uint64
	vals   []uint64
	ok     []bool
	orig   []int32
	starts []int32
}

// scatter routes keys and regroups them by stripe in one stable pass.
// Partitioned handles are meant for concurrent callers, so the staging
// buffers are allocated per call rather than cached on the handle.
func (h *Handle) scatter(keys []uint64) scattered {
	p := len(h.tables)
	part := make([]int32, len(keys))
	hash := make([]uint64, BatchWidth)
	for base := 0; base < len(keys); base += BatchWidth {
		n := min(BatchWidth, len(keys)-base)
		hashfn.HashBatch(h.router, keys[base:base+n], hash)
		for i := 0; i < n; i++ {
			part[base+i] = int32(hash[i] >> h.shift)
		}
	}
	st := scattered{
		keys:   make([]uint64, len(keys)),
		vals:   make([]uint64, len(keys)),
		ok:     make([]bool, len(keys)),
		orig:   make([]int32, len(keys)),
		starts: make([]int32, p+1),
	}
	for _, j := range part {
		st.starts[j+1]++
	}
	for j := 0; j < p; j++ {
		st.starts[j+1] += st.starts[j]
	}
	pos := make([]int32, p)
	copy(pos, st.starts[:p])
	for i, k := range keys {
		j := part[i]
		at := pos[j]
		st.keys[at] = k
		st.orig[at] = int32(i)
		pos[j]++
	}
	return st
}
