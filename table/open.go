package table

// The workload-aware façade: Open builds a Handle from functional options,
// walking the paper's Figure 8 decision graph when the caller describes a
// workload instead of naming a scheme, and optionally striping the table
// across partitions for shared-memory concurrent use. Handle unifies the
// scalar, batched and single-probe read-modify-write operations in one
// surface, reports ErrFull instead of the legacy grow-on-full behavior,
// and exposes Stats and Go 1.23 iterators for observability.

import (
	"fmt"
	"iter"

	"repro/hashfn"
	"repro/internal/fault"
	"repro/shard"
)

// DefaultMaxLoadFactor is the growth threshold Open uses when
// WithMaxLoadFactor is not given: production-friendly growth just below
// the level where probing schemes degrade (§5.2). Pass
// WithMaxLoadFactor(0) for the paper's pre-allocated (WORM) contract.
const DefaultMaxLoadFactor = 0.85

// defaultOpenCapacity is the initial capacity when WithCapacity is absent.
const defaultOpenCapacity = 1 << 10

// openConfig accumulates the functional options of Open.
type openConfig struct {
	scheme     Scheme
	schemeSet  bool
	workload   *Workload
	capacity   int
	maxLF      float64
	maxLFSet   bool
	family     hashfn.Family
	seed       uint64
	partitions int
}

// Option configures Open.
type Option func(*openConfig) error

// WithScheme pins the hashing scheme. Mutually exclusive with
// WithWorkload, which derives the scheme from a workload description.
func WithScheme(s Scheme) Option {
	return func(c *openConfig) error {
		c.scheme = s
		c.schemeSet = true
		return nil
	}
}

// WithWorkload describes the anticipated workload and lets Open walk the
// paper's Figure 8 decision graph to select the scheme (the decision path
// is retained on the Handle for auditing). Mutually exclusive with
// WithScheme.
func WithWorkload(w Workload) Option {
	return func(c *openConfig) error {
		if err := w.Validate(); err != nil {
			return err
		}
		c.workload = &w
		return nil
	}
}

// WithCapacity sets the initial slot capacity, rounded up to a power of
// two (total across partitions when combined with WithPartitions).
func WithCapacity(n int) Option {
	return func(c *openConfig) error {
		if n < 0 {
			return fmt.Errorf("table: negative capacity %d", n)
		}
		c.capacity = n
		return nil
	}
}

// WithMaxLoadFactor sets the occupancy threshold at which the table grows.
// Zero disables growth (the paper's pre-allocated WORM contract: mutations
// return ErrFull when the fixed capacity is exhausted). Values outside
// [0, 1) are rejected by Open — under the legacy Config they silently
// disabled growth, which is exactly the surprise this validation removes.
func WithMaxLoadFactor(f float64) Option {
	return func(c *openConfig) error {
		c.maxLF = f
		c.maxLFSet = true
		return nil
	}
}

// WithHashFamily sets the hash-function class (default Mult, the paper's
// overall recommendation).
func WithHashFamily(f hashfn.Family) Option {
	return func(c *openConfig) error {
		if f == nil {
			return fmt.Errorf("table: nil hash family")
		}
		c.family = f
		return nil
	}
}

// WithSeed derives all hash-function parameters. Two handles opened with
// identical options are identical.
func WithSeed(seed uint64) Option {
	return func(c *openConfig) error {
		c.seed = seed
		return nil
	}
}

// WithPartitions shards the handle across n independently locked tables
// (rounded up to a power of two) — the paper's "striped locking" extension
// for shared-memory concurrency (§1), served by a shard.Engine. Keys are
// routed by a dedicated router hash drawn independently of the per-shard
// table functions; reads are wait-free (epoch-published shard views
// validated by a per-shard seqlock), and growth (when a
// positive max load factor is configured) is the engine's incremental
// resize instead of a stop-the-world rehash. n <= 1 keeps the handle
// single-table and lock-free.
func WithPartitions(n int) Option {
	return func(c *openConfig) error {
		if n < 0 {
			return fmt.Errorf("table: negative partition count %d", n)
		}
		c.partitions = n
		return nil
	}
}

// Handle is the unified table façade produced by Open: scalar and batched
// point operations, single-probe read-modify-write primitives, error-based
// growth (ErrFull), iterators, and a Stats snapshot.
//
// Concurrency contract: a single-partition Handle is a zero-lock
// pass-through to one scheme and inherits its single-threaded contract —
// external synchronization is required for concurrent use. A Handle
// opened WithPartitions(n > 1) delegates every operation to a
// shard.Engine and is safe for arbitrary concurrent use: read-only
// operations (Get, GetBatch, Len, Stats, Range/All) take per-shard read
// locks and proceed in parallel, mutations take per-shard write locks,
// and growth is the engine's incremental resize. Iteration over a
// partitioned handle is weakly consistent (see shard.Engine.Range).
type Handle struct {
	single Table         // the one table of an unpartitioned handle (nil when sharded)
	eng    *shard.Engine // the sharded engine (nil when single)
	scheme Scheme
	family string
	path   []string // Figure 8 decision trail when opened WithWorkload
}

// Open builds a Handle from functional options. With no options it opens
// a growing Robin Hood table with multiply-shift hashing — the paper's
// all-rounder. Invalid or conflicting options return descriptive errors
// rather than silently degrading.
func Open(opts ...Option) (*Handle, error) {
	cfg := openConfig{
		capacity:   defaultOpenCapacity,
		maxLF:      DefaultMaxLoadFactor,
		family:     hashfn.MultFamily{},
		partitions: 1,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.maxLFSet && (cfg.maxLF < 0 || cfg.maxLF >= 1) {
		if cfg.maxLF < 0 {
			return nil, fmt.Errorf("table: max load factor %v is negative; use 0 to disable growth explicitly", cfg.maxLF)
		}
		return nil, fmt.Errorf("table: max load factor %v >= 1 can never trigger growth; use a value in (0,1), or 0 to disable growth", cfg.maxLF)
	}
	if cfg.schemeSet && cfg.workload != nil {
		return nil, fmt.Errorf("table: WithScheme and WithWorkload are mutually exclusive; drop one")
	}

	h := &Handle{scheme: SchemeRH, family: cfg.family.Name()}
	if cfg.schemeSet {
		h.scheme = cfg.scheme
	}
	if cfg.workload != nil {
		scheme, path, err := Recommend(*cfg.workload)
		if err != nil {
			return nil, err
		}
		h.scheme, h.path = scheme, path
	}

	if cfg.partitions <= 1 {
		t, err := New(h.scheme, Config{
			InitialCapacity: cfg.capacity,
			MaxLoadFactor:   cfg.maxLF,
			Family:          cfg.family,
			Seed:            cfg.seed,
		})
		if err != nil {
			return nil, err
		}
		h.single = t
		return h, nil
	}
	// Partitioned: one shard.Engine over per-shard tables with scheme-level
	// growth disabled — the engine grows shards incrementally at the
	// configured threshold (or not at all when it is zero, preserving the
	// WORM ErrFull contract).
	eng, err := shard.New(shard.Config{
		Shards:   cfg.partitions,
		Capacity: cfg.capacity,
		GrowAt:   cfg.maxLF,
		Family:   cfg.family,
		Seed:     cfg.seed,
		NewTable: func(capacity int, seed uint64) (shard.Table, error) {
			return New(h.scheme, Config{
				InitialCapacity: capacity,
				MaxLoadFactor:   0,
				Family:          cfg.family,
				Seed:            seed,
			})
		},
	})
	if err != nil {
		return nil, err
	}
	h.eng = eng
	return h, nil
}

// MustOpen is Open that panics on error, for tests and static
// configuration.
func MustOpen(opts ...Option) *Handle {
	h, err := Open(opts...)
	if err != nil {
		panic(err)
	}
	return h
}

// Scheme returns the hashing scheme behind the handle.
func (h *Handle) Scheme() Scheme { return h.scheme }

// HashName returns the hash-function family name, e.g. "Mult".
func (h *Handle) HashName() string { return h.family }

// Name returns the paper-style label, e.g. "RHMult", prefixed with the
// shard count when partitioned.
func (h *Handle) Name() string {
	if h.eng != nil {
		return fmt.Sprintf("Striped[%dx%s%s]", h.eng.Shards(), h.scheme, h.family)
	}
	return string(h.scheme) + h.family
}

// Partitions returns the number of shards (1 for an unpartitioned
// handle).
func (h *Handle) Partitions() int {
	if h.eng != nil {
		return h.eng.Shards()
	}
	return 1
}

// Engine returns the shard.Engine serving a partitioned handle, for
// callers that want the engine-level surface (migration counters,
// weakly-consistent iteration, direct batched access). It is nil for a
// single-partition handle.
func (h *Handle) Engine() *shard.Engine { return h.eng }

// DecisionPath returns the Figure 8 audit trail when the handle was opened
// WithWorkload, nil otherwise.
func (h *Handle) DecisionPath() []string { return h.path }

// injectFull fires the armed fault injector's Full kind at a Handle
// mutation entry point, synthesizing the same *FullError a genuinely
// full growth-disabled table would return. Disarmed (the default) it is
// one atomic pointer load.
func (h *Handle) injectFull() error {
	if fault.Should(fault.Full) {
		return errInjectedFull(string(h.scheme))
	}
	return nil
}

// Put inserts or updates key -> val, reporting whether the key was newly
// inserted. On a full growth-disabled handle it returns ErrFull (wrapped
// in a *FullError) and leaves the table unchanged.
func (h *Handle) Put(key, val uint64) (bool, error) {
	if err := h.injectFull(); err != nil {
		return false, err
	}
	if h.eng != nil {
		return h.eng.Put(key, val)
	}
	return h.single.TryPut(key, val)
}

// Get returns the value stored under key and whether it is present. On a
// partitioned handle this takes no lock at all (the engine's wait-free
// read path), so lookups proceed concurrently with each other and with
// writers.
func (h *Handle) Get(key uint64) (uint64, bool) {
	if h.eng != nil {
		return h.eng.Get(key)
	}
	return h.single.Get(key)
}

// Delete removes key, reporting whether it was present.
func (h *Handle) Delete(key uint64) bool {
	if h.eng != nil {
		return h.eng.Delete(key)
	}
	return h.single.Delete(key)
}

// GetOrPut returns the value stored under key if present (loaded true);
// otherwise it inserts val and returns it (loaded false). Exactly one
// probe sequence is issued either way.
func (h *Handle) GetOrPut(key, val uint64) (actual uint64, loaded bool, err error) {
	if err := h.injectFull(); err != nil {
		return 0, false, err
	}
	if h.eng != nil {
		return h.eng.GetOrPut(key, val)
	}
	return h.single.GetOrPut(key, val)
}

// Upsert applies fn to the value stored under key (exists true) or to
// (0, false) when absent, stores the result, and returns it — one probe
// sequence. fn must not call back into the handle.
func (h *Handle) Upsert(key uint64, fn func(old uint64, exists bool) uint64) (uint64, error) {
	if err := h.injectFull(); err != nil {
		return 0, err
	}
	if h.eng != nil {
		return h.eng.Upsert(key, fn)
	}
	return h.single.Upsert(key, fn)
}

// Len returns the number of live entries (read-locked per shard when
// partitioned).
func (h *Handle) Len() int {
	if h.eng != nil {
		return h.eng.Len()
	}
	return h.single.Len()
}

// Capacity returns the total slot capacity across all shards.
func (h *Handle) Capacity() int {
	if h.eng != nil {
		return h.eng.Capacity()
	}
	return h.single.Capacity()
}

// LoadFactor returns Len/Capacity.
func (h *Handle) LoadFactor() float64 {
	return float64(h.Len()) / float64(h.Capacity())
}

// MemoryFootprint returns the total bytes across all shards.
func (h *Handle) MemoryFootprint() uint64 {
	if h.eng != nil {
		return h.eng.MemoryFootprint()
	}
	return h.single.MemoryFootprint()
}

// Range calls fn for every entry until fn returns false. On a partitioned
// handle iteration is weakly consistent (one shard read-locked at a time;
// see shard.Engine.Range) and fn must not call back into the handle.
func (h *Handle) Range(fn func(key, val uint64) bool) {
	if h.eng != nil {
		h.eng.Range(fn)
		return
	}
	h.single.Range(fn)
}

// All returns a Go 1.23 range-over-func iterator over the entries,
// equivalent to Range.
func (h *Handle) All() iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) { h.Range(yield) }
}

// Stats collects a point-in-time snapshot. It walks every table
// (O(capacity)); intended for observability, not hot paths. On a
// partitioned handle the scheme-level probe diagnostics are merged across
// shards, and the size accounting comes from the engine (so Len matches
// Len() even while a shard migrates and briefly holds an entry in both
// its tables).
func (h *Handle) Stats() Stats {
	if h.eng == nil {
		return StatsOf(h.single)
	}
	var s Stats
	first := true
	h.eng.ForEachTable(func(_ int, t shard.Table) {
		m, ok := t.(Map)
		if !ok {
			return
		}
		st := StatsOf(m)
		if first {
			s, first = st, false
		} else {
			s.merge(st)
		}
	})
	es := h.eng.Stats()
	s.Partitions = es.Shards
	s.Len = es.Len
	s.Capacity = es.Capacity
	s.LoadFactor = es.LoadFactor
	s.MemoryBytes = es.MemoryBytes
	return s
}

// EngineStats returns the shard-engine snapshot of a partitioned handle —
// shard count plus the incremental-resize counters. The zero Stats is
// returned for a single-partition handle.
func (h *Handle) EngineStats() shard.Stats {
	if h.eng == nil {
		return shard.Stats{}
	}
	return h.eng.Stats()
}

// ---------------------------------------------------------------------------
// Batched operations
// ---------------------------------------------------------------------------

// GetBatch looks up keys[i] into vals[i], ok[i] for every i and returns
// the number of hits. vals and ok must be at least as long as keys.
func (h *Handle) GetBatch(keys, vals []uint64, ok []bool) int {
	if h.eng != nil {
		return h.eng.GetBatch(keys, vals, ok)
	}
	return h.single.GetBatch(keys, vals, ok)
}

// PutBatch upserts the pairs (keys[i], vals[i]) in slice order, returning
// the number of newly inserted keys. On ErrFull it stops; pairs already
// applied remain.
func (h *Handle) PutBatch(keys, vals []uint64) (int, error) {
	if err := h.injectFull(); err != nil {
		return 0, err
	}
	if h.eng != nil {
		return h.eng.PutBatch(keys, vals)
	}
	return h.single.TryPutBatch(keys, vals)
}

// GetOrPutBatch applies GetOrPut to every (keys[i], vals[i]) pair in slice
// order: out[i] receives the resulting value, loaded[i] whether the key
// already existed. It returns the number of newly inserted keys; on
// ErrFull it stops, with earlier pairs applied.
func (h *Handle) GetOrPutBatch(keys, vals, out []uint64, loaded []bool) (int, error) {
	if err := h.injectFull(); err != nil {
		return 0, err
	}
	if h.eng != nil {
		return h.eng.GetOrPutBatch(keys, vals, out, loaded)
	}
	return h.single.GetOrPutBatch(keys, vals, out, loaded)
}

// UpsertBatch applies an Upsert to every key, passing fn the key's lane
// index in the original slice. Duplicate keys are processed in slice order
// (they always share a shard). It returns the number of newly inserted
// keys.
func (h *Handle) UpsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (int, error) {
	if err := h.injectFull(); err != nil {
		return 0, err
	}
	if h.eng != nil {
		return h.eng.UpsertBatch(keys, fn)
	}
	return h.single.UpsertBatch(keys, fn)
}
