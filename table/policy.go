package table

// This file defines the policy types behind the open-addressing probe
// kernel (kernel.go). The paper's §2 observation is that its probing
// schemes differ only along a few orthogonal dimensions; here each
// dimension is an actual type, and a scheme is one choice per dimension:
//
//	dimension (paper)            policy type      implementations
//	probe sequence (§2.2–2.5)    probePolicy      linearSeq, quadSeq, dhSeq
//	slot layout (§7)             layoutPolicy     aosLayout, soaLayout
//	displacement on insert       displacePolicy   noDisplace, robinDisplace
//	deletion strategy            derived          see below
//
// The deletion policy is derived rather than free-standing, because the
// probe sequence dictates it: robinDisplace implies partial-cluster
// rehash (backward shifting, §2.4), contiguous sequences take the
// optimized tombstone strategy (§2.2), and non-contiguous ones must
// tombstone unconditionally (§2.3).
//
// Policies are consulted at construction time only: their decisions are
// hoisted into the kernel's loop-invariant state (probe step parameters,
// column views, feature flags), so the one shared probe loop carries no
// per-slot dispatch of any kind. Two representation tricks make that
// possible:
//
//   - All three probe sequences are instances of i += step; step += inc.
//     Linear probing is step=1, inc=0; triangular quadratic probing is
//     step=1, inc=1 (the offsets 1, 2, 3, ... accumulate to the
//     triangular numbers); double hashing is step=h2(k), inc=0. probeSpec
//     captures exactly this, so advancing a probe sequence is two adds
//     and a mask for every scheme.
//   - Both slot layouts are column views over []uint64 storage: the key
//     of slot i lives at kc[i<<ks] and its value at vc[(i<<ks)|ks], with
//     ks=1 for the interleaved AoS array and ks=0 for the split SoA
//     arrays. Slot access compiles to direct array indexing either way.
//
// An earlier iteration expressed the same dimensions as type parameters
// of a generic kernel, relying on monomorphization to specialize the
// loops. Go's gcshape stenciling put a dictionary-dispatched call on
// every per-slot policy use (3x on the probe benchmarks); hoisting the
// policies into loop-invariant registers achieves the specialization
// with a single copy of every loop instead.

import "unsafe"

// probeSpec is a probe sequence reduced to the kernel's uniform stepping
// model: the i-th advance moves by step, then step grows by inc.
type probeSpec struct {
	// lowBitsStride derives the initial step from the key's hash code —
	// (hash & mask) | 1, double hashing's h2 — instead of 1. Odd strides
	// are coprime to the power-of-two capacity, so such sequences are
	// full permutations.
	lowBitsStride bool
	// inc is added to the step after every probe: 0 keeps a fixed
	// stride, 1 yields the triangular quadratic sequence.
	inc uint64
	// bounded marks sequences needing an explicit full-sweep termination
	// guard: they are permutations of the table, so after capacity
	// probes every slot has been seen and the key is absent. Unbounded
	// (linear) sequences instead rely on the kernel keeping at least one
	// truly empty slot for probe loops to terminate on — which is also
	// why bounded schemes may fill to 100% occupancy while linear ones
	// refuse the last slot.
	bounded bool
	// contiguous marks sequences whose consecutive probes are adjacent
	// slots, which enables the optimized tombstone deletion (§2.2) and
	// O(1) displacement computation.
	contiguous bool
}

// probePolicy is the probe-sequence dimension: the order in which slots
// are examined after a collision.
type probePolicy interface{ probe() probeSpec }

// linearSeq probes slots circularly: h(k, i) = h'(k) + i (§2.2).
type linearSeq struct{}

func (linearSeq) probe() probeSpec { return probeSpec{contiguous: true} }

// quadSeq is triangular-number quadratic probing: h(k, i) = h'(k) + i/2 +
// i²/2 (§2.3), a permutation of any power-of-two table.
type quadSeq struct{}

func (quadSeq) probe() probeSpec { return probeSpec{inc: 1, bounded: true} }

// dhSeq is double hashing: h(k, i) = h1(k) + i*h2(k), with h2 drawn from
// the low hash bits forced odd (see DoubleHashing).
type dhSeq struct{}

func (dhSeq) probe() probeSpec { return probeSpec{lowBitsStride: true, bounded: true} }

// colView is the unified slot addressing produced by a layoutPolicy: the
// key of slot i lives at kc[i<<ks], its value at vc[(i<<ks)|ks]. Exactly
// one of slots (AoS) or keys/vals (SoA) is non-nil and owns the storage;
// kc and vc alias it.
type colView struct {
	kc []uint64 // key column view
	vc []uint64 // value column view
	ks uint64   // index scale: 1 = interleaved AoS, 0 = split SoA

	slots []pair   // AoS backing array (nil under SoA)
	keys  []uint64 // SoA key column (nil under AoS)
	vals  []uint64 // SoA value column (nil under AoS)
}

// layoutPolicy is the §7 slot-layout dimension: how a capacity's worth of
// key/value slots is stored and addressed.
type layoutPolicy interface {
	// alloc returns a view over capacity zeroed slots.
	alloc(capacity int) colView
	// perLine is how many slots share one 64-byte cache line of the key
	// column — the batch walk's yield granularity and the Robin Hood
	// early-abort cadence.
	perLine() uint64
}

// aosLayout is the array-of-structs layout: 16-byte key/value pairs in
// one array, the default layout of §2.
type aosLayout struct{}

func (aosLayout) alloc(capacity int) colView {
	slots := make([]pair, capacity)
	// View the pair array as its underlying uint64 words (a pair is
	// exactly two uint64s, so the aliasing is layout-exact): keys sit at
	// even words, values at odd ones. The view shares the backing array,
	// so GetVec and the diagnostics keep reading the same slots.
	words := unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(slots))), 2*capacity)
	return colView{kc: words, vc: words, ks: 1, slots: slots}
}
func (aosLayout) perLine() uint64 { return slotsPerCacheLine }

// soaKeysPerLine is how many 8-byte key-column entries share a 64-byte
// cache line — twice the AoS granularity, the §7 "half the bytes"
// advantage of long SoA probe sequences.
const soaKeysPerLine = 8

// soaLayout is the struct-of-arrays layout of §7: keys and values in two
// parallel arrays, like a column layout. A successful probe touches at
// least two cache lines (key column + value column), but long walks scan
// only the densely packed key column.
type soaLayout struct{}

func (soaLayout) alloc(capacity int) colView {
	keys := make([]uint64, capacity)
	vals := make([]uint64, capacity)
	return colView{kc: keys, vc: vals, keys: keys, vals: vals}
}
func (soaLayout) perLine() uint64 { return soaKeysPerLine }

// displacePolicy is the collision-arbitration dimension: whether an
// insert may displace already-resident entries.
type displacePolicy interface {
	// robinHood enables displacement-ordered (Robin Hood) insertion,
	// the cache-line-granular early abort for unsuccessful lookups, and
	// backward-shift deletion (§2.4).
	robinHood() bool
}

// noDisplace is first-come-first-served slot ownership.
type noDisplace struct{}

func (noDisplace) robinHood() bool { return false }

// robinDisplace resolves every collision in favour of the key farther
// from its optimal slot (§2.4).
type robinDisplace struct{}

func (robinDisplace) robinHood() bool { return true }
