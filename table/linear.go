package table

import "repro/hashfn"

// LinearProbing is an open-addressing hash table with linear probing in
// array-of-structs layout (§2.2 of the paper). It is the simplest probing
// scheme: on a collision the next slots are scanned circularly until a free
// one is found. Its strengths are minimal code complexity and perfectly
// sequential memory access; its weakness is primary clustering at high load
// factors.
//
// Deletion uses the paper's optimized tombstone strategy: a tombstone is
// placed only when it is needed to keep a cluster connected (i.e. when the
// slot following the deleted entry is occupied); otherwise the slot is
// simply cleared, and any tombstones immediately preceding a new cluster
// end are cleared as well. Inserts recycle tombstones after confirming the
// key is not already present.
type LinearProbing struct {
	slots  []pair
	shift  uint // 64 - log2(len(slots)); index = hash >> shift
	mask   uint64
	size   int // live entries in slots (sentinel-keyed entries excluded)
	tombs  int
	fn     hashfn.Function
	family hashfn.Family
	seed   uint64
	maxLF  float64
	grows  int // rehash events (growth and in-place), for Stats
	sent   sentinels
	batchState
}

var _ Table = (*LinearProbing)(nil)

// NewLinearProbing returns an empty linear-probing table configured by cfg.
func NewLinearProbing(cfg Config) *LinearProbing {
	cfg = cfg.withDefaults()
	t := &LinearProbing{
		family: cfg.Family,
		seed:   cfg.Seed,
		maxLF:  cfg.MaxLoadFactor,
	}
	t.fn = cfg.Family.New(cfg.Seed)
	t.init(cfg.InitialCapacity)
	return t
}

func (t *LinearProbing) init(capacity int) {
	t.slots = make([]pair, capacity)
	t.shift = 64 - log2(capacity)
	t.mask = uint64(capacity - 1)
	t.size = 0
	t.tombs = 0
}

// home returns the optimal slot of key: the paper's h(k, 0).
func (t *LinearProbing) home(key uint64) uint64 { return t.fn.Hash(key) >> t.shift }

// Name implements Map.
func (t *LinearProbing) Name() string { return "LP" }

// HashName returns the hash-function family name (e.g. "Mult").
func (t *LinearProbing) HashName() string { return t.fn.Name() }

// Len implements Map.
func (t *LinearProbing) Len() int { return t.size + t.sent.len() }

// Capacity implements Map.
func (t *LinearProbing) Capacity() int { return len(t.slots) }

// LoadFactor implements Map.
func (t *LinearProbing) LoadFactor() float64 {
	return float64(t.Len()) / float64(len(t.slots))
}

// Tombstones returns the number of tombstoned slots (diagnostics).
func (t *LinearProbing) Tombstones() int { return t.tombs }

// MemoryFootprint implements Map: capacity x 16-byte slots.
func (t *LinearProbing) MemoryFootprint() uint64 {
	return uint64(len(t.slots)) * pairBytes
}

// Get implements Map.
func (t *LinearProbing) Get(key uint64) (uint64, bool) {
	if isSentinelKey(key) {
		return t.sent.get(key)
	}
	i := t.home(key)
	for {
		s := &t.slots[i]
		if s.key == key {
			return s.val, true
		}
		if s.key == emptyKey {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// ensureRoom keeps the probing invariant that at least one truly empty slot
// exists (probe loops terminate on empties). With growth enabled it defers
// to maybeGrow; with growth disabled it sheds tombstone pressure by
// rehashing in place, and reports ErrFull only when live entries alone
// exhaust the fixed capacity.
func (t *LinearProbing) ensureRoom() error {
	if t.maxLF != 0 {
		t.maybeGrow()
		return nil
	}
	if t.size+t.tombs+1 < len(t.slots) {
		return nil
	}
	if t.size+1 >= len(t.slots) {
		return errFull(t.Name(), t.size, len(t.slots))
	}
	t.rehash(len(t.slots))
	return nil
}

// Put implements Map. On a full growth-disabled table it grows once
// instead of failing; use TryPut for the ErrFull-reporting contract.
func (t *LinearProbing) Put(key, val uint64) bool {
	if isSentinelKey(key) {
		return t.sent.put(key, val)
	}
	return t.mustPutHashed(key, val, t.fn.Hash(key))
}

// mustPutHashed is the insert primitive of the legacy Map contract: a
// full growth-disabled table grows once instead of failing.
func (t *LinearProbing) mustPutHashed(key, val, hash uint64) bool {
	_, existed, err := t.rmwHashed(key, val, hash, true, nil)
	if err != nil {
		// Growth disabled and full, and the key is new (rmwHashed updates
		// existing keys in place without needing room): grow once.
		t.rehash(len(t.slots) * 2)
		_, existed, _ = t.rmwHashed(key, val, hash, true, nil)
	}
	return !existed
}

// rmwHashed is the single-probe read-modify-write primitive behind
// GetOrPut, Upsert and the error-based put: one probe sequence finds the
// key or its insertion point. With fn nil and overwrite false it is
// GetOrPut(val); with overwrite true it is a plain put; with fn set it is
// Upsert(fn). It returns the value now stored and whether the key already
// existed. The growth-disabled full check
// fires only when an insert is actually needed, so operations that resolve
// to an existing key keep working on a full table.
func (t *LinearProbing) rmwHashed(key, val, hash uint64, overwrite bool, fn func(uint64, bool) uint64) (uint64, bool, error) {
	if isSentinelKey(key) {
		v, existed := t.sent.rmw(key, val, overwrite, fn)
		return v, existed, nil
	}
	if t.maxLF != 0 {
		t.maybeGrow()
	} else if t.size+t.tombs+1 >= len(t.slots) && t.tombs > 0 {
		// Shed tombstone pressure so the probe below is guaranteed a
		// truly empty slot to terminate on.
		t.rehash(len(t.slots))
	}
	i := hash >> t.shift
	firstTomb := -1
	for {
		s := &t.slots[i]
		if s.key == key {
			if fn != nil {
				s.val = fn(s.val, true)
			} else if overwrite {
				s.val = val
			}
			return s.val, true, nil
		}
		if s.key == emptyKey {
			if t.maxLF == 0 && t.size+1 >= len(t.slots) {
				return 0, false, errFull(t.Name(), t.size, len(t.slots))
			}
			v := val
			if fn != nil {
				v = fn(0, false)
			}
			if firstTomb >= 0 {
				t.slots[firstTomb] = pair{key, v}
				t.tombs--
			} else {
				*s = pair{key, v}
			}
			t.size++
			return v, false, nil
		}
		if s.key == tombKey && firstTomb < 0 {
			firstTomb = int(i)
		}
		i = (i + 1) & t.mask
	}
}

// Delete implements Map using the optimized tombstone strategy.
func (t *LinearProbing) Delete(key uint64) bool {
	if isSentinelKey(key) {
		return t.sent.delete(key)
	}
	i := t.home(key)
	for {
		s := &t.slots[i]
		if s.key == key {
			next := (i + 1) & t.mask
			if t.slots[next].key == emptyKey {
				// Cluster ends here: no tombstone needed. Clearing this
				// slot may also strand tombstones directly before it at
				// the new cluster end; clear those too.
				s.key, s.val = emptyKey, 0
				j := (i - 1) & t.mask
				for t.slots[j].key == tombKey {
					t.slots[j].key, t.slots[j].val = emptyKey, 0
					t.tombs--
					j = (j - 1) & t.mask
				}
			} else {
				s.key, s.val = tombKey, 0
				t.tombs++
			}
			t.size--
			return true
		}
		if s.key == emptyKey {
			return false
		}
		i = (i + 1) & t.mask
	}
}

// maybeGrow rehashes when occupancy (live + tombstones) would exceed the
// configured threshold: it doubles when live entries alone demand it, and
// rehashes in place when the pressure comes from tombstones.
func (t *LinearProbing) maybeGrow() {
	if t.maxLF == 0 {
		return
	}
	threshold := int(t.maxLF * float64(len(t.slots)))
	if t.size+t.tombs+1 <= threshold {
		return
	}
	newCap := len(t.slots)
	if t.size+1 > threshold {
		newCap *= 2
	}
	t.rehash(newCap)
}

// rehash rebuilds the table with the given capacity, dropping tombstones.
func (t *LinearProbing) rehash(capacity int) {
	t.grows++
	old := t.slots
	t.init(capacity)
	for idx := range old {
		k := old[idx].key
		if k == emptyKey || k == tombKey {
			continue
		}
		i := t.home(k)
		for t.slots[i].key != emptyKey {
			i = (i + 1) & t.mask
		}
		t.slots[i] = old[idx]
		t.size++
	}
}

// Range implements Map.
func (t *LinearProbing) Range(fn func(key, val uint64) bool) {
	if !t.sent.rng(fn) {
		return
	}
	for i := range t.slots {
		k := t.slots[i].key
		if k == emptyKey || k == tombKey {
			continue
		}
		if !fn(k, t.slots[i].val) {
			return
		}
	}
}

// Displacements returns, for every live entry, its displacement d: the
// number of probe steps from its optimal slot (§2.2). The sum of the
// returned values is the table's total displacement, the paper's measure of
// linear-probing health.
func (t *LinearProbing) Displacements() []int {
	out := make([]int, 0, t.size)
	for i := range t.slots {
		k := t.slots[i].key
		if k == emptyKey || k == tombKey {
			continue
		}
		d := (uint64(i) - t.home(k)) & t.mask
		out = append(out, int(d))
	}
	return out
}

// ClusterLengths returns the lengths of all maximal runs of occupied slots
// (tombstones count as occupied, since probes must traverse them). Primary
// clustering shows up as a heavy tail here.
func (t *LinearProbing) ClusterLengths() []int {
	n := len(t.slots)
	occupied := func(i int) bool { return t.slots[i].key != emptyKey }
	return clusterLengths(n, occupied)
}

// clusterLengths computes maximal circular runs of occupied slots.
func clusterLengths(n int, occupied func(int) bool) []int {
	var out []int
	// Find a starting empty slot to anchor circular runs.
	start := -1
	for i := 0; i < n; i++ {
		if !occupied(i) {
			start = i
			break
		}
	}
	if start == -1 {
		return []int{n} // completely full: one cluster
	}
	run := 0
	for off := 1; off <= n; off++ {
		i := (start + off) % n
		if occupied(i) {
			run++
		} else if run > 0 {
			out = append(out, run)
			run = 0
		}
	}
	if run > 0 {
		out = append(out, run)
	}
	return out
}

// ProbeSlots invokes visit for every slot a lookup of key examines, in
// probe order, ending at the matching or first empty slot (inclusive), or
// earlier if visit returns false. Sentinel-routed keys (0 and 2^64-1) touch
// no slots. This diagnostic feeds the §7 layout/cache analysis: the slot
// trace converts to cache-line traces under AoS (16 B/slot) or SoA
// (8 B/slot key column) layout.
func (t *LinearProbing) ProbeSlots(key uint64, visit func(slot int) bool) {
	if isSentinelKey(key) {
		return
	}
	i := t.home(key)
	for {
		if !visit(int(i)) {
			return
		}
		s := &t.slots[i]
		if s.key == key || s.key == emptyKey {
			return
		}
		i = (i + 1) & t.mask
	}
}
