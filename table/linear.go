package table

// LinearProbing is an open-addressing hash table with linear probing in
// array-of-structs layout (§2.2 of the paper). It is the simplest probing
// scheme: on a collision the next slots are scanned circularly until a free
// one is found. Its strengths are minimal code complexity and perfectly
// sequential memory access; its weakness is primary clustering at high load
// factors.
//
// Deletion uses the paper's optimized tombstone strategy: a tombstone is
// placed only when it is needed to keep a cluster connected (i.e. when the
// slot following the deleted entry is occupied); otherwise the slot is
// simply cleared, and any tombstones immediately preceding a new cluster
// end are cleared as well. Inserts recycle tombstones after confirming the
// key is not already present.
//
// The scheme is an instantiation of the policy-driven probe kernel
// (kernel.go): the linear probe sequence over the AoS layout with no
// displacement, from which the scalar operations, batch walks, RMW
// primitives, iterators and diagnostics all derive.
type LinearProbing struct {
	kern
}

var _ Table = (*LinearProbing)(nil)

// NewLinearProbing returns an empty linear-probing table configured by cfg.
func NewLinearProbing(cfg Config) *LinearProbing {
	t := &LinearProbing{}
	t.setup(cfg, "LP", aosLayout{}, linearSeq{}, noDisplace{})
	return t
}

// clusterLengths computes maximal circular runs of occupied slots.
func clusterLengths(n int, occupied func(int) bool) []int {
	var out []int
	// Find a starting empty slot to anchor circular runs.
	start := -1
	for i := 0; i < n; i++ {
		if !occupied(i) {
			start = i
			break
		}
	}
	if start == -1 {
		return []int{n} // completely full: one cluster
	}
	run := 0
	for off := 1; off <= n; off++ {
		i := (start + off) % n
		if occupied(i) {
			run++
		} else if run > 0 {
			out = append(out, run)
			run = 0
		}
	}
	if run > 0 {
		out = append(out, run)
	}
	return out
}
