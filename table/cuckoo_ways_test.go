package table

import (
	"testing"

	"repro/internal/prng"
)

// TestCuckooAchievableLoadFactors reproduces the §2.5 discussion: the load
// factors at which traditional k-ary Cuckoo construction works without
// rehashing are ~<50% for k=2, ~88% for k=3 and ~96.7% for k=4. We build to
// a "safe" load factor (comfortably below each threshold) and require zero
// rehashes, then build past the threshold and require that construction had
// to rehash (or grow) to cope.
func TestCuckooAchievableLoadFactors(t *testing.T) {
	const capacity = 1 << 13
	cases := []struct {
		ways     int
		safePct  int // build must succeed with zero rehashes
		breakPct int // build must trigger rehashing/growth
	}{
		{2, 42, 60},
		{3, 80, 95},
		{4, 93, 99},
	}
	rng := prng.NewXoshiro256(123)
	keys := make([]uint64, capacity)
	for i := range keys {
		keys[i] = rng.Next() | 1
	}
	for _, c := range cases {
		m := NewCuckooK(Config{InitialCapacity: capacity, Seed: 9}, c.ways)
		nSafe := m.Capacity() * c.safePct / 100
		for i := 0; i < nSafe; i++ {
			m.Put(keys[i], uint64(i))
		}
		if m.Rehashes() != 0 {
			t.Errorf("k=%d: %d rehashes while building to %d%% (should be achievable)",
				c.ways, m.Rehashes(), c.safePct)
		}
		if m.Len() != nSafe {
			t.Fatalf("k=%d: built %d entries, want %d", c.ways, m.Len(), nSafe)
		}

		m2 := NewCuckooK(Config{InitialCapacity: capacity, Seed: 9}, c.ways)
		nBreak := m2.Capacity() * c.breakPct / 100
		for i := 0; i < nBreak; i++ {
			m2.Put(keys[i], uint64(i))
		}
		if m2.Rehashes() == 0 && m2.Capacity() == m.Capacity() {
			t.Errorf("k=%d: built to %d%% with no rehash; threshold should forbid it",
				c.ways, c.breakPct)
		}
		// Whatever it took, the table must end correct.
		for i := 0; i < nBreak; i++ {
			if v, ok := m2.Get(keys[i]); !ok || v != uint64(i) {
				t.Fatalf("k=%d: key %d lost after stress build", c.ways, i)
			}
		}
	}
}

// TestCuckoo3Ways exercises the non-power-of-two subtable path end to end.
func TestCuckoo3Ways(t *testing.T) {
	m := NewCuckooK(Config{InitialCapacity: 1 << 10, MaxLoadFactor: 0.8, Seed: 4}, 3)
	if m.Ways() != 3 {
		t.Fatalf("Ways = %d", m.Ways())
	}
	if m.Capacity()%3 != 0 {
		t.Fatalf("capacity %d not divisible into 3 subtables", m.Capacity())
	}
	rng := prng.NewXoshiro256(5)
	oracle := map[uint64]uint64{}
	for i := 0; i < 5000; i++ {
		k := rng.Uint64n(4000)
		switch rng.Uint64n(4) {
		case 0:
			m.Delete(k)
			delete(oracle, k)
		default:
			m.Put(k, k*3)
			oracle[k] = k * 3
		}
	}
	if m.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", m.Len(), len(oracle))
	}
	for k, v := range oracle {
		if got, ok := m.Get(k); !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v", k, got, ok)
		}
	}
	occ := m.SubtableOccupancy()
	if len(occ) != 3 {
		t.Fatalf("occupancy %v", occ)
	}
}
