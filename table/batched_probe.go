package table

import "repro/hashfn"

// Batched pipeline for quadratic probing and Robin Hood. Both keep the
// lane/round-robin structure of the linear-probing pipeline; the per-lane
// auxiliary counter carries the scheme's probe state (QP's triangular step,
// RH's displacement for the early abort).

// GetBatch implements Batcher.
func (t *QuadraticProbing) GetBatch(keys []uint64, vals []uint64, ok []bool) int {
	checkBatchGet(len(keys), len(vals), len(ok))
	bt := t.buf()
	hits := 0
	chunks(len(keys), func(lo, hi int) {
		hits += t.getChunk(bt, keys[lo:hi], vals[lo:hi], ok[lo:hi])
	})
	return hits
}

func (t *QuadraticProbing) getChunk(bt *batchBuf, keys, vals []uint64, ok []bool) int {
	hashfn.HashBatch(t.fn, keys, bt.hash[:])
	shift, mask := t.shift, t.mask
	hits := 0
	live := bt.lane[:0]
	// A lane walks inline while the next triangular step stays on the
	// current cache line (true for the first step or two, then the jumps
	// grow) and yields when the walk would cross onto a new line — so each
	// rotation corresponds to one fresh, overlappable line load, exactly
	// as in the linear-probing pipeline.
	for l := range keys {
		k := keys[l]
		if isSentinelKey(k) {
			vals[l], ok[l] = t.sent.get(k)
			if ok[l] {
				hits++
			}
			continue
		}
		i := bt.hash[l] >> shift
		for step := uint64(1); ; step++ {
			s := &t.slots[i]
			if s.key == k {
				vals[l], ok[l] = s.val, true
				hits++
				break
			}
			if s.key == emptyKey || step > mask {
				// Empty slot, or a full triangular sweep (the sequence is a
				// permutation of a power-of-two table): the key is absent.
				vals[l], ok[l] = 0, false
				break
			}
			next := (i + step) & mask
			if next&^(slotsPerCacheLine-1) != i&^(slotsPerCacheLine-1) {
				bt.a[l] = next
				bt.b[l] = step + 1
				live = append(live, int32(l))
				break
			}
			i = next
		}
	}
	for len(live) > 0 {
		w := 0
		for _, l := range live {
			i, step := bt.a[l], bt.b[l]
			k := keys[l]
			for ; ; step++ {
				s := &t.slots[i]
				if s.key == k {
					vals[l], ok[l] = s.val, true
					hits++
					break
				}
				if s.key == emptyKey || step > mask {
					vals[l], ok[l] = 0, false
					break
				}
				next := (i + step) & mask
				if next&^(slotsPerCacheLine-1) != i&^(slotsPerCacheLine-1) {
					bt.a[l] = next
					bt.b[l] = step + 1
					live[w] = l
					w++
					break
				}
				i = next
			}
		}
		live = live[:w]
	}
	return hits
}

// PutBatch implements Batcher; see LinearProbing.PutBatch.
func (t *QuadraticProbing) PutBatch(keys []uint64, vals []uint64) int {
	checkBatchPut(len(keys), len(vals))
	bt := t.buf()
	inserted := 0
	chunks(len(keys), func(lo, hi int) {
		kc, vc := keys[lo:hi], vals[lo:hi]
		hashfn.HashBatch(t.fn, kc, bt.hash[:])
		for l, k := range kc {
			if isSentinelKey(k) {
				if t.sent.put(k, vc[l]) {
					inserted++
				}
				continue
			}
			if t.mustPutHashed(k, vc[l], bt.hash[l]) {
				inserted++
			}
		}
	})
	return inserted
}

// GetBatch implements Batcher, including the cache-line-granular early
// abort of the scalar Get: a lane leaves the walk as soon as the Robin
// Hood ordering proves its key absent.
func (t *RobinHood) GetBatch(keys []uint64, vals []uint64, ok []bool) int {
	checkBatchGet(len(keys), len(vals), len(ok))
	bt := t.buf()
	hits := 0
	chunks(len(keys), func(lo, hi int) {
		hits += t.getChunk(bt, keys[lo:hi], vals[lo:hi], ok[lo:hi])
	})
	return hits
}

func (t *RobinHood) getChunk(bt *batchBuf, keys, vals []uint64, ok []bool) int {
	hashfn.HashBatch(t.fn, keys, bt.hash[:])
	shift, mask := t.shift, t.mask
	hits := 0
	live := bt.lane[:0]
	// First pass: walk each lane from home to the end of its cache line.
	// The early-abort check (§2.4) fires exactly at line ends, which is
	// also where unresolved lanes yield — one ordering check per line, as
	// in the scalar Get.
	for l := range keys {
		k := keys[l]
		if isSentinelKey(k) {
			vals[l], ok[l] = t.sent.get(k)
			if ok[l] {
				hits++
			}
			continue
		}
		i := bt.hash[l] >> shift
		for d := uint64(0); ; d++ {
			s := &t.slots[i]
			if s.key == k {
				vals[l], ok[l] = s.val, true
				hits++
				break
			}
			if s.key == emptyKey {
				vals[l], ok[l] = 0, false
				break
			}
			if i&(slotsPerCacheLine-1) == slotsPerCacheLine-1 {
				// Early abort: a resident closer to its home than we are
				// to ours proves our key absent.
				if (i-t.home(s.key))&mask < d {
					vals[l], ok[l] = 0, false
					break
				}
				bt.a[l] = (i + 1) & mask
				bt.b[l] = d + 1
				live = append(live, int32(l))
				break
			}
			i = (i + 1) & mask
		}
	}
	// Round-robin walk, one cache line per live lane per round.
	for len(live) > 0 {
		w := 0
		for _, l := range live {
			i, d := bt.a[l], bt.b[l]
			k := keys[l]
			for ; ; d++ {
				s := &t.slots[i]
				if s.key == k {
					vals[l], ok[l] = s.val, true
					hits++
					break
				}
				if s.key == emptyKey {
					vals[l], ok[l] = 0, false
					break
				}
				if i&(slotsPerCacheLine-1) == slotsPerCacheLine-1 {
					if (i-t.home(s.key))&mask < d {
						vals[l], ok[l] = 0, false
						break
					}
					bt.a[l] = (i + 1) & mask
					bt.b[l] = d + 1
					live[w] = l
					w++
					break
				}
				i = (i + 1) & mask
			}
		}
		live = live[:w]
	}
	return hits
}

// PutBatch implements Batcher. Robin Hood insertion displaces resident
// entries, whose hashes are recomputed internally; only the inserted keys'
// hashes come from the bulk pass.
func (t *RobinHood) PutBatch(keys []uint64, vals []uint64) int {
	checkBatchPut(len(keys), len(vals))
	bt := t.buf()
	inserted := 0
	chunks(len(keys), func(lo, hi int) {
		kc, vc := keys[lo:hi], vals[lo:hi]
		hashfn.HashBatch(t.fn, kc, bt.hash[:])
		for l, k := range kc {
			if isSentinelKey(k) {
				if t.sent.put(k, vc[l]) {
					inserted++
				}
				continue
			}
			if t.mustPutHashed(k, vc[l], bt.hash[l]) {
				inserted++
			}
		}
	})
	return inserted
}
