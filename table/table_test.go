package table

import (
	"fmt"
	"testing"

	"repro/hashfn"
	"repro/internal/prng"
)

// allSchemes lists every scheme, including the SoA layout variant and the
// DH kernel extension — the registry's AllSchemes, so a newly registered
// scheme is picked up by the whole differential/property suite
// automatically.
func allSchemes() []Scheme { return AllSchemes() }

func allFamilies() []hashfn.Family { return hashfn.Families() }

// forEachTable runs fn for each scheme under each family, with growth
// enabled at the given threshold.
func forEachTable(t *testing.T, capacity int, maxLF float64, fn func(t *testing.T, m Map)) {
	t.Helper()
	for _, s := range allSchemes() {
		for _, f := range allFamilies() {
			name := fmt.Sprintf("%s/%s", s, f.Name())
			t.Run(name, func(t *testing.T) {
				m := MustNew(s, Config{
					InitialCapacity: capacity,
					MaxLoadFactor:   maxLF,
					Family:          f,
					Seed:            0xbeef,
				})
				fn(t, m)
			})
		}
	}
}

func TestEmptyTable(t *testing.T) {
	forEachTable(t, 64, 0.9, func(t *testing.T, m Map) {
		if m.Len() != 0 {
			t.Fatalf("empty table Len = %d, want 0", m.Len())
		}
		if _, ok := m.Get(42); ok {
			t.Fatal("Get on empty table reported a hit")
		}
		if m.Delete(42) {
			t.Fatal("Delete on empty table reported success")
		}
		calls := 0
		m.Range(func(k, v uint64) bool { calls++; return true })
		if calls != 0 {
			t.Fatalf("Range on empty table visited %d entries", calls)
		}
		if m.Capacity() <= 0 {
			t.Fatalf("Capacity = %d, want positive", m.Capacity())
		}
		if m.MemoryFootprint() == 0 {
			t.Fatal("MemoryFootprint = 0, want positive")
		}
	})
}

func TestPutGetDelete(t *testing.T) {
	forEachTable(t, 64, 0.9, func(t *testing.T, m Map) {
		if !m.Put(7, 70) {
			t.Fatal("first Put(7) reported update, want insert")
		}
		if m.Put(7, 71) {
			t.Fatal("second Put(7) reported insert, want update")
		}
		if v, ok := m.Get(7); !ok || v != 71 {
			t.Fatalf("Get(7) = %d,%v; want 71,true", v, ok)
		}
		if m.Len() != 1 {
			t.Fatalf("Len = %d, want 1", m.Len())
		}
		if !m.Delete(7) {
			t.Fatal("Delete(7) failed")
		}
		if m.Delete(7) {
			t.Fatal("second Delete(7) succeeded")
		}
		if _, ok := m.Get(7); ok {
			t.Fatal("Get(7) after delete reported a hit")
		}
		if m.Len() != 0 {
			t.Fatalf("Len after delete = %d, want 0", m.Len())
		}
	})
}

// TestSentinelKeys exercises the two keys whose literal values collide with
// the slot markers: 0 (empty) and 2^64-1 (tombstone).
func TestSentinelKeys(t *testing.T) {
	maxKey := ^uint64(0)
	forEachTable(t, 64, 0.9, func(t *testing.T, m Map) {
		for _, k := range []uint64{0, maxKey} {
			if !m.Put(k, k^0xff) {
				t.Fatalf("Put(%#x) reported update", k)
			}
			if v, ok := m.Get(k); !ok || v != k^0xff {
				t.Fatalf("Get(%#x) = %d,%v", k, v, ok)
			}
		}
		if m.Len() != 2 {
			t.Fatalf("Len = %d, want 2", m.Len())
		}
		// Sentinel keys must appear in Range.
		seen := map[uint64]bool{}
		m.Range(func(k, v uint64) bool { seen[k] = true; return true })
		if !seen[0] || !seen[maxKey] {
			t.Fatalf("Range missed sentinel keys: %v", seen)
		}
		// Update and delete.
		m.Put(0, 123)
		if v, _ := m.Get(0); v != 123 {
			t.Fatalf("Get(0) after update = %d, want 123", v)
		}
		if !m.Delete(0) || !m.Delete(maxKey) {
			t.Fatal("Delete of sentinel keys failed")
		}
		if m.Len() != 0 {
			t.Fatalf("Len = %d, want 0", m.Len())
		}
	})
}

// TestDifferentialVsBuiltinMap replays a long random operation stream
// against every table and Go's built-in map as the oracle.
func TestDifferentialVsBuiltinMap(t *testing.T) {
	const ops = 60000
	forEachTable(t, 64, 0.85, func(t *testing.T, m Map) {
		rng := prng.NewXoshiro256(0x0d1f)
		oracle := make(map[uint64]uint64)
		// Small key space forces plenty of updates, deletes of present
		// keys and lookups of absent ones.
		keySpace := uint64(8192)
		for i := 0; i < ops; i++ {
			k := rng.Uint64n(keySpace)
			switch rng.Uint64n(10) {
			case 0, 1, 2, 3: // put
				v := rng.Next()
				_, existed := oracle[k]
				inserted := m.Put(k, v)
				if inserted == existed {
					t.Fatalf("op %d: Put(%d) inserted=%v, oracle existed=%v", i, k, inserted, existed)
				}
				oracle[k] = v
			case 4, 5: // delete
				_, existed := oracle[k]
				if deleted := m.Delete(k); deleted != existed {
					t.Fatalf("op %d: Delete(%d) = %v, oracle existed=%v", i, k, deleted, existed)
				}
				delete(oracle, k)
			default: // get
				wantV, wantOK := oracle[k]
				v, ok := m.Get(k)
				if ok != wantOK || (ok && v != wantV) {
					t.Fatalf("op %d: Get(%d) = %d,%v; want %d,%v", i, k, v, ok, wantV, wantOK)
				}
			}
			if m.Len() != len(oracle) {
				t.Fatalf("op %d: Len = %d, oracle has %d", i, m.Len(), len(oracle))
			}
		}
		// Final full sweep, both directions.
		for k, want := range oracle {
			if v, ok := m.Get(k); !ok || v != want {
				t.Fatalf("final Get(%d) = %d,%v; want %d,true", k, v, ok, want)
			}
		}
		got := make(map[uint64]uint64, m.Len())
		m.Range(func(k, v uint64) bool {
			if _, dup := got[k]; dup {
				t.Fatalf("Range yielded key %d twice", k)
			}
			got[k] = v
			return true
		})
		if len(got) != len(oracle) {
			t.Fatalf("Range yielded %d entries, oracle has %d", len(got), len(oracle))
		}
		for k, v := range oracle {
			if got[k] != v {
				t.Fatalf("Range value for %d = %d, want %d", k, got[k], v)
			}
		}
	})
}

// TestGrowth fills tables far past their initial capacity.
func TestGrowth(t *testing.T) {
	const n = 20000
	forEachTable(t, 8, 0.8, func(t *testing.T, m Map) {
		for i := uint64(1); i <= n; i++ {
			m.Put(i, i*2)
		}
		if m.Len() != n {
			t.Fatalf("Len = %d, want %d", m.Len(), n)
		}
		for i := uint64(1); i <= n; i++ {
			if v, ok := m.Get(i); !ok || v != i*2 {
				t.Fatalf("Get(%d) = %d,%v after growth", i, v, ok)
			}
		}
		if lf := m.LoadFactor(); lf > 0.85 {
			t.Fatalf("LoadFactor after growth = %v, want <= grow threshold", lf)
		}
	})
}

// TestFixedCapacityFill fills growth-disabled tables to 90% like the
// paper's WORM experiments.
func TestFixedCapacityFill(t *testing.T) {
	const capacity = 1 << 12
	n := capacity * 9 / 10
	for _, s := range allSchemes() {
		t.Run(string(s), func(t *testing.T) {
			cap := capacity
			if s == SchemeChained8 || s == SchemeChained24 {
				// Chained directories hold >1 entry per slot; capacity is
				// a directory size here, not a hard limit.
				cap = capacity / 2
			}
			m := MustNew(s, Config{InitialCapacity: cap, Seed: 7})
			for i := 1; i <= n; i++ {
				m.Put(uint64(i)*2654435761, uint64(i))
			}
			if m.Len() != n {
				t.Fatalf("Len = %d, want %d", m.Len(), n)
			}
			for i := 1; i <= n; i++ {
				if v, ok := m.Get(uint64(i) * 2654435761); !ok || v != uint64(i) {
					t.Fatalf("Get key %d = %d,%v", i, v, ok)
				}
			}
		})
	}
}

// TestRangeEarlyStop checks that Range stops when fn returns false.
func TestRangeEarlyStop(t *testing.T) {
	forEachTable(t, 64, 0.9, func(t *testing.T, m Map) {
		for i := uint64(1); i <= 20; i++ {
			m.Put(i, i)
		}
		calls := 0
		m.Range(func(k, v uint64) bool {
			calls++
			return calls < 5
		})
		if calls != 5 {
			t.Fatalf("Range visited %d entries after early stop, want 5", calls)
		}
	})
}

// TestDeleteThenReinsert stresses tombstone recycling paths.
func TestDeleteThenReinsert(t *testing.T) {
	forEachTable(t, 256, 0, func(t *testing.T, m Map) {
		// Growth disabled: churn within fixed capacity. 256 slots, keep
		// ~100 live while cycling through deletes and reinserts.
		rng := prng.NewXoshiro256(3)
		live := map[uint64]uint64{}
		for i := 0; i < 4000; i++ {
			k := rng.Uint64n(100) + 1
			if _, ok := live[k]; ok {
				if !m.Delete(k) {
					t.Fatalf("op %d: Delete(%d) failed", i, k)
				}
				delete(live, k)
			} else {
				v := rng.Next()
				m.Put(k, v)
				live[k] = v
			}
			if m.Len() != len(live) {
				t.Fatalf("op %d: Len=%d want %d", i, m.Len(), len(live))
			}
		}
		for k, v := range live {
			if got, ok := m.Get(k); !ok || got != v {
				t.Fatalf("Get(%d) = %d,%v; want %d,true", k, got, ok, v)
			}
		}
	})
}

// TestRegistryDrift pins the registry's advertised scheme lists against
// each other, so a newly registered scheme cannot silently drop out of a
// list again (as LPSoA once did from Schemes and OpenAddressingSchemes).
func TestRegistryDrift(t *testing.T) {
	all := AllSchemes()
	if len(all) != 8 {
		t.Fatalf("AllSchemes lists %d schemes, want 8: %v", len(all), all)
	}
	in := func(list []Scheme, s Scheme) bool {
		for _, x := range list {
			if x == s {
				return true
			}
		}
		return false
	}
	// Every scheme in every list constructs, with a matching Name.
	for _, s := range all {
		m, err := New(s, Config{InitialCapacity: 64})
		if err != nil {
			t.Fatalf("New(%s): %v", s, err)
		}
		if m.Name() != string(s) {
			t.Errorf("New(%s).Name() = %s", s, m.Name())
		}
	}
	// Schemes is the paper's six; it must omit only the two extensions.
	if len(Schemes()) != 6 {
		t.Fatalf("Schemes lists %d schemes, want the paper's 6", len(Schemes()))
	}
	for _, s := range Schemes() {
		if !in(all, s) {
			t.Errorf("Schemes lists %s but AllSchemes does not", s)
		}
		if s == SchemeLPSoA || s == SchemeDH {
			t.Errorf("Schemes must not list extension scheme %s", s)
		}
	}
	// OpenAddressingSchemes = AllSchemes minus the chained variants.
	oa := OpenAddressingSchemes()
	if len(oa) != len(all)-2 {
		t.Fatalf("OpenAddressingSchemes lists %d schemes, want %d", len(oa), len(all)-2)
	}
	for _, s := range []Scheme{SchemeLPSoA, SchemeDH, SchemeLP, SchemeQP, SchemeRH, SchemeCuckooH4} {
		if !in(oa, s) {
			t.Errorf("OpenAddressingSchemes omits %s", s)
		}
	}
	// KernelSchemes = the kernel instantiations: open addressing minus
	// Cuckoo.
	ks := KernelSchemes()
	if len(ks) != len(oa)-1 {
		t.Fatalf("KernelSchemes lists %d schemes, want %d", len(ks), len(oa)-1)
	}
	for _, s := range ks {
		if !in(oa, s) || s == SchemeCuckooH4 {
			t.Errorf("KernelSchemes lists %s unexpectedly", s)
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, s := range Schemes() {
		m, err := New(s, Config{InitialCapacity: 64})
		if err != nil {
			t.Fatalf("New(%s): %v", s, err)
		}
		if m.Name() != string(s) {
			t.Errorf("New(%s).Name() = %s", s, m.Name())
		}
	}
	if _, err := New("bogus", Config{}); err == nil {
		t.Fatal("New(bogus) succeeded, want error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(bogus) did not panic")
		}
	}()
	MustNew("bogus", Config{})
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.InitialCapacity != 8 {
		t.Errorf("default capacity = %d, want 8", c.InitialCapacity)
	}
	if c.Family == nil || c.Family.Name() != "Mult" {
		t.Errorf("default family = %v, want Mult", c.Family)
	}
	c = Config{InitialCapacity: 1000}.withDefaults()
	if c.InitialCapacity != 1024 {
		t.Errorf("capacity 1000 rounded to %d, want 1024", c.InitialCapacity)
	}
	c = Config{MaxLoadFactor: 1.5}.withDefaults()
	if c.MaxLoadFactor != 0 {
		t.Errorf("out-of-range MaxLoadFactor normalized to %v, want 0", c.MaxLoadFactor)
	}
}
