package table

// LinearProbingSoA is linear probing in struct-of-arrays layout (§7 of the
// paper): keys and values live in two separate, aligned arrays, like a
// column layout. Compared to the array-of-structs LinearProbing:
//
//   - a successful probe must touch at least two cache lines (one in the
//     key array, one in the value array), which hurts short probe
//     sequences;
//   - long probe sequences scan only keys — half the bytes of AoS — which
//     helps at high load factors;
//   - densely packed keys make vectorized comparison natural, which is why
//     the paper's SIMD variant favours SoA (see GetVec in batch.go).
//
// Semantics are identical to LinearProbing, including the optimized
// tombstone deletion: the two schemes are the same kernel instantiated
// over different layout policies (the §7 dimension made a type).
type LinearProbingSoA struct {
	kern
}

var _ Table = (*LinearProbingSoA)(nil)

// NewLinearProbingSoA returns an empty SoA linear-probing table.
func NewLinearProbingSoA(cfg Config) *LinearProbingSoA {
	t := &LinearProbingSoA{}
	t.setup(cfg, "LPSoA", soaLayout{}, linearSeq{}, noDisplace{})
	return t
}
