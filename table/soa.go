package table

import "repro/hashfn"

// LinearProbingSoA is linear probing in struct-of-arrays layout (§7 of the
// paper): keys and values live in two separate, aligned arrays, like a
// column layout. Compared to the array-of-structs LinearProbing:
//
//   - a successful probe must touch at least two cache lines (one in the
//     key array, one in the value array), which hurts short probe
//     sequences;
//   - long probe sequences scan only keys — half the bytes of AoS — which
//     helps at high load factors;
//   - densely packed keys make vectorized comparison natural, which is why
//     the paper's SIMD variant favours SoA (see GetVec in batch.go).
//
// Semantics are identical to LinearProbing, including the optimized
// tombstone deletion.
type LinearProbingSoA struct {
	keys   []uint64
	vals   []uint64
	shift  uint
	mask   uint64
	size   int
	tombs  int
	fn     hashfn.Function
	family hashfn.Family
	seed   uint64
	maxLF  float64
	grows  int
	sent   sentinels
	batchState
}

var _ Table = (*LinearProbingSoA)(nil)

// NewLinearProbingSoA returns an empty SoA linear-probing table.
func NewLinearProbingSoA(cfg Config) *LinearProbingSoA {
	cfg = cfg.withDefaults()
	t := &LinearProbingSoA{
		family: cfg.Family,
		seed:   cfg.Seed,
		maxLF:  cfg.MaxLoadFactor,
	}
	t.fn = cfg.Family.New(cfg.Seed)
	t.init(cfg.InitialCapacity)
	return t
}

func (t *LinearProbingSoA) init(capacity int) {
	t.keys = make([]uint64, capacity)
	t.vals = make([]uint64, capacity)
	t.shift = 64 - log2(capacity)
	t.mask = uint64(capacity - 1)
	t.size = 0
	t.tombs = 0
}

func (t *LinearProbingSoA) home(key uint64) uint64 { return t.fn.Hash(key) >> t.shift }

// Name implements Map.
func (t *LinearProbingSoA) Name() string { return "LPSoA" }

// HashName returns the hash-function family name.
func (t *LinearProbingSoA) HashName() string { return t.fn.Name() }

// Len implements Map.
func (t *LinearProbingSoA) Len() int { return t.size + t.sent.len() }

// Capacity implements Map.
func (t *LinearProbingSoA) Capacity() int { return len(t.keys) }

// LoadFactor implements Map.
func (t *LinearProbingSoA) LoadFactor() float64 {
	return float64(t.Len()) / float64(len(t.keys))
}

// Tombstones returns the number of tombstoned slots.
func (t *LinearProbingSoA) Tombstones() int { return t.tombs }

// MemoryFootprint implements Map: two 8-byte arrays, same total as AoS.
func (t *LinearProbingSoA) MemoryFootprint() uint64 {
	return uint64(len(t.keys)) * 16
}

// Get implements Map.
func (t *LinearProbingSoA) Get(key uint64) (uint64, bool) {
	if isSentinelKey(key) {
		return t.sent.get(key)
	}
	i := t.home(key)
	for {
		k := t.keys[i]
		if k == key {
			return t.vals[i], true
		}
		if k == emptyKey {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// ensureRoom keeps at least one truly empty slot so probe loops terminate;
// see LinearProbing.ensureRoom.
func (t *LinearProbingSoA) ensureRoom() error {
	if t.maxLF != 0 {
		t.maybeGrow()
		return nil
	}
	if t.size+t.tombs+1 < len(t.keys) {
		return nil
	}
	if t.size+1 >= len(t.keys) {
		return errFull(t.Name(), t.size, len(t.keys))
	}
	t.rehash(len(t.keys))
	return nil
}

// Put implements Map; like LinearProbing.Put it grows once instead of
// failing on a full growth-disabled table.
func (t *LinearProbingSoA) Put(key, val uint64) bool {
	if isSentinelKey(key) {
		return t.sent.put(key, val)
	}
	return t.mustPutHashed(key, val, t.fn.Hash(key))
}

// mustPutHashed is the legacy Map insert primitive; see
// LinearProbing.mustPutHashed.
func (t *LinearProbingSoA) mustPutHashed(key, val, hash uint64) bool {
	_, existed, err := t.rmwHashed(key, val, hash, true, nil)
	if err != nil {
		// Growth disabled and full, and the key is new (rmwHashed updates
		// existing keys in place without needing room): grow once.
		t.rehash(len(t.keys) * 2)
		_, existed, _ = t.rmwHashed(key, val, hash, true, nil)
	}
	return !existed
}

// rmwHashed is the single-probe read-modify-write primitive; see
// LinearProbing.rmwHashed.
func (t *LinearProbingSoA) rmwHashed(key, val, hash uint64, overwrite bool, fn func(uint64, bool) uint64) (uint64, bool, error) {
	if isSentinelKey(key) {
		v, existed := t.sent.rmw(key, val, overwrite, fn)
		return v, existed, nil
	}
	if t.maxLF != 0 {
		t.maybeGrow()
	} else if t.size+t.tombs+1 >= len(t.keys) && t.tombs > 0 {
		t.rehash(len(t.keys))
	}
	i := hash >> t.shift
	firstTomb := -1
	for {
		k := t.keys[i]
		if k == key {
			if fn != nil {
				t.vals[i] = fn(t.vals[i], true)
			} else if overwrite {
				t.vals[i] = val
			}
			return t.vals[i], true, nil
		}
		if k == emptyKey {
			if t.maxLF == 0 && t.size+1 >= len(t.keys) {
				return 0, false, errFull(t.Name(), t.size, len(t.keys))
			}
			v := val
			if fn != nil {
				v = fn(0, false)
			}
			if firstTomb >= 0 {
				t.keys[firstTomb] = key
				t.vals[firstTomb] = v
				t.tombs--
			} else {
				t.keys[i] = key
				t.vals[i] = v
			}
			t.size++
			return v, false, nil
		}
		if k == tombKey && firstTomb < 0 {
			firstTomb = int(i)
		}
		i = (i + 1) & t.mask
	}
}

// Delete implements Map with the optimized tombstone strategy (see
// LinearProbing.Delete).
func (t *LinearProbingSoA) Delete(key uint64) bool {
	if isSentinelKey(key) {
		return t.sent.delete(key)
	}
	i := t.home(key)
	for {
		k := t.keys[i]
		if k == key {
			next := (i + 1) & t.mask
			if t.keys[next] == emptyKey {
				t.keys[i], t.vals[i] = emptyKey, 0
				j := (i - 1) & t.mask
				for t.keys[j] == tombKey {
					t.keys[j] = emptyKey
					t.tombs--
					j = (j - 1) & t.mask
				}
			} else {
				t.keys[i], t.vals[i] = tombKey, 0
				t.tombs++
			}
			t.size--
			return true
		}
		if k == emptyKey {
			return false
		}
		i = (i + 1) & t.mask
	}
}

func (t *LinearProbingSoA) maybeGrow() {
	if t.maxLF == 0 {
		return
	}
	threshold := int(t.maxLF * float64(len(t.keys)))
	if t.size+t.tombs+1 <= threshold {
		return
	}
	newCap := len(t.keys)
	if t.size+1 > threshold {
		newCap *= 2
	}
	t.rehash(newCap)
}

func (t *LinearProbingSoA) rehash(capacity int) {
	t.grows++
	oldKeys, oldVals := t.keys, t.vals
	t.init(capacity)
	for idx, k := range oldKeys {
		if k == emptyKey || k == tombKey {
			continue
		}
		i := t.home(k)
		for t.keys[i] != emptyKey {
			i = (i + 1) & t.mask
		}
		t.keys[i] = k
		t.vals[i] = oldVals[idx]
		t.size++
	}
}

// Range implements Map.
func (t *LinearProbingSoA) Range(fn func(key, val uint64) bool) {
	if !t.sent.rng(fn) {
		return
	}
	for i, k := range t.keys {
		if k == emptyKey || k == tombKey {
			continue
		}
		if !fn(k, t.vals[i]) {
			return
		}
	}
}

// Displacements returns per-entry displacements, as for LinearProbing.
func (t *LinearProbingSoA) Displacements() []int {
	out := make([]int, 0, t.size)
	for i, k := range t.keys {
		if k == emptyKey || k == tombKey {
			continue
		}
		out = append(out, int((uint64(i)-t.home(k))&t.mask))
	}
	return out
}
