package table

// Observability: a point-in-time Stats snapshot for any table, assembled
// from the schemes' existing diagnostics (displacements, chain lengths,
// tombstone and rehash counters) through optional interfaces, so the hot
// paths carry no extra bookkeeping. Collecting a snapshot walks the table
// once (O(capacity)); it is meant for dashboards and debugging, not for
// per-operation use.

// Stats is a snapshot of one table's health and cost drivers.
type Stats struct {
	// Scheme and Function identify the table, e.g. "RH" + "Mult".
	Scheme   string `json:"scheme"`
	Function string `json:"function,omitempty"`
	// Partitions is the number of stripes behind a partitioned Handle
	// (1 for a plain table).
	Partitions int `json:"partitions"`

	Len         int     `json:"len"`
	Capacity    int     `json:"capacity"`
	LoadFactor  float64 `json:"load_factor"`
	MemoryBytes uint64  `json:"memory_bytes"`

	// Tombstones counts deleted-slot markers still occupying slots
	// (LP, LPSoA and QP only).
	Tombstones int `json:"tombstones,omitempty"`
	// Rehashes counts rehash events so far: growth doublings, in-place
	// tombstone purges, and (for Cuckoo) function redraws.
	Rehashes int `json:"rehashes,omitempty"`
	// Kicks is Cuckoo's total displacement steps across all inserts, the
	// cost driver behind its slow writes (§5.2).
	Kicks uint64 `json:"kicks,omitempty"`

	// MeanProbe and MaxProbe describe the expected probe count of a
	// successful lookup: displacement+1 for the probing schemes, the mean
	// position within a chain for chained hashing, and at most the number
	// of subtables for Cuckoo.
	MeanProbe float64 `json:"mean_probe"`
	MaxProbe  int     `json:"max_probe"`
	// TotalDisplacement is the paper's aggregate displacement measure for
	// the probing schemes (zero for chained and Cuckoo).
	TotalDisplacement uint64 `json:"total_displacement,omitempty"`
}

// Optional diagnostics interfaces the schemes already implement.
type (
	tombstoner    interface{ Tombstones() int }
	rehasher      interface{ Rehashes() int }
	kicker        interface{ TotalKicks() uint64 }
	displacer     interface{ Displacements() []int }
	chainMeasurer interface{ ChainLengths() []int }
	hashNamer     interface{ HashName() string }
	wayser        interface{ Ways() int }
)

// StatsOf collects a Stats snapshot from any table in this package.
func StatsOf(m Map) Stats {
	s := Stats{
		Scheme:      m.Name(),
		Partitions:  1,
		Len:         m.Len(),
		Capacity:    m.Capacity(),
		LoadFactor:  m.LoadFactor(),
		MemoryBytes: m.MemoryFootprint(),
	}
	if hn, ok := m.(hashNamer); ok {
		s.Function = hn.HashName()
	}
	if tb, ok := m.(tombstoner); ok {
		s.Tombstones = tb.Tombstones()
	}
	if rh, ok := m.(rehasher); ok {
		s.Rehashes = rh.Rehashes()
	}
	if kk, ok := m.(kicker); ok {
		s.Kicks = kk.TotalKicks()
	}
	switch t := m.(type) {
	case displacer:
		for _, d := range t.Displacements() {
			s.TotalDisplacement += uint64(d)
			if d+1 > s.MaxProbe {
				s.MaxProbe = d + 1
			}
		}
		if n := m.Len(); n > 0 {
			s.MeanProbe = 1 + float64(s.TotalDisplacement)/float64(n)
		}
	case chainMeasurer:
		// A lookup of the i-th entry of a chain costs i probes; averaging
		// over all entries gives sum(l*(l+1)/2) / n.
		var probeSum uint64
		var n int
		for _, l := range t.ChainLengths() {
			probeSum += uint64(l) * uint64(l+1) / 2
			n += l
			if l > s.MaxProbe {
				s.MaxProbe = l
			}
		}
		if n > 0 {
			s.MeanProbe = float64(probeSum) / float64(n)
		}
	case wayser:
		// Cuckoo: a successful lookup probes between 1 and k subtables,
		// k/2 on average under uniform placement.
		s.MaxProbe = t.Ways()
		s.MeanProbe = (1 + float64(t.Ways())) / 2
	}
	return s
}

// merge folds another stripe's snapshot into s (used by Handle.Stats for
// partitioned handles): sizes and counters add, probe measures combine
// weighted by entry count.
func (s *Stats) merge(o Stats) {
	weighted := s.MeanProbe*float64(s.Len) + o.MeanProbe*float64(o.Len)
	s.Partitions += o.Partitions
	s.Len += o.Len
	s.Capacity += o.Capacity
	s.MemoryBytes += o.MemoryBytes
	s.Tombstones += o.Tombstones
	s.Rehashes += o.Rehashes
	s.Kicks += o.Kicks
	s.TotalDisplacement += o.TotalDisplacement
	if o.MaxProbe > s.MaxProbe {
		s.MaxProbe = o.MaxProbe
	}
	if s.Len > 0 {
		s.MeanProbe = weighted / float64(s.Len)
	}
	if s.Capacity > 0 {
		s.LoadFactor = float64(s.Len) / float64(s.Capacity)
	}
}
