// Package table implements the five hashing schemes studied in
// "A Seven-Dimensional Analysis of Hashing Methods and its Implications on
// Query Processing" (Richter, Alvarez, Dittrich; PVLDB 9(3), 2015), §2:
//
//   - Chained8: classic chained hashing with an 8-byte (pointer-only)
//     directory and slab-allocated 24-byte entries.
//   - Chained24: chained hashing with a widened 24-byte directory slot that
//     inlines the first entry of every bucket.
//   - LinearProbing: open addressing with linear probing in array-of-structs
//     layout, optimized tombstone deletion.
//   - QuadraticProbing: triangular-number quadratic probing (c1 = c2 = 1/2
//     on power-of-two capacities, guaranteeing full-table coverage).
//   - RobinHood: the paper's tuned Robin Hood hashing on linear probing,
//     with displacement-ordered insertion, cache-line-granular early abort
//     for unsuccessful lookups, and partial-cluster-rehash deletion.
//   - Cuckoo: k-ary Cuckoo hashing (default k = 4, the paper's CuckooH4).
//
// plus LinearProbingSoA, the struct-of-arrays layout variant used by the
// paper's §7 layout and SIMD study, and DoubleHashing, an extension scheme
// expressed purely as a probe-sequence policy of the shared kernel.
//
// The open-addressing schemes are instantiations of one policy-driven
// probe kernel (kernel.go) over the paper's design dimensions made types
// (policy.go): probe sequence x slot layout x displacement policy, with
// the deletion strategy derived from them. Chained hashing and Cuckoo
// keep structurally different cores but share the sentinel routing and
// batch staging machinery.
//
// All tables store 64-bit integer keys and 64-bit values with map
// semantics (Put is an upsert). They are deliberately single-threaded,
// matching the paper's setting: for partition-based parallelism each
// partition is owned by one thread at a time and needs no internal
// synchronization.
//
// # Sentinel keys
//
// Open-addressing slots are 16-byte key/value pairs exactly like the
// paper's; slot emptiness is encoded in the key itself (empty = 0,
// tombstone = 2^64-1). The two real keys 0 and 2^64-1 are nevertheless
// fully supported: they are routed to two dedicated side fields, so the
// map domain is the complete uint64 space.
package table

import (
	"iter"
	"math/bits"

	"repro/hashfn"
)

// Map is the scalar point-operation interface of all hash tables in this
// package.
//
// Deprecated: Map is kept as a thin adapter for one release. New code
// should use Open / Handle (or the full Table interface), whose mutations
// surface ErrFull instead of the legacy behavior: Put and PutBatch on a
// full growth-disabled table absorb the condition by growing the table
// once rather than failing, so the pre-allocated-capacity contract of the
// paper's WORM experiments degrades gracefully instead of panicking.
type Map interface {
	// Put inserts or updates the mapping key -> val and reports whether the
	// key was newly inserted (false means an existing value was replaced).
	Put(key, val uint64) bool
	// Get returns the value stored under key and whether it is present.
	Get(key uint64) (uint64, bool)
	// Delete removes key and reports whether it was present.
	Delete(key uint64) bool
	// Len returns the number of live entries.
	Len() int
	// Capacity returns the number of slots (directory slots for chained
	// tables, total slots across subtables for Cuckoo).
	Capacity() int
	// LoadFactor returns Len()/Capacity(). For chained tables this can
	// exceed 1; see the paper's §4.5 for why load factor is interpreted as
	// a memory budget there.
	LoadFactor() float64
	// MemoryFootprint returns the total bytes of the directory plus, for
	// chained tables, the slab arena.
	MemoryFootprint() uint64
	// Range calls fn for every entry until fn returns false. Iteration
	// order is unspecified. The table must not be mutated during Range.
	Range(fn func(key, val uint64) bool)
	// Name returns the scheme name used in the paper ("LP", "QP", "RH",
	// "CuckooH4", "ChainedH8", "ChainedH24", ...).
	Name() string
}

// Table is the unified operation set implemented by every scheme in this
// package (and by partition.Partitioned): the legacy scalar Map, the
// batched pipeline, the single-probe read-modify-write primitives, the
// error-based mutations, and Go 1.23 iterators. Handle (see Open) wraps
// one or more Tables behind the workload-aware façade.
type Table interface {
	Map
	Batcher

	// TryPut is Put that reports ErrFull instead of growing when a
	// growth-disabled table is out of room.
	TryPut(key, val uint64) (inserted bool, err error)
	// GetOrPut returns the value stored under key if present (loaded
	// true); otherwise it inserts val and returns it (loaded false).
	// Exactly one probe sequence is issued either way — this is the
	// primitive that kills the Get-then-Put double probe in aggregation
	// and join builds.
	GetOrPut(key, val uint64) (actual uint64, loaded bool, err error)
	// Upsert applies fn to the value stored under key (exists true) or to
	// (0, false) when absent, stores the result, and returns it. Like
	// GetOrPut it issues exactly one probe sequence.
	Upsert(key uint64, fn func(old uint64, exists bool) uint64) (uint64, error)
	// TryPutBatch is PutBatch with TryPut's error contract. On ErrFull it
	// stops and returns the number of keys newly inserted so far; pairs
	// before the failing one remain applied.
	TryPutBatch(keys, vals []uint64) (inserted int, err error)
	// GetOrPutBatch applies GetOrPut to every (keys[i], vals[i]) pair in
	// slice order: out[i] receives the resulting value and loaded[i]
	// whether the key already existed. out and loaded must be at least as
	// long as keys (out may alias vals). It returns the number of newly
	// inserted keys; on ErrFull it stops, with earlier pairs applied.
	GetOrPutBatch(keys, vals, out []uint64, loaded []bool) (inserted int, err error)
	// UpsertBatch applies an Upsert to every key in slice order, passing
	// fn the key's lane index so callers can fold per-lane payloads in a
	// single probe per key. It returns the number of newly inserted keys.
	UpsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (inserted int, err error)
	// All returns a Go 1.23 range-over-func iterator over the entries,
	// equivalent to Range. The table must not be mutated during iteration.
	All() iter.Seq2[uint64, uint64]
}

const (
	// emptyKey marks a free open-addressing slot.
	emptyKey uint64 = 0
	// tombKey marks a deleted open-addressing slot (tombstone).
	tombKey uint64 = ^uint64(0)
	// pairBytes is the size of one AoS slot: 8-byte key + 8-byte value.
	pairBytes = 16
	// slotsPerCacheLine is how many 16-byte AoS slots fit a 64-byte line;
	// Robin Hood's early-abort check fires once per cache line (§2.4).
	slotsPerCacheLine = 4
)

// pair is one array-of-structs slot: a key and its value, 16 bytes.
type pair struct {
	key uint64
	val uint64
}

// sentinels stores the two keys whose literal values collide with the
// empty and tombstone markers. They live outside the slot array.
type sentinels struct {
	hasEmpty bool   // key 0 present
	emptyVal uint64 // value for key 0
	hasTomb  bool   // key 2^64-1 present
	tombVal  uint64 // value for key 2^64-1
}

// isSentinelKey reports whether key needs sentinel routing.
func isSentinelKey(key uint64) bool { return key == emptyKey || key == tombKey }

func (s *sentinels) put(key, val uint64) (inserted bool) {
	if key == emptyKey {
		inserted = !s.hasEmpty
		s.hasEmpty, s.emptyVal = true, val
		return inserted
	}
	inserted = !s.hasTomb
	s.hasTomb, s.tombVal = true, val
	return inserted
}

func (s *sentinels) get(key uint64) (uint64, bool) {
	if key == emptyKey {
		return s.emptyVal, s.hasEmpty
	}
	return s.tombVal, s.hasTomb
}

func (s *sentinels) delete(key uint64) bool {
	if key == emptyKey {
		had := s.hasEmpty
		s.hasEmpty, s.emptyVal = false, 0
		return had
	}
	had := s.hasTomb
	s.hasTomb, s.tombVal = false, 0
	return had
}

// rmw is the sentinel-side read-modify-write primitive behind GetOrPut,
// Upsert and TryPut: with fn nil and overwrite false it is GetOrPut(val);
// with overwrite true it is Put(val); with fn set it is Upsert(fn). It
// returns the value now stored and whether the key already existed.
func (s *sentinels) rmw(key, val uint64, overwrite bool, fn func(uint64, bool) uint64) (uint64, bool) {
	has, stored := &s.hasEmpty, &s.emptyVal
	if key == tombKey {
		has, stored = &s.hasTomb, &s.tombVal
	}
	if *has {
		if fn != nil {
			*stored = fn(*stored, true)
		} else if overwrite {
			*stored = val
		}
		return *stored, true
	}
	v := val
	if fn != nil {
		v = fn(0, false)
	}
	*has, *stored = true, v
	return v, false
}

func (s *sentinels) len() int {
	n := 0
	if s.hasEmpty {
		n++
	}
	if s.hasTomb {
		n++
	}
	return n
}

// rng ranges over the sentinel entries.
func (s *sentinels) rng(fn func(key, val uint64) bool) bool {
	if s.hasEmpty && !fn(emptyKey, s.emptyVal) {
		return false
	}
	if s.hasTomb && !fn(tombKey, s.tombVal) {
		return false
	}
	return true
}

// Config parameterizes table construction.
type Config struct {
	// InitialCapacity is the requested number of slots; it is rounded up
	// to a power of two, minimum 8. For Cuckoo it is the TOTAL capacity
	// across all subtables.
	InitialCapacity int
	// MaxLoadFactor, when positive, is the occupancy threshold at which
	// the table grows (doubling its capacity and rehashing). Zero disables
	// growth: the caller guarantees the table never fills, as in the
	// paper's WORM experiments where capacity is pre-allocated.
	MaxLoadFactor float64
	// Family is the hash-function class to draw from. Defaults to Mult.
	Family hashfn.Family
	// Seed derives the hash-function parameters (and, for Cuckoo, each
	// generation of functions). Two tables built with the same Config are
	// identical.
	Seed uint64
}

// withDefaults normalizes a Config.
func (c Config) withDefaults() Config {
	if c.InitialCapacity < 8 {
		c.InitialCapacity = 8
	}
	c.InitialCapacity = 1 << uint(bits.Len(uint(c.InitialCapacity-1)))
	if c.Family == nil {
		c.Family = hashfn.MultFamily{}
	}
	if c.MaxLoadFactor < 0 || c.MaxLoadFactor >= 1 {
		c.MaxLoadFactor = 0
	}
	return c
}

// log2 returns log2(n) for a power-of-two n.
func log2(n int) uint { return uint(bits.TrailingZeros(uint(n))) }
