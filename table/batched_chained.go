package table

import (
	"repro/hashfn"
	"repro/internal/slab"
)

// Batched pipeline for the chained schemes. Chained probing is a linked
// walk — the dependent-load chain the paper charges chained hashing with —
// so the round-robin rounds interleave *different* buckets' chain steps:
// each round dereferences one Next per live lane, and those loads are
// independent of each other.

// GetBatch implements Batcher.
func (t *Chained8) GetBatch(keys []uint64, vals []uint64, ok []bool) int {
	checkBatchGet(len(keys), len(vals), len(ok))
	bt := t.buf()
	hits := 0
	chunks(len(keys), func(lo, hi int) {
		hits += t.getChunk(bt, keys[lo:hi], vals[lo:hi], ok[lo:hi])
	})
	return hits
}

func (t *Chained8) getChunk(bt *batchBuf, keys, vals []uint64, ok []bool) int {
	hashfn.HashBatch(t.fn, keys, bt.hash[:])
	shift := t.shift
	hits := 0
	var cur [BatchWidth]*slab.Entry
	live := bt.lane[:0]
	for l := range keys {
		e := t.dir[bt.hash[l]>>shift]
		if e == nil {
			vals[l], ok[l] = 0, false
			continue
		}
		cur[l] = e
		live = append(live, int32(l))
	}
	for len(live) > 0 {
		w := 0
		for _, l := range live {
			e := cur[l]
			if e.Key == keys[l] {
				vals[l], ok[l] = e.Val, true
				hits++
				continue
			}
			if e.Next == nil {
				vals[l], ok[l] = 0, false
				continue
			}
			cur[l] = e.Next
			live[w] = l
			w++
		}
		live = live[:w]
	}
	return hits
}

// PutBatch implements Batcher; see LinearProbing.PutBatch. Chained8 has no
// sentinel keys — every key lives in a chain.
func (t *Chained8) PutBatch(keys []uint64, vals []uint64) int {
	checkBatchPut(len(keys), len(vals))
	bt := t.buf()
	inserted := 0
	chunks(len(keys), func(lo, hi int) {
		kc, vc := keys[lo:hi], vals[lo:hi]
		hashfn.HashBatch(t.fn, kc, bt.hash[:])
		for l, k := range kc {
			if ins, _ := t.putHashed(k, vc[l], bt.hash[l]); ins {
				inserted++
			}
		}
	})
	return inserted
}

// GetBatch implements Batcher. The first-probe pass resolves against the
// widened directory's inline entries — the collision-free case Chained24
// exists for — and only overflow chains enter the round-robin walk.
func (t *Chained24) GetBatch(keys []uint64, vals []uint64, ok []bool) int {
	checkBatchGet(len(keys), len(vals), len(ok))
	bt := t.buf()
	hits := 0
	chunks(len(keys), func(lo, hi int) {
		hits += t.getChunk(bt, keys[lo:hi], vals[lo:hi], ok[lo:hi])
	})
	return hits
}

func (t *Chained24) getChunk(bt *batchBuf, keys, vals []uint64, ok []bool) int {
	hashfn.HashBatch(t.fn, keys, bt.hash[:])
	shift := t.shift
	hits := 0
	var cur [BatchWidth]*slab.Entry
	live := bt.lane[:0]
	for l := range keys {
		k := keys[l]
		if k == emptyKey {
			vals[l], ok[l] = t.zeroVal, t.hasZero
			if ok[l] {
				hits++
			}
			continue
		}
		b := &t.dir[bt.hash[l]>>shift]
		if b.key == k {
			vals[l], ok[l] = b.val, true
			hits++
			continue
		}
		if b.next == nil {
			vals[l], ok[l] = 0, false
			continue
		}
		cur[l] = b.next
		live = append(live, int32(l))
	}
	for len(live) > 0 {
		w := 0
		for _, l := range live {
			e := cur[l]
			if e.Key == keys[l] {
				vals[l], ok[l] = e.Val, true
				hits++
				continue
			}
			if e.Next == nil {
				vals[l], ok[l] = 0, false
				continue
			}
			cur[l] = e.Next
			live[w] = l
			w++
		}
		live = live[:w]
	}
	return hits
}

// PutBatch implements Batcher; see LinearProbing.PutBatch.
func (t *Chained24) PutBatch(keys []uint64, vals []uint64) int {
	checkBatchPut(len(keys), len(vals))
	bt := t.buf()
	inserted := 0
	chunks(len(keys), func(lo, hi int) {
		kc, vc := keys[lo:hi], vals[lo:hi]
		hashfn.HashBatch(t.fn, kc, bt.hash[:])
		for l, k := range kc {
			if k == emptyKey {
				if !t.hasZero {
					inserted++
				}
				t.hasZero, t.zeroVal = true, vc[l]
				continue
			}
			if ins, _ := t.putHashed(k, vc[l], bt.hash[l]); ins {
				inserted++
			}
		}
	})
	return inserted
}
