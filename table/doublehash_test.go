package table

import (
	"testing"

	"repro/internal/prng"
)

// TestDHStrideCoverage verifies the coverage guarantee behind dhSeq: an
// odd stride is coprime to a power-of-two capacity, so from any home
// slot the sequence visits every slot exactly once in l probes — the
// property that transfers QP's termination and 100%-fill behavior to DH.
func TestDHStrideCoverage(t *testing.T) {
	for _, l := range []int{8, 64, 1024} {
		mask := uint64(l - 1)
		for _, stride := range []uint64{1, 3, uint64(l - 1), uint64(l + 7)} {
			stride |= 1
			seen := make([]bool, l)
			pos := uint64(5) % uint64(l)
			count := 0
			for step := 0; step < l; step++ {
				if !seen[pos] {
					seen[pos] = true
					count++
				}
				pos = (pos + stride) & mask
			}
			if count != l {
				t.Fatalf("l=%d stride=%d: visited %d distinct slots, want %d", l, stride, count, l)
			}
		}
	}
}

// TestDHFullTableInsert fills a DH table to 100% capacity; the coverage
// guarantee means every insert must find the remaining empty slots, and
// lookups (hits and misses) must terminate on the full table.
func TestDHFullTableInsert(t *testing.T) {
	const l = 256
	m := NewDoubleHashing(Config{InitialCapacity: l, Seed: 5})
	for i := uint64(1); i <= l; i++ {
		m.Put(i*0x9E3779B97F4A7C15, i)
	}
	if m.Len() != l {
		t.Fatalf("Len = %d, want %d", m.Len(), l)
	}
	for i := uint64(1); i <= l; i++ {
		if v, ok := m.Get(i * 0x9E3779B97F4A7C15); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v at full table", i, v, ok)
		}
	}
	if _, ok := m.Get(0x1234567); ok {
		t.Fatal("phantom hit")
	}
}

// TestDHTombstoneChurnFixedCapacity mirrors the QP churn test: delete /
// insert cycles on a 100% full fixed-capacity table exercise the
// full-sweep tombstone-recycling path of the kernel.
func TestDHTombstoneChurnFixedCapacity(t *testing.T) {
	const l = 128
	m := NewDoubleHashing(Config{InitialCapacity: l, Seed: 6})
	for i := uint64(1); i <= l; i++ {
		m.Put(i, i)
	}
	for round := uint64(0); round < 200; round++ {
		k := round%l + 1
		if !m.Delete(k) {
			t.Fatalf("round %d: delete %d failed", round, k)
		}
		nk := k + 1000*(round+1)
		if !m.Put(nk, nk) {
			t.Fatalf("round %d: insert %d failed", round, nk)
		}
		if v, ok := m.Get(nk); !ok || v != nk {
			t.Fatalf("round %d: get %d = %d,%v", round, nk, v, ok)
		}
		if !m.Delete(nk) {
			t.Fatalf("round %d: cleanup delete failed", round)
		}
		m.Put(k, k)
	}
	if m.Len() != l {
		t.Fatalf("Len = %d, want %d", m.Len(), l)
	}
}

// TestDHNoClusterCarryover spot-checks DH's structural point: keys
// sharing a home slot diverge immediately (no secondary clustering), so
// mean displacement at moderate load stays small and Stats can read it
// through the generic replaying Displacements.
func TestDHDisplacementsAndStats(t *testing.T) {
	m := NewDoubleHashing(Config{InitialCapacity: 1 << 10, Seed: 9})
	rng := prng.NewXoshiro256(10)
	for i := 0; i < 700; i++ {
		k := rng.Next()
		if isSentinelKey(k) {
			continue
		}
		m.Put(k, k)
	}
	ds := m.Displacements()
	if len(ds) != m.Len() {
		t.Fatalf("%d displacements for %d entries", len(ds), m.Len())
	}
	for _, d := range ds {
		if d < 0 || d >= 1<<10 {
			t.Fatalf("displacement %d out of range", d)
		}
	}
	st := StatsOf(m)
	if st.Scheme != "DH" || st.Function != "Mult" {
		t.Fatalf("Stats identity = %q/%q", st.Scheme, st.Function)
	}
	if st.MeanProbe < 1 || st.MeanProbe > 3 {
		t.Fatalf("DH mean probe %v at ~68%% load; expected small (no secondary clustering)", st.MeanProbe)
	}
}

// TestDHExcludedFromRecommend pins the paper-fidelity decision: the
// Figure 8 graph recommends only the paper's schemes, never the DH
// extension, over a grid covering every branch of the graph.
func TestDHExcludedFromRecommend(t *testing.T) {
	for _, lf := range []float64{0.3, 0.55, 0.75, 0.85, 0.95} {
		for _, up := range []int{0, 30, 60, 100} {
			for _, wh := range []bool{false, true} {
				for _, dyn := range []bool{false, true} {
					for _, dense := range []bool{false, true} {
						s, _, err := Recommend(Workload{
							LoadFactor:      lf,
							UnsuccessfulPct: up,
							WriteHeavy:      wh,
							Dynamic:         dyn,
							Dense:           dense,
						})
						if err != nil {
							t.Fatal(err)
						}
						if s == SchemeDH || s == SchemeLPSoA {
							t.Fatalf("Recommend returned extension scheme %s", s)
						}
					}
				}
			}
		}
	}
}
