package table

// The paper's Figure 8 decision graph, hoisted into this package so that
// Open(WithWorkload(...)) can walk it without an import cycle; package
// decision re-exports it (with the paper-style labels and audit trail)
// for standalone use. See package decision for the section-by-section
// justification of every edge.

import "fmt"

// Workload describes the anticipated usage of a hash table: the subset of
// the paper's seven dimensions that the *user* controls, the scheme and
// hash function being the two outputs of the decision graph.
type Workload struct {
	// LoadFactor is the expected operating load factor (0,1): entries
	// divided by the slots the memory budget allows.
	LoadFactor float64
	// UnsuccessfulPct is the expected percentage of lookups probing keys
	// that are absent (0–100).
	UnsuccessfulPct int
	// WriteHeavy indicates more writes (inserts+deletes) than reads.
	WriteHeavy bool
	// Dynamic indicates the table grows/shrinks over its lifetime (OLTP);
	// false means a static build-then-probe use (OLAP/WORM).
	Dynamic bool
	// Dense indicates densely distributed integer keys (e.g. generated
	// primary keys, [1:n] or an arithmetic progression).
	Dense bool
}

// Validate reports whether the workload's fields are in range.
func (w Workload) Validate() error {
	if w.LoadFactor <= 0 || w.LoadFactor >= 1 {
		return fmt.Errorf("table: workload load factor %v outside (0,1)", w.LoadFactor)
	}
	if w.UnsuccessfulPct < 0 || w.UnsuccessfulPct > 100 {
		return fmt.Errorf("table: workload unsuccessful-lookup percentage %d outside [0,100]", w.UnsuccessfulPct)
	}
	return nil
}

// Recommend walks the paper's Figure 8 decision graph for w and returns
// the recommended scheme together with the audit trail of decisions taken
// (the hash-function family is always Mult per Figure 8; §5.2: "no hash
// table is the absolute best using Murmur").
func Recommend(w Workload) (Scheme, []string, error) {
	if err := w.Validate(); err != nil {
		return "", nil, err
	}
	var path []string
	trace := func(format string, args ...any) {
		path = append(path, fmt.Sprintf(format, args...))
	}

	if w.LoadFactor < 0.5 {
		trace("load factor %.0f%% < 50%%", w.LoadFactor*100)
		if w.UnsuccessfulPct <= 50 {
			trace("lookups mostly successful (%d%% unsuccessful <= 50%%) -> LPMult", w.UnsuccessfulPct)
			return SchemeLP, path, nil
		}
		trace("lookups mostly unsuccessful (%d%% > 50%%) -> ChainedH24", w.UnsuccessfulPct)
		return SchemeChained24, path, nil
	}
	trace("load factor %.0f%% >= 50%%", w.LoadFactor*100)

	if w.WriteHeavy {
		trace("writes > reads")
		if w.Dynamic {
			trace("dynamic (growing) table -> QPMult (best RW performer, §6)")
			return SchemeQP, path, nil
		}
		if w.Dense {
			trace("static build over dense keys -> LPMult (dense+Mult is LP's best case, §5.2)")
			return SchemeLP, path, nil
		}
		trace("static build, non-dense keys -> QPMult (best inserts at high load factors, §5.2)")
		return SchemeQP, path, nil
	}
	trace("reads >= writes")

	if w.UnsuccessfulPct > 50 {
		trace("unsuccessful lookups dominate (%d%% > 50%%)", w.UnsuccessfulPct)
		if w.LoadFactor >= 0.9 {
			trace("load factor >= 90%% -> CH4Mult (lookups insensitive to load factor and misses)")
			return SchemeCuckooH4, path, nil
		}
		if w.LoadFactor <= 0.7 {
			trace("load factor <= 70%% -> ChainedH24 (wins degenerate miss-heavy probes and fits the §4.5 budget)")
			return SchemeChained24, path, nil
		}
		trace("load factor in (70%%, 90%%) -> RHMult (early abort tames misses, up to 4x over LP)")
		return SchemeRH, path, nil
	}
	trace("lookups mostly successful (%d%% unsuccessful <= 50%%)", w.UnsuccessfulPct)

	if w.LoadFactor >= 0.8 {
		trace("table very full (load factor >= 80%%) -> CH4Mult (surpasses probing schemes from ~80%%, §5.2)")
		return SchemeCuckooH4, path, nil
	}
	if w.Dense {
		trace("dense keys at moderate load factor -> LPMult (approximate arithmetic progression, optimal locality)")
		return SchemeLP, path, nil
	}
	trace("general case -> RHMult (the paper's all-rounder: top performer in most cells of Figure 6)")
	return SchemeRH, path, nil
}
