package table

import (
	"math"
	"math/bits"

	"repro/hashfn"
	"repro/internal/slab"
)

// chunkEntriesFor sizes slab chunks proportionally to the directory so that
// small tables do not pay a fixed multi-megabyte arena (which would wreck
// the §4.5 memory-budget comparison at small capacities) while large tables
// still allocate in big, cheap strides.
func chunkEntriesFor(dirSlots int) int {
	c := dirSlots / 8
	if c < 256 {
		c = 256
	}
	if c > slab.DefaultChunkEntries {
		c = slab.DefaultChunkEntries
	}
	return c
}

// Chained8 is classic chained hashing (§2.1): the directory is an array of
// 8-byte pointers to linked lists of 24-byte entries. Entries are allocated
// from a slab allocator — the paper found malloc-per-insert costs up to an
// order of magnitude in insert throughput. Every lookup, even in a
// collision-free bucket, must follow one pointer, which is the structural
// disadvantage the widened Chained24 variant removes.
type Chained8 struct {
	dir    []*slab.Entry
	shift  uint
	size   int
	fn     hashfn.Function
	family hashfn.Family
	seed   uint64
	maxLF  float64
	grows  int
	alloc  *slab.Allocator
	batchState
}

var _ Table = (*Chained8)(nil)

// NewChained8 returns an empty pointer-directory chained table.
func NewChained8(cfg Config) *Chained8 {
	cfg = cfg.withDefaults()
	t := &Chained8{
		family: cfg.Family,
		seed:   cfg.Seed,
		maxLF:  cfg.MaxLoadFactor,
		alloc:  slab.New(chunkEntriesFor(cfg.InitialCapacity)),
	}
	t.fn = cfg.Family.New(cfg.Seed)
	t.dir = make([]*slab.Entry, cfg.InitialCapacity)
	t.shift = 64 - log2(cfg.InitialCapacity)
	return t
}

func (t *Chained8) home(key uint64) uint64 { return t.fn.Hash(key) >> t.shift }

// Name implements Map.
func (t *Chained8) Name() string { return "ChainedH8" }

// HashName returns the hash-function family name.
func (t *Chained8) HashName() string { return t.fn.Name() }

// Len implements Map.
func (t *Chained8) Len() int { return t.size }

// Capacity implements Map (directory slots).
func (t *Chained8) Capacity() int { return len(t.dir) }

// LoadFactor implements Map; for chained tables this is entries per
// directory slot and may exceed 1 (§4.5).
func (t *Chained8) LoadFactor() float64 { return float64(t.size) / float64(len(t.dir)) }

// MemoryFootprint implements Map: 8 bytes per directory slot plus the slab
// arena holding the 24-byte entries.
func (t *Chained8) MemoryFootprint() uint64 {
	return uint64(len(t.dir))*8 + t.alloc.FootprintBytes()
}

// Get implements Map.
func (t *Chained8) Get(key uint64) (uint64, bool) {
	for e := t.dir[t.home(key)]; e != nil; e = e.Next {
		if e.Key == key {
			return e.Val, true
		}
	}
	return 0, false
}

// Put implements Map. New entries are pushed at the head of their chain
// (order within a chain is immaterial; head insertion avoids walking the
// list twice).
func (t *Chained8) Put(key, val uint64) bool {
	ins, _ := t.putHashed(key, val, t.fn.Hash(key))
	return ins
}

// putHashed is Put with a precomputed hash code; the directory index is
// derived after maybeGrow so a doubled directory cannot stale it. Chained
// tables never fill (chains extend indefinitely), so the error is always
// nil; the signature matches the open-addressing schemes'.
func (t *Chained8) putHashed(key, val, hash uint64) (bool, error) {
	t.maybeGrow()
	i := hash >> t.shift
	for e := t.dir[i]; e != nil; e = e.Next {
		if e.Key == key {
			e.Val = val
			return false, nil
		}
	}
	e := t.alloc.Alloc()
	e.Key, e.Val = key, val
	e.Next = t.dir[i]
	t.dir[i] = e
	t.size++
	return true, nil
}

// rmwHashed is the single-probe read-modify-write primitive; see
// LinearProbing.rmwHashed. Chained8 has no sentinel keys: chain entries
// store full keys, so 0 and 2^64-1 are ordinary.
func (t *Chained8) rmwHashed(key, val, hash uint64, overwrite bool, fn func(uint64, bool) uint64) (uint64, bool, error) {
	t.maybeGrow()
	i := hash >> t.shift
	for e := t.dir[i]; e != nil; e = e.Next {
		if e.Key == key {
			if fn != nil {
				e.Val = fn(e.Val, true)
			} else if overwrite {
				e.Val = val
			}
			return e.Val, true, nil
		}
	}
	v := val
	if fn != nil {
		v = fn(0, false)
	}
	e := t.alloc.Alloc()
	e.Key, e.Val = key, v
	e.Next = t.dir[i]
	t.dir[i] = e
	t.size++
	return v, false, nil
}

// Delete implements Map; the removed entry returns to the slab free list.
func (t *Chained8) Delete(key uint64) bool {
	i := t.home(key)
	var prev *slab.Entry
	for e := t.dir[i]; e != nil; e = e.Next {
		if e.Key == key {
			if prev == nil {
				t.dir[i] = e.Next
			} else {
				prev.Next = e.Next
			}
			t.alloc.Free(e)
			t.size--
			return true
		}
		prev = e
	}
	return false
}

func (t *Chained8) maybeGrow() {
	if t.maxLF == 0 {
		return
	}
	if t.size+1 <= int(t.maxLF*float64(len(t.dir))) {
		return
	}
	t.grows++
	// Double the directory and relink existing entries in place; no entry
	// is reallocated.
	old := t.dir
	t.dir = make([]*slab.Entry, len(old)*2)
	t.shift--
	for i := range old {
		e := old[i]
		for e != nil {
			next := e.Next
			j := t.home(e.Key)
			e.Next = t.dir[j]
			t.dir[j] = e
			e = next
		}
	}
}

// Range implements Map.
func (t *Chained8) Range(fn func(key, val uint64) bool) {
	for i := range t.dir {
		for e := t.dir[i]; e != nil; e = e.Next {
			if !fn(e.Key, e.Val) {
				return
			}
		}
	}
}

// ChainLengths returns the length of every non-empty chain; the paper's
// argument that chains under Mult average below length 2 is checkable here.
func (t *Chained8) ChainLengths() []int {
	var out []int
	for i := range t.dir {
		n := 0
		for e := t.dir[i]; e != nil; e = e.Next {
			n++
		}
		if n > 0 {
			out = append(out, n)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Chained24
// ---------------------------------------------------------------------------

// bucket24 is Chained24's widened directory slot: a full 24-byte
// key/value/pointer triplet, so the first entry of every bucket lives
// inline and collision-free lookups touch no linked list at all (§2.1).
//
// Invariants: if next != nil the inline entry is occupied; an unoccupied
// inline slot has key == emptyKey (real key 0 is kept in a side field).
type bucket24 struct {
	key  uint64
	val  uint64
	next *slab.Entry
}

// Chained24 is the paper's widened-directory chained hash table: 24-byte
// directory slots inline the first entry, trading space for open-addressing
// latency whenever collisions are rare.
type Chained24 struct {
	dir    []bucket24
	shift  uint
	size   int
	fn     hashfn.Function
	family hashfn.Family
	seed   uint64
	maxLF  float64
	alloc  *slab.Allocator

	grows int

	hasZero bool   // inline sentinel escape for real key 0
	zeroVal uint64 // stored out-of-line like open addressing's sentinels
	batchState
}

var _ Table = (*Chained24)(nil)

// NewChained24 returns an empty inline-directory chained table.
func NewChained24(cfg Config) *Chained24 {
	cfg = cfg.withDefaults()
	t := &Chained24{
		family: cfg.Family,
		seed:   cfg.Seed,
		maxLF:  cfg.MaxLoadFactor,
		alloc:  slab.New(chunkEntriesFor(cfg.InitialCapacity)),
	}
	t.fn = cfg.Family.New(cfg.Seed)
	t.dir = make([]bucket24, cfg.InitialCapacity)
	t.shift = 64 - log2(cfg.InitialCapacity)
	return t
}

func (t *Chained24) home(key uint64) uint64 { return t.fn.Hash(key) >> t.shift }

// Name implements Map.
func (t *Chained24) Name() string { return "ChainedH24" }

// HashName returns the hash-function family name.
func (t *Chained24) HashName() string { return t.fn.Name() }

// Len implements Map.
func (t *Chained24) Len() int {
	if t.hasZero {
		return t.size + 1
	}
	return t.size
}

// Capacity implements Map (directory slots).
func (t *Chained24) Capacity() int { return len(t.dir) }

// LoadFactor implements Map.
func (t *Chained24) LoadFactor() float64 { return float64(t.Len()) / float64(len(t.dir)) }

// MemoryFootprint implements Map: 24 bytes per directory slot plus the slab
// arena holding overflow entries.
func (t *Chained24) MemoryFootprint() uint64 {
	return uint64(len(t.dir))*24 + t.alloc.FootprintBytes()
}

// Overflow returns the number of entries living in chains rather than
// inline: the "collisions" of the paper's Figure 3 footprint analysis.
func (t *Chained24) Overflow() int { return t.alloc.Live() }

// inlineOccupied reports whether b's inline entry holds a live entry.
func inlineOccupied(b *bucket24) bool { return b.key != emptyKey || b.next != nil }

// Get implements Map.
func (t *Chained24) Get(key uint64) (uint64, bool) {
	if key == emptyKey {
		return t.zeroVal, t.hasZero
	}
	b := &t.dir[t.home(key)]
	if b.key == key {
		return b.val, true
	}
	for e := b.next; e != nil; e = e.Next {
		if e.Key == key {
			return e.Val, true
		}
	}
	return 0, false
}

// Put implements Map: the inline slot is used first; collisions go to the
// slab-backed chain.
func (t *Chained24) Put(key, val uint64) bool {
	if key == emptyKey {
		inserted := !t.hasZero
		t.hasZero, t.zeroVal = true, val
		return inserted
	}
	ins, _ := t.putHashed(key, val, t.fn.Hash(key))
	return ins
}

// putHashed is Put for a non-zero key with a precomputed hash code. The
// error is always nil (chained tables never fill); the signature matches
// the open-addressing schemes'.
func (t *Chained24) putHashed(key, val, hash uint64) (bool, error) {
	t.maybeGrow()
	b := &t.dir[hash>>t.shift]
	if b.key == key {
		b.val = val
		return false, nil
	}
	if !inlineOccupied(b) {
		b.key, b.val = key, val
		t.size++
		return true, nil
	}
	for e := b.next; e != nil; e = e.Next {
		if e.Key == key {
			e.Val = val
			return false, nil
		}
	}
	e := t.alloc.Alloc()
	e.Key, e.Val = key, val
	e.Next = b.next
	b.next = e
	t.size++
	return true, nil
}

// rmwHashed is the single-probe read-modify-write primitive; see
// LinearProbing.rmwHashed. Only real key 0 needs sentinel routing here.
func (t *Chained24) rmwHashed(key, val, hash uint64, overwrite bool, fn func(uint64, bool) uint64) (uint64, bool, error) {
	if key == emptyKey {
		if t.hasZero {
			if fn != nil {
				t.zeroVal = fn(t.zeroVal, true)
			} else if overwrite {
				t.zeroVal = val
			}
			return t.zeroVal, true, nil
		}
		v := val
		if fn != nil {
			v = fn(0, false)
		}
		t.hasZero, t.zeroVal = true, v
		return v, false, nil
	}
	t.maybeGrow()
	b := &t.dir[hash>>t.shift]
	if b.key == key {
		if fn != nil {
			b.val = fn(b.val, true)
		} else if overwrite {
			b.val = val
		}
		return b.val, true, nil
	}
	if inlineOccupied(b) {
		for e := b.next; e != nil; e = e.Next {
			if e.Key == key {
				if fn != nil {
					e.Val = fn(e.Val, true)
				} else if overwrite {
					e.Val = val
				}
				return e.Val, true, nil
			}
		}
	}
	v := val
	if fn != nil {
		v = fn(0, false)
	}
	if !inlineOccupied(b) {
		b.key, b.val = key, v
	} else {
		e := t.alloc.Alloc()
		e.Key, e.Val = key, v
		e.Next = b.next
		b.next = e
	}
	t.size++
	return v, false, nil
}

// Delete implements Map. Deleting the inline entry promotes the chain head
// into the directory so the invariant "chain non-empty => inline occupied"
// is preserved.
func (t *Chained24) Delete(key uint64) bool {
	if key == emptyKey {
		had := t.hasZero
		t.hasZero, t.zeroVal = false, 0
		return had
	}
	b := &t.dir[t.home(key)]
	if b.key == key {
		if head := b.next; head != nil {
			b.key, b.val, b.next = head.Key, head.Val, head.Next
			t.alloc.Free(head)
		} else {
			b.key, b.val = emptyKey, 0
		}
		t.size--
		return true
	}
	var prev *slab.Entry
	for e := b.next; e != nil; e = e.Next {
		if e.Key == key {
			if prev == nil {
				b.next = e.Next
			} else {
				prev.Next = e.Next
			}
			t.alloc.Free(e)
			t.size--
			return true
		}
		prev = e
	}
	return false
}

func (t *Chained24) maybeGrow() {
	if t.maxLF == 0 {
		return
	}
	if t.size+1 <= int(t.maxLF*float64(len(t.dir))) {
		return
	}
	t.grows++
	// Collect, reset the slab, rebuild with a doubled directory.
	entries := make([]pair, 0, t.size)
	for i := range t.dir {
		b := &t.dir[i]
		if inlineOccupied(b) {
			entries = append(entries, pair{b.key, b.val})
		}
		for e := b.next; e != nil; e = e.Next {
			entries = append(entries, pair{e.Key, e.Val})
		}
	}
	t.alloc.Reset()
	t.dir = make([]bucket24, len(t.dir)*2)
	t.shift--
	t.size = 0
	for _, p := range entries {
		b := &t.dir[t.home(p.key)]
		if !inlineOccupied(b) {
			b.key, b.val = p.key, p.val
		} else {
			e := t.alloc.Alloc()
			e.Key, e.Val = p.key, p.val
			e.Next = b.next
			b.next = e
		}
		t.size++
	}
}

// Range implements Map.
func (t *Chained24) Range(fn func(key, val uint64) bool) {
	if t.hasZero && !fn(emptyKey, t.zeroVal) {
		return
	}
	for i := range t.dir {
		b := &t.dir[i]
		if inlineOccupied(b) && !fn(b.key, b.val) {
			return
		}
		for e := b.next; e != nil; e = e.Next {
			if !fn(e.Key, e.Val) {
				return
			}
		}
	}
}

// ChainLengths returns, for every non-empty bucket, the number of entries
// in it (inline entry included).
func (t *Chained24) ChainLengths() []int {
	var out []int
	for i := range t.dir {
		b := &t.dir[i]
		n := 0
		if inlineOccupied(b) {
			n++
		}
		for e := b.next; e != nil; e = e.Next {
			n++
		}
		if n > 0 {
			out = append(out, n)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// §4.5 memory-budget directory sizing
// ---------------------------------------------------------------------------

// ChainedBudgetFactor is the paper's memory allowance for chained tables:
// their footprint may exceed the open-addressing footprint by at most 10%.
const ChainedBudgetFactor = 1.10

// floorPow2 returns the largest power of two <= x (minimum 8).
func floorPow2(x float64) int {
	if x < 8 {
		return 8
	}
	return 1 << uint(bits.Len64(uint64(x))-1)
}

// Chained8DirectorySlots returns the largest power-of-two directory size
// such that a Chained8 table holding n = alpha*oaCapacity entries stays
// within 110% of the open-addressing footprint 16*oaCapacity (§4.5). Every
// Chained8 entry lives in the slab (24 bytes), so the directory gets what
// remains of the budget at 8 bytes per slot.
func Chained8DirectorySlots(alpha float64, oaCapacity int) int {
	budget := ChainedBudgetFactor * 16 * float64(oaCapacity)
	n := alpha * float64(oaCapacity)
	remaining := budget - 24*n
	return floorPow2(remaining / 8)
}

// Chained24DirectorySlots returns the largest power-of-two directory size
// whose 24-byte slots alone fit the §4.5 budget; overflow chains must fit
// in the remaining slack, which FitsChained24Budget estimates.
func Chained24DirectorySlots(alpha float64, oaCapacity int) int {
	budget := ChainedBudgetFactor * 16 * float64(oaCapacity)
	return floorPow2(budget / 24)
}

// ExpectedChained24Overflow estimates, for n entries hashed uniformly into
// dirSlots buckets, how many entries overflow into chains: n minus the
// expected number of occupied buckets m*(1 - (1-1/m)^n) ~= m*(1-e^(-n/m)).
func ExpectedChained24Overflow(n, dirSlots int) float64 {
	m := float64(dirSlots)
	lam := float64(n) / m
	occupied := m * (1 - math.Exp(-lam))
	return float64(n) - occupied
}

// FitsChained24Budget reports whether a Chained24 table with the §4.5
// directory sizing is expected to hold n = alpha*oaCapacity entries within
// the 110% budget. At alpha >= ~0.7 this returns false — the paper's reason
// for dropping chained hashing from the high-load-factor experiments.
func FitsChained24Budget(alpha float64, oaCapacity int) bool {
	budget := ChainedBudgetFactor * 16 * float64(oaCapacity)
	dir := Chained24DirectorySlots(alpha, oaCapacity)
	n := int(alpha * float64(oaCapacity))
	overflow := ExpectedChained24Overflow(n, dir)
	return float64(dir)*24+overflow*24 <= budget
}
