package table

import "repro/internal/vec"

// This file contains the vectorized probe variants of §7 of the paper.
// The paper adds AVX-2 intrinsics to linear probing: four keys are loaded
// into a 256-bit register, compared against the probe key with one
// instruction, and the first matching lane extracted from a movemask. Go
// with only the standard library cannot emit vector instructions, so these
// methods use the portable 4-lane kernels of internal/vec, which reproduce
// the structure of that code: aligned 4-slot blocks, lane masks, and a
// first-set-bit match extraction. For AoS the four keys must be gathered
// from interleaved slots — the expensive load the paper measured on
// Haswell — whereas SoA reads them contiguously.
//
// The scalar Get/Put and these *Vec variants are semantically
// interchangeable; the test suite cross-checks them on identical inputs.

// laneMaskFrom returns the mask of lanes >= lane, used to ignore the slots
// before the probe start in the first (aligned) block.
func laneMaskFrom(lane uint64) vec.Mask4 {
	return vec.Mask4((0xF << lane) & 0xF)
}

// gather4 loads the keys of the four AoS slots starting at block.
func (t *LinearProbing) gather4(block uint64) (uint64, uint64, uint64, uint64) {
	s := t.slots[block : block+4 : block+4]
	return s[0].key, s[1].key, s[2].key, s[3].key
}

// GetVec is Get using 4-slot vectorized key comparison (the paper's
// LPAoSSIMD lookup).
func (t *LinearProbing) GetVec(key uint64) (uint64, bool) {
	if isSentinelKey(key) {
		return t.sent.get(key)
	}
	i := t.home(key)
	block := i &^ 3
	valid := laneMaskFrom(i & 3)
	maxBlocks := len(t.slots)/4 + 1
	for b := 0; b < maxBlocks; b++ {
		k0, k1, k2, k3 := t.gather4(block)
		hit := vec.CmpEq4(k0, k1, k2, k3, key) & valid
		stop := vec.CmpEq4(k0, k1, k2, k3, emptyKey) & valid
		if hit != 0 || stop != 0 {
			hl, sl := 8, 8
			if hit != 0 {
				hl = hit.First()
			}
			if stop != 0 {
				sl = stop.First()
			}
			if hl < sl {
				return t.slots[block+uint64(hl)].val, true
			}
			return 0, false
		}
		valid = 0xF
		block = (block + 4) & t.mask
	}
	return 0, false
}

// PutVec is Put using 4-slot vectorized probing for the empty/tombstone
// search (the paper's LPAoSSIMD insert).
func (t *LinearProbing) PutVec(key, val uint64) bool {
	if isSentinelKey(key) {
		return t.sent.put(key, val)
	}
	if err := t.ensureRoom(); err != nil {
		// Legacy Map contract: grow once instead of failing (see Put) —
		// but only when an insert is actually needed; an update of an
		// existing key proceeds in place on the full table.
		if _, exists := t.GetVec(key); !exists {
			t.rehashTo(len(t.slots) * 2)
		}
	}
	i := t.home(key)
	block := i &^ 3
	valid := laneMaskFrom(i & 3)
	firstTomb := -1
	maxBlocks := len(t.slots)/4 + 1
	for b := 0; b < maxBlocks; b++ {
		k0, k1, k2, k3 := t.gather4(block)
		hit := vec.CmpEq4(k0, k1, k2, k3, key) & valid
		stop := vec.CmpEq4(k0, k1, k2, k3, emptyKey) & valid
		tomb := vec.CmpEq4(k0, k1, k2, k3, tombKey) & valid
		hl, sl := 8, 8
		if hit != 0 {
			hl = hit.First()
		}
		if stop != 0 {
			sl = stop.First()
		}
		if hl < sl {
			t.slots[block+uint64(hl)].val = val
			return false
		}
		if sl < 8 {
			if firstTomb < 0 && tomb != 0 {
				if tl := tomb.First(); tl < sl {
					firstTomb = int(block) + tl
				}
			}
			if firstTomb >= 0 {
				t.slots[firstTomb] = pair{key, val}
				t.tombs--
			} else {
				t.slots[block+uint64(sl)] = pair{key, val}
			}
			t.size++
			return true
		}
		if firstTomb < 0 && tomb != 0 {
			firstTomb = int(block) + tomb.First()
		}
		valid = 0xF
		block = (block + 4) & t.mask
	}
	panic("table: LP PutVec found no empty slot (table full)")
}

// GetVec is Get using 4-lane vectorized key comparison over the packed key
// column (the paper's LPSoASIMD lookup — the layout SIMD favours, since no
// gather is needed).
func (t *LinearProbingSoA) GetVec(key uint64) (uint64, bool) {
	if isSentinelKey(key) {
		return t.sent.get(key)
	}
	i := t.home(key)
	block := i &^ 3
	valid := laneMaskFrom(i & 3)
	maxBlocks := len(t.keys)/4 + 1
	for b := 0; b < maxBlocks; b++ {
		hit, stop := vec.FindEqOrEmptySoA4(t.keys, int(block), key, emptyKey)
		hit &= valid
		stop &= valid
		if hit != 0 || stop != 0 {
			hl, sl := 8, 8
			if hit != 0 {
				hl = hit.First()
			}
			if stop != 0 {
				sl = stop.First()
			}
			if hl < sl {
				return t.vals[block+uint64(hl)], true
			}
			return 0, false
		}
		valid = 0xF
		block = (block + 4) & t.mask
	}
	return 0, false
}

// PutVec is Put using 4-lane vectorized probing over the key column.
func (t *LinearProbingSoA) PutVec(key, val uint64) bool {
	if isSentinelKey(key) {
		return t.sent.put(key, val)
	}
	if err := t.ensureRoom(); err != nil {
		// Legacy Map contract: grow once instead of failing (see Put) —
		// but only when an insert is actually needed.
		if _, exists := t.GetVec(key); !exists {
			t.rehashTo(len(t.keys) * 2)
		}
	}
	i := t.home(key)
	block := i &^ 3
	valid := laneMaskFrom(i & 3)
	firstTomb := -1
	maxBlocks := len(t.keys)/4 + 1
	for b := 0; b < maxBlocks; b++ {
		l0, l1, l2, l3 := vec.LoadSoA4(t.keys, int(block))
		hit := vec.CmpEq4(l0, l1, l2, l3, key) & valid
		stop := vec.CmpEq4(l0, l1, l2, l3, emptyKey) & valid
		tomb := vec.CmpEq4(l0, l1, l2, l3, tombKey) & valid
		hl, sl := 8, 8
		if hit != 0 {
			hl = hit.First()
		}
		if stop != 0 {
			sl = stop.First()
		}
		if hl < sl {
			t.vals[block+uint64(hl)] = val
			return false
		}
		if sl < 8 {
			if firstTomb < 0 && tomb != 0 {
				if tl := tomb.First(); tl < sl {
					firstTomb = int(block) + tl
				}
			}
			if firstTomb >= 0 {
				t.keys[firstTomb] = key
				t.vals[firstTomb] = val
				t.tombs--
			} else {
				t.keys[block+uint64(sl)] = key
				t.vals[block+uint64(sl)] = val
			}
			t.size++
			return true
		}
		if firstTomb < 0 && tomb != 0 {
			firstTomb = int(block) + tomb.First()
		}
		valid = 0xF
		block = (block + 4) & t.mask
	}
	panic("table: LPSoA PutVec found no empty slot (table full)")
}
