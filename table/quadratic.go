package table

import "repro/hashfn"

// QuadraticProbing is an open-addressing hash table with quadratic probing
// (§2.3 of the paper): the i-th probe lands at
//
//	h(k, i) = (h'(k) + c1*i + c2*i^2) mod l, with c1 = c2 = 1/2,
//
// i.e. the probe offsets are the triangular numbers 0, 1, 3, 6, 10, ...
// With a power-of-two capacity this particular parameterization is a
// permutation of the slots: as long as a free slot exists, it will be
// found. Compared to linear probing, QP trades some locality (after the
// third probe every step lands on a new cache line) for a reduced tendency
// to primary clustering; it still exhibits secondary clustering because two
// keys that collide on their first probe share their entire probe sequence.
//
// Deletion places a tombstone unconditionally: the "is the next slot
// occupied" shortcut of the optimized LP strategy has no analogue here
// because probe sequences through a slot are not physically contiguous.
// Inserts recycle tombstones, and tombstone pressure triggers an in-place
// rehash when growth is enabled.
type QuadraticProbing struct {
	slots  []pair
	shift  uint
	mask   uint64
	size   int
	tombs  int
	fn     hashfn.Function
	family hashfn.Family
	seed   uint64
	maxLF  float64
	grows  int
	sent   sentinels
	batchState
}

var _ Table = (*QuadraticProbing)(nil)

// NewQuadraticProbing returns an empty quadratic-probing table configured
// by cfg.
func NewQuadraticProbing(cfg Config) *QuadraticProbing {
	cfg = cfg.withDefaults()
	t := &QuadraticProbing{
		family: cfg.Family,
		seed:   cfg.Seed,
		maxLF:  cfg.MaxLoadFactor,
	}
	t.fn = cfg.Family.New(cfg.Seed)
	t.init(cfg.InitialCapacity)
	return t
}

func (t *QuadraticProbing) init(capacity int) {
	t.slots = make([]pair, capacity)
	t.shift = 64 - log2(capacity)
	t.mask = uint64(capacity - 1)
	t.size = 0
	t.tombs = 0
}

func (t *QuadraticProbing) home(key uint64) uint64 { return t.fn.Hash(key) >> t.shift }

// Name implements Map.
func (t *QuadraticProbing) Name() string { return "QP" }

// HashName returns the hash-function family name.
func (t *QuadraticProbing) HashName() string { return t.fn.Name() }

// Len implements Map.
func (t *QuadraticProbing) Len() int { return t.size + t.sent.len() }

// Capacity implements Map.
func (t *QuadraticProbing) Capacity() int { return len(t.slots) }

// LoadFactor implements Map.
func (t *QuadraticProbing) LoadFactor() float64 {
	return float64(t.Len()) / float64(len(t.slots))
}

// Tombstones returns the number of tombstoned slots (diagnostics).
func (t *QuadraticProbing) Tombstones() int { return t.tombs }

// MemoryFootprint implements Map.
func (t *QuadraticProbing) MemoryFootprint() uint64 {
	return uint64(len(t.slots)) * pairBytes
}

// Get implements Map.
func (t *QuadraticProbing) Get(key uint64) (uint64, bool) {
	if isSentinelKey(key) {
		return t.sent.get(key)
	}
	i := t.home(key)
	for step := uint64(1); ; step++ {
		s := &t.slots[i]
		if s.key == key {
			return s.val, true
		}
		if s.key == emptyKey {
			return 0, false
		}
		if step > t.mask {
			// Probed every slot (triangular numbers are a permutation of a
			// power-of-two table): the key is absent and no empty slot
			// exists on its sequence.
			return 0, false
		}
		i = (i + step) & t.mask
	}
}

// Put implements Map; like LinearProbing.Put it grows once instead of
// failing on a full growth-disabled table.
func (t *QuadraticProbing) Put(key, val uint64) bool {
	if isSentinelKey(key) {
		return t.sent.put(key, val)
	}
	return t.mustPutHashed(key, val, t.fn.Hash(key))
}

// mustPutHashed is the legacy Map insert primitive; see
// LinearProbing.mustPutHashed.
func (t *QuadraticProbing) mustPutHashed(key, val, hash uint64) bool {
	_, existed, err := t.rmwHashed(key, val, hash, true, nil)
	if err != nil {
		// Growth disabled and full, and the key is new (rmwHashed updates
		// existing keys in place without needing room): grow once.
		t.rehash(len(t.slots) * 2)
		_, existed, _ = t.rmwHashed(key, val, hash, true, nil)
	}
	return !existed
}

// rmwHashed is the single-probe read-modify-write primitive; see
// LinearProbing.rmwHashed. The growth-disabled full check happens
// naturally at the end of the triangular sweep, so existing-key
// operations keep working on a completely full table.
func (t *QuadraticProbing) rmwHashed(key, val, hash uint64, overwrite bool, fn func(uint64, bool) uint64) (uint64, bool, error) {
	if isSentinelKey(key) {
		v, existed := t.sent.rmw(key, val, overwrite, fn)
		return v, existed, nil
	}
	if t.maxLF != 0 {
		t.maybeGrow()
	} else if t.size+t.tombs == len(t.slots) && t.tombs > 0 {
		t.rehash(len(t.slots))
	}
	i := hash >> t.shift
	firstTomb := -1
	for step := uint64(1); ; step++ {
		s := &t.slots[i]
		if s.key == key {
			if fn != nil {
				s.val = fn(s.val, true)
			} else if overwrite {
				s.val = val
			}
			return s.val, true, nil
		}
		atEmpty := s.key == emptyKey
		if atEmpty || step > t.mask {
			if !atEmpty && firstTomb < 0 {
				return 0, false, errFull(t.Name(), t.size, len(t.slots))
			}
			v := val
			if fn != nil {
				v = fn(0, false)
			}
			if firstTomb >= 0 {
				t.slots[firstTomb] = pair{key, v}
				t.tombs--
			} else {
				*s = pair{key, v}
			}
			t.size++
			return v, false, nil
		}
		if s.key == tombKey && firstTomb < 0 {
			firstTomb = int(i)
		}
		i = (i + step) & t.mask
	}
}

// Delete implements Map; see the type comment for why QP always tombstones.
func (t *QuadraticProbing) Delete(key uint64) bool {
	if isSentinelKey(key) {
		return t.sent.delete(key)
	}
	i := t.home(key)
	for step := uint64(1); ; step++ {
		s := &t.slots[i]
		if s.key == key {
			s.key, s.val = tombKey, 0
			t.tombs++
			t.size--
			return true
		}
		if s.key == emptyKey || step > t.mask {
			return false
		}
		i = (i + step) & t.mask
	}
}

func (t *QuadraticProbing) maybeGrow() {
	if t.maxLF == 0 {
		return
	}
	threshold := int(t.maxLF * float64(len(t.slots)))
	if t.size+t.tombs+1 <= threshold {
		return
	}
	newCap := len(t.slots)
	if t.size+1 > threshold {
		newCap *= 2
	}
	t.rehash(newCap)
}

func (t *QuadraticProbing) rehash(capacity int) {
	t.grows++
	old := t.slots
	t.init(capacity)
	for idx := range old {
		k := old[idx].key
		if k == emptyKey || k == tombKey {
			continue
		}
		i := t.home(k)
		for step := uint64(1); t.slots[i].key != emptyKey; step++ {
			i = (i + step) & t.mask
		}
		t.slots[i] = old[idx]
		t.size++
	}
}

// Range implements Map.
func (t *QuadraticProbing) Range(fn func(key, val uint64) bool) {
	if !t.sent.rng(fn) {
		return
	}
	for i := range t.slots {
		k := t.slots[i].key
		if k == emptyKey || k == tombKey {
			continue
		}
		if !fn(k, t.slots[i].val) {
			return
		}
	}
}

// Displacements returns, for every live entry, the number of probe steps i
// needed to reach it from its optimal slot along the quadratic sequence
// (the paper's QP displacement, §2.3). Unlike LP this requires replaying
// the probe sequence per entry, so it costs O(n * avg displacement).
func (t *QuadraticProbing) Displacements() []int {
	out := make([]int, 0, t.size)
	for idx := range t.slots {
		k := t.slots[idx].key
		if k == emptyKey || k == tombKey {
			continue
		}
		i := t.home(k)
		d := 0
		for step := uint64(1); i != uint64(idx); step++ {
			i = (i + step) & t.mask
			d++
		}
		out = append(out, d)
	}
	return out
}
