package table

// QuadraticProbing is an open-addressing hash table with quadratic probing
// (§2.3 of the paper): the i-th probe lands at
//
//	h(k, i) = (h'(k) + c1*i + c2*i^2) mod l, with c1 = c2 = 1/2,
//
// i.e. the probe offsets are the triangular numbers 0, 1, 3, 6, 10, ...
// With a power-of-two capacity this particular parameterization is a
// permutation of the slots: as long as a free slot exists, it will be
// found. Compared to linear probing, QP trades some locality (after the
// third probe every step lands on a new cache line) for a reduced tendency
// to primary clustering; it still exhibits secondary clustering because two
// keys that collide on their first probe share their entire probe sequence.
//
// Deletion places a tombstone unconditionally: the "is the next slot
// occupied" shortcut of the optimized LP strategy has no analogue here
// because probe sequences through a slot are not physically contiguous.
// Inserts recycle tombstones, and tombstone pressure triggers an in-place
// rehash when growth is enabled.
//
// The scheme is an instantiation of the policy-driven probe kernel
// (kernel.go): the triangular quadratic sequence over the AoS layout with
// no displacement.
type QuadraticProbing struct {
	kern
}

var _ Table = (*QuadraticProbing)(nil)

// NewQuadraticProbing returns an empty quadratic-probing table configured
// by cfg.
func NewQuadraticProbing(cfg Config) *QuadraticProbing {
	t := &QuadraticProbing{}
	t.setup(cfg, "QP", aosLayout{}, quadSeq{}, noDisplace{})
	return t
}
