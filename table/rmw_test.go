package table

// Property tests for the single-probe read-modify-write primitives: the
// batched forms must equal their scalar counterparts op for op (including
// sentinel keys and duplicates straddling chunk boundaries), and the
// ErrFull contract must hold on every growth-disabled scheme without a
// reachable panic or lost data.

import (
	"errors"
	"testing"

	"repro/internal/prng"
)

// rmwKeys builds a key stream with duplicates, sentinels and chunk-border
// straddling: ~n keys drawn from a small universe so batches collide.
func rmwKeys(n int, seed uint64) []uint64 {
	rng := prng.NewXoshiro256(seed)
	keys := make([]uint64, n)
	for i := range keys {
		switch rng.Uint64n(16) {
		case 0:
			keys[i] = 0 // empty-marker sentinel
		case 1:
			keys[i] = ^uint64(0) // tombstone-marker sentinel
		default:
			keys[i] = rng.Uint64n(uint64(n)) + 1
		}
	}
	// Force duplicates right at a BatchWidth boundary.
	if n > BatchWidth+1 {
		keys[BatchWidth-1] = 12345
		keys[BatchWidth] = 12345
	}
	return keys
}

func TestGetOrPutBatchEqualsScalar(t *testing.T) {
	for _, s := range allSchemes() {
		t.Run(string(s), func(t *testing.T) {
			keys := rmwKeys(1000, 11)
			vals := make([]uint64, len(keys))
			for i := range vals {
				vals[i] = uint64(i) + 1
			}
			batched := MustNew(s, Config{InitialCapacity: 64, MaxLoadFactor: 0.8, Seed: 5})
			scalar := MustNew(s, Config{InitialCapacity: 64, MaxLoadFactor: 0.8, Seed: 5})

			out := make([]uint64, len(keys))
			loaded := make([]bool, len(keys))
			insB, err := batched.GetOrPutBatch(keys, vals, out, loaded)
			if err != nil {
				t.Fatal(err)
			}
			insS := 0
			for i, k := range keys {
				v, ok, err := scalar.GetOrPut(k, vals[i])
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					insS++
				}
				if v != out[i] || ok != loaded[i] {
					t.Fatalf("lane %d key %d: batch (%d,%v) != scalar (%d,%v)", i, k, out[i], loaded[i], v, ok)
				}
			}
			if insB != insS {
				t.Fatalf("inserted: batch %d, scalar %d", insB, insS)
			}
			if batched.Len() != scalar.Len() {
				t.Fatalf("Len: batch %d, scalar %d", batched.Len(), scalar.Len())
			}
		})
	}
}

func TestTryPutBatchEqualsScalar(t *testing.T) {
	for _, s := range allSchemes() {
		t.Run(string(s), func(t *testing.T) {
			keys := rmwKeys(1000, 23)
			vals := make([]uint64, len(keys))
			for i := range vals {
				vals[i] = uint64(i) * 3
			}
			batched := MustNew(s, Config{InitialCapacity: 64, MaxLoadFactor: 0.8, Seed: 9})
			scalar := MustNew(s, Config{InitialCapacity: 64, MaxLoadFactor: 0.8, Seed: 9})
			insB, err := batched.TryPutBatch(keys, vals)
			if err != nil {
				t.Fatal(err)
			}
			insS := 0
			for i, k := range keys {
				ins, err := scalar.TryPut(k, vals[i])
				if err != nil {
					t.Fatal(err)
				}
				if ins {
					insS++
				}
			}
			if insB != insS {
				t.Fatalf("inserted: batch %d, scalar %d", insB, insS)
			}
			// Contents must match exactly (last write wins per key).
			scalar.Range(func(k, v uint64) bool {
				bv, ok := batched.Get(k)
				if !ok || bv != v {
					t.Fatalf("key %d: batch %d,%v, scalar %d", k, bv, ok, v)
				}
				return true
			})
			if batched.Len() != scalar.Len() {
				t.Fatalf("Len: batch %d, scalar %d", batched.Len(), scalar.Len())
			}
		})
	}
}

func TestUpsertBatchEqualsScalar(t *testing.T) {
	for _, s := range allSchemes() {
		t.Run(string(s), func(t *testing.T) {
			keys := rmwKeys(1000, 37)
			fold := func(old uint64, exists bool) uint64 {
				if exists {
					return old * 2
				}
				return 1
			}
			batched := MustNew(s, Config{InitialCapacity: 64, MaxLoadFactor: 0.8, Seed: 3})
			scalar := MustNew(s, Config{InitialCapacity: 64, MaxLoadFactor: 0.8, Seed: 3})
			insB, err := batched.UpsertBatch(keys, func(_ int, old uint64, exists bool) uint64 {
				return fold(old, exists)
			})
			if err != nil {
				t.Fatal(err)
			}
			insS := 0
			for _, k := range keys {
				if _, err := scalar.Upsert(k, fold); err != nil {
					t.Fatal(err)
				}
			}
			scalar.Range(func(k, v uint64) bool {
				bv, ok := batched.Get(k)
				if !ok || bv != v {
					t.Fatalf("key %d: batch %d,%v, scalar %d", k, bv, ok, v)
				}
				insS++
				return true
			})
			if batched.Len() != insS {
				t.Fatalf("Len: batch %d, scalar %d", batched.Len(), insS)
			}
			_ = insB
		})
	}
}

// TestGetOrPutMatchesGetThenPut: on a fresh pair of tables, GetOrPut must
// be observationally identical to the Get-then-Put sequence it replaces.
func TestGetOrPutMatchesGetThenPut(t *testing.T) {
	for _, s := range allSchemes() {
		t.Run(string(s), func(t *testing.T) {
			keys := rmwKeys(2000, 51)
			single := MustNew(s, Config{InitialCapacity: 64, MaxLoadFactor: 0.7, Seed: 1})
			double := MustNew(s, Config{InitialCapacity: 64, MaxLoadFactor: 0.7, Seed: 1})
			for i, k := range keys {
				v := uint64(i) + 10
				got, loaded, err := single.GetOrPut(k, v)
				if err != nil {
					t.Fatal(err)
				}
				want, existed := double.Get(k)
				if !existed {
					double.Put(k, v)
					want = v
				}
				if loaded != existed || got != want {
					t.Fatalf("key %d: GetOrPut (%d,%v) != Get-then-Put (%d,%v)", k, got, loaded, want, existed)
				}
			}
			if single.Len() != double.Len() {
				t.Fatalf("Len: %d != %d", single.Len(), double.Len())
			}
		})
	}
}

// TestErrFullContract fills a growth-disabled table through TryPut until
// it reports ErrFull, then verifies nothing was lost, that the batched
// forms agree, and that no public operation panics.
func TestErrFullContract(t *testing.T) {
	for _, s := range []Scheme{SchemeLP, SchemeLPSoA, SchemeQP, SchemeRH, SchemeDH, SchemeCuckooH4} {
		t.Run(string(s), func(t *testing.T) {
			m := MustNew(s, Config{InitialCapacity: 64, MaxLoadFactor: 0, Seed: 13})
			var inserted []uint64
			var full bool
			for k := uint64(1); k <= 200; k++ {
				ins, err := m.TryPut(k, k*10)
				if err != nil {
					if !errors.Is(err, ErrFull) {
						t.Fatalf("TryPut error %v, want ErrFull", err)
					}
					var fe *FullError
					if !errors.As(err, &fe) || fe.Capacity == 0 {
						t.Fatalf("error %v does not carry a populated *FullError", err)
					}
					full = true
					break
				}
				if !ins {
					t.Fatalf("TryPut(%d) reported update on fresh key", k)
				}
				inserted = append(inserted, k)
			}
			if !full {
				t.Fatal("table with 64 slots never reported ErrFull over 200 inserts")
			}
			// Nothing lost, and the failed insert did not corrupt state.
			for _, k := range inserted {
				if v, ok := m.Get(k); !ok || v != k*10 {
					t.Fatalf("after ErrFull, Get(%d) = %d,%v", k, v, ok)
				}
			}
			// The batched forms surface the same error.
			if _, err := m.TryPutBatch([]uint64{9999}, []uint64{1}); !errors.Is(err, ErrFull) {
				t.Fatalf("TryPutBatch err = %v, want ErrFull", err)
			}
			out := make([]uint64, 1)
			ld := make([]bool, 1)
			if _, err := m.GetOrPutBatch([]uint64{9999}, []uint64{1}, out, ld); !errors.Is(err, ErrFull) {
				t.Fatalf("GetOrPutBatch err = %v, want ErrFull", err)
			}
			if _, err := m.Upsert(9999, func(uint64, bool) uint64 { return 1 }); !errors.Is(err, ErrFull) {
				t.Fatalf("Upsert err = %v, want ErrFull", err)
			}
			// GetOrPut of an EXISTING key still succeeds on a full table.
			if v, loaded, err := m.GetOrPut(inserted[0], 1); err != nil || !loaded || v != inserted[0]*10 {
				t.Fatalf("GetOrPut(existing) on full table = %d,%v,%v", v, loaded, err)
			}
			// And the legacy Put safety valve grows instead of panicking.
			before := m.Len()
			if !m.Put(9999, 1) {
				t.Fatal("legacy Put on full table did not insert")
			}
			if m.Len() != before+1 {
				t.Fatalf("legacy Put grew Len to %d, want %d", m.Len(), before+1)
			}
		})
	}
}

// TestCuckooFixedCapacityNeverGrows pushes a growth-disabled Cuckoo table
// to (and past) its feasibility limit: every refused insert must report
// ErrFull, the capacity must never change (no silent doubling through the
// kick-failure rehash path), and no previously inserted key may be lost.
func TestCuckooFixedCapacityNeverGrows(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		m := NewCuckoo(Config{InitialCapacity: 64, MaxLoadFactor: 0, Seed: seed})
		capacity := m.Capacity()
		var kept []uint64
		for k := uint64(1); k <= uint64(capacity)+8; k++ {
			ins, err := m.TryPut(k, k*3)
			if err != nil {
				if !errors.Is(err, ErrFull) {
					t.Fatalf("seed %d: TryPut(%d) err = %v", seed, k, err)
				}
				if ins {
					t.Fatalf("seed %d: TryPut(%d) reported inserted alongside ErrFull", seed, k)
				}
				continue
			}
			kept = append(kept, k)
		}
		if m.Capacity() != capacity {
			t.Fatalf("seed %d: capacity grew %d -> %d with growth disabled", seed, capacity, m.Capacity())
		}
		if len(kept) != m.Len() {
			t.Fatalf("seed %d: Len %d, kept %d", seed, m.Len(), len(kept))
		}
		for _, k := range kept {
			if v, ok := m.Get(k); !ok || v != k*3 {
				t.Fatalf("seed %d: lost key %d (= %d,%v)", seed, k, v, ok)
			}
		}
	}
}

// TestCuckooWallClearedByLegacyPut: a successful legacy Put insert proves
// the layout still accepts entries, so it must clear the fixedWall
// refusal memo that a failed TryPut left behind.
func TestCuckooWallClearedByLegacyPut(t *testing.T) {
	// Fill to ~90% so every subtable is mostly occupied — keys both with
	// and without a free candidate slot then exist in abundance.
	m := NewCuckoo(Config{InitialCapacity: 64, MaxLoadFactor: 0, Seed: 13})
	for k := uint64(1); k <= 58; k++ {
		if _, err := m.TryPut(k, k); err != nil {
			t.Fatalf("TryPut(%d): %v", k, err)
		}
	}
	// Simulate a prior feasibility refusal (reaching one organically
	// depends on the seed — small tables usually pack perfectly).
	m.fixedWall = m.size
	// A key with all candidate slots occupied is refused in O(k)...
	var blocked, free uint64
	for k := uint64(10_000); blocked == 0 || free == 0; k++ {
		if m.emptyCandidate(k) {
			if free == 0 {
				free = k
			}
		} else if blocked == 0 {
			blocked = k
		}
	}
	if _, err := m.TryPut(blocked, 1); !errors.Is(err, ErrFull) {
		t.Fatalf("walled TryPut(no free candidate) err = %v, want ErrFull", err)
	}
	// ...but a key with a free candidate slot bypasses the memo.
	if ins, err := m.TryPut(free, 1); err != nil || !ins {
		t.Fatalf("walled TryPut(free candidate) = %v, %v", ins, err)
	}
	// A successful legacy Put insert clears the memo entirely, after
	// which even the blocked key is attempted (and fits — the table is
	// half empty, it just needs kicks).
	if !m.Put(free+100_000, 1) {
		t.Fatal("legacy Put failed")
	}
	if m.fixedWall != 0 {
		t.Fatal("successful legacy Put left the refusal memo set")
	}
	if ins, err := m.TryPut(blocked, 1); err != nil || !ins {
		t.Fatalf("post-clear TryPut(blocked) = %v, %v", ins, err)
	}
}

// TestPutVecUpdateOnFullTableDoesNotGrow: like Put, PutVec must update an
// existing key in place on a full growth-disabled table and grow only for
// a genuine insert.
func TestPutVecUpdateOnFullTableDoesNotGrow(t *testing.T) {
	lp := NewLinearProbing(Config{InitialCapacity: 8, Seed: 29})
	soa := NewLinearProbingSoA(Config{InitialCapacity: 8, Seed: 29})
	for i := uint64(1); i <= 7; i++ {
		lp.Put(i, i)
		soa.Put(i, i)
	}
	if lp.PutVec(3, 99) || soa.PutVec(3, 99) {
		t.Fatal("update reported insert")
	}
	if lp.Capacity() != 8 || soa.Capacity() != 8 {
		t.Fatalf("value update grew the table: %d/%d", lp.Capacity(), soa.Capacity())
	}
	if v, _ := lp.Get(3); v != 99 {
		t.Fatalf("LP update lost: %d", v)
	}
	if v, _ := soa.Get(3); v != 99 {
		t.Fatalf("SoA update lost: %d", v)
	}
	if !lp.PutVec(8, 8) || !soa.PutVec(8, 8) {
		t.Fatal("insert failed")
	}
	if lp.Capacity() != 16 || soa.Capacity() != 16 {
		t.Fatalf("insert on full table did not grow: %d/%d", lp.Capacity(), soa.Capacity())
	}
}

// TestChainedNeverFull: the chained schemes absorb any number of entries
// with growth disabled and never return ErrFull.
func TestChainedNeverFull(t *testing.T) {
	for _, s := range []Scheme{SchemeChained8, SchemeChained24} {
		m := MustNew(s, Config{InitialCapacity: 8, MaxLoadFactor: 0, Seed: 1})
		for k := uint64(0); k < 1000; k++ {
			if _, err := m.TryPut(k, k); err != nil {
				t.Fatalf("%s: TryPut(%d): %v", s, k, err)
			}
		}
		if m.Len() != 1000 {
			t.Fatalf("%s: Len = %d", s, m.Len())
		}
	}
}

// TestAllIterator: All must agree with Range on every scheme, and support
// early break.
func TestAllIterator(t *testing.T) {
	for _, s := range allSchemes() {
		m := MustNew(s, Config{InitialCapacity: 64, MaxLoadFactor: 0.8, Seed: 2})
		want := map[uint64]uint64{}
		for k := uint64(0); k < 300; k++ {
			m.Put(k, k*k)
			want[k] = k * k
		}
		got := map[uint64]uint64{}
		for k, v := range m.All() {
			got[k] = v
		}
		if len(got) != len(want) {
			t.Fatalf("%s: All yielded %d entries, want %d", s, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%s: All[%d] = %d, want %d", s, k, got[k], v)
			}
		}
		n := 0
		for range m.All() {
			n++
			if n == 5 {
				break
			}
		}
		if n != 5 {
			t.Fatalf("%s: early break iterated %d", s, n)
		}
	}
}

// BenchmarkBuildSingleProbe compares the build-side cost of the new
// single-probe primitives against the Get-then-Put double probe they
// replace (the acceptance benchmark, ns/key). Two build shapes:
//
//   - join: every row is a distinct key (a PK build), so Get-then-Put
//     pays a full miss probe plus a full insert probe per row — the case
//     the single-probe primitives cut in half;
//   - agg: ~8 rows per group, where most rows resolve to an existing key
//     and the saving applies only to first-seen groups.
func BenchmarkBuildSingleProbe(b *testing.B) {
	const n = 1 << 16
	rng := prng.NewXoshiro256(77)
	shapes := []struct {
		name       string
		dupsPerKey int
	}{
		{"join", 1},
		{"agg", 8},
	}
	for _, shape := range shapes {
		distinct := n / shape.dupsPerKey
		keys := make([]uint64, n)
		if shape.dupsPerKey == 1 {
			for i := range keys {
				keys[i] = rng.Next()
			}
		} else {
			for i := range keys {
				keys[i] = rng.Uint64n(uint64(distinct)) + 1
			}
		}
		// 50% final load factor, growth disabled: the WORM build setting.
		cfg := Config{InitialCapacity: distinct * 2, MaxLoadFactor: 0, Seed: 42}
		for _, s := range []Scheme{SchemeLP, SchemeQP, SchemeRH, SchemeCuckooH4, SchemeChained24} {
			prefix := shape.name + "/" + string(s)
			b.Run(prefix+"/GetThenPut", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m := MustNew(s, cfg)
					for _, k := range keys {
						if _, ok := m.Get(k); !ok {
							m.Put(k, k)
						}
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/key")
			})
			b.Run(prefix+"/GetOrPut", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m := MustNew(s, cfg)
					for _, k := range keys {
						m.GetOrPut(k, k)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/key")
			})
			b.Run(prefix+"/GetOrPutBatch", func(b *testing.B) {
				out := make([]uint64, BatchWidth)
				loaded := make([]bool, BatchWidth)
				for i := 0; i < b.N; i++ {
					m := MustNew(s, cfg)
					for base := 0; base < n; base += BatchWidth {
						kc := keys[base : base+BatchWidth]
						m.GetOrPutBatch(kc, kc, out, loaded)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/key")
			})
		}
	}
}

// FuzzDifferentialOps drives a byte-coded op stream against LP, RH and
// Cuckoo simultaneously, cross-checked against a builtin map oracle.
func FuzzDifferentialOps(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x83, 0x44, 0x00, 0xff, 0xfe, 0x10})
	f.Add([]byte("getorput-upsert-delete"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tables := []Table{
			MustNew(SchemeLP, Config{InitialCapacity: 16, MaxLoadFactor: 0.8, Seed: 1}),
			MustNew(SchemeRH, Config{InitialCapacity: 16, MaxLoadFactor: 0.8, Seed: 2}),
			MustNew(SchemeCuckooH4, Config{InitialCapacity: 32, MaxLoadFactor: 0.8, Seed: 3}),
		}
		oracle := map[uint64]uint64{}
		for i, b := range data {
			// Key universe of 16 (plus the sentinels) keeps collisions hot.
			k := uint64(b & 0x0f)
			if b&0x10 != 0 {
				k = ^uint64(0) - k%2
			}
			v := uint64(i) + 1
			switch b >> 5 {
			case 0, 1:
				for _, m := range tables {
					m.Put(k, v)
				}
				oracle[k] = v
			case 2:
				for _, m := range tables {
					if _, _, err := m.GetOrPut(k, v); err != nil {
						t.Fatal(err)
					}
				}
				if _, ok := oracle[k]; !ok {
					oracle[k] = v
				}
			case 3:
				for _, m := range tables {
					if _, err := m.Upsert(k, func(old uint64, exists bool) uint64 {
						if exists {
							return old + 1
						}
						return v
					}); err != nil {
						t.Fatal(err)
					}
				}
				if old, ok := oracle[k]; ok {
					oracle[k] = old + 1
				} else {
					oracle[k] = v
				}
			case 4:
				for _, m := range tables {
					m.Delete(k)
				}
				delete(oracle, k)
			default:
				ov, existed := oracle[k]
				for _, m := range tables {
					if got, ok := m.Get(k); ok != existed || (ok && got != ov) {
						t.Fatalf("%s: Get(%d) = %d,%v; oracle %d,%v", m.Name(), k, got, ok, ov, existed)
					}
				}
			}
		}
		for _, m := range tables {
			if m.Len() != len(oracle) {
				t.Fatalf("%s: Len %d, oracle %d", m.Name(), m.Len(), len(oracle))
			}
			for k, v := range m.All() {
				if ov, ok := oracle[k]; !ok || ov != v {
					t.Fatalf("%s: contains %d=%d, oracle %d,%v", m.Name(), k, v, ov, ok)
				}
			}
		}
	})
}
