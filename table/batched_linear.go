package table

import "repro/hashfn"

// Batched pipeline for the two linear-probing layouts. Linear probing is
// where batching pays most: probe sequences are pure pointer-free array
// walks, so once the home slots of a whole chunk are known, the round-robin
// walk issues one independent load per live lane per round and the memory
// system overlaps their misses.

// GetBatch implements Batcher.
func (t *LinearProbing) GetBatch(keys []uint64, vals []uint64, ok []bool) int {
	checkBatchGet(len(keys), len(vals), len(ok))
	bt := t.buf()
	hits := 0
	chunks(len(keys), func(lo, hi int) {
		hits += t.getChunk(bt, keys[lo:hi], vals[lo:hi], ok[lo:hi])
	})
	return hits
}

func (t *LinearProbing) getChunk(bt *batchBuf, keys, vals []uint64, ok []bool) int {
	hashfn.HashBatch(t.fn, keys, bt.hash[:])
	shift, mask := t.shift, t.mask
	hits := 0
	// First-probe pass: walk every lane from its home slot to the end of
	// the home cache line; at moderate load factors most lookups resolve
	// without ever becoming a live lane. Survivors yield at the line
	// boundary — the next slot is the first truly new (potentially
	// missing) load of the sequence.
	live := bt.lane[:0]
	for l := range keys {
		k := keys[l]
		if isSentinelKey(k) {
			vals[l], ok[l] = t.sent.get(k)
			if ok[l] {
				hits++
			}
			continue
		}
		i := bt.hash[l] >> shift
		for {
			s := &t.slots[i]
			if s.key == k {
				vals[l], ok[l] = s.val, true
				hits++
				break
			}
			if s.key == emptyKey {
				vals[l], ok[l] = 0, false
				break
			}
			i = (i + 1) & mask
			if i&(slotsPerCacheLine-1) == 0 {
				bt.a[l] = i
				live = append(live, int32(l))
				break
			}
		}
	}
	// Round-robin walk, one cache line per live lane per round: within a
	// line the walk is sequential (the load already paid for the line),
	// across lanes the line-crossing loads are independent and overlap in
	// the memory system.
	for len(live) > 0 {
		w := 0
		for _, l := range live {
			i := bt.a[l]
			k := keys[l]
			for {
				s := &t.slots[i]
				if s.key == k {
					vals[l], ok[l] = s.val, true
					hits++
					break
				}
				if s.key == emptyKey {
					vals[l], ok[l] = 0, false
					break
				}
				i = (i + 1) & mask
				if i&(slotsPerCacheLine-1) == 0 {
					bt.a[l] = i
					live[w] = l
					w++
					break
				}
			}
		}
		live = live[:w]
	}
	return hits
}

// PutBatch implements Batcher: the chunk is bulk-hashed once, then inserted
// in slice order so duplicate keys inside a batch keep sequential (last
// wins) semantics. Growth mid-batch is safe because slot indexes are
// derived from the stored hash codes at insert time.
func (t *LinearProbing) PutBatch(keys []uint64, vals []uint64) int {
	checkBatchPut(len(keys), len(vals))
	bt := t.buf()
	inserted := 0
	chunks(len(keys), func(lo, hi int) {
		kc, vc := keys[lo:hi], vals[lo:hi]
		hashfn.HashBatch(t.fn, kc, bt.hash[:])
		for l, k := range kc {
			if isSentinelKey(k) {
				if t.sent.put(k, vc[l]) {
					inserted++
				}
				continue
			}
			if t.mustPutHashed(k, vc[l], bt.hash[l]) {
				inserted++
			}
		}
	})
	return inserted
}

// GetBatch implements Batcher. Identical structure to the AoS pipeline; the
// key column is denser (8 bytes per slot instead of 16), so long walks
// touch half the cache lines — the §7 layout trade reproduced by the
// scalar Get as well.
func (t *LinearProbingSoA) GetBatch(keys []uint64, vals []uint64, ok []bool) int {
	checkBatchGet(len(keys), len(vals), len(ok))
	bt := t.buf()
	hits := 0
	chunks(len(keys), func(lo, hi int) {
		hits += t.getChunk(bt, keys[lo:hi], vals[lo:hi], ok[lo:hi])
	})
	return hits
}

// soaKeysPerLine is how many 8-byte key-column entries share a 64-byte
// cache line — the SoA walk's natural yield granularity (twice the AoS
// one, the §7 "half the bytes" advantage).
const soaKeysPerLine = 8

func (t *LinearProbingSoA) getChunk(bt *batchBuf, keys, vals []uint64, ok []bool) int {
	hashfn.HashBatch(t.fn, keys, bt.hash[:])
	shift, mask := t.shift, t.mask
	hits := 0
	live := bt.lane[:0]
	for l := range keys {
		k := keys[l]
		if isSentinelKey(k) {
			vals[l], ok[l] = t.sent.get(k)
			if ok[l] {
				hits++
			}
			continue
		}
		i := bt.hash[l] >> shift
		for {
			sk := t.keys[i]
			if sk == k {
				vals[l], ok[l] = t.vals[i], true
				hits++
				break
			}
			if sk == emptyKey {
				vals[l], ok[l] = 0, false
				break
			}
			i = (i + 1) & mask
			if i&(soaKeysPerLine-1) == 0 {
				bt.a[l] = i
				live = append(live, int32(l))
				break
			}
		}
	}
	for len(live) > 0 {
		w := 0
		for _, l := range live {
			i := bt.a[l]
			k := keys[l]
			for {
				sk := t.keys[i]
				if sk == k {
					vals[l], ok[l] = t.vals[i], true
					hits++
					break
				}
				if sk == emptyKey {
					vals[l], ok[l] = 0, false
					break
				}
				i = (i + 1) & mask
				if i&(soaKeysPerLine-1) == 0 {
					bt.a[l] = i
					live[w] = l
					w++
					break
				}
			}
		}
		live = live[:w]
	}
	return hits
}

// PutBatch implements Batcher; see LinearProbing.PutBatch.
func (t *LinearProbingSoA) PutBatch(keys []uint64, vals []uint64) int {
	checkBatchPut(len(keys), len(vals))
	bt := t.buf()
	inserted := 0
	chunks(len(keys), func(lo, hi int) {
		kc, vc := keys[lo:hi], vals[lo:hi]
		hashfn.HashBatch(t.fn, kc, bt.hash[:])
		for l, k := range kc {
			if isSentinelKey(k) {
				if t.sent.put(k, vc[l]) {
					inserted++
				}
				continue
			}
			if t.mustPutHashed(k, vc[l], bt.hash[l]) {
				inserted++
			}
		}
	})
	return inserted
}
