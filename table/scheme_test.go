package table

import (
	"errors"
	"testing"

	"repro/hashfn"
	"repro/internal/prng"
)

// --- Linear probing specifics -----------------------------------------------

// TestLPTombstonePlacement verifies the optimized delete: a tombstone is
// placed only when the next slot is occupied.
func TestLPTombstonePlacement(t *testing.T) {
	m := NewLinearProbing(Config{InitialCapacity: 1 << 10, Seed: 1})
	// Force a collision cluster by inserting until we find three keys in a
	// row somewhere; easier: insert enough keys to create clusters.
	for i := uint64(1); i <= 512; i++ {
		m.Put(i*2654435761, i)
	}
	// Delete every key; afterwards no live entries remain and lookups of
	// all keys miss (tombstones must not resurrect anything).
	for i := uint64(1); i <= 512; i++ {
		if !m.Delete(i * 2654435761) {
			t.Fatalf("delete of key %d failed", i)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", m.Len())
	}
	for i := uint64(1); i <= 512; i++ {
		if _, ok := m.Get(i * 2654435761); ok {
			t.Fatalf("deleted key %d still found", i)
		}
	}
	// Cluster-end clearing must have removed trailing tombstones: an empty
	// table should have zero or very few tombstones... in fact deleting in
	// insertion order can leave tombstones mid-cluster, but a full sweep
	// in reverse cleans cluster tails. At minimum, tombstones < deletes.
	if m.Tombstones() >= 512 {
		t.Fatalf("all %d deletes left tombstones; optimized placement is not working", m.Tombstones())
	}
}

// TestLPTombstoneRecycling: inserts must reuse tombstoned slots.
func TestLPTombstoneRecycling(t *testing.T) {
	m := NewLinearProbing(Config{InitialCapacity: 64, Seed: 2})
	// Fill half, delete half, refill: with growth disabled this only works
	// if tombstones are recycled.
	for round := 0; round < 100; round++ {
		for i := uint64(1); i <= 30; i++ {
			m.Put(i, i)
		}
		for i := uint64(1); i <= 30; i++ {
			m.Delete(i)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

// TestLPClusterConnectivity: after arbitrary deletes, every resident key
// must remain reachable (the invariant the tombstone strategy protects).
func TestLPClusterConnectivity(t *testing.T) {
	m := NewLinearProbing(Config{InitialCapacity: 256, Seed: 3})
	rng := prng.NewXoshiro256(4)
	live := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		k := rng.Uint64n(200) + 1
		if live[k] {
			m.Delete(k)
			delete(live, k)
		} else {
			m.Put(k, k)
			live[k] = true
		}
		// Every live key must be findable after every operation.
		if i%97 == 0 {
			for want := range live {
				if _, ok := m.Get(want); !ok {
					t.Fatalf("op %d: live key %d unreachable", i, want)
				}
			}
		}
	}
}

// --- Quadratic probing specifics ---------------------------------------------

// TestQPTriangularCoverage verifies the §2.3 guarantee: with c1=c2=1/2 and
// power-of-two capacity, the probe sequence visits every slot exactly once
// in l probes.
func TestQPTriangularCoverage(t *testing.T) {
	for _, l := range []int{8, 64, 1024} {
		mask := uint64(l - 1)
		seen := make([]bool, l)
		pos := uint64(5) % uint64(l) // arbitrary home
		count := 0
		for step := uint64(0); step < uint64(l); step++ {
			if !seen[pos] {
				seen[pos] = true
				count++
			}
			pos = (pos + step + 1) & mask
		}
		if count != l {
			t.Fatalf("l=%d: triangular probing visited %d distinct slots, want %d", l, count, l)
		}
	}
}

// TestQPFullTableInsert fills a QP table to 100% capacity; the coverage
// guarantee means every insert must find the remaining empty slots.
func TestQPFullTableInsert(t *testing.T) {
	const l = 256
	m := NewQuadraticProbing(Config{InitialCapacity: l, Seed: 5})
	for i := uint64(1); i <= l; i++ {
		m.Put(i*0x9E3779B97F4A7C15, i)
	}
	if m.Len() != l {
		t.Fatalf("Len = %d, want %d", m.Len(), l)
	}
	for i := uint64(1); i <= l; i++ {
		if v, ok := m.Get(i * 0x9E3779B97F4A7C15); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v at full table", i, v, ok)
		}
	}
	// Unsuccessful lookups on a 100% full table must terminate.
	if _, ok := m.Get(0x1234567); ok {
		t.Fatal("phantom hit")
	}
}

// TestQPTombstoneChurnFixedCapacity: delete/insert cycles on a full-ish
// fixed table exercise the full-sweep tombstone-recycling path.
func TestQPTombstoneChurnFixedCapacity(t *testing.T) {
	const l = 128
	m := NewQuadraticProbing(Config{InitialCapacity: l, Seed: 6})
	for i := uint64(1); i <= l; i++ { // completely full
		m.Put(i, i)
	}
	for round := uint64(0); round < 200; round++ {
		k := round%l + 1
		if !m.Delete(k) {
			t.Fatalf("round %d: delete %d failed", round, k)
		}
		nk := k + 1000*(round+1)
		if !m.Put(nk, nk) {
			t.Fatalf("round %d: insert %d failed", round, nk)
		}
		if v, ok := m.Get(nk); !ok || v != nk {
			t.Fatalf("round %d: get %d = %d,%v", round, nk, v, ok)
		}
		// Restore the original key for the next rounds' bookkeeping.
		if !m.Delete(nk) {
			t.Fatalf("round %d: cleanup delete failed", round)
		}
		m.Put(k, k)
	}
	if m.Len() != l {
		t.Fatalf("Len = %d, want %d", m.Len(), l)
	}
}

// --- Robin Hood specifics -----------------------------------------------------

// TestRHOrderingInvariant checks the Robin Hood invariant after random
// churn: scanning any cluster from its start, an entry's displacement never
// exceeds its probe distance from any key's perspective; concretely, for
// each slot i holding an entry with displacement d, the entry at i-1 (if in
// the same cluster) has displacement >= d-1.
func TestRHOrderingInvariant(t *testing.T) {
	m := NewRobinHood(Config{InitialCapacity: 512, Seed: 7})
	rng := prng.NewXoshiro256(8)
	live := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		k := rng.Uint64n(400) + 1
		if live[k] {
			m.Delete(k)
			delete(live, k)
		} else {
			m.Put(k, k)
			live[k] = true
		}
	}
	mask := uint64(m.Capacity() - 1)
	for i := range m.slots {
		if m.slots[i].key == emptyKey {
			continue
		}
		d := m.displacementAt(uint64(i))
		if d == 0 {
			continue
		}
		prev := (uint64(i) - 1) & mask
		if m.slots[prev].key == emptyKey {
			t.Fatalf("slot %d has displacement %d but predecessor is empty", i, d)
		}
		pd := m.displacementAt(prev)
		if pd+1 < d {
			t.Fatalf("RH invariant violated at slot %d: displacement %d after predecessor with %d", i, d, pd)
		}
	}
}

// TestRHMatchesLPTotalDisplacement: RH redistributes displacement but
// cannot change its total relative to LP on identical inputs (§2.4).
func TestRHMatchesLPTotalDisplacement(t *testing.T) {
	lp := NewLinearProbing(Config{InitialCapacity: 1 << 12, Seed: 9})
	rh := NewRobinHood(Config{InitialCapacity: 1 << 12, Seed: 9})
	rng := prng.NewXoshiro256(10)
	for i := 0; i < 3000; i++ {
		k := rng.Next()
		lp.Put(k, k)
		rh.Put(k, k)
	}
	sum := func(xs []int) (s int) {
		for _, x := range xs {
			s += x
		}
		return
	}
	lpTotal, rhTotal := sum(lp.Displacements()), sum(rh.Displacements())
	if lpTotal != rhTotal {
		t.Fatalf("total displacement LP=%d RH=%d; Robin Hood must not change the total", lpTotal, rhTotal)
	}
	// But RH must reduce (or at least not increase) the maximum.
	maxOf := func(xs []int) (m int) {
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return
	}
	if maxOf(rh.Displacements()) > maxOf(lp.Displacements()) {
		t.Fatalf("RH max displacement %d exceeds LP's %d", maxOf(rh.Displacements()), maxOf(lp.Displacements()))
	}
}

// TestRHEarlyAbortCorrectness: the cache-line early abort must never
// produce a false negative. Compare Get against a linear reference scan.
func TestRHEarlyAbortCorrectness(t *testing.T) {
	m := NewRobinHood(Config{InitialCapacity: 256, Seed: 11})
	rng := prng.NewXoshiro256(12)
	present := map[uint64]uint64{}
	for i := 0; i < 230; i++ { // ~90% load factor
		k := rng.Next()
		m.Put(k, k+1)
		present[k] = k + 1
	}
	for k, v := range present {
		if got, ok := m.Get(k); !ok || got != v {
			t.Fatalf("present key %#x: Get = %d,%v", k, got, v)
		}
	}
	for i := 0; i < 10000; i++ {
		k := rng.Next()
		if _, isPresent := present[k]; isPresent {
			continue
		}
		if _, ok := m.Get(k); ok {
			t.Fatalf("absent key %#x reported found", k)
		}
	}
}

// TestRHDeleteBackshift: deletions rehash the cluster tail; afterwards all
// remaining keys stay reachable and the invariant holds.
func TestRHDeleteBackshift(t *testing.T) {
	m := NewRobinHood(Config{InitialCapacity: 128, Seed: 13})
	keys := make([]uint64, 0, 100)
	rng := prng.NewXoshiro256(14)
	for i := 0; i < 100; i++ {
		k := rng.Next()
		keys = append(keys, k)
		m.Put(k, k)
	}
	for i, k := range keys {
		if !m.Delete(k) {
			t.Fatalf("delete %d failed", i)
		}
		for _, rest := range keys[i+1:] {
			if _, ok := m.Get(rest); !ok {
				t.Fatalf("after deleting %d keys, key %#x lost", i+1, rest)
			}
		}
	}
}

// --- Cuckoo specifics ----------------------------------------------------------

// TestCuckooEveryKeyAtCandidateSlot: the defining invariant — every key
// resides at one of its k candidate positions.
func TestCuckooEveryKeyAtCandidateSlot(t *testing.T) {
	m := NewCuckoo(Config{InitialCapacity: 1 << 10, Seed: 15})
	rng := prng.NewXoshiro256(16)
	n := (1 << 10) * 9 / 10 // 90% load factor
	inserted := make([]uint64, 0, n)
	for len(inserted) < n {
		k := rng.Next()
		if isSentinelKey(k) {
			continue
		}
		if m.Put(k, k) {
			inserted = append(inserted, k)
		}
	}
	for _, k := range inserted {
		found := false
		for j := 0; j < m.Ways(); j++ {
			if m.slots[m.pos(j, k)].key == k {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %#x not at any of its %d candidate slots", k, m.Ways())
		}
	}
}

// TestCuckooHighLoadFactorConstruction: CuckooH4 must reach 90% (the
// paper's sweep) with Mult and Murmur.
func TestCuckooHighLoadFactorConstruction(t *testing.T) {
	for _, f := range []hashfn.Family{hashfn.MultFamily{}, hashfn.MurmurFamily{}} {
		m := NewCuckoo(Config{InitialCapacity: 1 << 12, Family: f, Seed: 17})
		n := (1 << 12) * 9 / 10
		for i := 1; i <= n; i++ {
			m.Put(uint64(i)*0x9E3779B97F4A7C15+1, uint64(i))
		}
		if m.Len() != n {
			t.Fatalf("%s: built %d entries, want %d", f.Name(), m.Len(), n)
		}
		if m.LoadFactor() < 0.89 {
			t.Fatalf("%s: load factor %v", f.Name(), m.LoadFactor())
		}
	}
}

// TestCuckooRehashOnForcedCycle: with a tiny kick bound, construction must
// recover via rehashes and still end correct.
func TestCuckooRehashOnForcedCycle(t *testing.T) {
	m := NewCuckoo(Config{InitialCapacity: 64, Seed: 18})
	m.maxKicks = 1 // pathological: almost any collision chain fails
	n := 48        // 75% of 64
	for i := 1; i <= n; i++ {
		m.Put(uint64(i)*2654435761, uint64(i))
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	if m.Rehashes() == 0 {
		t.Fatal("expected forced rehashes with maxKicks=1")
	}
	for i := 1; i <= n; i++ {
		if v, ok := m.Get(uint64(i) * 2654435761); !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = %d,%v after rehashes", i, v, ok)
		}
	}
}

// TestCuckooWaysValidation: k in [2, 8] is supported, outside panics.
func TestCuckooWaysValidation(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5, 8} {
		m := NewCuckooK(Config{InitialCapacity: 256, Seed: 19}, k)
		if m.Ways() != k {
			t.Fatalf("Ways = %d, want %d", m.Ways(), k)
		}
		for i := uint64(1); i <= 100; i++ {
			m.Put(i, i)
		}
		if m.Len() != 100 {
			t.Fatalf("k=%d: Len = %d", k, m.Len())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewCuckooK(.., 9) did not panic")
		}
	}()
	NewCuckooK(Config{}, 9)
}

// TestCuckooLookupProbeBound: Get touches at most k slots — verified
// indirectly by checking misses terminate immediately even on a table with
// every slot occupied.
func TestCuckooLookupProbeBound(t *testing.T) {
	m := NewCuckoo(Config{InitialCapacity: 64, Seed: 20})
	for i := uint64(1); m.Len() < 60; i++ {
		m.Put(i, i)
	}
	// All misses must return false (no infinite probing possible by
	// construction; this is a smoke check).
	for i := uint64(1000000); i < 1001000; i++ {
		if _, ok := m.Get(i); ok {
			t.Fatalf("phantom hit for %d", i)
		}
	}
}

// --- Chained specifics ----------------------------------------------------------

// TestChained24InlinePromotion: deleting an inline entry promotes the chain
// head into the directory slot.
func TestChained24InlinePromotion(t *testing.T) {
	m := NewChained24(Config{InitialCapacity: 8, Seed: 21})
	// With 8 slots, colliding keys are easy to make: insert many keys and
	// delete aggressively.
	for i := uint64(1); i <= 64; i++ {
		m.Put(i, i*10)
	}
	for i := uint64(1); i <= 64; i++ {
		if !m.Delete(i) {
			t.Fatalf("delete %d failed", i)
		}
		for j := i + 1; j <= 64; j++ {
			if v, ok := m.Get(j); !ok || v != j*10 {
				t.Fatalf("after deleting %d, key %d = %d,%v", i, j, v, ok)
			}
		}
	}
	if m.Overflow() != 0 {
		t.Fatalf("overflow = %d after emptying", m.Overflow())
	}
}

// TestChained8SlabReuse: delete must return entries to the slab free list
// so churn does not grow the footprint.
func TestChained8SlabReuse(t *testing.T) {
	m := NewChained8(Config{InitialCapacity: 64, Seed: 22})
	for i := uint64(1); i <= 64; i++ {
		m.Put(i, i)
	}
	before := m.MemoryFootprint()
	for round := 0; round < 50; round++ {
		for i := uint64(1); i <= 64; i++ {
			m.Delete(i)
		}
		for i := uint64(1); i <= 64; i++ {
			m.Put(i, i)
		}
	}
	if after := m.MemoryFootprint(); after != before {
		t.Fatalf("footprint grew under churn: %d -> %d", before, after)
	}
}

// TestChainedDirectorySizing pins the §4.5 budget arithmetic at the
// paper's own scale (2^30 slots).
func TestChainedDirectorySizing(t *testing.T) {
	const l = 1 << 30
	// Paper Figure 3: ChainedH8 directory is 2^30 slots at 25/35%, 2^29 at 45%.
	if got := Chained8DirectorySlots(0.25, l); got != 1<<30 {
		t.Errorf("Chained8 at 25%%: %d slots, want 2^30", got)
	}
	if got := Chained8DirectorySlots(0.35, l); got != 1<<30 {
		t.Errorf("Chained8 at 35%%: %d slots, want 2^30", got)
	}
	if got := Chained8DirectorySlots(0.45, l); got != 1<<29 {
		t.Errorf("Chained8 at 45%%: %d slots, want 2^29", got)
	}
	// ChainedH24 directory is 2^29 across the low load factors.
	for _, a := range []float64{0.25, 0.35, 0.45} {
		if got := Chained24DirectorySlots(a, l); got != 1<<29 {
			t.Errorf("Chained24 at %.0f%%: %d slots, want 2^29", a*100, got)
		}
	}
	// §5: chained fits the budget up to ~50% and fails at >= 70%.
	if !FitsChained24Budget(0.5, l) {
		t.Error("Chained24 should fit the budget at 50%")
	}
	if FitsChained24Budget(0.7, l) {
		t.Error("Chained24 should exceed the budget at 70%")
	}
	if FitsChained24Budget(0.9, l) {
		t.Error("Chained24 should exceed the budget at 90%")
	}
}

// TestChainLengthsAndOverflow sanity-checks the diagnostics.
func TestChainLengthsAndOverflow(t *testing.T) {
	m8 := NewChained8(Config{InitialCapacity: 16, Seed: 23})
	m24 := NewChained24(Config{InitialCapacity: 16, Seed: 23})
	total := 0
	for i := uint64(1); i <= 64; i++ {
		m8.Put(i, i)
		m24.Put(i, i)
		total++
	}
	sum := func(xs []int) (s int) {
		for _, x := range xs {
			s += x
		}
		return
	}
	if got := sum(m8.ChainLengths()); got != total {
		t.Fatalf("Chained8 chain lengths sum to %d, want %d", got, total)
	}
	if got := sum(m24.ChainLengths()); got != total {
		t.Fatalf("Chained24 chain lengths sum to %d, want %d", got, total)
	}
	if m24.Overflow() != total-16 {
		// 64 keys into 16 slots: all slots occupied inline (any hash
		// function will fill all 16 with 64 keys... not guaranteed, so
		// only check bounds).
		if m24.Overflow() < total-16 || m24.Overflow() >= total {
			t.Fatalf("Chained24 overflow = %d, want in [%d,%d)", m24.Overflow(), total-16, total)
		}
	}
}

// --- Layout and vectorized variants -----------------------------------------------

// TestVecScalarEquivalence cross-checks GetVec/PutVec against the scalar
// paths on identical random workloads for both layouts.
func TestVecScalarEquivalence(t *testing.T) {
	rng := prng.NewXoshiro256(24)
	aosS := NewLinearProbing(Config{InitialCapacity: 256, Seed: 25})
	aosV := NewLinearProbing(Config{InitialCapacity: 256, Seed: 25})
	soaS := NewLinearProbingSoA(Config{InitialCapacity: 256, Seed: 25})
	soaV := NewLinearProbingSoA(Config{InitialCapacity: 256, Seed: 25})
	oracle := map[uint64]uint64{}
	for i := 0; i < 20000; i++ {
		k := rng.Uint64n(300) // includes key 0 (sentinel path)
		switch rng.Uint64n(6) {
		case 0, 1, 2:
			v := rng.Next()
			insS := aosS.Put(k, v)
			insV := aosV.PutVec(k, v)
			if insS != insV {
				t.Fatalf("op %d: AoS Put=%v PutVec=%v", i, insS, insV)
			}
			if soaS.Put(k, v) != soaV.PutVec(k, v) {
				t.Fatalf("op %d: SoA put mismatch", i)
			}
			oracle[k] = v
		case 3:
			dS := aosS.Delete(k)
			if dV := aosV.Delete(k); dS != dV {
				t.Fatalf("op %d: delete mismatch", i)
			}
			soaS.Delete(k)
			soaV.Delete(k)
			delete(oracle, k)
		default:
			wantV, wantOK := oracle[k]
			for name, get := range map[string]func(uint64) (uint64, bool){
				"AoS/Get": aosS.Get, "AoS/GetVec": aosV.GetVec,
				"SoA/Get": soaS.Get, "SoA/GetVec": soaV.GetVec,
			} {
				v, ok := get(k)
				if ok != wantOK || (ok && v != wantV) {
					t.Fatalf("op %d: %s(%d) = %d,%v; want %d,%v", i, name, k, v, ok, wantV, wantOK)
				}
			}
		}
	}
}

// TestVecWraparound exercises vector probes that wrap the table end.
func TestVecWraparound(t *testing.T) {
	m := NewLinearProbing(Config{InitialCapacity: 8, Seed: 26})
	// Fill 7 of 8 slots: clusters will wrap.
	keys := []uint64{3, 11, 19, 27, 35, 43, 51}
	for _, k := range keys {
		m.PutVec(k, k*2)
	}
	for _, k := range keys {
		if v, ok := m.GetVec(k); !ok || v != k*2 {
			t.Fatalf("GetVec(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := m.GetVec(999); ok {
		t.Fatal("phantom hit across wraparound")
	}
}

// --- Displacement / cluster diagnostics ----------------------------------------

func TestDisplacementsConsistency(t *testing.T) {
	lp := NewLinearProbing(Config{InitialCapacity: 1 << 10, Seed: 27})
	qp := NewQuadraticProbing(Config{InitialCapacity: 1 << 10, Seed: 27})
	rng := prng.NewXoshiro256(28)
	for i := 0; i < 700; i++ {
		k := rng.Next()
		lp.Put(k, k)
		qp.Put(k, k)
	}
	for name, ds := range map[string][]int{"LP": lp.Displacements(), "QP": qp.Displacements()} {
		if len(ds) != 700 {
			t.Fatalf("%s: %d displacements, want 700", name, len(ds))
		}
		for _, d := range ds {
			if d < 0 || d >= 1<<10 {
				t.Fatalf("%s: displacement %d out of range", name, d)
			}
		}
	}
	// Cluster lengths must sum to occupied slots (= size, no tombstones).
	sum := 0
	for _, c := range lp.ClusterLengths() {
		sum += c
	}
	if sum != 700 {
		t.Fatalf("cluster lengths sum to %d, want 700", sum)
	}
}

// TestClusterLengthsFullTable covers the all-slots-occupied edge case of
// the run detector (reachable only through internal construction: the
// public API always preserves one empty slot for probe termination).
func TestClusterLengthsFullTable(t *testing.T) {
	m := NewLinearProbing(Config{InitialCapacity: 8, Seed: 29})
	for i := range m.slots {
		m.slots[i] = pair{uint64(i) + 1, 0}
	}
	cl := m.ClusterLengths()
	if len(cl) != 1 || cl[0] != 8 {
		t.Fatalf("full table clusters = %v, want [8]", cl)
	}
	// And the one-empty-slot invariant: filling via the public API stops
	// at capacity-1. TryPut reports ErrFull there; legacy Put absorbs the
	// contract breach by growing once instead of panicking.
	m2 := NewLinearProbing(Config{InitialCapacity: 8, Seed: 29})
	for i := uint64(1); i <= 7; i++ {
		m2.Put(i, i)
	}
	if _, err := m2.TryPut(8, 8); !errors.Is(err, ErrFull) {
		t.Fatalf("TryPut on full table: err = %v, want ErrFull", err)
	}
	if m2.Len() != 7 {
		t.Fatalf("failed TryPut mutated the table: Len = %d", m2.Len())
	}
	if !m2.Put(8, 8) {
		t.Fatal("legacy Put on full table should grow and insert")
	}
	if m2.Capacity() != 16 || m2.Len() != 8 {
		t.Fatalf("after safety-valve growth: capacity %d, len %d", m2.Capacity(), m2.Len())
	}
	for i := uint64(1); i <= 8; i++ {
		if v, ok := m2.Get(i); !ok || v != i {
			t.Fatalf("after growth Get(%d) = %d,%v", i, v, ok)
		}
	}
}
