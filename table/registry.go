package table

import "fmt"

// Scheme identifies one of the hashing schemes in this package.
type Scheme string

// The schemes studied in the paper (§2), plus the SoA layout variant of LP
// used by the §7 layout study and the double-hashing extension shipped as
// a probe-kernel policy (see DoubleHashing).
const (
	SchemeChained8  Scheme = "ChainedH8"
	SchemeChained24 Scheme = "ChainedH24"
	SchemeLP        Scheme = "LP"
	SchemeLPSoA     Scheme = "LPSoA"
	SchemeQP        Scheme = "QP"
	SchemeRH        Scheme = "RH"
	SchemeDH        Scheme = "DH"
	SchemeCuckooH4  Scheme = "CuckooH4"
)

// Schemes returns the paper's six schemes in presentation order (chained
// variants first, then open addressing). It deliberately omits the LPSoA
// layout variant and the DH extension, which the paper's figures do not
// plot; use AllSchemes for everything this package implements.
func Schemes() []Scheme {
	return []Scheme{
		SchemeChained8, SchemeChained24,
		SchemeLP, SchemeQP, SchemeRH, SchemeCuckooH4,
	}
}

// OpenAddressingSchemes returns the six open-addressing schemes: the
// paper's LP, QP, RH and CuckooH4 plus the LPSoA layout variant and the
// DH extension.
func OpenAddressingSchemes() []Scheme {
	return []Scheme{SchemeLP, SchemeLPSoA, SchemeQP, SchemeRH, SchemeDH, SchemeCuckooH4}
}

// KernelSchemes returns the schemes served by the policy-driven probe
// kernel (kernel.go) — every open-addressing scheme except Cuckoo, whose
// bounded candidate set needs a structurally different core.
func KernelSchemes() []Scheme {
	return []Scheme{SchemeLP, SchemeLPSoA, SchemeQP, SchemeRH, SchemeDH}
}

// AllSchemes returns every scheme this package implements, in presentation
// order: the chained variants, then all open-addressing schemes including
// the LPSoA layout variant and the DH extension.
func AllSchemes() []Scheme {
	return append([]Scheme{SchemeChained8, SchemeChained24}, OpenAddressingSchemes()...)
}

// New constructs an empty table of the given scheme. It returns an error
// for unknown scheme names. The result carries the full unified Table
// operation set; most callers want the workload-aware Open façade instead.
func New(s Scheme, cfg Config) (Table, error) {
	switch s {
	case SchemeChained8:
		return NewChained8(cfg), nil
	case SchemeChained24:
		return NewChained24(cfg), nil
	case SchemeLP:
		return NewLinearProbing(cfg), nil
	case SchemeLPSoA:
		return NewLinearProbingSoA(cfg), nil
	case SchemeQP:
		return NewQuadraticProbing(cfg), nil
	case SchemeRH:
		return NewRobinHood(cfg), nil
	case SchemeDH:
		return NewDoubleHashing(cfg), nil
	case SchemeCuckooH4:
		return NewCuckoo(cfg), nil
	}
	return nil, fmt.Errorf("table: unknown scheme %q", s)
}

// MustNew is New that panics on error, for tests and static configuration.
func MustNew(s Scheme, cfg Config) Table {
	m, err := New(s, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// FullName composes the paper's plot label for a table: scheme name plus
// hash-function family, e.g. "LPMult" or "ChainedH24Murmur".
func FullName(m Map, familyName string) string {
	return m.Name() + familyName
}
