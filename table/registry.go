package table

import "fmt"

// Scheme identifies one of the paper's hashing schemes.
type Scheme string

// The schemes studied in the paper (§2), plus the SoA layout variant of LP
// used by the §7 layout study.
const (
	SchemeChained8  Scheme = "ChainedH8"
	SchemeChained24 Scheme = "ChainedH24"
	SchemeLP        Scheme = "LP"
	SchemeLPSoA     Scheme = "LPSoA"
	SchemeQP        Scheme = "QP"
	SchemeRH        Scheme = "RH"
	SchemeCuckooH4  Scheme = "CuckooH4"
)

// Schemes returns the paper's five schemes in presentation order (chained
// variants first, then open addressing).
func Schemes() []Scheme {
	return []Scheme{
		SchemeChained8, SchemeChained24,
		SchemeLP, SchemeQP, SchemeRH, SchemeCuckooH4,
	}
}

// OpenAddressingSchemes returns the four open-addressing schemes.
func OpenAddressingSchemes() []Scheme {
	return []Scheme{SchemeLP, SchemeQP, SchemeRH, SchemeCuckooH4}
}

// New constructs an empty table of the given scheme. It returns an error
// for unknown scheme names. The result carries the full unified Table
// operation set; most callers want the workload-aware Open façade instead.
func New(s Scheme, cfg Config) (Table, error) {
	switch s {
	case SchemeChained8:
		return NewChained8(cfg), nil
	case SchemeChained24:
		return NewChained24(cfg), nil
	case SchemeLP:
		return NewLinearProbing(cfg), nil
	case SchemeLPSoA:
		return NewLinearProbingSoA(cfg), nil
	case SchemeQP:
		return NewQuadraticProbing(cfg), nil
	case SchemeRH:
		return NewRobinHood(cfg), nil
	case SchemeCuckooH4:
		return NewCuckoo(cfg), nil
	}
	return nil, fmt.Errorf("table: unknown scheme %q", s)
}

// MustNew is New that panics on error, for tests and static configuration.
func MustNew(s Scheme, cfg Config) Table {
	m, err := New(s, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// FullName composes the paper's plot label for a table: scheme name plus
// hash-function family, e.g. "LPMult" or "ChainedH24Murmur".
func FullName(m Map, familyName string) string {
	return m.Name() + familyName
}
