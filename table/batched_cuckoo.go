package table

import (
	"math/bits"

	"repro/hashfn"
)

// Batched pipeline for Cuckoo hashing. Cuckoo lookups are the natural fit
// for way-major batching: every key has at most `ways` candidate slots, so
// the pipeline probes subtable 0 for the whole chunk (one bulk hash with
// fns[0], then a burst of independent loads), drops the resolved lanes, and
// moves the survivors to subtable 1, and so on. Each round is one bulk hash
// plus one scan of independent probes — per-call hash overhead is paid
// ways times per *chunk* instead of ways times per key.

// GetBatch implements Batcher.
func (t *Cuckoo) GetBatch(keys []uint64, vals []uint64, ok []bool) int {
	checkBatchGet(len(keys), len(vals), len(ok))
	bt := t.buf()
	hits := 0
	chunks(len(keys), func(lo, hi int) {
		hits += t.getChunk(bt, keys[lo:hi], vals[lo:hi], ok[lo:hi])
	})
	return hits
}

func (t *Cuckoo) getChunk(bt *batchBuf, keys, vals []uint64, ok []bool) int {
	hits := 0
	live := bt.lane[:0]
	for l := range keys {
		k := keys[l]
		if isSentinelKey(k) {
			vals[l], ok[l] = t.sent.get(k)
			if ok[l] {
				hits++
			}
			continue
		}
		live = append(live, int32(l))
	}
	subCap := t.subCap
	for j := 0; j < t.ways && len(live) > 0; j++ {
		// Gather the unresolved keys and bulk-hash them with subtable j's
		// function.
		for i, l := range live {
			bt.a[i] = keys[l]
		}
		hashfn.HashBatch(t.fns[j], bt.a[:len(live)], bt.hash[:])
		base := j * int(subCap)
		w := 0
		for i, l := range live {
			hi, _ := bits.Mul64(bt.hash[i], subCap)
			s := &t.slots[base+int(hi)]
			if s.key == keys[l] {
				vals[l], ok[l] = s.val, true
				hits++
				continue
			}
			live[w] = l
			w++
		}
		live = live[:w]
	}
	// Lanes that survived all ways miss: a Cuckoo key is always in one of
	// its candidate slots.
	for _, l := range live {
		vals[l], ok[l] = 0, false
	}
	return hits
}

// PutBatch implements Batcher as sequential scalar Puts. Cuckoo inserts
// displace resident entries and can redraw the whole function generation
// mid-batch (kick-chain overflow triggers a rehash), so no hash computed
// before an insert survives it; batching the hash pass would be incorrect,
// and the insert cost is dominated by the kick chain anyway (§5.2).
func (t *Cuckoo) PutBatch(keys []uint64, vals []uint64) int {
	checkBatchPut(len(keys), len(vals))
	inserted := 0
	for i, k := range keys {
		if t.Put(k, vals[i]) {
			inserted++
		}
	}
	return inserted
}
