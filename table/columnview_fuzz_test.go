package table

import "testing"

// FuzzColumnView hammers the one unsafe construction in the kernel: the
// aosLayout view that aliases a []pair backing array as 2*capacity
// uint64 words. A fuzzer-chosen tape of writes is applied alternately
// through the view (kc/vc) and through the typed backing (slots or
// keys/vals) on BOTH layouts, with a map oracle checked after every
// step — so a drifting index scale, a view detached from its backing,
// or an aliasing bug that only checkptr/ASan can see (the sanitizer CI
// job runs this fuzzer under both) fails loudly and minimally.
func FuzzColumnView(f *testing.F) {
	f.Add(uint8(4), []byte{0x00, 0x01, 0x12, 0x23, 0x34, 0x45})
	f.Add(uint8(1), []byte{0xff, 0x00, 0xff, 0x00})
	// Last-slot writes on a power-of-two capacity: the view's length
	// arithmetic (2*capacity words) is exercised at its boundary.
	f.Add(uint8(8), []byte{0x07, 0x0f, 0x17, 0x1f, 0x87, 0x8f})

	f.Fuzz(func(t *testing.T, capByte uint8, tape []byte) {
		capacity := int(capByte%32) + 1
		for _, lay := range []struct {
			name   string
			layout layoutPolicy
		}{
			{"aos", aosLayout{}},
			{"soa", soaLayout{}},
		} {
			cv := lay.layout.alloc(capacity)
			oracleKeys := make([]uint64, capacity)
			oracleVals := make([]uint64, capacity)

			for step, b := range tape {
				slot := uint64(int(b) % capacity)
				val := uint64(step)<<8 | uint64(b)

				// Even steps write through the unsafe view, odd steps
				// through the typed backing; every combination of
				// writer and reader must agree with the oracle.
				if step%2 == 0 {
					cv.kc[slot<<cv.ks] = val
					cv.vc[(slot<<cv.ks)|cv.ks] = ^val
				} else if cv.slots != nil {
					cv.slots[slot] = pair{key: val, val: ^val}
				} else {
					cv.keys[slot] = val
					cv.vals[slot] = ^val
				}
				oracleKeys[slot], oracleVals[slot] = val, ^val

				for i := 0; i < capacity; i++ {
					s := uint64(i)
					if got := cv.kc[s<<cv.ks]; got != oracleKeys[i] {
						t.Fatalf("%s cap=%d step=%d: view key[%d] = %#x, oracle %#x", lay.name, capacity, step, i, got, oracleKeys[i])
					}
					if got := cv.vc[(s<<cv.ks)|cv.ks]; got != oracleVals[i] {
						t.Fatalf("%s cap=%d step=%d: view val[%d] = %#x, oracle %#x", lay.name, capacity, step, i, got, oracleVals[i])
					}
					var bk, bv uint64
					if cv.slots != nil {
						bk, bv = cv.slots[i].key, cv.slots[i].val
					} else {
						bk, bv = cv.keys[i], cv.vals[i]
					}
					if bk != oracleKeys[i] || bv != oracleVals[i] {
						t.Fatalf("%s cap=%d step=%d: backing[%d] = (%#x, %#x), oracle (%#x, %#x)", lay.name, capacity, step, i, bk, bv, oracleKeys[i], oracleVals[i])
					}
				}
			}
		}
	})
}
