package table

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

// crossCheckBatch builds two identically configured tables — one through
// scalar Put, one through PutBatch — and verifies that GetBatch on either
// agrees with scalar Get on the other for every probe key. It returns false
// on the first divergence.
func crossCheckBatch(s Scheme, cfg Config, keys, vals, probes []uint64) bool {
	scalar := MustNew(s, cfg)
	batched := MustNew(s, cfg)
	insScalar := 0
	for i, k := range keys {
		if scalar.Put(k, vals[i]) {
			insScalar++
		}
	}
	insBatch := PutBatch(batched, keys, vals)
	if insScalar != insBatch || scalar.Len() != batched.Len() {
		return false
	}
	outVals := make([]uint64, len(probes))
	outOK := make([]bool, len(probes))
	wantHits := 0
	for _, p := range probes {
		if _, ok := scalar.Get(p); ok {
			wantHits++
		}
	}
	for _, m := range []Map{scalar, batched} {
		hits := GetBatch(m, probes, outVals, outOK)
		if hits != wantHits {
			return false
		}
		for i, p := range probes {
			wantV, wantOK := scalar.Get(p)
			if outOK[i] != wantOK || (wantOK && outVals[i] != wantV) {
				return false
			}
		}
	}
	return true
}

// TestQuickBatchMatchesScalar: on randomized workloads, every scheme's
// batched pipeline is observationally identical to its scalar operations —
// same insert counts, same lookup results, for present and absent probes.
func TestQuickBatchMatchesScalar(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			prop := func(seed uint64, raw []uint16, grow bool) bool {
				rng := prng.NewXoshiro256(seed)
				n := 150 + int(rng.Uint64n(200))
				keys := make([]uint64, n)
				vals := make([]uint64, n)
				for i := range keys {
					// Narrow key space forces duplicates inside batches.
					keys[i] = rng.Uint64n(256)
					vals[i] = rng.Next()
				}
				// Sprinkle raw values in for quick-driven variety.
				for i, r := range raw {
					if i < len(keys) {
						keys[i] = uint64(r)
					}
				}
				probes := make([]uint64, 0, 2*n)
				probes = append(probes, keys...)
				for i := 0; i < n; i++ {
					probes = append(probes, rng.Next()) // almost surely absent
				}
				cfg := Config{InitialCapacity: 64, Seed: seed}
				if grow {
					cfg.MaxLoadFactor = 0.8
				} else {
					cfg.InitialCapacity = 4 * n
				}
				return crossCheckBatch(s, cfg, keys, vals, probes)
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBatchSentinelsAcrossChunks pins the sentinel-routing path: the keys 0
// and 2^64-1 (whose literal values collide with the empty and tombstone
// markers) are placed directly on and around the BatchWidth chunk
// boundaries, so every chunk of the pipeline sees sentinel lanes at its
// edges.
func TestBatchSentinelsAcrossChunks(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			n := 3*BatchWidth + 7
			rng := prng.NewXoshiro256(9)
			keys := make([]uint64, n)
			vals := make([]uint64, n)
			for i := range keys {
				keys[i] = rng.Next()
				vals[i] = uint64(i)
			}
			// Sentinels straddling every chunk boundary, plus a re-put of
			// each sentinel in a later chunk (upsert path).
			for _, at := range []int{0, BatchWidth - 1, BatchWidth, 2*BatchWidth - 1} {
				keys[at] = emptyKey
			}
			for _, at := range []int{1, 2 * BatchWidth, 3*BatchWidth - 1, n - 1} {
				keys[at] = tombKey
			}
			probes := append(append([]uint64{}, keys...), emptyKey, tombKey, 12345)
			if !crossCheckBatch(s, Config{InitialCapacity: 4 * n, Seed: 5}, keys, vals, probes) {
				t.Fatal("batched pipeline diverged from scalar on sentinel-laden workload")
			}
		})
	}
}

// TestPutBatchDuplicateKeysLastWins: duplicates inside one batch follow
// sequential upsert semantics.
func TestPutBatchDuplicateKeysLastWins(t *testing.T) {
	for _, s := range allSchemes() {
		m := MustNew(s, Config{InitialCapacity: 64, Seed: 1})
		keys := []uint64{7, 7, 7, 9, 9, emptyKey, emptyKey}
		vals := []uint64{1, 2, 3, 4, 5, 6, 7}
		if ins := PutBatch(m, keys, vals); ins != 3 {
			t.Fatalf("%s: PutBatch inserted %d, want 3", s, ins)
		}
		for k, want := range map[uint64]uint64{7: 3, 9: 5, emptyKey: 7} {
			if v, ok := m.Get(k); !ok || v != want {
				t.Fatalf("%s: Get(%d) = %d,%v want %d", s, k, v, ok, want)
			}
		}
	}
}

// TestBatchHelpersScalarFallback: the package helpers work on Maps without
// a batched pipeline.
func TestBatchHelpersScalarFallback(t *testing.T) {
	m := scalarOnlyMap{MustNew(SchemeLP, Config{InitialCapacity: 64, Seed: 3})}
	keys := []uint64{1, 2, 3, 2}
	vals := []uint64{10, 20, 30, 21}
	if ins := PutBatch(m, keys, vals); ins != 3 {
		t.Fatalf("fallback PutBatch inserted %d, want 3", ins)
	}
	outV := make([]uint64, len(keys))
	outOK := make([]bool, len(keys))
	if hits := GetBatch(m, keys, outV, outOK); hits != 4 {
		t.Fatalf("fallback GetBatch hits = %d, want 4", hits)
	}
	if outV[1] != 21 || outV[3] != 21 {
		t.Fatalf("fallback GetBatch vals = %v", outV)
	}
}

// scalarOnlyMap hides the Batcher implementation of the wrapped Map.
type scalarOnlyMap struct{ inner Map }

func (m scalarOnlyMap) Put(k, v uint64) bool            { return m.inner.Put(k, v) }
func (m scalarOnlyMap) Get(k uint64) (uint64, bool)     { return m.inner.Get(k) }
func (m scalarOnlyMap) Delete(k uint64) bool            { return m.inner.Delete(k) }
func (m scalarOnlyMap) Len() int                        { return m.inner.Len() }
func (m scalarOnlyMap) Capacity() int                   { return m.inner.Capacity() }
func (m scalarOnlyMap) LoadFactor() float64             { return m.inner.LoadFactor() }
func (m scalarOnlyMap) MemoryFootprint() uint64         { return m.inner.MemoryFootprint() }
func (m scalarOnlyMap) Range(fn func(k, v uint64) bool) { m.inner.Range(fn) }
func (m scalarOnlyMap) Name() string                    { return m.inner.Name() }

// TestGetBatchAfterDeletes: batched lookups honour tombstones and backward
// shifts left behind by scalar deletes — the pipelines share the schemes'
// probe invariants, not just their happy paths.
func TestGetBatchAfterDeletes(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			m := MustNew(s, Config{InitialCapacity: 1 << 10, Seed: 17})
			rng := prng.NewXoshiro256(23)
			keys := make([]uint64, 600)
			for i := range keys {
				keys[i] = rng.Next()
				m.Put(keys[i], uint64(i))
			}
			for i := 0; i < len(keys); i += 2 {
				m.Delete(keys[i])
			}
			outV := make([]uint64, len(keys))
			outOK := make([]bool, len(keys))
			GetBatch(m, keys, outV, outOK)
			for i := range keys {
				wantV, wantOK := m.Get(keys[i])
				if outOK[i] != wantOK || (wantOK && outV[i] != wantV) {
					t.Fatalf("lane %d: batched %d,%v scalar %d,%v", i, outV[i], outOK[i], wantV, wantOK)
				}
			}
		})
	}
}
