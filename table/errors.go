package table

import (
	"errors"
	"fmt"
)

// ErrFull reports that a growth-disabled table has run out of room. It is
// returned (wrapped in a *FullError carrying the scheme and occupancy) by
// every error-returning mutation — TryPut, GetOrPut, Upsert and their
// batched forms, and the Handle operations built on them — when
// MaxLoadFactor is zero and live entries exhaust the fixed capacity, or,
// for Cuckoo, when the scheme cannot place the key at the current
// occupancy (its feasibility limit sits below 100%, ~96.7% for k=4; after
// a refusal, further keys without a free candidate slot are refused
// conservatively until a delete frees room).
//
// The legacy Map.Put / PutBatch surface instead absorbs the condition by
// growing the table once (see Map), so no panic and no silent data loss is
// reachable from the public API.
var ErrFull = errors.New("table is full and growth is disabled")

// FullError is the concrete error wrapping ErrFull: which scheme filled up
// and at what occupancy. Use errors.Is(err, ErrFull) to test for it.
type FullError struct {
	Scheme   string // scheme name, e.g. "LP"
	Len      int    // live entries at the point of failure
	Capacity int    // fixed slot capacity
}

// Error implements error.
func (e *FullError) Error() string {
	return fmt.Sprintf("table: %s is full (%d/%d slots) and growth is disabled", e.Scheme, e.Len, e.Capacity)
}

// Unwrap makes errors.Is(err, ErrFull) work.
func (e *FullError) Unwrap() error { return ErrFull }

// errFull builds the wrapped ErrFull for one scheme.
func errFull(scheme string, size, capacity int) error {
	return &FullError{Scheme: scheme, Len: size, Capacity: capacity}
}

// errInjectedFull is the *FullError the armed fault injector synthesizes
// at the Handle entry points. Len/Capacity are -1: the real occupancy
// was never consulted — the refusal is simulated, not organic.
func errInjectedFull(scheme string) error {
	return &FullError{Scheme: scheme + "(injected)", Len: -1, Capacity: -1}
}
