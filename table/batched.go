package table

// This file defines the batched execution pipeline: every scheme exposes
// GetBatch/PutBatch, which process keys in chunks of BatchWidth. The paper's
// central finding is that hash-table cost is dominated by per-key latency —
// dependent loads plus per-call overhead — and its §7 vectorized variants
// attack only the comparison. The batched pipeline attacks the rest:
//
//  1. All keys of a chunk are hashed with one hashfn.HashBatch call,
//     hoisting the interface dispatch and parameter loads out of the loop.
//  2. A first-probe pass touches every key's home slot in a tight loop.
//     At moderate load factors most lookups resolve right there.
//  3. Unresolved lanes enter a round-robin walk: each round advances every
//     live probe sequence by one step. Consecutive loads belong to
//     *different* sequences, so they are independent and the memory system
//     overlaps their misses — the software analogue of the group
//     prefetching / AMAC literature the paper cites for vectorized probing,
//     built from the same lane/mask structure as internal/vec.
//
// Batched semantics are exactly sequential semantics: GetBatch(keys)[i]
// equals Get(keys[i]), and PutBatch applies its pairs in slice order, so
// duplicate keys inside a batch behave like consecutive scalar Puts. The
// property tests cross-check both on randomized workloads.
//
// The open-addressing schemes share one generic implementation of the
// chunk loops and lane walks (kernel.go), monomorphized per scheme so no
// indirect call sits on a per-key path; Chained8/24 and Cuckoo keep
// bespoke walks over their chain and candidate-set structures.

import "repro/hashfn"

// BatchWidth is the chunk size of the batched pipeline. 64 keys keep one
// chunk's hash codes, cursors and lane list inside L1 while offering the
// memory system dozens of independent probe streams.
const BatchWidth = hashfn.DefaultBatchWidth

// Batcher is the batched counterpart of Map's point operations, implemented
// by every scheme in this package (and by partition.Partitioned).
type Batcher interface {
	// GetBatch looks up keys[i] into vals[i], ok[i] for every i and returns
	// the number of hits. vals and ok must be at least as long as keys.
	GetBatch(keys []uint64, vals []uint64, ok []bool) int
	// PutBatch upserts the pairs (keys[i], vals[i]) in slice order and
	// returns the number of newly inserted keys. keys and vals must have
	// equal length.
	PutBatch(keys []uint64, vals []uint64) int
}

// GetBatch performs a batched lookup on any Map, using the table's pipeline
// when it has one and a scalar loop otherwise. It returns the number of
// hits.
func GetBatch(m Map, keys []uint64, vals []uint64, ok []bool) int {
	if b, isBatcher := m.(Batcher); isBatcher {
		return b.GetBatch(keys, vals, ok)
	}
	checkBatchGet(len(keys), len(vals), len(ok))
	hits := 0
	for i, k := range keys {
		v, o := m.Get(k)
		vals[i], ok[i] = v, o
		if o {
			hits++
		}
	}
	return hits
}

// PutBatch performs a batched upsert on any Map, returning the number of
// newly inserted keys.
func PutBatch(m Map, keys []uint64, vals []uint64) int {
	if b, isBatcher := m.(Batcher); isBatcher {
		return b.PutBatch(keys, vals)
	}
	checkBatchPut(len(keys), len(vals))
	inserted := 0
	for i, k := range keys {
		if m.Put(k, vals[i]) {
			inserted++
		}
	}
	return inserted
}

// Every scheme implements the batched pipeline.
var (
	_ Batcher = (*Chained8)(nil)
	_ Batcher = (*Chained24)(nil)
	_ Batcher = (*LinearProbing)(nil)
	_ Batcher = (*LinearProbingSoA)(nil)
	_ Batcher = (*QuadraticProbing)(nil)
	_ Batcher = (*RobinHood)(nil)
	_ Batcher = (*DoubleHashing)(nil)
	_ Batcher = (*Cuckoo)(nil)
)

func checkBatchGet(nKeys, nVals, nOK int) {
	if nVals < nKeys || nOK < nKeys {
		panic("table: GetBatch output slices shorter than keys")
	}
}

func checkBatchPut(nKeys, nVals int) {
	if nKeys != nVals {
		panic("table: PutBatch keys/vals length mismatch")
	}
}

// batchBuf holds one chunk's worth of per-lane state. It lives on the table
// (lazily allocated) so the hot path allocates nothing; the tables are
// single-threaded by design (see the package comment), so one buffer per
// table suffices.
type batchBuf struct {
	hash [BatchWidth]uint64 // hash codes from the bulk-hash pass
	a    [BatchWidth]uint64 // per-lane cursor (scheme-specific meaning)
	b    [BatchWidth]uint64 // per-lane auxiliary counter (step, displacement)
	lane [BatchWidth]int32  // live-lane list for the round-robin walk
}

// batchState is embedded in every scheme to carry the lazily allocated
// chunk buffer.
type batchState struct {
	bt *batchBuf
}

func (s *batchState) buf() *batchBuf {
	if s.bt == nil {
		s.bt = new(batchBuf)
	}
	return s.bt
}

// chunks invokes fn for each BatchWidth-sized sub-range of [0, n).
func chunks(n int, fn func(lo, hi int)) {
	for lo := 0; lo < n; lo += BatchWidth {
		hi := lo + BatchWidth
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	}
}
