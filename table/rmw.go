package table

// This file wires the single-probe read-modify-write primitive (rmwHashed)
// of the two structurally distinct cores — chained hashing and Cuckoo —
// into the unified Table surface: TryPut, GetOrPut, Upsert and their
// batched forms, plus the Go 1.23 All iterator and the Rehashes
// observability accessor. The four open-addressing schemes get the same
// surface from the probe kernel (kernel.go) instead.
//
// The batched forms bulk-hash each chunk exactly like the GetBatch /
// PutBatch pipeline, then drive the scheme's rmwHashed with the
// precomputed codes. Unlike a Get-then-Put sequence they issue exactly ONE
// probe sequence per key — the probe that finds the key doubles as the
// probe that finds its insertion point — which is what removes the double
// walk from aggregation builds and join builds. Batched semantics are
// sequential semantics: pairs apply in slice order, so a duplicate key
// later in the batch observes the effect of its earlier occurrence.
//
// Upsert callbacks must not touch the table they are invoked from; they
// run mid-probe.

import (
	"iter"

	"repro/hashfn"
)

// rmwTable is the internal hook the generic batched implementations need:
// the scheme's bulk-hashable function, its chunk buffer, and its
// single-probe RMW primitive. Cuckoo is not included — its candidate slots
// come from k scheme-owned functions, so there is no shared bulk-hash pass
// to reuse and it gets bespoke loops below.
type rmwTable interface {
	hashFn() hashfn.Function
	buf() *batchBuf
	rmwHashed(key, val, hash uint64, overwrite bool, fn func(uint64, bool) uint64) (uint64, bool, error)
}

func (t *Chained8) hashFn() hashfn.Function  { return t.fn }
func (t *Chained24) hashFn() hashfn.Function { return t.fn }

func checkBatchGetOrPut(nKeys, nVals, nOut, nLoaded int) {
	if nVals != nKeys {
		panic("table: GetOrPutBatch keys/vals length mismatch")
	}
	if nOut < nKeys || nLoaded < nKeys {
		panic("table: GetOrPutBatch output slices shorter than keys")
	}
}

// tryPutBatchImpl is PutBatch with the ErrFull contract: it stops at the
// first failing key, leaving earlier pairs applied.
func tryPutBatchImpl[T rmwTable](t T, keys, vals []uint64) (int, error) {
	checkBatchPut(len(keys), len(vals))
	bt, fn := t.buf(), t.hashFn()
	inserted := 0
	for lo := 0; lo < len(keys); lo += BatchWidth {
		hi := min(lo+BatchWidth, len(keys))
		kc, vc := keys[lo:hi], vals[lo:hi]
		hashfn.HashBatch(fn, kc, bt.hash[:])
		for l, k := range kc {
			_, existed, err := t.rmwHashed(k, vc[l], bt.hash[l], true, nil)
			if err != nil {
				return inserted, err
			}
			if !existed {
				inserted++
			}
		}
	}
	return inserted, nil
}

// getOrPutBatchImpl is the batched GetOrPut: one probe per key, results in
// slice order.
func getOrPutBatchImpl[T rmwTable](t T, keys, vals, out []uint64, loaded []bool) (int, error) {
	checkBatchGetOrPut(len(keys), len(vals), len(out), len(loaded))
	bt, fn := t.buf(), t.hashFn()
	inserted := 0
	for lo := 0; lo < len(keys); lo += BatchWidth {
		hi := min(lo+BatchWidth, len(keys))
		kc := keys[lo:hi]
		hashfn.HashBatch(fn, kc, bt.hash[:])
		for l, k := range kc {
			v, existed, err := t.rmwHashed(k, vals[lo+l], bt.hash[l], false, nil)
			if err != nil {
				return inserted, err
			}
			out[lo+l], loaded[lo+l] = v, existed
			if !existed {
				inserted++
			}
		}
	}
	return inserted, nil
}

// upsertBatchImpl is the batched Upsert. One adapter closure is allocated
// per call (not per key); the current lane is threaded through it.
func upsertBatchImpl[T rmwTable](t T, keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (int, error) {
	bt, hf := t.buf(), t.hashFn()
	lane := 0
	adapter := func(old uint64, exists bool) uint64 { return fn(lane, old, exists) }
	inserted := 0
	for lo := 0; lo < len(keys); lo += BatchWidth {
		hi := min(lo+BatchWidth, len(keys))
		kc := keys[lo:hi]
		hashfn.HashBatch(hf, kc, bt.hash[:])
		for l, k := range kc {
			lane = lo + l
			_, existed, err := t.rmwHashed(k, 0, bt.hash[l], false, adapter)
			if err != nil {
				return inserted, err
			}
			if !existed {
				inserted++
			}
		}
	}
	return inserted, nil
}

// allOf adapts Range to a Go 1.23 range-over-func iterator.
func allOf(m Map) iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) { m.Range(yield) }
}

// ---------------------------------------------------------------------------
// Chained8 / Chained24
// ---------------------------------------------------------------------------

// TryPut implements Table; chained tables never fill, so err is always nil.
func (t *Chained8) TryPut(key, val uint64) (bool, error) {
	return t.putHashed(key, val, t.fn.Hash(key))
}

// GetOrPut implements Table.
func (t *Chained8) GetOrPut(key, val uint64) (uint64, bool, error) {
	return t.rmwHashed(key, val, t.fn.Hash(key), false, nil)
}

// Upsert implements Table.
func (t *Chained8) Upsert(key uint64, fn func(old uint64, exists bool) uint64) (uint64, error) {
	v, _, err := t.rmwHashed(key, 0, t.fn.Hash(key), false, fn)
	return v, err
}

// TryPutBatch implements Table.
func (t *Chained8) TryPutBatch(keys, vals []uint64) (int, error) {
	return tryPutBatchImpl(t, keys, vals)
}

// GetOrPutBatch implements Table.
func (t *Chained8) GetOrPutBatch(keys, vals, out []uint64, loaded []bool) (int, error) {
	return getOrPutBatchImpl(t, keys, vals, out, loaded)
}

// UpsertBatch implements Table.
func (t *Chained8) UpsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (int, error) {
	return upsertBatchImpl(t, keys, fn)
}

// All implements Table.
func (t *Chained8) All() iter.Seq2[uint64, uint64] { return allOf(t) }

// Rehashes returns the number of directory-doubling events, for Stats.
func (t *Chained8) Rehashes() int { return t.grows }

// TryPut implements Table; chained tables never fill, so err is always nil.
func (t *Chained24) TryPut(key, val uint64) (bool, error) {
	if key == emptyKey {
		return t.Put(key, val), nil
	}
	return t.putHashed(key, val, t.fn.Hash(key))
}

// GetOrPut implements Table.
func (t *Chained24) GetOrPut(key, val uint64) (uint64, bool, error) {
	return t.rmwHashed(key, val, t.fn.Hash(key), false, nil)
}

// Upsert implements Table.
func (t *Chained24) Upsert(key uint64, fn func(old uint64, exists bool) uint64) (uint64, error) {
	v, _, err := t.rmwHashed(key, 0, t.fn.Hash(key), false, fn)
	return v, err
}

// TryPutBatch implements Table.
func (t *Chained24) TryPutBatch(keys, vals []uint64) (int, error) {
	return tryPutBatchImpl(t, keys, vals)
}

// GetOrPutBatch implements Table.
func (t *Chained24) GetOrPutBatch(keys, vals, out []uint64, loaded []bool) (int, error) {
	return getOrPutBatchImpl(t, keys, vals, out, loaded)
}

// UpsertBatch implements Table.
func (t *Chained24) UpsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (int, error) {
	return upsertBatchImpl(t, keys, fn)
}

// All implements Table.
func (t *Chained24) All() iter.Seq2[uint64, uint64] { return allOf(t) }

// Rehashes returns the number of directory-doubling events, for Stats.
func (t *Chained24) Rehashes() int { return t.grows }

// ---------------------------------------------------------------------------
// Cuckoo — bespoke loops: candidate slots come from the scheme's own k
// functions, so there is no shared bulk-hash pass to reuse.
// ---------------------------------------------------------------------------

// TryPut implements Table.
func (t *Cuckoo) TryPut(key, val uint64) (bool, error) {
	_, existed, err := t.rmwHashed(key, val, 0, true, nil)
	return !existed && err == nil, err
}

// GetOrPut implements Table.
func (t *Cuckoo) GetOrPut(key, val uint64) (uint64, bool, error) {
	return t.rmwHashed(key, val, 0, false, nil)
}

// Upsert implements Table.
func (t *Cuckoo) Upsert(key uint64, fn func(old uint64, exists bool) uint64) (uint64, error) {
	v, _, err := t.rmwHashed(key, 0, 0, false, fn)
	return v, err
}

// TryPutBatch implements Table.
func (t *Cuckoo) TryPutBatch(keys, vals []uint64) (int, error) {
	checkBatchPut(len(keys), len(vals))
	inserted := 0
	for i, k := range keys {
		_, existed, err := t.rmwHashed(k, vals[i], 0, true, nil)
		if err != nil {
			return inserted, err
		}
		if !existed {
			inserted++
		}
	}
	return inserted, nil
}

// GetOrPutBatch implements Table.
func (t *Cuckoo) GetOrPutBatch(keys, vals, out []uint64, loaded []bool) (int, error) {
	checkBatchGetOrPut(len(keys), len(vals), len(out), len(loaded))
	inserted := 0
	for i, k := range keys {
		v, existed, err := t.rmwHashed(k, vals[i], 0, false, nil)
		if err != nil {
			return inserted, err
		}
		out[i], loaded[i] = v, existed
		if !existed {
			inserted++
		}
	}
	return inserted, nil
}

// UpsertBatch implements Table.
func (t *Cuckoo) UpsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (int, error) {
	lane := 0
	adapter := func(old uint64, exists bool) uint64 { return fn(lane, old, exists) }
	inserted := 0
	for i, k := range keys {
		lane = i
		_, existed, err := t.rmwHashed(k, 0, 0, false, adapter)
		if err != nil {
			return inserted, err
		}
		if !existed {
			inserted++
		}
	}
	return inserted, nil
}

// All implements Table.
func (t *Cuckoo) All() iter.Seq2[uint64, uint64] { return allOf(t) }
