package table

import (
	"testing"
	"testing/quick"

	"repro/hashfn"
	"repro/internal/prng"
)

// opScript is a quick-generatable random operation stream.
type opScript struct {
	Seed uint64
	Ops  []opStep
}

type opStep struct {
	Kind uint8 // % 3: put, delete, get
	Key  uint16
	Val  uint64
}

// runScript replays a script against a table and Go's map, reporting
// whether every observable result agreed.
func runScript(m Map, script opScript) bool {
	oracle := map[uint64]uint64{}
	for _, op := range script.Ops {
		k := uint64(op.Key)
		switch op.Kind % 3 {
		case 0:
			_, existed := oracle[k]
			if m.Put(k, op.Val) == existed {
				return false
			}
			oracle[k] = op.Val
		case 1:
			_, existed := oracle[k]
			if m.Delete(k) != existed {
				return false
			}
			delete(oracle, k)
		default:
			want, wantOK := oracle[k]
			v, ok := m.Get(k)
			if ok != wantOK || (ok && v != want) {
				return false
			}
		}
		if m.Len() != len(oracle) {
			return false
		}
	}
	return true
}

// TestQuickMapLaws property-tests every scheme against the builtin map
// with random operation scripts under each hash family.
func TestQuickMapLaws(t *testing.T) {
	for _, s := range allSchemes() {
		for _, f := range []hashfn.Family{hashfn.MultFamily{}, hashfn.TabFamily{}} {
			s, f := s, f
			t.Run(string(s)+"/"+f.Name(), func(t *testing.T) {
				prop := func(script opScript) bool {
					m := MustNew(s, Config{
						InitialCapacity: 32,
						MaxLoadFactor:   0.8,
						Family:          f,
						Seed:            script.Seed,
					})
					return runScript(m, script)
				}
				cfg := &quick.Config{MaxCount: 40}
				if err := quick.Check(prop, cfg); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestQuickPutGetRoundTrip: any set of distinct keys inserted must all be
// retrievable with their last-written values.
func TestQuickPutGetRoundTrip(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			prop := func(keys []uint64, seed uint64) bool {
				m := MustNew(s, Config{
					InitialCapacity: 16,
					MaxLoadFactor:   0.75,
					Seed:            seed,
				})
				want := map[uint64]uint64{}
				for i, k := range keys {
					m.Put(k, uint64(i))
					want[k] = uint64(i)
				}
				if m.Len() != len(want) {
					return false
				}
				for k, v := range want {
					got, ok := m.Get(k)
					if !ok || got != v {
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickRHInvariant: after any insert sequence, Robin Hood's
// displacement ordering holds along every cluster.
func TestQuickRHInvariant(t *testing.T) {
	prop := func(keys []uint64, seed uint64) bool {
		m := NewRobinHood(Config{InitialCapacity: 64, MaxLoadFactor: 0.9, Seed: seed})
		for _, k := range keys {
			m.Put(k, k)
		}
		mask := uint64(m.Capacity() - 1)
		for i := range m.slots {
			if m.slots[i].key == emptyKey {
				continue
			}
			d := m.displacementAt(uint64(i))
			if d == 0 {
				continue
			}
			prev := (uint64(i) - 1) & mask
			if m.slots[prev].key == emptyKey {
				return false
			}
			if m.displacementAt(prev)+1 < d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCuckooPlacement: every inserted key sits at one of its candidate
// slots after arbitrary insert sequences.
func TestQuickCuckooPlacement(t *testing.T) {
	prop := func(keys []uint64, seed uint64) bool {
		m := NewCuckoo(Config{InitialCapacity: 128, MaxLoadFactor: 0.85, Seed: seed})
		for _, k := range keys {
			m.Put(k, k)
		}
		ok := true
		m.Range(func(k, v uint64) bool {
			if isSentinelKey(k) {
				return true
			}
			found := false
			for j := 0; j < m.Ways(); j++ {
				if m.slots[m.pos(j, k)].key == k {
					found = true
					break
				}
			}
			if !found {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeleteRestoresAbsence: delete(k) always makes Get(k) miss, for
// every scheme, regardless of surrounding churn.
func TestQuickDeleteRestoresAbsence(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			prop := func(pre []uint16, k uint16, seed uint64) bool {
				m := MustNew(s, Config{InitialCapacity: 32, MaxLoadFactor: 0.8, Seed: seed})
				for _, p := range pre {
					m.Put(uint64(p), 1)
				}
				m.Put(uint64(k), 2)
				if !m.Delete(uint64(k)) {
					return false
				}
				_, ok := m.Get(uint64(k))
				return !ok
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickRangeMatchesContents: Range yields exactly the live entries.
func TestQuickRangeMatchesContents(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			prop := func(keys []uint16, seed uint64) bool {
				m := MustNew(s, Config{InitialCapacity: 32, MaxLoadFactor: 0.8, Seed: seed})
				want := map[uint64]uint64{}
				for i, k := range keys {
					m.Put(uint64(k), uint64(i))
					want[uint64(k)] = uint64(i)
				}
				got := map[uint64]uint64{}
				m.Range(func(k, v uint64) bool {
					if _, dup := got[k]; dup {
						return false
					}
					got[k] = v
					return true
				})
				if len(got) != len(want) {
					return false
				}
				for k, v := range want {
					if got[k] != v {
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickGrowthPreservesContents: growing a table (by exceeding its
// threshold repeatedly) never loses or corrupts entries.
func TestQuickGrowthPreservesContents(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			prop := func(seed uint64, extra uint16) bool {
				n := 500 + int(extra)%2000
				m := MustNew(s, Config{InitialCapacity: 8, MaxLoadFactor: 0.7, Seed: seed})
				rng := prng.NewXoshiro256(seed)
				keys := make([]uint64, n)
				for i := range keys {
					keys[i] = rng.Next()
					m.Put(keys[i], uint64(i))
				}
				for i, k := range keys {
					v, ok := m.Get(k)
					if !ok || v != uint64(i) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
