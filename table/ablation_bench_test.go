package table

// Ablation benchmarks for the design choices the paper motivates:
//
//   - Robin Hood's cache-line-granular early abort (§2.4): probe misses
//     with and without the abort criterion, across load factors.
//   - LP's optimized tombstones vs RH's partial cluster rehash (§2.2/§2.4):
//     delete cost and post-churn lookup cost under both strategies.
//   - Cuckoo's kick bound (§2.5): insert throughput as maxKicks varies.
//   - Chained24's inline directory vs Chained8's pointer-only directory
//     (§2.1): the pointer-chase cost on successful lookups.
//
// Run with: go test ./table -bench Ablation -benchmem

import (
	"fmt"
	"testing"

	"repro/internal/prng"
)

// rhGetNoAbort is RH lookup without the early-abort criterion: plain LP
// probing over the RH layout, the baseline the paper's tuned variant beats
// on unsuccessful lookups.
func rhGetNoAbort(t *RobinHood, key uint64) (uint64, bool) {
	i := t.home(key)
	for {
		s := &t.slots[i]
		if s.key == key {
			return s.val, true
		}
		if s.key == emptyKey {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// rhGetAbortEveryProbe recomputes the displacement on every probe — the
// variant the paper rejected as "prohibitively expensive w.r.t. runtime".
func rhGetAbortEveryProbe(t *RobinHood, key uint64) (uint64, bool) {
	i := t.home(key)
	for d := uint64(0); ; d++ {
		s := &t.slots[i]
		if s.key == key {
			return s.val, true
		}
		if s.key == emptyKey {
			return 0, false
		}
		if (i-t.home(s.key))&t.mask < d {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

func buildRH(b *testing.B, capacity int, lfPct int) (*RobinHood, []uint64, []uint64) {
	b.Helper()
	n := capacity * lfPct / 100
	m := NewRobinHood(Config{InitialCapacity: capacity, Seed: 42})
	rng := prng.NewXoshiro256(1)
	present := make([]uint64, n)
	for i := range present {
		present[i] = rng.Next() | 1
		m.Put(present[i], uint64(i))
	}
	absent := make([]uint64, n)
	for i := range absent {
		absent[i] = rng.Next() | 1
	}
	return m, present, absent
}

// BenchmarkAblationRHEarlyAbort compares the three abort strategies on
// all-unsuccessful lookups, where the criterion matters (§2.4).
func BenchmarkAblationRHEarlyAbort(b *testing.B) {
	for _, lf := range []int{50, 70, 90} {
		m, _, absent := buildRH(b, 1<<16, lf)
		variants := []struct {
			name string
			get  func(*RobinHood, uint64) (uint64, bool)
		}{
			{"cacheline", (*RobinHood).Get}, // the paper's tuned choice
			{"never", rhGetNoAbort},
			{"everyprobe", rhGetAbortEveryProbe},
		}
		for _, v := range variants {
			b.Run(fmt.Sprintf("lf%d/%s", lf, v.name), func(b *testing.B) {
				var sink uint64
				for i := 0; i < b.N; i++ {
					val, _ := v.get(m, absent[i%len(absent)])
					sink ^= val
				}
				_ = sink
			})
		}
	}
}

// BenchmarkAblationRHEarlyAbortSuccessful verifies the abort's cost on the
// best case (all lookups successful) is the small 1-5% the paper reports.
func BenchmarkAblationRHEarlyAbortSuccessful(b *testing.B) {
	m, present, _ := buildRH(b, 1<<16, 90)
	variants := []struct {
		name string
		get  func(*RobinHood, uint64) (uint64, bool)
	}{
		{"cacheline", (*RobinHood).Get},
		{"never", rhGetNoAbort},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				val, _ := v.get(m, present[i%len(present)])
				sink ^= val
			}
			_ = sink
		})
	}
}

// BenchmarkAblationDeleteStrategy compares LP's optimized tombstones with
// RH's partial cluster rehash: first raw delete+reinsert churn, then miss
// lookups after heavy churn (where accumulated tombstones hurt LP, §2.2).
func BenchmarkAblationDeleteStrategy(b *testing.B) {
	const capacity = 1 << 14
	const lfPct = 70
	n := capacity * lfPct / 100
	setup := func() (Map, Map, []uint64) {
		lp := NewLinearProbing(Config{InitialCapacity: capacity, Seed: 42})
		rh := NewRobinHood(Config{InitialCapacity: capacity, Seed: 42})
		rng := prng.NewXoshiro256(2)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Next() | 1
			lp.Put(keys[i], uint64(i))
			rh.Put(keys[i], uint64(i))
		}
		return lp, rh, keys
	}
	lp, rh, keys := setup()
	for _, v := range []struct {
		name string
		m    Map
	}{{"LP-tombstone", lp}, {"RH-partialrehash", rh}} {
		b.Run("churn/"+v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := keys[i%len(keys)]
				v.m.Delete(k)
				v.m.Put(k, uint64(i))
			}
		})
	}
	// Post-churn miss lookups.
	rng := prng.NewXoshiro256(3)
	absent := make([]uint64, n)
	for i := range absent {
		absent[i] = rng.Next() | 1
	}
	for _, v := range []struct {
		name string
		m    Map
	}{{"LP-tombstone", lp}, {"RH-partialrehash", rh}} {
		b.Run("miss-after-churn/"+v.name, func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				val, _ := v.m.Get(absent[i%len(absent)])
				sink ^= val
			}
			_ = sink
		})
	}
}

// BenchmarkAblationCuckooMaxKicks sweeps the kick bound: too low forces
// rehash storms, high bounds only pay on pathological chains (§2.5).
func BenchmarkAblationCuckooMaxKicks(b *testing.B) {
	for _, kicks := range []int{8, 32, 500} {
		b.Run(fmt.Sprintf("maxKicks%d", kicks), func(b *testing.B) {
			const capacity = 1 << 12
			n := capacity * 9 / 10
			rng := prng.NewXoshiro256(4)
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = rng.Next() | 1
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := NewCuckoo(Config{InitialCapacity: capacity, Seed: uint64(i)})
				m.maxKicks = kicks
				for j, k := range keys {
					m.Put(k, uint64(j))
				}
				b.ReportMetric(float64(m.Rehashes()), "rehashes")
			}
		})
	}
}

// BenchmarkAblationChainedDirectory isolates the §2.1 pointer-chase: hit
// lookups in Chained8 (always one indirection) vs Chained24 (collision-free
// buckets answer from the directory line).
func BenchmarkAblationChainedDirectory(b *testing.B) {
	const dirSlots = 1 << 16
	n := dirSlots / 2 // low load: most buckets collision-free
	c8 := NewChained8(Config{InitialCapacity: dirSlots, Seed: 42})
	c24 := NewChained24(Config{InitialCapacity: dirSlots, Seed: 42})
	rng := prng.NewXoshiro256(5)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Next() | 1
		c8.Put(keys[i], uint64(i))
		c24.Put(keys[i], uint64(i))
	}
	for _, v := range []struct {
		name string
		m    Map
	}{{"ChainedH8", c8}, {"ChainedH24", c24}} {
		b.Run(v.name, func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				val, _ := v.m.Get(keys[i%len(keys)])
				sink ^= val
			}
			_ = sink
		})
	}
}

// BenchmarkAblationAoSvsSoAHit isolates the §7 layout trade on successful
// lookups at low load factor, where AoS's single-line hit should win.
func BenchmarkAblationAoSvsSoAHit(b *testing.B) {
	const capacity = 1 << 18
	n := capacity / 2
	aos := NewLinearProbing(Config{InitialCapacity: capacity, Seed: 42})
	soa := NewLinearProbingSoA(Config{InitialCapacity: capacity, Seed: 42})
	rng := prng.NewXoshiro256(6)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Next() | 1
		aos.Put(keys[i], uint64(i))
		soa.Put(keys[i], uint64(i))
	}
	for _, v := range []struct {
		name string
		m    Map
	}{{"AoS", aos}, {"SoA", soa}} {
		b.Run(v.name, func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				val, _ := v.m.Get(keys[i%len(keys)])
				sink ^= val
			}
			_ = sink
		})
	}
}

// rhDeleteTailRehash is the paper's literal partial-cluster-rehash delete:
// clear the slot, then take every following entry of the cluster out and
// re-insert it. Our production Delete uses backward-shifting, which
// produces the same layout with one move per entry and no hash
// recomputation; this ablation quantifies the difference (it is why our RH
// is more competitive on write-heavy workloads than the paper's, see
// EXPERIMENTS.md).
func rhDeleteTailRehash(t *RobinHood, key uint64) bool {
	i := t.home(key)
	for d := uint64(0); ; d++ {
		s := &t.slots[i]
		if s.key == emptyKey {
			return false
		}
		if s.key == key {
			break
		}
		if (i-t.home(s.key))&t.mask < d {
			return false
		}
		i = (i + 1) & t.mask
	}
	// Collect the cluster tail after the victim, clear it, re-insert.
	t.slots[i] = pair{}
	t.size--
	var tail []pair
	j := (i + 1) & t.mask
	for t.slots[j].key != emptyKey {
		tail = append(tail, t.slots[j])
		t.slots[j] = pair{}
		t.size--
		j = (j + 1) & t.mask
	}
	for _, e := range tail {
		t.reinsert(e.key, e.val)
	}
	return true
}

// BenchmarkAblationRHDeleteStrategy compares backward-shift deletion with
// the paper's full tail rehash under delete/reinsert churn at 85% load.
func BenchmarkAblationRHDeleteStrategy(b *testing.B) {
	const capacity = 1 << 14
	n := capacity * 85 / 100
	build := func() (*RobinHood, []uint64) {
		m := NewRobinHood(Config{InitialCapacity: capacity, Seed: 42})
		rng := prng.NewXoshiro256(7)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Next() | 1
			m.Put(keys[i], uint64(i))
		}
		return m, keys
	}
	b.Run("backshift", func(b *testing.B) {
		m, keys := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			m.Delete(k)
			m.Put(k, uint64(i))
		}
	})
	b.Run("tailrehash", func(b *testing.B) {
		m, keys := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			rhDeleteTailRehash(m, k)
			m.Put(k, uint64(i))
		}
	})
}

// TestRHDeleteTailRehashEquivalence verifies the ablation baseline is a
// correct delete: both strategies must leave semantically identical tables.
func TestRHDeleteTailRehashEquivalence(t *testing.T) {
	a := NewRobinHood(Config{InitialCapacity: 256, Seed: 3})
	b := NewRobinHood(Config{InitialCapacity: 256, Seed: 3})
	rng := prng.NewXoshiro256(4)
	live := map[uint64]bool{}
	for i := 0; i < 8000; i++ {
		k := rng.Uint64n(220) + 1
		if live[k] {
			if !a.Delete(k) || !rhDeleteTailRehash(b, k) {
				t.Fatalf("op %d: delete disagreement for %d", i, k)
			}
			delete(live, k)
		} else {
			a.Put(k, k)
			b.Put(k, k)
			live[k] = true
		}
		if a.Len() != b.Len() {
			t.Fatalf("op %d: Len %d vs %d", i, a.Len(), b.Len())
		}
	}
	for k := range live {
		va, oka := a.Get(k)
		vb, okb := b.Get(k)
		if !oka || !okb || va != vb {
			t.Fatalf("key %d: %d,%v vs %d,%v", k, va, oka, vb, okb)
		}
	}
}
