package table

import "repro/hashfn"

// RobinHood is the paper's tuned Robin Hood hashing on linear probing
// (§2.4). It keeps the probe sequences of linear probing but resolves every
// collision in favour of the "poorer" key — the one farther from its
// optimal slot — which minimizes the variance of displacements without
// changing their sum. The established ordering buys a cheap early-abort
// criterion for unsuccessful lookups: while probing for k at distance d, an
// entry whose own displacement is smaller than d proves k is absent
// (k would have robbed that slot during insertion).
//
// Recomputing the probed entry's displacement on every step is what the
// paper found prohibitively expensive; their tuned variant — reproduced
// here — performs the check once per cache line (every 4th slot with
// 16-byte AoS slots), which balances the overhead on successful probes
// against early termination of unsuccessful ones.
//
// Deletion uses partial cluster rehash rather than tombstones (tombstones
// in RH would need to carry the deleted entry's displacement to preserve
// the ordering): the hole is filled by shifting the remainder of the
// cluster back one slot, which re-establishes every invariant and is
// exactly the result of rehashing the cluster tail in place.
type RobinHood struct {
	slots  []pair
	shift  uint
	mask   uint64
	size   int
	fn     hashfn.Function
	family hashfn.Family
	seed   uint64
	maxLF  float64
	grows  int
	sent   sentinels
	batchState
}

var _ Table = (*RobinHood)(nil)

// NewRobinHood returns an empty Robin Hood table configured by cfg.
func NewRobinHood(cfg Config) *RobinHood {
	cfg = cfg.withDefaults()
	t := &RobinHood{
		family: cfg.Family,
		seed:   cfg.Seed,
		maxLF:  cfg.MaxLoadFactor,
	}
	t.fn = cfg.Family.New(cfg.Seed)
	t.init(cfg.InitialCapacity)
	return t
}

func (t *RobinHood) init(capacity int) {
	t.slots = make([]pair, capacity)
	t.shift = 64 - log2(capacity)
	t.mask = uint64(capacity - 1)
	t.size = 0
}

func (t *RobinHood) home(key uint64) uint64 { return t.fn.Hash(key) >> t.shift }

// displacementAt returns the displacement of the entry stored at slot i.
// The slot must be occupied.
func (t *RobinHood) displacementAt(i uint64) uint64 {
	return (i - t.home(t.slots[i].key)) & t.mask
}

// Name implements Map.
func (t *RobinHood) Name() string { return "RH" }

// HashName returns the hash-function family name.
func (t *RobinHood) HashName() string { return t.fn.Name() }

// Len implements Map.
func (t *RobinHood) Len() int { return t.size + t.sent.len() }

// Capacity implements Map.
func (t *RobinHood) Capacity() int { return len(t.slots) }

// LoadFactor implements Map.
func (t *RobinHood) LoadFactor() float64 {
	return float64(t.Len()) / float64(len(t.slots))
}

// MemoryFootprint implements Map.
func (t *RobinHood) MemoryFootprint() uint64 {
	return uint64(len(t.slots)) * pairBytes
}

// Get implements Map, including the cache-line-granular early abort for
// unsuccessful lookups.
func (t *RobinHood) Get(key uint64) (uint64, bool) {
	if isSentinelKey(key) {
		return t.sent.get(key)
	}
	i := t.home(key)
	for d := uint64(0); ; d++ {
		s := &t.slots[i]
		if s.key == key {
			return s.val, true
		}
		if s.key == emptyKey {
			return 0, false
		}
		// Early abort, checked once at the end of each cache line: if the
		// entry we just passed is closer to its home than we are to ours,
		// the Robin Hood ordering proves our key cannot lie further on.
		if i&(slotsPerCacheLine-1) == slotsPerCacheLine-1 {
			if (i-t.home(s.key))&t.mask < d {
				return 0, false
			}
		}
		i = (i + 1) & t.mask
	}
}

// Put implements Map with displacement-ordered (Robin Hood) insertion.
// On a full growth-disabled table it grows once instead of failing.
func (t *RobinHood) Put(key, val uint64) bool {
	if isSentinelKey(key) {
		return t.sent.put(key, val)
	}
	return t.mustPutHashed(key, val, t.fn.Hash(key))
}

// mustPutHashed is the legacy Map insert primitive; see
// LinearProbing.mustPutHashed.
func (t *RobinHood) mustPutHashed(key, val, hash uint64) bool {
	_, existed, err := t.rmwHashed(key, val, hash, true, nil)
	if err != nil {
		// Growth disabled and full, and the key is new (rmwHashed updates
		// existing keys in place without needing room): grow once.
		t.rehash(len(t.slots) * 2)
		_, existed, _ = t.rmwHashed(key, val, hash, true, nil)
	}
	return !existed
}

// rmwHashed is the single-probe read-modify-write primitive; see
// LinearProbing.rmwHashed. The walk doubles as the Robin Hood ordering
// proof: the first position where a resident is closer to its home than we
// are to ours is exactly where an absent key must be inserted, so the
// lookup and the insertion displacement chain share one probe sequence.
func (t *RobinHood) rmwHashed(key, val, hash uint64, overwrite bool, fn func(uint64, bool) uint64) (uint64, bool, error) {
	if isSentinelKey(key) {
		v, existed := t.sent.rmw(key, val, overwrite, fn)
		return v, existed, nil
	}
	if t.maxLF != 0 {
		t.maybeGrow()
	}
	i := hash >> t.shift
	for d := uint64(0); ; d++ {
		s := &t.slots[i]
		if s.key == key {
			if fn != nil {
				s.val = fn(s.val, true)
			} else if overwrite {
				s.val = val
			}
			return s.val, true, nil
		}
		if s.key == emptyKey {
			if t.maxLF == 0 && t.size+1 >= len(t.slots) {
				return 0, false, errFull(t.Name(), t.size, len(t.slots))
			}
			v := val
			if fn != nil {
				v = fn(0, false)
			}
			*s = pair{key, v}
			t.size++
			return v, false, nil
		}
		if de := (i - t.home(s.key)) & t.mask; de < d {
			// The resident is richer than us: our key cannot lie further
			// on, so it is absent. Take this slot and push the rest of the
			// displacement chain down, the standard Robin Hood insert.
			if t.maxLF == 0 && t.size+1 >= len(t.slots) {
				return 0, false, errFull(t.Name(), t.size, len(t.slots))
			}
			v := val
			if fn != nil {
				v = fn(0, false)
			}
			cur := *s
			*s = pair{key, v}
			t.size++
			t.shiftChain(cur, (i+1)&t.mask, de+1)
			return v, false, nil
		}
		i = (i + 1) & t.mask
	}
}

// shiftChain continues a Robin Hood displacement chain: cur was just
// evicted from the slot before i and sits at displacement d there.
func (t *RobinHood) shiftChain(cur pair, i, d uint64) {
	for {
		s := &t.slots[i]
		if s.key == emptyKey {
			*s = cur
			return
		}
		if de := (i - t.home(s.key)) & t.mask; de < d {
			cur, *s = *s, cur
			d = de
		}
		i = (i + 1) & t.mask
		d++
	}
}

// Delete implements Map with partial cluster rehash: the cluster tail after
// the deleted entry is shifted back one slot until an entry in its optimal
// position (displacement 0) or an empty slot ends the cluster.
func (t *RobinHood) Delete(key uint64) bool {
	if isSentinelKey(key) {
		return t.sent.delete(key)
	}
	i := t.home(key)
	for d := uint64(0); ; d++ {
		s := &t.slots[i]
		if s.key == emptyKey {
			return false
		}
		if s.key == key {
			break
		}
		if (i-t.home(s.key))&t.mask < d {
			return false
		}
		i = (i + 1) & t.mask
	}
	// Backward-shift the rest of the cluster.
	for {
		j := (i + 1) & t.mask
		n := &t.slots[j]
		if n.key == emptyKey || (j-t.home(n.key))&t.mask == 0 {
			t.slots[i] = pair{}
			break
		}
		t.slots[i] = *n
		i = j
	}
	t.size--
	return true
}

func (t *RobinHood) maybeGrow() {
	if t.maxLF == 0 {
		return
	}
	if t.size+1 <= int(t.maxLF*float64(len(t.slots))) {
		return
	}
	t.rehash(len(t.slots) * 2)
}

func (t *RobinHood) rehash(capacity int) {
	t.grows++
	old := t.slots
	t.init(capacity)
	for idx := range old {
		if old[idx].key == emptyKey {
			continue
		}
		t.reinsert(old[idx])
	}
}

// reinsert places an entry known to be absent, maintaining RH order.
func (t *RobinHood) reinsert(cur pair) {
	i := t.home(cur.key)
	for d := uint64(0); ; d++ {
		s := &t.slots[i]
		if s.key == emptyKey {
			*s = cur
			t.size++
			return
		}
		if de := (i - t.home(s.key)) & t.mask; de < d {
			cur, *s = *s, cur
			d = de
		}
		i = (i + 1) & t.mask
	}
}

// Range implements Map.
func (t *RobinHood) Range(fn func(key, val uint64) bool) {
	if !t.sent.rng(fn) {
		return
	}
	for i := range t.slots {
		if t.slots[i].key == emptyKey {
			continue
		}
		if !fn(t.slots[i].key, t.slots[i].val) {
			return
		}
	}
}

// Displacements returns the displacement of every live entry. Robin Hood
// does not change the total compared to LP on the same inputs; it minimizes
// the variance (§2.4).
func (t *RobinHood) Displacements() []int {
	out := make([]int, 0, t.size)
	for i := range t.slots {
		if t.slots[i].key == emptyKey {
			continue
		}
		out = append(out, int(t.displacementAt(uint64(i))))
	}
	return out
}

// MaxDisplacement returns the maximum displacement among live entries, the
// paper's d_max (often an order of magnitude above the mean at high load
// factors, which is why the naive d_max abort criterion underperforms).
func (t *RobinHood) MaxDisplacement() int {
	max := 0
	for _, d := range t.Displacements() {
		if d > max {
			max = d
		}
	}
	return max
}

// ClusterLengths returns the lengths of maximal occupied runs, as for LP.
func (t *RobinHood) ClusterLengths() []int {
	occupied := func(i int) bool { return t.slots[i].key != emptyKey }
	return clusterLengths(len(t.slots), occupied)
}
