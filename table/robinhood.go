package table

// RobinHood is the paper's tuned Robin Hood hashing on linear probing
// (§2.4). It keeps the probe sequences of linear probing but resolves every
// collision in favour of the "poorer" key — the one farther from its
// optimal slot — which minimizes the variance of displacements without
// changing their sum. The established ordering buys a cheap early-abort
// criterion for unsuccessful lookups: while probing for k at distance d, an
// entry whose own displacement is smaller than d proves k is absent
// (k would have robbed that slot during insertion).
//
// Recomputing the probed entry's displacement on every step is what the
// paper found prohibitively expensive; their tuned variant — reproduced
// here — performs the check once per cache line (every 4th slot with
// 16-byte AoS slots), which balances the overhead on successful probes
// against early termination of unsuccessful ones.
//
// Deletion uses partial cluster rehash rather than tombstones (tombstones
// in RH would need to carry the deleted entry's displacement to preserve
// the ordering): the hole is filled by shifting the remainder of the
// cluster back one slot, which re-establishes every invariant and is
// exactly the result of rehashing the cluster tail in place.
//
// The scheme is an instantiation of the policy-driven probe kernel
// (kernel.go): the linear probe sequence over the AoS layout with Robin
// Hood displacement — i.e. exactly LinearProbing with the displacement
// dimension flipped, which is the paper's own description of the scheme.
type RobinHood struct {
	kern
}

var _ Table = (*RobinHood)(nil)

// NewRobinHood returns an empty Robin Hood table configured by cfg.
func NewRobinHood(cfg Config) *RobinHood {
	t := &RobinHood{}
	t.setup(cfg, "RH", aosLayout{}, linearSeq{}, robinDisplace{})
	return t
}
