package table

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/hashfn"
)

func TestOpenDefaults(t *testing.T) {
	h, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	if h.Scheme() != SchemeRH || h.HashName() != "Mult" {
		t.Fatalf("defaults = %s/%s, want RH/Mult", h.Scheme(), h.HashName())
	}
	if h.Partitions() != 1 || h.Name() != "RHMult" {
		t.Fatalf("Partitions=%d Name=%s", h.Partitions(), h.Name())
	}
	// Default handle grows: a million inserts must not error.
	for k := uint64(1); k <= 100_000; k++ {
		if _, err := h.Put(k, k); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	if h.Len() != 100_000 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestOpenOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"maxLF>=1", []Option{WithMaxLoadFactor(1.0)}, "never trigger growth"},
		{"maxLF>1", []Option{WithMaxLoadFactor(1.5)}, "never trigger growth"},
		{"maxLF<0", []Option{WithMaxLoadFactor(-0.3)}, "negative"},
		{"negative capacity", []Option{WithCapacity(-1)}, "negative capacity"},
		{"negative partitions", []Option{WithPartitions(-2)}, "negative partition"},
		{"nil family", []Option{WithHashFamily(nil)}, "nil hash family"},
		{"unknown scheme", []Option{WithScheme("bogus")}, "unknown scheme"},
		{"scheme+workload", []Option{WithScheme(SchemeLP), WithWorkload(Workload{LoadFactor: 0.5})}, "mutually exclusive"},
		{"bad workload", []Option{WithWorkload(Workload{LoadFactor: 2})}, "load factor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Open(tc.opts...)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Open error = %v, want substring %q", err, tc.want)
			}
		})
	}
	// Explicit growth-disable is valid, not an error.
	if _, err := Open(WithMaxLoadFactor(0)); err != nil {
		t.Fatalf("WithMaxLoadFactor(0): %v", err)
	}
}

func TestOpenWithWorkload(t *testing.T) {
	cases := []struct {
		w    Workload
		want Scheme
	}{
		{Workload{LoadFactor: 0.3, UnsuccessfulPct: 10}, SchemeLP},
		{Workload{LoadFactor: 0.3, UnsuccessfulPct: 90}, SchemeChained24},
		{Workload{LoadFactor: 0.6, WriteHeavy: true, Dynamic: true}, SchemeQP},
		{Workload{LoadFactor: 0.9, UnsuccessfulPct: 25}, SchemeCuckooH4},
		{Workload{LoadFactor: 0.6, UnsuccessfulPct: 25}, SchemeRH},
	}
	for _, tc := range cases {
		h, err := Open(WithWorkload(tc.w))
		if err != nil {
			t.Fatal(err)
		}
		if h.Scheme() != tc.want {
			t.Fatalf("workload %+v -> %s, want %s", tc.w, h.Scheme(), tc.want)
		}
		if len(h.DecisionPath()) == 0 {
			t.Fatalf("workload %+v: empty decision path", tc.w)
		}
	}
}

func TestHandleErrFull(t *testing.T) {
	h := MustOpen(WithScheme(SchemeLP), WithCapacity(16), WithMaxLoadFactor(0), WithSeed(3))
	var sawFull bool
	for k := uint64(1); k <= 32; k++ {
		if _, err := h.Put(k, k); err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatalf("Put error %v", err)
			}
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("growth-disabled handle never reported ErrFull")
	}
	// Updates of present keys still succeed.
	if _, err := h.Put(1, 99); err != nil {
		t.Fatalf("update on full handle: %v", err)
	}
	if v, _ := h.Get(1); v != 99 {
		t.Fatalf("update lost: %d", v)
	}
	st := h.Stats()
	if st.Len != h.Len() || st.Capacity != 16 || st.Scheme != "LP" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHandleStripedMatchesSingle(t *testing.T) {
	single := MustOpen(WithScheme(SchemeQP), WithSeed(5))
	striped := MustOpen(WithScheme(SchemeQP), WithSeed(5), WithPartitions(8), WithCapacity(1<<12))
	if striped.Partitions() != 8 {
		t.Fatalf("Partitions = %d", striped.Partitions())
	}
	if !strings.Contains(striped.Name(), "8xQPMult") {
		t.Fatalf("Name = %s", striped.Name())
	}
	n := 20000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i % 5000) // duplicates exercise last-wins ordering
		vals[i] = uint64(i)
	}
	if _, err := single.PutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	if _, err := striped.PutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	if single.Len() != striped.Len() {
		t.Fatalf("Len: single %d, striped %d", single.Len(), striped.Len())
	}
	// Batched lookups agree lane for lane.
	sv := make([]uint64, n)
	so := make([]bool, n)
	pv := make([]uint64, n)
	po := make([]bool, n)
	if h1, h2 := single.GetBatch(keys, sv, so), striped.GetBatch(keys, pv, po); h1 != h2 {
		t.Fatalf("GetBatch hits: %d vs %d", h1, h2)
	}
	for i := range keys {
		if sv[i] != pv[i] || so[i] != po[i] {
			t.Fatalf("lane %d: single (%d,%v) striped (%d,%v)", i, sv[i], so[i], pv[i], po[i])
		}
	}
	// GetOrPutBatch on a mix of present and absent keys agrees too.
	extra := make([]uint64, 128)
	evals := make([]uint64, 128)
	for i := range extra {
		extra[i] = uint64(4000 + i*60) // straddles present (<5000) and absent
		evals[i] = uint64(i) + 1<<32
	}
	sOut := make([]uint64, 128)
	sLd := make([]bool, 128)
	pOut := make([]uint64, 128)
	pLd := make([]bool, 128)
	i1, err1 := single.GetOrPutBatch(extra, evals, sOut, sLd)
	i2, err2 := striped.GetOrPutBatch(extra, evals, pOut, pLd)
	if err1 != nil || err2 != nil || i1 != i2 {
		t.Fatalf("GetOrPutBatch: (%d,%v) vs (%d,%v)", i1, err1, i2, err2)
	}
	for i := range extra {
		if sOut[i] != pOut[i] || sLd[i] != pLd[i] {
			t.Fatalf("GetOrPut lane %d: single (%d,%v) striped (%d,%v)", i, sOut[i], sLd[i], pOut[i], pLd[i])
		}
	}
	st := striped.Stats()
	if st.Partitions != 8 || st.Len != striped.Len() {
		t.Fatalf("striped stats = %+v", st)
	}
}

// TestStripedConcurrent hammers a partitioned handle from many goroutines;
// correctness of per-key results is checked per goroutine (disjoint key
// ranges), and the -race CI job verifies the locking.
func TestStripedConcurrent(t *testing.T) {
	h := MustOpen(WithScheme(SchemeRH), WithPartitions(8), WithCapacity(1<<14), WithSeed(1))
	const goroutines = 8
	const perG = 4000
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) << 32
			for i := uint64(0); i < perG; i++ {
				k := base + i
				if _, err := h.Put(k, k*2); err != nil {
					errs <- err
					return
				}
				if _, err := h.Upsert(k, func(old uint64, exists bool) uint64 {
					if !exists {
						return 1
					}
					return old + 1
				}); err != nil {
					errs <- err
					return
				}
				if v, ok := h.Get(k); !ok || v != k*2+1 {
					errs <- errors.New("lost update under concurrency")
					return
				}
				if i%3 == 0 {
					h.Delete(k)
				}
				if i%512 == 0 {
					// Observability reads must be lock-protected too.
					_ = h.LoadFactor()
					_ = h.MemoryFootprint()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := goroutines * (perG - (perG+2)/3)
	if h.Len() != want {
		t.Fatalf("Len = %d, want %d", h.Len(), want)
	}
}

func TestHandleAllAndStats(t *testing.T) {
	h := MustOpen(WithScheme(SchemeLP), WithCapacity(256), WithSeed(9), WithHashFamily(hashfn.MurmurFamily{}))
	if h.HashName() != "Murmur" {
		t.Fatalf("HashName = %s", h.HashName())
	}
	for k := uint64(0); k < 100; k++ {
		h.Put(k, k+1)
	}
	sum := uint64(0)
	for k, v := range h.All() {
		if v != k+1 {
			t.Fatalf("All yielded %d=%d", k, v)
		}
		sum += k
	}
	if sum != 99*100/2 {
		t.Fatalf("All sum = %d", sum)
	}
	st := h.Stats()
	if st.Function != "Murmur" || st.Len != 100 || st.MeanProbe < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MemoryBytes != h.MemoryFootprint() {
		t.Fatalf("stats memory %d != footprint %d", st.MemoryBytes, h.MemoryFootprint())
	}
}
