package table

// DoubleHashing is open addressing with double hashing: the i-th probe
// lands at
//
//	h(k, i) = (h1(k) + i*h2(k)) mod l,
//
// so two keys colliding on their first probe still diverge immediately —
// double hashing exhibits neither the primary clustering of LP nor the
// secondary clustering of QP, at the cost of giving up cache-line
// locality entirely (every probe after the first is a random jump).
//
// Both probe functions derive from the one 64-bit hash code the shared
// bulk-hash pass already computes: h1 from the high log2(l) bits (like
// every other scheme) and h2 from the low bits forced odd. Odd strides
// are coprime to the power-of-two capacity, so the probe sequence is a
// full permutation of the slots and the QP termination guarantee — a key
// is declared absent after l probes — carries over unchanged, including
// the ability to fill the table to 100% occupancy.
//
// Deletion places a tombstone unconditionally, as for QP: non-contiguous
// probe sequences have no cluster-connectivity shortcut.
//
// The paper studies LP, QP and RH as its open-addressing schemes; DH is
// this reproduction's extension proving the kernel's policy surface. The
// entire scheme is the dhSeq probe policy (policy.go) — scalar
// operations, the group-interleaved batch walks, the single-probe RMW
// primitives, iterators, Stats and the differential/property/fuzz suites
// all come from the shared kernel. It is deliberately excluded from the
// Figure 8 decision graph (Recommend), which reproduces the paper's
// schemes only.
type DoubleHashing struct {
	kern
}

var _ Table = (*DoubleHashing)(nil)

// NewDoubleHashing returns an empty double-hashing table configured by
// cfg.
func NewDoubleHashing(cfg Config) *DoubleHashing {
	t := &DoubleHashing{}
	t.setup(cfg, "DH", aosLayout{}, dhSeq{}, noDisplace{})
	return t
}
