package table

import (
	"errors"
	"testing"
)

// FuzzProbeKernel is the kernel-equivalence differential fuzz: a
// fuzzer-chosen operation tape is replayed against every open-addressing
// scheme (all five kernel instantiations plus Cuckoo) and a Go map
// oracle, pinning the pre-refactor semantics the policy-driven kernel
// must reproduce. The key space is tiny and deliberately includes both
// sentinel keys (0 and 2^64-1), the tapes mix deletes between inserts so
// tombstones are created and recycled (and the growth-disabled tables
// cross the in-place tombstone-purge rehash), and one op code flushes
// through the batched surfaces with lengths that straddle the BatchWidth
// chunk boundary.
func FuzzProbeKernel(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x12, 0x23, 0x34, 0x45, 0x56, 0x67})
	f.Add([]byte("put-get-delete-put-get tape with sentinels \x00\xff"))
	// A delete-heavy tape: odd op bytes bias toward Delete/Get.
	f.Add([]byte{
		0x00, 0x10, 0x01, 0x10, 0x02, 0x10, 0x00, 0x1f,
		0x01, 0x1f, 0x02, 0x1f, 0x03, 0x11, 0x04, 0x12,
		0x05, 0x40, 0x05, 0x41, 0x05, 0x7f,
	})
	// A batch-heavy tape: op 5 with lengths around BatchWidth.
	f.Add([]byte{0x05, 0x3f, 0x05, 0x40, 0x05, 0x41, 0x05, 0x81, 0x05, 0x00})

	f.Fuzz(func(t *testing.T, tape []byte) {
		for _, s := range OpenAddressingSchemes() {
			for _, maxLF := range []float64{0, 0.85} {
				replayTape(t, s, maxLF, tape)
			}
		}
	})
}

// tapeKey maps a tape byte onto the 16-key working set. Keys 0 and
// 2^64-1 are the sentinel-routed ones.
func tapeKey(b byte) uint64 {
	switch b & 15 {
	case 0:
		return 0
	case 1:
		return ^uint64(0)
	default:
		return uint64(b&15) * 0x9E3779B97F4A7C15
	}
}

func replayTape(t *testing.T, s Scheme, maxLF float64, tape []byte) {
	t.Helper()
	// 64 slots with a 16-key working set: growth-disabled tables never
	// legitimately fill (ErrFull is a bug), but deletes build tombstone
	// pressure that forces the in-place purge rehash.
	m := MustNew(s, Config{InitialCapacity: 64, MaxLoadFactor: maxLF, Seed: 7})
	oracle := map[uint64]uint64{}
	ctx := func(i int) string { return string(s) }

	checkGet := func(i int, k uint64) {
		v, ok := m.Get(k)
		wv, wok := oracle[k]
		if ok != wok || (ok && v != wv) {
			t.Fatalf("%s lf=%v op %d: Get(%#x) = %d,%v; oracle %d,%v", ctx(i), maxLF, i, k, v, ok, wv, wok)
		}
	}

	pos := 0
	next := func() (byte, bool) {
		if pos >= len(tape) {
			return 0, false
		}
		b := tape[pos]
		pos++
		return b, true
	}

	for i := 0; ; i++ {
		op, ok1 := next()
		arg, ok2 := next()
		if !ok1 || !ok2 {
			break
		}
		k := tapeKey(arg)
		switch op % 6 {
		case 0: // Put
			ins := m.Put(k, uint64(i)+1)
			_, existed := oracle[k]
			if ins != !existed {
				t.Fatalf("%s op %d: Put(%#x) inserted=%v, oracle existed=%v", ctx(i), i, k, ins, existed)
			}
			oracle[k] = uint64(i) + 1
		case 1: // Get
			checkGet(i, k)
		case 2: // Delete
			del := m.Delete(k)
			_, existed := oracle[k]
			if del != existed {
				t.Fatalf("%s op %d: Delete(%#x) = %v, oracle existed=%v", ctx(i), i, k, del, existed)
			}
			delete(oracle, k)
		case 3: // GetOrPut
			v, loaded, err := m.GetOrPut(k, uint64(i)+1)
			if err != nil {
				if errors.Is(err, ErrFull) {
					t.Fatalf("%s op %d: unexpected ErrFull at %d live entries", ctx(i), i, len(oracle))
				}
				t.Fatalf("%s op %d: GetOrPut error %v", ctx(i), i, err)
			}
			wv, existed := oracle[k]
			if loaded != existed || (existed && v != wv) {
				t.Fatalf("%s op %d: GetOrPut(%#x) = %d,%v; oracle %d,%v", ctx(i), i, k, v, loaded, wv, existed)
			}
			if !existed {
				oracle[k] = uint64(i) + 1
			}
		case 4: // Upsert: add arg to the stored value
			v, err := m.Upsert(k, func(old uint64, exists bool) uint64 { return old + uint64(arg) + 1 })
			if err != nil {
				t.Fatalf("%s op %d: Upsert error %v", ctx(i), i, err)
			}
			want := oracle[k] + uint64(arg) + 1
			if v != want {
				t.Fatalf("%s op %d: Upsert(%#x) = %d, want %d", ctx(i), i, k, v, want)
			}
			oracle[k] = want
		case 5: // batch flush: PutBatch of arg-derived length, then a
			// full GetBatch cross-check. Lengths straddle BatchWidth so
			// chunk boundaries are crossed.
			n := int(arg) % (BatchWidth + 5)
			keys := make([]uint64, n)
			vals := make([]uint64, n)
			for j := range keys {
				b, _ := next()
				keys[j] = tapeKey(b + byte(j))
				vals[j] = uint64(i*1000 + j)
			}
			inserted := PutBatch(m, keys, vals)
			wantIns := 0
			for j, bk := range keys {
				if _, existed := oracle[bk]; !existed {
					wantIns++
				}
				oracle[bk] = vals[j]
			}
			if inserted != wantIns {
				t.Fatalf("%s op %d: PutBatch inserted %d, oracle %d", ctx(i), i, inserted, wantIns)
			}
			probe := make([]uint64, 0, 2*BatchWidth+9)
			for j := 0; j < cap(probe); j++ {
				probe = append(probe, tapeKey(byte(j)+arg))
			}
			got := make([]uint64, len(probe))
			gok := make([]bool, len(probe))
			GetBatch(m, probe, got, gok)
			for j, pk := range probe {
				wv, wok := oracle[pk]
				if gok[j] != wok || (wok && got[j] != wv) {
					t.Fatalf("%s op %d: GetBatch[%d](%#x) = %d,%v; oracle %d,%v", ctx(i), i, j, pk, got[j], gok[j], wv, wok)
				}
			}
		}
	}

	// Final sweep: size, every oracle key reachable, iteration yields
	// exactly the oracle.
	if m.Len() != len(oracle) {
		t.Fatalf("%s: final Len %d, oracle %d", string(s), m.Len(), len(oracle))
	}
	for k := range oracle {
		checkGet(-1, k)
	}
	seen := 0
	for k, v := range m.All() {
		wv, wok := oracle[k]
		if !wok || v != wv {
			t.Fatalf("%s: All yielded %#x=%d; oracle %d,%v", string(s), k, v, wv, wok)
		}
		seen++
	}
	if seen != len(oracle) {
		t.Fatalf("%s: All yielded %d entries, oracle %d", string(s), seen, len(oracle))
	}
}
