package bench

import (
	"fmt"
	"io"

	"repro/dist"
	"repro/table"
	"repro/workload"
)

// RunFig2 regenerates Figure 2: WORM insert and lookup throughput at the
// low load factors 25/35/45%, comparing the two chained variants against
// linear probing under Mult and Murmur across the three distributions.
// It also collects the memory footprints that Figure 3 plots.
func RunFig2(opt Options) ([]WORMExperiment, error) {
	opt = opt.withDefaults()
	contenders := opt.contendersFor(table.SchemeChained8, table.SchemeChained24, table.SchemeLP)
	return runWORMFigure(opt, "fig2", contenders, LowLoadFactors, nil)
}

// RunFig4 regenerates Figure 4: WORM at the high load factors 50/70/90%
// with all open-addressing schemes; ChainedH24 participates only at 50%,
// the last point where it fits the §4.5 memory budget.
func RunFig4(opt Options) ([]WORMExperiment, error) {
	opt = opt.withDefaults()
	contenders := opt.contendersFor(
		table.SchemeChained24,
		table.SchemeCuckooH4, table.SchemeLP, table.SchemeQP, table.SchemeRH,
	)
	only50 := func(c contender, lf int) bool {
		return c.scheme == table.SchemeChained24 && lf > 50
	}
	return runWORMFigure(opt, "fig4", contenders, HighLoadFactors, only50)
}

// runWORMAveraged runs one WORM point opt.Repeats times with derived seeds
// and averages the throughputs (memory and budget flags come from the last
// run; they are seed-independent up to slab chunk rounding).
func runWORMAveraged(opt Options, cfg workload.WORMConfig) (workload.WORMResult, error) {
	var avg workload.WORMResult
	for r := 0; r < opt.Repeats; r++ {
		cfg.Seed = opt.Seed + uint64(r)*0x9e3779b9
		res, err := workload.RunWORM(cfg)
		if err != nil {
			return res, err
		}
		if r == 0 {
			avg = res
			continue
		}
		avg.InsertMops += res.InsertMops
		for u, v := range res.LookupMops {
			avg.LookupMops[u] += v
		}
		avg.MemoryBytes = res.MemoryBytes
		avg.OverBudget = avg.OverBudget || res.OverBudget
	}
	avg.InsertMops /= float64(opt.Repeats)
	for u := range avg.LookupMops {
		avg.LookupMops[u] /= float64(opt.Repeats)
	}
	return avg, nil
}

// runWORMFigure executes one WORM figure: every contender at every load
// factor under every distribution. skip, when non-nil, excludes
// (contender, load factor) points, mirroring the paper's Figure 1 subsets.
func runWORMFigure(opt Options, name string, contenders []contender, lfs []int, skip func(contender, int) bool) ([]WORMExperiment, error) {
	var exps []WORMExperiment
	for _, d := range dist.Kinds() {
		exp := WORMExperiment{Dist: d}
		for _, c := range contenders {
			series := newWORMSeries(c.label())
			for _, lf := range lfs {
				if skip != nil && skip(c, lf) {
					continue
				}
				res, err := runWORMAveraged(opt, workload.WORMConfig{
					Scheme:     c.scheme,
					Family:     c.family,
					Dist:       d,
					Capacity:   opt.Capacity,
					LoadFactor: float64(lf) / 100,
					Mixes:      Mixes,
					Lookups:    opt.Lookups,
					Seed:       opt.Seed,
				})
				if err != nil {
					return nil, fmt.Errorf("bench: %s %s/%s lf=%d: %w", name, c.label(), d, lf, err)
				}
				series.InsertMops[lf] = res.InsertMops
				series.LookupMops[lf] = res.LookupMops
				series.MemoryBytes[lf] = res.MemoryBytes
				series.OverBudget[lf] = res.OverBudget
				opt.logf("%s %-18s %-6s lf=%2d%%: insert %6.1f Mops, lookup(u=0) %6.1f Mops, mem %d MB",
					name, c.label(), d, lf, res.InsertMops, res.LookupMops[0], res.MemoryBytes>>20)
			}
			exp.Series = append(exp.Series, series)
		}
		exps = append(exps, exp)
	}
	return exps, nil
}

// RenderFig2 prints the Figure 2 panels.
func RenderFig2(w io.Writer, exps []WORMExperiment) {
	renderWORM(w, "Figure 2: WORM, low load factors (25/35/45%)", exps, LowLoadFactors)
}

// RenderFig4 prints the Figure 4 panels.
func RenderFig4(w io.Writer, exps []WORMExperiment) {
	renderWORM(w, "Figure 4: WORM, high load factors (50/70/90%)", exps, HighLoadFactors)
}

// Fig3Row is one memory-footprint cell of Figure 3.
type Fig3Row struct {
	Label       string
	LoadFactor  int
	MemoryBytes uint64
	OverBudget  bool
}

// Fig3FromFig2 extracts Figure 3 — memory footprint under the dense
// distribution — from a Figure 2 run. The dense distribution produces the
// largest spread between hash functions (collisions differ), which is why
// the paper plots it.
func Fig3FromFig2(exps []WORMExperiment) []Fig3Row {
	var rows []Fig3Row
	for _, e := range exps {
		if e.Dist != dist.Dense {
			continue
		}
		for _, s := range e.Series {
			for _, lf := range sortedKeys(s.MemoryBytes) {
				rows = append(rows, Fig3Row{
					Label:       s.Label,
					LoadFactor:  lf,
					MemoryBytes: s.MemoryBytes[lf],
					OverBudget:  s.OverBudget[lf],
				})
			}
		}
	}
	return rows
}

// RenderFig3 prints the Figure 3 memory table.
func RenderFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintln(w, "=== Figure 3: memory footprint, dense distribution [MB] ===")
	byLabel := map[string]map[int]Fig3Row{}
	var labels []string
	lfset := map[int]bool{}
	for _, r := range rows {
		if byLabel[r.Label] == nil {
			byLabel[r.Label] = map[int]Fig3Row{}
			labels = append(labels, r.Label)
		}
		byLabel[r.Label][r.LoadFactor] = r
		lfset[r.LoadFactor] = true
	}
	lfs := sortedKeys(lfsetToMap(lfset))
	fmt.Fprintf(w, "%-22s", "")
	for _, lf := range lfs {
		fmt.Fprintf(w, "  lf=%2d%%", lf)
	}
	fmt.Fprintln(w)
	for _, label := range labels {
		fmt.Fprintf(w, "%-22s", label)
		for _, lf := range lfs {
			r, ok := byLabel[label][lf]
			if !ok {
				fmt.Fprintf(w, "  %6s", "-")
				continue
			}
			cell := fmt.Sprintf("%.0f", float64(r.MemoryBytes)/(1<<20))
			if r.OverBudget {
				cell += "!"
			}
			fmt.Fprintf(w, "  %6s", cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "('!' marks footprints exceeding the 110% chained-hashing budget of §4.5)")
}

func lfsetToMap(s map[int]bool) map[int]struct{} {
	out := make(map[int]struct{}, len(s))
	for k := range s {
		out[k] = struct{}{}
	}
	return out
}
