// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§5–§7): it sweeps the seven dimensions,
// measures throughput in millions of operations per second and memory
// footprints in bytes, and renders the same rows/series the paper plots.
//
// Each figure has a Run function returning structured results and a Render
// function printing them as text tables:
//
//	Figure 2 — RunFig2 / RenderFig2: WORM at low load factors (25/35/45%),
//	           chained variants vs linear probing.
//	Figure 3 — Fig3FromFig2 / RenderFig3: memory footprints of the Fig. 2
//	           tables (dense distribution).
//	Figure 4 — RunFig4 / RenderFig4: WORM at high load factors (50/70/90%),
//	           all open-addressing schemes (+ ChainedH24 at 50%).
//	Figure 5 — RunFig5 / RenderFig5: the RW workload sweep.
//	Figure 6 — RunFig6 / RenderFig6: best-performer matrix across
//	           capacities, distributions, load factors and lookup mixes.
//	Figure 7 — RunFig7 / RenderFig7: AoS vs SoA layout with and without
//	           vectorized probing.
//
// Capacities are scaled for a single laptop-class machine (see DESIGN.md's
// substitution table): the paper's 2^16 / 2^27 / 2^30 slots become
// 2^16 / 2^20 / 2^24 by default, all configurable.
package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/dist"
	"repro/hashfn"
	"repro/table"
)

// The paper's capacity classes, scaled (Small keeps the paper's 2^16 — in
// cache; Medium and Large are outside cache on any modern machine).
const (
	CapacitySmall  = 1 << 16
	CapacityMedium = 1 << 20
	CapacityLarge  = 1 << 24
)

// Load-factor sweeps of §5.
var (
	LowLoadFactors  = []int{25, 35, 45}
	HighLoadFactors = []int{50, 70, 90}
	AllLoadFactors  = []int{25, 35, 45, 50, 70, 90}
)

// Mixes is the unsuccessful-lookup sweep used by every lookup plot.
var Mixes = []int{0, 25, 50, 75, 100}

// UpdatePcts is the §6 update-percentage sweep.
var UpdatePcts = []int{0, 5, 25, 50, 75, 100}

// GrowAtPcts is the §6 rehash-threshold sweep.
var GrowAtPcts = []int{50, 70, 90}

// Options configures a harness run.
type Options struct {
	// Capacity is the open-addressing capacity l for the WORM figures
	// (default CapacityMedium).
	Capacity int
	// Lookups is the probe count per lookup mix (default: one per key).
	Lookups int
	// RWInitial is the pre-fill size for Figure 5 (default 1<<16); the
	// paper used 16M.
	RWInitial int
	// RWOps is the stream length for Figure 5 (default 1<<22); the paper
	// used 1000M. The default preserves the paper's ~64:1 ops:initial
	// ratio.
	RWOps int
	// Fig6Caps overrides the S/M/L capacities of the Figure 6 matrix
	// (default Fig6Capacities()).
	Fig6Caps []int
	// Repeats averages every throughput over this many independent runs
	// with derived seeds, the paper's three-seed methodology (§4.2).
	// Default 1.
	Repeats int
	// AllFamilies sweeps all four hash functions (Mult, MultAdd, Tab,
	// Murmur) instead of the Mult/Murmur subset the paper presents —
	// §4.4 narrowed the published plots to two families but the full
	// 24-combination matrix was evaluated; this restores it.
	AllFamilies bool
	// Seed makes runs reproducible.
	Seed uint64
	// Log, when non-nil, receives one progress line per experiment point.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = CapacityMedium
	}
	if o.RWInitial <= 0 {
		o.RWInitial = 1 << 16
	}
	if o.RWOps <= 0 {
		o.RWOps = 1 << 22
	}
	if o.Repeats <= 0 {
		o.Repeats = 1
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// contender is one curve in a plot: a scheme paired with a hash family.
type contender struct {
	scheme table.Scheme
	family hashfn.Family
}

func (c contender) label() string { return string(c.scheme) + c.family.Name() }

// multMurmur pairs each scheme with the two families the paper plots.
func multMurmur(schemes ...table.Scheme) []contender {
	return withFamilies([]hashfn.Family{hashfn.MultFamily{}, hashfn.MurmurFamily{}}, schemes...)
}

// allFamilies pairs each scheme with all four families of §3 (the paper's
// full evaluated matrix).
func allFamilies(schemes ...table.Scheme) []contender {
	return withFamilies(hashfn.Families(), schemes...)
}

func withFamilies(families []hashfn.Family, schemes ...table.Scheme) []contender {
	out := make([]contender, 0, len(families)*len(schemes))
	for _, s := range schemes {
		for _, f := range families {
			out = append(out, contender{s, f})
		}
	}
	return out
}

// contendersFor picks the family sweep per the options.
func (o Options) contendersFor(schemes ...table.Scheme) []contender {
	if o.AllFamilies {
		return allFamilies(schemes...)
	}
	return multMurmur(schemes...)
}

// WORMSeries is one labelled curve across load factors and lookup mixes.
type WORMSeries struct {
	Label string
	// InsertMops maps load-factor percent -> build throughput.
	InsertMops map[int]float64
	// LookupMops maps load-factor percent -> unsuccessful percent ->
	// probe throughput.
	LookupMops map[int]map[int]float64
	// MemoryBytes maps load-factor percent -> footprint.
	MemoryBytes map[int]uint64
	// OverBudget marks load factors where a chained table exceeded the
	// §4.5 memory budget (the paper drops those points).
	OverBudget map[int]bool
}

func newWORMSeries(label string) *WORMSeries {
	return &WORMSeries{
		Label:       label,
		InsertMops:  map[int]float64{},
		LookupMops:  map[int]map[int]float64{},
		MemoryBytes: map[int]uint64{},
		OverBudget:  map[int]bool{},
	}
}

// WORMExperiment groups the series of one distribution's panel.
type WORMExperiment struct {
	Dist   dist.Kind
	Series []*WORMSeries
}

// renderWORM prints one figure's panels as text tables.
func renderWORM(w io.Writer, title string, exps []WORMExperiment, lfs []int) {
	fmt.Fprintf(w, "=== %s ===\n", title)
	for _, e := range exps {
		fmt.Fprintf(w, "\n--- %s distribution ---\n", e.Dist)
		fmt.Fprintf(w, "%-22s", "Insertions [Mops]")
		for _, lf := range lfs {
			fmt.Fprintf(w, "  lf=%2d%%", lf)
		}
		fmt.Fprintln(w)
		for _, s := range e.Series {
			fmt.Fprintf(w, "%-22s", s.Label)
			for _, lf := range lfs {
				if s.OverBudget[lf] {
					fmt.Fprintf(w, "  %6s", "over")
					continue
				}
				if v, ok := s.InsertMops[lf]; ok {
					fmt.Fprintf(w, "  %6.1f", v)
				} else {
					fmt.Fprintf(w, "  %6s", "-")
				}
			}
			fmt.Fprintln(w)
		}
		for _, lf := range lfs {
			fmt.Fprintf(w, "\nLookups at %d%% load factor [Mops], by %% unsuccessful\n", lf)
			fmt.Fprintf(w, "%-22s", "")
			for _, u := range Mixes {
				fmt.Fprintf(w, "  u=%3d%%", u)
			}
			fmt.Fprintln(w)
			for _, s := range e.Series {
				if _, ok := s.LookupMops[lf]; !ok {
					continue
				}
				fmt.Fprintf(w, "%-22s", s.Label)
				for _, u := range Mixes {
					if v, ok := s.LookupMops[lf][u]; ok {
						fmt.Fprintf(w, "  %6.1f", v)
					} else {
						fmt.Fprintf(w, "  %6s", "-")
					}
				}
				fmt.Fprintln(w)
			}
		}
	}
}

// sortedKeys returns the sorted integer keys of a map.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
