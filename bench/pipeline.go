// The TPC-H-flavored pipeline query set: a two-relation star-schema
// corner (customers with a market segment, orders with a price) and the
// queries the streaming-vs-materializing comparison runs over it. Each
// query exists in two semantically identical forms:
//
//   - Streaming: the pipe operator chain — predicate pushed into the
//     scan, matches projected straight into the group-by, no
//     intermediate relation anywhere.
//   - Materialized: the one-shot composition — filter into a copied
//     relation, join.SharedHashJoin emitting into materialized columns,
//     agg.AddBatch over those columns.
//
// The benchmark harness (pipeline_test.go) and the examples/pipeline
// demo both drive these, so the comparison the README quotes is exactly
// the code here.

package bench

import (
	"fmt"

	"repro/agg"
	"repro/exec"
	"repro/internal/prng"
	"repro/join"
	"repro/pipe"
)

// PipelineSegments is the market-segment cardinality (TPC-H has 5; a
// power of two keeps the modulo cheap without changing the shape).
const PipelineSegments = 8

// PipelineMaxCents is the exclusive upper bound of the uniform order
// price, so a filter cut of PipelineMaxCents*p/100 keeps ~p% of orders.
const PipelineMaxCents = 10_000

// PipelineData is the dataset the pipeline queries run over.
type PipelineData struct {
	// Customers have unique keys 1..N and Payload = market segment.
	Customers join.Relation
	// Orders reference customers by key — ~10% dangle past the customer
	// range (join misses) — and carry Payload = price in cents.
	Orders join.Relation
}

// NewPipelineData builds a deterministic dataset.
func NewPipelineData(customers, orders int, seed uint64) PipelineData {
	d := PipelineData{
		Customers: make(join.Relation, customers),
		Orders:    make(join.Relation, orders),
	}
	for i := range d.Customers {
		key := uint64(i) + 1
		d.Customers[i] = join.Row{Key: key, Payload: key % PipelineSegments}
	}
	rng := prng.NewXoshiro256(seed)
	span := uint64(customers) * 11 / 10
	for i := range d.Orders {
		d.Orders[i] = join.Row{
			Key:     rng.Uint64n(span) + 1,
			Payload: rng.Uint64n(PipelineMaxCents),
		}
	}
	return d
}

// SegmentRevenueStreaming runs
//
//	SELECT c.segment, SUM(o.cents) FROM orders o JOIN customers c
//	WHERE o.cents >= cut GROUP BY c.segment
//
// as one pipe chain: the price predicate is pushed into the order scan,
// each join match is projected to (segment, cents) and folded into the
// per-worker group-by locals in the same morsel pass.
func SegmentRevenueStreaming(d PipelineData, cut uint64, cfg pipe.Config) (*agg.GroupBy, error) {
	return pipe.HashJoin(
		pipe.FromRelation(d.Customers),
		pipe.FromRelation(d.Orders).Filter(func(_, cents uint64) bool { return cents >= cut }),
		pipe.JoinConfig{
			Project: func(_, segment, cents uint64) (uint64, uint64) { return segment, cents },
		},
	).GroupBy(cfg, pipe.GroupConfig{ExpectedGroups: PipelineSegments})
}

// SegmentRevenueMaterialized is the same query as the one-shot operator
// composition this repo offered before pipe: filter into a copied
// relation, join into materialized (segment, cents) columns, aggregate
// the columns. Every intermediate is a real allocation.
func SegmentRevenueMaterialized(d PipelineData, cut uint64, workers int) (*agg.GroupBy, error) {
	filtered := make(join.Relation, 0, len(d.Orders))
	for _, r := range d.Orders {
		if r.Payload >= cut {
			filtered = append(filtered, r)
		}
	}
	segments := make([]uint64, 0, len(filtered))
	cents := make([]uint64, 0, len(filtered))
	emit := func(_, segment, c uint64) {
		segments = append(segments, segment)
		cents = append(cents, c)
	}
	var err error
	if workers > 1 {
		// SharedHashJoin serializes emit internally, like any
		// materializing consumer must.
		_, err = join.SharedHashJoin(d.Customers, filtered, workers, join.Config{}, emit)
	} else {
		_, err = join.HashJoin(d.Customers, filtered, join.Config{}, emit)
	}
	if err != nil {
		return nil, err
	}
	g := agg.MustNewGroupBy(agg.Config{ExpectedGroups: PipelineSegments})
	if workers > 1 {
		err = g.AddParallel(exec.Config{Workers: workers}, segments, cents)
	} else {
		err = g.AddBatch(segments, cents)
	}
	if err != nil {
		return nil, err
	}
	return g, nil
}

// RepeatCustomersStreaming runs
//
//	SELECT COUNT(*) FROM (SELECT o.custkey FROM orders o
//	GROUP BY o.custkey HAVING COUNT(*) >= minOrders)
//
// with the mid-pipeline group-by: per-customer counts stream out of the
// aggregation one morsel at a time, the HAVING filter is fused onto that
// emission, and only a running count survives.
func RepeatCustomersStreaming(d PipelineData, minOrders uint64, cfg pipe.Config) (int, error) {
	return pipe.GroupByStream(
		pipe.FromRelation(d.Orders),
		pipe.GroupConfig{},
		agg.Count,
	).Filter(func(_, count uint64) bool { return count >= minOrders }).Count(cfg)
}

// RepeatCustomersMaterialized is the same query over the one-shot
// aggregation: build the full per-customer group state, then walk it.
func RepeatCustomersMaterialized(d PipelineData, minOrders uint64, workers int) (int, error) {
	g := agg.MustNewGroupBy(agg.Config{})
	keys := d.Orders.Keys()
	vals := make([]uint64, len(keys))
	var err error
	if workers > 1 {
		err = g.AddParallel(exec.Config{Workers: workers}, keys, vals)
	} else {
		err = g.AddBatch(keys, vals)
	}
	if err != nil {
		return 0, err
	}
	n := 0
	for _, st := range g.Groups() {
		if st.Count >= minOrders {
			n++
		}
	}
	return n, nil
}

// CheckPipelineEquivalence runs both forms of both queries and verifies
// they agree — the cheap self-check the benchmark and the demo run once
// before timing anything.
func CheckPipelineEquivalence(d PipelineData, cut uint64, workers int) error {
	sg, err := SegmentRevenueStreaming(d, cut, pipe.Config{Workers: workers})
	if err != nil {
		return err
	}
	mg, err := SegmentRevenueMaterialized(d, cut, workers)
	if err != nil {
		return err
	}
	if sg.NumGroups() != mg.NumGroups() {
		return fmt.Errorf("segment revenue: %d streamed groups, %d materialized", sg.NumGroups(), mg.NumGroups())
	}
	for key, ms := range mg.Groups() {
		ss, ok := sg.Get(key)
		if !ok || *ss != *ms {
			return fmt.Errorf("segment revenue: group %d diverges (streamed %+v, materialized %+v)", key, ss, ms)
		}
	}
	sc, err := RepeatCustomersStreaming(d, 3, pipe.Config{Workers: workers})
	if err != nil {
		return err
	}
	mc, err := RepeatCustomersMaterialized(d, 3, workers)
	if err != nil {
		return err
	}
	if sc != mc {
		return fmt.Errorf("repeat customers: streamed %d, materialized %d", sc, mc)
	}
	return nil
}
