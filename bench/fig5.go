package bench

import (
	"fmt"
	"io"

	"repro/dist"
	"repro/table"
	"repro/workload"
)

// RWSeries is one curve of Figure 5: a labelled table across the
// update-percentage sweep at one grow-at threshold.
type RWSeries struct {
	Label string
	// Mops maps update percent -> overall stream throughput.
	Mops map[int]float64
	// MemoryBytes maps update percent -> final footprint.
	MemoryBytes map[int]uint64
}

// RWExperiment groups the series of one grow-at panel.
type RWExperiment struct {
	GrowAtPct int
	Series    []*RWSeries
}

// RunFig5 regenerates Figure 5: 1000M-ops-scaled RW streams over sparse
// keys, sweeping the update percentage {0,5,25,50,75,100} at rehash
// thresholds {50,70,90}%. ChainedH24 participates only at the 50%
// threshold, the only configuration where its memory stays comparable
// (§6). One op tape per update percentage is generated once and replayed
// against every scheme.
func RunFig5(opt Options) ([]RWExperiment, error) {
	opt = opt.withDefaults()
	contenders := opt.contendersFor(
		table.SchemeCuckooH4, table.SchemeLP, table.SchemeQP, table.SchemeRH,
		table.SchemeChained24,
	)
	// One repeat = one data seed: a fresh set of tapes replayed against
	// every scheme (within-repeat fairness), throughputs averaged across
	// repeats (the paper's three-seed methodology). The tape's key
	// generator seed and the replaying table's seed must agree, since the
	// tape encodes the distribution's concrete keys.
	var exps []RWExperiment
	for _, grow := range GrowAtPcts {
		exps = append(exps, RWExperiment{GrowAtPct: grow})
	}
	series := map[int]map[string]*RWSeries{} // grow -> label -> series
	for gi, grow := range GrowAtPcts {
		series[grow] = map[string]*RWSeries{}
		for _, c := range contenders {
			if c.scheme == table.SchemeChained24 && grow != 50 {
				continue
			}
			s := &RWSeries{
				Label:       c.label(),
				Mops:        map[int]float64{},
				MemoryBytes: map[int]uint64{},
			}
			series[grow][c.label()] = s
			exps[gi].Series = append(exps[gi].Series, s)
		}
	}
	for r := 0; r < opt.Repeats; r++ {
		seed := opt.Seed + uint64(r)*0x9e3779b9
		gen := dist.New(dist.Sparse, seed)
		tapes := make(map[int]*workload.Tape, len(UpdatePcts))
		for _, up := range UpdatePcts {
			tapes[up] = workload.GenRWTape(gen, opt.RWInitial, opt.RWOps, up, seed+uint64(up))
		}
		for _, grow := range GrowAtPcts {
			for _, c := range contenders {
				s, ok := series[grow][c.label()]
				if !ok {
					continue
				}
				for _, up := range UpdatePcts {
					res, err := workload.RunRW(workload.RWConfig{
						Scheme:      c.scheme,
						Family:      c.family,
						Dist:        dist.Sparse,
						InitialKeys: opt.RWInitial,
						Ops:         opt.RWOps,
						UpdatePct:   up,
						GrowAt:      float64(grow) / 100,
						Seed:        seed,
						Tape:        tapes[up],
					})
					if err != nil {
						return nil, fmt.Errorf("bench: fig5 %s grow=%d up=%d: %w", c.label(), grow, up, err)
					}
					s.Mops[up] += res.Mops / float64(opt.Repeats)
					s.MemoryBytes[up] = res.MemoryBytes
					opt.logf("fig5[r%d] %-18s grow=%2d%% updates=%3d%%: %6.1f Mops, mem %d MB",
						r, c.label(), grow, up, res.Mops, res.MemoryBytes>>20)
				}
			}
		}
	}
	return exps, nil
}

// RenderFig5 prints the Figure 5 panels.
func RenderFig5(w io.Writer, exps []RWExperiment) {
	fmt.Fprintln(w, "=== Figure 5: RW workload, sparse keys (throughput and memory) ===")
	for _, e := range exps {
		fmt.Fprintf(w, "\n--- growing at %d%% load factor ---\n", e.GrowAtPct)
		fmt.Fprintf(w, "%-22s", "Throughput [Mops]")
		for _, up := range UpdatePcts {
			fmt.Fprintf(w, "  up=%3d%%", up)
		}
		fmt.Fprintln(w)
		for _, s := range e.Series {
			fmt.Fprintf(w, "%-22s", s.Label)
			for _, up := range UpdatePcts {
				fmt.Fprintf(w, "  %7.1f", s.Mops[up])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-22s", "Memory [MB]")
		for _, up := range UpdatePcts {
			fmt.Fprintf(w, "  up=%3d%%", up)
		}
		fmt.Fprintln(w)
		for _, s := range e.Series {
			fmt.Fprintf(w, "%-22s", s.Label)
			for _, up := range UpdatePcts {
				fmt.Fprintf(w, "  %7.0f", float64(s.MemoryBytes[up])/(1<<20))
			}
			fmt.Fprintln(w)
		}
	}
}
