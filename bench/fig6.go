package bench

import (
	"fmt"
	"io"

	"repro/dist"
	"repro/hashfn"
	"repro/table"
	"repro/workload"
)

// Fig6Cell is one matrix cell: the winning table and its throughput.
type Fig6Cell struct {
	Label string
	Mops  float64
}

// Fig6Result is the best-performer matrix of Figure 6: for every
// ⟨capacity, distribution, load factor⟩ the fastest table for insertions,
// and for every additional unsuccessful-lookup percentage the fastest
// table for lookups.
type Fig6Result struct {
	// Capacities are the slot counts used for the S/M/L columns.
	Capacities []int
	// Insert[dist][lf][capIdx] is the insertion winner.
	Insert map[dist.Kind]map[int][]Fig6Cell
	// Lookup[dist][lf][capIdx][mixIdx] is the lookup winner; mixIdx
	// indexes Mixes.
	Lookup map[dist.Kind]map[int][][]Fig6Cell
}

// Fig6Capacities returns the default S/M/L slot counts for the matrix.
// They are smaller than the single-figure capacities because the matrix
// multiplies out to 3 x 3 x 3 x |contenders| full WORM runs.
func Fig6Capacities() []int { return []int{1 << 14, 1 << 17, 1 << 20} }

// fig6Contenders are the tables competing for cells: the paper's Figure 6
// winners all use Mult (§5.2: "no hash table is the absolute best using
// Murmur"), so the matrix competes the Mult tables plus ChainedH24 where
// it fits the memory budget (load factor 50% only).
func fig6Contenders(lf int) []contender {
	out := []contender{
		{table.SchemeLP, hashfn.MultFamily{}},
		{table.SchemeQP, hashfn.MultFamily{}},
		{table.SchemeRH, hashfn.MultFamily{}},
		{table.SchemeCuckooH4, hashfn.MultFamily{}},
	}
	if lf <= 50 {
		out = append(out, contender{table.SchemeChained24, hashfn.MultFamily{}})
	}
	return out
}

// RunFig6 regenerates Figure 6 by running the full WORM sweep across three
// capacities and reporting the argmax per cell.
func RunFig6(opt Options) (*Fig6Result, error) {
	opt = opt.withDefaults()
	caps := opt.Fig6Caps
	if len(caps) == 0 {
		caps = Fig6Capacities()
	}
	res := &Fig6Result{
		Capacities: caps,
		Insert:     map[dist.Kind]map[int][]Fig6Cell{},
		Lookup:     map[dist.Kind]map[int][][]Fig6Cell{},
	}
	for _, d := range dist.Kinds() {
		res.Insert[d] = map[int][]Fig6Cell{}
		res.Lookup[d] = map[int][][]Fig6Cell{}
		for _, lf := range HighLoadFactors {
			res.Insert[d][lf] = make([]Fig6Cell, len(res.Capacities))
			res.Lookup[d][lf] = make([][]Fig6Cell, len(res.Capacities))
			for ci, capSlots := range res.Capacities {
				res.Lookup[d][lf][ci] = make([]Fig6Cell, len(Mixes))
				for _, c := range fig6Contenders(lf) {
					r, err := runWORMAveraged(opt, workload.WORMConfig{
						Scheme:     c.scheme,
						Family:     c.family,
						Dist:       d,
						Capacity:   capSlots,
						LoadFactor: float64(lf) / 100,
						Mixes:      Mixes,
						Seed:       opt.Seed,
					})
					if err != nil {
						return nil, fmt.Errorf("bench: fig6 %s/%s lf=%d cap=%d: %w", c.label(), d, lf, capSlots, err)
					}
					if r.OverBudget {
						continue
					}
					if r.InsertMops > res.Insert[d][lf][ci].Mops {
						res.Insert[d][lf][ci] = Fig6Cell{c.label(), r.InsertMops}
					}
					for mi, u := range Mixes {
						if r.LookupMops[u] > res.Lookup[d][lf][ci][mi].Mops {
							res.Lookup[d][lf][ci][mi] = Fig6Cell{c.label(), r.LookupMops[u]}
						}
					}
					opt.logf("fig6 %-18s %-6s lf=%2d cap=2^%2d: insert %6.1f, lookups %v",
						c.label(), d, lf, log2int(capSlots), r.InsertMops, r.LookupMops)
				}
			}
		}
	}
	return res, nil
}

func log2int(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

var capNames = []string{"S", "M", "L"}

// capName labels the ci-th capacity column, falling back to the index when
// more than three capacities are configured.
func capName(ci int) string {
	if ci < len(capNames) {
		return capNames[ci]
	}
	return fmt.Sprintf("C%d", ci)
}

// RenderFig6 prints the best-performer matrix.
func RenderFig6(w io.Writer, res *Fig6Result) {
	fmt.Fprintln(w, "=== Figure 6: absolute best performers (WORM), winner and Mops per cell ===")
	for _, d := range dist.Kinds() {
		fmt.Fprintf(w, "\n--- %s distribution ---\n", d)
		fmt.Fprintf(w, "%-8s %-4s  %-24s", "lf", "cap", "Insertions")
		for _, u := range Mixes {
			fmt.Fprintf(w, "  u=%3d%%: %-20s", u, "")
		}
		fmt.Fprintln(w)
		for _, lf := range HighLoadFactors {
			for ci := range res.Capacities {
				ins := res.Insert[d][lf][ci]
				fmt.Fprintf(w, "%-8s %-4s  %-24s", fmt.Sprintf("%d%%", lf), capName(ci),
					fmt.Sprintf("%s (%.0f)", ins.Label, ins.Mops))
				for mi := range Mixes {
					c := res.Lookup[d][lf][ci][mi]
					fmt.Fprintf(w, "  %-28s", fmt.Sprintf("%s (%.0f)", c.Label, c.Mops))
				}
				fmt.Fprintln(w)
			}
		}
	}
}
