package bench

// The streaming-vs-materializing comparison over the pipeline query set:
// ns/row (rows = orders entering the query) and bytes/query (TotalAlloc
// delta per iteration) at three filter selectivities and workers=1,4.
// With BENCH_PIPELINE_JSON set the datapoints are dumped as the
// BENCH_pipeline.json CI artifact. The interesting curve is bytes/query:
// the materialized form's allocations scale with the selectivity (the
// filtered copy and the joined columns), the streamed form's do not.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/pipe"
)

// pipelineBenchPoint is one ⟨sub-benchmark, ns/row, bytes/query⟩ point.
type pipelineBenchPoint struct {
	Case          string  `json:"case"`
	NsPerRow      float64 `json:"ns_per_row"`
	BytesPerQuery float64 `json:"bytes_per_query"`
}

var pipelineBenchResults []pipelineBenchPoint

func reportPipeline(b *testing.B, rows int, bytesPerOp float64) {
	ns := float64(b.Elapsed().Nanoseconds()) / float64(rows)
	b.ReportMetric(ns, "ns/row")
	b.ReportMetric(bytesPerOp, "bytes/query")
	p := pipelineBenchPoint{Case: b.Name(), NsPerRow: ns, BytesPerQuery: bytesPerOp}
	if n := len(pipelineBenchResults); n > 0 && pipelineBenchResults[n-1].Case == b.Name() {
		pipelineBenchResults[n-1] = p
		return
	}
	pipelineBenchResults = append(pipelineBenchResults, p)
}

func writePipelineBenchJSON(b *testing.B) {
	path := os.Getenv("BENCH_PIPELINE_JSON")
	if path == "" || len(pipelineBenchResults) == 0 {
		return
	}
	out, err := json.MarshalIndent(struct {
		Benchmark string               `json:"benchmark"`
		Points    []pipelineBenchPoint `json:"points"`
	}{Benchmark: "BenchmarkPipeline", Points: pipelineBenchResults}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// allocDelta returns TotalAlloc now; diff two samples for bytes allocated.
func allocDelta() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// BenchmarkPipeline sweeps query form × selectivity × workers over the
// segment-revenue join query.
func BenchmarkPipeline(b *testing.B) {
	const customers, orders = 1 << 14, 1 << 17
	d := NewPipelineData(customers, orders, 42)
	if err := CheckPipelineEquivalence(d, PipelineMaxCents/2, 4); err != nil {
		b.Fatal(err)
	}
	for _, selPct := range []int{10, 50, 90} {
		cut := uint64(PipelineMaxCents * (100 - selPct) / 100)
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("sel%d/workers%d", selPct, workers)
			b.Run("streamed/"+name, func(b *testing.B) {
				cfg := pipe.Config{Workers: workers}
				before := allocDelta()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := SegmentRevenueStreaming(d, cut, cfg); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reportPipeline(b, b.N*orders, float64(allocDelta()-before)/float64(b.N))
			})
			b.Run("materialized/"+name, func(b *testing.B) {
				before := allocDelta()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := SegmentRevenueMaterialized(d, cut, workers); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reportPipeline(b, b.N*orders, float64(allocDelta()-before)/float64(b.N))
			})
		}
	}
	writePipelineBenchJSON(b)
}

// BenchmarkPipelineGroupStream sweeps the mid-pipeline group-by query.
func BenchmarkPipelineGroupStream(b *testing.B) {
	const customers, orders = 1 << 14, 1 << 17
	d := NewPipelineData(customers, orders, 7)
	for _, workers := range []int{1, 4} {
		name := fmt.Sprintf("workers%d", workers)
		b.Run("streamed/"+name, func(b *testing.B) {
			cfg := pipe.Config{Workers: workers}
			before := allocDelta()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RepeatCustomersStreaming(d, 3, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportPipeline(b, b.N*orders, float64(allocDelta()-before)/float64(b.N))
		})
		b.Run("materialized/"+name, func(b *testing.B) {
			before := allocDelta()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RepeatCustomersMaterialized(d, 3, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportPipeline(b, b.N*orders, float64(allocDelta()-before)/float64(b.N))
		})
	}
	writePipelineBenchJSON(b)
}

// TestPipelineQueriesAgree is the tier-1 guard on the query set itself:
// both forms of both queries agree at every selectivity, serial and
// parallel.
func TestPipelineQueriesAgree(t *testing.T) {
	d := NewPipelineData(2_000, 20_000, 3)
	for _, selPct := range []int{10, 50, 90} {
		cut := uint64(PipelineMaxCents * (100 - selPct) / 100)
		for _, workers := range []int{1, 4} {
			if err := CheckPipelineEquivalence(d, cut, workers); err != nil {
				t.Fatalf("sel=%d%% workers=%d: %v", selPct, workers, err)
			}
		}
	}
}
