package bench

import (
	"fmt"
	"io"
	"time"

	"repro/dist"
	"repro/hashfn"
	"repro/table"
)

// Fig7Series is one curve of Figure 7: a layout/SIMD variant of LPMult
// across load factors and lookup mixes.
type Fig7Series struct {
	Label string
	// InsertMops maps load-factor percent -> build throughput.
	InsertMops map[int]float64
	// LookupMops maps load-factor percent -> unsuccessful percent ->
	// probe throughput.
	LookupMops map[int]map[int]float64
}

// fig7Variant abstracts over the four table variants so one runner covers
// AoS/SoA with scalar and vectorized probing. "SIMD" here means the
// portable 4-lane kernels of internal/vec — see DESIGN.md's substitution
// table.
type fig7Variant struct {
	label string
	build func(cfg table.Config) (put func(k, v uint64) bool, get func(k uint64) (uint64, bool), m table.Map)
}

func fig7Variants() []fig7Variant {
	return []fig7Variant{
		{"LPAoSMult", func(cfg table.Config) (func(uint64, uint64) bool, func(uint64) (uint64, bool), table.Map) {
			t := table.NewLinearProbing(cfg)
			return t.Put, t.Get, t
		}},
		{"LPAoSMultSIMD", func(cfg table.Config) (func(uint64, uint64) bool, func(uint64) (uint64, bool), table.Map) {
			t := table.NewLinearProbing(cfg)
			return t.PutVec, t.GetVec, t
		}},
		{"LPSoAMult", func(cfg table.Config) (func(uint64, uint64) bool, func(uint64) (uint64, bool), table.Map) {
			t := table.NewLinearProbingSoA(cfg)
			return t.Put, t.Get, t
		}},
		{"LPSoAMultSIMD", func(cfg table.Config) (func(uint64, uint64) bool, func(uint64) (uint64, bool), table.Map) {
			t := table.NewLinearProbingSoA(cfg)
			return t.PutVec, t.GetVec, t
		}},
	}
}

// RunFig7 regenerates Figure 7: the effect of table layout (AoS vs SoA)
// and vectorized probing on LPMult over sparse keys at load factors
// 50/70/90%.
func RunFig7(opt Options) ([]*Fig7Series, error) {
	opt = opt.withDefaults()
	gen := dist.New(dist.Sparse, opt.Seed)
	var out []*Fig7Series
	for _, v := range fig7Variants() {
		out = append(out, &Fig7Series{
			Label:      v.label,
			InsertMops: map[int]float64{},
			LookupMops: map[int]map[int]float64{},
		})
	}
	for _, lf := range HighLoadFactors {
		n := opt.Capacity * lf / 100
		insertKeys := dist.Shuffled(gen.Keys(n), opt.Seed+1)
		lookups := opt.Lookups
		if lookups <= 0 {
			lookups = n
		}
		for vi, v := range fig7Variants() {
			out[vi].LookupMops[lf] = map[int]float64{}
			for r := 0; r < opt.Repeats; r++ {
				put, get, m := v.build(table.Config{
					InitialCapacity: opt.Capacity,
					MaxLoadFactor:   0,
					Family:          hashfn.MultFamily{},
					Seed:            opt.Seed + uint64(r)*0x9e3779b9,
				})
				start := time.Now()
				for i, k := range insertKeys {
					put(k, uint64(i))
				}
				insertSecs := time.Since(start).Seconds()
				if m.Len() != n {
					return nil, fmt.Errorf("bench: fig7 %s lf=%d built %d entries, want %d", v.label, lf, m.Len(), n)
				}
				out[vi].InsertMops[lf] += float64(n) / 1e6 / insertSecs
				for _, u := range Mixes {
					miss := lookups * u / 100
					hit := lookups - miss
					probes := make([]uint64, 0, lookups)
					for i := 0; i < hit; i++ {
						probes = append(probes, insertKeys[i%len(insertKeys)])
					}
					probes = append(probes, gen.AbsentKeys(n, miss)...)
					probes = dist.Shuffled(probes, opt.Seed+uint64(u)+2)
					hits := 0
					var sink uint64
					start = time.Now()
					for _, k := range probes {
						if val, ok := get(k); ok {
							hits++
							sink ^= val
						}
					}
					secs := time.Since(start).Seconds()
					_ = sink
					if hits != hit {
						return nil, fmt.Errorf("bench: fig7 %s lf=%d u=%d: %d hits, want %d", v.label, lf, u, hits, hit)
					}
					out[vi].LookupMops[lf][u] += float64(len(probes)) / 1e6 / secs
				}
			}
			out[vi].InsertMops[lf] /= float64(opt.Repeats)
			for _, u := range Mixes {
				out[vi].LookupMops[lf][u] /= float64(opt.Repeats)
			}
			opt.logf("fig7 %-16s lf=%2d%%: insert %6.1f Mops, lookups %v",
				v.label, lf, out[vi].InsertMops[lf], out[vi].LookupMops[lf])
		}
	}
	return out, nil
}

// RenderFig7 prints the Figure 7 panels.
func RenderFig7(w io.Writer, series []*Fig7Series) {
	fmt.Fprintln(w, "=== Figure 7: layout (AoS vs SoA) and vectorized probing, LPMult, sparse ===")
	fmt.Fprintf(w, "%-18s", "Insertions [Mops]")
	for _, lf := range HighLoadFactors {
		fmt.Fprintf(w, "  lf=%2d%%", lf)
	}
	fmt.Fprintln(w)
	for _, s := range series {
		fmt.Fprintf(w, "%-18s", s.Label)
		for _, lf := range HighLoadFactors {
			fmt.Fprintf(w, "  %6.1f", s.InsertMops[lf])
		}
		fmt.Fprintln(w)
	}
	for _, lf := range HighLoadFactors {
		fmt.Fprintf(w, "\nLookups at %d%% load factor [Mops], by %% unsuccessful\n", lf)
		fmt.Fprintf(w, "%-18s", "")
		for _, u := range Mixes {
			fmt.Fprintf(w, "  u=%3d%%", u)
		}
		fmt.Fprintln(w)
		for _, s := range series {
			fmt.Fprintf(w, "%-18s", s.Label)
			for _, u := range Mixes {
				fmt.Fprintf(w, "  %6.1f", s.LookupMops[lf][u])
			}
			fmt.Fprintln(w)
		}
	}
}
