package bench

import (
	"strings"
	"testing"

	"repro/dist"
	"repro/table"
)

// tinyOpts keeps harness tests fast: 2^12-slot WORM tables, short RW tapes.
func tinyOpts() Options {
	return Options{
		Capacity:  1 << 12,
		Lookups:   1024,
		RWInitial: 1 << 9,
		RWOps:     1 << 13,
		Fig6Caps:  []int{1 << 10, 1 << 11, 1 << 12},
		Seed:      7,
	}
}

func TestRunFig2Structure(t *testing.T) {
	exps, err := RunFig2(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 3 {
		t.Fatalf("got %d distributions, want 3", len(exps))
	}
	wantSeries := []string{
		"ChainedH8Mult", "ChainedH8Murmur",
		"ChainedH24Mult", "ChainedH24Murmur",
		"LPMult", "LPMurmur",
	}
	for _, e := range exps {
		if len(e.Series) != len(wantSeries) {
			t.Fatalf("%s: %d series, want %d", e.Dist, len(e.Series), len(wantSeries))
		}
		for i, s := range e.Series {
			if s.Label != wantSeries[i] {
				t.Fatalf("series %d = %s, want %s", i, s.Label, wantSeries[i])
			}
			for _, lf := range LowLoadFactors {
				if !s.OverBudget[lf] {
					if s.InsertMops[lf] <= 0 {
						t.Fatalf("%s lf=%d: no insert throughput", s.Label, lf)
					}
					if len(s.LookupMops[lf]) != len(Mixes) {
						t.Fatalf("%s lf=%d: %d mixes", s.Label, lf, len(s.LookupMops[lf]))
					}
				}
				if s.MemoryBytes[lf] == 0 {
					t.Fatalf("%s lf=%d: zero memory", s.Label, lf)
				}
			}
		}
	}
	// Rendering must include every series label.
	var sb strings.Builder
	RenderFig2(&sb, exps)
	for _, w := range wantSeries {
		if !strings.Contains(sb.String(), w) {
			t.Fatalf("rendered Fig2 missing %s", w)
		}
	}

	rows := Fig3FromFig2(exps)
	if len(rows) == 0 {
		t.Fatal("Fig3FromFig2 produced no rows")
	}
	for _, r := range rows {
		if r.MemoryBytes == 0 {
			t.Fatalf("row %+v has zero memory", r)
		}
	}
	sb.Reset()
	RenderFig3(&sb, rows)
	if !strings.Contains(sb.String(), "Figure 3") {
		t.Fatal("RenderFig3 output malformed")
	}
}

func TestRunFig4SkipsChainedAboveBudget(t *testing.T) {
	exps, err := RunFig4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exps {
		for _, s := range e.Series {
			if !strings.HasPrefix(s.Label, "ChainedH24") {
				continue
			}
			if _, ok := s.InsertMops[50]; !ok {
				t.Fatalf("%s missing its 50%% point", s.Label)
			}
			for _, lf := range []int{70, 90} {
				if _, ok := s.InsertMops[lf]; ok {
					t.Fatalf("%s has a %d%% point; the paper drops chained above 50%%", s.Label, lf)
				}
			}
		}
	}
	var sb strings.Builder
	RenderFig4(&sb, exps)
	if !strings.Contains(sb.String(), "CuckooH4Mult") {
		t.Fatal("rendered Fig4 missing CuckooH4Mult")
	}
}

func TestRunFig5Structure(t *testing.T) {
	exps, err := RunFig5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != len(GrowAtPcts) {
		t.Fatalf("%d grow-at panels, want %d", len(exps), len(GrowAtPcts))
	}
	for _, e := range exps {
		chained := false
		for _, s := range e.Series {
			if strings.HasPrefix(s.Label, "ChainedH24") {
				chained = true
			}
			for _, up := range UpdatePcts {
				if s.Mops[up] <= 0 {
					t.Fatalf("grow=%d %s up=%d: no throughput", e.GrowAtPct, s.Label, up)
				}
				if s.MemoryBytes[up] == 0 {
					t.Fatalf("grow=%d %s up=%d: no memory", e.GrowAtPct, s.Label, up)
				}
			}
		}
		if chained != (e.GrowAtPct == 50) {
			t.Fatalf("grow=%d: chained presence = %v; the paper includes it only at 50%%", e.GrowAtPct, chained)
		}
	}
	var sb strings.Builder
	RenderFig5(&sb, exps)
	if !strings.Contains(sb.String(), "growing at 90% load factor") {
		t.Fatal("rendered Fig5 missing panels")
	}
}

func TestRunFig6Structure(t *testing.T) {
	opt := tinyOpts()
	res, err := RunFig6(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Capacities) != 3 {
		t.Fatalf("capacities = %v", res.Capacities)
	}
	for _, d := range dist.Kinds() {
		for _, lf := range HighLoadFactors {
			for ci := range res.Capacities {
				ins := res.Insert[d][lf][ci]
				if ins.Label == "" || ins.Mops <= 0 {
					t.Fatalf("%s lf=%d cap#%d: empty insert winner", d, lf, ci)
				}
				for mi := range Mixes {
					c := res.Lookup[d][lf][ci][mi]
					if c.Label == "" || c.Mops <= 0 {
						t.Fatalf("%s lf=%d cap#%d mix#%d: empty lookup winner", d, lf, ci, mi)
					}
					if strings.HasPrefix(c.Label, "ChainedH24") && lf > 50 {
						t.Fatalf("chained won a cell above its memory budget: %s lf=%d", c.Label, lf)
					}
				}
			}
		}
	}
	var sb strings.Builder
	RenderFig6(&sb, res)
	if !strings.Contains(sb.String(), "best performers") {
		t.Fatal("rendered Fig6 malformed")
	}
}

func TestRunFig7Structure(t *testing.T) {
	series, err := RunFig7(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"LPAoSMult", "LPAoSMultSIMD", "LPSoAMult", "LPSoAMultSIMD"}
	if len(series) != len(want) {
		t.Fatalf("%d series, want %d", len(series), len(want))
	}
	for i, s := range series {
		if s.Label != want[i] {
			t.Fatalf("series %d = %s, want %s", i, s.Label, want[i])
		}
		for _, lf := range HighLoadFactors {
			if s.InsertMops[lf] <= 0 {
				t.Fatalf("%s lf=%d: no insert throughput", s.Label, lf)
			}
			for _, u := range Mixes {
				if s.LookupMops[lf][u] <= 0 {
					t.Fatalf("%s lf=%d u=%d: no lookup throughput", s.Label, lf, u)
				}
			}
		}
	}
	var sb strings.Builder
	RenderFig7(&sb, series)
	if !strings.Contains(sb.String(), "LPSoAMultSIMD") {
		t.Fatal("rendered Fig7 missing series")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Capacity != CapacityMedium || o.RWInitial == 0 || o.RWOps == 0 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestFig6Contenders(t *testing.T) {
	if len(fig6Contenders(50)) != 5 {
		t.Fatal("50% should include ChainedH24")
	}
	if len(fig6Contenders(70)) != 4 {
		t.Fatal("70% should exclude ChainedH24")
	}
	for _, c := range fig6Contenders(90) {
		if c.family.Name() != "Mult" {
			t.Fatalf("Fig6 contender %s is not Mult", c.label())
		}
	}
}

func TestMultMurmurComposition(t *testing.T) {
	cs := multMurmur(table.SchemeLP, table.SchemeRH)
	if len(cs) != 4 {
		t.Fatalf("%d contenders", len(cs))
	}
	if cs[0].label() != "LPMult" || cs[1].label() != "LPMurmur" || cs[3].label() != "RHMurmur" {
		t.Fatalf("labels: %s %s %s %s", cs[0].label(), cs[1].label(), cs[2].label(), cs[3].label())
	}
}

func TestRunLayoutModel(t *testing.T) {
	points, err := RunLayoutModel(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(HighLoadFactors) {
		t.Fatalf("%d points", len(points))
	}
	prevProbes := 0.0
	for _, p := range points {
		if p.AvgProbes <= prevProbes {
			t.Fatalf("probe length not increasing with load factor: %+v", p)
		}
		prevProbes = p.AvgProbes
		if p.AvgAoSLines < p.AvgSoALines {
			t.Fatalf("AoS touched fewer lines than SoA at lf=%d", p.LoadFactorPct)
		}
		if p.LineRatio < 1 || p.LineRatio > 2 {
			t.Fatalf("line ratio %v outside (1,2]", p.LineRatio)
		}
		if p.AoSL1MissesPerProbe < p.SoAL1MissesPerProbe {
			t.Fatalf("modeled AoS misses below SoA at lf=%d", p.LoadFactorPct)
		}
	}
	// The paper's headline number: ratio ~1.85 at 90% (allow slack for the
	// tiny test capacity).
	last := points[len(points)-1]
	if last.LineRatio < 1.5 {
		t.Fatalf("90%% line ratio %v, want ~1.85", last.LineRatio)
	}
	var sb strings.Builder
	RenderLayoutModel(&sb, points)
	if !strings.Contains(sb.String(), "1.85") {
		t.Fatal("render malformed")
	}
}

func TestAllFamiliesSweep(t *testing.T) {
	opt := tinyOpts()
	opt.AllFamilies = true
	exps, err := RunFig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	// 3 schemes x 4 families per distribution panel.
	if got := len(exps[0].Series); got != 12 {
		t.Fatalf("AllFamilies fig2 has %d series, want 12", got)
	}
	seen := map[string]bool{}
	for _, s := range exps[0].Series {
		seen[s.Label] = true
	}
	for _, want := range []string{"LPMult", "LPMultAdd", "LPTab", "LPMurmur"} {
		if !seen[want] {
			t.Fatalf("missing series %s in AllFamilies sweep", want)
		}
	}
}

func TestContendersFor(t *testing.T) {
	if got := (Options{}).contendersFor(table.SchemeLP); len(got) != 2 {
		t.Fatalf("default sweep has %d families", len(got))
	}
	if got := (Options{AllFamilies: true}).contendersFor(table.SchemeLP); len(got) != 4 {
		t.Fatalf("full sweep has %d families", len(got))
	}
}
