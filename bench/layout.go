package bench

import (
	"fmt"
	"io"

	"repro/dist"
	"repro/hashfn"
	"repro/internal/cachesim"
	"repro/stats"
	"repro/table"
)

// LayoutPoint is one row of the §7 cache-line analysis at a given load
// factor: measured unsuccessful-probe lengths and the cache lines an AoS
// vs an SoA layout touches, next to the paper's closed-form model, plus
// modeled L1 miss counts from replaying the same traces through a
// simulated cache.
type LayoutPoint struct {
	LoadFactorPct int

	// Measured averages over the probe trace.
	AvgProbes   float64
	AvgAoSLines float64
	AvgSoALines float64
	LineRatio   float64 // AoS/SoA

	// The paper's model at this load factor: Knuth probes and
	// ceil(p/4) vs ceil(p/8).
	ModelProbes    float64
	ModelAoSLines  float64
	ModelSoALines  float64
	ModelLineRatio float64

	// Simulated 32 KiB / 8-way / 64 B L1 misses per probe for each layout.
	AoSL1MissesPerProbe float64
	SoAL1MissesPerProbe float64
}

// RunLayoutModel measures the §7 analysis: build LPMult over sparse keys at
// 50/70/90% load factor, trace the slots every unsuccessful probe touches,
// convert the trace to cache lines under both layouts, and compare with the
// ceil(d/4)-vs-ceil(d/8) model (the "factor ~1.85, not 2" argument). The
// same traces are replayed through a simulated L1 to model miss counts.
func RunLayoutModel(opt Options) ([]LayoutPoint, error) {
	opt = opt.withDefaults()
	gen := dist.New(dist.Sparse, opt.Seed)
	var out []LayoutPoint
	for _, lf := range HighLoadFactors {
		n := opt.Capacity * lf / 100
		m := table.NewLinearProbing(table.Config{
			InitialCapacity: opt.Capacity,
			Family:          hashfn.MultFamily{},
			Seed:            opt.Seed,
		})
		for i, k := range dist.Shuffled(gen.Keys(n), opt.Seed+1) {
			m.Put(k, uint64(i))
		}
		probes := opt.Lookups
		if probes <= 0 {
			probes = n / 4
		}
		absent := gen.AbsentKeys(n, probes)

		aosL1 := cachesim.MustNew(32<<10, 8, 64)
		soaL1 := cachesim.MustNew(32<<10, 8, 64)
		var totalProbes, totalAoSLines, totalSoALines float64
		var aosMisses, soaMisses int
		for _, k := range absent {
			prevAoSLine, prevSoALine := -1, -1
			m.ProbeSlots(k, func(slot int) bool {
				totalProbes++
				// AoS: 16-byte slots, 4 per 64-byte line.
				if l := slot / 4; l != prevAoSLine {
					totalAoSLines++
					prevAoSLine = l
				}
				// SoA: the probe scans the 8-byte key column only.
				if l := slot / 8; l != prevSoALine {
					totalSoALines++
					prevSoALine = l
				}
				aosMisses += aosL1.AccessRange(uint64(slot)*16, 16)
				soaMisses += soaL1.AccessRange(uint64(slot)*8, 8)
				return true
			})
		}
		p := LayoutPoint{LoadFactorPct: lf}
		np := float64(len(absent))
		p.AvgProbes = totalProbes / np
		p.AvgAoSLines = totalAoSLines / np
		p.AvgSoALines = totalSoALines / np
		p.LineRatio = totalAoSLines / totalSoALines
		alpha := float64(lf) / 100
		p.ModelProbes = stats.LPExpectedProbesUnsuccessful(alpha)
		p.ModelAoSLines = stats.CacheLinesAoS(p.ModelProbes)
		p.ModelSoALines = stats.CacheLinesSoA(p.ModelProbes)
		p.ModelLineRatio = p.ModelAoSLines / p.ModelSoALines
		p.AoSL1MissesPerProbe = float64(aosMisses) / np
		p.SoAL1MissesPerProbe = float64(soaMisses) / np
		out = append(out, p)
		opt.logf("layout lf=%2d%%: probes %.1f (model %.1f), lines AoS %.2f SoA %.2f ratio %.2f (model %.2f)",
			lf, p.AvgProbes, p.ModelProbes, p.AvgAoSLines, p.AvgSoALines, p.LineRatio, p.ModelLineRatio)
	}
	return out, nil
}

// RenderLayoutModel prints the measured-vs-model table.
func RenderLayoutModel(w io.Writer, points []LayoutPoint) {
	fmt.Fprintln(w, "=== §7 layout cache-line analysis: measured traces vs the paper's model ===")
	fmt.Fprintf(w, "%-6s %18s %18s %18s %12s %22s\n",
		"lf", "probes (model)", "AoS lines (model)", "SoA lines (model)", "ratio(model)", "L1 misses/probe A|S")
	for _, p := range points {
		fmt.Fprintf(w, "%-6s %8.1f (%6.1f) %8.2f (%7.0f) %8.2f (%7.0f) %5.2f (%4.2f) %10.3f | %.3f\n",
			fmt.Sprintf("%d%%", p.LoadFactorPct),
			p.AvgProbes, p.ModelProbes,
			p.AvgAoSLines, p.ModelAoSLines,
			p.AvgSoALines, p.ModelSoALines,
			p.LineRatio, p.ModelLineRatio,
			p.AoSL1MissesPerProbe, p.SoAL1MissesPerProbe)
	}
	fmt.Fprintln(w, "(the paper's point: at 90% the AoS/SoA line ratio is ~1.85, below the naive 2x)")
}
