// Aggregation: hash GROUP-BY with SUM/MIN/MAX/COUNT — per the paper's §4,
// the indexing workload it measures "resembles very closely other important
// operations such as joins and aggregates — like SUM, MIN, etc."
//
// We aggregate a fact table of (storeID, saleCents) into per-store
// statistics. Group states live in a side array; the hash table maps group
// key -> state index, exactly how a vectorized query engine lays out its
// aggregation hash table.
package main

import (
	"fmt"
	"sort"

	"repro/hashfn"
	"repro/internal/prng"
	"repro/table"
)

type groupState struct {
	store uint64
	count uint64
	sum   uint64
	min   uint64
	max   uint64
}

func main() {
	const (
		numStores = 10_000
		numSales  = 5_000_000
	)

	// Synthesize sales with a skewed store popularity (low IDs sell more),
	// the shape real retail data tends to have.
	rng := prng.NewXoshiro256(99)
	type sale struct{ store, cents uint64 }
	sales := make([]sale, numSales)
	for i := range sales {
		s := rng.Uint64n(numStores)
		s = (s * s) / numStores // skew towards low store IDs
		sales[i] = sale{store: s + 1, cents: 100 + rng.Uint64n(100_000)}
	}

	// Group-by via a quadratic-probing table: the paper's pick for
	// write-heavy workloads, and an aggregation build is exactly that.
	// The build uses the single-probe GetOrPut: one probe sequence finds a
	// group's state index or claims the next one — no Get-then-Put double
	// walk for rows that open a new group.
	groups, err := table.Open(
		table.WithScheme(table.SchemeQP),
		table.WithCapacity(1<<12),
		table.WithMaxLoadFactor(0.7),
		table.WithHashFamily(hashfn.MultFamily{}),
		table.WithSeed(7),
	)
	if err != nil {
		panic(err)
	}
	var states []groupState

	for _, s := range sales {
		idx, existed, _ := groups.GetOrPut(s.store, uint64(len(states)))
		if existed {
			st := &states[idx]
			st.count++
			st.sum += s.cents
			if s.cents < st.min {
				st.min = s.cents
			}
			if s.cents > st.max {
				st.max = s.cents
			}
			continue
		}
		states = append(states, groupState{
			store: s.store, count: 1, sum: s.cents, min: s.cents, max: s.cents,
		})
	}

	// Report the top stores by revenue.
	sort.Slice(states, func(i, j int) bool { return states[i].sum > states[j].sum })
	fmt.Printf("aggregated %d sales into %d groups (table: %s at load factor %.2f)\n\n",
		numSales, len(states), groups.Name(), groups.LoadFactor())
	fmt.Printf("%-8s %10s %14s %10s %8s %8s\n", "store", "COUNT", "SUM", "AVG", "MIN", "MAX")
	for _, st := range states[:10] {
		fmt.Printf("%-8d %10d %14d %10d %8d %8d\n",
			st.store, st.count, st.sum, st.sum/st.count, st.min, st.max)
	}

	// Sanity: total of sums must equal total of inputs.
	var wantTotal, gotTotal uint64
	for _, s := range sales {
		wantTotal += s.cents
	}
	for _, st := range states {
		gotTotal += st.sum
	}
	if wantTotal != gotTotal {
		panic(fmt.Sprintf("aggregate mismatch: %d != %d", gotTotal, wantTotal))
	}
	fmt.Printf("\ntotal revenue check: %d == %d ✓\n", gotTotal, wantTotal)
}
