// Paralleljoin: the partition-based parallelism the paper argues for in
// §1 — "for partitioning-based parallelism, single-threaded performance is
// still a key parameter: each partition is an isolated unit of work" — as
// a complete query: join orders to customers with a partitioned parallel
// hash join, then aggregate revenue per customer segment with
// partition-local GROUP BYs merged at the end. No locks anywhere.
//
// Sizing comes from the library's advice, not hardcoded multipliers: the
// partition count is decision.ShardsFor (units of work with headroom over
// the cores) and the worker count is decision.WorkersFor / exec's
// GOMAXPROCS default (the pool that executes them). The same join runs at
// workers=1 and workers=N to show the morsel-driven core's scaling.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/agg"
	"repro/decision"
	"repro/exec"
	"repro/internal/prng"
	"repro/join"
	"repro/table"
)

func main() {
	const (
		numCustomers = 1 << 18
		numOrders    = 1 << 21
	)
	rng := prng.NewXoshiro256(11)

	customers := make(join.Relation, numCustomers)
	for i := range customers {
		// payload = segment id (0..9)
		customers[i] = join.Row{Key: uint64(i) + 1, Payload: uint64(i) % 10}
	}
	orders := make(join.Relation, numOrders)
	for i := range orders {
		// payload = order value in cents
		orders[i] = join.Row{Key: rng.Uint64n(numCustomers) + 1, Payload: 100 + rng.Uint64n(100_000)}
	}

	// Partitions are units of WORK (ShardsFor: power of two >= 2x the
	// thread count, so the pool always has a next partition to steal);
	// workers are the bounded pool executing them (WorkersFor: threads
	// clamped to GOMAXPROCS — here all cores).
	cores := runtime.GOMAXPROCS(0)
	partitions := decision.ShardsFor(cores)
	if partitions < 2 {
		partitions = 2
	}
	workers := decision.WorkersFor(cores)
	if workers < 1 {
		workers = 1 // single-core machine: WorkersFor advises "no pool"
	}
	fmt.Printf("join %d orders to %d customers: %d partitions on a %d-worker pool (%d CPUs)\n",
		numOrders, numCustomers, partitions, workers, runtime.NumCPU())

	// workers=1 vs workers=N over the same partitioned join, doing
	// IDENTICAL work: both runs aggregate every match into a fresh
	// mutex-guarded segment GROUP BY (segments are tiny; for large group
	// counts you would keep one agg.GroupBy per partition and Merge, or
	// aggregate columns with AddParallel as below), so the worker count is
	// the only difference between the timings.
	var matches int
	var elapsed [2]time.Duration
	var results [2]*agg.GroupBy
	for i, w := range []int{1, workers} {
		g := agg.MustNewGroupBy(agg.Config{ExpectedGroups: 10, Seed: 5})
		var mu sync.Mutex
		start := time.Now()
		m, err := join.PartitionedHashJoin(customers, orders, partitions,
			join.Config{Scheme: table.SchemeRH, LoadFactor: 0.7, Workers: w, Seed: 42},
			func(key, segment, cents uint64) {
				mu.Lock()
				g.Add(segment, cents)
				mu.Unlock()
			})
		if err != nil {
			panic(err)
		}
		elapsed[i] = time.Since(start)
		results[i] = g
		if i == 0 {
			matches = m
		} else if m != matches {
			panic(fmt.Sprintf("worker counts disagree: %d != %d matches", m, matches))
		}
		fmt.Printf("  workers=%-2d %d matches in %7v (%.1f M probes/s)\n",
			w, m, elapsed[i].Round(time.Millisecond), float64(numOrders)/1e6/elapsed[i].Seconds())
	}
	if workers > 1 {
		fmt.Printf("  speedup: %.2fx with %d workers\n", elapsed[0].Seconds()/elapsed[1].Seconds(), workers)
	}
	bySegment := results[1]

	fmt.Printf("\n%-8s %12s %16s %12s\n", "segment", "orders", "revenue", "avg")
	var totalOrders, totalRevenue uint64
	for seg := uint64(0); seg < 10; seg++ {
		if s, ok := bySegment.Get(seg); ok {
			fmt.Printf("%-8d %12d %16d %12.0f\n", seg, s.Count, s.Sum, s.Avg())
			totalOrders += s.Count
			totalRevenue += s.Sum
		}
	}
	if totalOrders != uint64(matches) {
		panic(fmt.Sprintf("aggregation lost matches: %d != %d", totalOrders, matches))
	}
	fmt.Printf("\ntotal: %d orders, %d cents revenue ✓\n", totalOrders, totalRevenue)

	// The aggregation handle's observability snapshot: probe health of the
	// group index behind the GROUP BY.
	st := bySegment.Stats()
	fmt.Printf("group index: %s, %d groups, mean probe %.2f, %.1f KB\n",
		bySegment.TableName(), st.Len, st.MeanProbe, float64(st.MemoryBytes)/1024)

	// The same join through the shared-memory sharded engine: no up-front
	// radix partitioning — the pool's workers claim input morsels and the
	// engine routes rows to shards under per-shard locks, resizing shards
	// incrementally if the build outgrows them.
	var shared int64
	start := time.Now()
	sharedMatches, err := join.SharedHashJoin(customers, orders, workers,
		join.Config{Scheme: table.SchemeRH, LoadFactor: 0.7, Seed: 42},
		func(key, segment, cents uint64) { atomic.AddInt64(&shared, int64(cents)) })
	if err != nil {
		panic(err)
	}
	sharedElapsed := time.Since(start)
	fmt.Printf("\nshared engine (%d workers): %d matches in %v (%.1f M probes/s)\n",
		workers, sharedMatches, sharedElapsed.Round(time.Millisecond),
		float64(numOrders)/1e6/sharedElapsed.Seconds())
	if sharedMatches != matches {
		panic(fmt.Sprintf("shared join disagrees: %d != %d", sharedMatches, matches))
	}
	if shared != int64(totalRevenue) {
		panic(fmt.Sprintf("shared join revenue disagrees: %d != %d", shared, totalRevenue))
	}

	// And the missing GROUP BY driver the exec core adds: the order-value
	// column aggregated by segment with per-worker pre-aggregation —
	// identical states to the serial build, no mutex in the hot loop.
	segs := make([]uint64, numOrders)
	cents := make([]uint64, numOrders)
	for i, o := range orders {
		segs[i] = (o.Key - 1) % 10
		cents[i] = o.Payload
	}
	parAgg := agg.MustNewGroupBy(agg.Config{ExpectedGroups: 10, Seed: 5})
	start = time.Now()
	if err := parAgg.AddParallel(exec.Config{Workers: workers}, segs, cents); err != nil {
		panic(err)
	}
	fmt.Printf("parallel GROUP BY over %d rows: %d segments in %v (%d workers)\n",
		numOrders, parAgg.NumGroups(), time.Since(start).Round(time.Millisecond), workers)
}
