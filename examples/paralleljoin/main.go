// Paralleljoin: the partition-based parallelism the paper argues for in
// §1 — "for partitioning-based parallelism, single-threaded performance is
// still a key parameter: each partition is an isolated unit of work" — as
// a complete query: join orders to customers with a partitioned parallel
// hash join, then aggregate revenue per customer segment with
// partition-local GROUP BYs merged at the end. No locks anywhere.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/agg"
	"repro/internal/prng"
	"repro/join"
	"repro/table"
)

func main() {
	const (
		numCustomers = 1 << 18
		numOrders    = 1 << 21
	)
	rng := prng.NewXoshiro256(11)

	customers := make(join.Relation, numCustomers)
	for i := range customers {
		// payload = segment id (0..9)
		customers[i] = join.Row{Key: uint64(i) + 1, Payload: uint64(i) % 10}
	}
	orders := make(join.Relation, numOrders)
	for i := range orders {
		// payload = order value in cents
		orders[i] = join.Row{Key: rng.Uint64n(numCustomers) + 1, Payload: 100 + rng.Uint64n(100_000)}
	}

	partitions := runtime.GOMAXPROCS(0) * 2
	fmt.Printf("join %d orders to %d customers across %d partitions (%d CPUs)\n",
		numOrders, numCustomers, partitions, runtime.NumCPU())

	// Partition-local aggregation states, merged after the barrier: the
	// emit callback runs concurrently, so each goroutine... here we use a
	// mutex-guarded per-segment array since segments are tiny; for large
	// group counts you would keep one agg.GroupBy per partition and Merge.
	var mu sync.Mutex
	bySegment := agg.MustNewGroupBy(agg.Config{ExpectedGroups: 10, Seed: 5})

	start := time.Now()
	matches, err := join.PartitionedHashJoin(customers, orders, partitions,
		join.Config{Scheme: table.SchemeRH, LoadFactor: 0.7, Seed: 42},
		func(key, segment, cents uint64) {
			mu.Lock()
			bySegment.Add(segment, cents)
			mu.Unlock()
		})
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("%d matches in %v (%.1f M probes/s end to end)\n\n",
		matches, elapsed.Round(time.Millisecond), float64(numOrders)/1e6/elapsed.Seconds())

	fmt.Printf("%-8s %12s %16s %12s\n", "segment", "orders", "revenue", "avg")
	var totalOrders, totalRevenue uint64
	for seg := uint64(0); seg < 10; seg++ {
		if s, ok := bySegment.Get(seg); ok {
			fmt.Printf("%-8d %12d %16d %12.0f\n", seg, s.Count, s.Sum, s.Avg())
			totalOrders += s.Count
			totalRevenue += s.Sum
		}
	}
	if totalOrders != uint64(matches) {
		panic(fmt.Sprintf("aggregation lost matches: %d != %d", totalOrders, matches))
	}
	fmt.Printf("\ntotal: %d orders, %d cents revenue ✓\n", totalOrders, totalRevenue)

	// The aggregation handle's observability snapshot: probe health of the
	// group index behind the GROUP BY.
	st := bySegment.Stats()
	fmt.Printf("group index: %s, %d groups, mean probe %.2f, %.1f KB\n",
		bySegment.TableName(), st.Len, st.MeanProbe, float64(st.MemoryBytes)/1024)

	// The same join through the shared-memory sharded engine: no up-front
	// radix partitioning — workers stream contiguous input chunks and the
	// engine routes rows to shards under per-shard locks, resizing shards
	// incrementally if the build outgrows them.
	workers := runtime.GOMAXPROCS(0)
	var shared int64
	start = time.Now()
	sharedMatches, err := join.SharedHashJoin(customers, orders, workers,
		join.Config{Scheme: table.SchemeRH, LoadFactor: 0.7, Seed: 42},
		func(key, segment, cents uint64) { atomic.AddInt64(&shared, int64(cents)) })
	if err != nil {
		panic(err)
	}
	sharedElapsed := time.Since(start)
	fmt.Printf("\nshared engine (%d workers): %d matches in %v (%.1f M probes/s)\n",
		workers, sharedMatches, sharedElapsed.Round(time.Millisecond),
		float64(numOrders)/1e6/sharedElapsed.Seconds())
	if sharedMatches != matches {
		panic(fmt.Sprintf("shared join disagrees: %d != %d", sharedMatches, matches))
	}
	if shared != int64(totalRevenue) {
		panic(fmt.Sprintf("shared join revenue disagrees: %d != %d", shared, totalRevenue))
	}
}
