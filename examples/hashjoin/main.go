// Hashjoin: an in-memory equi-join — the query-processing use case that
// motivates the paper. We join orders against customers with the classic
// build/probe pattern and compare build+probe wall time across the paper's
// hashing schemes, illustrating its point that the "right" table depends on
// the workload: the build side is written once and probed many times, i.e.
// a WORM workload.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/prng"
	"repro/table"
)

// customer is the build-side relation: customerID -> discount percent.
// order is the probe side: each order references a customer; a fraction of
// orders reference unknown customers (simulating an outer relation with
// dangling foreign keys), which exercises unsuccessful probes — dimension 5
// of the paper.
func main() {
	const (
		numCustomers   = 1 << 20
		numOrders      = 4 << 20
		danglingEvery  = 10 // every 10th order has no matching customer
		buildSlots     = 1 << 21
		targetCapacity = buildSlots
	)

	rng := prng.NewXoshiro256(7)
	customerIDs := make([]uint64, numCustomers)
	for i := range customerIDs {
		customerIDs[i] = uint64(i) + 1 // dense keys: generated primary keys
	}
	orders := make([]uint64, numOrders)
	for i := range orders {
		if i%danglingEvery == 0 {
			orders[i] = uint64(numCustomers) + 1 + rng.Uint64n(numCustomers)
		} else {
			orders[i] = customerIDs[rng.Intn(numCustomers)]
		}
	}

	fmt.Printf("join: %d orders ⋈ %d customers (load factor %.2f, %d%% dangling)\n\n",
		numOrders, numCustomers, float64(numCustomers)/targetCapacity, 100/danglingEvery)
	fmt.Printf("%-12s %12s %12s %14s\n", "scheme", "build [ms]", "probe [ms]", "matches")

	var wantMatches int64 = -1
	for _, scheme := range []table.Scheme{
		table.SchemeLP, table.SchemeQP, table.SchemeRH,
		table.SchemeCuckooH4, table.SchemeChained24,
	} {
		build := table.MustOpen(
			table.WithScheme(scheme),
			table.WithCapacity(targetCapacity),
			table.WithMaxLoadFactor(0), // pre-sized: the WORM contract
			table.WithSeed(42),
		)

		start := time.Now()
		for _, id := range customerIDs {
			if _, err := build.Put(id, id%50); err != nil { // discount percent
				log.Fatal(err)
			}
		}
		buildMS := time.Since(start).Seconds() * 1000

		var matches int64
		var totalDiscount uint64
		start = time.Now()
		for _, o := range orders {
			if d, ok := build.Get(o); ok {
				matches++
				totalDiscount += d
			}
		}
		probeMS := time.Since(start).Seconds() * 1000

		if wantMatches < 0 {
			wantMatches = matches
		} else if matches != wantMatches {
			log.Fatalf("%s produced %d matches, others produced %d", scheme, matches, wantMatches)
		}
		fmt.Printf("%-12s %12.1f %12.1f %14d\n", scheme, buildMS, probeMS, matches)
	}
	fmt.Println("\n(build = WORM write phase; probe = read phase with ~10% unsuccessful lookups)")
}
