// Pipeline: the streaming operator chain end to end — the same
// TPC-H-flavored segment-revenue query (filter orders, join customers,
// group by segment) run two ways over the same data:
//
//   - streamed: the pipe chain — the price predicate pushed into the
//     order scan, join matches projected straight into per-worker
//     group-by locals, no intermediate relation anywhere;
//   - materialized: the one-shot composition — filter into a copied
//     relation, join into materialized columns, aggregate the columns.
//
// Both are the bench package's query-set code verbatim, so the numbers
// printed here are the same comparison the BENCH_pipeline.json CI
// artifact tracks. Worker count comes from the library's own advice
// (decision.WorkersFor over GOMAXPROCS), not a hardcoded constant.
package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/bench"
	"repro/decision"
	"repro/pipe"
)

const (
	numCustomers = 1 << 16
	numOrders    = 1 << 20
	cut          = bench.PipelineMaxCents / 2 // keep ~half the orders
)

// run times one query form and reports rows/sec over the order count and
// bytes allocated per query (TotalAlloc delta; cumulative, so GC cannot
// hide a transient intermediate).
func run(label string, query func() error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := query(); err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	rowsPerSec := float64(numOrders) / elapsed.Seconds()
	fmt.Printf("  %-14s %8.1f ms   %6.1f M rows/s   %8.2f MB allocated\n",
		label, float64(elapsed.Microseconds())/1000, rowsPerSec/1e6,
		float64(after.TotalAlloc-before.TotalAlloc)/(1<<20))
}

func main() {
	cores := runtime.GOMAXPROCS(0)
	workers := decision.WorkersFor(cores)
	if workers < 1 {
		workers = 1 // single-core machine: WorkersFor advises "no pool"
	}
	fmt.Printf("pipeline demo: %d customers, %d orders, cut=%d cents, workers=%d (decision.WorkersFor(%d))\n\n",
		numCustomers, numOrders, cut, workers, cores)

	d := bench.NewPipelineData(numCustomers, numOrders, 42)
	if err := bench.CheckPipelineEquivalence(d, cut, workers); err != nil {
		panic(err)
	}
	fmt.Println("self-check: streamed ≡ materialized on both queries ✓")

	for _, w := range []int{1, workers} {
		fmt.Printf("\nSELECT segment, SUM(cents) ... GROUP BY segment  (workers=%d)\n", w)
		cfg := pipe.Config{Workers: w}
		run("streamed", func() error {
			g, err := bench.SegmentRevenueStreaming(d, cut, cfg)
			if err != nil {
				return err
			}
			if g.NumGroups() != bench.PipelineSegments {
				return fmt.Errorf("%d groups, want %d", g.NumGroups(), bench.PipelineSegments)
			}
			return nil
		})
		run("materialized", func() error {
			_, err := bench.SegmentRevenueMaterialized(d, cut, w)
			return err
		})
		if w == workers && workers == 1 {
			break // single-core: both passes are the same configuration
		}
	}

	fmt.Printf("\nSELECT COUNT(*) ... GROUP BY custkey HAVING COUNT(*) >= 3  (workers=%d)\n", workers)
	cfg := pipe.Config{Workers: workers}
	run("streamed", func() error {
		_, err := bench.RepeatCustomersStreaming(d, 3, cfg)
		return err
	})
	run("materialized", func() error {
		_, err := bench.RepeatCustomersMaterialized(d, 3, workers)
		return err
	})

	// The same streamed query once more with telemetry attached: the
	// per-operator counters land in the obs registry exactly like the
	// /metrics endpoint would serve them.
	m := pipe.NewMetrics(workers)
	if _, err := bench.SegmentRevenueStreaming(d, cut, pipe.Config{Workers: workers, Metrics: m}); err != nil {
		panic(err)
	}
	probe := m.JoinProbe()
	fmt.Printf("\ntelemetry (streamed run): scan %d rows in → %d out (pushdown dropped %d); probe %d in → %d matches\n",
		m.Scan().RowsIn.Value(), m.Scan().RowsOut.Value(),
		m.Scan().RowsIn.Value()-m.Scan().RowsOut.Value(),
		probe.RowsIn.Value(), probe.RowsOut.Value())
}
