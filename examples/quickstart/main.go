// Quickstart: open a table through the workload-aware façade, insert,
// look up, upsert, delete, iterate, and read the stats — then let the
// paper's Figure 8 decision graph pick the scheme from a workload
// description. One API, any ⟨scheme, hash function⟩ combination behind it.
package main

import (
	"fmt"
	"log"

	"repro/table"
)

func main() {
	// A Robin Hood table with multiply-shift hashing — the paper's
	// all-rounder — growing at 85% occupancy. These are Open's defaults;
	// the options spell them out.
	m, err := table.Open(
		table.WithScheme(table.SchemeRH),
		table.WithCapacity(1<<10),
		table.WithMaxLoadFactor(0.85),
		table.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Insert a million key/value pairs.
	const n = 1_000_000
	for i := uint64(1); i <= n; i++ {
		if _, err := m.Put(i, i*i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("table: %s, %d entries in %d slots (load factor %.2f, %.1f MB)\n",
		m.Name(), m.Len(), m.Capacity(), m.LoadFactor(),
		float64(m.MemoryFootprint())/(1<<20))

	// Point lookups.
	if v, ok := m.Get(123456); !ok || v != 123456*123456 {
		log.Fatalf("Get(123456) = %d,%v", v, ok)
	}
	if _, ok := m.Get(n + 1); ok {
		log.Fatal("found a key that was never inserted")
	}

	// Single-probe read-modify-write: GetOrPut finds or inserts in one
	// probe sequence, Upsert folds a function over the stored value.
	if v, loaded, _ := m.GetOrPut(7, 0); !loaded || v != 49 {
		log.Fatalf("GetOrPut(7) = %d,%v", v, loaded)
	}
	v, _ := m.Upsert(7, func(old uint64, exists bool) uint64 { return old + 1 })
	fmt.Printf("after upsert: m[7] = %d\n", v)

	// Deletes.
	if !m.Delete(7) {
		log.Fatal("Delete(7) failed")
	}
	fmt.Printf("after delete: %d entries\n", m.Len())

	// Iterate with a Go 1.23 range-over-func iterator (order unspecified).
	var sum uint64
	for k := range m.All() {
		sum += k
	}
	fmt.Printf("sum of keys: %d\n", sum)

	// Observability: probe and displacement measures, rehashes, memory.
	st := m.Stats()
	fmt.Printf("stats: mean probe %.2f, max probe %d, rehashes %d\n",
		st.MeanProbe, st.MaxProbe, st.Rehashes)

	// Or describe the workload and let Figure 8 choose the scheme.
	w, err := table.Open(table.WithWorkload(table.Workload{
		LoadFactor:      0.9,
		UnsuccessfulPct: 25,
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 8 picked %s for a 90%%-full read-mostly index:\n", w.Name())
	for i, step := range w.DecisionPath() {
		fmt.Printf("  %d. %s\n", i+1, step)
	}

	// Every scheme in the paper is one option away.
	for _, s := range table.Schemes() {
		alt, err := table.Open(table.WithScheme(s), table.WithCapacity(64))
		if err != nil {
			log.Fatal(err)
		}
		alt.Put(1, 2)
		if v, ok := alt.Get(1); !ok || v != 2 {
			log.Fatalf("%s misbehaved", s)
		}
		fmt.Printf("  %-12s ok (footprint %6.1f KB at capacity %d)\n",
			alt.Scheme(), float64(alt.MemoryFootprint())/1024, alt.Capacity())
	}

	// Need shared-memory concurrency? Stripe the handle across partitions
	// and use it from any number of goroutines.
	c, _ := table.Open(table.WithScheme(table.SchemeRH), table.WithPartitions(8))
	c.Put(1, 1)
	fmt.Printf("\nconcurrent handle: %s\n", c.Name())
}
