// Quickstart: build a hash table, insert, look up, delete, iterate — and
// see why the paper calls hashing a white box: the same operations run
// against any ⟨scheme, hash function⟩ combination behind the table.Map
// interface.
package main

import (
	"fmt"
	"log"

	"repro/hashfn"
	"repro/table"
)

func main() {
	// A Robin Hood table with multiply-shift hashing — the paper's
	// all-rounder recommendation — growing at 85% occupancy.
	m := table.NewRobinHood(table.Config{
		InitialCapacity: 1 << 10,
		MaxLoadFactor:   0.85,
		Family:          hashfn.MultFamily{},
		Seed:            42,
	})

	// Insert a million key/value pairs.
	const n = 1_000_000
	for i := uint64(1); i <= n; i++ {
		m.Put(i, i*i)
	}
	fmt.Printf("table: %s%s, %d entries in %d slots (load factor %.2f, %.1f MB)\n",
		m.Name(), m.HashName(), m.Len(), m.Capacity(), m.LoadFactor(),
		float64(m.MemoryFootprint())/(1<<20))

	// Point lookups.
	if v, ok := m.Get(123456); !ok || v != 123456*123456 {
		log.Fatalf("Get(123456) = %d,%v", v, ok)
	}
	if _, ok := m.Get(n + 1); ok {
		log.Fatal("found a key that was never inserted")
	}

	// Updates are upserts.
	m.Put(7, 999)
	v, _ := m.Get(7)
	fmt.Printf("after update: m[7] = %d\n", v)

	// Deletes.
	if !m.Delete(7) {
		log.Fatal("Delete(7) failed")
	}
	fmt.Printf("after delete: %d entries\n", m.Len())

	// Iterate (order is unspecified).
	var sum uint64
	m.Range(func(k, v uint64) bool {
		sum += k
		return true
	})
	fmt.Printf("sum of keys: %d\n", sum)

	// Every scheme in the paper is one constructor away.
	for _, s := range table.Schemes() {
		alt := table.MustNew(s, table.Config{InitialCapacity: 64, MaxLoadFactor: 0.9})
		alt.Put(1, 2)
		if v, ok := alt.Get(1); !ok || v != 2 {
			log.Fatalf("%s misbehaved", s)
		}
		fmt.Printf("  %-12s ok (footprint %6.1f KB at capacity %d)\n",
			alt.Name(), float64(alt.MemoryFootprint())/1024, alt.Capacity())
	}
}
