// IPindex: a point-query index over grid-distributed keys — the paper's
// "think of IP addresses" distribution — that lets the Figure 8 decision
// graph pick its own hash table from a workload description, then verifies
// the choice by racing it against the alternatives.
package main

import (
	"fmt"
	"time"

	"repro/decision"
	"repro/dist"
	"repro/table"
)

func main() {
	const (
		capacity = 1 << 20
		alpha    = 0.9 // memory is tight: we must run the table nearly full
		unsucc   = 30  // ~30% of probed addresses are unknown
	)
	n := capacity * 9 / 10 // alpha * capacity

	// Describe the workload and let the paper's decision graph choose.
	w := decision.Workload{
		LoadFactor:      alpha,
		UnsuccessfulPct: unsucc,
		WriteHeavy:      false,
		Dynamic:         false,
		Dense:           false, // grid is dense-like per byte, not as an integer sequence
	}
	choice := decision.MustRecommend(w)
	fmt.Printf("workload: static index, load factor %.0f%%, %d%% unknown probes\n", alpha*100, unsucc)
	fmt.Printf("decision graph recommends: %s\n", choice.Label())
	for i, step := range choice.Path {
		fmt.Printf("  %d. %s\n", i+1, step)
	}

	// Build the key set: grid distribution (every byte in [1:14]).
	gen := dist.New(dist.Grid, 2024)
	keys := dist.Shuffled(gen.Keys(n), 1)
	probes := make([]uint64, 0, n)
	miss := n * unsucc / 100
	for i := 0; i < n-miss; i++ {
		probes = append(probes, keys[i])
	}
	probes = append(probes, gen.AbsentKeys(n, miss)...)
	probes = dist.Shuffled(probes, 2)

	// Race the recommendation against every other scheme on this exact
	// workload.
	fmt.Printf("\n%-12s %14s %14s\n", "scheme", "build [Mops]", "probe [Mops]")
	type rowResult struct {
		label string
		probe float64
	}
	var best rowResult
	for _, s := range []table.Scheme{
		table.SchemeLP, table.SchemeQP, table.SchemeRH, table.SchemeCuckooH4,
	} {
		m := table.MustOpen(
			table.WithScheme(s),
			table.WithCapacity(capacity),
			table.WithMaxLoadFactor(0), // memory is tight: fixed capacity
			table.WithSeed(11),
		)
		start := time.Now()
		for i, k := range keys {
			if _, err := m.Put(k, uint64(i)); err != nil {
				panic(fmt.Errorf("%s: insert %d: %w", s, k, err))
			}
		}
		buildMops := float64(n) / 1e6 / time.Since(start).Seconds()

		hits := 0
		start = time.Now()
		for _, k := range probes {
			if _, ok := m.Get(k); ok {
				hits++
			}
		}
		probeMops := float64(len(probes)) / 1e6 / time.Since(start).Seconds()
		if hits != n-miss {
			panic(fmt.Sprintf("%s: %d hits, want %d", s, hits, n-miss))
		}

		marker := ""
		if string(s)+"Mult" == choice.Label() || (s == table.SchemeCuckooH4 && choice.Label() == "CH4Mult") {
			marker = "  <- recommended"
		}
		fmt.Printf("%-12s %14.1f %14.1f%s\n", s, buildMops, probeMops, marker)
		if probeMops > best.probe {
			best = rowResult{string(s), probeMops}
		}
	}
	fmt.Printf("\nfastest probe side in this run: %s\n", best.label)
}
