package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]int{1, 2, 3, 4})
	if s.Count != 4 || s.Total != 10 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summarize = %+v", s)
	}
	if math.Abs(s.Variance-1.25) > 1e-12 {
		t.Fatalf("Variance = %v, want 1.25", s.Variance)
	}
	if math.Abs(s.StdDev-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
}

func TestSummarizeEmptyAndSingleton(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty Summarize = %+v", s)
	}
	s := Summarize([]int{7})
	if s.Count != 1 || s.Mean != 7 || s.Variance != 0 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("singleton Summarize = %+v", s)
	}
}

func TestSummarizeQuick(t *testing.T) {
	prop := func(raw []uint8) bool {
		xs := make([]int, len(raw))
		total := 0
		for i, r := range raw {
			xs[i] = int(r)
			total += int(r)
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.Count == 0
		}
		if s.Total != uint64(total) || s.Count != len(xs) {
			return false
		}
		return s.Min <= int(s.Mean+1) && s.Max >= int(s.Mean)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{0, 1, 1, 5, 99}, 4)
	if h[0] != 1 || h[1] != 2 || h[2] != 0 || h[3] != 2 {
		t.Fatalf("Histogram = %v", h)
	}
	if h := Histogram(nil, 0); len(h) != 1 {
		t.Fatalf("degenerate Histogram = %v", h)
	}
}

// TestKnuthFormulas pins the §7 arithmetic: at alpha=0.9 the expected
// unsuccessful probe length is ~50.5.
func TestKnuthFormulas(t *testing.T) {
	if got := LPExpectedProbesUnsuccessful(0.9); math.Abs(got-50.5) > 0.01 {
		t.Fatalf("unsuccessful probes at 0.9 = %v, want 50.5", got)
	}
	if got := LPExpectedProbesSuccessful(0.9); math.Abs(got-5.5) > 0.01 {
		t.Fatalf("successful probes at 0.9 = %v, want 5.5", got)
	}
	if got := LPExpectedProbesSuccessful(0.5); math.Abs(got-1.5) > 0.01 {
		t.Fatalf("successful probes at 0.5 = %v, want 1.5", got)
	}
	if got := LPExpectedDisplacement(0.9); math.Abs(got-4.5) > 0.01 {
		t.Fatalf("displacement at 0.9 = %v, want 4.5", got)
	}
	// Monotonicity in alpha.
	prev := 0.0
	for a := 0.1; a < 0.95; a += 0.05 {
		cur := LPExpectedProbesUnsuccessful(a)
		if cur <= prev {
			t.Fatalf("unsuccessful probe length not increasing at alpha=%v", a)
		}
		prev = cur
	}
}

// TestLayoutModel pins the paper's cache-line counting: ceil(50.5/4)=13 vs
// ceil(50.5/8)=7 and the resulting ~1.85 ratio at alpha=0.9.
func TestLayoutModel(t *testing.T) {
	p := LPExpectedProbesUnsuccessful(0.9)
	if got := CacheLinesAoS(p); got != 13 {
		t.Fatalf("AoS lines = %v, want 13", got)
	}
	if got := CacheLinesSoA(p); got != 7 {
		t.Fatalf("SoA lines = %v, want 7", got)
	}
	ratio := LayoutLineRatio(0.9)
	if math.Abs(ratio-13.0/7.0) > 1e-9 {
		t.Fatalf("ratio = %v, want 13/7", ratio)
	}
	if ratio >= 2 {
		t.Fatal("the paper's point is that the ratio is below the naive 2x")
	}
}

func TestExpectedCollisionRate(t *testing.T) {
	// n << m: collisions vanish.
	if r := ExpectedCollisionRate(10, 1<<20); r > 0.001 {
		t.Fatalf("tiny load collision rate = %v", r)
	}
	// The paper's §4.5/§5.1 data point: sparse keys at 45% load factor,
	// directory of l/2 slots -> n/m = 0.9, observed collision rate ~34%.
	rate := ExpectedCollisionRate(9*(1<<20)/10, 1<<20)
	if math.Abs(rate-0.34) > 0.02 {
		t.Fatalf("collision rate at n/m=0.9 = %v, want ~0.34", rate)
	}
	if ExpectedCollisionRate(0, 100) != 0 {
		t.Fatal("no keys, no collisions")
	}
}

func TestExpectedChainLength(t *testing.T) {
	if ExpectedChainLength(0, 10) != 0 {
		t.Fatal("empty chain length should be 0")
	}
	// The paper's §5.1 argument: at low load factors chains average < 2.
	l := ExpectedChainLength(1<<19, 1<<20) // n/m = 0.5
	if l < 1 || l >= 1.5 {
		t.Fatalf("chain length at n/m=0.5 = %v, want in [1,1.5)", l)
	}
	// Chain length grows with load.
	if ExpectedChainLength(1<<21, 1<<20) <= l {
		t.Fatal("chain length must grow with n/m")
	}
}

func TestQuantileExact(t *testing.T) {
	xs := []int{9, 1, 7, 3, 5} // sorted: 1 3 5 7 9
	for _, tt := range []struct {
		q    float64
		want int
	}{
		{0, 1}, {0.25, 3}, {0.5, 5}, {0.75, 7}, {1, 9},
		{-0.5, 1}, {1.5, 9}, // clamped
		{0.6, 5}, // round(0.6*4)=2
	} {
		if got := Quantile(xs, tt.q); got != tt.want {
			t.Errorf("Quantile(%v, %v) = %d, want %d", xs, tt.q, got, tt.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %d, want 0", got)
	}
	// Quantile must not mutate its input.
	if xs[0] != 9 || xs[4] != 5 {
		t.Errorf("Quantile sorted its input in place: %v", xs)
	}
}

func TestCountsQuantileAgreesWithExact(t *testing.T) {
	// With unit-width buckets (value == bucket index), the bucketed
	// quantile must be exactly the sort-based oracle.
	xs := []int{0, 0, 1, 2, 2, 2, 3, 7, 7, 9, 9, 9, 9}
	counts := Histogram(xs, 10)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if got, want := CountsQuantile(counts, q), Quantile(xs, q); got != want {
			t.Errorf("CountsQuantile(q=%v) = %d, exact %d", q, got, want)
		}
	}
	if got := CountsQuantile(nil, 0.5); got != 0 {
		t.Errorf("CountsQuantile(nil) = %d, want 0", got)
	}
	if got := CountsQuantile([]int{0, 0, 0}, 0.5); got != 0 {
		t.Errorf("CountsQuantile(zero counts) = %d, want 0", got)
	}
}

func TestHistogramClampsNegatives(t *testing.T) {
	// Negative values are clamped into bucket 0, not dropped: the bucket
	// count at 0 carries both the true zeros and the clamped negatives.
	counts := Histogram([]int{-5, -1, 0, 2, 11}, 10)
	if counts[0] != 3 {
		t.Fatalf("bucket 0 = %d, want 3 (one zero + two clamped negatives)", counts[0])
	}
	if counts[2] != 1 || counts[9] != 1 {
		t.Fatalf("counts = %v, want value 2 in bucket 2 and overflow 11 in bucket 9", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 5 {
		t.Fatalf("clamping dropped samples: total %d, want 5", total)
	}
}
