// Package stats provides the analysis instruments behind the paper's
// discussion sections: displacement and cluster summaries for the probing
// schemes, chain statistics for chained hashing, Knuth's expected probe
// lengths for linear probing, and the §7 cache-line cost model for the
// AoS-vs-SoA layout comparison. It also hosts the quantile helpers the
// obs telemetry package builds its histogram estimates on: Quantile is
// the exact sort-based oracle, CountsQuantile the bucketed form shared
// with obs.Snapshot.
package stats

import (
	"math"
	"sort"
)

// Summary aggregates a sample of non-negative integers (displacements,
// cluster lengths, chain lengths, ...).
type Summary struct {
	Count    int
	Total    uint64
	Mean     float64
	Variance float64 // population variance
	StdDev   float64
	Min      int
	Max      int
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []int) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Total += uint64(x)
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = float64(s.Total) / float64(s.Count)
	var ss float64
	for _, x := range xs {
		d := float64(x) - s.Mean
		ss += d * d
	}
	s.Variance = ss / float64(s.Count)
	s.StdDev = math.Sqrt(s.Variance)
	return s
}

// Quantile returns the exact q-quantile of xs under the nearest-rank
// convention: the element at index round(q*(len(xs)-1)) of the sorted
// sample. q is clamped to [0, 1]; an empty sample yields 0. It sorts a
// copy (O(n log n)) — this is the oracle the bucketed estimators
// (CountsQuantile, obs.Snapshot.Quantile) are tested against, not a hot
// path.
func Quantile(xs []int, q float64) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]int, len(xs))
	copy(sorted, xs)
	sort.Ints(sorted)
	return sorted[quantileRank(len(sorted), q)]
}

// quantileRank maps a quantile to its nearest-rank index in a sorted
// sample of n elements: round(q*(n-1)), with q clamped to [0, 1]. Both
// Quantile and CountsQuantile share it, so the exact and bucketed
// estimators agree on which ranked element a quantile names.
func quantileRank(n int, q float64) int {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return int(math.Round(q * float64(n-1)))
}

// CountsQuantile returns the index of the bucket holding the q-quantile
// element of a bucketed sample (a Histogram result, or any counts-per-
// bucket slice): the bucket containing the element of nearest rank
// round(q*(n-1)), where n is the total count. An empty sample yields 0.
// The caller maps the index back to a value using its own bucket bounds;
// the estimation error is therefore the width of that bucket.
func CountsQuantile(counts []int, q float64) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	rank := quantileRank(n, q)
	cum := 0
	for i, c := range counts {
		cum += c
		if rank < cum {
			return i
		}
	}
	return len(counts) - 1
}

// Histogram buckets xs into counts[0..max] by value, up to cap buckets;
// values >= cap land in the last bucket and NEGATIVE values are clamped
// into bucket 0 — a sample of displacements or latencies should never be
// negative, so rather than panicking or silently dropping, a negative
// value is counted as 0 (callers that care can detect it by comparing
// counts[0] against the non-negative zeros of their sample). It returns
// the counts slice.
func Histogram(xs []int, buckets int) []int {
	if buckets <= 0 {
		buckets = 1
	}
	counts := make([]int, buckets)
	for _, x := range xs {
		if x >= buckets {
			x = buckets - 1
		}
		if x < 0 {
			x = 0
		}
		counts[x]++
	}
	return counts
}

// LPExpectedProbesSuccessful is Knuth's expected number of probed slots for
// a successful linear-probing search at load factor alpha under a truly
// random hash function: (1 + 1/(1-alpha)) / 2.
func LPExpectedProbesSuccessful(alpha float64) float64 {
	return 0.5 * (1 + 1/(1-alpha))
}

// LPExpectedProbesUnsuccessful is Knuth's expected number of probed slots
// for an unsuccessful linear-probing search at load factor alpha:
// (1 + 1/(1-alpha)^2) / 2. The paper uses this (§7) to derive an average
// unsuccessful probe length of ~50.5 at alpha = 0.9.
func LPExpectedProbesUnsuccessful(alpha float64) float64 {
	d := 1 - alpha
	return 0.5 * (1 + 1/(d*d))
}

// LPExpectedDisplacement is the expected displacement of an entry (probes
// to find it minus the probe of its home slot): Knuth successful probes - 1.
func LPExpectedDisplacement(alpha float64) float64 {
	return LPExpectedProbesSuccessful(alpha) - 1
}

// ---------------------------------------------------------------------------
// §7 layout cache-line cost model
// ---------------------------------------------------------------------------

// Slots per 64-byte cache line in the two layouts: AoS packs four 16-byte
// key/value pairs per line, SoA packs eight 8-byte keys per line of the key
// array.
const (
	AoSSlotsPerLine = 4
	SoASlotsPerLine = 8
)

// CacheLinesAoS returns the number of cache lines an AoS probe sequence of
// the given length touches, as whole lines: ceil(probes/4). (The first
// probe is assumed line-aligned, as in the paper's back-of-envelope model.)
func CacheLinesAoS(probes float64) float64 {
	return math.Ceil(probes / AoSSlotsPerLine)
}

// CacheLinesSoA returns the number of key-array cache lines an SoA probe
// sequence touches: ceil(probes/8).
func CacheLinesSoA(probes float64) float64 {
	return math.Ceil(probes / SoASlotsPerLine)
}

// LayoutLineRatio returns the AoS/SoA ratio of touched cache lines for an
// unsuccessful lookup at load factor alpha. The paper's point (§7): at
// alpha = 0.9 the average unsuccessful probe length is ~50.5, giving
// ceil(50.5/4)=13 vs ceil(50.5/8)=7 — a ratio of ~1.85, not the naive 2 —
// one of the three reasons SoA's high-load-factor advantage is smaller than
// expected.
func LayoutLineRatio(alpha float64) float64 {
	p := LPExpectedProbesUnsuccessful(alpha)
	return CacheLinesAoS(p) / CacheLinesSoA(p)
}

// ---------------------------------------------------------------------------
// Chained hashing expectations
// ---------------------------------------------------------------------------

// ExpectedCollisionRate returns the expected fraction of entries that do
// NOT occupy their bucket alone-or-first — i.e. the fraction overflowing to
// chains — when n keys are hashed uniformly into m buckets: 1 - m/n *
// (1 - (1-1/m)^n) ≈ 1 - (1-e^(-n/m)) * m/n.
func ExpectedCollisionRate(n, m int) float64 {
	if n == 0 {
		return 0
	}
	lam := float64(n) / float64(m)
	occupied := float64(m) * (1 - math.Exp(-lam))
	return 1 - occupied/float64(n)
}

// ExpectedChainLength returns the expected length of a non-empty chain when
// n keys are hashed uniformly into m buckets: n / (m * (1 - e^(-n/m))).
// The paper's §5.1 argument that chains under Mult average below 2 at low
// load factors is checkable against this.
func ExpectedChainLength(n, m int) float64 {
	if n == 0 {
		return 0
	}
	lam := float64(n) / float64(m)
	occupied := float64(m) * (1 - math.Exp(-lam))
	return float64(n) / occupied
}
