package agg

// Parallel GROUP BY ≡ serial GROUP BY: AddParallel's per-worker
// pre-aggregation plus Merge must produce, for every group, exactly the
// state the serial batched build produces — across every registered
// scheme of the group-index table and every aggregate function the paper
// names. The group ORDER may differ between schedules (Range is
// first-seen order and the parallel first-seer is schedule-dependent);
// with one worker even the order must match.

import (
	"testing"

	"repro/exec"
	"repro/internal/prng"
	"repro/table"
)

// aggColumns builds a (groups, values) column pair with a skewed group
// histogram: some groups occur thousands of times, some once.
func aggColumns(n int, distinct uint64, seed uint64) ([]uint64, []uint64) {
	rng := prng.NewXoshiro256(seed)
	groups := make([]uint64, n)
	values := make([]uint64, n)
	for i := range groups {
		g := rng.Uint64n(distinct)
		groups[i] = g * g // non-contiguous group keys
		values[i] = rng.Uint64n(1 << 20)
	}
	return groups, values
}

// allFuncs is every aggregate the paper names (§4).
var allFuncs = []Func{Count, Sum, Min, Max, Avg}

func TestAddParallelMatchesSerialAllSchemes(t *testing.T) {
	groups, values := aggColumns(50_000, 1<<10, 7)
	for _, scheme := range table.AllSchemes() {
		t.Run(string(scheme), func(t *testing.T) {
			cfg := Config{Scheme: scheme, Seed: 42}
			serial := MustNewGroupBy(cfg)
			serial.AddBatch(groups, values)

			for _, workers := range []int{1, 2, 4} {
				par := MustNewGroupBy(cfg)
				if err := par.AddParallel(exec.Config{Workers: workers, MorselSize: 1 << 10}, groups, values); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if par.NumGroups() != serial.NumGroups() {
					t.Fatalf("workers=%d: %d groups, serial has %d", workers, par.NumGroups(), serial.NumGroups())
				}
				serial.Range(func(want *State) bool {
					got, ok := par.Get(want.Key)
					if !ok {
						t.Fatalf("workers=%d: group %d missing from parallel result", workers, want.Key)
					}
					if *got != *want {
						t.Fatalf("workers=%d: group %d state = %+v, serial %+v", workers, want.Key, *got, *want)
					}
					for _, f := range allFuncs {
						if got.Value(f) != want.Value(f) {
							t.Fatalf("workers=%d: group %d %s = %v, serial %v",
								workers, want.Key, f, got.Value(f), want.Value(f))
						}
					}
					return true
				})
			}

			// One worker is the serial schedule: even the first-seen group
			// order must match.
			par1 := MustNewGroupBy(cfg)
			if err := par1.AddParallel(exec.Config{Workers: 1}, groups, values); err != nil {
				t.Fatal(err)
			}
			i := 0
			par1.Range(func(got *State) bool {
				want := &serial.states[i]
				if *got != *want {
					t.Fatalf("single-worker state %d = %+v, serial %+v", i, *got, *want)
				}
				i++
				return true
			})
		})
	}
}

// TestAddParallelIntoNonEmpty: AddParallel folds into whatever g already
// holds, like Add/AddBatch do.
func TestAddParallelIntoNonEmpty(t *testing.T) {
	groups, values := aggColumns(10_000, 1<<8, 9)
	serial := MustNewGroupBy(Config{})
	parallel := MustNewGroupBy(Config{})
	for i := 0; i < 100; i++ { // pre-existing state in both
		serial.Add(groups[i], values[i])
		parallel.Add(groups[i], values[i])
	}
	serial.AddBatch(groups, values)
	if err := parallel.AddParallel(exec.Config{Workers: 4, MorselSize: 512}, groups, values); err != nil {
		t.Fatal(err)
	}
	if parallel.NumGroups() != serial.NumGroups() {
		t.Fatalf("%d groups, serial has %d", parallel.NumGroups(), serial.NumGroups())
	}
	serial.Range(func(want *State) bool {
		got, ok := parallel.Get(want.Key)
		if !ok || *got != *want {
			t.Fatalf("group %d = %+v (ok=%v), serial %+v", want.Key, got, ok, *want)
		}
		return true
	})
}
