// Package agg implements hash aggregation (GROUP BY) on top of the tables:
// the paper's §4 argues that its indexing workload "resembles very closely
// other important operations such as ... aggregate operations like AVERAGE,
// SUM, MIN, MAX, and COUNT", and reports that experiments simulating these
// operations matched the WORM results. This package provides those
// operators, and bench_test.go's BenchmarkAggregateVsWORM reproduces the
// equivalence claim.
//
// The aggregation table maps group key -> index into a dense state array,
// the layout vectorized engines use: the hash table stays a pure 64->64
// map (so every scheme of package table is usable), while the per-group
// accumulators live contiguously.
package agg

import (
	"fmt"
	"math"

	"repro/hashfn"
	"repro/table"
)

// Func identifies an aggregate function.
type Func int

// The aggregate functions named by the paper (§4).
const (
	Count Func = iota
	Sum
	Min
	Max
	Avg
)

// String returns the SQL name.
func (f Func) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	}
	return fmt.Sprintf("Func(%d)", int(f))
}

// State accumulates one group.
type State struct {
	Key   uint64
	Count uint64
	Sum   uint64
	Min   uint64
	Max   uint64
}

// fold accumulates one observation into the group's state; the scalar and
// batched build paths share it so they cannot diverge.
func (s *State) fold(value uint64) {
	s.Count++
	s.Sum += value
	if value < s.Min {
		s.Min = value
	}
	if value > s.Max {
		s.Max = value
	}
}

// Avg returns the mean of the accumulated values.
func (s *State) Avg() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return float64(s.Sum) / float64(s.Count)
}

// Value returns the aggregate under f.
func (s *State) Value(f Func) float64 {
	switch f {
	case Count:
		return float64(s.Count)
	case Sum:
		return float64(s.Sum)
	case Min:
		return float64(s.Min)
	case Max:
		return float64(s.Max)
	case Avg:
		return s.Avg()
	}
	return math.NaN()
}

// Config parameterizes a GroupBy.
type Config struct {
	// Scheme selects the group-index table (default QP, the paper's pick
	// for write-heavy workloads — an aggregation build is one).
	Scheme table.Scheme
	// Family is the hash-function class (default Mult).
	Family hashfn.Family
	// ExpectedGroups pre-sizes the table; 0 starts small and grows.
	ExpectedGroups int
	Seed           uint64
}

// GroupBy is a streaming hash aggregation operator.
type GroupBy struct {
	idx    table.Map
	states []State

	// Batched-probe scratch for AddBatch: group indexes and hit flags for
	// one batch of input rows.
	bIdx [table.BatchWidth]uint64
	bOK  [table.BatchWidth]bool
}

// NewGroupBy builds an empty aggregation operator.
func NewGroupBy(cfg Config) (*GroupBy, error) {
	if cfg.Scheme == "" {
		cfg.Scheme = table.SchemeQP
	}
	if cfg.Family == nil {
		cfg.Family = hashfn.MultFamily{}
	}
	capacity := 1 << 10
	for float64(cfg.ExpectedGroups) > 0.7*float64(capacity) {
		capacity *= 2
	}
	idx, err := table.New(cfg.Scheme, table.Config{
		InitialCapacity: capacity,
		MaxLoadFactor:   0.7,
		Family:          cfg.Family,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &GroupBy{idx: idx}, nil
}

// MustNewGroupBy is NewGroupBy that panics on error.
func MustNewGroupBy(cfg Config) *GroupBy {
	g, err := NewGroupBy(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Add folds one (group, value) observation into the aggregation.
func (g *GroupBy) Add(group, value uint64) {
	if i, ok := g.idx.Get(group); ok {
		g.states[i].fold(value)
		return
	}
	g.idx.Put(group, uint64(len(g.states)))
	g.states = append(g.states, State{
		Key: group, Count: 1, Sum: value, Min: value, Max: value,
	})
}

// AddAll folds a column pair through the batched pipeline.
func (g *GroupBy) AddAll(groups, values []uint64) {
	if len(groups) != len(values) {
		panic("agg: AddAll column length mismatch")
	}
	g.AddBatch(groups, values)
}

// AddBatch folds a column pair one batch at a time: each batch's group keys
// are resolved with one batched lookup against the index table (the
// aggregation equivalent of a WORM probe phase, §4), and only the rows that
// open a new group — rare once the group set has been seen — fall back to
// the scalar insert path. The scalar fallback also re-checks presence, so a
// group first seen twice within one batch is counted exactly once.
func (g *GroupBy) AddBatch(groups, values []uint64) {
	if len(groups) != len(values) {
		panic("agg: AddBatch column length mismatch")
	}
	for base := 0; base < len(groups); base += table.BatchWidth {
		n := min(table.BatchWidth, len(groups)-base)
		gc, vc := groups[base:base+n], values[base:base+n]
		table.GetBatch(g.idx, gc, g.bIdx[:n], g.bOK[:n])
		for i := 0; i < n; i++ {
			if !g.bOK[i] {
				g.Add(gc[i], vc[i])
				continue
			}
			g.states[g.bIdx[i]].fold(vc[i])
		}
	}
}

// Groups returns the number of distinct groups seen.
func (g *GroupBy) Groups() int { return len(g.states) }

// Get returns the state of one group.
func (g *GroupBy) Get(group uint64) (*State, bool) {
	i, ok := g.idx.Get(group)
	if !ok {
		return nil, false
	}
	return &g.states[i], true
}

// Range iterates group states in first-seen order until fn returns false.
func (g *GroupBy) Range(fn func(*State) bool) {
	for i := range g.states {
		if !fn(&g.states[i]) {
			return
		}
	}
}

// Merge folds other into g (for partition-parallel aggregation: aggregate
// partitions independently, then merge).
func (g *GroupBy) Merge(other *GroupBy) {
	other.Range(func(s *State) bool {
		if i, ok := g.idx.Get(s.Key); ok {
			dst := &g.states[i]
			dst.Count += s.Count
			dst.Sum += s.Sum
			if s.Min < dst.Min {
				dst.Min = s.Min
			}
			if s.Max > dst.Max {
				dst.Max = s.Max
			}
		} else {
			g.idx.Put(s.Key, uint64(len(g.states)))
			g.states = append(g.states, *s)
		}
		return true
	})
}

// TableName reports the underlying scheme and function, e.g. "QPMult".
func (g *GroupBy) TableName() string {
	type hashNamer interface{ HashName() string }
	name := g.idx.Name()
	if hn, ok := g.idx.(hashNamer); ok {
		name += hn.HashName()
	}
	return name
}
