// Package agg implements hash aggregation (GROUP BY) on top of the tables:
// the paper's §4 argues that its indexing workload "resembles very closely
// other important operations such as ... aggregate operations like AVERAGE,
// SUM, MIN, MAX, and COUNT", and reports that experiments simulating these
// operations matched the WORM results. This package provides those
// operators, and bench_test.go's BenchmarkAggregateVsWORM reproduces the
// equivalence claim.
//
// The aggregation table maps group key -> index into a dense state array,
// the layout vectorized engines use: the hash table stays a pure 64->64
// map (so every scheme of package table is usable), while the per-group
// accumulators live contiguously.
package agg

import (
	"fmt"
	"iter"
	"math"

	"repro/exec"
	"repro/hashfn"
	"repro/table"
)

// Func identifies an aggregate function.
type Func int

// The aggregate functions named by the paper (§4).
const (
	Count Func = iota
	Sum
	Min
	Max
	Avg
)

// String returns the SQL name.
func (f Func) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	}
	return fmt.Sprintf("Func(%d)", int(f))
}

// State accumulates one group.
type State struct {
	Key   uint64
	Count uint64
	Sum   uint64
	Min   uint64
	Max   uint64
}

// fold accumulates one observation into the group's state; the scalar and
// batched build paths share it so they cannot diverge.
func (s *State) fold(value uint64) {
	s.Count++
	s.Sum += value
	if value < s.Min {
		s.Min = value
	}
	if value > s.Max {
		s.Max = value
	}
}

// Avg returns the mean of the accumulated values.
func (s *State) Avg() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return float64(s.Sum) / float64(s.Count)
}

// Value returns the aggregate under f.
func (s *State) Value(f Func) float64 {
	switch f {
	case Count:
		return float64(s.Count)
	case Sum:
		return float64(s.Sum)
	case Min:
		return float64(s.Min)
	case Max:
		return float64(s.Max)
	case Avg:
		return s.Avg()
	}
	return math.NaN()
}

// Config parameterizes a GroupBy.
type Config struct {
	// Scheme selects the group-index table (default QP, the paper's pick
	// for write-heavy workloads — an aggregation build is one).
	Scheme table.Scheme
	// Family is the hash-function class (default Mult).
	Family hashfn.Family
	// ExpectedGroups pre-sizes the table; 0 starts small and grows.
	ExpectedGroups int
	Seed           uint64
}

// GroupBy is a streaming hash aggregation operator.
type GroupBy struct {
	cfg    Config // post-default config, the template for AddParallel's per-worker locals
	idx    *table.Handle
	states []State
}

// NewGroupBy builds an empty aggregation operator on the unified table
// façade: the group index is opened through table.Open and fed exclusively
// with the single-probe GetOrPut / UpsertBatch primitives, so every input
// row costs exactly one probe sequence regardless of whether it opens a
// new group.
func NewGroupBy(cfg Config) (*GroupBy, error) {
	if cfg.Scheme == "" {
		cfg.Scheme = table.SchemeQP
	}
	if cfg.Family == nil {
		cfg.Family = hashfn.MultFamily{}
	}
	capacity := 1 << 10
	for float64(cfg.ExpectedGroups) > 0.7*float64(capacity) {
		capacity *= 2
	}
	idx, err := table.Open(
		table.WithScheme(cfg.Scheme),
		table.WithCapacity(capacity),
		table.WithMaxLoadFactor(0.7),
		table.WithHashFamily(cfg.Family),
		table.WithSeed(cfg.Seed),
	)
	if err != nil {
		return nil, err
	}
	return &GroupBy{cfg: cfg, idx: idx}, nil
}

// MustNewGroupBy is NewGroupBy that panics on error.
func MustNewGroupBy(cfg Config) *GroupBy {
	g, err := NewGroupBy(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Add folds one (group, value) observation into the aggregation with a
// single probe: GetOrPut finds the group's state index or claims the next
// one in the same probe sequence. The group index grows, so an organic
// ErrFull is unreachable; the returned error is non-nil only when the
// index refuses the probe (an armed fault injector synthesizing a
// *table.FullError), in which case the observation is not folded.
func (g *GroupBy) Add(group, value uint64) error {
	i, existed, err := g.idx.GetOrPut(group, uint64(len(g.states)))
	if err != nil {
		return err
	}
	if existed {
		g.states[i].fold(value)
		return nil
	}
	g.states = append(g.states, State{
		Key: group, Count: 1, Sum: value, Min: value, Max: value,
	})
	return nil
}

// AddAll folds a column pair through the batched pipeline, with
// AddBatch's error contract.
func (g *GroupBy) AddAll(groups, values []uint64) error {
	if len(groups) != len(values) {
		panic("agg: AddAll column length mismatch")
	}
	return g.AddBatch(groups, values)
}

// AddBatch folds a column pair through the batched single-probe pipeline:
// group keys are bulk-hashed in chunks and each row's state is found or
// created by one UpsertBatch probe sequence — including rows that open a
// new group, which under the old Get-then-Put path cost a second full
// probe. A group first seen twice within one batch is counted exactly once
// (batched semantics are sequential semantics).
//
// A non-nil error (only reachable when a fault injector refuses the
// index's probes — the growing index never organically fills) means the
// batch stopped early: rows up to the refusal are folded, later rows are
// not. The error carries the table's typed ErrFull chain.
func (g *GroupBy) AddBatch(groups, values []uint64) error {
	if len(groups) != len(values) {
		panic("agg: AddBatch column length mismatch")
	}
	_, err := g.idx.UpsertBatch(groups, func(lane int, old uint64, exists bool) uint64 {
		if exists {
			g.states[old].fold(values[lane])
			return old
		}
		g.states = append(g.states, State{
			Key: groups[lane], Count: 1, Sum: values[lane], Min: values[lane], Max: values[lane],
		})
		return uint64(len(g.states) - 1)
	})
	return err
}

// AddParallel folds a column pair with morsel-driven parallelism on the
// exec core — the parallel GROUP BY driver the paper's §4 equivalence
// (WORM ≡ aggregation) implies: the columns are carved into morsels, each
// pool worker pre-aggregates the morsels it claims into its own local
// GroupBy through the batched single-probe pipeline (no locks — every
// worker owns its accumulator), and the locals are merged into g
// sequentially with Merge, one probe per distinct group per worker.
//
// The result is equivalent to AddBatch over the same columns: every
// aggregate the paper names (COUNT, SUM, MIN, MAX, AVG) is commutative
// and associative, so per-group states are independent of the morsel
// schedule. Only the first-seen ORDER of groups (Range) may differ from
// the serial build's; with cfg.Workers == 1 the schedule is the serial
// order and the result is identical state-for-state.
func (g *GroupBy) AddParallel(cfg exec.Config, groups, values []uint64) error {
	if len(groups) != len(values) {
		panic("agg: AddParallel column length mismatch")
	}
	pool := exec.NewPool(cfg)
	defer pool.Close()
	locals, err := exec.Locals(pool, len(groups),
		func(w int) (*GroupBy, error) {
			c := g.cfg
			// Independent seeds per worker: the locals' group indexes are
			// private, so their hash functions need not match g's.
			c.Seed = g.cfg.Seed + uint64(w+1)*0x9e3779b97f4a7c15
			return NewGroupBy(c)
		},
		func(local *GroupBy, _, lo, hi int) error {
			return local.AddBatch(groups[lo:hi], values[lo:hi])
		})
	if err != nil {
		return err
	}
	for _, local := range locals {
		if err := g.Merge(local); err != nil {
			return err
		}
	}
	return nil
}

// NumGroups returns the number of distinct groups seen.
func (g *GroupBy) NumGroups() int { return len(g.states) }

// Groups returns a Go 1.23 iterator over (group key, state) pairs in
// first-seen order — the streaming drain: a consumer (pipe.GroupBy's
// downstream operators, a Merge loop, a renderer) pulls one group at a
// time without a materialized result slice. The *State points into the
// operator's live state array; it is valid until the next mutation of g,
// and the iteration itself must not mutate g (no Add/Merge mid-drain).
func (g *GroupBy) Groups() iter.Seq2[uint64, *State] {
	return func(yield func(uint64, *State) bool) {
		for i := range g.states {
			if !yield(g.states[i].Key, &g.states[i]) {
				return
			}
		}
	}
}

// Get returns the state of one group.
func (g *GroupBy) Get(group uint64) (*State, bool) {
	i, ok := g.idx.Get(group)
	if !ok {
		return nil, false
	}
	return &g.states[i], true
}

// Range iterates group states in first-seen order until fn returns false.
func (g *GroupBy) Range(fn func(*State) bool) {
	for i := range g.states {
		if !fn(&g.states[i]) {
			return
		}
	}
}

// Merge folds other into g (for partition-parallel aggregation: aggregate
// partitions independently, then merge), one probe per merged group. A
// non-nil error (an injected index refusal; see AddBatch) stops the
// merge with the remaining groups of other unmerged.
func (g *GroupBy) Merge(other *GroupBy) error {
	var err error
	other.Range(func(s *State) bool {
		i, existed, gerr := g.idx.GetOrPut(s.Key, uint64(len(g.states)))
		if gerr != nil {
			err = gerr
			return false
		}
		if existed {
			dst := &g.states[i]
			dst.Count += s.Count
			dst.Sum += s.Sum
			if s.Min < dst.Min {
				dst.Min = s.Min
			}
			if s.Max > dst.Max {
				dst.Max = s.Max
			}
		} else {
			g.states = append(g.states, *s)
		}
		return true
	})
	return err
}

// TableName reports the underlying scheme and function, e.g. "QPMult".
func (g *GroupBy) TableName() string { return g.idx.Name() }

// Stats returns the group-index table's observability snapshot.
func (g *GroupBy) Stats() table.Stats { return g.idx.Stats() }
