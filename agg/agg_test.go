package agg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
	"repro/table"
)

func TestGroupByBasics(t *testing.T) {
	g := MustNewGroupBy(Config{})
	g.Add(1, 10)
	g.Add(1, 20)
	g.Add(2, 5)
	if g.NumGroups() != 2 {
		t.Fatalf("Groups = %d", g.NumGroups())
	}
	s, ok := g.Get(1)
	if !ok || s.Count != 2 || s.Sum != 30 || s.Min != 10 || s.Max != 20 {
		t.Fatalf("group 1 state = %+v", s)
	}
	if s.Avg() != 15 {
		t.Fatalf("Avg = %v", s.Avg())
	}
	if _, ok := g.Get(99); ok {
		t.Fatal("phantom group")
	}
	if v := s.Value(Sum); v != 30 {
		t.Fatalf("Value(Sum) = %v", v)
	}
	if v := s.Value(Count); v != 2 {
		t.Fatalf("Value(Count) = %v", v)
	}
	if v := s.Value(Min); v != 10 {
		t.Fatalf("Value(Min) = %v", v)
	}
	if v := s.Value(Max); v != 20 {
		t.Fatalf("Value(Max) = %v", v)
	}
	if v := s.Value(Avg); v != 15 {
		t.Fatalf("Value(Avg) = %v", v)
	}
}

func TestFuncStrings(t *testing.T) {
	want := map[Func]string{Count: "COUNT", Sum: "SUM", Min: "MIN", Max: "MAX", Avg: "AVG"}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("%d.String() = %s, want %s", int(f), f.String(), s)
		}
	}
	if Func(99).String() == "" {
		t.Error("unknown func should stringify")
	}
	empty := &State{}
	if !math.IsNaN(empty.Avg()) || !math.IsNaN(empty.Value(Func(99))) {
		t.Error("degenerate aggregates should be NaN")
	}
}

// TestGroupByMatchesOracle aggregates a random stream against a plain map
// oracle under every scheme.
func TestGroupByMatchesOracle(t *testing.T) {
	for _, scheme := range []table.Scheme{
		table.SchemeLP, table.SchemeQP, table.SchemeRH,
		table.SchemeCuckooH4, table.SchemeChained24,
	} {
		g := MustNewGroupBy(Config{Scheme: scheme, Seed: 3})
		oracle := map[uint64]*State{}
		rng := prng.NewXoshiro256(4)
		for i := 0; i < 100000; i++ {
			grp := rng.Uint64n(500)
			val := rng.Uint64n(1000)
			g.Add(grp, val)
			st, ok := oracle[grp]
			if !ok {
				oracle[grp] = &State{Key: grp, Count: 1, Sum: val, Min: val, Max: val}
			} else {
				st.Count++
				st.Sum += val
				if val < st.Min {
					st.Min = val
				}
				if val > st.Max {
					st.Max = val
				}
			}
		}
		if g.NumGroups() != len(oracle) {
			t.Fatalf("%s: %d groups, oracle %d", scheme, g.NumGroups(), len(oracle))
		}
		g.Range(func(s *State) bool {
			want := oracle[s.Key]
			if *s != *want {
				t.Fatalf("%s: group %d = %+v, want %+v", scheme, s.Key, *s, *want)
			}
			return true
		})
	}
}

func TestAddAllAndValidation(t *testing.T) {
	g := MustNewGroupBy(Config{ExpectedGroups: 1000})
	g.AddAll([]uint64{1, 2, 1}, []uint64{10, 20, 30})
	if s, _ := g.Get(1); s.Sum != 40 {
		t.Fatalf("Sum = %d", s.Sum)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched columns did not panic")
		}
	}()
	g.AddAll([]uint64{1}, nil)
}

// TestMergeEqualsSingle: partition-parallel aggregation (split, aggregate,
// merge) must equal single-stream aggregation.
func TestMergeEqualsSingle(t *testing.T) {
	rng := prng.NewXoshiro256(5)
	groups := make([]uint64, 50000)
	values := make([]uint64, len(groups))
	for i := range groups {
		groups[i] = rng.Uint64n(300)
		values[i] = rng.Uint64n(100)
	}
	single := MustNewGroupBy(Config{Seed: 6})
	single.AddAll(groups, values)

	parts := make([]*GroupBy, 4)
	for p := range parts {
		parts[p] = MustNewGroupBy(Config{Seed: uint64(10 + p)})
	}
	for i := range groups {
		parts[i%4].Add(groups[i], values[i])
	}
	merged := parts[0]
	for _, p := range parts[1:] {
		merged.Merge(p)
	}
	if merged.NumGroups() != single.NumGroups() {
		t.Fatalf("merged %d groups, single %d", merged.NumGroups(), single.NumGroups())
	}
	single.Range(func(want *State) bool {
		got, ok := merged.Get(want.Key)
		if !ok || *got != *want {
			t.Fatalf("group %d: %+v, want %+v", want.Key, got, want)
		}
		return true
	})
}

// TestQuickGroupBySumInvariant: total SUM over groups equals the stream
// total, and total COUNT equals the stream length.
func TestQuickGroupBySumInvariant(t *testing.T) {
	prop := func(groups []uint8, seed uint64) bool {
		g := MustNewGroupBy(Config{Seed: seed})
		var streamTotal uint64
		for i, grp := range groups {
			g.Add(uint64(grp), uint64(i))
			streamTotal += uint64(i)
		}
		var sum, count uint64
		g.Range(func(s *State) bool {
			sum += s.Sum
			count += s.Count
			return true
		})
		return sum == streamTotal && count == uint64(len(groups))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableName(t *testing.T) {
	g := MustNewGroupBy(Config{})
	if g.TableName() != "QPMult" {
		t.Fatalf("TableName = %s, want QPMult", g.TableName())
	}
}
