package agg_test

import (
	"errors"
	"testing"

	"repro/agg"
	"repro/exec"
	"repro/internal/fault"
	"repro/table"
)

// TestAddParallelErrFullPropagation: a group-index refusal (injected at
// rate 1.0 — the growing index never organically fills) must surface
// from the parallel aggregation driver as the typed *table.FullError
// chain, through the per-worker locals and the pool's error convention.
func TestAddParallelErrFullPropagation(t *testing.T) {
	groups := make([]uint64, 10_000)
	values := make([]uint64, len(groups))
	for i := range groups {
		groups[i] = uint64(i % 97)
		values[i] = uint64(i)
	}
	g := agg.MustNewGroupBy(agg.Config{Scheme: table.SchemeQP, Seed: 5})

	var rates [fault.NumKinds]float64
	rates[fault.Full] = 1.0
	fault.Arm(fault.Config{Seed: 5, Rates: rates})
	defer fault.Disarm()

	err := g.AddParallel(exec.Config{Workers: 4}, groups, values)
	if err == nil {
		t.Fatal("AddParallel under rate-1.0 refusals returned nil error")
	}
	var fe *table.FullError
	if !errors.As(err, &fe) {
		t.Fatalf("error = %v, want *table.FullError in the chain", err)
	}
	if !errors.Is(err, table.ErrFull) {
		t.Fatalf("error %v does not wrap table.ErrFull", err)
	}

	// Disarmed, the same fold succeeds and the operator is intact.
	fault.Disarm()
	if err := g.AddParallel(exec.Config{Workers: 4}, groups, values); err != nil {
		t.Fatalf("AddParallel after disarm: %v", err)
	}
	if g.NumGroups() != 97 {
		t.Fatalf("Groups = %d, want 97", g.NumGroups())
	}
}

// TestAddErrFullPropagation covers the scalar single-probe path.
func TestAddErrFullPropagation(t *testing.T) {
	g := agg.MustNewGroupBy(agg.Config{Seed: 6})
	var rates [fault.NumKinds]float64
	rates[fault.Full] = 1.0
	fault.Arm(fault.Config{Seed: 6, Rates: rates})
	defer fault.Disarm()

	if err := g.Add(1, 2); !errors.Is(err, table.ErrFull) {
		t.Fatalf("Add error = %v, want ErrFull chain", err)
	}
	fault.Disarm()
	if err := g.Add(1, 2); err != nil {
		t.Fatalf("Add after disarm: %v", err)
	}
	s, ok := g.Get(1)
	if !ok || s.Count != 1 {
		t.Fatalf("refused Add leaked state: %+v %v", s, ok)
	}
}
