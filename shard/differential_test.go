package shard_test

// Concurrent differential test: 8 writer goroutines replay interleaved RW
// op tapes (workload.GenRWTape) against one shard.Engine and validate
// every operation's result against a mutex-guarded builtin-map oracle.
// The goroutines' tapes draw from disjoint index ranges of one injective
// distribution, so each goroutine's keys are private — its oracle view is
// exact — while all goroutines contend on the shared shards. A ninth
// goroutine hammers the sentinel keys (0 and 2^64-1, whose literal values
// collide with the empty/tombstone slot markers), and a tenth runs the
// weakly-consistent iterator throughout, checking the invariants that
// survive concurrent writers: no key yielded twice in one pass, and every
// yielded value is one some writer actually stored.
//
// The engine starts near its growth threshold with a small migration
// chunk, so shards resize incrementally throughout the run and the reads,
// writes and iterations constantly cross mid-migration state. This is the
// test the CI job runs with -race (go test -run Differential -race
// ./shard/...).

import (
	"sync"
	"testing"

	"repro/dist"
	"repro/shard"
	"repro/table"
	"repro/workload"
)

// valTag makes stored values a checkable function of their key, so the
// iterator can validate entries it observes mid-write.
const valTag = 0x5ca1_ab1e_ca5c_ade5

// stride spaces the goroutines' generator index ranges. It sits above
// GenRWTape's guaranteed-miss offset (2^40), so each goroutine's whole
// index window — inserts plus 2^40-offset miss probes — fits inside its
// own stride and never collides with another goroutine's.
const stride = uint64(1) << 41

// offsetGen carves a disjoint per-goroutine index range out of one
// injective distribution.
type offsetGen struct {
	gen  dist.Generator
	base uint64
}

func (g offsetGen) Kind() dist.Kind     { return g.gen.Kind() }
func (g offsetGen) Key(i uint64) uint64 { return g.gen.Key(g.base + i) }
func (g offsetGen) Keys(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.Key(uint64(i))
	}
	return out
}
func (g offsetGen) AbsentKeys(n, m int) []uint64 {
	out := make([]uint64, m)
	for i := range out {
		out[i] = g.Key(uint64(n + i))
	}
	return out
}

func TestDifferentialConcurrentTapes(t *testing.T) {
	const (
		goroutines = 8
		initial    = 500
		ops        = 15000
		updatePct  = 60
	)
	e := shard.MustNew(shard.Config{
		Shards:         8,
		Capacity:       1 << 12, // small: growth starts early and recurs
		GrowAt:         0.8,
		Seed:           17,
		MigrationChunk: 64, // long migration windows: more mid-migration ops
		NewTable: func(capacity int, seed uint64) (shard.Table, error) {
			return table.New(table.SchemeRH, table.Config{InitialCapacity: capacity, MaxLoadFactor: 0, Seed: seed})
		},
	})

	var omu sync.Mutex
	oracle := map[uint64]uint64{}

	gen := dist.New(dist.Sparse, 23)
	var wg sync.WaitGroup
	done := make(chan struct{})

	// Writer goroutines: interleaved tape replay, oracle-checked per op.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			og := offsetGen{gen: gen, base: uint64(g) * stride}
			tape := workload.GenRWTape(og, initial, ops, updatePct, uint64(g)*977+1)
			// Pre-fill this goroutine's initial live set (concurrently with
			// the other goroutines' replays — the tape's first ops assume
			// these keys are live).
			for i := 0; i < initial; i++ {
				k := og.Key(uint64(i))
				if _, err := e.Put(k, k^valTag); err != nil {
					t.Errorf("g%d prefill Put(%d): %v", g, k, err)
					return
				}
				omu.Lock()
				oracle[k] = k ^ valTag
				omu.Unlock()
			}
			for i, kind := range tape.Kinds {
				k := tape.Keys[i]
				switch kind {
				case workload.OpInsert:
					omu.Lock()
					_, existed := oracle[k]
					omu.Unlock()
					if i%3 == 0 {
						_, loaded, err := e.GetOrPut(k, k^valTag)
						if err != nil {
							t.Errorf("g%d GetOrPut(%d): %v", g, k, err)
							return
						}
						if loaded != existed {
							t.Errorf("g%d GetOrPut(%d) loaded=%v, oracle existed=%v", g, k, loaded, existed)
							return
						}
					} else {
						ins, err := e.Put(k, k^valTag)
						if err != nil {
							t.Errorf("g%d Put(%d): %v", g, k, err)
							return
						}
						if ins == existed {
							t.Errorf("g%d Put(%d) inserted=%v, oracle existed=%v", g, k, ins, existed)
							return
						}
					}
					omu.Lock()
					oracle[k] = k ^ valTag
					omu.Unlock()
				case workload.OpDelete:
					omu.Lock()
					_, existed := oracle[k]
					delete(oracle, k)
					omu.Unlock()
					if had := e.Delete(k); had != existed {
						t.Errorf("g%d Delete(%d) = %v, oracle existed=%v", g, k, had, existed)
						return
					}
				case workload.OpLookupHit, workload.OpLookupMiss:
					omu.Lock()
					want, existed := oracle[k]
					omu.Unlock()
					v, ok := e.Get(k)
					if ok != existed || (ok && v != want) {
						t.Errorf("g%d Get(%d) = (%d,%v), oracle (%d,%v)", g, k, v, ok, want, existed)
						return
					}
				}
			}
		}(g)
	}

	// Sentinel goroutine: the keys 0 and 2^64-1 cycle through
	// insert/update/upsert/delete while everything else churns. Only this
	// goroutine touches them, so its checks are exact.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sentinels := []uint64{0, ^uint64(0)}
		for round := 0; round < 2000; round++ {
			for _, k := range sentinels {
				if _, err := e.Put(k, k^valTag); err != nil {
					t.Errorf("sentinel Put(%d): %v", k, err)
					return
				}
				if v, ok := e.Get(k); !ok || v != k^valTag {
					t.Errorf("sentinel Get(%d) = (%d,%v)", k, v, ok)
					return
				}
				if _, err := e.Upsert(k, func(old uint64, exists bool) uint64 {
					if !exists || old != k^valTag {
						t.Errorf("sentinel Upsert(%d) got (%d,%v)", k, old, exists)
					}
					return k ^ valTag
				}); err != nil {
					t.Errorf("sentinel Upsert(%d): %v", k, err)
					return
				}
				if round%5 == 4 {
					if !e.Delete(k) {
						t.Errorf("sentinel Delete(%d) missed", k)
						return
					}
					if _, ok := e.Get(k); ok {
						t.Errorf("sentinel %d visible after delete", k)
						return
					}
					if _, err := e.Put(k, k^valTag); err != nil {
						t.Errorf("sentinel re-Put(%d): %v", k, err)
						return
					}
				}
			}
		}
		// Leave the sentinels deleted so the final oracle comparison
		// (which never tracked them) holds.
		e.Delete(0)
		e.Delete(^uint64(0))
	}()

	// Iterator goroutine: weakly-consistent passes during the churn. It
	// runs on its own WaitGroup — it only stops once the writers (tracked
	// by wg) are done.
	var iterWG sync.WaitGroup
	iterWG.Add(1)
	go func() {
		defer iterWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			seen := make(map[uint64]struct{}, 1<<13)
			for k, v := range e.All() {
				if _, dup := seen[k]; dup {
					t.Errorf("iterator yielded key %d twice in one pass", k)
					return
				}
				seen[k] = struct{}{}
				if v != k^valTag {
					t.Errorf("iterator observed impossible value %d for key %d", v, k)
					return
				}
			}
		}
	}()

	// Writers + sentinel finish first, then the iterator is released.
	wg.Wait()
	close(done)
	iterWG.Wait()

	if t.Failed() {
		return
	}
	// Full final comparison against the oracle.
	if e.Len() != len(oracle) {
		t.Fatalf("final Len = %d, oracle %d", e.Len(), len(oracle))
	}
	got := map[uint64]uint64{}
	e.Range(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(oracle) {
		t.Fatalf("final iteration yielded %d entries, oracle %d", len(got), len(oracle))
	}
	for k, v := range oracle {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("final content: key %d = (%d,%v), oracle %d", k, gv, ok, v)
		}
	}
	st := e.Stats()
	if st.MigrationsDone == 0 {
		t.Fatal("run never exercised an incremental migration")
	}
	if st.Migrating > 0 || st.MigrationsDone != st.MigrationsStarted {
		// Drain: mutations finish in-flight migrations deterministically.
		for e.Stats().Migrating > 0 {
			e.Delete(1) // key 1 is absent (sparse dist); advances migration
		}
	}
	t.Logf("final: %d entries, %d shards, %d migrations, %d entries migrated incrementally, %d rebuilds",
		len(oracle), st.Shards, st.MigrationsDone, st.MigratedEntries, st.Rebuilds)
}

// TestDifferentialReadMonotonic is the wait-free read path's
// linearizability-style hammer: ONE writer publishes strictly increasing
// versions of a fixed tracked-key set (plus churn keys that keep
// migrations — and therefore view republications and seqlock windows —
// rolling), while reader goroutines running Get and GetBatch assert that
//
//   - every observed value decodes to its own key's lane (a torn read
//     that escaped sequence validation cannot pass this),
//   - per reader, per key, observed versions never decrease (single-key
//     reads are linearizable: once a reader has seen version v, no later
//     read may return an older epoch's value),
//   - tracked keys are always present (they are never deleted, so a
//     reader catching a shard mid-transition must still find them).
//
// The CI shard job runs this under -race (where reads take the locked
// slow path — the fallback is real code too); the regular suite runs the
// optimistic seqlock protocol itself.
func TestDifferentialReadMonotonic(t *testing.T) {
	const (
		tracked   = 256
		churn     = 2048
		rounds    = 1200
		readers   = 4
		laneBits  = 20
		laneMask  = 1<<laneBits - 1
		churnBase = uint64(1) << 21 // disjoint generator range for churn keys
	)
	e := shard.MustNew(shard.Config{
		Shards:         4,
		Capacity:       1 << 10, // small: the churn forces repeated migrations
		GrowAt:         0.8,
		Seed:           29,
		MigrationChunk: 32,
		NewTable: func(capacity int, seed uint64) (shard.Table, error) {
			return table.New(table.SchemeRH, table.Config{InitialCapacity: capacity, MaxLoadFactor: 0, Seed: seed})
		},
	})

	gen := dist.New(dist.Sparse, 91)
	keys := make([]uint64, tracked)
	for i := range keys {
		keys[i] = gen.Key(uint64(i))
	}
	// encode packs (version, lane) into a value; decode's lane check is
	// what catches a torn read the sequence validation failed to discard.
	encode := func(version, lane int) uint64 {
		return uint64(version)<<laneBits | uint64(lane)
	}
	for i, k := range keys {
		if _, err := e.Put(k, encode(1, i)); err != nil {
			t.Fatalf("prefill Put(%d): %v", k, err)
		}
	}

	done := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			floor := make([]int, tracked) // per-reader monotonic floor per key
			vals := make([]uint64, tracked)
			ok := make([]bool, tracked)
			check := func(lane int, v uint64, present bool, via string) bool {
				if !present {
					t.Errorf("reader %d: %s lost tracked key %d (lane %d)", r, via, keys[lane], lane)
					return false
				}
				if got := int(v & laneMask); got != lane {
					t.Errorf("reader %d: %s key %d returned lane %d's value %#x — torn read escaped validation", r, via, keys[lane], got, v)
					return false
				}
				version := int(v >> laneBits)
				if version < floor[lane] {
					t.Errorf("reader %d: %s key %d went backwards: saw version %d after %d", r, via, keys[lane], version, floor[lane])
					return false
				}
				floor[lane] = version
				return true
			}
			for pass := 0; ; pass++ {
				select {
				case <-done:
					return
				default:
				}
				if pass%2 == 0 {
					for i, k := range keys {
						v, present := e.Get(k)
						if !check(i, v, present, "Get") {
							return
						}
					}
				} else {
					e.GetBatch(keys, vals, ok)
					for i := range keys {
						if !check(i, vals[i], ok[i], "GetBatch") {
							return
						}
					}
				}
			}
		}(r)
	}

	// The single writer: bump every tracked key's version each round, and
	// wave churn keys in and out so shards keep crossing the growth
	// threshold (migration begin/finish republishes the views the readers
	// are validating against).
	for round := 2; round < rounds+2 && !t.Failed(); round++ {
		for i, k := range keys {
			if _, err := e.Put(k, encode(round, i)); err != nil {
				t.Fatalf("round %d Put(%d): %v", round, k, err)
			}
		}
		switch round % 8 {
		case 0:
			for i := 0; i < churn; i++ {
				k := gen.Key(churnBase + uint64(i))
				if _, err := e.Put(k, k^valTag); err != nil {
					t.Fatalf("churn Put(%d): %v", k, err)
				}
			}
		case 4:
			for i := 0; i < churn; i++ {
				e.Delete(gen.Key(churnBase + uint64(i)))
			}
		}
	}
	close(done)
	readerWG.Wait()

	if t.Failed() {
		return
	}
	st := e.Stats()
	if st.MigrationsStarted == 0 {
		t.Fatal("hammer never exercised a migration (no view republications under read load)")
	}
	t.Logf("final: %d migrations, %d view publishes, %d read retries, %d read fallbacks",
		st.MigrationsDone, st.ViewPublishes, st.ReadRetries, st.ReadFallbacks)
}
