package shard

// Cross-shard batched operations: the key column is scattered per shard in
// one stable pass (so duplicate keys — which always share a shard — keep
// their slice order and therefore sequential semantics), each shard's
// staged range is executed per shard exactly once — one seqlock validation
// for reads, one writer-lock acquisition for writes — and results gather
// back to the callers' lanes in input order.
//
// Engines are meant for concurrent callers, so the staging buffers are
// allocated per call rather than cached: two goroutines batching on the
// same engine must not share scratch.
//
// A non-migrating shard runs its table's batched pipeline (bulk-hashed,
// round-robin probe walks). A migrating shard falls back to the scalar
// migration-aware path per staged key, which also advances the migration —
// batches make resize progress proportional to their size.

import (
	"repro/exec"
	"repro/obs"
)

// GetBatch looks up keys[i] into vals[i], ok[i] for every i and returns
// the number of hits. vals and ok must be at least as long as keys.
//
// Batched lookups take no locks at all: each shard's staged range runs
// on the wait-free read path, with ONE sequence validation covering the
// whole range (see readRange), so any number of GetBatch (and Get)
// callers proceed in parallel with each other — and with writers. That
// rules out the tables' own batched probe pipeline here — it mutates a
// per-table scratch and is only safe under the exclusive lock — so the
// staged ranges run migration-aware scalar probes instead; the
// shard-major scatter still amortizes routing and validation to once
// per shard per batch.
func (e *Engine) GetBatch(keys, vals []uint64, ok []bool) int {
	if len(vals) < len(keys) || len(ok) < len(keys) {
		panic("shard: GetBatch output slices shorter than keys")
	}
	m, start := e.batchStart()
	hits := e.getBatch(keys, vals, ok)
	if m != nil {
		m.GetBatch.Record(e.batchHint(keys), obs.Now()-start)
	}
	return hits
}

func (e *Engine) getBatch(keys, vals []uint64, ok []bool) int {
	if len(e.shards) == 1 {
		return e.readRange(&e.shards[0], keys, vals[:len(keys)], ok[:len(keys)])
	}
	st := e.scatter(keys)
	hits := 0
	for j := range e.shards {
		lo, hi := st.Starts[j], st.Starts[j+1]
		if lo == hi {
			continue
		}
		hits += e.readRange(&e.shards[j], st.Keys[lo:hi], st.Vals[lo:hi], st.OK[lo:hi])
	}
	for i, oi := range st.Orig {
		vals[oi], ok[oi] = st.Vals[i], st.OK[i]
	}
	return hits
}

// roomFor reports whether n inserts into a non-migrating shard cannot
// cross the growth threshold, i.e. whether the table's own batched
// pipeline may run without per-key growth checks.
func (e *Engine) roomFor(v *view, n int) bool {
	if e.growAt <= 0 {
		return true // growth disabled: the pipeline's ErrFull is the contract
	}
	return float64(v.cur.Len()+n) < e.growAt*float64(v.cur.Capacity())
}

// putBatchShard applies one shard's staged pairs inside its writer's
// seqlock window.
func (e *Engine) putBatchShard(s *shardState, keys, vals []uint64) (int, error) {
	s.lockShard()
	defer s.unlockShard()
	e.advance(s, e.chunk)
	e.degradedTick(s)
	inserted := 0
	if v := s.view.Load(); !v.migrating() && e.roomFor(v, len(keys)) {
		ins, err := v.cur.TryPutBatch(keys, vals)
		s.live.Add(int64(ins))
		if err == nil || e.growAt <= 0 {
			return ins, err
		}
		// The pipeline refused a key (Cuckoo kick failure): the table
		// cannot place keys at this occupancy, so grow now — or degrade
		// when the allocator refuses — and re-apply the whole range
		// scalar. Re-applying already-inserted pairs is idempotent (same
		// key, same value, classified as updates the second time — hence
		// ins carries into the total).
		inserted = ins
		e.growForBatchRefusal(s)
	}
	for i, k := range keys {
		ins, err := e.putLocked(s, k, vals[i])
		if err != nil {
			return inserted, err
		}
		if ins {
			inserted++
		}
	}
	return inserted, nil
}

// PutBatch upserts the pairs (keys[i], vals[i]) in slice order, returning
// the number of newly inserted keys. With growth disabled it stops on
// ErrFull; pairs already applied remain.
func (e *Engine) PutBatch(keys, vals []uint64) (int, error) {
	if len(keys) != len(vals) {
		panic("shard: PutBatch keys/vals length mismatch")
	}
	m, start := e.batchStart()
	n, err := e.putBatch(keys, vals)
	if m != nil {
		m.PutBatch.Record(e.batchHint(keys), obs.Now()-start)
	}
	return n, err
}

func (e *Engine) putBatch(keys, vals []uint64) (int, error) {
	if len(e.shards) == 1 {
		return e.putBatchShard(&e.shards[0], keys, vals)
	}
	st := e.scatter(keys)
	for i, oi := range st.Orig {
		st.Vals[i] = vals[oi]
	}
	inserted := 0
	for j := range e.shards {
		lo, hi := st.Starts[j], st.Starts[j+1]
		if lo == hi {
			continue
		}
		n, err := e.putBatchShard(&e.shards[j], st.Keys[lo:hi], st.Vals[lo:hi])
		inserted += n
		if err != nil {
			return inserted, err
		}
	}
	return inserted, nil
}

// TryPutBatch is PutBatch under its table.Table-surface name.
func (e *Engine) TryPutBatch(keys, vals []uint64) (int, error) { return e.PutBatch(keys, vals) }

// getOrPutBatchShard applies one shard's staged range; out and loaded are
// the shard-local staging views (out may alias vals).
func (e *Engine) getOrPutBatchShard(s *shardState, keys, vals, out []uint64, loaded []bool) (int, error) {
	s.lockShard()
	defer s.unlockShard()
	e.advance(s, e.chunk)
	e.degradedTick(s)
	inserted := 0
	if v := s.view.Load(); !v.migrating() && e.roomFor(v, len(keys)) {
		ins, err := v.cur.GetOrPutBatch(keys, vals, out, loaded)
		s.live.Add(int64(ins))
		if err == nil || e.growAt <= 0 {
			return ins, err
		}
		// Re-apply scalar below on a freshly grown (or degraded) shard,
		// carrying the pipeline's insert count: pairs it already applied
		// are found by GetOrPut (loaded=true) with the same value, so
		// lanes stay correct and those keys are not double-counted; a
		// within-batch duplicate that raced the refusal may report
		// loaded=true for the lane that actually inserted — accepted on
		// this pathological path.
		inserted = ins
		e.growForBatchRefusal(s)
	}
	for i, k := range keys {
		v, ld, err := e.getOrPutLocked(s, k, vals[i])
		if err != nil {
			return inserted, err
		}
		out[i], loaded[i] = v, ld
		if !ld {
			inserted++
		}
	}
	return inserted, nil
}

// GetOrPutBatch applies GetOrPut to every (keys[i], vals[i]) pair in slice
// order: out[i] receives the resulting value, loaded[i] whether the key
// already existed. out may alias vals. It returns the number of newly
// inserted keys.
func (e *Engine) GetOrPutBatch(keys, vals, out []uint64, loaded []bool) (int, error) {
	if len(vals) != len(keys) {
		panic("shard: GetOrPutBatch keys/vals length mismatch")
	}
	if len(out) < len(keys) || len(loaded) < len(keys) {
		panic("shard: GetOrPutBatch output slices shorter than keys")
	}
	m, start := e.batchStart()
	n, err := e.getOrPutBatch(keys, vals, out, loaded)
	if m != nil {
		m.GetOrPutBatch.Record(e.batchHint(keys), obs.Now()-start)
	}
	return n, err
}

func (e *Engine) getOrPutBatch(keys, vals, out []uint64, loaded []bool) (int, error) {
	if len(e.shards) == 1 {
		return e.getOrPutBatchShard(&e.shards[0], keys, vals, out, loaded)
	}
	st := e.scatter(keys)
	for i, oi := range st.Orig {
		st.Vals[i] = vals[oi]
	}
	inserted := 0
	for j := range e.shards {
		lo, hi := st.Starts[j], st.Starts[j+1]
		if lo == hi {
			continue
		}
		// out aliases vals within the staged range: the tables read the
		// insert value before writing the result lane.
		n, err := e.getOrPutBatchShard(&e.shards[j], st.Keys[lo:hi], st.Vals[lo:hi], st.Vals[lo:hi], st.OK[lo:hi])
		inserted += n
		if err != nil {
			return inserted, err
		}
	}
	for i, oi := range st.Orig {
		out[oi], loaded[oi] = st.Vals[i], st.OK[i]
	}
	return inserted, nil
}

// upsertBatchShard applies one shard's staged keys; orig maps staged lanes
// back to the caller's lanes for fn.
func (e *Engine) upsertBatchShard(s *shardState, keys []uint64, orig []int32, fn func(lane int, old uint64, exists bool) uint64) (int, error) {
	s.lockShard()
	defer s.unlockShard()
	e.advance(s, e.chunk)
	e.degradedTick(s)
	callerLane := func(i int) int {
		if orig != nil {
			return int(orig[i])
		}
		return i
	}
	inserted := 0
	resume := 0
	if v := s.view.Load(); !v.migrating() && e.roomFor(v, len(keys)) {
		// A half-applied UpsertBatch cannot simply be re-applied (fn
		// would observe its own partial effects), so the wrapper records
		// the last lane fn computed for and its value: on a refusal —
		// unreachable for the probing and chained schemes below the
		// threshold, a failed kick chain for Cuckoo — the pipeline's
		// contract guarantees every earlier lane is stored, and the last
		// computed value is re-stored directly (idempotent if it already
		// landed) without invoking fn again.
		lastLane := -1
		var lastVal uint64
		ins, err := v.cur.UpsertBatch(keys, func(lane int, old uint64, exists bool) uint64 {
			v := fn(callerLane(lane), old, exists)
			lastLane, lastVal = lane, v
			return v
		})
		s.live.Add(int64(ins))
		if err == nil || e.growAt <= 0 {
			return ins, err
		}
		inserted = ins
		e.growForBatchRefusal(s)
		if lastLane >= 0 {
			// putLocked grows the shard (or degrades it) as needed while
			// re-storing the last computed value.
			in, err := e.putLocked(s, keys[lastLane], lastVal)
			if err != nil {
				return inserted, err
			}
			if in {
				inserted++
			}
			resume = lastLane + 1
		}
	}
	for i := resume; i < len(keys); i++ {
		lane := callerLane(i)
		_, err := e.upsertLocked(s, keys[i], func(old uint64, exists bool) uint64 {
			if !exists {
				inserted++
			}
			return fn(lane, old, exists)
		})
		if err != nil {
			return inserted, err
		}
	}
	return inserted, nil
}

// UpsertBatch applies an Upsert to every key in slice order, passing fn
// the key's lane index in the original slice. Duplicate keys are processed
// in slice order (they always share a shard). It returns the number of
// newly inserted keys. fn runs under a shard write lock and must not call
// back into the engine.
func (e *Engine) UpsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (int, error) {
	m, start := e.batchStart()
	n, err := e.upsertBatch(keys, fn)
	if m != nil {
		m.UpsertBatch.Record(e.batchHint(keys), obs.Now()-start)
	}
	return n, err
}

func (e *Engine) upsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (int, error) {
	if len(e.shards) == 1 {
		return e.upsertBatchShard(&e.shards[0], keys, nil, fn)
	}
	st := e.scatter(keys)
	inserted := 0
	for j := range e.shards {
		lo, hi := st.Starts[j], st.Starts[j+1]
		if lo == hi {
			continue
		}
		n, err := e.upsertBatchShard(&e.shards[j], st.Keys[lo:hi], st.Orig[lo:hi], fn)
		inserted += n
		if err != nil {
			return inserted, err
		}
	}
	return inserted, nil
}

// scatter routes keys with the shared exec.Scatter primitive: the
// router's bulk-hash pipeline plus one stable counting pass regrouping
// the column shard-major. Engines serve concurrent callers, so the
// scatter is allocated per call — two goroutines batching on the same
// engine must not share staging.
func (e *Engine) scatter(keys []uint64) *exec.Scatter {
	st := new(exec.Scatter)
	st.Route(e.router, e.shift, len(e.shards), keys)
	return st
}
