// Package shard implements the repo's one striping core: Engine, a
// concurrency-safe sharded hash-table engine with incremental resize and
// wait-free reads. It replaces the two earlier copies of the paper's
// striped-locking extension (§1) — table.Handle's partitioned mode and
// partition.Striped — both of which now delegate here.
//
// # Architecture
//
// An Engine routes every key to one of P shards (P a power of two) by the
// top bits of an independent router hash, exactly like the partitioned
// radix scheme the paper cites for parallel joins. Each shard owns one
// single-threaded table reached two ways:
//
//   - Writers serialize on the shard's sync.Mutex and mutate the table in
//     place inside a seqlock window (the shard's sequence counter is odd
//     for the duration).
//   - Readers never lock. They load the shard's published view (an
//     atomic.Pointer to an immutable epoch struct naming the tables),
//     probe it with plain loads, and validate the sequence counter was
//     even and unchanged across the probe. A torn window retries a
//     bounded number of times, then falls back to the writer lock, so
//     reads are wait-free in the common case and always make progress.
//
// The probe kernels this engine stripes are memory-bound (the paper's
// central measurement); the old per-shard RWMutex put two lock-word RMWs
// — and, across cores, a coherence miss — in front of every read. The
// seqlock read path replaces them with two loads of a shard-local word
// that only writers dirty, so read scaling is bounded by the tables, not
// the concurrency layer. See view.go for the full reader/writer protocol
// and the per-shard snapshot semantics; race-detector builds route reads
// through the lock (read_racedetector.go explains why).
//
// Cross-shard batch operations scatter the key column per shard in one
// stable pass, execute shard-major so each shard's sequence is validated
// (reads) or its lock taken (writes) once per batch, and gather results
// back to the callers' lanes in input order.
//
// # Incremental resize
//
// The schemes' own growth path is a stop-the-world rehash: the mutation
// that crosses the load threshold pays for re-inserting every live entry.
// Under concurrent traffic that is a tail-latency spike proportional to
// the shard size. Engine disables scheme-level growth and grows shards
// itself, incrementally:
//
//   - When a shard crosses the configured threshold, the engine allocates
//     the next-power-of-two successor table and FREEZES the old one: from
//     that point no write ever touches the old table again. New and
//     updated values go to the successor; deletes of keys still living in
//     the old table are recorded in a small overlay of dead keys.
//   - Because the old table is immutable, a resumable cursor over it is
//     safe. Every subsequent mutation on the shard first migrates a
//     bounded chunk of entries (Config.MigrationChunk) from the cursor
//     into the successor, then applies itself. Reads consult the
//     successor first, then the frozen table (minus the dead overlay).
//   - When the cursor is exhausted the successor becomes the shard's
//     table and the frozen one is dropped wholesale.
//
// Each transition (freeze, promote, rebuild) republishes the shard's
// view inside the writer's seqlock window, so readers move between
// epochs atomically. No operation ever pays a full-shard rehash; the
// worst-case mutation cost is one bounded migration chunk plus the
// operation itself (see BenchmarkResizeTail). The successor is sized so
// that migration always completes before it can itself fill: each
// mutation moves at least one entry, so at most capacity(old) mutations
// run against a successor with capacity(old) spare slots beyond the
// threshold.
//
// # Graceful degradation
//
// Every table allocation — construction, the 2x successor, rebuilds —
// goes through one fallible chokepoint. When allocating a successor
// fails, the shard does not fail with it: it enters a degraded-but-
// serving state on its frozen current table. Reads, deletes, and
// in-place updates keep working; only inserts that genuinely need new
// slots surface a typed *DegradedError (wrapping the table's refusal,
// so errors.Is(err, table.ErrFull) still holds). Subsequent mutations
// retry the allocation under seeded exponential backoff with per-shard
// jitter, and the shard heals in place the moment an allocation
// succeeds (or the pressure recedes below the growth threshold).
// Stats() exposes the degraded-shard count and the failure/retry
// counters.
//
// # Concurrency contract
//
// Every Engine method is safe for arbitrary concurrent use. Point and
// batched operations are linearizable per key: each key lives in exactly
// one shard, whose writers are serialized by its lock, and a validated
// wait-free read is a point-in-time observation of that shard (see
// view.go). Get, GetBatch and Len take no locks at all — readers never
// block writers, and a read that keeps colliding with writer windows
// (readMaxRetries torn attempts) parks on the writer lock instead of
// spinning forever. There is no cross-shard snapshot: Len, Stats and
// iteration observe one shard at a time and may observe different shards
// at different instants. Range and ForEachTable hold the shard's writer
// lock while they visit it (their callbacks must observe a quiescent
// shard exactly once, which the optimistic protocol cannot promise).
// Callbacks passed to Upsert/UpsertBatch/Range/All run while a shard
// lock is held and must not call back into the engine.
package shard

import (
	"fmt"
	"iter"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/hashfn"
	"repro/internal/fault"
	"repro/internal/prng"
	"repro/obs"
)

// Table is the operation set Engine needs from each shard's table. It is a
// structural subset of table.Table, so every scheme in the table package
// (and anything wrapping one) satisfies it without this package importing
// table — which is what lets table.Handle delegate here without an import
// cycle.
type Table interface {
	Get(key uint64) (uint64, bool)
	Delete(key uint64) bool
	TryPut(key, val uint64) (inserted bool, err error)
	GetOrPut(key, val uint64) (actual uint64, loaded bool, err error)
	Upsert(key uint64, fn func(old uint64, exists bool) uint64) (uint64, error)
	GetBatch(keys, vals []uint64, ok []bool) int
	TryPutBatch(keys, vals []uint64) (inserted int, err error)
	GetOrPutBatch(keys, vals, out []uint64, loaded []bool) (inserted int, err error)
	UpsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (inserted int, err error)
	Len() int
	Capacity() int
	MemoryFootprint() uint64
	Range(fn func(key, val uint64) bool)
	Name() string
}

// DefaultMigrationChunk is the number of frozen-table entries a mutation
// migrates when Config.MigrationChunk is zero: large enough to finish a
// migration in a small fraction of the mutations that fit the successor,
// small enough to stay in the microsecond range per operation.
const DefaultMigrationChunk = 256

// routerSeedMix derives the router function's seed stream from the
// engine seed; it must stay independent of the per-shard table seeds.
const routerSeedMix = 0x9a77_e4b0_0f00_d001

// shardSeedStep spaces the per-shard table seeds (golden-ratio step).
const shardSeedStep = 0x9e3779b97f4a7c15

// maxBackoff caps a degraded shard's retry window: at most this many
// mutations pass between allocator retries, however long the allocator
// has been failing.
const maxBackoff = 256

// jitterSeedMix derives the per-shard backoff-jitter stream from the
// shard's table seed, independent of the hashing streams.
const jitterSeedMix = 0x5bd1_e995_7b93_b1a9

// Config parameterizes an Engine.
type Config struct {
	// Shards is the number of shards, rounded up to a power of two
	// (minimum 1). A good default for N concurrent goroutines is the
	// power of two >= 2N.
	Shards int
	// Capacity is the initial TOTAL slot capacity, split evenly across
	// shards.
	Capacity int
	// GrowAt is the per-shard load factor at which incremental resize
	// begins. Zero disables growth entirely: mutations on a full shard
	// then surface the table's ErrFull. Values must be < 1.
	GrowAt float64
	// Family is the hash-function class the ROUTER is drawn from
	// (default Mult). The per-shard tables hash with their own functions,
	// configured by whatever NewTable builds; the router is seeded from
	// an independent stream so its bits are uncorrelated with theirs.
	Family hashfn.Family
	// Seed derives the router and the per-shard table seeds. Two engines
	// built from the same Config are identical.
	Seed uint64
	// MigrationChunk bounds the entries migrated per mutation during a
	// resize (default DefaultMigrationChunk).
	MigrationChunk int
	// NewTable builds one shard's table with the given slot capacity and
	// seed. It is called Shards times at construction and once per
	// resize. The tables it returns must have scheme-level growth
	// DISABLED (the engine grows shards itself); the engine mutates them
	// only under the shard's writer lock, and wait-free readers probe
	// them through the seqlock protocol. Required.
	NewTable func(capacity int, seed uint64) (Table, error)
}

// kv is one pulled-but-unplaced migration entry parked on the carry
// list. The entry still lives (readable) in the frozen table; the carry
// list only remembers that the cursor already consumed it, so a failed
// rebuild can never lose it.
type kv struct{ k, v uint64 }

// shardState is one shard: the published read view plus the writer-side
// state. Structural read state (tables, dead overlay, degraded flag)
// lives in the view — the single source of truth for readers AND
// writers; everything else here is either atomic (seq, live) or
// writer-private under mu (cursor, carry, backoff).
type shardState struct {
	// mu serializes writers. Readers touch it only on the bounded-retry
	// fallback path (and in race-detector builds).
	mu sync.Mutex
	// seq is the shard's seqlock word: odd while a writer is inside its
	// mutation window, bumped on entry and exit (lockShard/unlockShard).
	seq atomic.Uint64
	// view is the published epoch readers probe; see view.go.
	view atomic.Pointer[view]
	// live counts live entries (engine-maintained; cur+next dedup'd).
	// Atomic so Len is one wait-free load per shard.
	live atomic.Int64

	seed   uint64 // table seed, reused for every successor generation
	idx    int    // shard index (for DegradedError)
	jitter *prng.SplitMix64

	// Migration cursor state; nil when no resize is in flight. (The
	// successor table and dead overlay live in the view.)
	pull  func() (k, v uint64, ok bool)
	stop  func()
	carry []kv // cursor entries the successor refused (see advance)

	// Degraded-state retry scheduling; zero when the allocator is
	// healthy. (The degraded flag itself lives in the view.)
	backoff int // current retry window (mutations), doubles per failure
	retryIn int // mutations left before the next allocator retry
}

// Engine is the sharded concurrent engine. See the package documentation
// for the architecture and the concurrency contract. The zero value is
// not usable; construct with New.
type Engine struct {
	shards []shardState
	router hashfn.Function
	shift  uint // 64 - log2(len(shards))
	growAt float64
	chunk  int
	label  string // shard-0 table name, cached at construction (lock-free Name)
	create func(capacity int, seed uint64) (Table, error)

	migStarted atomic.Uint64
	migDone    atomic.Uint64
	migMoved   atomic.Uint64
	migChunks  atomic.Uint64
	migNanos   atomic.Uint64
	rebuilds   atomic.Uint64

	allocFails   atomic.Uint64
	allocRetries atomic.Uint64

	// Wait-free read-path accounting: torn-window retries, falls back to
	// the writer lock, and view publications (see view.go).
	readRetries   atomic.Uint64
	readFallbacks atomic.Uint64
	viewPublishes atomic.Uint64

	// metrics is the optional telemetry attachment (SetMetrics); nil —
	// the default — keeps every hook to one atomic pointer load.
	metrics atomic.Pointer[Metrics]
}

// New builds an Engine from cfg.
func New(cfg Config) (*Engine, error) {
	if cfg.NewTable == nil {
		return nil, fmt.Errorf("shard: Config.NewTable is required")
	}
	if cfg.GrowAt < 0 || cfg.GrowAt >= 1 {
		return nil, fmt.Errorf("shard: grow threshold %v outside [0, 1); use 0 to disable growth", cfg.GrowAt)
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("shard: negative capacity %d", cfg.Capacity)
	}
	p := cfg.Shards
	if p < 1 {
		p = 1
	}
	p = 1 << uint(bits.Len(uint(p-1)))
	family := cfg.Family
	if family == nil {
		family = hashfn.MultFamily{}
	}
	chunk := cfg.MigrationChunk
	if chunk <= 0 {
		chunk = DefaultMigrationChunk
	}
	e := &Engine{
		shards: make([]shardState, p),
		router: family.New(cfg.Seed ^ routerSeedMix),
		shift:  uint(64 - bits.TrailingZeros(uint(p))),
		growAt: cfg.GrowAt,
		chunk:  chunk,
		create: cfg.NewTable,
	}
	perShard := cfg.Capacity / p
	for i := range e.shards {
		s := &e.shards[i]
		s.idx = i
		s.seed = cfg.Seed + uint64(i)*shardSeedStep
		s.jitter = prng.NewSplitMix64(s.seed ^ jitterSeedMix)
		t, err := e.allocTable(perShard, s.seed)
		if err != nil {
			return nil, err
		}
		// Even the birth epoch goes through the publication chokepoint,
		// inside a (trivially uncontended) seqlock window.
		s.lockShard()
		e.publish(s, &view{cur: t})
		s.unlockShard()
	}
	e.label = e.shards[0].view.Load().cur.Name()
	return e, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Name identifies the engine, e.g. "Sharded[8xRHMult]". The table label
// is cached at construction, so Name is lock-free and safe concurrently
// with migrations swapping shard tables.
func (e *Engine) Name() string {
	return fmt.Sprintf("Sharded[%dx%s]", len(e.shards), e.label)
}

// shardFor returns the shard owning key.
func (e *Engine) shardFor(key uint64) *shardState {
	if len(e.shards) == 1 {
		return &e.shards[0]
	}
	return &e.shards[e.router.Hash(key)>>e.shift]
}

// shardIndex returns the index of the shard owning key.
func (e *Engine) shardIndex(key uint64) int {
	if len(e.shards) == 1 {
		return 0
	}
	return int(e.router.Hash(key) >> e.shift)
}

// ---------------------------------------------------------------------------
// Reads (wait-free: no shard locks; see view.go and read.go)
// ---------------------------------------------------------------------------

// Get returns the value stored under key and whether it is present.
// Wait-free: no lock is taken unless the read keeps colliding with
// writer windows and falls back (see the package documentation).
func (e *Engine) Get(key uint64) (uint64, bool) {
	s := e.shardFor(key)
	m, start := e.opStart(key)
	v, ok := e.readGet(s, key)
	if m != nil {
		m.Get.Record(s.idx, obs.Now()-start)
	}
	return v, ok
}

// Len returns the number of live entries across all shards: one atomic
// load per shard, no locks. With concurrent writers the result is a
// per-shard-consistent sum, not a point-in-time snapshot (see view.go's
// snapshot semantics).
func (e *Engine) Len() int {
	var n int64
	for i := range e.shards {
		n += e.shards[i].live.Load()
	}
	return int(n)
}

// Capacity returns the total slot capacity across shards; a migrating
// shard counts its successor's capacity (the one being filled).
func (e *Engine) Capacity() int {
	n := 0
	for i := range e.shards {
		var c int
		e.readSnapshot(&e.shards[i], func(v *view) {
			if v.next != nil {
				c = v.next.Capacity()
			} else {
				c = v.cur.Capacity()
			}
		})
		n += c
	}
	return n
}

// LoadFactor returns Len/Capacity.
func (e *Engine) LoadFactor() float64 {
	return float64(e.Len()) / float64(e.Capacity())
}

// MemoryFootprint returns the total bytes across shards, counting both
// tables of a migrating shard.
func (e *Engine) MemoryFootprint() uint64 {
	var n uint64
	for i := range e.shards {
		var b uint64
		e.readSnapshot(&e.shards[i], func(v *view) {
			b = v.cur.MemoryFootprint()
			if v.next != nil {
				b += v.next.MemoryFootprint()
			}
		})
		n += b
	}
	return n
}

// ---------------------------------------------------------------------------
// Incremental migration machinery (inside the writer's seqlock window)
// ---------------------------------------------------------------------------

// allocTable is the one chokepoint every table allocation goes through —
// construction, successor allocation, and rebuilds — so a failing
// NewTable factory (or the armed fault injector's Alloc kind) exercises
// every degradation path.
func (e *Engine) allocTable(capacity int, seed uint64) (Table, error) {
	if fault.Should(fault.Alloc) {
		return nil, fmt.Errorf("shard: allocating %d-slot table: %w", capacity, fault.ErrInjected)
	}
	return e.create(capacity, seed)
}

// beginMigration freezes the shard's table and publishes the epoch with
// the successor and the dead-key overlay installed. The successor is
// sized from LIVE ENTRIES with the frozen capacity as a floor: at the
// growth threshold that is the classic doubling, but a refusal-driven
// migration far below the threshold (a failed Cuckoo kick chain, or an
// injected refusal) gets a same-capacity successor instead of an
// unconditional doubling — repeated transient refusals must not inflate
// capacity without live entries to justify it. The overlay is pre-sized
// for the frozen live count (the most keys that can ever be marked
// dead), so it never grows while published.
func (e *Engine) beginMigration(s *shardState) error {
	v := s.view.Load()
	ga := e.growAt
	if ga <= 0 {
		ga = 0.85
	}
	capacity := v.cur.Capacity()
	frozenLive := v.cur.Len()
	for float64(frozenLive) >= ga*float64(capacity) {
		capacity *= 2
	}
	nt, err := e.allocTable(capacity, s.seed)
	if err != nil {
		return err
	}
	cur := v.cur
	s.pull, s.stop = iter.Pull2(iter.Seq2[uint64, uint64](func(yield func(uint64, uint64) bool) {
		cur.Range(yield)
	}))
	e.publish(s, &view{cur: cur, next: nt, dead: newDeadSet(frozenLive), degraded: v.degraded})
	e.migStarted.Add(1)
	return nil
}

// finishMigration publishes the epoch that promotes the successor and
// drops the frozen table.
func (e *Engine) finishMigration(s *shardState) {
	s.stop()
	v := s.view.Load()
	e.publish(s, &view{cur: v.next, degraded: v.degraded})
	s.pull, s.stop = nil, nil
	e.migDone.Add(1)
}

// advance migrates up to n cursor entries into the successor. Entries the
// overlay marks dead are skipped; entries already written to the successor
// (updated or re-inserted since the freeze) keep the successor's value —
// GetOrPut never overwrites.
//
// Failures never abort the mutation hosting the migration step: a
// successor refusal parks the pulled entry on the carry list (it is
// still readable in the frozen table) and falls back to a rebuild, and
// a failed rebuild allocation leaves the shard degraded-but-serving.
// The migration can only finish once the carry list is empty — the
// carry loop runs before any new entry is pulled — so a failed rebuild
// can never lose an already-pulled entry.
func (e *Engine) advance(s *shardState, n int) {
	if !s.view.Load().migrating() {
		return
	}
	// Chunk accounting only runs while a resize is in flight, so the
	// steady-state mutation path keeps its zero-cost early return above;
	// during a migration two clock reads vanish under the chunk's moves.
	start := obs.Now()
	e.advanceChunk(s, n)
	dur := obs.Now() - start
	e.migChunks.Add(1)
	e.migNanos.Add(uint64(dur))
	if m := e.metrics.Load(); m != nil {
		m.MigrationChunk.Record(s.idx, dur)
	}
}

// advanceChunk is advance's working body: the carry retry loop followed
// by up to n cursor pulls. The view it loads stays current throughout:
// the only republications it can trigger (finishMigration, tryRebuild)
// are immediately followed by a return.
func (e *Engine) advanceChunk(s *shardState, n int) {
	fault.MaybeStall()
	v := s.view.Load()
	for len(s.carry) > 0 {
		c := s.carry[0]
		if v.dead.has(c.k) {
			s.carry = s.carry[1:]
			continue
		}
		_, loaded, err := v.next.GetOrPut(c.k, c.v)
		if err != nil {
			// Still refused: only a rebuild can place it. Honor the
			// degraded backoff when a previous rebuild allocation failed.
			if v.degraded && !e.retryDue(s) {
				return
			}
			e.tryRebuild(s)
			return
		}
		if !loaded {
			e.migMoved.Add(1)
		}
		s.carry = s.carry[1:]
	}
	for i := 0; i < n; i++ {
		k, val, ok := s.pull()
		if !ok {
			e.finishMigration(s)
			return
		}
		if v.dead.has(k) {
			continue
		}
		var (
			loaded bool
			err    error
		)
		if fault.Should(fault.Full) {
			err = fmt.Errorf("migration step for key %#x: %w", k, fault.ErrInjected)
		} else {
			_, loaded, err = v.next.GetOrPut(k, val)
		}
		if err != nil {
			// The successor refused the key (a Cuckoo kick chain can fail
			// below any load threshold — or the refusal was injected).
			// Park it and stop this step: the carry loop retries on the
			// next mutation and escalates to a rebuild only if the key is
			// refused AGAIN, so a transient injected refusal costs one
			// deferred entry rather than a capacity-doubling rebuild.
			s.carry = append(s.carry, kv{k, val})
			return
		}
		if !loaded {
			e.migMoved.Add(1)
		}
	}
}

// maybeGrow starts a migration when s has crossed the threshold. The
// growth is pre-emptive, so an allocator failure here is absorbed — the
// hosting mutation already succeeded — and the shard degrades instead.
func (e *Engine) maybeGrow(s *shardState) {
	v := s.view.Load()
	if e.growAt <= 0 || v.migrating() || v.degraded {
		return
	}
	if float64(v.cur.Len()) < e.growAt*float64(v.cur.Capacity()) {
		return
	}
	if err := e.beginMigration(s); err != nil {
		e.enterDegraded(s)
	}
}

// enterDegraded records an allocator failure: the shard keeps serving
// from its current state (the degraded flag is republished so lock-free
// observers see it) and the next retry is scheduled with seeded
// exponential backoff plus per-shard jitter (so shards that failed
// together do not hammer a struggling allocator in lockstep).
func (e *Engine) enterDegraded(s *shardState) {
	e.allocFails.Add(1)
	v := s.view.Load()
	if !v.degraded {
		s.backoff = 1
		if m := e.metrics.Load(); m != nil {
			m.DegradedEnter.Inc(s.idx)
		}
		nv := *v
		nv.degraded = true
		e.publish(s, &nv)
	} else if s.backoff < maxBackoff {
		s.backoff *= 2
	}
	s.retryIn = s.backoff + int(s.jitter.Next()%uint64(s.backoff))
}

// heal clears a shard's degraded state — the single exit point of the
// degraded-but-serving mode, so the heal transition is counted exactly
// once however the shard recovered (pressure receded, retry succeeded,
// or a rebuild landed). Calling it on a healthy shard (tryRebuild on a
// non-degraded shard) is a no-op beyond re-zeroing zero fields.
func (e *Engine) heal(s *shardState) {
	v := s.view.Load()
	if v.degraded {
		if m := e.metrics.Load(); m != nil {
			m.Healed.Inc(s.idx)
		}
		nv := *v
		nv.degraded = false
		e.publish(s, &nv)
	}
	s.backoff, s.retryIn = 0, 0
}

// retryDue ticks a degraded shard's backoff window (one tick per
// mutation) and reports whether an allocator retry is due now.
func (e *Engine) retryDue(s *shardState) bool {
	if s.retryIn > 0 {
		s.retryIn--
		return false
	}
	e.allocRetries.Add(1)
	return true
}

// degradedTick runs once per mutation on a degraded shard without a
// successor: if the pressure receded below the growth threshold the
// shard simply heals; otherwise, once the backoff window has elapsed,
// it retries the successor allocation and heals on success.
func (e *Engine) degradedTick(s *shardState) {
	v := s.view.Load()
	if !v.degraded || v.migrating() {
		return
	}
	if float64(v.cur.Len()) < e.growAt*float64(v.cur.Capacity()) {
		e.heal(s)
		return
	}
	if !e.retryDue(s) {
		return
	}
	if err := e.beginMigration(s); err != nil {
		e.enterDegraded(s)
		return
	}
	e.heal(s)
}

// growForRefusal starts a migration in response to a table refusal.
// When the shard is already degraded (this mutation's retry, if due,
// already ran in degradedTick) or the allocation fails, it converts the
// refusal into a typed *DegradedError; on success the caller proceeds
// onto the freshly installed successor.
func (e *Engine) growForRefusal(s *shardState, refusal error) error {
	if s.view.Load().degraded {
		return &DegradedError{Shard: s.idx, Err: refusal}
	}
	if err := e.beginMigration(s); err != nil {
		e.enterDegraded(s)
		return &DegradedError{Shard: s.idx, Err: refusal}
	}
	return nil
}

// Drain drives every shard's deferred work — in-flight incremental
// migrations, parked carry entries, and degraded-state allocator retries
// — to completion without waiting for organic mutations to tick it
// forward, and reports whether every shard ended idle (neither migrating
// nor degraded). It is the maintenance hook for the degraded state: once
// the table allocator recovers, one Drain call heals the engine instead
// of the next few hundred mutations. A false return means some shard is
// still degraded because its allocation kept failing even after sitting
// out the full backoff window several times; the shard keeps serving and
// a later Drain (or organic mutation load) will retry.
//
// Drain takes each shard's writer lock in turn, so it may briefly block
// concurrent mutations shard by shard, but never the whole engine (and
// never its wait-free readers).
func (e *Engine) Drain() bool {
	idle := true
	for i := range e.shards {
		s := &e.shards[i]
		s.lockShard()
		// Budget: the deepest backoff window (maxBackoff plus equal
		// jitter) a few times over, plus several full migrations' worth
		// of advances — enough for heal → grow → finish, never enough to
		// spin forever on a permanently failing allocator.
		v := s.view.Load()
		budget := 16*maxBackoff + 8*(v.cur.Capacity()/e.chunk+2)
		for it := 0; it < budget; it++ {
			v = s.view.Load()
			if !v.migrating() && !v.degraded {
				break
			}
			e.advance(s, e.chunk)
			e.degradedTick(s)
		}
		v = s.view.Load()
		if v.migrating() || v.degraded {
			idle = false
		}
		s.unlockShard()
	}
	return idle
}

// growForBatchRefusal is growForRefusal for the batched pipelines, where
// the refusal is recovered from (the range is re-applied scalar) rather
// than surfaced: it starts the migration or degrades the shard, and the
// scalar fallback loop reports per-key outcomes.
func (e *Engine) growForBatchRefusal(s *shardState) {
	v := s.view.Load()
	if v.degraded || v.migrating() {
		return
	}
	if err := e.beginMigration(s); err != nil {
		e.enterDegraded(s)
	}
}

// tryRebuild is rebuild with degraded-state accounting: a failed
// allocation flips the shard into the degraded state (carry and cursor
// intact), success heals it.
func (e *Engine) tryRebuild(s *shardState) bool {
	if err := e.rebuild(s); err != nil {
		e.enterDegraded(s)
		return false
	}
	e.heal(s)
	return true
}

// rebuild is the pathological-path escape hatch: when the successor itself
// refuses an insert mid-migration, the shard is rebuilt stop-the-world
// into a fresh table (doubling until everything fits). This is the only
// path that pays a full-shard copy; it is unreachable for the probing and
// chained schemes (their growth-disabled tables refuse only when 100%
// full, which the threshold prevents) and requires a failed kick chain
// for Cuckoo.
func (e *Engine) rebuild(s *shardState) error {
	v := s.view.Load()
	capacity := v.cur.Capacity() * 2
	if v.next != nil {
		capacity = v.next.Capacity() * 2
	}
	for {
		nt, err := e.allocTable(capacity, s.seed)
		if err != nil {
			return err
		}
		ok := true
		if v.next != nil {
			v.next.Range(func(k, val uint64) bool {
				if _, err = nt.TryPut(k, val); err != nil {
					ok = false
				}
				return ok
			})
		}
		if ok {
			v.cur.Range(func(k, val uint64) bool {
				if v.dead.has(k) {
					return true
				}
				// Keep-first: keys already copied from the successor hold
				// the fresh value; the frozen table's copy is stale.
				if _, _, err = nt.GetOrPut(k, val); err != nil {
					ok = false
				}
				return ok
			})
		}
		if !ok {
			capacity *= 2
			continue
		}
		if s.stop != nil {
			s.stop()
		}
		e.publish(s, &view{cur: nt, degraded: v.degraded})
		s.pull, s.stop = nil, nil
		s.carry = nil // every entry (carried or not) is in the rebuilt table
		e.rebuilds.Add(1)
		return nil
	}
}

// ---------------------------------------------------------------------------
// Mutations (writer lock + seqlock window)
// ---------------------------------------------------------------------------

// Put inserts or updates key -> val, reporting whether the key was newly
// inserted. With growth enabled the error is always nil; with GrowAt zero
// a full shard surfaces the table's ErrFull.
func (e *Engine) Put(key, val uint64) (bool, error) {
	s := e.shardFor(key)
	m, start := e.opStart(key)
	s.lockShard()
	ins, err := e.putLocked(s, key, val)
	s.unlockShard()
	if m != nil {
		m.Put.Record(s.idx, obs.Now()-start)
	}
	return ins, err
}

func (e *Engine) putLocked(s *shardState, key, val uint64) (bool, error) {
	e.advance(s, e.chunk)
	e.degradedTick(s)
	v := s.view.Load()
	if !v.migrating() {
		var (
			ins bool
			err error
		)
		if fault.Should(fault.Full) {
			err = fmt.Errorf("put %#x: %w", key, fault.ErrInjected)
		} else {
			ins, err = v.cur.TryPut(key, val)
		}
		if err == nil {
			if ins {
				s.live.Add(1)
				e.maybeGrow(s)
			}
			return ins, nil
		}
		if e.growAt <= 0 {
			return false, err
		}
		// The table refused the insert (full, or a failed Cuckoo kick
		// chain below the threshold): grow now, write to the successor.
		if derr := e.growForRefusal(s, err); derr != nil {
			return false, derr
		}
		v = s.view.Load() // the epoch with the successor installed
	}
	// Migrating: the frozen table is read-only, so the write lands in the
	// successor; one probe sequence there decides update-vs-insert, with
	// the frozen table consulted only on a successor miss.
	inserted := false
	_, err := v.next.Upsert(key, func(_ uint64, exists bool) uint64 {
		if !exists {
			if _, ok := v.curLive(key); !ok {
				inserted = true
			}
		}
		return val
	})
	if err != nil {
		if !e.tryRebuild(s) {
			return false, &DegradedError{Shard: s.idx, Err: err}
		}
		ins, err := s.view.Load().cur.TryPut(key, val)
		if ins {
			s.live.Add(1)
		}
		return ins, err
	}
	if inserted {
		s.live.Add(1)
	}
	return inserted, nil
}

// Delete removes key, reporting whether it was present.
func (e *Engine) Delete(key uint64) bool {
	s := e.shardFor(key)
	m, start := e.opStart(key)
	s.lockShard()
	// Deletes advance the migration and tick the degraded backoff too:
	// every mutation makes progress, and a delete that frees space can
	// heal a degraded shard outright (the pressure-receded path).
	e.advance(s, e.chunk)
	e.degradedTick(s)
	deleted := s.deleteLocked(key)
	s.unlockShard()
	if m != nil {
		m.Delete.Record(s.idx, obs.Now()-start)
	}
	return deleted
}

func (s *shardState) deleteLocked(key uint64) bool {
	v := s.view.Load()
	if !v.migrating() {
		if v.cur.Delete(key) {
			s.live.Add(-1)
			return true
		}
		return false
	}
	deleted := v.next.Delete(key)
	// The frozen table may hold the key too (its only copy, or a stale
	// shadow of the successor's); either way its entry is now dead.
	if !v.dead.has(key) {
		if _, ok := v.cur.Get(key); ok {
			v.dead.add(key)
			deleted = true
		}
	}
	if deleted {
		s.live.Add(-1)
	}
	return deleted
}

// GetOrPut returns the value stored under key if present (loaded true);
// otherwise it inserts val and returns it (loaded false). One probe
// sequence in the steady state; during a migration a successor miss adds
// one probe of the frozen table.
func (e *Engine) GetOrPut(key, val uint64) (actual uint64, loaded bool, err error) {
	s := e.shardFor(key)
	m, start := e.opStart(key)
	s.lockShard()
	actual, loaded, err = e.getOrPutLocked(s, key, val)
	s.unlockShard()
	if m != nil {
		m.GetOrPut.Record(s.idx, obs.Now()-start)
	}
	return actual, loaded, err
}

func (e *Engine) getOrPutLocked(s *shardState, key, val uint64) (uint64, bool, error) {
	e.advance(s, e.chunk)
	e.degradedTick(s)
	v := s.view.Load()
	if !v.migrating() {
		var (
			actual uint64
			loaded bool
			err    error
		)
		if fault.Should(fault.Full) {
			err = fmt.Errorf("getorput %#x: %w", key, fault.ErrInjected)
		} else {
			actual, loaded, err = v.cur.GetOrPut(key, val)
		}
		if err == nil {
			if !loaded {
				s.live.Add(1)
				e.maybeGrow(s)
			}
			return actual, loaded, nil
		}
		if e.growAt <= 0 {
			return 0, false, err
		}
		if derr := e.growForRefusal(s, err); derr != nil {
			return 0, false, derr
		}
		v = s.view.Load()
	}
	actual, loaded := uint64(0), false
	_, err := v.next.Upsert(key, func(old uint64, exists bool) uint64 {
		if exists {
			actual, loaded = old, true
			return old
		}
		if cv, ok := v.curLive(key); ok {
			// Eager migration: the key's value moves to the successor so
			// the one probe sequence that found its slot also claims it.
			actual, loaded = cv, true
			return cv
		}
		actual = val
		return val
	})
	if err != nil {
		if !e.tryRebuild(s) {
			return 0, false, &DegradedError{Shard: s.idx, Err: err}
		}
		actual, loaded, err = s.view.Load().cur.GetOrPut(key, val)
		if err == nil && !loaded {
			s.live.Add(1)
		}
		return actual, loaded, err
	}
	if !loaded {
		s.live.Add(1)
	}
	return actual, loaded, nil
}

// Upsert applies fn to the value stored under key (exists true) or to
// (0, false) when absent, stores the result, and returns it. fn runs under
// the shard's writer lock and must not call back into the engine. fn is
// invoked exactly once per call.
func (e *Engine) Upsert(key uint64, fn func(old uint64, exists bool) uint64) (uint64, error) {
	s := e.shardFor(key)
	m, start := e.opStart(key)
	s.lockShard()
	nv, err := e.upsertLocked(s, key, fn)
	s.unlockShard()
	if m != nil {
		m.Upsert.Record(s.idx, obs.Now()-start)
	}
	return nv, err
}

func (e *Engine) upsertLocked(s *shardState, key uint64, fn func(old uint64, exists bool) uint64) (uint64, error) {
	e.advance(s, e.chunk)
	e.degradedTick(s)
	// A table refusal can only happen before fn runs (the kernels call
	// fn only once a slot is secured), so the grow-and-retry paths below
	// may pass wrap again without breaking the invoked-exactly-once
	// contract.
	inserted := false
	wrap := func(old uint64, exists bool) uint64 {
		if !exists {
			inserted = true
		}
		return fn(old, exists)
	}
	v := s.view.Load()
	if !v.migrating() {
		var (
			nv  uint64
			err error
		)
		if fault.Should(fault.Full) {
			err = fmt.Errorf("upsert %#x: %w", key, fault.ErrInjected)
		} else {
			nv, err = v.cur.Upsert(key, wrap)
		}
		if err == nil {
			if inserted {
				s.live.Add(1)
				e.maybeGrow(s)
			}
			return nv, nil
		}
		if e.growAt <= 0 {
			return 0, err
		}
		if derr := e.growForRefusal(s, err); derr != nil {
			return 0, derr
		}
		// A migration is now in flight; fall through to the migrating
		// path, which consults the frozen table — so fn still observes
		// the key's current value (a refusal does not imply absence once
		// injected refusals exist).
		v = s.view.Load()
	}
	inserted = false
	nv, err := v.next.Upsert(key, func(old uint64, exists bool) uint64 {
		if exists {
			return wrap(old, true)
		}
		if cv, ok := v.curLive(key); ok {
			return wrap(cv, true) // eager migration of the frozen value
		}
		inserted = true
		return wrap(0, false)
	})
	if err != nil {
		if !e.tryRebuild(s) {
			return 0, &DegradedError{Shard: s.idx, Err: err}
		}
		// The rebuilt table holds every live entry (the successor refused
		// before calling fn), so the retry is a plain single-table upsert
		// with correct exists semantics — a key that was still living in
		// the frozen table is seen, not re-created from (0, false).
		inserted = false
		nv, err := s.view.Load().cur.Upsert(key, wrap)
		if err != nil {
			return 0, err
		}
		if inserted {
			s.live.Add(1)
		}
		return nv, nil
	}
	if inserted {
		s.live.Add(1)
	}
	return nv, nil
}

// TryPut is Put under its historical name on the table.Table surface.
func (e *Engine) TryPut(key, val uint64) (bool, error) { return e.Put(key, val) }
