// Package shard implements the repo's one striping core: Engine, a
// concurrency-safe sharded hash-table engine with incremental resize. It
// replaces the two earlier copies of the paper's striped-locking extension
// (§1) — table.Handle's partitioned mode and partition.Striped — both of
// which now delegate here.
//
// # Architecture
//
// An Engine routes every key to one of P shards (P a power of two) by the
// top bits of an independent router hash, exactly like the partitioned
// radix scheme the paper cites for parallel joins. Each shard owns one
// single-threaded table behind a sync.RWMutex: read-only operations (Get,
// GetBatch, Len, Stats, Range) take the read lock and run concurrently;
// mutations take the write lock. Cross-shard batch operations scatter the
// key column per shard in one stable pass, execute shard-major so each
// lock is taken once per batch, and gather results back to the callers'
// lanes in input order.
//
// # Incremental resize
//
// The schemes' own growth path is a stop-the-world rehash: the mutation
// that crosses the load threshold pays for re-inserting every live entry.
// Under concurrent traffic that is a tail-latency spike proportional to
// the shard size. Engine disables scheme-level growth and grows shards
// itself, incrementally:
//
//   - When a shard crosses the configured threshold, the engine allocates
//     the next-power-of-two successor table and FREEZES the old one: from
//     that point no write ever touches the old table again. New and
//     updated values go to the successor; deletes of keys still living in
//     the old table are recorded in a small overlay of dead keys.
//   - Because the old table is immutable, a resumable cursor over it is
//     safe. Every subsequent mutation on the shard first migrates a
//     bounded chunk of entries (Config.MigrationChunk) from the cursor
//     into the successor, then applies itself. Reads consult the
//     successor first, then the frozen table (minus the dead overlay).
//   - When the cursor is exhausted the successor becomes the shard's
//     table and the frozen one is dropped wholesale.
//
// No operation ever pays a full-shard rehash; the worst-case mutation
// cost is one bounded migration chunk plus the operation itself (see
// BenchmarkResizeTail). The successor is sized so that migration always
// completes before it can itself fill: each mutation moves at least one
// entry, so at most capacity(old) mutations run against a successor with
// capacity(old) spare slots beyond the threshold.
//
// # Concurrency contract
//
// Every Engine method is safe for arbitrary concurrent use. Point and
// batched operations are linearizable per key (each key lives in exactly
// one shard, and that shard's lock serializes its writers against its
// readers). There is no cross-shard snapshot: Len, Stats and iteration
// lock one shard at a time and may observe different shards at different
// instants. Callbacks passed to Upsert/UpsertBatch/Range/All run while a
// shard lock is held and must not call back into the engine.
package shard

import (
	"fmt"
	"iter"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/hashfn"
)

// Table is the operation set Engine needs from each shard's table. It is a
// structural subset of table.Table, so every scheme in the table package
// (and anything wrapping one) satisfies it without this package importing
// table — which is what lets table.Handle delegate here without an import
// cycle.
type Table interface {
	Get(key uint64) (uint64, bool)
	Delete(key uint64) bool
	TryPut(key, val uint64) (inserted bool, err error)
	GetOrPut(key, val uint64) (actual uint64, loaded bool, err error)
	Upsert(key uint64, fn func(old uint64, exists bool) uint64) (uint64, error)
	GetBatch(keys, vals []uint64, ok []bool) int
	TryPutBatch(keys, vals []uint64) (inserted int, err error)
	GetOrPutBatch(keys, vals, out []uint64, loaded []bool) (inserted int, err error)
	UpsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (inserted int, err error)
	Len() int
	Capacity() int
	MemoryFootprint() uint64
	Range(fn func(key, val uint64) bool)
	Name() string
}

// DefaultMigrationChunk is the number of frozen-table entries a mutation
// migrates when Config.MigrationChunk is zero: large enough to finish a
// migration in a small fraction of the mutations that fit the successor,
// small enough to stay in the microsecond range per operation.
const DefaultMigrationChunk = 256

// routerSeedMix derives the router function's seed stream from the
// engine seed; it must stay independent of the per-shard table seeds.
const routerSeedMix = 0x9a77_e4b0_0f00_d001

// shardSeedStep spaces the per-shard table seeds (golden-ratio step).
const shardSeedStep = 0x9e3779b97f4a7c15

// Config parameterizes an Engine.
type Config struct {
	// Shards is the number of shards, rounded up to a power of two
	// (minimum 1). A good default for N concurrent goroutines is the
	// power of two >= 2N.
	Shards int
	// Capacity is the initial TOTAL slot capacity, split evenly across
	// shards.
	Capacity int
	// GrowAt is the per-shard load factor at which incremental resize
	// begins. Zero disables growth entirely: mutations on a full shard
	// then surface the table's ErrFull. Values must be < 1.
	GrowAt float64
	// Family is the hash-function class the ROUTER is drawn from
	// (default Mult). The per-shard tables hash with their own functions,
	// configured by whatever NewTable builds; the router is seeded from
	// an independent stream so its bits are uncorrelated with theirs.
	Family hashfn.Family
	// Seed derives the router and the per-shard table seeds. Two engines
	// built from the same Config are identical.
	Seed uint64
	// MigrationChunk bounds the entries migrated per mutation during a
	// resize (default DefaultMigrationChunk).
	MigrationChunk int
	// NewTable builds one shard's table with the given slot capacity and
	// seed. It is called Shards times at construction and once per
	// resize. The tables it returns must have scheme-level growth
	// DISABLED (the engine grows shards itself) and are only ever used
	// single-threaded under the shard lock. Required.
	NewTable func(capacity int, seed uint64) (Table, error)
}

// shardState is one shard: a table behind a RWMutex, plus the incremental
// migration state while a resize is in flight.
type shardState struct {
	mu   sync.RWMutex
	cur  Table
	live int    // live entries (engine-maintained; cur+next dedup'd)
	seed uint64 // table seed, reused for every successor generation

	// Migration state; all nil/zero when no resize is in flight.
	next Table               // successor table; all writes go here
	dead map[uint64]struct{} // keys whose frozen-cur entry is deleted
	pull func() (k, v uint64, ok bool)
	stop func()
}

// migrating reports whether a resize is in flight (callers hold mu).
func (s *shardState) migrating() bool { return s.next != nil }

// Engine is the sharded concurrent engine. See the package documentation
// for the architecture and the concurrency contract. The zero value is
// not usable; construct with New.
type Engine struct {
	shards []shardState
	router hashfn.Function
	shift  uint // 64 - log2(len(shards))
	growAt float64
	chunk  int
	label  string // shard-0 table name, cached at construction (lock-free Name)
	create func(capacity int, seed uint64) (Table, error)

	migStarted atomic.Uint64
	migDone    atomic.Uint64
	migMoved   atomic.Uint64
	rebuilds   atomic.Uint64
}

// New builds an Engine from cfg.
func New(cfg Config) (*Engine, error) {
	if cfg.NewTable == nil {
		return nil, fmt.Errorf("shard: Config.NewTable is required")
	}
	if cfg.GrowAt < 0 || cfg.GrowAt >= 1 {
		return nil, fmt.Errorf("shard: grow threshold %v outside [0, 1); use 0 to disable growth", cfg.GrowAt)
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("shard: negative capacity %d", cfg.Capacity)
	}
	p := cfg.Shards
	if p < 1 {
		p = 1
	}
	p = 1 << uint(bits.Len(uint(p-1)))
	family := cfg.Family
	if family == nil {
		family = hashfn.MultFamily{}
	}
	chunk := cfg.MigrationChunk
	if chunk <= 0 {
		chunk = DefaultMigrationChunk
	}
	e := &Engine{
		shards: make([]shardState, p),
		router: family.New(cfg.Seed ^ routerSeedMix),
		shift:  uint(64 - bits.TrailingZeros(uint(p))),
		growAt: cfg.GrowAt,
		chunk:  chunk,
		create: cfg.NewTable,
	}
	perShard := cfg.Capacity / p
	for i := range e.shards {
		s := &e.shards[i]
		s.seed = cfg.Seed + uint64(i)*shardSeedStep
		t, err := cfg.NewTable(perShard, s.seed)
		if err != nil {
			return nil, err
		}
		s.cur = t
	}
	e.label = e.shards[0].cur.Name()
	return e, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Name identifies the engine, e.g. "Sharded[8xRHMult]". The table label
// is cached at construction, so Name is lock-free and safe concurrently
// with migrations swapping shard tables.
func (e *Engine) Name() string {
	return fmt.Sprintf("Sharded[%dx%s]", len(e.shards), e.label)
}

// shardFor returns the shard owning key.
func (e *Engine) shardFor(key uint64) *shardState {
	if len(e.shards) == 1 {
		return &e.shards[0]
	}
	return &e.shards[e.router.Hash(key)>>e.shift]
}

// shardIndex returns the index of the shard owning key.
func (e *Engine) shardIndex(key uint64) int {
	if len(e.shards) == 1 {
		return 0
	}
	return int(e.router.Hash(key) >> e.shift)
}

// ---------------------------------------------------------------------------
// Reads (shard read lock)
// ---------------------------------------------------------------------------

// Get returns the value stored under key and whether it is present.
func (e *Engine) Get(key uint64) (uint64, bool) {
	s := e.shardFor(key)
	s.mu.RLock()
	v, ok := s.get(key)
	s.mu.RUnlock()
	return v, ok
}

// get is the migration-aware lookup (callers hold mu, read or write).
func (s *shardState) get(key uint64) (uint64, bool) {
	if s.next != nil {
		if v, ok := s.next.Get(key); ok {
			return v, true
		}
		if _, dead := s.dead[key]; dead {
			return 0, false
		}
	}
	return s.cur.Get(key)
}

// curLive looks key up in the frozen table, honoring the dead overlay
// (callers hold the write lock during a migration).
func (s *shardState) curLive(key uint64) (uint64, bool) {
	if _, dead := s.dead[key]; dead {
		return 0, false
	}
	return s.cur.Get(key)
}

// Len returns the number of live entries across all shards. With
// concurrent writers the result is a per-shard-consistent sum, not a
// point-in-time snapshot.
func (e *Engine) Len() int {
	n := 0
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		n += s.live
		s.mu.RUnlock()
	}
	return n
}

// Capacity returns the total slot capacity across shards; a migrating
// shard counts its successor's capacity (the one being filled).
func (e *Engine) Capacity() int {
	n := 0
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		if s.next != nil {
			n += s.next.Capacity()
		} else {
			n += s.cur.Capacity()
		}
		s.mu.RUnlock()
	}
	return n
}

// LoadFactor returns Len/Capacity.
func (e *Engine) LoadFactor() float64 {
	return float64(e.Len()) / float64(e.Capacity())
}

// MemoryFootprint returns the total bytes across shards, counting both
// tables of a migrating shard.
func (e *Engine) MemoryFootprint() uint64 {
	var n uint64
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		n += s.cur.MemoryFootprint()
		if s.next != nil {
			n += s.next.MemoryFootprint()
		}
		s.mu.RUnlock()
	}
	return n
}

// ---------------------------------------------------------------------------
// Incremental migration machinery (shard write lock held)
// ---------------------------------------------------------------------------

// beginMigration freezes s.cur and installs the successor table and the
// migration cursor.
func (e *Engine) beginMigration(s *shardState) error {
	nt, err := e.create(2*s.cur.Capacity(), s.seed)
	if err != nil {
		return err
	}
	s.next = nt
	s.dead = make(map[uint64]struct{})
	cur := s.cur
	s.pull, s.stop = iter.Pull2(iter.Seq2[uint64, uint64](func(yield func(uint64, uint64) bool) {
		cur.Range(yield)
	}))
	e.migStarted.Add(1)
	return nil
}

// finishMigration promotes the successor and drops the frozen table.
func (e *Engine) finishMigration(s *shardState) {
	s.stop()
	s.cur = s.next
	s.next, s.dead, s.pull, s.stop = nil, nil, nil, nil
	e.migDone.Add(1)
}

// advance migrates up to n cursor entries into the successor. Entries the
// overlay marks dead are skipped; entries already written to the successor
// (updated or re-inserted since the freeze) keep the successor's value —
// GetOrPut never overwrites.
func (e *Engine) advance(s *shardState, n int) error {
	if s.next == nil {
		return nil
	}
	for i := 0; i < n; i++ {
		k, v, ok := s.pull()
		if !ok {
			e.finishMigration(s)
			return nil
		}
		if _, dead := s.dead[k]; dead {
			continue
		}
		_, loaded, err := s.next.GetOrPut(k, v)
		if err != nil {
			// The successor refused the key (a Cuckoo kick chain can fail
			// below any load threshold). Fall back to a one-off rebuild.
			return e.rebuild(s)
		}
		if !loaded {
			e.migMoved.Add(1)
		}
	}
	return nil
}

// maybeGrow starts a migration when s has crossed the threshold.
func (e *Engine) maybeGrow(s *shardState) error {
	if e.growAt <= 0 || s.next != nil {
		return nil
	}
	if float64(s.cur.Len()) < e.growAt*float64(s.cur.Capacity()) {
		return nil
	}
	return e.beginMigration(s)
}

// rebuild is the pathological-path escape hatch: when the successor itself
// refuses an insert mid-migration, the shard is rebuilt stop-the-world
// into a fresh table (doubling until everything fits). This is the only
// path that pays a full-shard copy; it is unreachable for the probing and
// chained schemes (their growth-disabled tables refuse only when 100%
// full, which the threshold prevents) and requires a failed kick chain
// for Cuckoo.
func (e *Engine) rebuild(s *shardState) error {
	capacity := s.cur.Capacity() * 2
	if s.next != nil {
		capacity = s.next.Capacity() * 2
	}
	for {
		nt, err := e.create(capacity, s.seed)
		if err != nil {
			return err
		}
		ok := true
		if s.next != nil {
			s.next.Range(func(k, v uint64) bool {
				if _, err = nt.TryPut(k, v); err != nil {
					ok = false
				}
				return ok
			})
		}
		if ok {
			s.cur.Range(func(k, v uint64) bool {
				if _, isDead := s.dead[k]; isDead {
					return true
				}
				// Keep-first: keys already copied from the successor hold
				// the fresh value; the frozen table's copy is stale.
				if _, _, err = nt.GetOrPut(k, v); err != nil {
					ok = false
				}
				return ok
			})
		}
		if !ok {
			capacity *= 2
			continue
		}
		if s.stop != nil {
			s.stop()
		}
		s.cur = nt
		s.next, s.dead, s.pull, s.stop = nil, nil, nil, nil
		e.rebuilds.Add(1)
		return nil
	}
}

// ---------------------------------------------------------------------------
// Mutations (shard write lock)
// ---------------------------------------------------------------------------

// Put inserts or updates key -> val, reporting whether the key was newly
// inserted. With growth enabled the error is always nil; with GrowAt zero
// a full shard surfaces the table's ErrFull.
func (e *Engine) Put(key, val uint64) (bool, error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return e.putLocked(s, key, val)
}

func (e *Engine) putLocked(s *shardState, key, val uint64) (bool, error) {
	if err := e.advance(s, e.chunk); err != nil {
		return false, err
	}
	if !s.migrating() {
		ins, err := s.cur.TryPut(key, val)
		if err == nil {
			if ins {
				s.live++
				err = e.maybeGrow(s)
			}
			return ins, err
		}
		if e.growAt <= 0 {
			return false, err
		}
		// The table refused the insert (full, or a failed Cuckoo kick
		// chain below the threshold): grow now, write to the successor.
		if err := e.beginMigration(s); err != nil {
			return false, err
		}
	}
	// Migrating: the frozen table is read-only, so the write lands in the
	// successor; one probe sequence there decides update-vs-insert, with
	// the frozen table consulted only on a successor miss.
	inserted := false
	_, err := s.next.Upsert(key, func(_ uint64, exists bool) uint64 {
		if !exists {
			if _, ok := s.curLive(key); !ok {
				inserted = true
			}
		}
		return val
	})
	if err != nil {
		if err = e.rebuild(s); err != nil {
			return false, err
		}
		ins, err := s.cur.TryPut(key, val)
		if ins {
			s.live++
		}
		return ins, err
	}
	if inserted {
		s.live++
	}
	return inserted, nil
}

// Delete removes key, reporting whether it was present.
func (e *Engine) Delete(key uint64) bool {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Deletes advance the migration too: every mutation makes progress.
	// An advance failure (the NewTable factory refusing a fallback
	// rebuild) is ignored here: the delete itself allocates nothing and
	// works against whatever migration state the shard is left in.
	_ = e.advance(s, e.chunk)
	return s.deleteLocked(key)
}

func (s *shardState) deleteLocked(key uint64) bool {
	if !s.migrating() {
		if s.cur.Delete(key) {
			s.live--
			return true
		}
		return false
	}
	deleted := s.next.Delete(key)
	// The frozen table may hold the key too (its only copy, or a stale
	// shadow of the successor's); either way its entry is now dead.
	if _, dead := s.dead[key]; !dead {
		if _, ok := s.cur.Get(key); ok {
			s.dead[key] = struct{}{}
			deleted = true
		}
	}
	if deleted {
		s.live--
	}
	return deleted
}

// GetOrPut returns the value stored under key if present (loaded true);
// otherwise it inserts val and returns it (loaded false). One probe
// sequence in the steady state; during a migration a successor miss adds
// one probe of the frozen table.
func (e *Engine) GetOrPut(key, val uint64) (actual uint64, loaded bool, err error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return e.getOrPutLocked(s, key, val)
}

func (e *Engine) getOrPutLocked(s *shardState, key, val uint64) (uint64, bool, error) {
	if err := e.advance(s, e.chunk); err != nil {
		return 0, false, err
	}
	if !s.migrating() {
		actual, loaded, err := s.cur.GetOrPut(key, val)
		if err == nil {
			if !loaded {
				s.live++
				err = e.maybeGrow(s)
			}
			return actual, loaded, err
		}
		if e.growAt <= 0 {
			return 0, false, err
		}
		if err := e.beginMigration(s); err != nil {
			return 0, false, err
		}
	}
	actual, loaded := uint64(0), false
	_, err := s.next.Upsert(key, func(old uint64, exists bool) uint64 {
		if exists {
			actual, loaded = old, true
			return old
		}
		if cv, ok := s.curLive(key); ok {
			// Eager migration: the key's value moves to the successor so
			// the one probe sequence that found its slot also claims it.
			actual, loaded = cv, true
			return cv
		}
		actual = val
		return val
	})
	if err != nil {
		if err = e.rebuild(s); err != nil {
			return 0, false, err
		}
		actual, loaded, err = s.cur.GetOrPut(key, val)
		if err == nil && !loaded {
			s.live++
		}
		return actual, loaded, err
	}
	if !loaded {
		s.live++
	}
	return actual, loaded, nil
}

// Upsert applies fn to the value stored under key (exists true) or to
// (0, false) when absent, stores the result, and returns it. fn runs under
// the shard's write lock and must not call back into the engine. fn is
// invoked exactly once per call.
func (e *Engine) Upsert(key uint64, fn func(old uint64, exists bool) uint64) (uint64, error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return e.upsertLocked(s, key, fn)
}

func (e *Engine) upsertLocked(s *shardState, key uint64, fn func(old uint64, exists bool) uint64) (uint64, error) {
	if err := e.advance(s, e.chunk); err != nil {
		return 0, err
	}
	// The computed value is captured so the rare grow-and-retry paths
	// below re-store it without invoking fn a second time.
	var computed uint64
	haveComputed := false
	inserted := false
	wrap := func(old uint64, exists bool) uint64 {
		if !exists {
			inserted = true
		}
		computed = fn(old, exists)
		haveComputed = true
		return computed
	}
	if !s.migrating() {
		nv, err := s.cur.Upsert(key, wrap)
		if err == nil {
			if inserted {
				s.live++
				err = e.maybeGrow(s)
			}
			return nv, err
		}
		if e.growAt <= 0 {
			return 0, err
		}
		if err := e.beginMigration(s); err != nil {
			return 0, err
		}
		// The refusal means key was absent: exists=false semantics.
		if !haveComputed {
			computed = fn(0, false)
		}
		if _, err := s.next.TryPut(key, computed); err != nil {
			if err = e.rebuild(s); err != nil {
				return 0, err
			}
			if _, err := s.cur.TryPut(key, computed); err != nil {
				return 0, err
			}
		}
		s.live++
		return computed, nil
	}
	inserted = false
	nv, err := s.next.Upsert(key, func(old uint64, exists bool) uint64 {
		if exists {
			return wrap(old, true)
		}
		if cv, ok := s.curLive(key); ok {
			return wrap(cv, true) // eager migration of the frozen value
		}
		inserted = true
		return wrap(0, false)
	})
	if err != nil {
		if err = e.rebuild(s); err != nil {
			return 0, err
		}
		if !haveComputed {
			// The successor refused before probing far enough to call fn;
			// the engine-level view says the key was absent.
			computed = fn(0, false)
			inserted = true
		}
		if _, err := s.cur.TryPut(key, computed); err != nil {
			return 0, err
		}
		if inserted {
			s.live++
		}
		return computed, nil
	}
	if inserted {
		s.live++
	}
	return nv, nil
}

// TryPut is Put under its historical name on the table.Table surface.
func (e *Engine) TryPut(key, val uint64) (bool, error) { return e.Put(key, val) }
