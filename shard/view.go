package shard

// view is one shard's published read state: the epoch mechanism behind
// the engine's wait-free readers. Exactly one view per shard is current
// at any instant, installed through shardState.view (an atomic pointer)
// by the shard's serialized writers; readers load the pointer once and
// probe the tables it names without taking any lock.
//
// The view STRUCT is immutable after publication — writers never assign
// its fields in place; structural transitions (a resize beginning or
// finishing, a rebuild, a degraded-state flip) build a fresh view and
// republish the pointer. The TABLES a view names are not immutable: the
// active write target (cur in the steady state, next during a resize)
// is mutated in place by writers, and dead gains entries as keys frozen
// in cur are deleted. Those in-place mutations are what the per-shard
// sequence counter guards: writers hold the counter odd across every
// mutation (lockShard/unlockShard), and a reader that observed an odd
// count, or a count that changed across its probe, discards what it
// read and retries.
//
// # Snapshot semantics
//
// A validated read (sequence even and unchanged across the probe) is a
// consistent point-in-time snapshot OF ONE SHARD: it observed the
// frozen/successor/dead-overlay chain with no writer mid-flight, so the
// value it returns was the shard's current value at some instant inside
// the probe window — single-key reads are linearizable. There is no
// cross-shard snapshot anywhere in the engine: aggregates (Len, Stats)
// combine per-shard-consistent observations taken at different
// instants, and a batched read validates per shard, not per batch.
type view struct {
	// cur is the shard's main table. Outside a resize it is the write
	// target; during one it is frozen (no write ever touches it again),
	// which is what makes the migration cursor and lock-free probes of
	// it safe.
	cur Table
	// next is the resize successor (nil outside a resize): the write
	// target while the migration cursor drains cur into it. Readers
	// consult it first.
	next Table
	// dead is the overlay of keys deleted while frozen in cur (nil
	// outside a resize). Insert-only and pre-sized at freeze time, so
	// its backing array never moves while published.
	dead *deadSet
	// degraded mirrors the shard's degraded-but-serving state (the
	// allocator is failing; see the package docs) so observers read it
	// without the writer lock.
	degraded bool
	// gen counts this shard's publications; strictly increasing. It
	// lets tests and debugging tie an observation to an epoch.
	gen uint64
}

// get probes the chain: successor first, then the frozen table minus
// the dead overlay. Under a validated seqlock window this is exactly
// the migration-aware lookup writers use.
func (v *view) get(key uint64) (uint64, bool) {
	if v.next != nil {
		if val, ok := v.next.Get(key); ok {
			return val, true
		}
		if v.dead.has(key) {
			return 0, false
		}
	}
	return v.cur.Get(key)
}

// curLive looks key up in the frozen table honoring the dead overlay
// (writer-side helper during a migration).
func (v *view) curLive(key uint64) (uint64, bool) {
	if v.dead.has(key) {
		return 0, false
	}
	return v.cur.Get(key)
}

// migrating reports whether this view has a resize in flight.
func (v *view) migrating() bool { return v.next != nil }

// ---------------------------------------------------------------------------
// Dead-key overlay
// ---------------------------------------------------------------------------

// deadSetSeedMix scrambles keys into dead-set slots (fibonacci hashing);
// independent of the router and table hash streams.
const deadSetSeedMix = 0x9e3779b97f4a7c15

// deadSet records the keys whose frozen-table entry is deleted. It used
// to be a Go map, but map reads racing a map write crash the runtime
// outright (the map's own concurrency detector is always armed), which
// rules maps out of a seqlock-guarded read path. This set is built for
// exactly that path:
//
//   - insert-only: a key, once dead, stays dead for the migration's
//     lifetime (re-inserting the key writes the successor, which readers
//     consult first);
//   - pre-sized: only keys living in the frozen table can be marked dead,
//     so capacity is fixed at freeze time (2x the frozen live count) and
//     the backing array NEVER grows or moves while published — a racing
//     reader can observe a half-written slot, never a dangling one;
//   - zero-sentinel-free: slot value 0 means empty; key 0 lives in a
//     dedicated word.
//
// Writers mutate it only inside the shard's seqlock window; a reader's
// torn observation is discarded by sequence validation like any other.
type deadSet struct {
	slots []uint64 // open-addressed, linear probing; 0 = empty
	mask  uint64
	zero  uint64 // 1 when key 0 is dead (0 is the empty-slot sentinel)
	n     int    // live inserts, writer-private (capacity accounting)
}

// newDeadSet sizes the overlay for at most capacity inserts: the next
// power of two ≥ 2*capacity (minimum 8), so linear probing stays short
// and the set can never fill.
func newDeadSet(capacity int) *deadSet {
	n := 8
	for n < 2*capacity {
		n <<= 1
	}
	return &deadSet{slots: make([]uint64, n), mask: uint64(n - 1)}
}

// has reports whether k is marked dead. Safe to call from seqlock
// readers: every load is from a fixed-size array or a plain word, and a
// torn answer is discarded by the caller's sequence validation. A nil
// set (no resize in flight) has nothing dead.
func (d *deadSet) has(k uint64) bool {
	if d == nil {
		return false
	}
	if k == 0 {
		return d.zero != 0
	}
	i := (k * deadSetSeedMix) & d.mask
	for {
		slot := d.slots[i]
		if slot == k {
			return true
		}
		if slot == 0 {
			return false
		}
		i = (i + 1) & d.mask
	}
}

// add marks k dead. Writer-only, inside the seqlock window; the caller
// guarantees at most the pre-sized capacity of distinct keys (only keys
// living in the frozen table are ever added, each at most once).
func (d *deadSet) add(k uint64) {
	if k == 0 {
		d.zero = 1
		return
	}
	i := (k * deadSetSeedMix) & d.mask
	for d.slots[i] != 0 {
		if d.slots[i] == k {
			return
		}
		i = (i + 1) & d.mask
	}
	d.slots[i] = k
	d.n++
}

// ---------------------------------------------------------------------------
// Seqlock window + publication chokepoint
// ---------------------------------------------------------------------------

// lockShard opens a writer's seqlock window: it acquires the shard's
// writer lock, then makes the sequence odd so optimistic readers know a
// mutation is in flight. Every in-place mutation of the shard's tables
// (and every view publication) must happen between lockShard and
// unlockShard. This helper and unlockShard are the only places the
// sequence word is touched — the lockdiscipline analyzer enforces it.
func (s *shardState) lockShard() {
	s.mu.Lock()
	s.seq.Add(1)
}

// unlockShard closes the window: sequence back to even (readers that
// overlapped the window see a changed count and retry), then the writer
// lock is released.
func (s *shardState) unlockShard() {
	s.seq.Add(1)
	s.mu.Unlock()
}

// publish installs v as s's current view. It is the one view-publication
// chokepoint (the lockdiscipline analyzer flags view.Store anywhere
// else) and must run inside a writer's seqlock window — publishing with
// an even sequence would let a reader mix tables from two epochs without
// noticing, so that is a programming error worth dying for.
func (e *Engine) publish(s *shardState, v *view) {
	if s.seq.Load()&1 == 0 {
		panic("shard: view published outside a writer's seqlock window")
	}
	if prev := s.view.Load(); prev != nil {
		v.gen = prev.gen + 1
	} else {
		v.gen = 1 // birth epoch: New publishes the first view
	}
	s.view.Store(v)
	e.viewPublishes.Add(1)
	if m := e.metrics.Load(); m != nil {
		m.ViewRepublish.Inc(s.idx)
	}
}
