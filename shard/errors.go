package shard

import "fmt"

// DegradedError reports that a mutation was refused because its shard is
// degraded: the shard needed to grow, the table allocator failed, and
// the shard keeps serving from its frozen current state until a
// seeded-backoff retry of the allocation succeeds. Reads, deletes, and
// in-place updates keep working throughout; only the mutations that
// need new slots surface this error.
//
// Unwrap exposes the refusal that forced growth, so when the underlying
// table refused with its full-table error the whole chain stays
// inspectable: errors.As(err, &degraded), errors.As(err, &full) and
// errors.Is(err, table.ErrFull) all hold.
type DegradedError struct {
	// Shard is the index of the degraded shard.
	Shard int
	// Err is the refusal that forced growth (typically the table's
	// ErrFull chain, or an injected fault).
	Err error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("shard %d degraded (allocator failing; serving reads and updates, retry scheduled): %v", e.Shard, e.Err)
}

// Unwrap exposes the refusal to errors.Is/errors.As.
func (e *DegradedError) Unwrap() error { return e.Err }
