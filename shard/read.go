package shard

// The wait-free read protocol, shared scaffolding. The optimistic
// (seqlock) implementations of readGet, readRange and readSnapshot live
// in read_optimistic.go; race-detector builds substitute the locked
// slow paths below for every read (read_racedetector.go) because a
// seqlock reader's probes are deliberate data races — loads of table
// slots a writer may be storing to, made safe only retroactively by
// sequence validation — and the detector would (correctly, by its
// rules) report every one of them. The slow path IS the optimistic
// path's fallback, so race builds exercise real code, not a stub.

// readMaxRetries bounds the optimistic attempts a reader makes before
// falling back to the writer lock: enough to ride out a few short
// writer windows, small enough that a reader stuck behind a long batch
// mutation parks on the lock (once per read, not per key) instead of
// spinning. Progress is therefore never lost — the fallback serializes
// behind the writer and always completes.
const readMaxRetries = 8

// readGetSlow is the locked single-key read: the optimistic path's
// fallback and the race-build read path. It takes the writer lock (no
// seqlock window — it mutates nothing, and other optimistic readers
// must keep validating successfully while it holds the lock) and probes
// the current view.
func (e *Engine) readGetSlow(s *shardState, key uint64) (uint64, bool) {
	s.mu.Lock()
	v := s.view.Load()
	val, ok := v.get(key)
	s.mu.Unlock()
	return val, ok
}

// readRangeSlow is the locked staged-range read behind GetBatch.
func (e *Engine) readRangeSlow(s *shardState, keys, vals []uint64, ok []bool) int {
	s.mu.Lock()
	v := s.view.Load()
	hits := 0
	for i, k := range keys {
		val, o := v.get(k)
		vals[i], ok[i] = val, o
		if o {
			hits++
		}
	}
	s.mu.Unlock()
	return hits
}

// readSnapshotSlow runs fn against the shard's view under the writer
// lock: the fallback for observer reads (Stats, Capacity,
// MemoryFootprint) whose table accessors may touch writer-mutated
// words.
func (e *Engine) readSnapshotSlow(s *shardState, fn func(v *view)) {
	s.mu.Lock()
	fn(s.view.Load())
	s.mu.Unlock()
}

// readAccount records a read that retried (and possibly fell back):
// engine totals for Stats, striped counters for the registry. Off the
// hot path by construction — validated first-attempt reads never call
// it.
func (e *Engine) readAccount(s *shardState, retries uint64, fellBack bool) {
	e.readRetries.Add(retries)
	m := e.metrics.Load()
	if m != nil {
		m.ReadRetry.Add(s.idx, retries)
	}
	if fellBack {
		e.readFallbacks.Add(1)
		if m != nil {
			m.ReadFallback.Inc(s.idx)
		}
	}
}
