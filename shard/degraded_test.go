package shard_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/shard"
	"repro/table"
)

// flakyAllocator builds a shard.Config whose NewTable hook fails (after
// engine construction) while *fail is true — the deterministic stand-in
// for a memory allocator under pressure.
func flakyAllocator(capacity int, fail *bool) shard.Config {
	return shard.Config{
		Shards: 1, Capacity: capacity, GrowAt: 0.85, Seed: 11,
		NewTable: func(capacity int, seed uint64) (shard.Table, error) {
			if *fail {
				return nil, fmt.Errorf("allocator out of memory for %d slots", capacity)
			}
			return table.New(table.SchemeLP, table.Config{InitialCapacity: capacity, MaxLoadFactor: 0, Seed: seed})
		},
	}
}

// TestDegradedServesAndRecovers is the graceful-degradation contract: a
// shard whose successor allocation fails keeps serving reads and
// in-place updates off its frozen table, refuses only the inserts it
// genuinely has no room for — with a typed *DegradedError wrapping
// ErrFull — and heals completely once the allocator recovers.
func TestDegradedServesAndRecovers(t *testing.T) {
	fail := false
	e := shard.MustNew(flakyAllocator(64, &fail))
	fail = true

	// Fill to the brim: the growth attempt at the 85% threshold fails
	// (absorbed — the hosting insert itself succeeded), and inserts keep
	// landing until the frozen table is 100% full.
	oracle := map[uint64]uint64{}
	var refusal error
	for k := uint64(1); refusal == nil && k <= 1000; k++ {
		if _, err := e.Put(k, k*3); err != nil {
			refusal = err
			break
		}
		oracle[k] = k * 3
	}
	if refusal == nil {
		t.Fatal("no insert was ever refused with a failing allocator")
	}
	// The shard must keep absorbing inserts PAST the (failed) growth
	// threshold, refusing only when the kernel genuinely has no room.
	if len(oracle) < 55 {
		t.Fatalf("refused after %d inserts, want the frozen table filled past the 85%% threshold first", len(oracle))
	}
	var de *shard.DegradedError
	if !errors.As(refusal, &de) {
		t.Fatalf("refusal = %v, want *DegradedError", refusal)
	}
	if de.Shard != 0 {
		t.Errorf("DegradedError.Shard = %d, want 0", de.Shard)
	}
	if !errors.Is(refusal, table.ErrFull) {
		t.Errorf("refusal %v does not wrap table.ErrFull", refusal)
	}
	if st := e.Stats(); st.Degraded != 1 || st.AllocFailures == 0 {
		t.Errorf("stats after refusal: %+v, want Degraded=1 and AllocFailures>0", st)
	}

	// Degraded-but-serving: every read, in-place update, upsert of an
	// existing key, and delete still works.
	for k, v := range oracle {
		if got, ok := e.Get(k); !ok || got != v {
			t.Fatalf("degraded Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
		}
	}
	if _, err := e.Put(1, 1000); err != nil {
		t.Fatalf("degraded in-place update: %v", err)
	}
	oracle[1] = 1000
	if nv, err := e.Upsert(2, func(old uint64, exists bool) uint64 {
		if !exists {
			t.Errorf("degraded Upsert(2) saw exists=false")
		}
		return old + 1
	}); err != nil {
		t.Fatalf("degraded upsert of existing key: %v", err)
	} else {
		oracle[2] = nv
	}
	if v, loaded, err := e.GetOrPut(3, 999); err != nil || !loaded || v != oracle[3] {
		t.Fatalf("degraded GetOrPut(existing) = (%d,%v,%v), want (%d,true,nil)", v, loaded, err, oracle[3])
	}
	if !e.Delete(4) {
		t.Fatal("degraded Delete(4) = false")
	}
	delete(oracle, 4)
	// The freed slot admits one insert again; fill it back so the shard
	// is full for the recovery phase.
	if _, err := e.Put(4, 40); err != nil {
		t.Fatalf("insert into freed slot: %v", err)
	}
	oracle[4] = 40
	// A fresh insert with no room is still refused, typed.
	if _, err := e.Put(5000, 1); !errors.As(err, &de) {
		t.Fatalf("degraded insert error = %v, want *DegradedError", err)
	}

	// Allocator heals: one Drain retires the backoff window, allocates
	// the successor, and completes the migration.
	fail = false
	if !e.Drain() {
		t.Fatalf("Drain() = false after allocator healed: %+v", e.Stats())
	}
	if st := e.Stats(); st.Degraded != 0 || st.Migrating != 0 {
		t.Fatalf("stats after drain: %+v, want idle", st)
	}
	for k := uint64(2000); k < 2100; k++ {
		if _, err := e.Put(k, k); err != nil {
			t.Fatalf("post-recovery insert Put(%d): %v", k, err)
		}
		oracle[k] = k
	}
	if e.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", e.Len(), len(oracle))
	}
	for k, v := range oracle {
		if got, ok := e.Get(k); !ok || got != v {
			t.Fatalf("post-recovery Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
		}
	}
}

// TestDegradedHealsOrganically: without an explicit Drain, the backoff
// retry rides ordinary mutations — a degraded shard heals by itself
// under continued (update-only) load once the allocator recovers.
func TestDegradedHealsOrganically(t *testing.T) {
	fail := false
	e := shard.MustNew(flakyAllocator(64, &fail))
	fail = true
	for k := uint64(1); ; k++ {
		if _, err := e.Put(k, k); err != nil {
			break
		}
	}
	if st := e.Stats(); st.Degraded != 1 {
		t.Fatalf("stats: %+v, want Degraded=1", st)
	}

	fail = false
	// The deepest backoff window is bounded (maxBackoff plus equal
	// jitter per failure, retried and re-backed-off a handful of times
	// while filling), so a bounded stream of in-place updates must heal
	// the shard and finish the migration it starts.
	for i := 0; i < 1<<14; i++ {
		if _, err := e.Put(1, uint64(i)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if st := e.Stats(); st.Degraded == 0 && st.Migrating == 0 {
			break
		}
	}
	if st := e.Stats(); st.Degraded != 0 || st.Migrating != 0 {
		t.Fatalf("shard never healed under mutation load: %+v", st)
	}
	if _, err := e.Put(5000, 5000); err != nil {
		t.Fatalf("post-heal insert: %v", err)
	}
}

// TestDrainReportsUnhealable: Drain on a permanently failing allocator
// gives up after its retry budget, reports false, and leaves the shard
// serving.
func TestDrainReportsUnhealable(t *testing.T) {
	fail := false
	e := shard.MustNew(flakyAllocator(64, &fail))
	fail = true
	for k := uint64(1); ; k++ {
		if _, err := e.Put(k, k); err != nil {
			break
		}
	}
	if e.Drain() {
		t.Fatalf("Drain() = true with a failing allocator: %+v", e.Stats())
	}
	if st := e.Stats(); st.Degraded != 1 {
		t.Errorf("stats after failed drain: %+v, want still degraded", st)
	}
	if got, ok := e.Get(1); !ok || got != 1 {
		t.Errorf("Get(1) = (%d,%v) after failed drain, want (1,true)", got, ok)
	}
	if st := e.Stats(); st.AllocRetries == 0 {
		t.Errorf("stats: %+v, want AllocRetries > 0 (drain kept retrying)", st)
	}
}

// TestBatchErrFullPropagation: with growth disabled, a genuinely full
// shard refuses the rest of a batch with the typed *table.FullError
// chain through every batched entry point, and the pairs applied before
// the refusal remain.
func TestBatchErrFullPropagation(t *testing.T) {
	keys := make([]uint64, 256)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = uint64(i) + 1
		vals[i] = uint64(i) * 10
	}
	newFixed := func() *shard.Engine {
		return shard.MustNew(shard.Config{
			Shards: 2, Capacity: 64, GrowAt: 0, Seed: 21,
			NewTable: func(capacity int, seed uint64) (shard.Table, error) {
				return table.New(table.SchemeLP, table.Config{InitialCapacity: capacity, MaxLoadFactor: 0, Seed: seed})
			},
		})
	}

	e := newFixed()
	ins, err := e.PutBatch(keys, vals)
	var fe *table.FullError
	if !errors.As(err, &fe) || !errors.Is(err, table.ErrFull) {
		t.Fatalf("PutBatch error = %v, want *table.FullError wrapping ErrFull", err)
	}
	if ins == 0 || ins != e.Len() {
		t.Fatalf("PutBatch applied %d before refusing, engine holds %d", ins, e.Len())
	}

	e = newFixed()
	out := make([]uint64, len(keys))
	loaded := make([]bool, len(keys))
	if _, err := e.GetOrPutBatch(keys, vals, out, loaded); !errors.As(err, &fe) {
		t.Fatalf("GetOrPutBatch error = %v, want *table.FullError", err)
	}

	e = newFixed()
	if _, err := e.UpsertBatch(keys, func(lane int, old uint64, _ bool) uint64 {
		return vals[lane]
	}); !errors.As(err, &fe) {
		t.Fatalf("UpsertBatch error = %v, want *table.FullError", err)
	}
}

// TestDegradedErrorUnwrap pins the error-taxonomy contract: a
// DegradedError exposes the refusal it wraps, so errors.Is(err,
// table.ErrFull) works through it.
func TestDegradedErrorUnwrap(t *testing.T) {
	inner := &table.FullError{Scheme: "LP", Len: 64, Capacity: 64}
	err := &shard.DegradedError{Shard: 3, Err: inner}
	if !errors.Is(err, table.ErrFull) {
		t.Error("DegradedError does not unwrap to ErrFull")
	}
	var fe *table.FullError
	if !errors.As(err, &fe) || fe != inner {
		t.Error("DegradedError does not expose the wrapped *FullError")
	}
}
