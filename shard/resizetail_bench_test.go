package shard_test

// BenchmarkResizeTail measures the tail latency of individual inserts
// while a table grows through several doublings — the experiment behind
// the engine's incremental resize. Two paths insert the same keys:
//
//   - rehash: a plain scheme table with growth enabled. The insert that
//     crosses the threshold pays a full stop-the-world rehash, so the max
//     (and, as the table gets big, the p99.9) per-op latency spikes with
//     table size.
//   - incremental: a one-shard Engine with the same threshold. Every
//     mutation pays at most one bounded migration chunk; the spike is
//     gone and the worst observed op stays within a small constant factor
//     of the median.
//
// Per-op latencies are recorded and reported as p50/p99/p99.9/max
// ns/op metrics. When the BENCH_SHARD_JSON environment variable names a
// file, the collected distribution summary is written there as JSON (the
// CI bench-smoke step uploads it as the BENCH_shard.json artifact).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/shard"
	"repro/table"
)

// benchKeys is how many inserts each path performs: from 4k initial
// capacity through ~5 doublings.
const benchKeys = 1 << 17

// tailSummary is one path's latency distribution, in nanoseconds.
type tailSummary struct {
	Path   string  `json:"path"`
	Keys   int     `json:"keys"`
	P50    float64 `json:"p50_ns"`
	P99    float64 `json:"p99_ns"`
	P999   float64 `json:"p999_ns"`
	Max    float64 `json:"max_ns"`
	MeanNs float64 `json:"mean_ns"`
}

// benchResults accumulates sub-benchmark summaries for the JSON artifact.
var benchResults []tailSummary

func summarize(path string, lat []time.Duration) tailSummary {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pick := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i])
	}
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	return tailSummary{
		Path:   path,
		Keys:   len(lat),
		P50:    pick(0.50),
		P99:    pick(0.99),
		P999:   pick(0.999),
		Max:    float64(lat[len(lat)-1]),
		MeanNs: float64(sum) / float64(len(lat)),
	}
}

func reportTail(b *testing.B, s tailSummary) {
	b.ReportMetric(s.P50, "p50-ns/op")
	b.ReportMetric(s.P99, "p99-ns/op")
	b.ReportMetric(s.P999, "p99.9-ns/op")
	b.ReportMetric(s.Max, "max-ns/op")
}

// runTail inserts benchKeys sequential keys through put, timing each op.
// A forced GC beforehand keeps collector assists from polluting the tail.
func runTail(put func(k uint64)) []time.Duration {
	runtime.GC()
	lat := make([]time.Duration, benchKeys)
	for i := 0; i < benchKeys; i++ {
		k := uint64(i) + 1
		start := time.Now()
		put(k)
		lat[i] = time.Since(start)
	}
	return lat
}

func BenchmarkResizeTail(b *testing.B) {
	const initialCapacity = 1 << 12
	b.Run("rehash", func(b *testing.B) {
		var s tailSummary
		for i := 0; i < b.N; i++ {
			t := table.MustNew(table.SchemeRH, table.Config{
				InitialCapacity: initialCapacity,
				MaxLoadFactor:   0.85,
				Seed:            1,
			})
			lat := runTail(func(k uint64) {
				if _, err := t.TryPut(k, k); err != nil {
					b.Fatal(err)
				}
			})
			s = summarize("rehash", lat)
		}
		reportTail(b, s)
		benchResults = append(benchResults, s)
	})
	// incremental-1 isolates the resize mechanism (one shard, same keys);
	// incremental-8 is the production configuration, where sharding also
	// divides the one remaining per-migration cost — the successor-table
	// allocation — by the shard count.
	for _, shards := range []int{1, 8} {
		name := fmt.Sprintf("incremental-%dshard", shards)
		b.Run(name, func(b *testing.B) {
			var s tailSummary
			for i := 0; i < b.N; i++ {
				e := shard.MustNew(shard.Config{
					Shards:   shards,
					Capacity: initialCapacity,
					GrowAt:   0.85,
					Seed:     1,
					NewTable: func(capacity int, seed uint64) (shard.Table, error) {
						return table.New(table.SchemeRH, table.Config{InitialCapacity: capacity, MaxLoadFactor: 0, Seed: seed})
					},
				})
				lat := runTail(func(k uint64) {
					if _, err := e.Put(k, k); err != nil {
						b.Fatal(err)
					}
				})
				if st := e.Stats(); st.MigrationsStarted == 0 || st.Rebuilds != 0 {
					b.Fatalf("incremental path degenerate: %+v", st)
				}
				s = summarize(name, lat)
			}
			reportTail(b, s)
			benchResults = append(benchResults, s)
		})
	}
	if path := os.Getenv("BENCH_SHARD_JSON"); path != "" && len(benchResults) > 0 {
		out, err := json.MarshalIndent(struct {
			Benchmark string        `json:"benchmark"`
			Paths     []tailSummary `json:"paths"`
		}{Benchmark: "BenchmarkResizeTail", Paths: benchResults}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
