package shard_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/obs"
	"repro/shard"
	"repro/table"
)

func metricsConfig(shards, capacity int, growAt float64) shard.Config {
	return shard.Config{
		Shards: shards, Capacity: capacity, GrowAt: growAt, Seed: 99,
		NewTable: func(capacity int, seed uint64) (shard.Table, error) {
			return table.New(table.SchemeRH, table.Config{InitialCapacity: capacity, MaxLoadFactor: 0, Seed: seed})
		},
	}
}

func TestMetricsMigrationChunks(t *testing.T) {
	e := shard.MustNew(metricsConfig(2, 256, 0.8))
	m := shard.NewMetrics(e.Shards())
	e.SetMetrics(m)
	// Grow well past the initial capacity: several migrations run, each
	// ticked forward chunk by chunk by the inserting mutations.
	for k := uint64(1); k <= 4096; k++ {
		if _, err := e.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.MigrationsStarted == 0 {
		t.Fatal("no migration started; the fixture must force growth")
	}
	if st.MigrationChunks == 0 {
		t.Fatal("Stats.MigrationChunks stayed zero across a migration")
	}
	if st.MigrationNanos == 0 {
		t.Fatal("Stats.MigrationNanos stayed zero across a migration")
	}
	if snap := m.MigrationChunk.Snapshot(); uint64(snap.Count) != st.MigrationChunks {
		t.Fatalf("MigrationChunk histogram count %d != Stats.MigrationChunks %d", snap.Count, st.MigrationChunks)
	}
}

func TestMetricsScalarSampling(t *testing.T) {
	e := shard.MustNew(metricsConfig(1, 1<<12, 0.85))
	m := shard.NewMetrics(1)
	e.SetMetrics(m)
	// Keys 0, 64, 128, ... are exactly the sampled ones (low six bits
	// zero), so every op below lands one histogram sample.
	const n = 100
	for i := uint64(0); i < n; i++ {
		k := i << 6
		if _, err := e.Put(k, i); err != nil {
			t.Fatal(err)
		}
		e.Get(k)
		if _, _, err := e.GetOrPut(k, i); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Upsert(k, func(old uint64, exists bool) uint64 { return old + 1 }); err != nil {
			t.Fatal(err)
		}
		e.Delete(k)
	}
	for name, h := range map[string]int{
		"Get":      m.Get.Snapshot().Count,
		"Put":      m.Put.Snapshot().Count,
		"GetOrPut": m.GetOrPut.Snapshot().Count,
		"Upsert":   m.Upsert.Snapshot().Count,
		"Delete":   m.Delete.Snapshot().Count,
	} {
		if h != n {
			t.Errorf("%s histogram count = %d, want %d (every key sampled)", name, h, n)
		}
	}
	// Unsampled keys record nothing.
	before := m.Get.Snapshot().Count
	e.Get(3) // 3&63 != 0
	if after := m.Get.Snapshot().Count; after != before {
		t.Fatalf("unsampled key recorded a sample (%d -> %d)", before, after)
	}
}

func TestMetricsBatchPerCall(t *testing.T) {
	e := shard.MustNew(metricsConfig(4, 1<<12, 0.85))
	m := shard.NewMetrics(e.Shards())
	e.SetMetrics(m)
	keys := make([]uint64, 512)
	vals := make([]uint64, 512)
	out := make([]uint64, 512)
	ok := make([]bool, 512)
	for i := range keys {
		keys[i] = uint64(i) * 7
		vals[i] = uint64(i)
	}
	const calls = 3
	for c := 0; c < calls; c++ {
		if _, err := e.PutBatch(keys, vals); err != nil {
			t.Fatal(err)
		}
		e.GetBatch(keys, out, ok)
		if _, err := e.GetOrPutBatch(keys, vals, out, ok); err != nil {
			t.Fatal(err)
		}
		if _, err := e.UpsertBatch(keys, func(lane int, old uint64, exists bool) uint64 { return old + 1 }); err != nil {
			t.Fatal(err)
		}
	}
	for name, h := range map[string]int{
		"GetBatch":      m.GetBatch.Snapshot().Count,
		"PutBatch":      m.PutBatch.Snapshot().Count,
		"GetOrPutBatch": m.GetOrPutBatch.Snapshot().Count,
		"UpsertBatch":   m.UpsertBatch.Snapshot().Count,
	} {
		if h != calls {
			t.Errorf("%s histogram count = %d, want %d (one sample per call)", name, h, calls)
		}
	}
}

func TestMetricsDegradedTransitions(t *testing.T) {
	fail := false
	e := shard.MustNew(shard.Config{
		Shards: 1, Capacity: 64, GrowAt: 0.8, Seed: 7,
		NewTable: func(capacity int, seed uint64) (shard.Table, error) {
			if fail {
				return nil, fmt.Errorf("allocator out of memory for %d slots", capacity)
			}
			return table.New(table.SchemeRH, table.Config{InitialCapacity: capacity, MaxLoadFactor: 0, Seed: seed})
		},
	})
	m := shard.NewMetrics(1)
	e.SetMetrics(m)
	fail = true
	var degradedSeen bool
	for k := uint64(1); k <= 256; k++ {
		if _, err := e.Put(k, k); err != nil {
			var derr *shard.DegradedError
			if !errors.As(err, &derr) {
				t.Fatalf("unexpected error: %v", err)
			}
			degradedSeen = true
			break
		}
		if e.Stats().Degraded > 0 {
			degradedSeen = true
			break
		}
	}
	if !degradedSeen {
		t.Fatal("fixture never degraded the shard")
	}
	if m.DegradedEnter.Value() == 0 {
		t.Fatal("DegradedEnter stayed zero through a degraded transition")
	}
	if m.Healed.Value() != 0 {
		t.Fatalf("Healed = %d before the allocator recovered", m.Healed.Value())
	}
	fail = false
	if !e.Drain() {
		t.Fatal("Drain did not heal with a recovered allocator")
	}
	if m.Healed.Value() == 0 {
		t.Fatal("Healed stayed zero after Drain healed the shard")
	}
	if got := e.Stats().Degraded; got != 0 {
		t.Fatalf("Stats.Degraded = %d after heal", got)
	}
}

func TestMetricsReadPathCounters(t *testing.T) {
	e := shard.MustNew(metricsConfig(2, 256, 0.8))
	m := shard.NewMetrics(e.Shards())
	e.SetMetrics(m)
	// Grow past the threshold: every migration republishes the view
	// twice (freeze, promote), each through the metrics hook.
	keys := make([]uint64, 2048)
	vals := make([]uint64, 2048)
	out := make([]uint64, 2048)
	ok := make([]bool, 2048)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
		vals[i] = uint64(i)
	}
	if _, err := e.PutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	e.GetBatch(keys, out, ok)
	st := e.Stats()
	if st.MigrationsStarted == 0 {
		t.Fatal("fixture never migrated; ViewRepublish has nothing to count")
	}
	// Birth epochs predate SetMetrics, so the counter sees exactly the
	// post-attach publications.
	if got, want := m.ViewRepublish.Value(), st.ViewPublishes-uint64(e.Shards()); got != want {
		t.Fatalf("ViewRepublish = %d, want %d (Stats.ViewPublishes %d minus %d birth epochs)",
			got, want, st.ViewPublishes, e.Shards())
	}
	// Single-goroutine traffic never overlaps a writer window: the
	// retry/fallback counters must hold at zero.
	if m.ReadRetry.Value() != 0 || m.ReadFallback.Value() != 0 {
		t.Fatalf("uncontended run counted retries=%d fallbacks=%d, want 0/0",
			m.ReadRetry.Value(), m.ReadFallback.Value())
	}
	if st.ReadRetries != 0 || st.ReadFallbacks != 0 {
		t.Fatalf("Stats counted retries=%d fallbacks=%d uncontended", st.ReadRetries, st.ReadFallbacks)
	}

	// The exposition carries the three read-path series under their
	// conventional names.
	r := obs.NewRegistry()
	m.Register(r, "")
	var buf strings.Builder
	r.WriteText(&buf)
	text := buf.String()
	for _, name := range []string{
		"shard_read_retries_total",
		"shard_read_fallbacks_total",
		"shard_view_republish_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	if !strings.Contains(text, fmt.Sprintf("shard_view_republish_total %d", m.ViewRepublish.Value())) {
		t.Errorf("exposition does not carry the ViewRepublish total:\n%s", text)
	}
}

func TestSetMetricsDetach(t *testing.T) {
	e := shard.MustNew(metricsConfig(1, 1<<10, 0.85))
	m := shard.NewMetrics(1)
	e.SetMetrics(m)
	e.Get(0) // sampled
	if m.Get.Snapshot().Count != 1 {
		t.Fatal("attached metrics did not record")
	}
	e.SetMetrics(nil)
	e.Get(0)
	if m.Get.Snapshot().Count != 1 {
		t.Fatal("detached metrics kept recording")
	}
}
