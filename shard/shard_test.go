package shard_test

import (
	"errors"
	"testing"

	"repro/shard"
	"repro/table"
)

// newEngine builds an engine over the given scheme with scheme-level
// growth disabled (the engine grows shards itself).
func newEngine(t testing.TB, scheme table.Scheme, shards, capacity int, growAt float64, seed uint64) *shard.Engine {
	t.Helper()
	e, err := shard.New(shard.Config{
		Shards:   shards,
		Capacity: capacity,
		GrowAt:   growAt,
		Seed:     seed,
		NewTable: func(capacity int, seed uint64) (shard.Table, error) {
			return table.New(scheme, table.Config{InitialCapacity: capacity, MaxLoadFactor: 0, Seed: seed})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := shard.New(shard.Config{}); err == nil {
		t.Fatal("nil NewTable accepted")
	}
	nt := func(capacity int, seed uint64) (shard.Table, error) {
		return table.New(table.SchemeLP, table.Config{InitialCapacity: capacity, Seed: seed})
	}
	if _, err := shard.New(shard.Config{GrowAt: 1.0, NewTable: nt}); err == nil {
		t.Fatal("grow threshold 1.0 accepted")
	}
	if _, err := shard.New(shard.Config{GrowAt: -0.1, NewTable: nt}); err == nil {
		t.Fatal("negative grow threshold accepted")
	}
	if _, err := shard.New(shard.Config{Capacity: -1, NewTable: nt}); err == nil {
		t.Fatal("negative capacity accepted")
	}
	e, err := shard.New(shard.Config{Shards: 5, Capacity: 1 << 10, GrowAt: 0.8, NewTable: nt})
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() != 8 {
		t.Fatalf("Shards = %d, want 8 (rounded up)", e.Shards())
	}
}

// TestEngineIncrementalResize drives one shard through several growth
// generations and checks that (a) migrations actually run incrementally —
// there is an observable mid-migration state — and (b) every operation
// stays exact against an oracle throughout, including the sentinel keys
// and deletes/updates of entries still sitting in the frozen table.
func TestEngineIncrementalResize(t *testing.T) {
	for _, scheme := range table.AllSchemes() {
		t.Run(string(scheme), func(t *testing.T) {
			e := newEngine(t, scheme, 1, 64, 0.8, 42)
			oracle := map[uint64]uint64{}
			sawMigrating := false

			check := func(k uint64) {
				got, ok := e.Get(k)
				want, exists := oracle[k]
				if ok != exists || (ok && got != want) {
					t.Fatalf("Get(%d) = (%d,%v), oracle (%d,%v)", k, got, ok, want, exists)
				}
			}
			put := func(k, v uint64) {
				ins, err := e.Put(k, v)
				if err != nil {
					t.Fatalf("Put(%d): %v", k, err)
				}
				_, existed := oracle[k]
				if ins == existed {
					t.Fatalf("Put(%d) inserted=%v, oracle existed=%v", k, ins, existed)
				}
				oracle[k] = v
			}
			del := func(k uint64) {
				had := e.Delete(k)
				_, existed := oracle[k]
				if had != existed {
					t.Fatalf("Delete(%d) = %v, oracle existed=%v", k, had, existed)
				}
				delete(oracle, k)
			}

			// Sentinels first: they must survive every migration.
			put(0, 111)
			put(^uint64(0), 222)
			for k := uint64(1); k <= 4000; k++ {
				put(k, k*10)
				if e.Stats().Migrating > 0 {
					sawMigrating = true
					// Exercise the mid-migration paths: read/update/delete
					// keys that are still in the frozen table (older keys),
					// and re-insert a deleted one.
					check(k / 2)
					put(k/2, k) // update while (possibly) frozen
					del(k / 3)
					put(k/3, k+1) // re-insert a dead key
					check(0)
					check(^uint64(0))
				}
				if k%701 == 0 {
					del(k - 1)
				}
			}
			if !sawMigrating {
				t.Fatal("growth never went through an observable incremental migration")
			}
			if e.Len() != len(oracle) {
				t.Fatalf("Len = %d, oracle %d", e.Len(), len(oracle))
			}
			// Drain any in-flight migration with further mutations, then
			// compare full contents via iteration.
			for e.Stats().Migrating > 0 {
				del(1<<40 + 1) // absent key: delete is a no-op but advances
			}
			st := e.Stats()
			if st.MigrationsStarted == 0 || st.MigrationsDone != st.MigrationsStarted || st.MigratedEntries == 0 {
				t.Fatalf("migration counters = %+v", st)
			}
			if st.Rebuilds != 0 && scheme != table.SchemeCuckooH4 {
				t.Fatalf("unexpected stop-the-world rebuilds: %+v", st)
			}
			seen := map[uint64]uint64{}
			for k, v := range e.All() {
				if _, dup := seen[k]; dup {
					t.Fatalf("iterator yielded key %d twice", k)
				}
				seen[k] = v
			}
			if len(seen) != len(oracle) {
				t.Fatalf("iterated %d entries, oracle %d", len(seen), len(oracle))
			}
			for k, v := range oracle {
				if seen[k] != v {
					t.Fatalf("iterated value for %d = %d, oracle %d", k, seen[k], v)
				}
			}
		})
	}
}

// TestEngineGetOrPutUpsertMidMigration covers the RMW primitives while a
// migration is in flight, where values may live in the frozen table.
func TestEngineGetOrPutUpsertMidMigration(t *testing.T) {
	e := newEngine(t, table.SchemeRH, 1, 64, 0.8, 7)
	oracle := map[uint64]uint64{}
	for k := uint64(1); k <= 3000; k++ {
		v, loaded, err := e.GetOrPut(k, k*3)
		if err != nil {
			t.Fatal(err)
		}
		if loaded || v != k*3 {
			t.Fatalf("GetOrPut(%d) = (%d,%v) on fresh key", k, v, loaded)
		}
		oracle[k] = k * 3
		if k%7 == 0 {
			// Fold into an older key — often one still in the frozen table.
			old := k / 2
			nv, err := e.Upsert(old, func(o uint64, exists bool) uint64 {
				if exists != (oracle[old] != 0) {
					t.Fatalf("Upsert(%d) exists=%v, oracle has %d", old, exists, oracle[old])
				}
				return o + 1
			})
			if err != nil {
				t.Fatal(err)
			}
			oracle[old]++
			if nv != oracle[old] {
				t.Fatalf("Upsert(%d) = %d, oracle %d", old, nv, oracle[old])
			}
		}
		if k%11 == 0 {
			v, loaded, err := e.GetOrPut(k/2, 999999)
			if err != nil {
				t.Fatal(err)
			}
			if !loaded || v != oracle[k/2] {
				t.Fatalf("GetOrPut(%d) = (%d,%v), oracle %d", k/2, v, loaded, oracle[k/2])
			}
		}
	}
	if e.Stats().MigrationsStarted == 0 {
		t.Fatal("test never triggered a migration")
	}
	if e.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", e.Len(), len(oracle))
	}
}

// TestEngineGrowthDisabled preserves the WORM contract: GrowAt zero means
// a full shard surfaces ErrFull instead of migrating.
func TestEngineGrowthDisabled(t *testing.T) {
	e := newEngine(t, table.SchemeLP, 2, 32, 0, 3)
	sawFull := false
	for k := uint64(1); k <= 64; k++ {
		if _, err := e.Put(k, k); err != nil {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("growth-disabled engine never reported ErrFull")
	}
	if st := e.Stats(); st.MigrationsStarted != 0 {
		t.Fatalf("growth-disabled engine migrated: %+v", st)
	}
}

// TestEngineBatchMatchesScalar checks the scatter/gather batch surface
// against scalar replays across a growth boundary.
func TestEngineBatchMatchesScalar(t *testing.T) {
	eb := newEngine(t, table.SchemeQP, 4, 256, 0.8, 5)
	es := newEngine(t, table.SchemeQP, 4, 256, 0.8, 5)
	n := 6000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i%2500) + 1 // duplicates exercise last-wins order
		vals[i] = uint64(i)
	}
	bi, err := eb.PutBatch(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	si := 0
	for i, k := range keys {
		ins, err := es.Put(k, vals[i])
		if err != nil {
			t.Fatal(err)
		}
		if ins {
			si++
		}
	}
	if bi != si || eb.Len() != es.Len() {
		t.Fatalf("batched inserted=%d len=%d, scalar inserted=%d len=%d", bi, eb.Len(), si, es.Len())
	}
	gv := make([]uint64, n)
	gok := make([]bool, n)
	hits := eb.GetBatch(keys, gv, gok)
	if hits != n {
		t.Fatalf("GetBatch hits = %d, want %d", hits, n)
	}
	for i, k := range keys {
		sv, sok := es.Get(k)
		if !gok[i] || !sok || gv[i] != sv {
			t.Fatalf("lane %d key %d: batched (%d,%v) scalar (%d,%v)", i, k, gv[i], gok[i], sv, sok)
		}
	}
}

// refusingTable wraps a real table and synthesizes one mid-batch
// UpsertBatch refusal: earlier lanes are stored, the failing lane's fn is
// invoked but its value is NOT stored — exactly the state a failed Cuckoo
// kick chain leaves behind. The engine must recover without invoking any
// lane's fn a second time.
type refusingTable struct {
	shard.Table
	refused bool
}

func (r *refusingTable) UpsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (int, error) {
	if r.refused || len(keys) < 3 {
		return r.Table.UpsertBatch(keys, fn)
	}
	r.refused = true
	j := len(keys) / 2
	ins, err := r.Table.UpsertBatch(keys[:j], fn)
	if err != nil {
		return ins, err
	}
	old, exists := r.Table.Get(keys[j])
	_ = fn(j, old, exists) // computed but never stored
	return ins, errors.New("synthetic kick-chain refusal")
}

func TestEngineUpsertBatchRefusalRecovery(t *testing.T) {
	first := true
	e := shard.MustNew(shard.Config{
		Shards: 1, Capacity: 1 << 10, GrowAt: 0.85, Seed: 4,
		NewTable: func(capacity int, seed uint64) (shard.Table, error) {
			inner, err := table.New(table.SchemeLP, table.Config{InitialCapacity: capacity, MaxLoadFactor: 0, Seed: seed})
			if err != nil {
				return nil, err
			}
			if first {
				first = false
				return &refusingTable{Table: inner}, nil
			}
			return inner, nil
		},
	})
	// Seed some existing keys so the batch mixes updates and inserts.
	for k := uint64(1); k <= 40; k++ {
		if _, err := e.Put(k, k*100); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([]uint64, 100)
	calls := make([]int, 100)
	oracle := map[uint64]uint64{}
	for k := uint64(1); k <= 40; k++ {
		oracle[k] = k * 100
	}
	for i := range keys {
		keys[i] = uint64(i) + 1 // 1..100: 40 updates, 60 inserts
	}
	wantInserted := 0
	for _, k := range keys {
		if _, ok := oracle[k]; !ok {
			wantInserted++
		}
		oracle[k] = oracle[k] + k + 7
	}
	inserted, err := e.UpsertBatch(keys, func(lane int, old uint64, exists bool) uint64 {
		calls[lane]++
		if exists != (old != 0) && old == 0 {
			// old==0 with exists=true is possible only for a stored zero,
			// which this test never writes.
			t.Fatalf("lane %d: exists=%v old=%d", lane, exists, old)
		}
		return old + keys[lane] + 7
	})
	if err != nil {
		t.Fatal(err)
	}
	if inserted != wantInserted {
		t.Fatalf("inserted = %d, want %d", inserted, wantInserted)
	}
	for lane, c := range calls {
		if c != 1 {
			t.Fatalf("fn called %d times for lane %d, want exactly 1", c, lane)
		}
	}
	if e.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", e.Len(), len(oracle))
	}
	for k, v := range oracle {
		if got, ok := e.Get(k); !ok || got != v {
			t.Fatalf("Get(%d) = (%d,%v), oracle %d", k, got, ok, v)
		}
	}
	// The refusal must have forced a migration (the recovery path).
	if st := e.Stats(); st.MigrationsStarted == 0 {
		t.Fatalf("recovery never began a migration: %+v", st)
	}
}
