//go:build !race

package shard

// The optimistic read path: wait-free in the common case. A reader
// snapshots the shard's sequence word, loads the published view, probes
// it with plain loads, and validates that the sequence is unchanged
// (and was even — no writer mid-window). On a torn window it yields and
// retries up to readMaxRetries times, then falls back to the writer
// lock so progress is never lost.
//
// The probes race writer stores by design; sequence validation discards
// every observation the race could have corrupted before it escapes.
// That protocol sits outside the Go memory model's guarantees (like
// every seqlock), which is why these builds carry the !race tag: under
// the race detector all reads route through the locked slow path
// (read_racedetector.go) and the remaining machinery stays fully
// checkable. The non-race differential suites pin the protocol itself:
// stored values are checkable functions of their keys, so a torn read
// that escaped validation cannot go unnoticed.

import "runtime"

// readGet is the wait-free single-key read behind Get.
func (e *Engine) readGet(s *shardState, key uint64) (uint64, bool) {
	for attempt := 0; attempt <= readMaxRetries; attempt++ {
		s1 := s.seq.Load()
		if s1&1 == 0 {
			v := s.view.Load()
			val, ok := v.get(key)
			if s.seq.Load() == s1 {
				if attempt > 0 {
					e.readAccount(s, uint64(attempt), false)
				}
				return val, ok
			}
		}
		// A writer owns (or crossed) the window; give it the core
		// before re-reading the sequence.
		runtime.Gosched()
	}
	e.readAccount(s, readMaxRetries+1, true)
	return e.readGetSlow(s, key)
}

// readRange is the wait-free staged-range read behind GetBatch: one
// sequence validation covers the whole shard range, so the two atomic
// loads amortize over the batch. A torn window retries the whole range
// (the output lanes are caller-owned scratch until the batch returns,
// so re-probing just overwrites them).
func (e *Engine) readRange(s *shardState, keys, vals []uint64, ok []bool) int {
	for attempt := 0; attempt <= readMaxRetries; attempt++ {
		s1 := s.seq.Load()
		if s1&1 == 0 {
			v := s.view.Load()
			hits := 0
			for i, k := range keys {
				val, o := v.get(k)
				vals[i], ok[i] = val, o
				if o {
					hits++
				}
			}
			if s.seq.Load() == s1 {
				if attempt > 0 {
					e.readAccount(s, uint64(attempt), false)
				}
				return hits
			}
		}
		runtime.Gosched()
	}
	e.readAccount(s, readMaxRetries+1, true)
	return e.readRangeSlow(s, keys, vals, ok)
}

// readSnapshot runs fn against a validated-quiescent view of s: the
// observer-read protocol behind Stats, Capacity and MemoryFootprint.
// fn may run several times (each retry re-invokes it) and must only
// write caller-local state; only the invocation that validated counts.
func (e *Engine) readSnapshot(s *shardState, fn func(v *view)) {
	for attempt := 0; attempt <= readMaxRetries; attempt++ {
		s1 := s.seq.Load()
		if s1&1 == 0 {
			fn(s.view.Load())
			if s.seq.Load() == s1 {
				if attempt > 0 {
					e.readAccount(s, uint64(attempt), false)
				}
				return
			}
		}
		runtime.Gosched()
	}
	e.readAccount(s, readMaxRetries+1, true)
	e.readSnapshotSlow(s, fn)
}
