package shard

import "iter"

// Stats is an engine-level point-in-time snapshot: merged size accounting
// plus the incremental-resize counters. Per-scheme probe diagnostics stay
// with the tables; visit them with ForEachTable.
type Stats struct {
	Shards int `json:"shards"`
	// Migrating counts shards with a resize currently in flight.
	Migrating int `json:"migrating,omitempty"`

	Len         int     `json:"len"`
	Capacity    int     `json:"capacity"`
	LoadFactor  float64 `json:"load_factor"`
	MemoryBytes uint64  `json:"memory_bytes"`

	// MigrationsStarted / MigrationsDone count incremental resizes; their
	// difference is the number currently in flight (== Migrating when no
	// writer races the snapshot).
	MigrationsStarted uint64 `json:"migrations_started"`
	MigrationsDone    uint64 `json:"migrations_done"`
	// MigratedEntries counts entries moved by the bounded per-mutation
	// migration steps (eagerly migrated keys are not counted).
	MigratedEntries uint64 `json:"migrated_entries"`
	// MigrationChunks counts the bounded migration steps mutations (and
	// Drain) hosted while a resize was in flight; MigrationNanos is
	// their cumulative wall time — together the incremental-resize cost
	// ledger (MigrationNanos/MigrationChunks is the mean step).
	MigrationChunks uint64 `json:"migration_chunks,omitempty"`
	MigrationNanos  uint64 `json:"migration_nanos,omitempty"`
	// Rebuilds counts stop-the-world fallback rebuilds (see Engine docs;
	// zero in any healthy configuration).
	Rebuilds uint64 `json:"rebuilds,omitempty"`

	// Degraded counts shards currently in the degraded-but-serving state
	// (allocator failing; see the package docs on graceful degradation).
	Degraded int `json:"degraded,omitempty"`
	// AllocFailures counts table-allocation failures absorbed into the
	// degraded state; AllocRetries counts the backoff-scheduled retries.
	AllocFailures uint64 `json:"alloc_failures,omitempty"`
	AllocRetries  uint64 `json:"alloc_retries,omitempty"`
}

// Stats collects the engine snapshot, locking one shard at a time (no
// cross-shard point-in-time consistency; see the package documentation).
func (e *Engine) Stats() Stats {
	st := Stats{
		Shards:            len(e.shards),
		MigrationsStarted: e.migStarted.Load(),
		MigrationsDone:    e.migDone.Load(),
		MigratedEntries:   e.migMoved.Load(),
		MigrationChunks:   e.migChunks.Load(),
		MigrationNanos:    e.migNanos.Load(),
		Rebuilds:          e.rebuilds.Load(),
		AllocFailures:     e.allocFails.Load(),
		AllocRetries:      e.allocRetries.Load(),
	}
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		st.Len += s.live
		if s.degraded {
			st.Degraded++
		}
		st.MemoryBytes += s.cur.MemoryFootprint()
		if s.next != nil {
			st.Migrating++
			st.Capacity += s.next.Capacity()
			st.MemoryBytes += s.next.MemoryFootprint()
		} else {
			st.Capacity += s.cur.Capacity()
		}
		s.mu.RUnlock()
	}
	if st.Capacity > 0 {
		st.LoadFactor = float64(st.Len) / float64(st.Capacity)
	}
	return st
}

// ForEachTable visits every shard's table(s) under that shard's read
// lock: the active table, and during a migration the frozen table too
// (whose entries may be stale shadows of the successor's). fn must not
// mutate the table or call back into the engine. Intended for
// observability aggregation, e.g. table.StatsOf merges.
func (e *Engine) ForEachTable(fn func(shard int, t Table)) {
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		if s.next != nil {
			fn(i, s.next)
		}
		fn(i, s.cur)
		s.mu.RUnlock()
	}
}

// Range calls fn for every entry until fn returns false.
//
// Iteration is WEAKLY CONSISTENT: one shard is read-locked at a time, so
// concurrent writers proceed on other shards mid-iteration. Within one
// shard the view is consistent and each key is yielded at most once
// (during a migration the successor is walked first and frozen-table
// entries shadowed by it, or marked dead, are skipped); across shards
// there is no snapshot — an entry written concurrently may or may not be
// observed, and Len may disagree with the visit count. fn must not call
// back into the engine (the shard lock is held; a same-shard write would
// deadlock).
func (e *Engine) Range(fn func(key, val uint64) bool) {
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		stopped := false
		if s.next == nil {
			s.cur.Range(func(k, v uint64) bool {
				if !fn(k, v) {
					stopped = true
				}
				return !stopped
			})
		} else {
			s.next.Range(func(k, v uint64) bool {
				if !fn(k, v) {
					stopped = true
				}
				return !stopped
			})
			if !stopped {
				s.cur.Range(func(k, v uint64) bool {
					if _, dead := s.dead[k]; dead {
						return true
					}
					if _, shadowed := s.next.Get(k); shadowed {
						return true
					}
					if !fn(k, v) {
						stopped = true
					}
					return !stopped
				})
			}
		}
		s.mu.RUnlock()
		if stopped {
			return
		}
	}
}

// All returns a Go 1.23 range-over-func iterator over the entries, with
// Range's weak-consistency contract.
func (e *Engine) All() iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) { e.Range(yield) }
}
