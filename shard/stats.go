package shard

import "iter"

// Stats is an engine-level snapshot: merged size accounting plus the
// incremental-resize, degradation and wait-free-read counters. Each
// shard's contribution is a validated per-shard observation (the
// readSnapshot protocol — see view.go); there is no cross-shard
// point-in-time consistency. Per-scheme probe diagnostics stay with the
// tables; visit them with ForEachTable.
type Stats struct {
	Shards int `json:"shards"`
	// Migrating counts shards with a resize currently in flight.
	Migrating int `json:"migrating,omitempty"`

	Len         int     `json:"len"`
	Capacity    int     `json:"capacity"`
	LoadFactor  float64 `json:"load_factor"`
	MemoryBytes uint64  `json:"memory_bytes"`

	// MigrationsStarted / MigrationsDone count incremental resizes; their
	// difference is the number currently in flight (== Migrating when no
	// writer races the snapshot).
	MigrationsStarted uint64 `json:"migrations_started"`
	MigrationsDone    uint64 `json:"migrations_done"`
	// MigratedEntries counts entries moved by the bounded per-mutation
	// migration steps (eagerly migrated keys are not counted).
	MigratedEntries uint64 `json:"migrated_entries"`
	// MigrationChunks counts the bounded migration steps mutations (and
	// Drain) hosted while a resize was in flight; MigrationNanos is
	// their cumulative wall time — together the incremental-resize cost
	// ledger (MigrationNanos/MigrationChunks is the mean step).
	MigrationChunks uint64 `json:"migration_chunks,omitempty"`
	MigrationNanos  uint64 `json:"migration_nanos,omitempty"`
	// Rebuilds counts stop-the-world fallback rebuilds (see Engine docs;
	// zero in any healthy configuration).
	Rebuilds uint64 `json:"rebuilds,omitempty"`

	// Degraded counts shards currently in the degraded-but-serving state
	// (allocator failing; see the package docs on graceful degradation).
	Degraded int `json:"degraded,omitempty"`
	// AllocFailures counts table-allocation failures absorbed into the
	// degraded state; AllocRetries counts the backoff-scheduled retries.
	AllocFailures uint64 `json:"alloc_failures,omitempty"`
	AllocRetries  uint64 `json:"alloc_retries,omitempty"`

	// ReadRetries counts optimistic read attempts discarded because a
	// writer's seqlock window overlapped the probe; ReadFallbacks counts
	// reads that exhausted their retry budget and parked on the writer
	// lock. Both zero under read-only load — the wait-free read path's
	// health ledger.
	ReadRetries   uint64 `json:"read_retries,omitempty"`
	ReadFallbacks uint64 `json:"read_fallbacks,omitempty"`
	// ViewPublishes counts shard view publications (epoch transitions):
	// the Shards birth epochs plus one per resize begin/finish, rebuild,
	// and degraded-state flip. Reads and in-place mutations never
	// republish.
	ViewPublishes uint64 `json:"view_publishes,omitempty"`
}

// Stats collects the engine snapshot without blocking writers: engine
// counters are atomic loads, per-shard state is read through the same
// validated wait-free protocol as Get (one shard at a time; no
// cross-shard snapshot — see the package documentation).
func (e *Engine) Stats() Stats {
	st := Stats{
		Shards:            len(e.shards),
		MigrationsStarted: e.migStarted.Load(),
		MigrationsDone:    e.migDone.Load(),
		MigratedEntries:   e.migMoved.Load(),
		MigrationChunks:   e.migChunks.Load(),
		MigrationNanos:    e.migNanos.Load(),
		Rebuilds:          e.rebuilds.Load(),
		AllocFailures:     e.allocFails.Load(),
		AllocRetries:      e.allocRetries.Load(),
		ReadRetries:       e.readRetries.Load(),
		ReadFallbacks:     e.readFallbacks.Load(),
		ViewPublishes:     e.viewPublishes.Load(),
	}
	for i := range e.shards {
		s := &e.shards[i]
		st.Len += int(s.live.Load())
		// Shard-local snapshot scratch: readSnapshot may invoke the
		// closure several times (each torn window re-probes), so it only
		// assigns — the accumulation into st happens once, after the
		// validated invocation wins.
		var (
			degraded  bool
			migrating bool
			capacity  int
			memory    uint64
		)
		e.readSnapshot(s, func(v *view) {
			degraded = v.degraded
			migrating = v.migrating()
			memory = v.cur.MemoryFootprint()
			if v.next != nil {
				capacity = v.next.Capacity()
				memory += v.next.MemoryFootprint()
			} else {
				capacity = v.cur.Capacity()
			}
		})
		if degraded {
			st.Degraded++
		}
		if migrating {
			st.Migrating++
		}
		st.Capacity += capacity
		st.MemoryBytes += memory
	}
	if st.Capacity > 0 {
		st.LoadFactor = float64(st.Len) / float64(st.Capacity)
	}
	return st
}

// ForEachTable visits every shard's table(s) under that shard's writer
// lock: the active table, and during a migration the frozen table too
// (whose entries may be stale shadows of the successor's). fn must not
// mutate the table or call back into the engine. Intended for
// observability aggregation, e.g. table.StatsOf merges.
//
// The writer lock — not the wait-free protocol — because fn is a caller
// callback that cannot be re-invoked on a torn window; mutating nothing,
// it needs no seqlock window, so concurrent optimistic readers proceed
// untouched.
func (e *Engine) ForEachTable(fn func(shard int, t Table)) {
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		v := s.view.Load()
		if v.next != nil {
			fn(i, v.next)
		}
		fn(i, v.cur)
		s.mu.Unlock()
	}
}

// Range calls fn for every entry until fn returns false.
//
// Iteration is WEAKLY CONSISTENT: one shard is locked at a time, so
// concurrent writers proceed on other shards mid-iteration (readers
// proceed everywhere — iteration holds the writer lock without opening a
// seqlock window, since it mutates nothing). Within one shard the view
// is consistent and each key is yielded at most once (during a migration
// the successor is walked first and frozen-table entries shadowed by it,
// or marked dead, are skipped); across shards there is no snapshot — an
// entry written concurrently may or may not be observed, and Len may
// disagree with the visit count. fn must not call back into the engine
// (the shard lock is held; a same-shard write would deadlock).
func (e *Engine) Range(fn func(key, val uint64) bool) {
	for i := range e.shards {
		if !e.RangeShard(i, fn) {
			return
		}
	}
}

// RangeShard calls fn for every entry of one shard (in [0, Shards()))
// until fn returns false, reporting whether the walk ran to completion.
// It is Range restricted to a single shard — same weak-consistency and
// no-reentrancy contract, including the mid-migration walk (successor
// first, then the frozen table with dead or shadowed keys skipped) — and
// exists so parallel scans (pipe's sharded Scan) can walk different
// shards from different workers concurrently: each call locks only its
// own shard.
func (e *Engine) RangeShard(shard int, fn func(key, val uint64) bool) bool {
	s := &e.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.view.Load()
	stopped := false
	if v.next == nil {
		v.cur.Range(func(k, val uint64) bool {
			if !fn(k, val) {
				stopped = true
			}
			return !stopped
		})
		return !stopped
	}
	v.next.Range(func(k, val uint64) bool {
		if !fn(k, val) {
			stopped = true
		}
		return !stopped
	})
	if !stopped {
		v.cur.Range(func(k, val uint64) bool {
			if v.dead.has(k) {
				return true
			}
			if _, shadowed := v.next.Get(k); shadowed {
				return true
			}
			if !fn(k, val) {
				stopped = true
			}
			return !stopped
		})
	}
	return !stopped
}

// All returns a Go 1.23 range-over-func iterator over the entries, with
// Range's weak-consistency contract.
func (e *Engine) All() iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) { e.Range(yield) }
}
