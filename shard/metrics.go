package shard

import "repro/obs"

// opSampleMask selects which scalar operations are timed when Metrics
// are attached: keys with the low six bits zero, i.e. roughly 1 in 64
// under any reasonable key distribution. Sampling keeps the scalar hot
// path at two clock reads per ~64 operations; batch operations are
// timed per batch (the two clock reads amortize over the whole batch),
// so they are never sampled.
const opSampleMask = 63

// Metrics is the engine's telemetry surface: latency histograms per
// operation plus degraded-state transition counters, striped by shard
// index so concurrent shards never contend on a cache line. Attach with
// Engine.SetMetrics; a nil Metrics (the default) leaves every hook as a
// single atomic-pointer load.
//
// All fields are constructed by NewMetrics; the zero value is not
// usable.
type Metrics struct {
	// Scalar per-operation latency (lock wait included), sampled by
	// opSampleMask.
	Get      *obs.Histogram
	Put      *obs.Histogram
	Delete   *obs.Histogram
	GetOrPut *obs.Histogram
	Upsert   *obs.Histogram

	// Whole-batch latency per batched entry point, one sample per call.
	GetBatch      *obs.Histogram
	PutBatch      *obs.Histogram
	GetOrPutBatch *obs.Histogram
	UpsertBatch   *obs.Histogram

	// MigrationChunk is the latency of each bounded migration step a
	// mutation (or Drain) hosts while a resize is in flight.
	MigrationChunk *obs.Histogram

	// DegradedEnter counts healthy→degraded shard transitions; Healed
	// counts degraded→healthy. Their difference tracks Stats().Degraded.
	DegradedEnter *obs.Counter
	Healed        *obs.Counter

	// Wait-free read-path health. ReadRetry counts optimistic attempts
	// discarded because a writer's seqlock window overlapped the probe;
	// ReadFallback counts reads that exhausted the retry budget and
	// parked on the writer lock; ViewRepublish counts epoch publications
	// (resize begin/finish, rebuild, degraded flips — plus the birth
	// epochs if Metrics are attached at construction). All three stay
	// zero under read-only load.
	ReadRetry     *obs.Counter
	ReadFallback  *obs.Counter
	ViewRepublish *obs.Counter
}

// NewMetrics returns a Metrics striped for the given shard count
// (minimum 1).
func NewMetrics(shards int) *Metrics {
	if shards < 1 {
		shards = 1
	}
	return &Metrics{
		Get:            obs.NewHistogram(shards),
		Put:            obs.NewHistogram(shards),
		Delete:         obs.NewHistogram(shards),
		GetOrPut:       obs.NewHistogram(shards),
		Upsert:         obs.NewHistogram(shards),
		GetBatch:       obs.NewHistogram(shards),
		PutBatch:       obs.NewHistogram(shards),
		GetOrPutBatch:  obs.NewHistogram(shards),
		UpsertBatch:    obs.NewHistogram(shards),
		MigrationChunk: obs.NewHistogram(shards),
		DegradedEnter:  obs.NewCounter(shards),
		Healed:         obs.NewCounter(shards),
		ReadRetry:      obs.NewCounter(shards),
		ReadFallback:   obs.NewCounter(shards),
		ViewRepublish:  obs.NewCounter(shards),
	}
}

// Register files every metric with r under the conventional shard_*
// names, prefixed by prefix (use "" for the plain names).
func (m *Metrics) Register(r *obs.Registry, prefix string) {
	r.RegisterHistogram(prefix+`shard_op_nanos{op="get"}`, "sampled scalar operation latency in nanoseconds", m.Get)
	r.RegisterHistogram(prefix+`shard_op_nanos{op="put"}`, "", m.Put)
	r.RegisterHistogram(prefix+`shard_op_nanos{op="delete"}`, "", m.Delete)
	r.RegisterHistogram(prefix+`shard_op_nanos{op="get_or_put"}`, "", m.GetOrPut)
	r.RegisterHistogram(prefix+`shard_op_nanos{op="upsert"}`, "", m.Upsert)
	r.RegisterHistogram(prefix+`shard_batch_nanos{op="get"}`, "whole-batch latency in nanoseconds", m.GetBatch)
	r.RegisterHistogram(prefix+`shard_batch_nanos{op="put"}`, "", m.PutBatch)
	r.RegisterHistogram(prefix+`shard_batch_nanos{op="get_or_put"}`, "", m.GetOrPutBatch)
	r.RegisterHistogram(prefix+`shard_batch_nanos{op="upsert"}`, "", m.UpsertBatch)
	r.RegisterHistogram(prefix+"shard_migration_chunk_nanos", "bounded migration step latency in nanoseconds", m.MigrationChunk)
	r.RegisterCounter(prefix+`shard_degraded_total{transition="enter"}`, "degraded-state transitions by direction", m.DegradedEnter)
	r.RegisterCounter(prefix+`shard_degraded_total{transition="heal"}`, "", m.Healed)
	r.RegisterCounter(prefix+"shard_read_retries_total", "optimistic read attempts discarded by a writer's seqlock window", m.ReadRetry)
	r.RegisterCounter(prefix+"shard_read_fallbacks_total", "reads that exhausted the optimistic retry budget and took the writer lock", m.ReadFallback)
	r.RegisterCounter(prefix+"shard_view_republish_total", "shard view (epoch) publications", m.ViewRepublish)
}

// SetMetrics attaches (or, with nil, detaches) the engine's telemetry.
// Safe to call at any time, including under concurrent traffic: hooks
// load the pointer once per operation, so an operation in flight keeps
// recording into the Metrics it started with.
func (e *Engine) SetMetrics(m *Metrics) { e.metrics.Store(m) }

// opStart decides whether this scalar operation on key is sampled:
// non-nil Metrics plus a sampled timestamp when it is, (nil, 0) on the
// common unsampled path.
func (e *Engine) opStart(key uint64) (*Metrics, int64) {
	m := e.metrics.Load()
	if m == nil || key&opSampleMask != 0 {
		return nil, 0
	}
	return m, obs.Now()
}

// batchStart is opStart for the batched entry points: every batch is
// timed (no sampling — two clock reads amortize over the whole batch).
func (e *Engine) batchStart() (*Metrics, int64) {
	m := e.metrics.Load()
	if m == nil {
		return nil, 0
	}
	return m, obs.Now()
}

// batchHint picks the stripe for a batch's single histogram record: the
// shard of the first key, so concurrent batch callers (whose batches
// usually start on different shards) spread across stripes.
func (e *Engine) batchHint(keys []uint64) int {
	if len(keys) == 0 {
		return 0
	}
	return e.shardIndex(keys[0])
}
