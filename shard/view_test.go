package shard

// Internal tests of the epoch/view machinery: the deadSet overlay, the
// publication chokepoint's invariants, and the birth-epoch accounting.
// (The seqlock read protocol's behavioral tests are build-tagged in
// seqlock_norace_test.go; the concurrent hammers live in the external
// differential suite.)

import (
	"errors"
	"testing"
)

// testTable is a map-backed Table for the in-package tests (the real
// table package imports shard, so it cannot be used here). It refuses
// inserts past its capacity like a growth-disabled scheme. Not safe for
// the concurrent hammers — those live in the external suite on real
// tables; these tests mutate single-threaded.
type testTable struct {
	m   map[uint64]uint64
	cap int
}

var errTestFull = errors.New("testTable full")

func newTestTable(capacity int, _ uint64) (Table, error) {
	if capacity < 1 {
		capacity = 1
	}
	return &testTable{m: make(map[uint64]uint64, capacity), cap: capacity}, nil
}

func (t *testTable) Get(key uint64) (uint64, bool) { v, ok := t.m[key]; return v, ok }
func (t *testTable) Delete(key uint64) bool {
	_, ok := t.m[key]
	delete(t.m, key)
	return ok
}
func (t *testTable) TryPut(key, val uint64) (bool, error) {
	if _, ok := t.m[key]; ok {
		t.m[key] = val
		return false, nil
	}
	if len(t.m) >= t.cap {
		return false, errTestFull
	}
	t.m[key] = val
	return true, nil
}
func (t *testTable) GetOrPut(key, val uint64) (uint64, bool, error) {
	if v, ok := t.m[key]; ok {
		return v, true, nil
	}
	if len(t.m) >= t.cap {
		return 0, false, errTestFull
	}
	t.m[key] = val
	return val, false, nil
}
func (t *testTable) Upsert(key uint64, fn func(old uint64, exists bool) uint64) (uint64, error) {
	old, ok := t.m[key]
	if !ok && len(t.m) >= t.cap {
		return 0, errTestFull
	}
	nv := fn(old, ok)
	t.m[key] = nv
	return nv, nil
}
func (t *testTable) GetBatch(keys, vals []uint64, ok []bool) int {
	hits := 0
	for i, k := range keys {
		vals[i], ok[i] = t.m[k], false
		if _, present := t.m[k]; present {
			ok[i] = true
			hits++
		}
	}
	return hits
}
func (t *testTable) TryPutBatch(keys, vals []uint64) (int, error) {
	ins := 0
	for i, k := range keys {
		in, err := t.TryPut(k, vals[i])
		if err != nil {
			return ins, err
		}
		if in {
			ins++
		}
	}
	return ins, nil
}
func (t *testTable) GetOrPutBatch(keys, vals, out []uint64, loaded []bool) (int, error) {
	ins := 0
	for i, k := range keys {
		v, ld, err := t.GetOrPut(k, vals[i])
		if err != nil {
			return ins, err
		}
		out[i], loaded[i] = v, ld
		if !ld {
			ins++
		}
	}
	return ins, nil
}
func (t *testTable) UpsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (int, error) {
	ins := 0
	for i, k := range keys {
		before := len(t.m)
		if _, err := t.Upsert(k, func(old uint64, exists bool) uint64 { return fn(i, old, exists) }); err != nil {
			return ins, err
		}
		if len(t.m) > before {
			ins++
		}
	}
	return ins, nil
}
func (t *testTable) Len() int                { return len(t.m) }
func (t *testTable) Capacity() int           { return t.cap }
func (t *testTable) MemoryFootprint() uint64 { return uint64(t.cap) * 16 }
func (t *testTable) Range(fn func(k, v uint64) bool) {
	for k, v := range t.m {
		if !fn(k, v) {
			return
		}
	}
}
func (t *testTable) Name() string { return "testTable" }

func testEngine(t *testing.T, shards, capacity int) *Engine {
	t.Helper()
	e, err := New(Config{
		Shards:   shards,
		Capacity: capacity,
		GrowAt:   0.8,
		Seed:     7,
		NewTable: newTestTable,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDeadSet(t *testing.T) {
	d := newDeadSet(100)
	if got := len(d.slots); got != 256 {
		t.Fatalf("capacity 100 sized %d slots, want 256 (next pow2 >= 200)", got)
	}
	keys := []uint64{0, 1, 7, ^uint64(0), 0x9e3779b97f4a7c15, 42}
	for _, k := range keys {
		if d.has(k) {
			t.Fatalf("empty set claims %d dead", k)
		}
	}
	for _, k := range keys {
		d.add(k)
		d.add(k) // idempotent
	}
	for _, k := range keys {
		if !d.has(k) {
			t.Fatalf("added key %d not found", k)
		}
	}
	if d.has(2) || d.has(43) {
		t.Fatal("false positive on absent key")
	}
	// key 0 lives in the dedicated word, not a slot.
	if d.n != len(keys)-1 {
		t.Fatalf("slot count %d, want %d (key 0 excluded)", d.n, len(keys)-1)
	}
	var nild *deadSet
	if nild.has(5) {
		t.Fatal("nil deadSet claims a key dead")
	}
}

func TestDeadSetCapacityFloor(t *testing.T) {
	d := newDeadSet(0)
	if got := len(d.slots); got != 8 {
		t.Fatalf("zero-capacity set sized %d slots, want the 8-slot floor", got)
	}
	d.add(3)
	if !d.has(3) {
		t.Fatal("floor-sized set lost its key")
	}
}

func TestPublishOutsideWindowPanics(t *testing.T) {
	e := testEngine(t, 1, 64)
	s := &e.shards[0]
	defer func() {
		if recover() == nil {
			t.Fatal("publish with an even sequence did not panic")
		}
	}()
	e.publish(s, &view{cur: s.view.Load().cur})
}

func TestBirthEpoch(t *testing.T) {
	e := testEngine(t, 4, 256)
	for i := range e.shards {
		v := e.shards[i].view.Load()
		if v == nil {
			t.Fatalf("shard %d has no published view", i)
		}
		if v.gen != 1 {
			t.Fatalf("shard %d birth generation %d, want 1", i, v.gen)
		}
		if v.migrating() || v.degraded || v.dead != nil {
			t.Fatalf("shard %d birth view not quiescent: %+v", i, v)
		}
		if seq := e.shards[i].seq.Load(); seq&1 != 0 {
			t.Fatalf("shard %d sequence left odd (%d) after construction", i, seq)
		}
	}
	if got := e.viewPublishes.Load(); got != 4 {
		t.Fatalf("viewPublishes after construction = %d, want one birth epoch per shard (4)", got)
	}
	if st := e.Stats(); st.ViewPublishes != 4 {
		t.Fatalf("Stats().ViewPublishes = %d, want 4", st.ViewPublishes)
	}
}

func TestViewGenerationAdvancesAcrossMigration(t *testing.T) {
	e := testEngine(t, 1, 64)
	s := &e.shards[0]
	born := s.view.Load().gen
	// Fill past the threshold to start a migration, then drain it.
	for i := uint64(1); i <= 60; i++ {
		if _, err := e.Put(i*0x9e3779b97f4a7c15, i); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Drain() {
		t.Fatal("Drain did not reach idle")
	}
	st := e.Stats()
	if st.MigrationsDone == 0 {
		t.Fatal("fill never migrated")
	}
	// Each migration publishes twice (freeze, promote).
	if got := s.view.Load().gen; got < born+2 {
		t.Fatalf("generation %d after a full migration, want >= %d", got, born+2)
	}
	if st.ViewPublishes < uint64(1+2*st.MigrationsDone) {
		t.Fatalf("ViewPublishes %d < birth + 2 per migration (%d migrations)", st.ViewPublishes, st.MigrationsDone)
	}
}
