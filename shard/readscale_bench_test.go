package shard_test

// BenchmarkReadScale measures what the wait-free read path buys: Get and
// GetBatch ns/key at 1, 2, 4 and 8 goroutines, on the real Engine
// (seqlock + epoch-published views) and on an in-bench replica of the
// engine's previous concurrency layer — per-shard sync.RWMutex around
// the same Robin Hood tables, same router, same per-call scatter
// staging, faithful to the pre-seqlock code down to its allocation
// behavior. Three workloads:
//
//   - get: scalar Get only, the per-key lock cost at its barest. The
//     RWMutex baseline pays two lock-word RMWs per key — a cross-core
//     coherence miss per key once readers spread over cores; the
//     seqlock path pays two loads of a word only writers dirty.
//   - read: GetBatch only; locking/validation amortizes per shard range.
//   - mixed: 95% GetBatch / 5% PutBatch (updates), the read-mostly
//     regime the seqlock targets; writer windows force occasional
//     retries, which the read-retry counters in Stats make visible.
//
// On the 4-vCPU CI runners the separation shows by 4 goroutines; a
// single-core machine shows parity (goroutines time-slice one core, so
// there is no coherence traffic for the seqlock to win back).
//
// When BENCH_SHARDREAD_JSON names a file, every sub-benchmark's ns/key
// lands there as JSON (the CI shard job uploads it as the
// BENCH_shardread.json artifact).

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/exec"
	"repro/hashfn"
	"repro/shard"
	"repro/table"
)

const (
	readScaleKeys  = 1 << 16
	readScaleBatch = 512
	readScaleShard = 8
	// mixedWritePeriod: one PutBatch per this many batches ≈ 5% writes.
	mixedWritePeriod = 20
)

// benchOps is the engine-agnostic surface the workloads drive.
type benchOps struct {
	get      func(k uint64) (uint64, bool)
	getBatch func(ks, vs []uint64, ok []bool)
	putBatch func(ks, vs []uint64)
}

// rwEngine replicates the engine's pre-seqlock read path: per-shard
// RWMutex, reads under RLock, the same router, and — like the real
// engine before and after — a freshly allocated scatter per batch call
// (concurrent callers must not share staging). It exists only as the
// benchmark baseline.
type rwEngine struct {
	shards []rwShard
	router hashfn.Function
	shift  uint
}

type rwShard struct {
	mu  sync.RWMutex
	tab shard.Table
}

func newRWEngine(b *testing.B, shards, capacity int, seed uint64) *rwEngine {
	b.Helper()
	e := &rwEngine{
		shards: make([]rwShard, shards),
		router: hashfn.MultFamily{}.New(seed ^ 0x9a77_e4b0_0f00_d001),
	}
	shift := uint(64)
	for p := shards; p > 1; p >>= 1 {
		shift--
	}
	e.shift = shift
	for i := range e.shards {
		t, err := table.New(table.SchemeRH, table.Config{
			InitialCapacity: capacity / shards,
			MaxLoadFactor:   0,
			Seed:            seed + uint64(i)*0x9e3779b97f4a7c15,
		})
		if err != nil {
			b.Fatal(err)
		}
		e.shards[i].tab = t
	}
	return e
}

func (e *rwEngine) get(k uint64) (uint64, bool) {
	s := &e.shards[e.router.Hash(k)>>e.shift]
	s.mu.RLock()
	v, ok := s.tab.Get(k)
	s.mu.RUnlock()
	return v, ok
}

func (e *rwEngine) getBatch(keys, vals []uint64, ok []bool) {
	st := new(exec.Scatter)
	st.Route(e.router, e.shift, len(e.shards), keys)
	for j := range e.shards {
		lo, hi := st.Starts[j], st.Starts[j+1]
		if lo == hi {
			continue
		}
		s := &e.shards[j]
		s.mu.RLock()
		for i := lo; i < hi; i++ {
			st.Vals[i], st.OK[i] = s.tab.Get(st.Keys[i])
		}
		s.mu.RUnlock()
	}
	for i, oi := range st.Orig {
		vals[oi], ok[oi] = st.Vals[i], st.OK[i]
	}
}

func (e *rwEngine) putBatch(keys, vals []uint64) {
	st := new(exec.Scatter)
	st.Route(e.router, e.shift, len(e.shards), keys)
	for i, oi := range st.Orig {
		st.Vals[i] = vals[oi]
	}
	for j := range e.shards {
		lo, hi := st.Starts[j], st.Starts[j+1]
		if lo == hi {
			continue
		}
		s := &e.shards[j]
		s.mu.Lock()
		for i := lo; i < hi; i++ {
			if _, err := s.tab.TryPut(st.Keys[i], st.Vals[i]); err != nil {
				panic(err)
			}
		}
		s.mu.Unlock()
	}
}

// readScaleResult is one sub-benchmark's outcome for the JSON artifact.
type readScaleResult struct {
	Engine     string  `json:"engine"` // "seqlock" or "rwmutex"
	Workload   string  `json:"workload"`
	Goroutines int     `json:"goroutines"`
	NsPerKey   float64 `json:"ns_per_key"`
}

var readScaleResults []readScaleResult

// readScaleWorker runs batches rounds of the workload, walking a
// goroutine-private window of the prefilled key space. One round is
// readScaleBatch keys whatever the workload shape (scalar or batched).
func readScaleWorker(w, batches int, keys []uint64, workload string, ops benchOps) {
	ks := make([]uint64, readScaleBatch)
	vs := make([]uint64, readScaleBatch)
	ok := make([]bool, readScaleBatch)
	pos := (w * 7919 * readScaleBatch) % len(keys)
	for i := 0; i < batches; i++ {
		for j := range ks {
			ks[j] = keys[(pos+j)%len(keys)]
		}
		pos = (pos + readScaleBatch) % len(keys)
		switch {
		case workload == "get":
			for _, k := range ks {
				if _, present := ops.get(k); !present {
					panic("prefilled key missing")
				}
			}
		case workload == "mixed" && i%mixedWritePeriod == mixedWritePeriod-1:
			for j, k := range ks {
				vs[j] = k ^ uint64(i)
			}
			ops.putBatch(ks, vs)
		default:
			ops.getBatch(ks, vs, ok)
		}
	}
}

func runReadScale(b *testing.B, g int, keys []uint64, workload string, ops benchOps) float64 {
	per := b.N/g + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			readScaleWorker(w, per, keys, workload, ops)
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	nsPerKey := float64(b.Elapsed().Nanoseconds()) / float64(per*g*readScaleBatch)
	b.ReportMetric(nsPerKey, "ns/key")
	return nsPerKey
}

func BenchmarkReadScale(b *testing.B) {
	// Pre-sized well under the growth threshold: neither engine resizes
	// mid-benchmark, so the comparison is purely the read protocols.
	const capacity = readScaleKeys * 4
	keys := make([]uint64, readScaleKeys)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}

	seq := shard.MustNew(shard.Config{
		Shards:   readScaleShard,
		Capacity: capacity,
		GrowAt:   0.85,
		Seed:     1,
		NewTable: func(capacity int, seed uint64) (shard.Table, error) {
			return table.New(table.SchemeRH, table.Config{InitialCapacity: capacity, MaxLoadFactor: 0, Seed: seed})
		},
	})
	rw := newRWEngine(b, readScaleShard, capacity, 1)
	for _, k := range keys {
		if _, err := seq.Put(k, k); err != nil {
			b.Fatal(err)
		}
	}
	{
		vals := make([]uint64, len(keys))
		copy(vals, keys)
		rw.putBatch(keys, vals)
	}

	engines := []struct {
		name string
		ops  benchOps
	}{
		{"seqlock", benchOps{
			get:      seq.Get,
			getBatch: func(ks, vs []uint64, ok []bool) { seq.GetBatch(ks, vs, ok) },
			putBatch: func(ks, vs []uint64) {
				if _, err := seq.PutBatch(ks, vs); err != nil {
					panic(err)
				}
			},
		}},
		{"rwmutex", benchOps{get: rw.get, getBatch: rw.getBatch, putBatch: rw.putBatch}},
	}

	for _, workload := range []string{"get", "read", "mixed"} {
		for _, g := range []int{1, 2, 4, 8} {
			for _, eng := range engines {
				b.Run(fmt.Sprintf("%s/%s/g%d", workload, eng.name, g), func(b *testing.B) {
					ns := runReadScale(b, g, keys, workload, eng.ops)
					readScaleResults = append(readScaleResults, readScaleResult{
						Engine: eng.name, Workload: workload, Goroutines: g, NsPerKey: ns,
					})
				})
			}
		}
	}

	if path := os.Getenv("BENCH_SHARDREAD_JSON"); path != "" && len(readScaleResults) > 0 {
		// The framework runs each sub-benchmark once to size it and again
		// to measure; keep only the last (measured) entry per sub-bench.
		last := make(map[readScaleResult]int)
		for i, r := range readScaleResults {
			last[readScaleResult{Engine: r.Engine, Workload: r.Workload, Goroutines: r.Goroutines}] = i
		}
		deduped := readScaleResults[:0]
		for i, r := range readScaleResults {
			if last[readScaleResult{Engine: r.Engine, Workload: r.Workload, Goroutines: r.Goroutines}] == i {
				deduped = append(deduped, r)
			}
		}
		readScaleResults = deduped
		st := seq.Stats()
		out, err := json.MarshalIndent(struct {
			Benchmark     string            `json:"benchmark"`
			Results       []readScaleResult `json:"results"`
			ReadRetries   uint64            `json:"read_retries"`
			ReadFallbacks uint64            `json:"read_fallbacks"`
		}{"BenchmarkReadScale", readScaleResults, st.ReadRetries, st.ReadFallbacks}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
