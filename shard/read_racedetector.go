//go:build race

package shard

// Race-detector builds: every read takes the locked slow path. The
// optimistic protocol's probes are deliberate data races (plain loads
// of slots a writer may be storing, discarded retroactively by sequence
// validation), which the detector would report on every concurrent
// read. Routing reads through the fallback keeps -race runs meaningful
// for everything else — writer serialization, migration, degradation,
// the oracle differentials — while the non-race suites (which assert
// value integrity on every read) exercise the seqlock itself.
//
// Retry/fallback accounting stays untouched here on purpose: these are
// not protocol fallbacks, and tests asserting the counters' behavior
// carry the !race tag.

func (e *Engine) readGet(s *shardState, key uint64) (uint64, bool) {
	return e.readGetSlow(s, key)
}

func (e *Engine) readRange(s *shardState, keys, vals []uint64, ok []bool) int {
	return e.readRangeSlow(s, keys, vals, ok)
}

func (e *Engine) readSnapshot(s *shardState, fn func(v *view)) {
	e.readSnapshotSlow(s, fn)
}
