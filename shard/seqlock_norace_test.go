//go:build !race

package shard

// Deterministic tests of the optimistic read protocol's retry and
// fallback behavior: the shard's sequence word is held odd by hand (no
// writer — the lock stays free), so a read must burn its full retry
// budget, park on the writer lock, and still return the right answer.
// Build-tagged !race because race builds replace the optimistic path
// with the locked slow path (read_racedetector.go), which neither
// retries nor accounts.

import "testing"

// holdWindowOpen makes s look mid-mutation to optimistic readers while
// leaving the writer lock free, then returns a closer. Test-only: the
// production sequence transitions all live in lockShard/unlockShard.
func holdWindowOpen(s *shardState) func() {
	s.seq.Add(1)
	return func() { s.seq.Add(1) }
}

func TestReadFallbackOnStuckWindow(t *testing.T) {
	e := testEngine(t, 1, 64)
	m := NewMetrics(1)
	e.SetMetrics(m)
	const key, val = 77, 770
	if _, err := e.Put(key, val); err != nil {
		t.Fatal(err)
	}
	s := &e.shards[0]

	reopen := holdWindowOpen(s)
	v, ok := e.Get(key)
	reopen()
	if !ok || v != val {
		t.Fatalf("Get through the fallback = (%d,%v), want (%d,true)", v, ok, val)
	}
	if got := e.readFallbacks.Load(); got != 1 {
		t.Fatalf("readFallbacks = %d, want exactly 1", got)
	}
	if got := e.readRetries.Load(); got != readMaxRetries+1 {
		t.Fatalf("readRetries = %d, want the full budget %d", got, readMaxRetries+1)
	}
	if got := m.ReadFallback.Value(); got != 1 {
		t.Fatalf("ReadFallback counter = %d, want 1", got)
	}
	if got := m.ReadRetry.Value(); got != readMaxRetries+1 {
		t.Fatalf("ReadRetry counter = %d, want %d", got, readMaxRetries+1)
	}

	// Window closed: the next read validates first try and accounts
	// nothing.
	if v, ok := e.Get(key); !ok || v != val {
		t.Fatalf("Get after reopen = (%d,%v)", v, ok)
	}
	if got := e.readFallbacks.Load(); got != 1 {
		t.Fatalf("validated read bumped readFallbacks to %d", got)
	}
	if got := e.readRetries.Load(); got != readMaxRetries+1 {
		t.Fatalf("validated read bumped readRetries to %d", got)
	}
}

func TestReadRangeFallbackOnStuckWindow(t *testing.T) {
	e := testEngine(t, 1, 128)
	keys := []uint64{3, 9, 27, 81}
	for _, k := range keys {
		if _, err := e.Put(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	vals := make([]uint64, len(keys))
	ok := make([]bool, len(keys))

	reopen := holdWindowOpen(&e.shards[0])
	hits := e.GetBatch(keys, vals, ok)
	reopen()
	if hits != len(keys) {
		t.Fatalf("GetBatch through the fallback hit %d of %d", hits, len(keys))
	}
	for i, k := range keys {
		if !ok[i] || vals[i] != k*10 {
			t.Fatalf("lane %d = (%d,%v), want (%d,true)", i, vals[i], ok[i], k*10)
		}
	}
	if got := e.readFallbacks.Load(); got != 1 {
		t.Fatalf("readFallbacks = %d, want 1 (one validation per shard range, not per key)", got)
	}
}

func TestReadSnapshotFallbackOnStuckWindow(t *testing.T) {
	e := testEngine(t, 1, 64)
	if _, err := e.Put(5, 50); err != nil {
		t.Fatal(err)
	}
	reopen := holdWindowOpen(&e.shards[0])
	st := e.Stats()
	reopen()
	if st.Len != 1 || st.Capacity == 0 {
		t.Fatalf("Stats through the fallback: %+v", st)
	}
	if e.readFallbacks.Load() == 0 {
		t.Fatal("snapshot read never fell back despite the stuck window")
	}
}

func TestReadFallbackWithoutMetrics(t *testing.T) {
	// No Metrics attached: the accounting path must tolerate the nil
	// registry while still counting into the engine totals.
	e := testEngine(t, 1, 64)
	const key, val = 11, 1100
	if _, err := e.Put(key, val); err != nil {
		t.Fatal(err)
	}
	reopen := holdWindowOpen(&e.shards[0])
	if v, ok := e.Get(key); !ok || v != val {
		t.Fatalf("Get with nil metrics through fallback = (%d,%v)", v, ok)
	}
	reopen()
	if got := e.readFallbacks.Load(); got != 1 {
		t.Fatalf("readFallbacks = %d, want 1", got)
	}
}
