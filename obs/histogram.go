package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/stats"
)

// subBits is the sub-bucket resolution of the log-bucketed histogram:
// each power-of-two range is split into 2^subBits sub-buckets, bounding
// the relative error of any recorded value by 2^-subBits (3.125%).
const subBits = 5

// numBuckets covers the full non-negative int64 range: values below
// 2^subBits get one exact bucket each (chunk 0), and every wider power
// of two contributes 2^subBits sub-buckets.
const numBuckets = (64 - subBits + 1) << subBits

// bucketIndex maps a non-negative value to its bucket: chunk 0 stores
// values < 2^subBits exactly; value v >= 2^subBits with leading bit at
// position exp lands in chunk exp-subBits+1, sub-bucket "next subBits
// bits below the leading bit".
func bucketIndex(v uint64) int {
	if v < 1<<subBits {
		return int(v)
	}
	exp := bits.Len64(v) - 1
	chunk := exp - subBits + 1
	sub := (v >> uint(exp-subBits)) & (1<<subBits - 1)
	return chunk<<subBits + int(sub)
}

// bucketValue returns the representative value of a bucket — its exact
// value in chunk 0, the sub-bucket midpoint elsewhere — so quantile
// estimates err by at most half a sub-bucket width.
func bucketValue(index int) int64 {
	if index < 1<<subBits {
		return int64(index)
	}
	chunk := index >> subBits
	sub := uint64(index & (1<<subBits - 1))
	exp := uint(chunk + subBits - 1)
	shift := exp - subBits
	lo := uint64(1)<<exp | sub<<shift
	return int64(lo + uint64(1)<<shift/2)
}

// histStripe is one writer's private slice of bucket counters plus its
// padded running sum; stripes are separate allocations, so two writers
// never share a counter cache line.
type histStripe struct {
	counts []atomic.Uint64
	sum    atomic.Uint64
	_      [cacheLine - 8]byte
}

// Histogram is a log-bucketed power-of-two value/latency histogram with
// sub-bucket resolution, striped per writer like Counter: Record routes
// the two atomic adds (bucket count, running sum) to the stripe named by
// the caller's hint. The zero value is not usable; construct with
// NewHistogram.
type Histogram struct {
	stripes []histStripe
	mask    uint32
}

// NewHistogram returns a Histogram with the given number of stripes,
// rounded up to a power of two (minimum 1). Size stripes to the number
// of concurrent recorders; each stripe owns its own ~15 KiB bucket
// table, so a histogram's memory is stripes * numBuckets * 8 bytes.
func NewHistogram(stripes int) *Histogram {
	n := 1
	for n < stripes {
		n <<= 1
	}
	h := &Histogram{stripes: make([]histStripe, n), mask: uint32(n - 1)}
	for i := range h.stripes {
		h.stripes[i].counts = make([]atomic.Uint64, numBuckets)
	}
	return h
}

// Stripes returns the stripe count (a power of two).
func (h *Histogram) Stripes() int { return len(h.stripes) }

// Record adds v to the histogram via the stripe selected by hint.
// Negative values are clamped to 0 (mirroring stats.Histogram's
// documented clamping): a latency or size sample should never be
// negative, and counting it at 0 keeps the sample visible instead of
// silently dropping it.
func (h *Histogram) Record(hint int, v int64) {
	if v < 0 {
		v = 0
	}
	s := &h.stripes[uint32(hint)&h.mask]
	s.counts[bucketIndex(uint64(v))].Add(1)
	s.sum.Add(uint64(v))
}

// Snapshot folds the stripes into an immutable Snapshot. With concurrent
// recorders the fold is per-bucket-consistent (a recording racing the
// snapshot lands wholly in or wholly out per counter), which is the same
// consistency every Stats() snapshot in the repo offers.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{Counts: make([]int, numBuckets)}
	for i := range h.stripes {
		st := &h.stripes[i]
		s.Sum += st.sum.Load()
		for b := range st.counts {
			if c := st.counts[b].Load(); c != 0 {
				s.Counts[b] += int(c)
				s.Count += int(c)
			}
		}
	}
	return s
}

// Snapshot is a folded histogram: bucket counts in the histogram's
// bucket space plus the sample count and running sum. It is a plain
// value — safe to retain, compare, and serialize after the histogram
// moves on.
type Snapshot struct {
	Counts []int
	Count  int
	Sum    uint64
}

// Mean returns the mean recorded value (0 for an empty snapshot).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile of the recorded values: the
// representative value of the bucket holding the nearest-rank element
// (stats.CountsQuantile, the same convention as the exact oracle
// stats.Quantile), with relative error bounded by the sub-bucket
// resolution (2^-subBits).
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	return bucketValue(stats.CountsQuantile(s.Counts, q))
}

// P50 is Quantile(0.50).
func (s Snapshot) P50() int64 { return s.Quantile(0.50) }

// P90 is Quantile(0.90).
func (s Snapshot) P90() int64 { return s.Quantile(0.90) }

// P99 is Quantile(0.99).
func (s Snapshot) P99() int64 { return s.Quantile(0.99) }

// P999 is Quantile(0.999).
func (s Snapshot) P999() int64 { return s.Quantile(0.999) }

// String renders the snapshot's shape with nanosecond values formatted
// as durations — the common case; a histogram of non-duration values
// still reads fine as scaled units.
func (s Snapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v p999=%v",
		s.Count, time.Duration(s.Mean()), time.Duration(s.P50()),
		time.Duration(s.P90()), time.Duration(s.P99()), time.Duration(s.P999()))
}
