package obs

import (
	"encoding/json"
	"expvar"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry builds a registry with one member of every kind, with
// deterministic recorded values, mirroring the real metric naming.
func goldenRegistry() *Registry {
	r := NewRegistry()
	tasks := NewCounter(2)
	tasks.Add(0, 40)
	tasks.Add(1, 2)
	r.RegisterCounter("exec_tasks_total", "tasks executed by the pool", tasks)
	steals := NewCounter(1)
	steals.Add(0, 7)
	r.RegisterCounter(`exec_events_total{kind="steal"}`, "scheduling events by kind", steals)
	errs := NewCounter(1)
	r.RegisterCounter(`exec_events_total{kind="error"}`, "", errs)
	depth := NewGauge()
	depth.Set(3)
	r.RegisterGauge("engine_degraded_shards", "shards in the degraded-but-serving state", depth)
	lat := NewHistogram(1)
	for v := int64(1); v <= 1000; v++ {
		lat.Record(0, v)
	}
	r.RegisterHistogram(`shard_op_nanos{op="get"}`, "per-operation latency in nanoseconds", lat)
	r.RegisterFunc("engine_load_factor", "live entries over capacity", func() float64 { return 0.47 })
	return r
}

// TestRegistryGolden is the in-process /metrics "curl": it serves the
// handler through httptest and compares the exposition body against the
// checked-in golden file (refresh with -update-golden).
func TestRegistryGolden(t *testing.T) {
	rec := httptest.NewRecorder()
	goldenRegistry().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	got := rec.Body.String()
	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryExpvar(t *testing.T) {
	r := goldenRegistry()
	const name = "obs_test_registry"
	r.PublishExpvar(name)
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("PublishExpvar did not publish")
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar payload is not JSON: %v\n%s", err, v.String())
	}
	if m["exec_tasks_total"] != float64(42) {
		t.Fatalf("exec_tasks_total = %v, want 42", m["exec_tasks_total"])
	}
	hist, ok := m[`shard_op_nanos{op="get"}`].(map[string]any)
	if !ok || hist["count"] != float64(1000) {
		t.Fatalf("histogram expvar payload = %v", m[`shard_op_nanos{op="get"}`])
	}
	// Re-publishing (same or another registry) must not panic.
	r.PublishExpvar(name)
	NewRegistry().PublishExpvar(name)
}

func TestRegistryMisusePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate name", func() {
		r := NewRegistry()
		r.RegisterGauge("x", "", NewGauge())
		r.RegisterGauge("x", "", NewGauge())
	})
	mustPanic("kind conflict", func() {
		r := NewRegistry()
		r.RegisterCounter(`f{a="1"}`, "", NewCounter(1))
		r.RegisterGauge(`f{a="2"}`, "", NewGauge())
	})
	mustPanic("malformed labels", func() {
		NewRegistry().RegisterGauge("f{oops", "", NewGauge())
	})
	mustPanic("empty family", func() {
		NewRegistry().RegisterGauge(`{a="1"}`, "", NewGauge())
	})
}
