package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// summaryQuantiles are the quantile samples a histogram family exports.
var summaryQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// metricKind is the Prometheus family type of a registered metric.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
	funcKind // pull-computed gauge
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case histogramKind:
		return "summary"
	default:
		return "gauge"
	}
}

// sample is one registered metric instance: a family member with an
// optional label set.
type sample struct {
	name    string // full sample name, e.g. shard_op_nanos{op="get"}
	labels  string // label body without braces, "" when unlabeled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family groups the samples sharing a metric name, so HELP/TYPE render
// once and samples stay contiguous as the exposition format requires.
type family struct {
	name    string
	help    string
	kind    metricKind
	samples []*sample
}

// Registry names metrics and renders them on demand. Registration takes
// the registry lock; rendering walks the registered primitives and reads
// their atomics — it never blocks a recorder, and the registry owns no
// goroutines (export is pull-based by design: scrapes and expvar reads
// happen on the caller's goroutine).
//
// Metric names follow the Prometheus data model: a family name, with an
// optional fixed label set baked into the registered name — e.g.
// RegisterHistogram(`engine_op_nanos{op="get"}`, ...) registers one
// member of the engine_op_nanos family. Registering the same full name
// twice, or one family under two kinds, panics: both are programmer
// errors a test hits immediately.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	seen     map[string]bool
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}, seen: map[string]bool{}}
}

// splitName separates a sample name into family and label body.
func splitName(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	if !strings.HasSuffix(name, "}") {
		panic(fmt.Sprintf("obs: malformed metric name %q: '{' without closing '}'", name))
	}
	return name[:i], name[i+1 : len(name)-1]
}

// register validates and files s under its family.
func (r *Registry) register(name, help string, kind metricKind, s *sample) {
	fam, labels := splitName(name)
	if fam == "" {
		panic(fmt.Sprintf("obs: empty metric family in name %q", name))
	}
	s.name, s.labels = name, labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.seen[name] = true
	f := r.byName[fam]
	if f == nil {
		f = &family{name: fam, help: help, kind: kind}
		r.byName[fam] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric family %q registered as both %v and %v", fam, f.kind, kind))
	}
	f.samples = append(f.samples, s)
}

// RegisterCounter registers a Counter under name (rendered with the
// conventional _total reading left to the caller's naming).
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.register(name, help, counterKind, &sample{counter: c})
}

// RegisterGauge registers a Gauge under name.
func (r *Registry) RegisterGauge(name, help string, g *Gauge) {
	r.register(name, help, gaugeKind, &sample{gauge: g})
}

// RegisterHistogram registers a Histogram under name, exported as a
// Prometheus summary: quantile samples (p50/p90/p99/p999 estimates from
// the log-bucketed snapshot) plus name_sum and name_count.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.register(name, help, histogramKind, &sample{hist: h})
}

// RegisterFunc registers a pull-computed gauge: fn runs on every render,
// on the scraper's goroutine. Use it to export existing snapshot state
// (engine Len, load factor, migration counters) without a push path.
func (r *Registry) RegisterFunc(name, help string, fn func() float64) {
	r.register(name, help, funcKind, &sample{fn: fn})
}

// withLabel merges extra into a sample's label set.
func withLabel(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// sampleLine writes one exposition line: name{labels} value.
func sampleLine(w io.Writer, fam, labels, value string) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", fam, value)
	} else {
		fmt.Fprintf(w, "%s{%s} %s\n", fam, labels, value)
	}
}

// formatFloat renders a float in the shortest round-trip form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families in registration order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()
	for _, f := range families {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %v\n", f.name, f.kind)
		for _, s := range f.samples {
			switch f.kind {
			case counterKind:
				sampleLine(w, f.name, s.labels, strconv.FormatUint(s.counter.Value(), 10))
			case gaugeKind:
				sampleLine(w, f.name, s.labels, strconv.FormatInt(s.gauge.Value(), 10))
			case funcKind:
				sampleLine(w, f.name, s.labels, formatFloat(s.fn()))
			case histogramKind:
				snap := s.hist.Snapshot()
				for _, q := range summaryQuantiles {
					ql := withLabel(s.labels, `quantile="`+formatFloat(q)+`"`)
					sampleLine(w, f.name, ql, strconv.FormatInt(snap.Quantile(q), 10))
				}
				sampleLine(w, f.name+"_sum", s.labels, strconv.FormatUint(snap.Sum, 10))
				sampleLine(w, f.name+"_count", s.labels, strconv.Itoa(snap.Count))
			}
		}
	}
}

// ServeHTTP renders the registry: the /metrics endpoint. Plain GETs
// only; the render runs on the scraper's goroutine.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WriteText(w)
}

// expvarMap is the expvar payload: every sample's current value keyed by
// its full name, histograms as their quantile summaries. Keys are sorted
// so the JSON is stable for humans and tests.
func (r *Registry) expvarMap() any {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()
	out := map[string]any{}
	for _, f := range families {
		for _, s := range f.samples {
			switch f.kind {
			case counterKind:
				out[s.name] = s.counter.Value()
			case gaugeKind:
				out[s.name] = s.gauge.Value()
			case funcKind:
				out[s.name] = s.fn()
			case histogramKind:
				snap := s.hist.Snapshot()
				h := map[string]any{"count": snap.Count, "sum": snap.Sum}
				for _, q := range summaryQuantiles {
					h["p"+strings.TrimPrefix(formatFloat(q), "0.")] = snap.Quantile(q)
				}
				out[s.name] = h
			}
		}
	}
	return out
}

// PublishExpvar publishes the registry's snapshot as one expvar variable
// (visible on /debug/vars alongside the runtime's memstats), evaluated
// on each read. Publishing the same name twice in a process is a no-op
// for the second caller — expvar forbids re-publishing, and the first
// registry keeps the name.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.expvarMap() }))
}
