package obs_test

// The instrumentation-overhead benchmark behind the PR's headline claim:
// attaching shard.Metrics must leave the batch paths (GetBatch, PutBatch,
// GetOrPutBatch — timed once per batch call) and the scalar RMW path
// (Upsert — sampled at key&63==0) within ~2% of the uninstrumented
// engine. Every case runs metrics-off then metrics-on against identically
// built handles; with BENCH_OBS_JSON set the paired ns/key numbers and
// their percentage deltas are dumped as the BENCH_obs.json CI artifact.
//
// It lives in package obs_test (not shard_test) because what it measures
// is the obs recording machinery — striped counters and histograms — as
// wired into the hottest consumer.

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/dist"
	"repro/shard"
	"repro/table"
)

// obsBenchPoint is one ⟨sub-benchmark, ns/key⟩ datapoint.
type obsBenchPoint struct {
	Case     string  `json:"case"`
	NsPerKey float64 `json:"ns_per_key"`
}

// obsBenchDelta pairs a case's off/on runs into the headline number.
type obsBenchDelta struct {
	Case     string  `json:"case"`
	OffNs    float64 `json:"off_ns_per_key"`
	OnNs     float64 `json:"on_ns_per_key"`
	DeltaPct float64 `json:"delta_pct"`
}

var obsBenchResults []obsBenchPoint

// reportObsNs reports ns/key for a benchmark that processed total keys,
// recording the datapoint for the BENCH_obs.json artifact. Reruns of the
// same case (-count, or b.N calibration ramps) keep the MINIMUM ns/key:
// on a shared CI vCPU run-to-run noise dwarfs the effect under test, and
// the minimum is the standard noise-robust estimator for "how fast is
// this code" — so CI runs a fixed -benchtime iteration count with
// -count reruns and the deltas compare best-against-best.
func reportObsNs(b *testing.B, total int) {
	ns := float64(b.Elapsed().Nanoseconds()) / float64(total)
	b.ReportMetric(ns, "ns/key")
	for i := range obsBenchResults {
		if obsBenchResults[i].Case == b.Name() {
			if ns < obsBenchResults[i].NsPerKey {
				obsBenchResults[i].NsPerKey = ns
			}
			return
		}
	}
	obsBenchResults = append(obsBenchResults, obsBenchPoint{Case: b.Name(), NsPerKey: ns})
}

// writeObsBenchJSON dumps the datapoints plus the off/on delta pairs to
// the file named by BENCH_OBS_JSON. Cases are paired by their name up to
// the trailing "/off" or "/on" segment.
func writeObsBenchJSON(b *testing.B) {
	path := os.Getenv("BENCH_OBS_JSON")
	if path == "" || len(obsBenchResults) == 0 {
		return
	}
	off := make(map[string]float64)
	on := make(map[string]float64)
	for _, p := range obsBenchResults {
		if base, found := strings.CutSuffix(p.Case, "/off"); found {
			off[base] = p.NsPerKey
		} else if base, found := strings.CutSuffix(p.Case, "/on"); found {
			on[base] = p.NsPerKey
		}
	}
	var deltas []obsBenchDelta
	for _, p := range obsBenchResults {
		base, found := strings.CutSuffix(p.Case, "/off")
		if !found {
			continue
		}
		onNs, ok := on[base]
		if !ok {
			continue
		}
		deltas = append(deltas, obsBenchDelta{
			Case:     base,
			OffNs:    p.NsPerKey,
			OnNs:     onNs,
			DeltaPct: (onNs - p.NsPerKey) / p.NsPerKey * 100,
		})
	}
	out, err := json.MarshalIndent(struct {
		Benchmark string          `json:"benchmark"`
		Points    []obsBenchPoint `json:"points"`
		Deltas    []obsBenchDelta `json:"deltas"`
	}{Benchmark: "BenchmarkObsOverhead", Points: obsBenchResults, Deltas: deltas}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// openObsHandle opens the sharded handle all overhead cases drive,
// attaching fresh shard.Metrics when instrumented.
func openObsHandle(b *testing.B, capacity int, instrumented bool) *table.Handle {
	b.Helper()
	h, err := table.Open(
		table.WithScheme(table.SchemeRH),
		table.WithCapacity(capacity),
		table.WithPartitions(8),
		table.WithSeed(42),
	)
	if err != nil {
		b.Fatal(err)
	}
	if instrumented {
		h.Engine().SetMetrics(shard.NewMetrics(h.Engine().Shards()))
	}
	return h
}

// benchModes orders every case's uninstrumented and instrumented runs
// back-to-back, so slow drift of the machine (thermal state, noisy
// neighbors on a shared vCPU) hits both sides of each delta about
// equally instead of biasing all "on" runs late.
var benchModes = []struct {
	name         string
	instrumented bool
}{{"off", false}, {"on", true}}

// BenchmarkObsOverhead sweeps the instrumented paths with metrics
// detached ("off") and attached ("on"): the three batch kernels plus the
// scalar upsert RMW loop.
func BenchmarkObsOverhead(b *testing.B) {
	const n = 1 << 16
	gen := dist.New(dist.Sparse, 1)
	keys := dist.Shuffled(gen.Keys(n), 2)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i)
	}
	out := make([]uint64, n)
	ok := make([]bool, n)
	bump := func(old uint64, exists bool) uint64 {
		if exists {
			return old + 1
		}
		return 1
	}

	for _, mode := range benchModes {
		b.Run("getbatch/"+mode.name, func(b *testing.B) {
			h := openObsHandle(b, n*2, mode.instrumented)
			if _, err := h.PutBatch(keys, vals); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.GetBatch(keys, out, ok)
			}
			reportObsNs(b, b.N*n)
		})
	}
	for _, mode := range benchModes {
		b.Run("putbatch/"+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := openObsHandle(b, n*2, mode.instrumented)
				b.StartTimer()
				if _, err := h.PutBatch(keys, vals); err != nil {
					b.Fatal(err)
				}
			}
			reportObsNs(b, b.N*n)
		})
	}
	for _, mode := range benchModes {
		b.Run("getorputbatch/"+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := openObsHandle(b, n*2, mode.instrumented)
				b.StartTimer()
				if _, err := h.GetOrPutBatch(keys, vals, out, ok); err != nil {
					b.Fatal(err)
				}
			}
			reportObsNs(b, b.N*n)
		})
	}
	for _, mode := range benchModes {
		b.Run("upsert/"+mode.name, func(b *testing.B) {
			h := openObsHandle(b, n*2, mode.instrumented)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, k := range keys {
					if _, err := h.Upsert(k, bump); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportObsNs(b, b.N*n)
		})
	}
	writeObsBenchJSON(b)
}
