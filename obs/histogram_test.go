package obs

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/prng"
	"repro/stats"
)

// quantiles under test everywhere: the ones the registry exports.
var testQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// relErr is the acceptance bound for the bucketed estimate against the
// exact oracle: half a sub-bucket (2^-(subBits+1)) plus slack for the
// rank landing next to a bucket boundary.
const relErr = 1.0 / (1 << subBits)

// checkQuantiles records xs into a fresh histogram and compares every
// test quantile against the exact sort-based oracle.
func checkQuantiles(t *testing.T, name string, xs []int) {
	t.Helper()
	h := NewHistogram(4)
	for i, v := range xs {
		h.Record(i, int64(v)) // rotate stripes: the fold must not care
	}
	snap := h.Snapshot()
	if snap.Count != len(xs) {
		t.Fatalf("%s: snapshot count %d, want %d", name, snap.Count, len(xs))
	}
	var sum uint64
	for _, v := range xs {
		sum += uint64(v)
	}
	if snap.Sum != sum {
		t.Fatalf("%s: snapshot sum %d, want %d", name, snap.Sum, sum)
	}
	for _, q := range testQuantiles {
		exact := float64(stats.Quantile(xs, q))
		est := float64(snap.Quantile(q))
		bound := relErr * math.Max(exact, 1)
		if math.Abs(est-exact) > bound {
			t.Errorf("%s: q=%v estimate %v, exact %v (bound %v)", name, q, est, exact, bound)
		}
	}
}

func TestHistogramQuantileUniform(t *testing.T) {
	rng := prng.NewXoshiro256(1)
	xs := make([]int, 20000)
	for i := range xs {
		xs[i] = int(rng.Uint64n(1_000_000))
	}
	checkQuantiles(t, "uniform", xs)
}

func TestHistogramQuantileZipf(t *testing.T) {
	// Inverse-power sampling: a heavy tail spanning five decades, the
	// shape of a latency distribution with stalls.
	rng := prng.NewXoshiro256(2)
	xs := make([]int, 20000)
	for i := range xs {
		u := rng.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		xs[i] = int(100 / math.Pow(u, 1.2))
	}
	checkQuantiles(t, "zipf", xs)
}

func TestHistogramQuantilePoint(t *testing.T) {
	xs := make([]int, 5000)
	for i := range xs {
		xs[i] = 4242
	}
	checkQuantiles(t, "point", xs)
}

func TestHistogramQuantileSmallExact(t *testing.T) {
	// Values below 2^subBits have one bucket each: estimates are exact.
	rng := prng.NewXoshiro256(3)
	xs := make([]int, 10000)
	for i := range xs {
		xs[i] = int(rng.Uint64n(1 << subBits))
	}
	h := NewHistogram(1)
	for _, v := range xs {
		h.Record(0, int64(v))
	}
	snap := h.Snapshot()
	for _, q := range testQuantiles {
		if got, want := snap.Quantile(q), int64(stats.Quantile(xs, q)); got != want {
			t.Errorf("small values: q=%v estimate %d, exact %d (must be exact)", q, got, want)
		}
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	h := NewHistogram(1)
	h.Record(0, -5)
	h.Record(0, -1)
	h.Record(0, 7)
	snap := h.Snapshot()
	if snap.Count != 3 {
		t.Fatalf("count %d, want 3: clamping must not drop samples", snap.Count)
	}
	if snap.Counts[0] != 2 {
		t.Fatalf("bucket 0 count %d, want 2 clamped negatives", snap.Counts[0])
	}
	if snap.Sum != 7 {
		t.Fatalf("sum %d, want 7: clamped values contribute 0", snap.Sum)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	snap := NewHistogram(2).Snapshot()
	if snap.Count != 0 || snap.Sum != 0 || snap.Mean() != 0 || snap.P50() != 0 || snap.Quantile(0.999) != 0 {
		t.Fatalf("empty snapshot not all-zero: %+v", snap)
	}
	if s := snap.String(); s != "n=0" {
		t.Fatalf("empty String() = %q", s)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// The representative value of any value's bucket stays within the
	// sub-bucket error bound, across the whole range incl. boundaries.
	vals := []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1025, 1 << 20, 1<<40 + 12345, 1 << 62}
	rng := prng.NewXoshiro256(4)
	for i := 0; i < 1000; i++ {
		vals = append(vals, rng.Next()>>(rng.Uint64n(40)+2))
	}
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		rep := float64(bucketValue(idx))
		if math.Abs(rep-float64(v)) > relErr*math.Max(float64(v), 1) {
			t.Fatalf("bucketValue(bucketIndex(%d)) = %v: outside the %v relative bound", v, rep, relErr)
		}
	}
	// Index monotonicity over increasing values.
	prev := -1
	for exp := 0; exp < 63; exp++ {
		v := uint64(1) << exp
		if idx := bucketIndex(v); idx < prev {
			t.Fatalf("bucketIndex not monotone at 2^%d: %d < %d", exp, idx, prev)
		} else {
			prev = idx
		}
	}
}

func TestCounterStriping(t *testing.T) {
	c := NewCounter(3) // rounds to 4
	if c.Stripes() != 4 {
		t.Fatalf("Stripes() = %d, want 4", c.Stripes())
	}
	c.Add(0, 5)
	c.Inc(1)
	c.Add(2, 10)
	c.Add(6, 1) // wraps onto stripe 2
	if c.Value() != 17 {
		t.Fatalf("Value() = %d, want 17", c.Value())
	}
	if c.ValueAt(2) != 11 {
		t.Fatalf("ValueAt(2) = %d, want 11 (10 + wrapped 1)", c.ValueAt(2))
	}
}

func TestCounterStripePadding(t *testing.T) {
	if sz := reflect.TypeOf(stripe{}).Size(); sz%cacheLine != 0 {
		t.Fatalf("stripe size %d not a multiple of the %d-byte cache line", sz, cacheLine)
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge()
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("Value() = %d, want 4", g.Value())
	}
}

func TestNowMonotone(t *testing.T) {
	a := Now()
	b := Now()
	if b < a || a < 0 {
		t.Fatalf("Now went backwards: %d then %d", a, b)
	}
}
