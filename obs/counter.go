package obs

import (
	"sync/atomic"
	"time"
)

// cacheLine is the assumed cache-line (and false-sharing) granularity.
const cacheLine = 64

// stripe is one cache-line-padded counter slot: the atomic word plus
// padding out to a full line, so adjacent stripes of one Counter (and
// adjacent Counters in a slice) never share a line.
type stripe struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Counter is a monotonic counter striped across cache-line-padded atomic
// slots. Writers pass a stripe hint — their worker, shard, or thread
// index — and increment only their own line, so concurrent recording is
// contention-free; readers sum the stripes. The zero value is not
// usable; construct with NewCounter.
type Counter struct {
	stripes []stripe
	mask    uint32
}

// NewCounter returns a Counter with the given number of stripes, rounded
// up to a power of two (minimum 1). Size stripes to the number of
// concurrent writers (workers, shards); hints beyond the stripe count
// wrap around, which stays correct but reintroduces sharing.
func NewCounter(stripes int) *Counter {
	n := 1
	for n < stripes {
		n <<= 1
	}
	return &Counter{stripes: make([]stripe, n), mask: uint32(n - 1)}
}

// Stripes returns the stripe count (a power of two).
func (c *Counter) Stripes() int { return len(c.stripes) }

// Add adds d to the stripe selected by hint.
func (c *Counter) Add(hint int, d uint64) {
	c.stripes[uint32(hint)&c.mask].v.Add(d)
}

// Inc increments the stripe selected by hint.
func (c *Counter) Inc(hint int) { c.Add(hint, 1) }

// Value returns the sum of all stripes. With concurrent writers the sum
// is per-stripe-consistent, not a point-in-time snapshot — exactly the
// consistency Stats() already offers across shards.
func (c *Counter) Value() uint64 {
	var n uint64
	for i := range c.stripes {
		n += c.stripes[i].v.Load()
	}
	return n
}

// ValueAt returns one stripe's value: the per-worker readout (e.g. a
// worker's busy nanos) when each writer owns its hint exclusively.
func (c *Counter) ValueAt(hint int) uint64 {
	return c.stripes[uint32(hint)&c.mask].v.Load()
}

// Gauge is a settable level: an atomic int64. Gauges record low-rate
// state (pool depth, degraded shards), so they are deliberately not
// striped — Set would have no meaning across stripes.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a zero Gauge. (The zero value is also usable; the
// constructor exists for symmetry and to keep call sites uniform.)
func NewGauge() *Gauge { return &Gauge{} }

// Set stores the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the level by d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// epoch is the process-global monotonic base for Now. Using one base for
// every subsystem makes timestamps from exec traces, shard migration
// timing, and workload sampling directly comparable.
var epoch = time.Now()

// Now returns monotonic nanoseconds since the process epoch: the one
// timestamp source for every latency measurement and trace event in the
// repo. It costs one monotonic clock read (no wall-clock syscall on
// platforms with vDSO clocks).
func Now() int64 { return int64(time.Since(epoch)) }
