package obs

import (
	"io"
	"sync"
	"testing"
)

// TestRegistryHammer drives concurrent recording into every primitive
// while the main goroutine continuously renders the registry — the
// snapshot-during-recording race the export path must survive. Run with
// -race in CI; the final totals are asserted exact once writers stop.
func TestRegistryHammer(t *testing.T) {
	const (
		writers = 8
		perOp   = 5000
	)
	c := NewCounter(writers)
	g := NewGauge()
	h := NewHistogram(writers)
	r := NewRegistry()
	r.RegisterCounter("hammer_ops_total", "ops recorded by the hammer", c)
	r.RegisterGauge("hammer_level", "", g)
	r.RegisterHistogram(`hammer_nanos{path="hot"}`, "", h)
	r.RegisterFunc("hammer_fn", "", func() float64 { return float64(c.Value()) })

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perOp; i++ {
				c.Inc(w)
				g.Add(1)
				h.Record(w, int64(w*perOp+i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	close(start)
	// Render continuously until the writers finish: every render reads
	// the same atomics the writers are hitting.
	for {
		r.WriteText(io.Discard)
		_ = r.expvarMap()
		_ = h.Snapshot().String()
		select {
		case <-done:
			goto settled
		default:
		}
	}
settled:
	const total = writers * perOp
	if got := c.Value(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Fatalf("gauge = %d, want %d", got, total)
	}
	snap := h.Snapshot()
	if snap.Count != total {
		t.Fatalf("histogram count = %d, want %d", snap.Count, total)
	}
	var wantSum uint64
	for w := 0; w < writers; w++ {
		for i := 0; i < perOp; i++ {
			wantSum += uint64(w*perOp + i)
		}
	}
	if snap.Sum != wantSum {
		t.Fatalf("histogram sum = %d, want %d", snap.Sum, wantSum)
	}
}
