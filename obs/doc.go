// Package obs is the repo's low-overhead telemetry layer: the
// contention-free recording primitives the hot paths write into, and the
// pull-based Registry that exports them.
//
// The paper's engine layers (table kernel → shard engine → exec pool →
// operators) report point-in-time Stats() structs, which answer "what
// does the table look like now" but not "how long do operations take",
// "at what rate", or "what happened when". This package closes that gap
// the way an at-scale store has to — with instrumentation designed into
// the engine rather than bolted on — while keeping the recording cost
// small enough to leave on in production paths.
//
// # Recording primitives
//
// Every primitive is stripe-addressed: the caller passes a stripe hint
// (its exec worker index, its shard index, its replay-thread id), and
// the primitive routes the atomic update to a cache-line-padded slot
// owned by that stripe. Two workers recording concurrently never touch
// the same cache line, so recording is contention-free by construction —
// no locks, no CAS loops, no per-CPU magic requiring unsafe.
//
//   - Counter: a striped monotonic uint64 (Inc/Add), read as the sum of
//     its stripes. ValueAt exposes a single stripe, which is how exec
//     reports per-worker busy time from one Counter.
//   - Gauge: a single atomic int64 level (Set/Add). Gauges are low-rate
//     (queue depths, degraded-shard counts), so they are not striped.
//   - Histogram: a log-bucketed power-of-two value/latency histogram
//     with sub-bucket resolution: values bucket by their leading bit
//     (the power of two) plus subBits further bits, giving a bounded
//     relative error of 2^-subBits per recorded value across the whole
//     uint64 range in a fixed ~1.9k-bucket table. Snapshot() folds the
//     stripes into an immutable Snapshot whose Quantile/P50/P99/P999
//     estimates reuse the stats package's nearest-rank convention
//     (stats.CountsQuantile), so the estimates are directly testable
//     against the exact sort-based oracle (stats.Quantile).
//
// # Export
//
// A Registry names metrics and renders them on demand — it is an
// http.Handler emitting the Prometheus text exposition format (counters
// and gauges as samples, histograms as quantile summaries), and it can
// publish the same snapshot as one expvar variable. Export is strictly
// pull-based: the registry owns no goroutines (the repo's nogoroutine
// invariant — concurrency stays in exec and shard), takes no locks on
// the recording paths, and reading a metric never blocks a writer.
//
// # Users
//
// exec.PoolMetrics and exec.Trace instrument the morsel pool (task and
// queue-wait latency, steals, per-worker busy time, and a per-worker
// event ring dumpable as Chrome trace JSON); shard.Metrics instruments
// the engine's per-operation latency and migration cost; the workload
// drivers surface latency Snapshots in their results. All hooks are
// nil-guarded: an engine or pool without metrics attached pays a single
// pointer check.
package obs
