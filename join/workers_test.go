package join

// The Workers knob: the partitioned join's fan-out is bounded by the exec
// pool, and the worker count must never change the result — workers=1 is
// the serial oracle of the parallel schedule.

import (
	"sync/atomic"
	"testing"

	"repro/table"
)

func TestPartitionedHashJoinWorkersKnob(t *testing.T) {
	build, probe := makeRelations(4000, 12000, 30, 77)
	want := NestedLoopJoin(build, probe, nil)
	for _, workers := range []int{1, 2, 4} {
		var emitted atomic.Int64
		got, err := PartitionedHashJoin(build, probe, 16,
			Config{Scheme: table.SchemeRH, Workers: workers, Seed: 3},
			func(_, _, _ uint64) { emitted.Add(1) })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want || int(emitted.Load()) != want {
			t.Fatalf("workers=%d: matches=%d emitted=%d, oracle %d", workers, got, emitted.Load(), want)
		}
	}
}
