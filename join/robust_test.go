package join_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/join"
	"repro/table"
)

func rel(n int) join.Relation {
	r := make(join.Relation, n)
	for i := range r {
		r[i] = join.Row{Key: uint64(i) + 1, Payload: uint64(i)}
	}
	return r
}

// TestSharedHashJoinErrFullPropagation: a table refusal during the
// build phase (here injected at rate 1.0, the stand-in for a genuinely
// full growth-disabled build side) must surface from SharedHashJoin as
// the typed *table.FullError chain — through the batched build pipeline,
// the morsel pool's first-error convention, and any suppression wrapper.
func TestSharedHashJoinErrFullPropagation(t *testing.T) {
	var rates [fault.NumKinds]float64
	rates[fault.Full] = 1.0
	fault.Arm(fault.Config{Seed: 3, Rates: rates})
	defer fault.Disarm()

	_, err := join.SharedHashJoin(rel(10_000), rel(100), 4, join.Config{Scheme: table.SchemeLP, Seed: 3}, nil)
	if err == nil {
		t.Fatal("build under rate-1.0 refusals returned nil error")
	}
	var fe *table.FullError
	if !errors.As(err, &fe) {
		t.Fatalf("error = %v, want *table.FullError in the chain", err)
	}
	if !errors.Is(err, table.ErrFull) {
		t.Fatalf("error %v does not wrap table.ErrFull", err)
	}
}

// TestSharedHashJoinCtxCancel: a pre-cancelled Config.Ctx stops the
// parallel join before any morsel runs.
func TestSharedHashJoinCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := join.SharedHashJoin(rel(10_000), rel(10_000), 4, join.Config{Scheme: table.SchemeLP, Ctx: ctx}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// TestPartitionedHashJoinCtxCancel: same contract for the
// radix-partitioned parallel join.
func TestPartitionedHashJoinCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := join.PartitionedHashJoin(rel(10_000), rel(10_000), 8, join.Config{Scheme: table.SchemeLP, Workers: 4, Ctx: ctx}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}
