// Package join implements in-memory equi-joins on top of the hash tables —
// the query-processing use case that motivates the paper (§1: "hashing has
// plenty of applications in modern database systems, including join
// processing"). Three operators are provided:
//
//   - HashJoin: the classic two-phase build/probe join over one
//     single-threaded table. The build phase is a WORM write phase, the
//     probe phase a read phase with whatever unsuccessful-probe ratio the
//     outer relation induces — exactly the workload the paper measures, so
//     its scheme recommendations apply verbatim.
//   - PartitionedHashJoin: the partition-based parallel variant the paper
//     cites (Balkesen et al., Barber et al., Lang et al.): radix-partition
//     both inputs, then run one independent single-threaded join per
//     partition.
//   - NestedLoopJoin: the O(n*m) reference implementation used by the test
//     suite as a correctness oracle.
//
// Joins here are primary-key / foreign-key joins: build-side keys are
// unique. Should duplicates occur anyway, the first payload per key wins —
// the natural semantics of the single-probe GetOrPutBatch build, which
// finds a key or claims its slot in one probe sequence per row. Each
// match invokes a caller-supplied emit function, so callers can
// materialize, count, or aggregate without intermediate allocation.
package join

import (
	"context"
	"fmt"

	"repro/decision"
	"repro/exec"
	"repro/hashfn"
	"repro/partition"
	"repro/table"
)

// Row is one tuple of a relation: a join key and a payload.
type Row struct {
	Key     uint64
	Payload uint64
}

// Relation is a slice of rows.
type Relation []Row

// Keys returns the keys of the relation (for partitioning and probing).
func (r Relation) Keys() []uint64 {
	out := make([]uint64, len(r))
	for i := range r {
		out[i] = r[i].Key
	}
	return out
}

// Emit receives one join match: the key and both payloads.
type Emit func(key, buildPayload, probePayload uint64)

// Config parameterizes a hash join.
type Config struct {
	// Scheme selects the build-side table; empty lets the paper's Figure 8
	// decision graph pick based on the join's shape.
	Scheme table.Scheme
	// Family is the hash-function class (default Mult, per the paper).
	Family hashfn.Family
	// LoadFactor is the build-side occupancy target (default 0.5: joins
	// are usually memory-rich and probe-bound).
	LoadFactor float64
	// Workers bounds the goroutines the parallel operators fan out
	// (default: exec's one-per-CPU default). PartitionedHashJoin runs one
	// task per partition on a Workers-sized pool — partitions are units of
	// work, not goroutines — and SharedHashJoin's explicit worker argument
	// takes precedence over this field.
	Workers int
	Seed    uint64
	// Ctx, when non-nil, cancels the parallel operators
	// (PartitionedHashJoin, SharedHashJoin) between tasks/morsels: the
	// claim cursor stops like on a first error and ctx.Err() is returned.
	// The serial HashJoin ignores it.
	Ctx context.Context
}

func (c Config) withDefaults(buildRows, probeRows int) Config {
	if c.Family == nil {
		c.Family = hashfn.MultFamily{}
	}
	if c.LoadFactor <= 0 || c.LoadFactor >= 1 {
		c.LoadFactor = 0.5
	}
	if c.Scheme == "" {
		// Ask the decision graph: a join build is a static (WORM) table;
		// reads dominate when the probe side is larger.
		choice := decision.MustRecommend(decision.Workload{
			LoadFactor:      c.LoadFactor,
			UnsuccessfulPct: 25, // unknowable upfront; assume a moderate miss rate
			WriteHeavy:      buildRows > probeRows,
			Dynamic:         false,
			Dense:           false,
		})
		c.Scheme = choice.Scheme
		if c.Scheme == table.SchemeChained24 {
			// Chained needs the §4.5 budget machinery; prefer RH for the
			// automatic path.
			c.Scheme = table.SchemeRH
		}
	}
	return c
}

// CapacityFor returns the power-of-two capacity that places n keys at or
// below the target load factor lf — the build-side pre-sizing rule every
// hash-join build in the repo uses (join's one-shot operators and pipe's
// streaming build consume it alike, so their tables are sized
// identically). lf outside (0, 1) is treated as the join default 0.5.
func CapacityFor(n int, lf float64) int {
	if lf <= 0 || lf >= 1 {
		lf = 0.5
	}
	c := 8
	for float64(n) > lf*float64(c) {
		c *= 2
	}
	return c
}

// joinScratch is the reusable column buffer of one join's batched build and
// probe phases: row keys/payloads are gathered into columns one batch at a
// time, handed to the table's batched pipeline, and the hit lanes emitted.
type joinScratch struct {
	keys [table.BatchWidth]uint64
	vals [table.BatchWidth]uint64
	ok   [table.BatchWidth]bool
}

// buildBatched inserts all rows through the handle's single-probe
// GetOrPutBatch pipeline in row order: each build row costs exactly one
// probe sequence (find the key or claim its slot), instead of the probe
// plus full re-probe a Get-then-Put build would pay. Duplicate build keys
// keep the first payload.
func (sc *joinScratch) buildBatched(h *table.Handle, build Relation) error {
	for base := 0; base < len(build); base += table.BatchWidth {
		n := min(table.BatchWidth, len(build)-base)
		for i := 0; i < n; i++ {
			sc.keys[i] = build[base+i].Key
			sc.vals[i] = build[base+i].Payload
		}
		if _, err := h.GetOrPutBatch(sc.keys[:n], sc.vals[:n], sc.vals[:n], sc.ok[:n]); err != nil {
			return err
		}
	}
	return nil
}

// probeBatched probes all rows through the batched pipeline and emits every
// match, returning the match count.
func (sc *joinScratch) probeBatched(h *table.Handle, probe Relation, emit Emit) int {
	matches := 0
	for base := 0; base < len(probe); base += table.BatchWidth {
		n := min(table.BatchWidth, len(probe)-base)
		for i := 0; i < n; i++ {
			sc.keys[i] = probe[base+i].Key
		}
		matches += h.GetBatch(sc.keys[:n], sc.vals[:n], sc.ok[:n])
		if emit == nil {
			continue
		}
		for i := 0; i < n; i++ {
			if sc.ok[i] {
				emit(sc.keys[i], sc.vals[i], probe[base+i].Payload)
			}
		}
	}
	return matches
}

// HashJoin joins build ⋈ probe on Key, calling emit for every match. It
// returns the number of matches. Duplicate keys on the build side keep the
// first payload (build keys are expected unique — PK/FK joins); the probe
// side may repeat keys freely.
//
// Both phases run through the tables' batched pipelines: rows are gathered
// into one reusable column scratch per phase, so the per-key hash dispatch
// is amortized; the build issues exactly one probe sequence per row via
// GetOrPutBatch, and the probe phase's sequences overlap in the memory
// system.
func HashJoin(build, probe Relation, cfg Config, emit Emit) (int, error) {
	cfg = cfg.withDefaults(len(build), len(probe))
	h, err := table.Open(
		table.WithScheme(cfg.Scheme),
		table.WithCapacity(CapacityFor(len(build), cfg.LoadFactor)),
		table.WithMaxLoadFactor(0), // pre-sized for the build side: WORM contract
		table.WithHashFamily(cfg.Family),
		table.WithSeed(cfg.Seed),
	)
	if err != nil {
		return 0, err
	}
	var sc joinScratch
	if err := sc.buildBatched(h, build); err != nil {
		return 0, err
	}
	return sc.probeBatched(h, probe, emit), nil
}

// PartitionedHashJoin is the partition-parallel build/probe join: both
// relations are radix-partitioned by a shared routing hash, then each
// partition joins independently as one task on the exec pool, with the
// fan-out bounded by cfg.Workers (default one per CPU) rather than one
// goroutine per partition. emit may be called concurrently from different
// partitions and must be safe for that (or nil). It returns the total
// number of matches.
func PartitionedHashJoin(build, probe Relation, partitions int, cfg Config, emit Emit) (int, error) {
	cfg = cfg.withDefaults(len(build), len(probe))
	pm, err := partition.New(partition.Config{
		Partitions: partitions,
		Scheme:     cfg.Scheme,
		Table: table.Config{
			InitialCapacity: CapacityFor(len(build), cfg.LoadFactor),
			MaxLoadFactor:   0,
			Family:          cfg.Family,
			Seed:            cfg.Seed,
		},
	})
	if err != nil {
		return 0, err
	}
	p := pm.Partitions()
	// Partition both inputs with the shared router.
	buildParts := make([]Relation, p)
	probeParts := make([]Relation, p)
	for _, r := range build {
		j := pm.Partition(r.Key)
		buildParts[j] = append(buildParts[j], r)
	}
	for _, r := range probe {
		j := pm.Partition(r.Key)
		probeParts[j] = append(probeParts[j], r)
	}
	// One exec task per partition: build then probe, no shared state; idle
	// workers steal the next unjoined partition, so skewed partitions
	// balance automatically.
	matches := make([]int, p)
	err = exec.RunTasks(exec.Config{Workers: cfg.Workers, Ctx: cfg.Ctx}, p, func(_, j int) error {
		sub := cfg
		sub.Seed = cfg.Seed + uint64(j)*0x9e3779b97f4a7c15
		n, err := HashJoin(buildParts[j], probeParts[j], sub, emit)
		if err != nil {
			return fmt.Errorf("join: partition %d: %w", j, err)
		}
		matches[j] = n
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, n := range matches {
		total += n
	}
	return total, nil
}

// SharedHashJoin is the shared-memory concurrent build/probe join: both
// phases run with the given number of pool workers against ONE table
// served by the sharded engine (a Handle opened WithPartitions, shards =
// power of two >= 2x workers). Unlike PartitionedHashJoin there is no
// up-front radix partitioning pass — the input is carved into exec
// morsels, idle workers claim the next one, and the engine's stable batch
// scatter routes rows to shards under per-shard locks — so it suits
// inputs that arrive pre-chunked (scan morsels) or skewed key spaces
// where radix partitions would be unbalanced. Build keys must be unique (PK/FK joins); when duplicates
// occur anyway, which payload wins is unspecified (workers race on the
// key's shard). emit may be called concurrently and must be safe for
// that (or nil). It returns the total number of matches.
//
// Probe note: on a sharded handle the engine answers GetBatch with
// migration-aware scalar probes under per-shard READ locks (any number
// of probing workers proceed in parallel); the single-table batched
// probe pipeline, which overlaps misses within one probe stream, runs
// only in HashJoin's and PartitionedHashJoin's exclusively-owned tables.
func SharedHashJoin(build, probe Relation, workers int, cfg Config, emit Emit) (int, error) {
	cfg = cfg.withDefaults(len(build), len(probe))
	if workers < 1 {
		workers = 1
	}
	shards := decision.ShardsFor(workers)
	if shards < 1 {
		shards = 1
	}
	h, err := table.Open(
		table.WithScheme(cfg.Scheme),
		table.WithCapacity(CapacityFor(len(build), cfg.LoadFactor)),
		// Pre-sized for the build side like HashJoin, but growth stays
		// enabled as a safety valve: the engine resizes incrementally, so
		// an unlucky shard never fails the build.
		table.WithMaxLoadFactor(table.DefaultMaxLoadFactor),
		table.WithHashFamily(cfg.Family),
		table.WithSeed(cfg.Seed),
		table.WithPartitions(shards),
	)
	if err != nil {
		return 0, err
	}
	// Both phases run on one pool: the input is carved into morsels, idle
	// workers claim the next one, and each worker streams its morsels
	// through its own column scratch into the engine's batched pipelines.
	pool := exec.NewPool(exec.Config{Workers: workers, Ctx: cfg.Ctx})
	defer pool.Close()
	scratch := make([]joinScratch, pool.Workers())
	if err := pool.ForMorsels(len(build), func(w, lo, hi int) error {
		return scratch[w].buildBatched(h, build[lo:hi])
	}); err != nil {
		return 0, err
	}
	// Probe phase: concurrent batched lookups, matches summed at the end.
	matches := make([]int, pool.Workers())
	if err := pool.ForMorsels(len(probe), func(w, lo, hi int) error {
		matches[w] += scratch[w].probeBatched(h, probe[lo:hi], emit)
		return nil
	}); err != nil {
		return 0, err
	}
	total := 0
	for _, m := range matches {
		total += m
	}
	return total, nil
}

// NestedLoopJoin is the quadratic reference join used as a test oracle.
func NestedLoopJoin(build, probe Relation, emit Emit) int {
	// Match HashJoin's GetOrPut build semantics: first payload per key wins.
	first := make(map[uint64]uint64, len(build))
	for _, b := range build {
		if _, ok := first[b.Key]; !ok {
			first[b.Key] = b.Payload
		}
	}
	matches := 0
	for _, p := range probe {
		if v, ok := first[p.Key]; ok {
			matches++
			if emit != nil {
				emit(p.Key, v, p.Payload)
			}
		}
	}
	return matches
}
