package join

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/prng"
	"repro/table"
)

// makeRelations builds a PK build side and a probe side with the given hit
// ratio.
func makeRelations(buildN, probeN int, missPct int, seed uint64) (Relation, Relation) {
	rng := prng.NewXoshiro256(seed)
	build := make(Relation, buildN)
	for i := range build {
		build[i] = Row{Key: uint64(i) + 1, Payload: rng.Next()}
	}
	probe := make(Relation, probeN)
	for i := range probe {
		if int(rng.Uint64n(100)) < missPct {
			probe[i] = Row{Key: uint64(buildN) + 1 + rng.Uint64n(1<<40), Payload: uint64(i)}
		} else {
			probe[i] = Row{Key: rng.Uint64n(uint64(buildN)) + 1, Payload: uint64(i)}
		}
	}
	return build, probe
}

type match struct{ key, b, p uint64 }

// sortedMatches canonicalizes emit output for comparison.
func sortedMatches(ms []match) []match {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.key != b.key {
			return a.key < b.key
		}
		if a.b != b.b {
			return a.b < b.b
		}
		return a.p < b.p
	})
	return ms
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	for _, scheme := range []table.Scheme{
		table.SchemeLP, table.SchemeQP, table.SchemeRH,
		table.SchemeCuckooH4, table.SchemeChained8, table.SchemeChained24,
	} {
		build, probe := makeRelations(5000, 20000, 30, 42)
		var got []match
		n, err := HashJoin(build, probe, Config{Scheme: scheme}, func(k, b, p uint64) {
			got = append(got, match{k, b, p})
		})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		var want []match
		wantN := NestedLoopJoin(build, probe, func(k, b, p uint64) {
			want = append(want, match{k, b, p})
		})
		if n != wantN || len(got) != len(want) {
			t.Fatalf("%s: %d matches, oracle %d", scheme, n, wantN)
		}
		got, want = sortedMatches(got), sortedMatches(want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: match %d = %+v, want %+v", scheme, i, got[i], want[i])
			}
		}
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	build := Relation{{1, 10}, {1, 20}, {2, 30}}
	probe := Relation{{1, 0}, {2, 0}, {3, 0}}
	var got []match
	n, err := HashJoin(build, probe, Config{Scheme: table.SchemeLP}, func(k, b, p uint64) {
		got = append(got, match{k, b, p})
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("matches = %d, want 2", n)
	}
	// GetOrPut build semantics: key 1 joins the FIRST build payload.
	for _, m := range got {
		if m.key == 1 && m.b != 10 {
			t.Fatalf("duplicate key payload = %d, want 10", m.b)
		}
	}
}

func TestHashJoinDefaultSchemeFromDecisionGraph(t *testing.T) {
	build, probe := makeRelations(1000, 4000, 10, 7)
	n, err := HashJoin(build, probe, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if oracle := NestedLoopJoin(build, probe, nil); n != oracle {
		t.Fatalf("matches = %d, oracle %d", n, oracle)
	}
}

func TestPartitionedHashJoinMatchesSerial(t *testing.T) {
	build, probe := makeRelations(8000, 30000, 25, 9)
	wantN := NestedLoopJoin(build, probe, nil)
	for _, p := range []int{1, 2, 8} {
		var mu sync.Mutex
		var got []match
		n, err := PartitionedHashJoin(build, probe, p, Config{Scheme: table.SchemeRH}, func(k, b, pp uint64) {
			mu.Lock()
			got = append(got, match{k, b, pp})
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if n != wantN || len(got) != wantN {
			t.Fatalf("p=%d: %d matches, want %d", p, n, wantN)
		}
	}
}

func TestEmptyRelations(t *testing.T) {
	if n, err := HashJoin(nil, Relation{{1, 1}}, Config{}, nil); err != nil || n != 0 {
		t.Fatalf("empty build: %d, %v", n, err)
	}
	if n, err := HashJoin(Relation{{1, 1}}, nil, Config{}, nil); err != nil || n != 0 {
		t.Fatalf("empty probe: %d, %v", n, err)
	}
	if n, err := PartitionedHashJoin(nil, nil, 4, Config{}, nil); err != nil || n != 0 {
		t.Fatalf("empty both: %d, %v", n, err)
	}
}

// TestQuickJoinEquivalence property-tests HashJoin against the nested-loop
// oracle on arbitrary relations.
func TestQuickJoinEquivalence(t *testing.T) {
	prop := func(buildKeys, probeKeys []uint8, seed uint64) bool {
		build := make(Relation, len(buildKeys))
		for i, k := range buildKeys {
			build[i] = Row{Key: uint64(k), Payload: uint64(i)}
		}
		probe := make(Relation, len(probeKeys))
		for i, k := range probeKeys {
			probe[i] = Row{Key: uint64(k), Payload: uint64(i)}
		}
		n, err := HashJoin(build, probe, Config{Scheme: table.SchemeQP, Seed: seed}, nil)
		if err != nil {
			return false
		}
		return n == NestedLoopJoin(build, probe, nil)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRelationKeys(t *testing.T) {
	r := Relation{{5, 0}, {7, 0}}
	ks := r.Keys()
	if len(ks) != 2 || ks[0] != 5 || ks[1] != 7 {
		t.Fatalf("Keys = %v", ks)
	}
}

// TestSharedHashJoinMatchesSerial: the shared-engine concurrent join must
// produce exactly the sequential join's matches (build keys unique, so
// worker interleaving cannot change the result set).
func TestSharedHashJoinMatchesSerial(t *testing.T) {
	build, probe := makeRelations(5000, 40000, 25, 99)
	var mu sync.Mutex
	got := map[uint64]uint64{}
	matches, err := SharedHashJoin(build, probe, 8, Config{Seed: 31}, func(k, bp, pp uint64) {
		mu.Lock()
		got[k] = bp
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{}
	serial := NestedLoopJoin(build, probe, func(k, bp, pp uint64) { want[k] = bp })
	if matches != serial {
		t.Fatalf("matches = %d, serial %d", matches, serial)
	}
	if len(got) != len(want) {
		t.Fatalf("distinct matched keys = %d, serial %d", len(got), len(want))
	}
	for k, bp := range want {
		if got[k] != bp {
			t.Fatalf("key %d: payload %d, serial %d", k, got[k], bp)
		}
	}
}
