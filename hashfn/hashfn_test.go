package hashfn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestFamiliesRegistry(t *testing.T) {
	fams := Families()
	want := []string{"Mult", "MultAdd", "Tab", "Murmur"}
	if len(fams) != len(want) {
		t.Fatalf("Families() returned %d families, want %d", len(fams), len(want))
	}
	for i, f := range fams {
		if f.Name() != want[i] {
			t.Errorf("family %d = %s, want %s", i, f.Name(), want[i])
		}
		fn := f.New(uint64(i) + 1)
		if fn.Name() != want[i] {
			t.Errorf("function name %s != family name %s", fn.Name(), want[i])
		}
		got, err := FamilyByName(want[i])
		if err != nil || got.Name() != want[i] {
			t.Errorf("FamilyByName(%s) = %v, %v", want[i], got, err)
		}
	}
	if _, err := FamilyByName("CRC"); err == nil {
		t.Error("FamilyByName(CRC) succeeded, want error")
	}
}

// TestDeterminism: the same seed must always yield the same function.
func TestDeterminism(t *testing.T) {
	for _, f := range Families() {
		a, b := f.New(12345), f.New(12345)
		c := f.New(54321)
		differs := false
		for x := uint64(0); x < 1000; x++ {
			if a.Hash(x) != b.Hash(x) {
				t.Fatalf("%s: same seed, different hashes at x=%d", f.Name(), x)
			}
			if a.Hash(x) != c.Hash(x) {
				differs = true
			}
		}
		if !differs {
			t.Errorf("%s: different seeds produced identical functions", f.Name())
		}
	}
}

// TestMultKnownValues pins the multiply-shift definition: h_z(x) = x*z mod
// 2^64, top d bits.
func TestMultKnownValues(t *testing.T) {
	m := NewMult(0x9E3779B97F4A7C15)
	if m.Z()%2 != 1 {
		t.Fatal("multiplier must be odd")
	}
	x := uint64(0x0123456789ABCDEF)
	want := x * 0x9E3779B97F4A7C15
	if got := m.Hash(x); got != want {
		t.Fatalf("Mult.Hash = %#x, want %#x", got, want)
	}
	// Even multipliers are made odd.
	if NewMult(42).Z() != 43 {
		t.Fatalf("NewMult(42).Z() = %d, want 43", NewMult(42).Z())
	}
}

// TestMurmurKnownValues pins the Murmur3 finalizer against independently
// computed values of the reference code (seed 0).
func TestMurmurKnownValues(t *testing.T) {
	m := NewMurmur(0)
	cases := map[uint64]uint64{
		0: 0,
		1: 0xb456bcfc34c2cb2c,
		2: 0x3abf2a20650683e7,
	}
	for in, want := range cases {
		if got := m.Hash(in); got != want {
			t.Errorf("Murmur(%d) = %#x, want %#x", in, got, want)
		}
	}
}

// TestMultAddMatches128BitReference cross-checks the math/bits
// implementation against a 4-limb schoolbook reference.
func TestMultAddMatches128BitReference(t *testing.T) {
	f := MultAddFamily{}.New(7).(MultAdd)
	ref := func(x uint64) uint64 {
		// (aHi:aLo)*x + (bHi:bLo) mod 2^128, high word, via 32-bit limbs.
		mul := func(a, b uint64) (hi, lo uint64) {
			a0, a1 := a&0xffffffff, a>>32
			b0, b1 := b&0xffffffff, b>>32
			w0 := a0 * b0
			t1 := a1*b0 + w0>>32
			w1 := t1 & 0xffffffff
			w2 := t1 >> 32
			w1 += a0 * b1
			hi = a1*b1 + w2 + w1>>32
			lo = a * b
			return
		}
		hi, lo := mul(f.aLo, x)
		hi += f.aHi * x
		lo2 := lo + f.bLo
		carry := uint64(0)
		if lo2 < lo {
			carry = 1
		}
		return hi + f.bHi + carry
	}
	rng := prng.NewXoshiro256(1)
	for i := 0; i < 10000; i++ {
		x := rng.Next()
		if got, want := f.Hash(x), ref(x); got != want {
			t.Fatalf("MultAdd.Hash(%#x) = %#x, want %#x", x, got, want)
		}
	}
}

// TestTabXORStructure verifies tabulation's defining property
// h(x) = XOR of per-byte table entries.
func TestTabXORStructure(t *testing.T) {
	tab := NewTab(99)
	x := uint64(0x1122334455667788)
	var want uint64
	for i := 0; i < 8; i++ {
		want ^= tab.t[i][byte(x>>(8*i))]
	}
	if got := tab.Hash(x); got != want {
		t.Fatalf("Tab.Hash = %#x, want %#x", got, want)
	}
	// Changing one byte changes exactly one table contribution.
	y := x ^ (uint64(0xFF) << 16)
	diff := tab.Hash(x) ^ tab.Hash(y)
	if diff != tab.t[2][byte(x>>16)]^tab.t[2][byte(y>>16)] {
		t.Fatal("single-byte change did not decompose per-table")
	}
}

// TestMultCollisionBound samples the universal-family guarantee: for
// random odd z and a table of size 2^d, Pr[collision of fixed x != y] <=
// 2/2^d. We fix a pair and draw many functions.
func TestMultCollisionBound(t *testing.T) {
	const d = 8 // 256 slots
	const trials = 20000
	x, y := uint64(0xDEADBEEF), uint64(0xFEEDFACE)
	coll := 0
	for s := uint64(0); s < trials; s++ {
		f := MultFamily{}.New(s)
		if TopBits(f.Hash(x), d) == TopBits(f.Hash(y), d) {
			coll++
		}
	}
	bound := 2.0 / 256 // universal bound for Mult
	got := float64(coll) / trials
	if got > bound*1.5 { // generous slack for sampling noise
		t.Fatalf("Mult collision rate %.5f exceeds 1.5x bound %.5f", got, bound)
	}
}

// TestUniformity checks a chi-squared-style bucket balance for every
// family over sequential keys — the adversarial input for weak functions.
func TestUniformity(t *testing.T) {
	const d = 6 // 64 buckets
	const n = 1 << 16
	for _, f := range Families() {
		if f.Name() == "Mult" {
			// Mult on sequential keys is an arithmetic progression, not
			// uniform — by design (the paper exploits this for dense
			// keys). Skip the balance test for it.
			continue
		}
		fn := f.New(2024)
		counts := make([]int, 1<<d)
		for x := uint64(0); x < n; x++ {
			counts[TopBits(fn.Hash(x), d)]++
		}
		mean := float64(n) / float64(len(counts))
		var chi2 float64
		for _, c := range counts {
			dev := float64(c) - mean
			chi2 += dev * dev / mean
		}
		// 63 degrees of freedom; 99.99th percentile is ~117. Allow wide
		// slack: a catastrophically unbalanced function scores thousands.
		if chi2 > 150 {
			t.Errorf("%s: chi^2 = %.1f over 64 buckets on sequential keys (want < 150)", f.Name(), chi2)
		}
	}
}

// TestMultDenseProgression verifies the §5.2 property Mult exploits: on a
// dense key range the top-bit hash codes form an approximate arithmetic
// progression, giving near-zero collisions at low load factors.
func TestMultDenseProgression(t *testing.T) {
	const d = 16
	f := MultFamily{}.New(42)
	seen := make(map[uint64]int)
	n := 1 << 14 // quarter of the 2^16 slots
	for x := uint64(1); x <= uint64(n); x++ {
		seen[TopBits(f.Hash(x), d)]++
	}
	coll := n - len(seen)
	if frac := float64(coll) / float64(n); frac > 0.05 {
		t.Fatalf("Mult on dense keys collided %.2f%% of the time, want ~0", frac*100)
	}
}

// TestTopBits pins the index-derivation helper.
func TestTopBits(t *testing.T) {
	if got := TopBits(0xFFFF000000000000, 16); got != 0xFFFF {
		t.Fatalf("TopBits(.., 16) = %#x, want 0xFFFF", got)
	}
	if got := TopBits(1, 64); got != 1 {
		t.Fatalf("TopBits(1, 64) = %d, want 1", got)
	}
}

// TestHashQuickDeterminism is a property test: Hash is a pure function.
func TestHashQuickDeterminism(t *testing.T) {
	for _, f := range Families() {
		fn := f.New(7)
		prop := func(x uint64) bool { return fn.Hash(x) == fn.Hash(x) }
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("%s: %v", f.Name(), err)
		}
	}
}

// TestAvalanche measures bit diffusion for the engineered and strong
// functions: flipping one input bit should flip ~half the output bits.
func TestAvalanche(t *testing.T) {
	for _, name := range []string{"Tab", "Murmur"} {
		f, _ := FamilyByName(name)
		fn := f.New(3)
		rng := prng.NewXoshiro256(4)
		var totalFlips, samples float64
		for i := 0; i < 2000; i++ {
			x := rng.Next()
			bit := uint(rng.Uint64n(64))
			d := fn.Hash(x) ^ fn.Hash(x^(1<<bit))
			totalFlips += float64(popcount(d))
			samples++
		}
		avg := totalFlips / samples
		if math.Abs(avg-32) > 3 {
			t.Errorf("%s: avalanche average %.2f bits flipped, want ~32", name, avg)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
