// Package hashfn implements the four hash-function classes studied in
// "A Seven-Dimensional Analysis of Hashing Methods and its Implications on
// Query Processing" (Richter, Alvarez, Dittrich; PVLDB 9(3), 2015), §3:
//
//   - Mult: multiply-shift (Dietzfelbinger et al.), a universal family and
//     the cheapest to evaluate (one multiplication, one shift).
//   - MultAdd: multiply-add-shift (Dietzfelbinger), 2-independent; for
//     64-bit keys it needs 128-bit arithmetic, provided here by math/bits.
//   - Tab: simple tabulation hashing (Pătraşcu, Thorup), 3-independent;
//     eight 256-entry tables of random 64-bit codes XOR-ed together.
//   - Murmur: the Murmur3 64-bit finalizer, the paper's representative of
//     engineered hash functions without formal guarantees.
//
// Every function maps a 64-bit key to a full 64-bit hash code. Hash tables
// in package table derive a d-bit slot index by taking the TOP d bits
// (h >> (64-d)). For Mult and MultAdd that is exactly the paper's
// "div 2^(w-d)" — the high-order bits are where the guarantees live — and
// for Tab and Murmur any bit selection is equally good.
//
// Functions are created through a Family, which draws fresh random
// parameters from a seed. Cuckoo hashing uses this to re-draw functions on
// a rehash, exactly as the paper describes.
package hashfn

import (
	"fmt"
	"math/bits"

	"repro/internal/prng"
)

// Function is a hash function from 64-bit keys to 64-bit hash codes.
//
// Implementations are immutable after construction and safe for concurrent
// use by multiple goroutines.
type Function interface {
	// Hash returns the 64-bit hash code of x.
	Hash(x uint64) uint64
	// Name returns the short name used in the paper's plots, e.g. "Mult".
	Name() string
}

// Family constructs members of a hash-function class from random seeds.
type Family interface {
	// New draws a fresh function with parameters derived from seed.
	// Distinct seeds yield (with overwhelming probability) distinct
	// functions.
	New(seed uint64) Function
	// Name returns the family name, e.g. "Mult".
	Name() string
}

// ---------------------------------------------------------------------------
// Multiply-shift
// ---------------------------------------------------------------------------

// Mult is the multiply-shift function h_z(x) = (x*z mod 2^64) div 2^(64-d),
// realized here as the full product x*z mod 2^64; consumers take the top d
// bits. z must be odd. The family {h_z : z odd} is universal: for x != y the
// collision probability on a table of size 2^d is at most 2/2^d.
type Mult struct {
	z uint64
}

// NewMult returns the multiply-shift function with multiplier z.
// If z is even it is made odd (the family is defined over odd multipliers).
func NewMult(z uint64) Mult { return Mult{z: z | 1} }

// Hash returns x*z mod 2^64. The top bits are the high-quality bits.
func (m Mult) Hash(x uint64) uint64 { return x * m.z }

// Name implements Function.
func (Mult) Name() string { return "Mult" }

// Z returns the multiplier, for inspection and tests.
func (m Mult) Z() uint64 { return m.z }

// MultFamily draws Mult functions with random odd multipliers.
type MultFamily struct{}

// New implements Family.
func (MultFamily) New(seed uint64) Function {
	return NewMult(prng.Mix(seed) | 1)
}

// Name implements Family.
func (MultFamily) Name() string { return "Mult" }

// ---------------------------------------------------------------------------
// Multiply-add-shift
// ---------------------------------------------------------------------------

// MultAdd is the multiply-add-shift function
//
//	h_{a,b}(x) = ((a*x + b) mod 2^128) div 2^(128-d)
//
// for 64-bit keys, evaluated with 128-bit arithmetic via math/bits (the
// "natively unsupported" arithmetic the paper had to emulate with six
// additions; Go exposes the CPU's 64x64->128 multiply directly). Taking
// the high 64 bits of the 128-bit result and then the top d bits of those
// is exactly the paper's div. The family is 2-independent: collision
// probability 1/2^d.
type MultAdd struct {
	aHi, aLo uint64 // a is a 128-bit odd integer (aHi:aLo)
	bHi, bLo uint64 // b is a 128-bit integer (bHi:bLo)
}

// NewMultAdd returns the multiply-add-shift function with the given 128-bit
// parameters a = aHi:aLo and b = bHi:bLo. aLo is forced odd.
func NewMultAdd(aHi, aLo, bHi, bLo uint64) MultAdd {
	return MultAdd{aHi: aHi, aLo: aLo | 1, bHi: bHi, bLo: bLo}
}

// Hash returns the high 64 bits of (a*x + b) mod 2^128.
func (m MultAdd) Hash(x uint64) uint64 {
	// 128-bit product of the 128-bit a with the 64-bit x, kept mod 2^128:
	// (aHi:aLo) * x = (aLo*x) + (aHi*x << 64).
	hi, lo := bits.Mul64(m.aLo, x)
	hi += m.aHi * x // low 64 bits of aHi*x land in the high word
	// Add b with carry propagation.
	lo, carry := bits.Add64(lo, m.bLo, 0)
	hi, _ = bits.Add64(hi, m.bHi, carry)
	_ = lo
	return hi
}

// Name implements Function.
func (MultAdd) Name() string { return "MultAdd" }

// MultAddFamily draws MultAdd functions with random 128-bit parameters.
type MultAddFamily struct{}

// New implements Family.
func (MultAddFamily) New(seed uint64) Function {
	sm := prng.NewSplitMix64(seed)
	return NewMultAdd(sm.Next(), sm.Next(), sm.Next(), sm.Next())
}

// Name implements Family.
func (MultAddFamily) Name() string { return "MultAdd" }

// ---------------------------------------------------------------------------
// Tabulation hashing
// ---------------------------------------------------------------------------

// Tab is simple tabulation hashing over the eight bytes of the key:
//
//	h(x) = T1[c1] XOR T2[c2] XOR ... XOR T8[c8]
//
// where x = c1..c8 and each Ti holds 256 random 64-bit codes. The eight
// tables occupy 16 KiB, fitting comfortably in L1 (§3.3). Filled with
// random data the scheme is 3-independent, and by Pătraşcu–Thorup it gives
// linear probing constant expected time per operation.
type Tab struct {
	t [8][256]uint64
}

// NewTab returns a tabulation function whose tables are filled from seed.
func NewTab(seed uint64) *Tab {
	sm := prng.NewSplitMix64(seed)
	t := &Tab{}
	for i := range t.t {
		for j := range t.t[i] {
			t.t[i][j] = sm.Next()
		}
	}
	return t
}

// Hash XORs the eight table entries selected by the key's bytes.
func (t *Tab) Hash(x uint64) uint64 {
	return t.t[0][byte(x)] ^
		t.t[1][byte(x>>8)] ^
		t.t[2][byte(x>>16)] ^
		t.t[3][byte(x>>24)] ^
		t.t[4][byte(x>>32)] ^
		t.t[5][byte(x>>40)] ^
		t.t[6][byte(x>>48)] ^
		t.t[7][byte(x>>56)]
}

// Name implements Function.
func (*Tab) Name() string { return "Tab" }

// TabFamily draws tabulation functions with fresh random tables.
type TabFamily struct{}

// New implements Family.
func (TabFamily) New(seed uint64) Function { return NewTab(seed) }

// Name implements Family.
func (TabFamily) Name() string { return "Tab" }

// ---------------------------------------------------------------------------
// Murmur hashing
// ---------------------------------------------------------------------------

// Murmur is the Murmur3 64-bit finalizer (Appleby), the paper's §3.4
// representative of engineered hash functions: two multiplications and
// three xor-shifts, no formal independence guarantees, excellent empirical
// randomization.
//
// The finalizer itself is parameterless; the family XORs a random seed into
// the key first so that independent members can be drawn (needed for Cuckoo
// rehashing). A zero seed gives the textbook finalizer.
type Murmur struct {
	seed uint64
}

// NewMurmur returns the Murmur3 finalizer pre-seeded with seed.
func NewMurmur(seed uint64) Murmur { return Murmur{seed: seed} }

// Hash applies the Murmur3 64-bit finalizer to x XOR seed.
func (m Murmur) Hash(x uint64) uint64 {
	key := x ^ m.seed
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	key *= 0xc4ceb9fe1a85ec53
	key ^= key >> 33
	return key
}

// Name implements Function.
func (Murmur) Name() string { return "Murmur" }

// MurmurFamily draws seeded Murmur finalizers.
type MurmurFamily struct{}

// New implements Family.
func (MurmurFamily) New(seed uint64) Function {
	return NewMurmur(prng.Mix(seed))
}

// Name implements Family.
func (MurmurFamily) Name() string { return "Murmur" }

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// Families returns the four families in the paper's order:
// Mult, MultAdd, Tab, Murmur.
func Families() []Family {
	return []Family{MultFamily{}, MultAddFamily{}, TabFamily{}, MurmurFamily{}}
}

// FamilyByName returns the family with the given name (case-sensitive,
// matching the paper's labels: "Mult", "MultAdd", "Tab", "Murmur").
func FamilyByName(name string) (Family, error) {
	for _, f := range Families() {
		if f.Name() == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("hashfn: unknown family %q", name)
}

// TopBits derives a d-bit slot index from a 64-bit hash code by taking the
// top d bits, the paper's "div 2^(w-d)". d must be in [1, 64].
func TopBits(h uint64, d uint) uint64 { return h >> (64 - d) }
