package hashfn

import "math/bits"

// This file is the bulk-hash API behind the batched probe/insert pipeline:
// hash tables hand over whole batches of keys and receive all hash codes in
// one call, so the per-key interface dispatch and parameter loads of
// Function.Hash are paid once per batch instead of once per key. Every
// family reads its parameters into locals before the loop, which the
// compiler keeps in registers; the loops are bounds-check-eliminated by the
// leading dst reslice.

// DefaultBatchWidth is the batch size the hash tables use for their batched
// probe pipelines: large enough to amortize per-call overhead and to keep
// dozens of independent probe streams in flight, small enough that one
// batch of keys, codes and cursors stays resident in L1.
const DefaultBatchWidth = 64

// Batcher is implemented by hash functions that hash many keys per call.
// HashBatch must be equivalent to dst[i] = Hash(keys[i]) for every i.
type Batcher interface {
	HashBatch(keys []uint64, dst []uint64)
}

// HashBatch hashes all keys into dst (which must be at least as long as
// keys), using fn's bulk path when it has one and a scalar loop otherwise.
func HashBatch(fn Function, keys []uint64, dst []uint64) {
	if b, ok := fn.(Batcher); ok {
		b.HashBatch(keys, dst)
		return
	}
	dst = dst[:len(keys)]
	for i, k := range keys {
		dst[i] = fn.Hash(k)
	}
}

// HashBatch implements Batcher: one multiplication per key, multiplier held
// in a register.
func (m Mult) HashBatch(keys []uint64, dst []uint64) {
	z := m.z
	dst = dst[:len(keys)]
	for i, k := range keys {
		dst[i] = k * z
	}
}

// HashBatch implements Batcher with the 128-bit parameters loaded once.
func (m MultAdd) HashBatch(keys []uint64, dst []uint64) {
	aHi, aLo, bHi, bLo := m.aHi, m.aLo, m.bHi, m.bLo
	dst = dst[:len(keys)]
	for i, x := range keys {
		hi, lo := bits.Mul64(aLo, x)
		hi += aHi * x
		_, carry := bits.Add64(lo, bLo, 0)
		hi, _ = bits.Add64(hi, bHi, carry)
		dst[i] = hi
	}
}

// HashBatch implements Batcher. The eight 2 KiB tables are hot in L1 across
// the whole batch, so only the first key of a batch pays the warm-up
// misses the paper charges to Tab.
func (t *Tab) HashBatch(keys []uint64, dst []uint64) {
	tab := &t.t
	dst = dst[:len(keys)]
	for i, x := range keys {
		dst[i] = tab[0][byte(x)] ^
			tab[1][byte(x>>8)] ^
			tab[2][byte(x>>16)] ^
			tab[3][byte(x>>24)] ^
			tab[4][byte(x>>32)] ^
			tab[5][byte(x>>40)] ^
			tab[6][byte(x>>48)] ^
			tab[7][byte(x>>56)]
	}
}

// HashBatch implements Batcher: the finalizer chain per key, seed hoisted.
func (m Murmur) HashBatch(keys []uint64, dst []uint64) {
	seed := m.seed
	dst = dst[:len(keys)]
	for i, x := range keys {
		key := x ^ seed
		key ^= key >> 33
		key *= 0xff51afd7ed558ccd
		key ^= key >> 33
		key *= 0xc4ceb9fe1a85ec53
		key ^= key >> 33
		dst[i] = key
	}
}

// HashBatch implements Batcher for the FNV-1a extension.
func (f FNV) HashBatch(keys []uint64, dst []uint64) {
	seed := f.seed
	dst = dst[:len(keys)]
	for i, x := range keys {
		h := uint64(fnvOffset) ^ seed
		for b := 0; b < 8; b++ {
			h ^= x & 0xff
			h *= fnvPrime
			x >>= 8
		}
		dst[i] = h
	}
}

// HashBatch implements Batcher for the 32-bit multiply-add extension.
func (m MultAdd32) HashBatch(keys []uint64, dst []uint64) {
	a, b := m.a, m.b
	dst = dst[:len(keys)]
	for i, x := range keys {
		dst[i] = a*uint64(uint32(x)) + b
	}
}
