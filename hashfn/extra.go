package hashfn

import "repro/internal/prng"

// This file contains the extensions the paper points at but does not
// evaluate in its main matrix:
//
//   - FNV: footnote 6 lists FNV among the engineered hash functions
//     (with CRC, DJB, CityHash) that Murmur represents in the study. FNV-1a
//     is provided so the "engineered function" axis has a second member to
//     compare against.
//   - MultAdd32: §4.4 observes that multiply-add-shift over 32-bit keys
//     needs only native 64-bit arithmetic — "one multiplication, one
//     addition, and one right bit shift. In that case we could use MultAdd
//     instead of Murmur for the benefit of proven theoretical properties."
//     MultAdd32 is that function; BenchmarkHashFn lets you verify it
//     reaches Mult-class speed.

// FNV is the FNV-1a hash folded over the eight bytes of the key. Like
// Murmur it is an engineered function without independence guarantees; it
// is noticeably weaker on structured input (each step mixes only one byte)
// and cheaper designs exist, which is why the paper picked Murmur as the
// class representative.
type FNV struct {
	seed uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewFNV returns an FNV-1a hash pre-seeded with seed (a zero seed gives
// textbook FNV-1a over the key's little-endian bytes).
func NewFNV(seed uint64) FNV { return FNV{seed: seed} }

// Hash folds the key's eight bytes through FNV-1a.
func (f FNV) Hash(x uint64) uint64 {
	h := uint64(fnvOffset) ^ f.seed
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

// Name implements Function.
func (FNV) Name() string { return "FNV" }

// FNVFamily draws seeded FNV-1a functions.
type FNVFamily struct{}

// New implements Family.
func (FNVFamily) New(seed uint64) Function { return NewFNV(prng.Mix(seed)) }

// Name implements Family.
func (FNVFamily) Name() string { return "FNV" }

// MultAdd32 is multiply-add-shift for 32-bit keys evaluated in native
// 64-bit arithmetic:
//
//	h_{a,b}(x) = ((a*x + b) mod 2^64) div 2^(64-d)
//
// with a, b random 64-bit integers (a odd) and x a 32-bit key. This is
// 2-independent on the 32-bit universe and costs one multiplication, one
// addition and (at the consumer) one shift — the §4.4 configuration where
// MultAdd displaces Murmur. Hash accepts a uint64 but only the low 32 bits
// participate; keys above 2^32-1 are truncated by design.
type MultAdd32 struct {
	a uint64
	b uint64
}

// NewMultAdd32 returns the function with the given parameters; a is forced
// odd.
func NewMultAdd32(a, b uint64) MultAdd32 { return MultAdd32{a: a | 1, b: b} }

// Hash returns (a*x32 + b) mod 2^64; consumers take the top d bits.
func (m MultAdd32) Hash(x uint64) uint64 {
	return m.a*uint64(uint32(x)) + m.b
}

// Name implements Function.
func (MultAdd32) Name() string { return "MultAdd32" }

// MultAdd32Family draws MultAdd32 functions with random parameters.
type MultAdd32Family struct{}

// New implements Family.
func (MultAdd32Family) New(seed uint64) Function {
	sm := prng.NewSplitMix64(seed)
	return NewMultAdd32(sm.Next(), sm.Next())
}

// Name implements Family.
func (MultAdd32Family) Name() string { return "MultAdd32" }

// ExtendedFamilies returns the paper's four families plus the extensions in
// this file.
func ExtendedFamilies() []Family {
	return append(Families(), FNVFamily{}, MultAdd32Family{})
}
