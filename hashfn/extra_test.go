package hashfn

import (
	"testing"
	"testing/quick"
)

// TestFNVKnownValues pins textbook FNV-1a (seed 0) over little-endian
// bytes of the key.
func TestFNVKnownValues(t *testing.T) {
	f := NewFNV(0)
	// Independently computed: fold bytes 01 00 00 00 00 00 00 00.
	ref := func(x uint64) uint64 {
		h := uint64(fnvOffset)
		for i := 0; i < 8; i++ {
			h ^= (x >> (8 * i)) & 0xff
			h *= fnvPrime
		}
		return h
	}
	for _, x := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		if got, want := f.Hash(x), ref(x); got != want {
			t.Fatalf("FNV(%#x) = %#x, want %#x", x, got, want)
		}
	}
}

func TestFNVFamilySeeding(t *testing.T) {
	a := FNVFamily{}.New(1)
	b := FNVFamily{}.New(2)
	if a.Name() != "FNV" {
		t.Fatalf("name %s", a.Name())
	}
	same := 0
	for x := uint64(0); x < 100; x++ {
		if a.Hash(x) == b.Hash(x) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds ignored: %d/100 collisions", same)
	}
}

// TestMultAdd32Definition pins the §4.4 construction.
func TestMultAdd32Definition(t *testing.T) {
	m := NewMultAdd32(42, 99) // a becomes 43
	if m.a != 43 {
		t.Fatalf("a = %d, want odd 43", m.a)
	}
	x := uint64(0x1234_5678)
	if got, want := m.Hash(x), uint64(43)*x+99; got != want {
		t.Fatalf("Hash = %d, want %d", got, want)
	}
	// Keys are truncated to 32 bits by design.
	if m.Hash(x) != m.Hash(x|0xffff_ffff_0000_0000) {
		t.Fatal("high key bits should be ignored")
	}
}

// TestMultAdd32TwoIndependenceSample samples the pairwise collision bound
// on the 32-bit universe: for fixed x != y and a table of 2^d slots,
// Pr[h(x) == h(y)] ~= 1/2^d over random (a, b).
func TestMultAdd32TwoIndependenceSample(t *testing.T) {
	const d = 8
	const trials = 20000
	x, y := uint64(123456), uint64(987654)
	coll := 0
	for s := uint64(0); s < trials; s++ {
		f := MultAdd32Family{}.New(s)
		if TopBits(f.Hash(x), d) == TopBits(f.Hash(y), d) {
			coll++
		}
	}
	bound := 1.0 / (1 << d)
	if got := float64(coll) / trials; got > 2*bound {
		t.Fatalf("collision rate %.5f exceeds 2x the 2-independent bound %.5f", got, bound)
	}
}

func TestExtendedFamilies(t *testing.T) {
	fams := ExtendedFamilies()
	if len(fams) != 6 {
		t.Fatalf("%d families", len(fams))
	}
	names := map[string]bool{}
	for _, f := range fams {
		names[f.Name()] = true
		fn := f.New(7)
		prop := func(x uint64) bool { return fn.Hash(x) == fn.Hash(x) }
		if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s not deterministic: %v", f.Name(), err)
		}
	}
	for _, want := range []string{"Mult", "MultAdd", "Tab", "Murmur", "FNV", "MultAdd32"} {
		if !names[want] {
			t.Errorf("missing family %s", want)
		}
	}
}
