package hashfn

import (
	"testing"

	"repro/internal/prng"
)

// TestHashBatchMatchesScalar: every family's bulk path computes exactly the
// scalar hash codes, on ragged batch sizes including zero.
func TestHashBatchMatchesScalar(t *testing.T) {
	rng := prng.NewXoshiro256(11)
	keys := make([]uint64, 257)
	for i := range keys {
		keys[i] = rng.Next()
	}
	keys[0], keys[1] = 0, ^uint64(0) // sentinel-valued keys hash like any other
	for _, f := range ExtendedFamilies() {
		fn := f.New(42)
		if _, ok := fn.(Batcher); !ok {
			t.Fatalf("%s: function does not implement Batcher", f.Name())
		}
		for _, n := range []int{0, 1, 3, 64, 65, len(keys)} {
			dst := make([]uint64, n)
			HashBatch(fn, keys[:n], dst)
			for i := 0; i < n; i++ {
				if want := fn.Hash(keys[i]); dst[i] != want {
					t.Fatalf("%s: HashBatch[%d] = %#x, Hash = %#x", f.Name(), i, dst[i], want)
				}
			}
		}
	}
}

// TestHashBatchScalarFallback: a Function without a bulk path still works
// through the helper.
func TestHashBatchScalarFallback(t *testing.T) {
	fn := scalarOnly{NewMurmur(7)}
	keys := []uint64{1, 2, 3, 4, 5}
	dst := make([]uint64, len(keys))
	HashBatch(fn, keys, dst)
	for i, k := range keys {
		if dst[i] != fn.Hash(k) {
			t.Fatalf("fallback[%d] mismatch", i)
		}
	}
}

// scalarOnly hides the Batcher implementation of the wrapped function.
type scalarOnly struct{ m Murmur }

func (s scalarOnly) Hash(x uint64) uint64 { return s.m.Hash(x) }
func (scalarOnly) Name() string           { return "ScalarOnly" }
