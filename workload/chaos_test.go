package workload

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/shard"
	"repro/table"
)

// TestRunChaosAllFaultKinds is the headline robustness test: a seeded
// schedule injecting all four fault kinds at once into a concurrent RW
// replay. Every kind must actually fire, every injected failure must be
// absorbed or surfaced typed (RunChaos fails otherwise), the engine must
// heal after disarming, the final state must match the map oracles
// exactly, and no goroutine may leak.
func TestRunChaosAllFaultKinds(t *testing.T) {
	before := runtime.NumGoroutine()

	var rates [fault.NumKinds]float64
	rates[fault.Alloc] = 0.5
	rates[fault.Full] = 0.02
	rates[fault.Panic] = 0.12
	rates[fault.Stall] = 0.05
	res, err := RunChaos(ChaosConfig{
		Scheme:      table.SchemeLP,
		Threads:     4,
		InitialKeys: 2000,
		Ops:         4000,
		UpdatePct:   60,
		Rounds:      6,
		GrowAt:      0.85,
		Seed:        42,
		Faults:      fault.Config{Seed: 42, Rates: rates, StallYields: 4},
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if fault.Armed() {
		t.Fatal("RunChaos returned with the fault plan still armed")
	}
	for k := fault.Alloc; int(k) < fault.NumKinds; k++ {
		if res.Faults.Fired[k] == 0 {
			t.Errorf("fault kind %v never fired (seen %d): %+v", k, res.Faults.Seen[k], res.Faults)
		}
	}
	// Every tape operation is consumed exactly once: applied, or skipped
	// on a typed refusal.
	if got := res.Applied + res.SkippedDegraded + res.SkippedInjected; got != res.Ops {
		t.Errorf("applied %d + skipped %d+%d = %d, want %d ops",
			res.Applied, res.SkippedDegraded, res.SkippedInjected, got, res.Ops)
	}
	if res.Faults.Fired[fault.Panic] > 0 && res.PanickedRounds == 0 {
		t.Errorf("%d injected panics but no panicked rounds", res.Faults.Fired[fault.Panic])
	}
	if res.Faults.Fired[fault.Alloc] > 0 && res.Stats.AllocFailures == 0 {
		t.Errorf("%d injected alloc failures but engine recorded none: %+v", res.Faults.Fired[fault.Alloc], res.Stats)
	}
	if res.Stats.Degraded != 0 || res.Stats.Migrating != 0 {
		t.Errorf("engine not healed: %+v", res.Stats)
	}
	t.Logf("chaos: %+v", res)

	// The pool and every injected panic must be fully drained: no
	// goroutine outlives the run. The runtime may account dying
	// goroutines briefly, so poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if now := runtime.NumGoroutine(); now <= before {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after chaos run", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunChaosValidation covers the config error paths.
func TestRunChaosValidation(t *testing.T) {
	if _, err := RunChaos(ChaosConfig{Threads: 0}); err == nil {
		t.Error("Threads 0 accepted")
	}
	if _, err := RunChaos(ChaosConfig{Threads: 1, GrowAt: 1.5}); err == nil {
		t.Error("GrowAt 1.5 accepted")
	}
}

// chaosTapeKey maps a tape byte onto a 16-key working set including both
// sentinel-routed keys — the same encoding as the table kernel fuzz, so
// corpus entries stress the same key patterns.
func chaosTapeKey(b byte) uint64 {
	switch b & 15 {
	case 0:
		return 0
	case 1:
		return ^uint64(0)
	default:
		return uint64(b&15) * 0x9E3779B97F4A7C15
	}
}

// FuzzFaultSchedule replays a fuzzer-chosen operation tape against a
// sharded handle under a fuzzer-chosen fault schedule, differentially
// checked against a map oracle with typed-refusal tolerance: injected
// refusals may skip a mutation (the oracle skips it too) but may never
// corrupt a read, leak an untyped error, or leave the engine unable to
// heal once the schedule is disarmed.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(1), byte(64), byte(32), []byte{0x00, 0x01, 0x12, 0x23, 0x34, 0x45, 0x56, 0x67})
	f.Add(uint64(7), byte(255), byte(0), []byte{0x05, 0x3f, 0x05, 0x40, 0x03, 0x41, 0x02, 0x81})
	f.Add(uint64(42), byte(0), byte(255), []byte("chaos tape with sentinels \x00\xff"))
	f.Fuzz(func(t *testing.T, seed uint64, allocB, fullB byte, tape []byte) {
		if len(tape) > 4096 {
			tape = tape[:4096]
		}
		m, err := table.Open(
			table.WithScheme(table.SchemeLP),
			table.WithCapacity(64),
			table.WithMaxLoadFactor(0.85),
			table.WithSeed(seed),
			table.WithPartitions(2),
		)
		if err != nil {
			t.Fatal(err)
		}
		var rates [fault.NumKinds]float64
		rates[fault.Alloc] = float64(allocB) / 512 // up to ~0.5
		rates[fault.Full] = float64(fullB) / 512
		rates[fault.Stall] = 0.05
		fault.Arm(fault.Config{Seed: seed, Rates: rates, StallYields: 2})
		defer fault.Disarm()

		oracle := map[uint64]uint64{}
		skip := func(err error) bool {
			var de *shard.DegradedError
			var fe *table.FullError
			return errors.As(err, &de) || errors.As(err, &fe) || errors.Is(err, fault.ErrInjected)
		}
		for i := 0; i+1 < len(tape); i += 2 {
			op, k := tape[i], chaosTapeKey(tape[i+1])
			v := uint64(i) + 1
			switch op % 5 {
			case 0:
				if _, err := m.Put(k, v); err != nil {
					if !skip(err) {
						t.Fatalf("op %d: Put(%#x): untyped error %v", i, k, err)
					}
				} else {
					oracle[k] = v
				}
			case 1:
				actual, loaded, err := m.GetOrPut(k, v)
				if err != nil {
					if !skip(err) {
						t.Fatalf("op %d: GetOrPut(%#x): untyped error %v", i, k, err)
					}
					continue
				}
				if want, ok := oracle[k]; ok {
					if !loaded || actual != want {
						t.Fatalf("op %d: GetOrPut(%#x) = (%#x,%v), oracle %#x", i, k, actual, loaded, want)
					}
				} else {
					if loaded || actual != v {
						t.Fatalf("op %d: GetOrPut(%#x) = (%#x,%v), oracle absent", i, k, actual, loaded)
					}
					oracle[k] = v
				}
			case 2:
				nv, err := m.Upsert(k, func(old uint64, exists bool) uint64 {
					if exists {
						return old + 1
					}
					return v
				})
				if err != nil {
					if !skip(err) {
						t.Fatalf("op %d: Upsert(%#x): untyped error %v", i, k, err)
					}
					continue
				}
				if want, ok := oracle[k]; ok && nv != want+1 {
					t.Fatalf("op %d: Upsert(%#x) = %#x, oracle had %#x", i, k, nv, want)
				}
				oracle[k] = nv
			case 3:
				want := false
				if _, ok := oracle[k]; ok {
					want = true
				}
				if got := m.Delete(k); got != want {
					t.Fatalf("op %d: Delete(%#x) = %v, oracle %v", i, k, got, want)
				}
				delete(oracle, k)
			default:
				got, ok := m.Get(k)
				want, wok := oracle[k]
				if ok != wok || (wok && got != want) {
					t.Fatalf("op %d: Get(%#x) = (%#x,%v), oracle (%#x,%v)", i, k, got, ok, want, wok)
				}
			}
		}

		// Disarm and heal: the allocator works again, so one Drain call
		// must retire every migration and degraded shard.
		fault.Disarm()
		if !m.Engine().Drain() {
			t.Fatalf("engine failed to heal after drain: %+v", m.EngineStats())
		}
		if st := m.EngineStats(); st.Degraded != 0 || st.Migrating != 0 {
			t.Fatalf("engine reports unhealed state after drain: %+v", st)
		}

		// Exact final differential.
		if m.Len() != len(oracle) {
			t.Fatalf("Len = %d, oracle %d", m.Len(), len(oracle))
		}
		for k, v := range oracle {
			if got, ok := m.Get(k); !ok || got != v {
				t.Fatalf("Get(%#x) = (%#x,%v), oracle %#x", k, got, ok, v)
			}
		}
		seen := 0
		for k, v := range m.All() {
			if want, ok := oracle[k]; !ok || v != want {
				t.Fatalf("All() yielded (%#x,%#x), oracle (%#x,%v)", k, v, want, ok)
			}
			seen++
		}
		if seen != len(oracle) {
			t.Fatalf("All() yielded %d entries, oracle has %d", seen, len(oracle))
		}
	})
}
