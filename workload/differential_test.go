package workload

// Differential property test: replay RW op tapes against every scheme —
// through the table.Open façade, partitioned and not — and cross-check
// every operation's result against a builtin map[uint64]uint64 oracle.
// The replay deliberately mixes the legacy ops with the single-probe
// GetOrPut/Upsert primitives (including on lookup-miss keys, which then
// insert), and injects the sentinel keys 0 and 2^64-1 whose literal
// values collide with the empty/tombstone slot markers.

import (
	"fmt"
	"testing"

	"repro/dist"
	"repro/table"
)

// sentinelKeys are the two keys routed around the slot markers.
var sentinelKeys = []uint64{0, ^uint64(0)}

func replayDifferential(t *testing.T, scheme table.Scheme, partitions int, seed uint64) {
	t.Helper()
	h, err := table.Open(
		table.WithScheme(scheme),
		table.WithCapacity(1<<9),
		table.WithMaxLoadFactor(0.8),
		table.WithSeed(seed),
		table.WithPartitions(partitions),
	)
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64]uint64{}

	checkPut := func(k, v uint64) {
		ins, err := h.Put(k, v)
		if err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
		_, existed := oracle[k]
		if ins == existed {
			t.Fatalf("Put(%d) inserted=%v, oracle existed=%v", k, ins, existed)
		}
		oracle[k] = v
	}
	checkGetOrPut := func(k, v uint64) {
		got, loaded, err := h.GetOrPut(k, v)
		if err != nil {
			t.Fatalf("GetOrPut(%d): %v", k, err)
		}
		if ov, existed := oracle[k]; existed {
			if !loaded || got != ov {
				t.Fatalf("GetOrPut(%d) = %d,%v; oracle has %d", k, got, loaded, ov)
			}
		} else {
			if loaded || got != v {
				t.Fatalf("GetOrPut(%d) = %d,%v; expected insert of %d", k, got, loaded, v)
			}
			oracle[k] = v
		}
	}
	checkUpsert := func(k, v uint64) {
		got, err := h.Upsert(k, func(old uint64, exists bool) uint64 {
			if exists {
				return old + 1
			}
			return v
		})
		if err != nil {
			t.Fatalf("Upsert(%d): %v", k, err)
		}
		want := v
		if ov, existed := oracle[k]; existed {
			want = ov + 1
		}
		if got != want {
			t.Fatalf("Upsert(%d) = %d, want %d", k, got, want)
		}
		oracle[k] = want
	}
	checkGet := func(k uint64) {
		v, ok := h.Get(k)
		ov, existed := oracle[k]
		if ok != existed || (ok && v != ov) {
			t.Fatalf("Get(%d) = %d,%v; oracle %d,%v", k, v, ok, ov, existed)
		}
	}
	checkDelete := func(k uint64) {
		got := h.Delete(k)
		_, existed := oracle[k]
		if got != existed {
			t.Fatalf("Delete(%d) = %v, oracle existed=%v", k, got, existed)
		}
		delete(oracle, k)
	}

	// Sentinel warm-up: run every op shape over the marker-colliding keys.
	for round, k := range append(sentinelKeys, sentinelKeys...) {
		checkGetOrPut(k, uint64(round)+7)
		checkPut(k, uint64(round)+100)
		checkUpsert(k, 3)
		checkGet(k)
		if round >= len(sentinelKeys) {
			checkDelete(k)
			checkGet(k)
		}
	}

	// Tape replay, rotating through the op variants so every primitive
	// sees hits, misses, deletes and re-inserts.
	gen := dist.New(dist.Sparse, seed)
	tape := GenRWTape(gen, 256, 6000, 40, seed)
	for i, kind := range tape.Kinds {
		k := tape.Keys[i]
		switch kind {
		case OpInsert:
			switch i % 3 {
			case 0:
				checkPut(k, k^0xabcd)
			case 1:
				checkGetOrPut(k, k^0x1234)
			default:
				checkUpsert(k, k^0x9999)
			}
		case OpDelete:
			checkDelete(k)
		default: // OpLookupHit / OpLookupMiss
			if i%2 == 0 {
				checkGet(k)
			} else {
				// GetOrPut on a lookup key: a miss inserts, a hit reads —
				// the oracle mirrors both.
				checkGetOrPut(k, k^0x5a5a)
			}
		}
	}

	// Batched single-probe pass over a mix of live and absent keys.
	var keys, vals []uint64
	for i := 0; i < 512; i++ {
		keys = append(keys, tape.Keys[int(seed+uint64(i*7))%len(tape.Keys)])
		vals = append(vals, uint64(i)|1<<40)
	}
	out := make([]uint64, len(keys))
	loaded := make([]bool, len(keys))
	if _, err := h.GetOrPutBatch(keys, vals, out, loaded); err != nil {
		t.Fatalf("GetOrPutBatch: %v", err)
	}
	for i, k := range keys {
		if ov, existed := oracle[k]; existed {
			if !loaded[i] || out[i] != ov {
				t.Fatalf("GetOrPutBatch lane %d key %d = %d,%v; oracle %d", i, k, out[i], loaded[i], ov)
			}
		} else {
			if loaded[i] || out[i] != vals[i] {
				t.Fatalf("GetOrPutBatch lane %d key %d = %d,%v; expected insert", i, k, out[i], loaded[i])
			}
			oracle[k] = vals[i]
		}
	}

	// Final state: size and full contents via the Go 1.23 iterator.
	if h.Len() != len(oracle) {
		t.Fatalf("final Len = %d, oracle %d", h.Len(), len(oracle))
	}
	seen := 0
	for k, v := range h.All() {
		ov, existed := oracle[k]
		if !existed || v != ov {
			t.Fatalf("All yielded %d=%d; oracle %d,%v", k, v, ov, existed)
		}
		seen++
	}
	if seen != len(oracle) {
		t.Fatalf("All yielded %d entries, oracle %d", seen, len(oracle))
	}
}

// TestDifferentialTapeReplay drives every scheme through the façade.
func TestDifferentialTapeReplay(t *testing.T) {
	schemes := table.AllSchemes()
	for _, scheme := range schemes {
		t.Run(string(scheme), func(t *testing.T) {
			replayDifferential(t, scheme, 1, 42)
		})
	}
}

// TestDifferentialTapeReplayStriped repeats the replay on partitioned
// handles (single-goroutine use; concurrency is covered by the -race CI
// job via TestStripedConcurrent in package table).
func TestDifferentialTapeReplayStriped(t *testing.T) {
	for _, p := range []int{2, 8} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			replayDifferential(t, table.SchemeRH, p, 7)
		})
	}
}
