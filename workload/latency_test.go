package workload_test

import (
	"testing"

	"repro/dist"
	"repro/internal/fault"
	"repro/table"
	"repro/workload"
)

func TestRunRWLatencySnapshot(t *testing.T) {
	cfg := workload.RWConfig{
		Scheme: table.SchemeLP, Dist: dist.Dense,
		InitialKeys: 1 << 10, Ops: 4096, UpdatePct: 25, GrowAt: 0.85, Seed: 5,
	}
	res, err := workload.RunRW(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := (4096 + 31) / 32 // default stride: every 32nd op, starting at op 0
	if res.Latency.Count != want {
		t.Fatalf("Latency.Count = %d, want %d at the default stride", res.Latency.Count, want)
	}
	if res.Latency.P50() < 0 || res.Latency.P999() < res.Latency.P50() {
		t.Fatalf("implausible latency quantiles: %v", res.Latency)
	}

	cfg.LatencySample = -1
	res, err = workload.RunRW(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count != 0 {
		t.Fatalf("Latency.Count = %d with sampling disabled", res.Latency.Count)
	}

	cfg.LatencySample = 7
	res, err = workload.RunRW(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := (4096 + 6) / 7; res.Latency.Count != want {
		t.Fatalf("Latency.Count = %d, want %d at stride 7", res.Latency.Count, want)
	}
}

func TestRunRWConcurrentLatencySnapshot(t *testing.T) {
	res, err := workload.RunRWConcurrent(workload.RWConfig{
		Scheme: table.SchemeLP, Dist: dist.Dense,
		InitialKeys: 512, Ops: 2048, UpdatePct: 25, GrowAt: 0.85, Seed: 6,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * ((2048 + 31) / 32)
	if res.Latency.Count != want {
		t.Fatalf("Latency.Count = %d, want %d across 4 threads", res.Latency.Count, want)
	}
}

func TestRunChaosLatencySnapshot(t *testing.T) {
	faults := fault.Config{Seed: 9}
	faults.Rates[fault.Full] = 1.0 / 256
	res, err := workload.RunChaos(workload.ChaosConfig{
		Threads: 2, InitialKeys: 256, Ops: 1024, UpdatePct: 50, Seed: 9,
		Faults: faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Panicked rounds can leave cursors mid-chunk and re-sample from the
	// resume point, so the count is bounded, not exact.
	min := res.Ops / 32
	if res.Latency.Count < min {
		t.Fatalf("Latency.Count = %d, want >= %d across all phases", res.Latency.Count, min)
	}
}
