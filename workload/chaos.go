package workload

// Chaos harness: the RW differential replay run under a seeded fault
// schedule. T goroutines replay disjoint RW tapes against ONE sharded
// handle while internal/fault injects allocator failures, table
// refusals, worker panics, and scheduler stalls at the rates of the
// armed plan. Every injected failure must be either absorbed by the
// engine (alloc failures degrade shards, stalls just reshuffle timing)
// or surfaced as a typed error the replay can classify (injected
// *table.FullError refusals, *shard.DegradedError inserts, contained
// *exec.PanicError rounds) — anything else fails the run. Each
// goroutine mirrors its applied operations into a private map oracle,
// so after the faults are disarmed and the engine has healed, the
// handle must agree with the union of the oracles exactly.

import (
	"context"
	"errors"
	"fmt"

	"repro/decision"
	"repro/dist"
	"repro/exec"
	"repro/hashfn"
	"repro/internal/fault"
	"repro/obs"
	"repro/shard"
	"repro/table"
)

// chaosValSalt derives a stored value from its key, so value corruption
// is distinguishable from key corruption in the differential check.
const chaosValSalt = 0xa5a5_a5a5_5a5a_5a5a

// ChaosConfig parameterizes one chaos run.
type ChaosConfig struct {
	// Scheme selects the table kernel (default LP). Family is the hash
	// class (default Mult); Dist the key distribution (default Dense).
	Scheme table.Scheme
	Family hashfn.Family
	Dist   dist.Kind
	// Threads is the number of replaying goroutines; the handle is
	// sharded with decision.ShardsFor(Threads).
	Threads int
	// InitialKeys pre-fills the table per thread before faults are
	// armed; Ops is the tape length per thread.
	InitialKeys int
	Ops         int
	// UpdatePct is the tape's update percentage (see GenRWTape).
	UpdatePct int
	// Rounds splits each tape into this many chunks; faults stay armed
	// across all of them, and a round aborted by an injected panic
	// resumes where its threads' cursors stopped. After the armed
	// rounds one fault-free pass completes every tape (default 4).
	Rounds int
	// GrowAt is the shards' growth threshold (default 0.85).
	GrowAt float64
	Seed   uint64
	// Faults is the schedule armed for the replay rounds.
	Faults fault.Config
	// Ctx cancels the replay between morsels; it is threaded into the
	// exec pool (nil means context.Background()).
	Ctx context.Context
	// LatencySample records every Nth replayed operation's latency into
	// the result's Latency snapshot — armed rounds included, so injected
	// stalls and degraded retries show up in the tail. Zero means the
	// default (every 32nd); negative disables recording.
	LatencySample int
}

// ChaosResult reports what one chaos run absorbed and surfaced.
type ChaosResult struct {
	Label   string
	Threads int
	Shards  int
	// Ops is the total tape length across threads; every operation is
	// eventually either Applied (mirrored to the oracle) or skipped on
	// a typed refusal.
	Ops     int
	Applied int
	// SkippedDegraded counts mutations refused with *shard.DegradedError,
	// SkippedInjected those refused with an injected *table.FullError or
	// raw fault.ErrInjected.
	SkippedDegraded int
	SkippedInjected int
	// PanickedRounds counts replay rounds aborted by a contained
	// *exec.PanicError (the affected cursors resume next round).
	PanickedRounds int
	FinalLen       int
	// Faults is the plan's counter snapshot at disarm time; Stats the
	// engine's final observability snapshot.
	Faults fault.Counts
	Stats  shard.Stats
	// Latency is the sampled per-operation latency distribution across
	// every replay phase (armed rounds and the fault-free completion);
	// zero-valued when sampling is disabled (see LatencySample).
	Latency obs.Snapshot
}

// chaosThread is one goroutine's private replay state. Rounds are
// separated by pool barriers, so the per-thread tallies need no atomics.
type chaosThread struct {
	gen    offsetGen
	tape   *Tape
	oracle map[uint64]uint64
	cursor int
	rot    int // insert-primitive rotation: Put, GetOrPut, Upsert

	applied, degraded, injected int

	// lat is the run's shared latency histogram (thread index = stripe);
	// nil when sampling is disabled. every/countdown pace the sampling.
	lat       *obs.Histogram
	every     int
	countdown int
}

// RunChaos replays cfg's differential chaos workload and returns the
// tally. The fault plan is armed after the pre-fill and disarmed (via
// defer, so failures cannot leak an armed plan into the caller's
// process) before the heal phase and final differential check.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	if cfg.Threads < 1 {
		return ChaosResult{}, fmt.Errorf("workload: chaos needs at least 1 thread, got %d", cfg.Threads)
	}
	if cfg.Scheme == "" {
		cfg.Scheme = table.SchemeLP
	}
	if cfg.Family == nil {
		cfg.Family = hashfn.MultFamily{}
	}
	if cfg.Dist == "" {
		cfg.Dist = dist.Dense
	}
	if cfg.Rounds < 1 {
		cfg.Rounds = 4
	}
	if cfg.GrowAt == 0 {
		cfg.GrowAt = 0.85
	}
	if cfg.GrowAt < 0 || cfg.GrowAt >= 1 {
		return ChaosResult{}, fmt.Errorf("workload: chaos grow-at threshold must be in (0,1), got %v", cfg.GrowAt)
	}

	// At least two shards even single-threaded, so the handle always has
	// an engine (and with it Drain, the post-chaos heal hook).
	shards := decision.ShardsFor(cfg.Threads)
	if shards < 2 {
		shards = 2
	}
	m, err := table.Open(
		table.WithScheme(cfg.Scheme),
		table.WithCapacity(initialCapacityFor(cfg.InitialKeys*cfg.Threads)),
		table.WithMaxLoadFactor(cfg.GrowAt),
		table.WithHashFamily(cfg.Family),
		table.WithSeed(cfg.Seed),
		table.WithPartitions(shards),
	)
	if err != nil {
		return ChaosResult{}, err
	}
	res := ChaosResult{
		Label:   fmt.Sprintf("%s%s/%dthr/chaos", cfg.Scheme, cfg.Family.Name(), cfg.Threads),
		Threads: cfg.Threads,
		Shards:  m.Partitions(),
	}

	every := latencyEvery(cfg.LatencySample)
	var lat *obs.Histogram
	if every > 0 {
		lat = obs.NewHistogram(cfg.Threads)
	}

	base := dist.New(cfg.Dist, cfg.Seed)
	threads := make([]chaosThread, cfg.Threads)
	for g := range threads {
		th := &threads[g]
		th.gen = offsetGen{gen: base, base: uint64(g) * threadStride}
		th.tape = GenRWTape(th.gen, cfg.InitialKeys, cfg.Ops, cfg.UpdatePct, cfg.Seed+uint64(g))
		th.oracle = make(map[uint64]uint64, cfg.InitialKeys+th.tape.Inserts)
		th.lat, th.every = lat, every
		res.Ops += th.tape.Len()
	}

	pool := exec.NewPool(exec.Config{Workers: cfg.Threads, Ctx: cfg.Ctx})
	defer pool.Close()

	// Fault-free concurrent pre-fill, mirrored into the oracles.
	if err := pool.ForEach(cfg.Threads, func(_, g int) error {
		th := &threads[g]
		for i := 0; i < cfg.InitialKeys; i++ {
			k := th.gen.Key(uint64(i))
			v := k ^ chaosValSalt
			if _, err := m.Put(k, v); err != nil {
				return err
			}
			th.oracle[k] = v
		}
		return nil
	}); err != nil {
		return res, err
	}

	fault.Arm(cfg.Faults)
	defer fault.Disarm()

	// Armed rounds: each replays one tape chunk per thread. A round
	// aborted by a contained injected panic leaves the panicked (and any
	// never-claimed) chunks at their cursors; they resume next round.
	chunk := (cfg.Ops + cfg.Rounds - 1) / cfg.Rounds
	for round := 0; round < cfg.Rounds; round++ {
		err := pool.ForEach(cfg.Threads, func(_, g int) error {
			return replayChaos(m, &threads[g], g, chunk)
		})
		if err != nil {
			var pe *exec.PanicError
			if errors.As(err, &pe) {
				res.PanickedRounds++
				continue
			}
			return res, err
		}
	}
	res.Faults = fault.Snapshot()
	fault.Disarm()

	// Fault-free completion: every cursor runs to the end of its tape
	// (panicked rounds may have left arbitrary prefixes unreplayed).
	if err := pool.ForEach(cfg.Threads, func(_, g int) error {
		th := &threads[g]
		return replayChaos(m, th, g, th.tape.Len()-th.cursor)
	}); err != nil {
		return res, err
	}
	for g := range threads {
		th := &threads[g]
		res.Applied += th.applied
		res.SkippedDegraded += th.degraded
		res.SkippedInjected += th.injected
	}

	// Heal: with the injector disarmed the allocator works again, so one
	// Drain call retires every in-flight migration, parked carry entry,
	// and degraded shard without waiting for organic mutations.
	if !m.Engine().Drain() {
		return res, fmt.Errorf("workload: chaos engine failed to heal after drain: %+v", m.EngineStats())
	}
	if st := m.EngineStats(); st.Degraded != 0 || st.Migrating != 0 {
		return res, fmt.Errorf("workload: chaos engine reports unhealed state after drain: %+v", st)
	}

	// Final differential: the handle must agree with the union of the
	// oracles exactly — size, every key's value, and nothing extra.
	merged := make(map[uint64]uint64)
	for g := range threads {
		for k, v := range threads[g].oracle {
			merged[k] = v
		}
	}
	if m.Len() != len(merged) {
		return res, fmt.Errorf("workload: chaos left %d entries, oracle has %d", m.Len(), len(merged))
	}
	for k, v := range merged {
		got, ok := m.Get(k)
		if !ok || got != v {
			return res, fmt.Errorf("workload: chaos Get(%#x) = (%#x,%v), oracle %#x", k, got, ok, v)
		}
	}
	seen := 0
	for k, v := range m.All() {
		want, ok := merged[k]
		if !ok || v != want {
			return res, fmt.Errorf("workload: chaos All() yielded (%#x,%#x), oracle (%#x,%v)", k, v, want, ok)
		}
		seen++
	}
	if seen != len(merged) {
		return res, fmt.Errorf("workload: chaos All() yielded %d entries, oracle has %d", seen, len(merged))
	}
	res.FinalLen = m.Len()
	res.Stats = m.EngineStats()
	if lat != nil {
		res.Latency = lat.Snapshot()
	}
	return res, nil
}

// classifyChaosErr records a typed, expected refusal on th and reports
// whether err was one: *shard.DegradedError (allocator failing — the
// insert is refused but the shard keeps serving) or an injected refusal
// (*table.FullError from the handle entry hook, or a raw
// fault.ErrInjected chain). Anything else is a real failure.
func classifyChaosErr(th *chaosThread, err error) bool {
	var de *shard.DegradedError
	if errors.As(err, &de) {
		th.degraded++
		return true
	}
	var fe *table.FullError
	if errors.As(err, &fe) || errors.Is(err, fault.ErrInjected) {
		th.injected++
		return true
	}
	return false
}

// replayChaos replays up to limit operations of thread g's tape from its
// cursor, mirroring applied operations into the oracle and classifying
// typed refusals. Reads are differentially checked against the oracle on
// every operation — fault injection must never corrupt a lookup.
func replayChaos(m *table.Handle, th *chaosThread, g, limit int) error {
	end := th.cursor + limit
	if limit < 0 || end > th.tape.Len() {
		end = th.tape.Len()
	}
	for th.cursor < end {
		i := th.cursor
		kind, k := th.tape.Kinds[i], th.tape.Keys[i]
		th.cursor++
		var t0 int64
		sampled := false
		if th.lat != nil {
			if th.countdown == 0 {
				th.countdown = th.every
				sampled = true
				t0 = obs.Now()
			}
			th.countdown--
		}
		switch kind {
		case OpInsert:
			val := k ^ chaosValSalt
			var err error
			switch th.rot % 3 {
			case 0:
				if _, err = m.Put(k, val); err == nil {
					th.oracle[k] = val
				}
			case 1:
				var actual uint64
				var loaded bool
				actual, loaded, err = m.GetOrPut(k, val)
				if err == nil {
					if want, ok := th.oracle[k]; ok {
						if !loaded || actual != want {
							return fmt.Errorf("workload: chaos thread %d op %d: GetOrPut(%#x) = (%#x,%v), oracle %#x", g, i, k, actual, loaded, want)
						}
					} else {
						if loaded || actual != val {
							return fmt.Errorf("workload: chaos thread %d op %d: GetOrPut(%#x) = (%#x,%v), oracle absent", g, i, k, actual, loaded)
						}
						th.oracle[k] = val
					}
				}
			default:
				var mismatch error
				var nv uint64
				nv, err = m.Upsert(k, func(old uint64, exists bool) uint64 {
					want, ok := th.oracle[k]
					if exists != ok || (ok && old != want) {
						mismatch = fmt.Errorf("workload: chaos thread %d op %d: Upsert(%#x) saw (%#x,%v), oracle (%#x,%v)", g, i, k, old, exists, want, ok)
					}
					if exists {
						return old
					}
					return val
				})
				if err == nil {
					if mismatch != nil {
						return mismatch
					}
					th.oracle[k] = nv
				}
			}
			th.rot++
			if err != nil {
				if !classifyChaosErr(th, err) {
					return fmt.Errorf("workload: chaos thread %d op %d (insert %#x): unexpected error: %w", g, i, k, err)
				}
			} else {
				th.applied++
			}
		case OpDelete:
			_, want := th.oracle[k]
			if ok := m.Delete(k); ok != want {
				return fmt.Errorf("workload: chaos thread %d op %d: Delete(%#x) = %v, oracle %v", g, i, k, ok, want)
			}
			delete(th.oracle, k)
			th.applied++
		default: // OpLookupHit / OpLookupMiss: differential, not tape, truth
			v, ok := m.Get(k)
			want, wok := th.oracle[k]
			if ok != wok || (wok && v != want) {
				return fmt.Errorf("workload: chaos thread %d op %d: Get(%#x) = (%#x,%v), oracle (%#x,%v)", g, i, k, v, ok, want, wok)
			}
			th.applied++
		}
		if sampled {
			th.lat.Record(g, obs.Now()-t0)
		}
	}
	return nil
}
