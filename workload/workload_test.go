package workload

import (
	"testing"

	"repro/dist"
	"repro/hashfn"
	"repro/table"
)

func TestRunWORMValidation(t *testing.T) {
	if _, err := RunWORM(WORMConfig{Capacity: 0, LoadFactor: 0.5}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := RunWORM(WORMConfig{Capacity: 1 << 10, LoadFactor: 0}); err == nil {
		t.Error("zero load factor accepted")
	}
	if _, err := RunWORM(WORMConfig{Capacity: 1 << 10, LoadFactor: 1.5}); err == nil {
		t.Error("load factor > 1 accepted")
	}
}

// TestRunWORMAllPoints executes a miniature version of the paper's full
// WORM grid: every scheme x function x distribution at a low and a high
// load factor. The runner itself validates hit counts and build sizes, so
// success here is a meaningful end-to-end check.
func TestRunWORMAllPoints(t *testing.T) {
	const capacity = 1 << 10
	for _, s := range table.Schemes() {
		for _, f := range hashfn.Families() {
			for _, d := range dist.Kinds() {
				for _, lf := range []float64{0.25, 0.9} {
					if (s == table.SchemeChained8 || s == table.SchemeChained24) && lf > 0.5 {
						continue // over the §4.5 budget by design
					}
					res, err := RunWORM(WORMConfig{
						Scheme:     s,
						Family:     f,
						Dist:       d,
						Capacity:   capacity,
						LoadFactor: lf,
						Mixes:      []int{0, 50, 100},
						Lookups:    2048,
						Seed:       7,
					})
					if err != nil {
						t.Fatalf("%s/%s/%s lf=%v: %v", s, f.Name(), d, lf, err)
					}
					if res.N != int(lf*capacity) {
						t.Fatalf("%s: N = %d", s, res.N)
					}
					if res.InsertMops <= 0 {
						t.Fatalf("%s: non-positive insert throughput", s)
					}
					for _, u := range []int{0, 50, 100} {
						if res.LookupMops[u] <= 0 {
							t.Fatalf("%s: non-positive lookup throughput at u=%d", s, u)
						}
					}
					if res.MemoryBytes == 0 {
						t.Fatalf("%s: zero memory footprint", s)
					}
				}
			}
		}
	}
}

// TestWORMChainedBudget: chained schemes at low load factors must fit the
// §4.5 budget; the harness flags them otherwise.
func TestWORMChainedBudget(t *testing.T) {
	res, err := RunWORM(WORMConfig{
		Scheme:     table.SchemeChained24,
		Family:     hashfn.MultFamily{},
		Dist:       dist.Sparse,
		Capacity:   1 << 14,
		LoadFactor: 0.35,
		Mixes:      []int{0},
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OverBudget {
		t.Fatalf("Chained24 at 35%% flagged over budget (%d bytes)", res.MemoryBytes)
	}
	oaCap := 1 << 14
	budget := uint64(table.ChainedBudgetFactor * 16 * float64(oaCap))
	if res.MemoryBytes > budget {
		t.Fatalf("footprint %d exceeds budget %d but was not flagged", res.MemoryBytes, budget)
	}
}

func TestWormProbeTape(t *testing.T) {
	gen := dist.New(dist.Dense, 1)
	present := gen.Keys(100)
	for _, u := range []int{0, 25, 50, 75, 100} {
		probes, wantHits := wormProbeTape(gen, present, 100, 200, u, 9)
		if len(probes) != 200 {
			t.Fatalf("u=%d: tape length %d", u, len(probes))
		}
		if wantHits != 200-200*u/100 {
			t.Fatalf("u=%d: wantHits = %d", u, wantHits)
		}
		presentSet := map[uint64]bool{}
		for _, k := range present {
			presentSet[k] = true
		}
		hits := 0
		for _, k := range probes {
			if presentSet[k] {
				hits++
			}
		}
		if hits != wantHits {
			t.Fatalf("u=%d: tape contains %d present keys, want %d", u, hits, wantHits)
		}
	}
}

func TestGenRWTapeComposition(t *testing.T) {
	gen := dist.New(dist.Sparse, 5)
	const initial, ops = 1000, 20000
	tape := GenRWTape(gen, initial, ops, 40, 11)
	if tape.Len() != ops {
		t.Fatalf("tape length %d", tape.Len())
	}
	// Composition: ~40% updates split 4:1, ~60% lookups split 3:1.
	updates := tape.Inserts + tape.Deletes
	lookups := tape.Hits + tape.Misses
	if updates+lookups != ops {
		t.Fatalf("counts do not add up: %d+%d != %d", updates, lookups, ops)
	}
	if frac := float64(updates) / ops; frac < 0.37 || frac > 0.43 {
		t.Fatalf("update fraction %v, want ~0.40", frac)
	}
	if r := float64(tape.Inserts) / float64(tape.Deletes); r < 3.5 || r > 4.6 {
		t.Fatalf("insert:delete = %v, want ~4", r)
	}
	if r := float64(tape.Hits) / float64(tape.Misses); r < 2.6 || r > 3.4 {
		t.Fatalf("hit:miss = %v, want ~3", r)
	}
	if tape.FinalLive != initial+tape.Inserts-tape.Deletes {
		t.Fatalf("FinalLive inconsistent: %d", tape.FinalLive)
	}
	// Determinism.
	tape2 := GenRWTape(gen, initial, ops, 40, 11)
	for i := range tape.Keys {
		if tape.Keys[i] != tape2.Keys[i] || tape.Kinds[i] != tape2.Kinds[i] {
			t.Fatal("tape generation is not deterministic")
		}
	}
}

func TestGenRWTapeEdgeCases(t *testing.T) {
	gen := dist.New(dist.Sparse, 5)
	// 0% updates: lookups only.
	tape := GenRWTape(gen, 100, 1000, 0, 1)
	if tape.Inserts+tape.Deletes != 0 {
		t.Fatal("0% updates produced updates")
	}
	// 100% updates: no lookups.
	tape = GenRWTape(gen, 100, 1000, 100, 1)
	if tape.Hits+tape.Misses != 0 {
		t.Fatal("100% updates produced lookups")
	}
	// Starting empty: deletes must fall back to inserts.
	tape = GenRWTape(gen, 0, 100, 100, 1)
	if tape.Deletes > tape.Inserts {
		t.Fatal("deletes outnumber inserts from an empty start")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("updatePct > 100 did not panic")
		}
	}()
	GenRWTape(gen, 0, 10, 101, 1)
}

// TestRunRWAllSchemes replays one shared tape against every scheme and
// relies on the runner's internal validation (hit/miss counts, final
// sizes).
func TestRunRWAllSchemes(t *testing.T) {
	gen := dist.New(dist.Sparse, 21)
	const initial, ops = 2000, 30000
	tape := GenRWTape(gen, initial, ops, 25, 22)
	for _, s := range table.Schemes() {
		for _, grow := range []float64{0.5, 0.9} {
			res, err := RunRW(RWConfig{
				Scheme:      s,
				Family:      hashfn.MultFamily{},
				Dist:        dist.Sparse,
				InitialKeys: initial,
				Ops:         ops,
				UpdatePct:   25,
				GrowAt:      grow,
				Seed:        21,
				Tape:        tape,
			})
			if err != nil {
				t.Fatalf("%s grow=%v: %v", s, grow, err)
			}
			if res.Mops <= 0 || res.MemoryBytes == 0 {
				t.Fatalf("%s grow=%v: degenerate result %+v", s, grow, res)
			}
			if res.FinalLen != initial+tape.Inserts-tape.Deletes {
				t.Fatalf("%s: final length %d", s, res.FinalLen)
			}
		}
	}
}

func TestRunRWValidation(t *testing.T) {
	if _, err := RunRW(RWConfig{GrowAt: 0}); err == nil {
		t.Error("GrowAt 0 accepted")
	}
	if _, err := RunRW(RWConfig{GrowAt: 1.2}); err == nil {
		t.Error("GrowAt > 1 accepted")
	}
}

func TestInitialCapacityFor(t *testing.T) {
	// The paper starts at ~47% load factor: initial*2 < capacity needed.
	for _, n := range []int{1, 100, 1 << 16} {
		c := initialCapacityFor(n)
		if c&(c-1) != 0 {
			t.Fatalf("capacity %d not a power of two", c)
		}
		if float64(n)/float64(c) > 0.5 {
			t.Fatalf("initial load factor %v > 0.5", float64(n)/float64(c))
		}
	}
}

func TestNewWORMTableChainedSizing(t *testing.T) {
	m, err := NewWORMTable(table.SchemeChained24, hashfn.MultFamily{}, 1<<16, 0.35, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Capacity() != table.Chained24DirectorySlots(0.35, 1<<16) {
		t.Fatalf("directory = %d slots", m.Capacity())
	}
	if _, err := NewWORMTable("bogus", hashfn.MultFamily{}, 1<<10, 0.5, 1); err == nil {
		t.Error("bogus scheme accepted")
	}
}

// TestRunRWConcurrent drives the sharded engine with 8 goroutines
// replaying disjoint RW tapes against one handle; hit/miss counts are
// validated per goroutine inside RunRWConcurrent, and the small initial
// capacity forces incremental shard resizes during the run.
func TestRunRWConcurrent(t *testing.T) {
	res, err := RunRWConcurrent(RWConfig{
		Scheme:      table.SchemeRH,
		Dist:        dist.Dense,
		InitialKeys: 2000,
		Ops:         20000,
		UpdatePct:   50,
		GrowAt:      0.85,
		Seed:        11,
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 8 || res.Shards != 16 {
		t.Fatalf("threads/shards = %d/%d, want 8/16", res.Threads, res.Shards)
	}
	if res.Ops != 8*20000 || res.FinalLen == 0 || res.Mops <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.Migrations == 0 {
		t.Fatal("expected incremental resizes during the concurrent replay")
	}
}
