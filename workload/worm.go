// Package workload implements the paper's two workload drivers (§4–§6):
//
//   - WORM (write-once-read-many): bulk-build a table to a target load
//     factor, then probe it with lookup mixes ranging from all-successful
//     to all-unsuccessful. This simulates the static, OLAP-style indexing
//     use of hash tables (and, per §4, closely resembles join build/probe
//     and aggregation).
//   - RW (read-write): a long mixed stream of inserts, deletes and lookups
//     against a growing table, simulating the dynamic, OLTP-style case
//     (§6): insert:delete = 4:1 within updates, successful:unsuccessful =
//     3:1 within lookups, with configurable update percentage and
//     grow-at thresholds.
//
// Both drivers pre-generate their key/op tapes outside the timed sections,
// so identical tapes are replayed against every scheme; measured loops
// contain nothing but table operations (plus, for RW, an index increment).
package workload

import (
	"fmt"
	"time"

	"repro/dist"
	"repro/hashfn"
	"repro/table"
)

// DefaultMixes is the paper's unsuccessful-lookup sweep: 0, 25, 50, 75 and
// 100 percent of probes miss.
var DefaultMixes = []int{0, 25, 50, 75, 100}

// WORMConfig parameterizes one WORM experiment point.
type WORMConfig struct {
	Scheme table.Scheme
	Family hashfn.Family
	Dist   dist.Kind
	// Capacity is the open-addressing capacity l (power of two). Chained
	// schemes get their directory sized from it per §4.5.
	Capacity int
	// LoadFactor is alpha; the table is built with n = alpha*Capacity keys.
	LoadFactor float64
	// Mixes lists unsuccessful-lookup percentages to measure; nil means
	// DefaultMixes.
	Mixes []int
	// Lookups is the number of probe operations per mix; 0 means n.
	Lookups int
	Seed    uint64
}

// WORMResult reports one WORM experiment point.
type WORMResult struct {
	Label string // e.g. "LPMult"
	N     int    // keys inserted

	InsertMops  float64
	LookupMops  map[int]float64 // unsuccessful-% -> M lookups/second
	MemoryBytes uint64

	// Stats is the built table's observability snapshot (probe and
	// displacement measures, tombstones, rehashes, memory).
	Stats table.Stats

	// OverBudget is set for chained tables whose final footprint exceeded
	// the §4.5 memory budget (110% of the open-addressing footprint); the
	// paper excludes such configurations.
	OverBudget bool
}

// NewWORMTable builds an empty table for a WORM experiment, applying the
// §4.5 memory-budget directory sizing to the chained schemes. It stays on
// the low-level constructor (rather than Open) because the chained
// directory sizing bypasses the capacity heuristics, and because callers
// inspect the concrete schemes' diagnostics through the returned Table.
func NewWORMTable(scheme table.Scheme, family hashfn.Family, capacity int, alpha float64, seed uint64) (table.Table, error) {
	cfg := table.Config{
		InitialCapacity: capacity,
		MaxLoadFactor:   0, // WORM tables are pre-allocated and never rehash
		Family:          family,
		Seed:            seed,
	}
	switch scheme {
	case table.SchemeChained8:
		cfg.InitialCapacity = table.Chained8DirectorySlots(alpha, capacity)
	case table.SchemeChained24:
		cfg.InitialCapacity = table.Chained24DirectorySlots(alpha, capacity)
	}
	return table.New(scheme, cfg)
}

// RunWORM executes one WORM experiment point: timed bulk build, then one
// timed probe phase per lookup mix. It validates that every mix observed
// exactly the expected number of hits and returns an error otherwise.
func RunWORM(cfg WORMConfig) (WORMResult, error) {
	if cfg.Capacity <= 0 {
		return WORMResult{}, fmt.Errorf("workload: WORM capacity must be positive, got %d", cfg.Capacity)
	}
	if cfg.LoadFactor <= 0 || cfg.LoadFactor >= 1 {
		return WORMResult{}, fmt.Errorf("workload: WORM load factor must be in (0,1), got %v", cfg.LoadFactor)
	}
	if cfg.Family == nil {
		cfg.Family = hashfn.MultFamily{}
	}
	mixes := cfg.Mixes
	if mixes == nil {
		mixes = DefaultMixes
	}
	n := int(cfg.LoadFactor * float64(cfg.Capacity))
	m, err := NewWORMTable(cfg.Scheme, cfg.Family, cfg.Capacity, cfg.LoadFactor, cfg.Seed)
	if err != nil {
		return WORMResult{}, err
	}
	res := WORMResult{
		Label:      string(cfg.Scheme) + cfg.Family.Name(),
		N:          n,
		LookupMops: make(map[int]float64, len(mixes)),
	}

	gen := dist.New(cfg.Dist, cfg.Seed)
	insertKeys := dist.Shuffled(gen.Keys(n), cfg.Seed+1)

	start := time.Now()
	for i, k := range insertKeys {
		m.Put(k, uint64(i))
	}
	res.InsertMops = mops(n, time.Since(start))

	if m.Len() != n {
		return res, fmt.Errorf("workload: WORM build of %s expected %d entries, table has %d", res.Label, n, m.Len())
	}

	lookups := cfg.Lookups
	if lookups <= 0 {
		lookups = n
	}
	for _, u := range mixes {
		probes, wantHits := wormProbeTape(gen, insertKeys, n, lookups, u, cfg.Seed+uint64(u)+2)
		var hits int
		var sink uint64
		start = time.Now()
		for _, k := range probes {
			if v, ok := m.Get(k); ok {
				hits++
				sink ^= v
			}
		}
		elapsed := time.Since(start)
		_ = sink
		if hits != wantHits {
			return res, fmt.Errorf("workload: WORM probe of %s at %d%% unsuccessful: got %d hits, want %d", res.Label, u, hits, wantHits)
		}
		res.LookupMops[u] = mops(len(probes), elapsed)
	}

	res.MemoryBytes = m.MemoryFootprint()
	res.Stats = table.StatsOf(m)
	budget := uint64(table.ChainedBudgetFactor * 16 * float64(cfg.Capacity))
	if (cfg.Scheme == table.SchemeChained8 || cfg.Scheme == table.SchemeChained24) && res.MemoryBytes > budget {
		res.OverBudget = true
	}
	return res, nil
}

// wormProbeTape builds a probe-key tape of the requested length where
// unsuccessfulPct percent of keys are absent from the table (drawn from the
// same distribution at indexes >= n) and the rest are present keys. The
// tape is shuffled so hits and misses interleave randomly.
func wormProbeTape(gen dist.Generator, present []uint64, n, lookups, unsuccessfulPct int, seed uint64) (probes []uint64, wantHits int) {
	miss := lookups * unsuccessfulPct / 100
	hit := lookups - miss
	probes = make([]uint64, 0, lookups)
	for i := 0; i < hit; i++ {
		probes = append(probes, present[i%len(present)])
	}
	probes = append(probes, gen.AbsentKeys(n, miss)...)
	return dist.Shuffled(probes, seed), hit
}

// mops converts an operation count and duration into millions of
// operations per second.
func mops(ops int, d time.Duration) float64 {
	s := d.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(ops) / 1e6 / s
}
