package workload

import (
	"context"
	"fmt"
	"time"

	"repro/dist"
	"repro/hashfn"
	"repro/internal/prng"
	"repro/obs"
	"repro/table"
)

// Op codes of the RW tape.
const (
	OpInsert uint8 = iota
	OpDelete
	OpLookupHit
	OpLookupMiss
)

// Tape is a pre-generated RW operation stream. The same tape is replayed
// against every scheme so all tables see bit-identical workloads; the
// delete/lookup targets were chosen by simulating the live key set once,
// independent of any table implementation.
type Tape struct {
	Kinds []uint8
	Keys  []uint64

	Inserts, Deletes, Hits, Misses int
	// FinalLive is the number of live keys after the whole tape.
	FinalLive int
}

// Len returns the number of operations on the tape.
func (t *Tape) Len() int { return len(t.Kinds) }

// missBase is the generator index where guaranteed-absent lookup keys
// start; no insert ever reaches it (tapes are far shorter than 2^40 ops).
const missBase = uint64(1) << 40

// GenRWTape generates an RW tape of ops operations over a table initially
// holding the first initial keys of gen (§6):
//
//   - with probability updatePct% the operation is an update, split
//     insert:delete = 4:1;
//   - otherwise it is a lookup, split successful:unsuccessful = 3:1.
//
// Deletes and successful lookups target uniformly random live keys;
// inserts take the next fresh key of the distribution; unsuccessful
// lookups take keys from a disjoint index range of the same distribution.
func GenRWTape(gen dist.Generator, initial, ops, updatePct int, seed uint64) *Tape {
	if updatePct < 0 || updatePct > 100 {
		panic(fmt.Sprintf("workload: update percentage %d outside [0,100]", updatePct))
	}
	rng := prng.NewXoshiro256(seed ^ 0x7a9e7a9e7a9e7a9e)
	t := &Tape{
		Kinds: make([]uint8, 0, ops),
		Keys:  make([]uint64, 0, ops),
	}
	live := make([]uint64, initial)
	for i := range live {
		live[i] = gen.Key(uint64(i))
	}
	nextFresh := uint64(initial)
	nextMiss := missBase
	for i := 0; i < ops; i++ {
		if int(rng.Uint64n(100)) < updatePct {
			// Update: insert 4 : delete 1, falling back to insert when
			// nothing is left to delete.
			if rng.Uint64n(5) < 4 || len(live) == 0 {
				k := gen.Key(nextFresh)
				nextFresh++
				live = append(live, k)
				t.Kinds = append(t.Kinds, OpInsert)
				t.Keys = append(t.Keys, k)
				t.Inserts++
			} else {
				j := rng.Intn(len(live))
				k := live[j]
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				t.Kinds = append(t.Kinds, OpDelete)
				t.Keys = append(t.Keys, k)
				t.Deletes++
			}
			continue
		}
		// Lookup: successful 3 : unsuccessful 1.
		if rng.Uint64n(4) < 3 && len(live) > 0 {
			k := live[rng.Intn(len(live))]
			t.Kinds = append(t.Kinds, OpLookupHit)
			t.Keys = append(t.Keys, k)
			t.Hits++
		} else {
			k := gen.Key(nextMiss)
			nextMiss++
			t.Kinds = append(t.Kinds, OpLookupMiss)
			t.Keys = append(t.Keys, k)
			t.Misses++
		}
	}
	t.FinalLive = len(live)
	return t
}

// RWConfig parameterizes one RW experiment point.
type RWConfig struct {
	Scheme table.Scheme
	Family hashfn.Family
	Dist   dist.Kind
	// InitialKeys pre-fills the table before the timed stream; the paper
	// starts with 16 M keys at ~47% load factor.
	InitialKeys int
	// Ops is the length of the mixed stream (the paper runs 1000 M).
	Ops int
	// UpdatePct is the percentage of operations that are updates
	// (inserts+deletes); the paper sweeps {0, 5, 25, 50, 75, 100}.
	UpdatePct int
	// GrowAt is the load factor at which tables rehash; the paper sweeps
	// {0.5, 0.7, 0.9}.
	GrowAt float64
	Seed   uint64
	// Tape optionally supplies a pre-generated tape (shared across
	// schemes); when nil, one is generated from the other fields.
	Tape *Tape
	// Ctx cancels the concurrent replay between morsels; it is threaded
	// into the exec pool (nil means context.Background()).
	Ctx context.Context
	// LatencySample records every Nth replayed operation's latency into
	// the result's Latency snapshot. Zero means the default (every
	// 32nd); negative disables latency recording entirely. Sampling
	// keeps the recording cost (two clock reads plus two atomic adds
	// per sample) far below the replay's own per-op work.
	LatencySample int
}

// defaultLatencySample is the operation sampling stride when
// RWConfig.LatencySample (or ChaosConfig.LatencySample) is zero.
const defaultLatencySample = 32

// latencyEvery resolves a config's sampling stride: n, the default for
// zero, or 0 meaning disabled for negative values.
func latencyEvery(n int) int {
	if n == 0 {
		return defaultLatencySample
	}
	if n < 0 {
		return 0
	}
	return n
}

// RWResult reports one RW experiment point.
type RWResult struct {
	Label       string
	Ops         int
	Mops        float64
	MemoryBytes uint64
	FinalLen    int
	// Latency is the sampled per-operation latency distribution of the
	// timed replay (see RWConfig.LatencySample); zero-valued when
	// sampling is disabled.
	Latency obs.Snapshot
}

// initialCapacityFor returns a power-of-two capacity that places initial
// keys at just under 50% load factor, the paper's ~47% starting point.
func initialCapacityFor(initial int) int {
	c := 8
	for c < initial*2+1 {
		c *= 2
	}
	return c
}

// RunRW replays an RW tape against a freshly built table of the configured
// scheme and reports overall throughput and final memory. Lookup hit/miss
// counts are validated against the tape.
func RunRW(cfg RWConfig) (RWResult, error) {
	if cfg.Family == nil {
		cfg.Family = hashfn.MultFamily{}
	}
	if cfg.GrowAt <= 0 || cfg.GrowAt >= 1 {
		return RWResult{}, fmt.Errorf("workload: RW grow-at threshold must be in (0,1), got %v", cfg.GrowAt)
	}
	gen := dist.New(cfg.Dist, cfg.Seed)
	tape := cfg.Tape
	if tape == nil {
		tape = GenRWTape(gen, cfg.InitialKeys, cfg.Ops, cfg.UpdatePct, cfg.Seed)
	}
	// The RW stream is the dynamic (OLTP-style) case — exactly what the
	// Open façade targets — so the replay runs through a Handle: the
	// measured numbers include the one indirection every production
	// caller pays.
	m, err := table.Open(
		table.WithScheme(cfg.Scheme),
		table.WithCapacity(initialCapacityFor(cfg.InitialKeys)),
		table.WithMaxLoadFactor(cfg.GrowAt),
		table.WithHashFamily(cfg.Family),
		table.WithSeed(cfg.Seed),
	)
	if err != nil {
		return RWResult{}, err
	}
	res := RWResult{Label: string(cfg.Scheme) + cfg.Family.Name(), Ops: tape.Len()}

	// Untimed pre-fill.
	for i := 0; i < cfg.InitialKeys; i++ {
		m.Put(gen.Key(uint64(i)), uint64(i))
	}
	if m.Len() != cfg.InitialKeys {
		return res, fmt.Errorf("workload: RW prefill of %s expected %d entries, table has %d", res.Label, cfg.InitialKeys, m.Len())
	}

	every := latencyEvery(cfg.LatencySample)
	var lat *obs.Histogram
	if every > 0 {
		lat = obs.NewHistogram(1)
	}
	countdown := 0

	var hits, misses int
	var sink uint64
	start := time.Now()
	for i, kind := range tape.Kinds {
		k := tape.Keys[i]
		var t0 int64
		sampled := false
		if lat != nil {
			if countdown == 0 {
				countdown = every
				sampled = true
				t0 = obs.Now()
			}
			countdown--
		}
		switch kind {
		case OpInsert:
			m.Put(k, k)
		case OpDelete:
			m.Delete(k)
		default:
			if v, ok := m.Get(k); ok {
				hits++
				sink ^= v
			} else {
				misses++
			}
		}
		if sampled {
			lat.Record(0, obs.Now()-t0)
		}
	}
	elapsed := time.Since(start)
	_ = sink

	if hits != tape.Hits || misses != tape.Misses {
		return res, fmt.Errorf("workload: RW replay of %s observed %d hits/%d misses, tape has %d/%d",
			res.Label, hits, misses, tape.Hits, tape.Misses)
	}
	if want := cfg.InitialKeys + tape.Inserts - tape.Deletes; m.Len() != want {
		return res, fmt.Errorf("workload: RW replay of %s left %d entries, want %d", res.Label, m.Len(), want)
	}
	res.Mops = mops(tape.Len(), elapsed)
	res.MemoryBytes = m.MemoryFootprint()
	res.FinalLen = m.Len()
	if lat != nil {
		res.Latency = lat.Snapshot()
	}
	return res, nil
}
