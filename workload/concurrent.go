package workload

// The shared-memory concurrent variant of the RW experiment: the same
// mixed insert/delete/lookup stream as RunRW, replayed by T workers of
// one exec pool (each tape is one claimed unit of work) against ONE
// table served by the sharded engine (a Handle opened WithPartitions).
// Each goroutine replays its own tape over a disjoint
// index range of the distribution — dist generators are injective, so the
// goroutines' key sets are disjoint and every goroutine's hit/miss counts
// remain exactly checkable while all of them contend on the shared
// shards, including mid-migration reads while shards resize
// incrementally under the write load.

import (
	"fmt"
	"time"

	"repro/decision"
	"repro/dist"
	"repro/exec"
	"repro/hashfn"
	"repro/obs"
	"repro/table"
)

// threadStride spaces the goroutines' generator index ranges. Each
// goroutine's whole window — inserts below missBase (2^40) plus miss
// lookups at missBase+i — must fit inside its stride, so the stride sits
// a factor of two above missBase: goroutine g uses indexes in
// [g*2^41, g*2^41 + 2^40 + tapeLen), disjoint from every other
// goroutine's window for any thread count.
const threadStride = uint64(1) << 41

// offsetGen shifts a distribution's index space by a fixed base, carving
// disjoint per-goroutine key ranges out of one injective generator.
type offsetGen struct {
	gen  dist.Generator
	base uint64
}

func (g offsetGen) Kind() dist.Kind     { return g.gen.Kind() }
func (g offsetGen) Key(i uint64) uint64 { return g.gen.Key(g.base + i) }

func (g offsetGen) Keys(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.Key(uint64(i))
	}
	return out
}

func (g offsetGen) AbsentKeys(n, m int) []uint64 {
	out := make([]uint64, m)
	for i := range out {
		out[i] = g.Key(uint64(n + i))
	}
	return out
}

// RWConcurrentResult reports one concurrent RW experiment point.
type RWConcurrentResult struct {
	Label   string
	Threads int
	Shards  int
	// Ops is the total operation count across all goroutines; Mops is
	// aggregate wall-clock throughput (all goroutines running together).
	Ops         int
	Mops        float64
	MemoryBytes uint64
	FinalLen    int
	// Migrations is the number of incremental shard resizes completed
	// during the run (pre-fill included).
	Migrations uint64
	// Latency is the sampled per-operation latency distribution of the
	// timed replay, folded across all goroutines (each goroutine records
	// into its own histogram stripe); zero-valued when sampling is
	// disabled (see RWConfig.LatencySample).
	Latency obs.Snapshot
}

// RunRWConcurrent replays cfg's RW workload with threads goroutines
// sharing one sharded handle (shards = power of two >= 2x threads). Each
// goroutine generates and replays its own tape of cfg.Ops operations over
// a disjoint key range, with cfg.InitialKeys pre-filled per goroutine
// untimed; lookup hit/miss counts are validated per goroutine and the
// final table size against the tapes. cfg.Tape is ignored (tapes are
// per-goroutine by construction).
func RunRWConcurrent(cfg RWConfig, threads int) (RWConcurrentResult, error) {
	if threads < 1 {
		return RWConcurrentResult{}, fmt.Errorf("workload: concurrent RW needs at least 1 thread, got %d", threads)
	}
	if cfg.Family == nil {
		cfg.Family = hashfn.MultFamily{}
	}
	if cfg.GrowAt <= 0 || cfg.GrowAt >= 1 {
		return RWConcurrentResult{}, fmt.Errorf("workload: RW grow-at threshold must be in (0,1), got %v", cfg.GrowAt)
	}
	shards := decision.ShardsFor(threads)
	if shards < 1 {
		shards = 1
	}
	m, err := table.Open(
		table.WithScheme(cfg.Scheme),
		table.WithCapacity(initialCapacityFor(cfg.InitialKeys*threads)),
		table.WithMaxLoadFactor(cfg.GrowAt),
		table.WithHashFamily(cfg.Family),
		table.WithSeed(cfg.Seed),
		table.WithPartitions(shards),
	)
	if err != nil {
		return RWConcurrentResult{}, err
	}
	res := RWConcurrentResult{
		Label:   fmt.Sprintf("%s%s/%dthr", cfg.Scheme, cfg.Family.Name(), threads),
		Threads: threads,
		Shards:  m.Partitions(),
	}

	base := dist.New(cfg.Dist, cfg.Seed)
	gens := make([]offsetGen, threads)
	tapes := make([]*Tape, threads)
	for g := range gens {
		gens[g] = offsetGen{gen: base, base: uint64(g) * threadStride}
		tapes[g] = GenRWTape(gens[g], cfg.InitialKeys, cfg.Ops, cfg.UpdatePct, cfg.Seed+uint64(g))
		res.Ops += tapes[g].Len()
	}

	// One exec pool drives both phases: each tape is one unit of work
	// claimed by a pool worker, so the fan-out is exactly threads and the
	// error convention is the pool's first-error propagation.
	pool := exec.NewPool(exec.Config{Workers: threads, Ctx: cfg.Ctx})
	defer pool.Close()

	// Untimed concurrent pre-fill (growth/migrations start here already).
	if err := pool.ForEach(threads, func(_, g int) error {
		for i := 0; i < cfg.InitialKeys; i++ {
			if _, err := m.Put(gens[g].Key(uint64(i)), uint64(i)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return res, err
	}
	if m.Len() != cfg.InitialKeys*threads {
		return res, fmt.Errorf("workload: concurrent RW prefill expected %d entries, table has %d", cfg.InitialKeys*threads, m.Len())
	}

	every := latencyEvery(cfg.LatencySample)
	var lat *obs.Histogram
	if every > 0 {
		lat = obs.NewHistogram(threads)
	}

	// Timed replay: all tapes at once against the shared handle.
	start := time.Now()
	err = pool.ForEach(threads, func(_, g int) error {
		tape := tapes[g]
		var hits, misses int
		var sink uint64
		countdown := 0
		for i, kind := range tape.Kinds {
			k := tape.Keys[i]
			var t0 int64
			sampled := false
			if lat != nil {
				if countdown == 0 {
					countdown = every
					sampled = true
					t0 = obs.Now()
				}
				countdown--
			}
			switch kind {
			case OpInsert:
				if _, err := m.Put(k, k); err != nil {
					return err
				}
			case OpDelete:
				m.Delete(k)
			default:
				if v, ok := m.Get(k); ok {
					hits++
					sink ^= v
				} else {
					misses++
				}
			}
			if sampled {
				lat.Record(g, obs.Now()-t0)
			}
		}
		_ = sink
		if hits != tape.Hits || misses != tape.Misses {
			return fmt.Errorf("workload: goroutine %d observed %d hits/%d misses, tape has %d/%d",
				g, hits, misses, tape.Hits, tape.Misses)
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return res, err
	}

	want := 0
	for _, tape := range tapes {
		want += cfg.InitialKeys + tape.Inserts - tape.Deletes
	}
	if m.Len() != want {
		return res, fmt.Errorf("workload: concurrent RW replay left %d entries, want %d", m.Len(), want)
	}
	res.Mops = mops(res.Ops, elapsed)
	res.MemoryBytes = m.MemoryFootprint()
	res.FinalLen = m.Len()
	res.Migrations = m.EngineStats().MigrationsDone
	if lat != nil {
		res.Latency = lat.Snapshot()
	}
	return res, nil
}
