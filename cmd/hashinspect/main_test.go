package main

import "testing"

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range []string{"ChainedH8", "ChainedH24", "LP", "LPSoA", "QP", "RH", "DH", "CuckooH4"} {
		if err := run(scheme, "Mult", "Sparse", 12, 0.7, 1); err != nil {
			t.Fatalf("run(%s): %v", scheme, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("LP", "CRC", "Sparse", 12, 0.7, 1); err == nil {
		t.Error("unknown hash function accepted")
	}
	if err := run("LP", "Mult", "Zipf", 12, 0.7, 1); err == nil {
		t.Error("unknown distribution accepted")
	}
	if err := run("LP", "Mult", "Sparse", 12, 1.5, 1); err == nil {
		t.Error("load factor > 1 accepted")
	}
	if err := run("bogus", "Mult", "Sparse", 12, 0.5, 1); err == nil {
		t.Error("unknown scheme accepted")
	}
}
