// Command hashinspect builds one table at a chosen design point and prints
// the internal statistics behind the paper's analysis: displacement
// distribution (mean/variance/max/total), cluster lengths for the probing
// schemes, chain lengths and collision rate for the chained schemes, and —
// for linear probing — the measured probe lengths next to Knuth's formulas.
//
// Usage:
//
//	hashinspect -scheme LP -fn Mult -dist Sparse -slots 20 -load-factor 0.9
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/dist"
	"repro/hashfn"
	"repro/stats"
	"repro/table"
	"repro/workload"
)

func main() {
	var (
		scheme     = flag.String("scheme", "LP", "hashing scheme: ChainedH8|ChainedH24|LP|LPSoA|QP|RH|DH|CuckooH4")
		fnName     = flag.String("fn", "Mult", "hash function family: Mult|MultAdd|Tab|Murmur")
		distName   = flag.String("dist", "Sparse", "key distribution: Dense|Grid|Sparse")
		slotsLog2  = flag.Int("slots", 20, "log2 of the open-addressing capacity")
		loadFactor = flag.Float64("load-factor", 0.7, "target load factor in (0,1)")
		seed       = flag.Uint64("seed", 42, "PRNG seed")
	)
	flag.Parse()

	if err := run(*scheme, *fnName, *distName, *slotsLog2, *loadFactor, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "hashinspect: %v\n", err)
		os.Exit(1)
	}
}

func run(scheme, fnName, distName string, slotsLog2 int, alpha float64, seed uint64) error {
	family, err := hashfn.FamilyByName(fnName)
	if err != nil {
		return err
	}
	kind, err := dist.KindByName(distName)
	if err != nil {
		return err
	}
	if alpha <= 0 || alpha >= 1 {
		return fmt.Errorf("load factor %v outside (0,1)", alpha)
	}
	capacity := 1 << slotsLog2
	n := int(alpha * float64(capacity))

	m, err := workload.NewWORMTable(table.Scheme(scheme), family, capacity, alpha, seed)
	if err != nil {
		return err
	}
	gen := dist.New(kind, seed)
	for i, k := range dist.Shuffled(gen.Keys(n), seed+1) {
		m.Put(k, uint64(i))
	}

	fmt.Printf("%s%s, %s distribution, %d entries in %d slots (load factor %.2f)\n",
		m.Name(), family.Name(), kind, m.Len(), m.Capacity(), m.LoadFactor())
	fmt.Printf("memory footprint: %.1f MB\n", float64(m.MemoryFootprint())/(1<<20))

	type displacer interface{ Displacements() []int }
	type clusterer interface{ ClusterLengths() []int }
	type chainer interface{ ChainLengths() []int }

	if d, ok := m.(displacer); ok {
		s := stats.Summarize(d.Displacements())
		fmt.Printf("\ndisplacements: total=%d mean=%.2f stddev=%.2f max=%d\n",
			s.Total, s.Mean, s.StdDev, s.Max)
		if scheme == "LP" || scheme == "LPSoA" {
			fmt.Printf("Knuth expectation at alpha=%.2f: successful probes %.2f (displacement %.2f), unsuccessful probes %.2f\n",
				alpha, stats.LPExpectedProbesSuccessful(alpha),
				stats.LPExpectedDisplacement(alpha),
				stats.LPExpectedProbesUnsuccessful(alpha))
		}
	}
	if c, ok := m.(clusterer); ok {
		s := stats.Summarize(c.ClusterLengths())
		fmt.Printf("clusters: count=%d mean=%.2f max=%d\n", s.Count, s.Mean, s.Max)
	}
	if c, ok := m.(chainer); ok {
		lengths := c.ChainLengths()
		s := stats.Summarize(lengths)
		overflow := 0
		for _, l := range lengths {
			overflow += l - 1
		}
		fmt.Printf("chains: non-empty=%d mean=%.2f max=%d, collision rate=%.1f%% (expected %.1f%%)\n",
			s.Count, s.Mean, s.Max,
			100*float64(overflow)/float64(m.Len()),
			100*stats.ExpectedCollisionRate(m.Len(), m.Capacity()))
	}
	if ck, ok := m.(*table.Cuckoo); ok {
		fmt.Printf("cuckoo: rehashes=%d total kicks=%d subtable occupancy=%v\n",
			ck.Rehashes(), ck.TotalKicks(), ck.SubtableOccupancy())
	}
	return nil
}
