// Command obsdemo drives a concurrent mixed read/write workload against
// a sharded table with the full observability stack attached — exec pool
// metrics and trace ring, shard engine metrics, an obs.Registry — and
// exports what it recorded.
//
// One-shot mode (the default) replays the workload, prints the
// Prometheus text exposition to stdout, and with -trace writes the exec
// scheduling trace as Chrome trace-event JSON (load it in
// chrome://tracing or ui.perfetto.dev):
//
//	obsdemo -threads 8 -ops 200000 -trace trace.json
//
// With -serve the process then keeps serving the registry over HTTP:
// /metrics (Prometheus text format), /debug/vars (expvar, including the
// published registry snapshot), and /debug/pprof/* (the runtime
// profiles) — all on an explicit mux, so nothing leaks onto the default
// one:
//
//	obsdemo -threads 8 -serve :8080
//	curl localhost:8080/metrics
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"

	"repro/dist"
	"repro/exec"
	"repro/obs"
	"repro/shard"
	"repro/table"
	"repro/workload"
)

type config struct {
	threads   int
	initial   int
	ops       int
	updatePct int
	scheme    string
	growAt    float64
	seed      uint64
	tracePath string
	traceCap  int
	serve     string
}

func main() {
	var cfg config
	flag.IntVar(&cfg.threads, "threads", 4, "replaying goroutines (exec pool workers)")
	flag.IntVar(&cfg.initial, "initial", 1<<14, "keys pre-filled per thread before the timed replay")
	flag.IntVar(&cfg.ops, "ops", 1<<17, "mixed operations per thread")
	flag.IntVar(&cfg.updatePct, "update-pct", 25, "percentage of operations that are updates [0,100]")
	flag.StringVar(&cfg.scheme, "scheme", string(table.SchemeLP), "table scheme (LP, RH, CH2, ...)")
	flag.Float64Var(&cfg.growAt, "grow-at", 0.85, "shard growth threshold in (0,1)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "workload and hashing seed")
	flag.StringVar(&cfg.tracePath, "trace", "", "write the exec trace as Chrome trace JSON to this path")
	flag.IntVar(&cfg.traceCap, "trace-events", 1<<14, "trace ring capacity per worker")
	flag.StringVar(&cfg.serve, "serve", "", "after the replay, serve /metrics, /debug/vars and /debug/pprof on this address")
	flag.Parse()
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "obsdemo: %v\n", err)
		os.Exit(2)
	}
}

// chunksPerThread splits each thread's tape into this many pool tasks,
// so the trace shows real dynamic scheduling (claims and steals) rather
// than one monolithic task per worker.
const chunksPerThread = 8

func run(out io.Writer, cfg config) error {
	if cfg.threads < 1 {
		return fmt.Errorf("need at least 1 thread, got %d", cfg.threads)
	}

	// The instrumented pool: metrics striped per worker, one trace ring
	// per worker.
	poolMetrics := exec.NewPoolMetrics(cfg.threads)
	trace := exec.NewTrace(cfg.threads, cfg.traceCap)
	pool := exec.NewPool(exec.Config{
		Workers: cfg.threads,
		Ctx:     context.Background(),
		Metrics: poolMetrics,
		Trace:   trace,
	})
	defer pool.Close()

	// The instrumented engine: a sharded handle with shard metrics
	// attached before any traffic.
	shards := 2 * cfg.threads
	h, err := table.Open(
		table.WithScheme(table.Scheme(cfg.scheme)),
		table.WithCapacity(4*cfg.initial*cfg.threads),
		table.WithMaxLoadFactor(cfg.growAt),
		table.WithSeed(cfg.seed),
		table.WithPartitions(shards),
	)
	if err != nil {
		return err
	}
	engine := h.Engine()
	engineMetrics := shard.NewMetrics(engine.Shards())
	engine.SetMetrics(engineMetrics)

	reg := obs.NewRegistry()
	poolMetrics.Register(reg, "")
	engineMetrics.Register(reg, "")
	reg.RegisterFunc("engine_entries", "live entries across shards", func() float64 {
		return float64(h.Len())
	})
	reg.RegisterFunc("engine_load_factor", "live entries over total slot capacity", func() float64 {
		return engine.LoadFactor()
	})
	reg.RegisterFunc("engine_degraded_shards", "shards in the degraded-but-serving state", func() float64 {
		return float64(engine.Stats().Degraded)
	})
	reg.RegisterFunc("engine_migrations_done", "incremental resizes completed", func() float64 {
		return float64(engine.Stats().MigrationsDone)
	})
	reg.PublishExpvar("repro_registry")

	// Per-thread tapes over per-thread generators. The demo drives load
	// rather than a differential check, so the threads' key spaces may
	// overlap — the engine is safe under that, and it keeps setup plain.
	tapes := make([]*workload.Tape, cfg.threads)
	gens := make([]dist.Generator, cfg.threads)
	for g := range tapes {
		gens[g] = dist.New(dist.Dense, cfg.seed+uint64(g)*1257787)
		tapes[g] = workload.GenRWTape(gens[g], cfg.initial, cfg.ops, cfg.updatePct, cfg.seed+uint64(g))
	}

	// Untimed pre-fill, one pool task per thread.
	if err := pool.ForEach(cfg.threads, func(_, g int) error {
		for i := 0; i < cfg.initial; i++ {
			if _, err := h.Put(gens[g].Key(uint64(i)), uint64(i)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// The replay: each tape is split into chunks claimed dynamically, so
	// the scheduling trace shows the pool balancing uneven chunk costs.
	tasks := cfg.threads * chunksPerThread
	if err := pool.ForEach(tasks, func(_, task int) error {
		tape := tapes[task%cfg.threads]
		chunk := (tape.Len() + chunksPerThread - 1) / chunksPerThread
		lo := (task / cfg.threads) * chunk
		hi := lo + chunk
		if hi > tape.Len() {
			hi = tape.Len()
		}
		for i := lo; i < hi; i++ {
			k := tape.Keys[i]
			switch tape.Kinds[i] {
			case workload.OpInsert:
				if _, err := h.Put(k, k); err != nil {
					return err
				}
			case workload.OpDelete:
				h.Delete(k)
			default:
				h.Get(k)
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if cfg.tracePath != "" {
		f, err := os.Create(cfg.tracePath)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "# trace: %d events written to %s (%d dropped)\n",
			len(trace.Events()), cfg.tracePath, trace.Dropped())
	}

	if cfg.serve != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg)
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(out, "# serving /metrics, /debug/vars, /debug/pprof on %s\n", cfg.serve)
		return http.ListenAndServe(cfg.serve, mux)
	}

	reg.WriteText(out)
	return nil
}
