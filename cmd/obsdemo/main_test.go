package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/table"
)

func smallConfig(tracePath string) config {
	return config{
		threads:   2,
		initial:   256,
		ops:       2048,
		updatePct: 25,
		scheme:    string(table.SchemeLP),
		growAt:    0.85,
		seed:      1,
		tracePath: tracePath,
		traceCap:  1 << 12,
	}
}

func TestRunExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, smallConfig("")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE exec_tasks_total counter",
		"# TYPE exec_task_nanos summary",
		`shard_op_nanos{op="get",quantile="0.99"}`,
		"# TYPE shard_read_retries_total counter",
		"# TYPE shard_read_fallbacks_total counter",
		"# TYPE shard_view_republish_total counter",
		"# TYPE engine_entries gauge",
		"engine_migrations_done",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}
}

func TestRunChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := run(&buf, smallConfig(path)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# trace:") {
		t.Fatalf("output missing trace summary line:\n%s", buf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid Chrome trace JSON: %v", err)
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
		}
		if ev.Pid != 1 {
			t.Fatalf("event %+v has pid %d, want 1", ev, ev.Pid)
		}
	}
	// 2 prefill tasks + 2*chunksPerThread replay chunks, each a complete
	// event; thread metadata for both workers plus the process name.
	if wantTasks := 2 + 2*chunksPerThread; complete != wantTasks {
		t.Fatalf("trace has %d complete events, want %d", complete, wantTasks)
	}
	if meta < 3 {
		t.Fatalf("trace has %d metadata events, want process + 2 workers", meta)
	}
}

func TestRunRejectsBadThreads(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallConfig("")
	cfg.threads = 0
	if err := run(&buf, cfg); err == nil {
		t.Fatal("run accepted 0 threads")
	}
}
