// Command decide answers "which hash table should I use?" by walking the
// paper's Figure 8 decision graph for a workload described on the command
// line.
//
// Usage:
//
//	decide -load-factor 0.9 -unsuccessful 25 -write-heavy=false -dynamic=false -dense=false
//
// The output names the recommended ⟨scheme, hash function⟩ and prints the
// decision path with the paper sections supporting each edge. With -json
// the recommendation is emitted as machine-readable JSON instead:
//
//	{"scheme":"CuckooH4","family":"Mult","path":[...],"label":"CH4Mult"}
//
// The JSON path resolves the recommendation by actually opening a handle
// through table.Open(WithWorkload(...)), so the emitted choice is exactly
// what the library would pick for the same description.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/decision"
	"repro/table"
)

func main() {
	var (
		loadFactor   = flag.Float64("load-factor", 0.5, "expected operating load factor in (0,1)")
		unsuccessful = flag.Int("unsuccessful", 0, "expected percentage of lookups probing absent keys [0,100]")
		writeHeavy   = flag.Bool("write-heavy", false, "more writes (inserts+deletes) than reads")
		dynamic      = flag.Bool("dynamic", false, "table grows/shrinks over its lifetime (OLTP-like)")
		dense        = flag.Bool("dense", false, "keys are densely distributed integers (e.g. generated primary keys)")
		threads      = flag.Int("threads", 1, "goroutines expected to share the table concurrently; >1 adds shard-count and exec worker-count recommendations")
		jsonOut      = flag.Bool("json", false, "emit the decision.Choice (scheme, family, label, shards, workers, path) as JSON")
	)
	flag.Parse()

	w := decision.Workload{
		LoadFactor:      *loadFactor,
		UnsuccessfulPct: *unsuccessful,
		WriteHeavy:      *writeHeavy,
		Dynamic:         *dynamic,
		Dense:           *dense,
	}
	if err := run(os.Stdout, w, *threads, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "decide: %v\n", err)
		os.Exit(2)
	}
}

// jsonChoice is the -json payload: the decision.Choice plus its composed
// label, so scripts need not re-derive the paper-style name.
type jsonChoice struct {
	decision.Choice
	Label string `json:"label"`
}

func run(out io.Writer, w decision.Workload, threads int, asJSON bool) error {
	shards := decision.ShardsFor(threads)
	workers := decision.WorkersFor(threads)
	if asJSON {
		// Resolve through the Open façade rather than decision.Recommend:
		// the emitted choice is then by construction the one the library
		// acts on for this description. The handle exists only to be read,
		// so it is opened at the minimum capacity.
		h, err := table.Open(table.WithWorkload(w), table.WithCapacity(8))
		if err != nil {
			return err
		}
		choice := decision.Choice{Scheme: h.Scheme(), Family: h.HashName(), Shards: shards, Workers: workers, Path: h.DecisionPath()}
		enc := json.NewEncoder(out)
		return enc.Encode(jsonChoice{Choice: choice, Label: choice.Label()})
	}
	choice, err := decision.Recommend(w)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Recommendation: %s\n", choice.Label())
	if shards > 0 {
		fmt.Fprintf(out, "Striping: WithPartitions(%d) for %d concurrent goroutines (power of two >= 2x threads)\n", shards, threads)
	}
	if workers > 0 {
		fmt.Fprintf(out, "Execution: exec.Config{Workers: %d} for the parallel operators (threads clamped to GOMAXPROCS)\n", workers)
	}
	fmt.Fprintln(out, "Decision path:")
	for i, step := range choice.Path {
		fmt.Fprintf(out, "  %d. %s\n", i+1, step)
	}
	return nil
}
