// Command decide answers "which hash table should I use?" by walking the
// paper's Figure 8 decision graph for a workload described on the command
// line.
//
// Usage:
//
//	decide -load-factor 0.9 -unsuccessful 25 -write-heavy=false -dynamic=false -dense=false
//
// The output names the recommended ⟨scheme, hash function⟩ and prints the
// decision path with the paper sections supporting each edge.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/decision"
)

func main() {
	var (
		loadFactor   = flag.Float64("load-factor", 0.5, "expected operating load factor in (0,1)")
		unsuccessful = flag.Int("unsuccessful", 0, "expected percentage of lookups probing absent keys [0,100]")
		writeHeavy   = flag.Bool("write-heavy", false, "more writes (inserts+deletes) than reads")
		dynamic      = flag.Bool("dynamic", false, "table grows/shrinks over its lifetime (OLTP-like)")
		dense        = flag.Bool("dense", false, "keys are densely distributed integers (e.g. generated primary keys)")
	)
	flag.Parse()

	choice, err := decision.Recommend(decision.Workload{
		LoadFactor:      *loadFactor,
		UnsuccessfulPct: *unsuccessful,
		WriteHeavy:      *writeHeavy,
		Dynamic:         *dynamic,
		Dense:           *dense,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "decide: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("Recommendation: %s\n", choice.Label())
	fmt.Println("Decision path:")
	for i, step := range choice.Path {
		fmt.Printf("  %d. %s\n", i+1, step)
	}
}
