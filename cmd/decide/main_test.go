package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/decision"
)

func TestRunText(t *testing.T) {
	var buf bytes.Buffer
	w := decision.Workload{LoadFactor: 0.9, UnsuccessfulPct: 25}
	if err := run(&buf, w, 1, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Recommendation: CH4Mult") {
		t.Fatalf("text output missing recommendation:\n%s", out)
	}
	if !strings.Contains(out, "Decision path:") {
		t.Fatalf("text output missing path:\n%s", out)
	}
	if strings.Contains(out, "Striping:") {
		t.Fatalf("single-threaded output should not recommend striping:\n%s", out)
	}
}

func TestRunTextThreads(t *testing.T) {
	var buf bytes.Buffer
	w := decision.Workload{LoadFactor: 0.9, UnsuccessfulPct: 25}
	if err := run(&buf, w, 6, false); err != nil {
		t.Fatal(err)
	}
	// 6 threads -> power of two >= 12 -> 16 shards.
	if !strings.Contains(buf.String(), "WithPartitions(16)") {
		t.Fatalf("text output missing shard recommendation:\n%s", buf.String())
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	w := decision.Workload{LoadFactor: 0.9, UnsuccessfulPct: 25}
	if err := run(&buf, w, 8, true); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Scheme string   `json:"scheme"`
		Family string   `json:"family"`
		Label  string   `json:"label"`
		Shards int      `json:"shards"`
		Path   []string `json:"path"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	// 90% load factor, read-mostly, 25% misses -> CuckooH4 per Figure 8,
	// and -json must agree with the decision package.
	want := decision.MustRecommend(w)
	if got.Scheme != string(want.Scheme) || got.Family != want.Family || got.Label != want.Label() {
		t.Fatalf("JSON choice = %+v, want %v", got, want)
	}
	if len(got.Path) == 0 {
		t.Fatal("JSON output lost the decision path")
	}
	if got.Shards != 16 {
		t.Fatalf("JSON shards = %d, want 16 for 8 threads", got.Shards)
	}
}

func TestRunJSONInvalidWorkload(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, decision.Workload{LoadFactor: 1.5}, 1, true); err == nil {
		t.Fatal("invalid workload should error")
	}
}
