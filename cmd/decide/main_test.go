package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/decision"
)

func TestRunText(t *testing.T) {
	var buf bytes.Buffer
	w := decision.Workload{LoadFactor: 0.9, UnsuccessfulPct: 25}
	if err := run(&buf, w, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Recommendation: CH4Mult") {
		t.Fatalf("text output missing recommendation:\n%s", out)
	}
	if !strings.Contains(out, "Decision path:") {
		t.Fatalf("text output missing path:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	w := decision.Workload{LoadFactor: 0.9, UnsuccessfulPct: 25}
	if err := run(&buf, w, true); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Scheme string   `json:"scheme"`
		Family string   `json:"family"`
		Label  string   `json:"label"`
		Path   []string `json:"path"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	// 90% load factor, read-mostly, 25% misses -> CuckooH4 per Figure 8,
	// and -json must agree with the decision package.
	want := decision.MustRecommend(w)
	if got.Scheme != string(want.Scheme) || got.Family != want.Family || got.Label != want.Label() {
		t.Fatalf("JSON choice = %+v, want %v", got, want)
	}
	if len(got.Path) == 0 {
		t.Fatal("JSON output lost the decision path")
	}
}

func TestRunJSONInvalidWorkload(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, decision.Workload{LoadFactor: 1.5}, true); err == nil {
		t.Fatal("invalid workload should error")
	}
}
