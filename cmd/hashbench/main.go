// Command hashbench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints the same rows/series the paper plots;
// EXPERIMENTS.md maps outputs back to the paper's claims.
//
// Usage:
//
//	hashbench -experiment fig2            # Figure 2 (WORM, low load factors)
//	hashbench -experiment fig4 -slots 24  # Figure 4 at 2^24 slots
//	hashbench -experiment all -v          # everything, with progress lines
//
// Experiments: fig2, fig3, fig4, fig5, fig6, fig7, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run: fig2|fig3|fig4|fig5|fig6|fig7|layout|all")
		slotsLog2  = flag.Int("slots", 20, "log2 of the open-addressing capacity for WORM figures (paper: 30)")
		lookups    = flag.Int("lookups", 0, "lookups per mix (0 = one per resident key)")
		rwInitial  = flag.Int("rw-initial", 1<<16, "initial keys for the RW workload (paper: 16M)")
		rwOps      = flag.Int("rw-ops", 1<<22, "operations in the RW stream (paper: 1000M)")
		repeats    = flag.Int("repeats", 1, "average throughputs over this many seeded runs (paper: 3)")
		allFams    = flag.Bool("all-functions", false, "sweep all four hash functions, not just the Mult/Murmur subset the paper plots")
		seed       = flag.Uint64("seed", 42, "PRNG seed (experiments are deterministic per seed)")
		verbose    = flag.Bool("v", false, "print one progress line per experiment point")
	)
	flag.Parse()

	if *slotsLog2 < 4 || *slotsLog2 > 30 {
		fmt.Fprintf(os.Stderr, "hashbench: -slots %d outside [4,30]\n", *slotsLog2)
		os.Exit(2)
	}
	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	opt := bench.Options{
		Capacity:    1 << *slotsLog2,
		Lookups:     *lookups,
		RWInitial:   *rwInitial,
		RWOps:       *rwOps,
		Repeats:     *repeats,
		AllFamilies: *allFams,
		Seed:        *seed,
		Log:         log,
	}

	if err := run(*experiment, opt, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hashbench: %v\n", err)
		os.Exit(1)
	}
}

func run(experiment string, opt bench.Options, w io.Writer) error {
	switch experiment {
	case "fig2":
		exps, err := bench.RunFig2(opt)
		if err != nil {
			return err
		}
		bench.RenderFig2(w, exps)
	case "fig3":
		exps, err := bench.RunFig2(opt)
		if err != nil {
			return err
		}
		bench.RenderFig3(w, bench.Fig3FromFig2(exps))
	case "fig4":
		exps, err := bench.RunFig4(opt)
		if err != nil {
			return err
		}
		bench.RenderFig4(w, exps)
	case "fig5":
		exps, err := bench.RunFig5(opt)
		if err != nil {
			return err
		}
		bench.RenderFig5(w, exps)
	case "fig6":
		res, err := bench.RunFig6(opt)
		if err != nil {
			return err
		}
		bench.RenderFig6(w, res)
	case "fig7":
		series, err := bench.RunFig7(opt)
		if err != nil {
			return err
		}
		bench.RenderFig7(w, series)
	case "layout":
		points, err := bench.RunLayoutModel(opt)
		if err != nil {
			return err
		}
		bench.RenderLayoutModel(w, points)
	case "all":
		for _, e := range []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "layout"} {
			if err := run(e, opt, w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	default:
		return fmt.Errorf("unknown experiment %q (want fig2|fig3|fig4|fig5|fig6|fig7|layout|all)", experiment)
	}
	return nil
}
