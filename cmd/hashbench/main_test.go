package main

import (
	"strings"
	"testing"

	"repro/bench"
)

func tinyOpts() bench.Options {
	return bench.Options{
		Capacity:  1 << 10,
		Lookups:   256,
		RWInitial: 1 << 8,
		RWOps:     1 << 11,
		Fig6Caps:  []int{1 << 9, 1 << 10, 1 << 11},
		Seed:      3,
	}
}

func TestRunDispatch(t *testing.T) {
	cases := map[string]string{
		"fig2":   "Figure 2",
		"fig3":   "Figure 3",
		"fig4":   "Figure 4",
		"fig5":   "Figure 5",
		"fig6":   "Figure 6",
		"fig7":   "Figure 7",
		"layout": "layout cache-line analysis",
	}
	for exp, marker := range cases {
		var sb strings.Builder
		if err := run(exp, tinyOpts(), &sb); err != nil {
			t.Fatalf("run(%s): %v", exp, err)
		}
		if !strings.Contains(sb.String(), marker) {
			t.Fatalf("run(%s) output missing %q", exp, marker)
		}
	}
}

func TestRunAll(t *testing.T) {
	var sb strings.Builder
	if err := run("all", tinyOpts(), &sb); err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7"} {
		if !strings.Contains(sb.String(), marker) {
			t.Fatalf("run(all) output missing %q", marker)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	var sb strings.Builder
	if err := run("fig9", tinyOpts(), &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
