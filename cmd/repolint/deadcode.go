package main

// The deadcode subcommand replaces the former CI pipeline
//
//	deadcode -test ./... | tee deadcode.txt
//	! grep -E 'func: ([^ ]*\.)?[a-z]...' deadcode.txt
//
// with an allowlist: `deadcode -test ./... | repolint deadcode -allow
// .deadcode-allow`. Every unexported unreachable function fails the
// check unless its exact name (bare or Type.method) appears in the
// allowlist file, so exemptions are individually named and reviewed
// instead of being regexed around.

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"unicode"
	"unicode/utf8"
)

// runDeadcode filters deadcode output on stdin through the allowlist
// and returns the process exit code.
func runDeadcode(args []string) int {
	fs := flag.NewFlagSet("repolint deadcode", flag.ContinueOnError)
	allowPath := fs.String("allow", "", "allowlist file: one function name per line, # comments")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	allow := map[string]bool{}
	if *allowPath != "" {
		var err error
		allow, err = readAllowlist(*allowPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repolint deadcode: %v\n", err)
			return 1
		}
	}

	offenders, err := filterDeadcode(os.Stdin, allow)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint deadcode: reading input: %v\n", err)
		return 1
	}
	if len(offenders) == 0 {
		return 0
	}
	for _, line := range offenders {
		fmt.Fprintln(os.Stderr, line)
	}
	fmt.Fprintf(os.Stderr, "repolint deadcode: %d unexported unreachable function(s) not in the allowlist\n", len(offenders))
	return 2
}

func readAllowlist(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading allowlist: %w", err)
	}
	allow := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			allow[line] = true
		}
	}
	return allow, nil
}

// filterDeadcode scans deadcode's `<position>: unreachable func: <name>`
// lines and returns the ones naming unexported functions absent from
// the allowlist. Exported dead functions are tolerated: they are API
// surface kept deliberately (alternate probe schemes, bench-only entry
// points), whereas an unexported unreachable function is pure rot.
func filterDeadcode(r io.Reader, allow map[string]bool) ([]string, error) {
	const marker = "unreachable func: "
	var offenders []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		i := strings.Index(line, marker)
		if i < 0 {
			continue
		}
		name := strings.TrimSpace(line[i+len(marker):])
		if name == "" || allow[name] {
			continue
		}
		if isUnexportedFunc(name) {
			offenders = append(offenders, line)
		}
	}
	return offenders, sc.Err()
}

// isUnexportedFunc reports whether a deadcode function name — "helper"
// or "Type.method" — denotes an unexported function or method.
func isUnexportedFunc(name string) bool {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	r, _ := utf8.DecodeRuneInString(name)
	return r != utf8.RuneError && unicode.IsLower(r)
}
