// Command repolint runs the repo's invariant suite (internal/analysis)
// over Go packages. It speaks the `go vet -vettool` unit-checker
// protocol, so the canonical invocation is
//
//	go build -o /tmp/repolint ./cmd/repolint
//	go vet -vettool=/tmp/repolint ./...
//
// Invoked directly with package patterns (`repolint ./...`), it re-execs
// itself under go vet with -vettool pointed at its own binary, so both
// spellings are the same check. The third mode,
//
//	deadcode -test ./... | repolint deadcode -allow .deadcode-allow
//
// filters `deadcode` output through a named allowlist: unexported dead
// functions fail the check unless their exact name is listed, replacing
// the former grep -E pipeline in CI where false positives could only be
// regexed around, never named.
package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		// The go command fingerprints a vettool by running it with
		// -V=full and expects "<basename> version <v>" on stdout.
		fmt.Printf("%s version 1.0.0\n", filepath.Base(os.Args[0]))
	case len(args) == 1 && args[0] == "-flags":
		// go vet asks the tool for its extra flags as JSON; the suite
		// has none.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnit(args[0]))
	case len(args) >= 1 && args[0] == "deadcode":
		os.Exit(runDeadcode(args[1:]))
	default:
		os.Exit(rerunUnderVet(args))
	}
}

// rerunUnderVet invokes `go vet -vettool=<self> <patterns>` so that
// `repolint ./...` and the CI spelling are the same check.
func rerunUnderVet(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: locating own binary: %v\n", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "repolint: running go vet: %v\n", err)
		return 1
	}
	return 0
}
