package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetCleanOnRepo is the suite's smoke test: build this command and
// run it over the whole module through the real `go vet -vettool`
// protocol. The repo must be invariant-clean — a red run here means
// either a real violation landed or an analyzer grew a false positive.
func TestVetCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole module")
	}
	bin := filepath.Join(t.TempDir(), "repolint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building repolint: %v\n%s", err, out)
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=repolint ./... not clean: %v\n%s", err, out)
	}
}

func TestFilterDeadcode(t *testing.T) {
	input := strings.Join([]string{
		"greet/main.go:10:1: unreachable func: Exported",
		"table/table.go:3:2: unreachable func: helper",
		"shard/shard.go:9:1: unreachable func: Engine.drainLocked",
		"shard/shard.go:12:1: unreachable func: Engine.Drain",
		"some unrelated line",
		"",
	}, "\n")

	offenders, err := filterDeadcode(strings.NewReader(input), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"table/table.go:3:2: unreachable func: helper",
		"shard/shard.go:9:1: unreachable func: Engine.drainLocked",
	}
	if len(offenders) != len(want) {
		t.Fatalf("offenders = %q, want %q", offenders, want)
	}
	for i := range want {
		if offenders[i] != want[i] {
			t.Errorf("offenders[%d] = %q, want %q", i, offenders[i], want[i])
		}
	}

	allow := map[string]bool{"helper": true, "Engine.drainLocked": true}
	offenders, err = filterDeadcode(strings.NewReader(input), allow)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 0 {
		t.Errorf("allowlisted run: offenders = %q, want none", offenders)
	}
}

func TestReadAllowlist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "allow")
	content := "# comment\nhelper # trailing note\n\nEngine.drainLocked\n"
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
	allow, err := readAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"helper", "Engine.drainLocked"} {
		if !allow[name] {
			t.Errorf("allowlist missing %q: %v", name, allow)
		}
	}
	if len(allow) != 2 {
		t.Errorf("allowlist = %v, want 2 entries", allow)
	}
}

func TestIsUnexportedFunc(t *testing.T) {
	for _, tt := range []struct {
		name string
		want bool
	}{
		{"helper", true},
		{"Exported", false},
		{"Engine.drainLocked", true},
		{"Engine.Drain", false},
		{"table.grow", true},
	} {
		if got := isUnexportedFunc(tt.name); got != tt.want {
			t.Errorf("isUnexportedFunc(%q) = %v, want %v", tt.name, got, tt.want)
		}
	}
}
