package main

// The `go vet -vettool` unit-checker protocol, reimplemented on the
// standard library (the x/tools unitchecker is not available to this
// dependency-free module). For every package unit, the go command
// writes a JSON config file describing the unit — source files, the
// import map, and the export-data file of every dependency — and
// invokes the tool with that file as its sole argument. The tool
// type-checks the unit against the supplied export data, runs its
// analyzers, writes the (possibly empty) facts file the config names,
// prints diagnostics to stderr, and exits non-zero if there were any.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// vetConfig is the subset of the go command's vet config this tool
// consumes. Field names are fixed by the protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// modulePrefix gates which units the suite analyzes: the invariants are
// repo rules, so everything outside the module (the standard library,
// test mains) is acknowledged with an empty facts file and skipped.
const modulePrefix = "repro"

// inModule reports whether importPath (possibly a test variant like
// "repro/table [repro/table.test]") belongs to the module.
func inModule(importPath string) bool {
	p := importPath
	if i := strings.Index(p, " ["); i >= 0 {
		p = p[:i]
	}
	return p == modulePrefix || strings.HasPrefix(p, modulePrefix+"/")
}

// runUnit executes the suite over one vet config unit and returns the
// process exit code (0 clean, 1 operational error, 2 diagnostics).
func runUnit(cfgPath string) int {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	// The protocol requires the facts output to exist even for units we
	// do not analyze; the suite carries no cross-package facts, so the
	// file is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: writing facts: %v\n", err)
			return 1
		}
	}
	if !inModule(cfg.ImportPath) || strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return typecheckFailure(cfg, err)
		}
		files = append(files, f)
	}

	pkg, info, err := typecheckUnit(cfg, fset, files)
	if err != nil {
		return typecheckFailure(cfg, err)
	}
	if cfg.VetxOnly {
		return 0
	}

	diags := runSuite(fset, files, pkg, info)
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return 2
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading vet config: %w", err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	return cfg, nil
}

// typecheckFailure honors the protocol's SucceedOnTypecheckFailure flag
// (set by the go command when vet runs in contexts where build errors
// are reported elsewhere).
func typecheckFailure(cfg *vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	fmt.Fprintf(os.Stderr, "repolint: typechecking %s: %v\n", cfg.ImportPath, err)
	return 1
}

// typecheckUnit type-checks one unit against the export data the go
// command supplied for its dependencies.
func typecheckUnit(cfg *vetConfig, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				path = importPath
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return base.Import(path)
		}),
		Sizes: types.SizesFor("gc", build.Default.GOARCH),
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// runSuite applies every analyzer to the unit and returns diagnostics
// sorted by position.
func runSuite(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, a := range analysis.All() {
		pass := &analysis.Pass{
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, analysis.Diagnostic{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("analyzer failed: %v", err),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}
