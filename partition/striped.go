package partition

import (
	"fmt"

	"repro/hashfn"
	"repro/shard"
	"repro/table"
)

// Striped is the paper's "striped locking" extension (§1) for
// shared-memory concurrent access: keys are routed to P shards, each a
// single-threaded table behind its own lock. It is a thin adapter over
// shard.Engine — the repo's one striping core — retained for the legacy
// Config-based construction and the table.Map surface.
//
// Concurrency contract: every method is safe for arbitrary concurrent
// use. Read-only operations (Get, Len, LoadFactor, MemoryFootprint,
// Range) take per-shard READ locks and run concurrently with each other;
// mutations take the owning shard's write lock. Unlike Partitioned's
// phase-parallel ownership model there is no phase discipline — the price
// is a lock acquisition per operation and contention when goroutines
// collide on a shard. Growth is the engine's incremental resize: no
// mutation ever pays a stop-the-world rehash of a whole shard. Range is
// weakly consistent under concurrent writers (see shard.Engine.Range).
type Striped struct {
	eng   *shard.Engine
	label string // inner table label, e.g. "RHMult"
}

// NewStriped builds a striped-locking map over the same configuration as
// New. Striped keeps the legacy Map contract that mutations do not fail:
// a zero (or out-of-range) Table.MaxLoadFactor is replaced by the default
// growth threshold rather than disabling growth.
func NewStriped(cfg Config) (*Striped, error) {
	p := cfg.Partitions
	if p < 1 {
		p = 1
	}
	scheme := cfg.Scheme
	if scheme == "" {
		scheme = table.SchemeRH
	}
	family := cfg.Table.Family
	if family == nil {
		family = hashfn.MultFamily{}
	}
	growAt := cfg.Table.MaxLoadFactor
	if growAt <= 0 || growAt >= 1 {
		growAt = table.DefaultMaxLoadFactor
	}
	eng, err := shard.New(shard.Config{
		Shards:   p,
		Capacity: cfg.Table.InitialCapacity,
		GrowAt:   growAt,
		Family:   family,
		Seed:     cfg.Table.Seed,
		NewTable: func(capacity int, seed uint64) (shard.Table, error) {
			return table.New(scheme, table.Config{
				InitialCapacity: capacity,
				MaxLoadFactor:   0, // the engine grows shards incrementally
				Family:          family,
				Seed:            seed,
			})
		},
	})
	if err != nil {
		return nil, err
	}
	return &Striped{eng: eng, label: string(scheme) + family.Name()}, nil
}

// MustNewStriped is NewStriped that panics on error.
func MustNewStriped(cfg Config) *Striped {
	m, err := NewStriped(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Engine returns the underlying shard.Engine for callers migrating to the
// engine-level surface (RMW primitives, batched scatter/gather, migration
// counters).
func (m *Striped) Engine() *shard.Engine { return m.eng }

// Put inserts or updates key under its shard's write lock.
func (m *Striped) Put(key, val uint64) bool {
	ins, err := m.eng.Put(key, val)
	if err != nil {
		// Unreachable with growth enabled (see NewStriped); a failure here
		// means the engine could not allocate a successor table.
		panic(fmt.Errorf("partition: Striped.Put(%d): %w", key, err))
	}
	return ins
}

// Get looks key up without locking: the engine's wait-free read path
// (epoch-published shard views validated by a per-shard seqlock).
func (m *Striped) Get(key uint64) (uint64, bool) { return m.eng.Get(key) }

// Delete removes key under its shard's writer lock.
func (m *Striped) Delete(key uint64) bool { return m.eng.Delete(key) }

// Len sums shard sizes wait-free (one atomic load per shard). With
// concurrent writers the result is a per-shard-consistent sum, not a
// point-in-time snapshot.
func (m *Striped) Len() int { return m.eng.Len() }

// Partitions returns the shard count.
func (m *Striped) Partitions() int { return m.eng.Shards() }

// MemoryFootprint sums the shard footprints.
func (m *Striped) MemoryFootprint() uint64 { return m.eng.MemoryFootprint() }

// Range iterates the shards with weak consistency, holding one shard's
// writer lock at a time; fn must not call back into the map.
func (m *Striped) Range(fn func(key, val uint64) bool) { m.eng.Range(fn) }

var (
	_ table.Map     = (*Striped)(nil)
	_ table.Batcher = (*Striped)(nil)
)

// Name identifies the composite, e.g. "Striped[8xRHMult]".
func (m *Striped) Name() string {
	return fmt.Sprintf("Striped[%dx%s]", m.eng.Shards(), m.label)
}

// Capacity sums the shard capacities.
func (m *Striped) Capacity() int { return m.eng.Capacity() }

// LoadFactor returns Len/Capacity.
func (m *Striped) LoadFactor() float64 { return m.eng.LoadFactor() }

// Stats returns the engine snapshot (shard count, size accounting, and
// the incremental-resize counters).
func (m *Striped) Stats() shard.Stats { return m.eng.Stats() }

// GetBatch implements table.Batcher via the engine's shard-major
// scatter/gather pipeline.
func (m *Striped) GetBatch(keys []uint64, vals []uint64, ok []bool) int {
	return m.eng.GetBatch(keys, vals, ok)
}

// PutBatch implements table.Batcher. The scatter is stable, so duplicate
// keys (which always share a shard) keep their slice order and therefore
// sequential last-wins semantics.
func (m *Striped) PutBatch(keys []uint64, vals []uint64) int {
	n, err := m.eng.PutBatch(keys, vals)
	if err != nil {
		panic(fmt.Errorf("partition: Striped.PutBatch: %w", err))
	}
	return n
}
