package partition

import (
	"sync"

	"repro/table"
)

// Striped wraps P inner tables with one mutex per partition — the paper's
// "striped locking" extension for thread safety (§1). Unlike Partitioned's
// phase-parallel ownership model, Striped is safe for arbitrary concurrent
// use; the price is a lock acquisition per operation and contention when
// goroutines collide on a stripe.
type Striped struct {
	inner *Partitioned
	locks []sync.Mutex
}

// NewStriped builds a striped-locking map over the same configuration as
// New.
func NewStriped(cfg Config) (*Striped, error) {
	inner, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Striped{
		inner: inner,
		locks: make([]sync.Mutex, inner.Partitions()),
	}, nil
}

// MustNewStriped is NewStriped that panics on error.
func MustNewStriped(cfg Config) *Striped {
	m, err := NewStriped(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Put inserts or updates key under its stripe lock.
func (m *Striped) Put(key, val uint64) bool {
	j := m.inner.Partition(key)
	m.locks[j].Lock()
	defer m.locks[j].Unlock()
	return m.inner.parts[j].Put(key, val)
}

// Get looks key up under its stripe lock.
func (m *Striped) Get(key uint64) (uint64, bool) {
	j := m.inner.Partition(key)
	m.locks[j].Lock()
	defer m.locks[j].Unlock()
	return m.inner.parts[j].Get(key)
}

// Delete removes key under its stripe lock.
func (m *Striped) Delete(key uint64) bool {
	j := m.inner.Partition(key)
	m.locks[j].Lock()
	defer m.locks[j].Unlock()
	return m.inner.parts[j].Delete(key)
}

// Len sums partition sizes, locking each stripe in turn. The result is a
// consistent sum only when no writers run concurrently.
func (m *Striped) Len() int {
	n := 0
	for j := range m.locks {
		m.locks[j].Lock()
		n += m.inner.parts[j].Len()
		m.locks[j].Unlock()
	}
	return n
}

// Partitions returns the stripe count.
func (m *Striped) Partitions() int { return m.inner.Partitions() }

// MemoryFootprint sums the partition footprints.
func (m *Striped) MemoryFootprint() uint64 { return m.inner.MemoryFootprint() }

// Range iterates all stripes, holding one stripe lock at a time.
func (m *Striped) Range(fn func(key, val uint64) bool) {
	for j := range m.locks {
		m.locks[j].Lock()
		stopped := false
		m.inner.parts[j].Range(func(k, v uint64) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		m.locks[j].Unlock()
		if stopped {
			return
		}
	}
}

var _ table.Map = (*Striped)(nil)

// Name identifies the composite.
func (m *Striped) Name() string { return "Striped[" + m.inner.Name() + "]" }

// Capacity sums the partition capacities.
func (m *Striped) Capacity() int { return m.inner.Capacity() }

// LoadFactor returns Len/Capacity.
func (m *Striped) LoadFactor() float64 {
	return float64(m.Len()) / float64(m.Capacity())
}
