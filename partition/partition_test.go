package partition

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/prng"
	"repro/table"
)

func newTest(p int, scheme table.Scheme) *Partitioned {
	return MustNew(Config{
		Partitions: p,
		Scheme:     scheme,
		Table: table.Config{
			InitialCapacity: 1 << 12,
			MaxLoadFactor:   0.8,
			Seed:            7,
		},
	})
}

func TestPartitionedBasics(t *testing.T) {
	for _, p := range []int{1, 2, 4, 16} {
		m := newTest(p, table.SchemeRH)
		if m.Partitions() != p {
			t.Fatalf("Partitions = %d, want %d", m.Partitions(), p)
		}
		for i := uint64(1); i <= 5000; i++ {
			if !m.Put(i, i*2) {
				t.Fatalf("Put(%d) reported update", i)
			}
		}
		if m.Len() != 5000 {
			t.Fatalf("Len = %d", m.Len())
		}
		for i := uint64(1); i <= 5000; i++ {
			if v, ok := m.Get(i); !ok || v != i*2 {
				t.Fatalf("Get(%d) = %d,%v", i, v, ok)
			}
		}
		for i := uint64(1); i <= 2500; i++ {
			if !m.Delete(i) {
				t.Fatalf("Delete(%d) failed", i)
			}
		}
		if m.Len() != 2500 {
			t.Fatalf("Len after deletes = %d", m.Len())
		}
		count := 0
		m.Range(func(k, v uint64) bool { count++; return true })
		if count != 2500 {
			t.Fatalf("Range visited %d", count)
		}
		if m.MemoryFootprint() == 0 || m.Capacity() == 0 {
			t.Fatal("degenerate accounting")
		}
	}
}

func TestPartitionRoutingStable(t *testing.T) {
	m := newTest(8, table.SchemeLP)
	for i := uint64(0); i < 10000; i++ {
		a, b := m.Partition(i), m.Partition(i)
		if a != b || a < 0 || a >= 8 {
			t.Fatalf("Partition(%d) unstable or out of range: %d, %d", i, a, b)
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	m := newTest(8, table.SchemeLP)
	rng := prng.NewXoshiro256(1)
	for i := 0; i < 80000; i++ {
		m.Put(rng.Next(), 1)
	}
	if skew := m.Skew(); skew > 1.1 {
		t.Fatalf("partition skew %.3f on uniform keys, want ~1", skew)
	}
}

func TestBuildAndProbeParallel(t *testing.T) {
	m := newTest(4, table.SchemeRH)
	const n = 20000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	rng := prng.NewXoshiro256(2)
	for i := range keys {
		keys[i] = rng.Next()
		vals[i] = uint64(i)
	}
	got, err := m.BuildParallel(keys, vals)
	if err != nil {
		t.Fatalf("BuildParallel: %v", err)
	}
	if got != n {
		t.Fatalf("BuildParallel inserted %d, want %d", got, n)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d", m.Len())
	}
	// Probe: half hits, half misses.
	probes := make([]uint64, 2*n)
	copy(probes, keys)
	for i := n; i < 2*n; i++ {
		probes[i] = rng.Next()
	}
	out := make([]uint64, len(probes))
	found := make([]bool, len(probes))
	hits, err := m.ProbeParallel(probes, out, found)
	if err != nil {
		t.Fatalf("ProbeParallel: %v", err)
	}
	if hits < n {
		t.Fatalf("ProbeParallel hits = %d, want >= %d", hits, n)
	}
	for i := 0; i < n; i++ {
		if !found[i] || out[i] != vals[i] {
			t.Fatalf("probe %d: %d,%v want %d,true", i, out[i], found[i], vals[i])
		}
	}
	// Rebuilding the same keys must report zero fresh inserts.
	got, err = m.BuildParallel(keys, vals)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if got != 0 {
		t.Fatalf("rebuild inserted %d, want 0", got)
	}
}

func TestBuildParallelValidation(t *testing.T) {
	m := newTest(2, table.SchemeLP)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	m.BuildParallel(make([]uint64, 3), make([]uint64, 2))
}

// TestPartitionedMatchesFlat: a partitioned map must agree with a single
// flat table on any operation sequence.
func TestPartitionedMatchesFlat(t *testing.T) {
	prop := func(ops []uint16, seed uint64) bool {
		pm := MustNew(Config{
			Partitions: 4,
			Scheme:     table.SchemeQP,
			Table:      table.Config{InitialCapacity: 256, MaxLoadFactor: 0.8, Seed: seed},
		})
		flat := map[uint64]uint64{}
		for i, op := range ops {
			k := uint64(op % 512)
			switch op % 3 {
			case 0:
				pm.Put(k, uint64(i))
				flat[k] = uint64(i)
			case 1:
				_, exp := flat[k]
				if pm.Delete(k) != exp {
					return false
				}
				delete(flat, k)
			default:
				want, wantOK := flat[k]
				v, ok := pm.Get(k)
				if ok != wantOK || (ok && v != want) {
					return false
				}
			}
		}
		return pm.Len() == len(flat)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStripedConcurrent(t *testing.T) {
	m := MustNewStriped(Config{
		Partitions: 8,
		Scheme:     table.SchemeRH,
		Table:      table.Config{InitialCapacity: 1 << 10, MaxLoadFactor: 0.8, Seed: 3},
	})
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) << 32
			for i := uint64(1); i <= perG; i++ {
				m.Put(base|i, i)
			}
			for i := uint64(1); i <= perG; i++ {
				if v, ok := m.Get(base | i); !ok || v != i {
					t.Errorf("g%d: Get(%d) = %d,%v", g, i, v, ok)
					return
				}
			}
			for i := uint64(1); i <= perG/2; i++ {
				m.Delete(base | i)
			}
		}(g)
	}
	wg.Wait()
	if got, want := m.Len(), goroutines*perG/2; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	count := 0
	m.Range(func(k, v uint64) bool { count++; return true })
	if count != m.Len() {
		t.Fatalf("Range visited %d of %d", count, m.Len())
	}
	if m.Partitions() != 8 || m.Capacity() == 0 || m.LoadFactor() <= 0 {
		t.Fatal("degenerate accounting")
	}
	if m.Name() == "" || m.MemoryFootprint() == 0 {
		t.Fatal("metadata missing")
	}
}

// TestPartitionedBatchMatchesScalar: the composite GetBatch/PutBatch —
// stable scatter into per-partition staging buffers, batched flush, and
// gather-back — is observationally identical to the scalar operations, at
// every partition count and with duplicates, sentinels, and absent probes
// in the batch.
func TestPartitionedBatchMatchesScalar(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		for _, scheme := range []table.Scheme{table.SchemeRH, table.SchemeCuckooH4} {
			batched := newTest(p, scheme)
			scalar := newTest(p, scheme)
			rng := prng.NewXoshiro256(99)
			n := 3000
			keys := make([]uint64, n)
			vals := make([]uint64, n)
			for i := range keys {
				keys[i] = rng.Uint64n(2048) // narrow: duplicates across batches
				vals[i] = rng.Next()
			}
			keys[0], keys[n-1] = 0, ^uint64(0) // sentinel-valued keys
			insScalar := 0
			for i := range keys {
				if scalar.Put(keys[i], vals[i]) {
					insScalar++
				}
			}
			if ins := batched.PutBatch(keys, vals); ins != insScalar {
				t.Fatalf("p=%d %s: PutBatch inserted %d, scalar %d", p, scheme, ins, insScalar)
			}
			if batched.Len() != scalar.Len() {
				t.Fatalf("p=%d %s: Len %d != %d", p, scheme, batched.Len(), scalar.Len())
			}
			probes := append(append([]uint64{}, keys...), 1<<40, 1<<41, 1<<42)
			outV := make([]uint64, len(probes))
			outOK := make([]bool, len(probes))
			hits := batched.GetBatch(probes, outV, outOK)
			wantHits := 0
			for i, pk := range probes {
				wantV, wantOK := scalar.Get(pk)
				if outOK[i] != wantOK || (wantOK && outV[i] != wantV) {
					t.Fatalf("p=%d %s: probe %d batched %d,%v scalar %d,%v",
						p, scheme, i, outV[i], outOK[i], wantV, wantOK)
				}
				if wantOK {
					wantHits++
				}
			}
			if hits != wantHits {
				t.Fatalf("p=%d %s: GetBatch hits %d, want %d", p, scheme, hits, wantHits)
			}
		}
	}
}

// TestPartitionedBatchScratchReuse: back-to-back batched operations of
// different sizes reuse the scratch without corrupting results.
func TestPartitionedBatchScratchReuse(t *testing.T) {
	m := newTest(4, table.SchemeLP)
	for round, n := range []int{2000, 64, 700, 1} {
		keys := make([]uint64, n)
		vals := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(round)<<32 | uint64(i)
			vals[i] = uint64(round*10 + i)
		}
		if ins := m.PutBatch(keys, vals); ins != n {
			t.Fatalf("round %d: inserted %d, want %d", round, ins, n)
		}
		outV := make([]uint64, n)
		outOK := make([]bool, n)
		if hits := m.GetBatch(keys, outV, outOK); hits != n {
			t.Fatalf("round %d: hits %d, want %d", round, hits, n)
		}
		for i := range keys {
			if !outOK[i] || outV[i] != vals[i] {
				t.Fatalf("round %d lane %d: got %d,%v", round, i, outV[i], outOK[i])
			}
		}
	}
}
