// Package partition provides the two multi-threading strategies the paper
// names for taking its single-threaded hash tables parallel (§1):
//
//   - Partitioned: radix-partition the key space by hash bits into P
//     independent single-threaded tables, one owner goroutine each during
//     parallel phases. This is the paper's preferred argument — "each
//     partition can be considered an isolated unit of work that is only
//     accessed by exactly one thread at a time, and therefore concurrency
//     control inside the hash tables is not needed" — and the substrate of
//     the partition-based hash joins it cites (Balkesen et al., Barber et
//     al., Lang et al.).
//   - Striped: wrap any table.Map per-partition with a mutex (the paper's
//     "striped locking"), for callers that need shared-memory concurrent
//     access rather than phase-parallel ownership.
//
// Partitioning is by the TOP bits of a dedicated partition hash, which are
// disjoint from the bits the inner tables consume only if different
// functions are used; Partitioned therefore draws a separate hash function
// for routing, seeded independently of the per-partition tables.
package partition

import (
	"fmt"
	"iter"
	"math/bits"
	"sync"

	"repro/hashfn"
	"repro/table"
)

// Config parameterizes a partitioned map.
type Config struct {
	// Partitions is the number of partitions P, rounded up to a power of
	// two (minimum 1).
	Partitions int
	// Scheme selects the per-partition table implementation.
	Scheme table.Scheme
	// Table configures each inner table; Table.InitialCapacity is the
	// TOTAL capacity, split evenly across partitions.
	Table table.Config
}

// Partitioned is a hash map split into P independent single-threaded
// tables. Point operations (Put/Get/Delete) are single-threaded like the
// underlying tables; the *Parallel methods fan work out with one goroutine
// per partition, which is safe because each goroutine touches only its own
// partition.
type Partitioned struct {
	parts  []table.Table
	router hashfn.Function
	shift  uint // 64 - log2(P)
	bs     *batchScratch
}

// batchScratch holds the reusable buffers of the batched operations, grown
// to fit and kept across calls so the staging passes allocate nothing in
// steady state. The batched methods inherit the tables' single-threaded
// contract, and the *Parallel methods touch the scratch only in their
// (sequential) scatter phase, so one scratch per map suffices.
type batchScratch struct {
	hash   [table.BatchWidth]uint64
	part   []int32
	keys   []uint64
	orig   []int32
	vals   []uint64
	ok     []bool
	starts []int32
	pos    []int32
}

func (m *Partitioned) scratch() *batchScratch {
	if m.bs == nil {
		m.bs = new(batchScratch)
	}
	return m.bs
}

// grow returns s with length exactly n, reusing its backing array when
// possible.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// New builds a partitioned map.
func New(cfg Config) (*Partitioned, error) {
	p := cfg.Partitions
	if p < 1 {
		p = 1
	}
	p = 1 << uint(bits.Len(uint(p-1)))
	if cfg.Scheme == "" {
		cfg.Scheme = table.SchemeRH
	}
	inner := cfg.Table
	if inner.Family == nil {
		inner.Family = hashfn.MultFamily{}
	}
	if inner.InitialCapacity > p {
		inner.InitialCapacity /= p
	}
	pm := &Partitioned{
		parts: make([]table.Table, p),
		// The router must be independent of the per-partition functions;
		// derive it from a distinct seed stream.
		router: inner.Family.New(inner.Seed ^ 0x9a77_e4b0_0f00_d001),
		shift:  uint(64 - bits.TrailingZeros(uint(p))),
	}
	for i := range pm.parts {
		c := inner
		c.Seed = inner.Seed + uint64(i)*0x9e3779b97f4a7c15
		m, err := table.New(cfg.Scheme, c)
		if err != nil {
			return nil, err
		}
		pm.parts[i] = m
	}
	return pm, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Partitioned {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Partitions returns P.
func (m *Partitioned) Partitions() int { return len(m.parts) }

// Partition returns the index of the partition owning key.
func (m *Partitioned) Partition(key uint64) int {
	if len(m.parts) == 1 {
		return 0
	}
	return int(m.router.Hash(key) >> m.shift)
}

// partitionAll routes a whole key column, bulk-hashing the router in
// BatchWidth chunks so the scatter passes of the batched and parallel
// operations pay the router's dispatch once per chunk.
func (m *Partitioned) partitionAll(keys []uint64, dst []int32) {
	hash := m.scratch().hash[:]
	for base := 0; base < len(keys); base += table.BatchWidth {
		n := min(table.BatchWidth, len(keys)-base)
		hashfn.HashBatch(m.router, keys[base:base+n], hash)
		for i := 0; i < n; i++ {
			dst[base+i] = int32(hash[i] >> m.shift)
		}
	}
}

// Put inserts or updates key in its partition.
func (m *Partitioned) Put(key, val uint64) bool {
	return m.parts[m.Partition(key)].Put(key, val)
}

// Get looks key up in its partition.
func (m *Partitioned) Get(key uint64) (uint64, bool) {
	return m.parts[m.Partition(key)].Get(key)
}

// Delete removes key from its partition.
func (m *Partitioned) Delete(key uint64) bool {
	return m.parts[m.Partition(key)].Delete(key)
}

// Len sums the partition sizes.
func (m *Partitioned) Len() int {
	n := 0
	for _, p := range m.parts {
		n += p.Len()
	}
	return n
}

// Capacity sums the partition capacities.
func (m *Partitioned) Capacity() int {
	n := 0
	for _, p := range m.parts {
		n += p.Capacity()
	}
	return n
}

// LoadFactor returns Len/Capacity across all partitions.
func (m *Partitioned) LoadFactor() float64 {
	return float64(m.Len()) / float64(m.Capacity())
}

// MemoryFootprint sums the partition footprints.
func (m *Partitioned) MemoryFootprint() uint64 {
	var n uint64
	for _, p := range m.parts {
		n += p.MemoryFootprint()
	}
	return n
}

// Range iterates every partition in order.
func (m *Partitioned) Range(fn func(key, val uint64) bool) {
	for _, p := range m.parts {
		stopped := false
		p.Range(func(k, v uint64) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// Name identifies the composite.
func (m *Partitioned) Name() string {
	return fmt.Sprintf("Partitioned[%dx%s]", len(m.parts), m.parts[0].Name())
}

var (
	_ table.Map     = (*Partitioned)(nil)
	_ table.Batcher = (*Partitioned)(nil)
	_ table.Table   = (*Partitioned)(nil)
)

// TryPut implements table.Table: Put with the ErrFull contract, routed to
// the key's partition.
func (m *Partitioned) TryPut(key, val uint64) (bool, error) {
	return m.parts[m.Partition(key)].TryPut(key, val)
}

// GetOrPut implements table.Table: one probe sequence in the key's
// partition.
func (m *Partitioned) GetOrPut(key, val uint64) (uint64, bool, error) {
	return m.parts[m.Partition(key)].GetOrPut(key, val)
}

// Upsert implements table.Table.
func (m *Partitioned) Upsert(key uint64, fn func(old uint64, exists bool) uint64) (uint64, error) {
	return m.parts[m.Partition(key)].Upsert(key, fn)
}

// All implements table.Table.
func (m *Partitioned) All() iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) { m.Range(yield) }
}

// TryPutBatch implements table.Table with the staged scatter of PutBatch.
// On ErrFull it stops, returning the number of keys newly inserted so far;
// keys routed to partitions processed earlier remain applied.
func (m *Partitioned) TryPutBatch(keys, vals []uint64) (int, error) {
	if len(keys) != len(vals) {
		panic("partition: TryPutBatch keys/vals length mismatch")
	}
	if len(m.parts) == 1 {
		return m.parts[0].TryPutBatch(keys, vals)
	}
	st := m.stage(keys)
	bs := m.bs
	bs.vals = grow(bs.vals, len(keys))
	svals := bs.vals
	for i, oi := range st.orig {
		svals[i] = vals[oi]
	}
	inserted := 0
	for j := range m.parts {
		lo, hi := st.starts[j], st.starts[j+1]
		n, err := m.parts[j].TryPutBatch(st.keys[lo:hi], svals[lo:hi])
		inserted += n
		if err != nil {
			return inserted, err
		}
	}
	return inserted, nil
}

// GetOrPutBatch implements table.Table: keys are staged per partition
// (stable scatter, so duplicate keys keep slice order — they always share
// a partition), each partition runs its single-probe batch, and results
// scatter back to the callers' lanes. On ErrFull the out/loaded contents
// are unspecified; earlier partitions' inserts remain applied.
func (m *Partitioned) GetOrPutBatch(keys, vals, out []uint64, loaded []bool) (int, error) {
	if len(vals) != len(keys) {
		panic("partition: GetOrPutBatch keys/vals length mismatch")
	}
	if len(out) < len(keys) || len(loaded) < len(keys) {
		panic("partition: GetOrPutBatch output slices shorter than keys")
	}
	if len(m.parts) == 1 {
		return m.parts[0].GetOrPutBatch(keys, vals, out, loaded)
	}
	st := m.stage(keys)
	bs := m.bs
	bs.vals = grow(bs.vals, len(keys))
	bs.ok = grow(bs.ok, len(keys))
	svals, sok := bs.vals, bs.ok
	for i, oi := range st.orig {
		svals[i] = vals[oi]
	}
	inserted := 0
	for j := range m.parts {
		lo, hi := st.starts[j], st.starts[j+1]
		// out aliases vals within each partition's staged range: the
		// schemes read the insert value before writing the result lane.
		n, err := m.parts[j].GetOrPutBatch(st.keys[lo:hi], svals[lo:hi], svals[lo:hi], sok[lo:hi])
		inserted += n
		if err != nil {
			return inserted, err
		}
	}
	for i, oi := range st.orig {
		out[oi], loaded[oi] = svals[i], sok[i]
	}
	return inserted, nil
}

// UpsertBatch implements table.Table; fn receives each key's lane in the
// original slice. fn must not call back into the map.
func (m *Partitioned) UpsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (int, error) {
	if len(m.parts) == 1 {
		return m.parts[0].UpsertBatch(keys, fn)
	}
	st := m.stage(keys)
	inserted := 0
	for j := range m.parts {
		lo, hi := st.starts[j], st.starts[j+1]
		if lo == hi {
			continue
		}
		orig := st.orig[lo:hi]
		n, err := m.parts[j].UpsertBatch(st.keys[lo:hi], func(lane int, old uint64, exists bool) uint64 {
			return fn(int(orig[lane]), old, exists)
		})
		inserted += n
		if err != nil {
			return inserted, err
		}
	}
	return inserted, nil
}

// GetBatch implements table.Batcher: keys are staged per partition (stable
// scatter), each partition's staging buffer is flushed through its table's
// batched pipeline, and results are scattered back to the callers' lanes.
// It returns the number of hits.
func (m *Partitioned) GetBatch(keys []uint64, vals []uint64, ok []bool) int {
	if len(vals) < len(keys) || len(ok) < len(keys) {
		panic("partition: GetBatch output slices shorter than keys")
	}
	if len(m.parts) == 1 {
		return table.GetBatch(m.parts[0], keys, vals, ok)
	}
	st := m.stage(keys)
	bs := m.bs
	bs.vals = grow(bs.vals, len(keys))
	bs.ok = grow(bs.ok, len(keys))
	svals, sok := bs.vals, bs.ok
	hits := 0
	for j := range m.parts {
		lo, hi := st.starts[j], st.starts[j+1]
		hits += table.GetBatch(m.parts[j], st.keys[lo:hi], svals[lo:hi], sok[lo:hi])
	}
	for i, oi := range st.orig {
		vals[oi], ok[oi] = svals[i], sok[i]
	}
	return hits
}

// PutBatch implements table.Batcher with the same staging strategy. The
// scatter is stable, so duplicate keys (which always share a partition)
// keep their slice order and therefore sequential last-wins semantics.
func (m *Partitioned) PutBatch(keys []uint64, vals []uint64) int {
	if len(keys) != len(vals) {
		panic("partition: PutBatch keys/vals length mismatch")
	}
	if len(m.parts) == 1 {
		return table.PutBatch(m.parts[0], keys, vals)
	}
	st := m.stage(keys)
	bs := m.bs
	bs.vals = grow(bs.vals, len(keys))
	svals := bs.vals
	for i, oi := range st.orig {
		svals[i] = vals[oi]
	}
	inserted := 0
	for j := range m.parts {
		lo, hi := st.starts[j], st.starts[j+1]
		inserted += table.PutBatch(m.parts[j], st.keys[lo:hi], svals[lo:hi])
	}
	return inserted
}

// staged is one stable partition scatter of a key column: keys regrouped by
// partition, the original lane of every staged slot, and per-partition
// extents.
type staged struct {
	keys   []uint64
	orig   []int32
	starts []int32
}

// stage routes keys and regroups them by partition in one pass over
// per-partition cursors. The returned views alias the map's scratch and
// are valid until the next batched operation.
func (m *Partitioned) stage(keys []uint64) staged {
	p := len(m.parts)
	bs := m.scratch()
	bs.part = grow(bs.part, len(keys))
	part := bs.part
	m.partitionAll(keys, part)
	bs.starts = grow(bs.starts, p+1)
	starts := bs.starts
	clear(starts)
	for _, j := range part {
		starts[j+1]++
	}
	for j := 0; j < p; j++ {
		starts[j+1] += starts[j]
	}
	bs.keys = grow(bs.keys, len(keys))
	bs.orig = grow(bs.orig, len(keys))
	st := staged{keys: bs.keys, orig: bs.orig, starts: starts}
	bs.pos = grow(bs.pos, p)
	pos := bs.pos
	copy(pos, starts[:p])
	for i, k := range keys {
		j := part[i]
		at := pos[j]
		st.keys[at] = k
		st.orig[at] = int32(i)
		pos[j]++
	}
	return st
}

// Skew reports the imbalance across partitions: max partition size divided
// by the mean (1.0 = perfectly balanced). Partition-based parallelism is
// only as fast as its fullest partition.
func (m *Partitioned) Skew() float64 {
	if m.Len() == 0 {
		return 1
	}
	max := 0
	for _, p := range m.parts {
		if p.Len() > max {
			max = p.Len()
		}
	}
	mean := float64(m.Len()) / float64(len(m.parts))
	return float64(max) / mean
}

// BuildParallel radix-partitions keys/vals and inserts each partition's
// slice with its own goroutine — the build phase of a partition-based hash
// join. keys and vals must have equal length. It returns the number of
// newly inserted keys.
func (m *Partitioned) BuildParallel(keys, vals []uint64) int {
	if len(keys) != len(vals) {
		panic("partition: BuildParallel keys/vals length mismatch")
	}
	p := len(m.parts)
	// Partitioning pass (single-threaded scatter, as in the cited joins'
	// partition phase): per-partition staging buffers, router bulk-hashed.
	part := make([]int32, len(keys))
	m.partitionAll(keys, part)
	bucketKeys := make([][]uint64, p)
	bucketVals := make([][]uint64, p)
	approx := len(keys)/p + 16
	for i := range bucketKeys {
		bucketKeys[i] = make([]uint64, 0, approx)
		bucketVals[i] = make([]uint64, 0, approx)
	}
	for i, k := range keys {
		j := part[i]
		bucketKeys[j] = append(bucketKeys[j], k)
		bucketVals[j] = append(bucketVals[j], vals[i])
	}
	// Parallel build: one owner goroutine per partition, no locks; each
	// owner flushes its whole staging buffer through the batched pipeline.
	inserted := make([]int, p)
	var wg sync.WaitGroup
	for j := 0; j < p; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			inserted[j] = table.PutBatch(m.parts[j], bucketKeys[j], bucketVals[j])
		}(j)
	}
	wg.Wait()
	total := 0
	for _, n := range inserted {
		total += n
	}
	return total
}

// ProbeParallel looks up every probe key, writing results into out (values)
// and found, with one goroutine per partition. out and found must be the
// same length as probes. It returns the number of hits.
func (m *Partitioned) ProbeParallel(probes []uint64, out []uint64, found []bool) int {
	if len(out) != len(probes) || len(found) != len(probes) {
		panic("partition: ProbeParallel output length mismatch")
	}
	p := len(m.parts)
	// Scatter probe keys and their origin lanes into per-partition staging
	// buffers, router bulk-hashed.
	part := make([]int32, len(probes))
	m.partitionAll(probes, part)
	idx := make([][]int32, p)
	stagedKeys := make([][]uint64, p)
	approx := len(probes)/p + 16
	for i := range idx {
		idx[i] = make([]int32, 0, approx)
		stagedKeys[i] = make([]uint64, 0, approx)
	}
	for i, k := range probes {
		j := part[i]
		idx[j] = append(idx[j], int32(i))
		stagedKeys[j] = append(stagedKeys[j], k)
	}
	hits := make([]int, p)
	var wg sync.WaitGroup
	for j := 0; j < p; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			vals := make([]uint64, len(stagedKeys[j]))
			ok := make([]bool, len(stagedKeys[j]))
			hits[j] = table.GetBatch(m.parts[j], stagedKeys[j], vals, ok)
			for i, oi := range idx[j] {
				out[oi], found[oi] = vals[i], ok[i]
			}
		}(j)
	}
	wg.Wait()
	total := 0
	for _, h := range hits {
		total += h
	}
	return total
}
