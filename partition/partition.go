// Package partition provides the two multi-threading strategies the paper
// names for taking its single-threaded hash tables parallel (§1):
//
//   - Partitioned: radix-partition the key space by hash bits into P
//     independent single-threaded tables, one owner at a time during
//     parallel phases. This is the paper's preferred argument — "each
//     partition can be considered an isolated unit of work that is only
//     accessed by exactly one thread at a time, and therefore concurrency
//     control inside the hash tables is not needed" — and the substrate of
//     the partition-based hash joins it cites (Balkesen et al., Barber et
//     al., Lang et al.).
//   - Striped: wrap any table.Map per-partition with a mutex (the paper's
//     "striped locking"), for callers that need shared-memory concurrent
//     access rather than phase-parallel ownership.
//
// Partitioning is by the TOP bits of a dedicated partition hash, which are
// disjoint from the bits the inner tables consume only if different
// functions are used; Partitioned therefore draws a separate hash function
// for routing, seeded independently of the per-partition tables.
//
// All parallelism runs through the exec core: the *Parallel methods stage
// the column with exec.Scatter (the one stable scatter→group-major→gather
// primitive) and schedule one task per partition on a bounded worker pool
// (Config.Workers, default one worker per CPU) — a partition is a unit of
// WORK, not a goroutine, so the fan-out is bounded by the machine rather
// than by P.
package partition

import (
	"context"
	"fmt"
	"iter"
	"math/bits"

	"repro/exec"
	"repro/hashfn"
	"repro/table"
)

// Config parameterizes a partitioned map.
type Config struct {
	// Partitions is the number of partitions P, rounded up to a power of
	// two (minimum 1).
	Partitions int
	// Workers bounds the goroutines the *Parallel methods use (default:
	// exec's one-per-CPU default; at most one per partition is ever
	// active, so Workers > Partitions buys nothing).
	Workers int
	// Ctx, when non-nil, cancels the *Parallel methods between tasks:
	// the claim cursor stops like on a first error and ctx.Err() is
	// returned.
	Ctx context.Context
	// Scheme selects the per-partition table implementation.
	Scheme table.Scheme
	// Table configures each inner table; Table.InitialCapacity is the
	// TOTAL capacity, split evenly across partitions.
	Table table.Config
}

// Partitioned is a hash map split into P independent single-threaded
// tables. Point operations (Put/Get/Delete) are single-threaded like the
// underlying tables; the *Parallel methods fan work out through the exec
// pool with one task per partition, which is safe because each task
// touches only its own partition.
type Partitioned struct {
	parts   []table.Table
	router  hashfn.Function
	shift   uint // 64 - log2(P)
	workers int
	ctx     context.Context
	sc      *exec.Scatter
}

// scratch returns the map's reusable scatter. The batched methods inherit
// the tables' single-threaded contract, and the *Parallel methods stage
// sequentially before fanning out (workers then touch only disjoint
// staged ranges), so one scatter per map suffices.
func (m *Partitioned) scratch() *exec.Scatter {
	if m.sc == nil {
		m.sc = new(exec.Scatter)
	}
	return m.sc
}

// New builds a partitioned map.
func New(cfg Config) (*Partitioned, error) {
	p := cfg.Partitions
	if p < 1 {
		p = 1
	}
	p = 1 << uint(bits.Len(uint(p-1)))
	if cfg.Scheme == "" {
		cfg.Scheme = table.SchemeRH
	}
	inner := cfg.Table
	if inner.Family == nil {
		inner.Family = hashfn.MultFamily{}
	}
	if inner.InitialCapacity > p {
		inner.InitialCapacity /= p
	}
	pm := &Partitioned{
		parts: make([]table.Table, p),
		// The router must be independent of the per-partition functions;
		// derive it from a distinct seed stream.
		router:  inner.Family.New(inner.Seed ^ 0x9a77_e4b0_0f00_d001),
		shift:   uint(64 - bits.TrailingZeros(uint(p))),
		workers: cfg.Workers,
		ctx:     cfg.Ctx,
	}
	for i := range pm.parts {
		c := inner
		c.Seed = inner.Seed + uint64(i)*0x9e3779b97f4a7c15
		m, err := table.New(cfg.Scheme, c)
		if err != nil {
			return nil, err
		}
		pm.parts[i] = m
	}
	return pm, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Partitioned {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Partitions returns P.
func (m *Partitioned) Partitions() int { return len(m.parts) }

// Partition returns the index of the partition owning key.
func (m *Partitioned) Partition(key uint64) int {
	if len(m.parts) == 1 {
		return 0
	}
	return int(m.router.Hash(key) >> m.shift)
}

// Put inserts or updates key in its partition.
func (m *Partitioned) Put(key, val uint64) bool {
	return m.parts[m.Partition(key)].Put(key, val)
}

// Get looks key up in its partition.
func (m *Partitioned) Get(key uint64) (uint64, bool) {
	return m.parts[m.Partition(key)].Get(key)
}

// Delete removes key from its partition.
func (m *Partitioned) Delete(key uint64) bool {
	return m.parts[m.Partition(key)].Delete(key)
}

// Len sums the partition sizes.
func (m *Partitioned) Len() int {
	n := 0
	for _, p := range m.parts {
		n += p.Len()
	}
	return n
}

// Capacity sums the partition capacities.
func (m *Partitioned) Capacity() int {
	n := 0
	for _, p := range m.parts {
		n += p.Capacity()
	}
	return n
}

// LoadFactor returns Len/Capacity across all partitions.
func (m *Partitioned) LoadFactor() float64 {
	return float64(m.Len()) / float64(m.Capacity())
}

// MemoryFootprint sums the partition footprints.
func (m *Partitioned) MemoryFootprint() uint64 {
	var n uint64
	for _, p := range m.parts {
		n += p.MemoryFootprint()
	}
	return n
}

// Range iterates every partition in order.
func (m *Partitioned) Range(fn func(key, val uint64) bool) {
	for _, p := range m.parts {
		stopped := false
		p.Range(func(k, v uint64) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// Name identifies the composite.
func (m *Partitioned) Name() string {
	return fmt.Sprintf("Partitioned[%dx%s]", len(m.parts), m.parts[0].Name())
}

var (
	_ table.Map     = (*Partitioned)(nil)
	_ table.Batcher = (*Partitioned)(nil)
	_ table.Table   = (*Partitioned)(nil)
)

// TryPut implements table.Table: Put with the ErrFull contract, routed to
// the key's partition.
func (m *Partitioned) TryPut(key, val uint64) (bool, error) {
	return m.parts[m.Partition(key)].TryPut(key, val)
}

// GetOrPut implements table.Table: one probe sequence in the key's
// partition.
func (m *Partitioned) GetOrPut(key, val uint64) (uint64, bool, error) {
	return m.parts[m.Partition(key)].GetOrPut(key, val)
}

// Upsert implements table.Table.
func (m *Partitioned) Upsert(key uint64, fn func(old uint64, exists bool) uint64) (uint64, error) {
	return m.parts[m.Partition(key)].Upsert(key, fn)
}

// All implements table.Table.
func (m *Partitioned) All() iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) { m.Range(yield) }
}

// TryPutBatch implements table.Table with the staged scatter of PutBatch.
// On ErrFull it stops, returning the number of keys newly inserted so far;
// keys routed to partitions processed earlier remain applied.
func (m *Partitioned) TryPutBatch(keys, vals []uint64) (int, error) {
	if len(keys) != len(vals) {
		panic("partition: TryPutBatch keys/vals length mismatch")
	}
	if len(m.parts) == 1 {
		return m.parts[0].TryPutBatch(keys, vals)
	}
	st := m.stage(keys)
	for i, oi := range st.Orig {
		st.Vals[i] = vals[oi]
	}
	inserted := 0
	for j := range m.parts {
		lo, hi := st.Starts[j], st.Starts[j+1]
		n, err := m.parts[j].TryPutBatch(st.Keys[lo:hi], st.Vals[lo:hi])
		inserted += n
		if err != nil {
			return inserted, err
		}
	}
	return inserted, nil
}

// GetOrPutBatch implements table.Table: keys are staged per partition
// (stable scatter, so duplicate keys keep slice order — they always share
// a partition), each partition runs its single-probe batch, and results
// scatter back to the callers' lanes. On ErrFull the out/loaded contents
// are unspecified; earlier partitions' inserts remain applied.
func (m *Partitioned) GetOrPutBatch(keys, vals, out []uint64, loaded []bool) (int, error) {
	if len(vals) != len(keys) {
		panic("partition: GetOrPutBatch keys/vals length mismatch")
	}
	if len(out) < len(keys) || len(loaded) < len(keys) {
		panic("partition: GetOrPutBatch output slices shorter than keys")
	}
	if len(m.parts) == 1 {
		return m.parts[0].GetOrPutBatch(keys, vals, out, loaded)
	}
	st := m.stage(keys)
	for i, oi := range st.Orig {
		st.Vals[i] = vals[oi]
	}
	inserted := 0
	for j := range m.parts {
		lo, hi := st.Starts[j], st.Starts[j+1]
		// out aliases vals within each partition's staged range: the
		// schemes read the insert value before writing the result lane.
		n, err := m.parts[j].GetOrPutBatch(st.Keys[lo:hi], st.Vals[lo:hi], st.Vals[lo:hi], st.OK[lo:hi])
		inserted += n
		if err != nil {
			return inserted, err
		}
	}
	for i, oi := range st.Orig {
		out[oi], loaded[oi] = st.Vals[i], st.OK[i]
	}
	return inserted, nil
}

// UpsertBatch implements table.Table; fn receives each key's lane in the
// original slice. fn must not call back into the map.
func (m *Partitioned) UpsertBatch(keys []uint64, fn func(lane int, old uint64, exists bool) uint64) (int, error) {
	if len(m.parts) == 1 {
		return m.parts[0].UpsertBatch(keys, fn)
	}
	st := m.stage(keys)
	inserted := 0
	for j := range m.parts {
		lo, hi := st.Starts[j], st.Starts[j+1]
		if lo == hi {
			continue
		}
		orig := st.Orig[lo:hi]
		n, err := m.parts[j].UpsertBatch(st.Keys[lo:hi], func(lane int, old uint64, exists bool) uint64 {
			return fn(int(orig[lane]), old, exists)
		})
		inserted += n
		if err != nil {
			return inserted, err
		}
	}
	return inserted, nil
}

// GetBatch implements table.Batcher: keys are staged per partition (stable
// scatter), each partition's staging buffer is flushed through its table's
// batched pipeline, and results are scattered back to the callers' lanes.
// It returns the number of hits.
func (m *Partitioned) GetBatch(keys []uint64, vals []uint64, ok []bool) int {
	if len(vals) < len(keys) || len(ok) < len(keys) {
		panic("partition: GetBatch output slices shorter than keys")
	}
	if len(m.parts) == 1 {
		return table.GetBatch(m.parts[0], keys, vals, ok)
	}
	st := m.stage(keys)
	hits := 0
	for j := range m.parts {
		lo, hi := st.Starts[j], st.Starts[j+1]
		hits += table.GetBatch(m.parts[j], st.Keys[lo:hi], st.Vals[lo:hi], st.OK[lo:hi])
	}
	for i, oi := range st.Orig {
		vals[oi], ok[oi] = st.Vals[i], st.OK[i]
	}
	return hits
}

// PutBatch implements table.Batcher with the same staging strategy. The
// scatter is stable, so duplicate keys (which always share a partition)
// keep their slice order and therefore sequential last-wins semantics.
func (m *Partitioned) PutBatch(keys []uint64, vals []uint64) int {
	if len(keys) != len(vals) {
		panic("partition: PutBatch keys/vals length mismatch")
	}
	if len(m.parts) == 1 {
		return table.PutBatch(m.parts[0], keys, vals)
	}
	st := m.stage(keys)
	for i, oi := range st.Orig {
		st.Vals[i] = vals[oi]
	}
	inserted := 0
	for j := range m.parts {
		lo, hi := st.Starts[j], st.Starts[j+1]
		inserted += table.PutBatch(m.parts[j], st.Keys[lo:hi], st.Vals[lo:hi])
	}
	return inserted
}

// stage routes keys and regroups them partition-major through the shared
// exec.Scatter primitive. The returned scatter is the map's scratch and
// is valid until the next batched operation.
func (m *Partitioned) stage(keys []uint64) *exec.Scatter {
	sc := m.scratch()
	sc.Route(m.router, m.shift, len(m.parts), keys)
	return sc
}

// Skew reports the imbalance across partitions: max partition size divided
// by the mean (1.0 = perfectly balanced). Partition-based parallelism is
// only as fast as its fullest partition.
func (m *Partitioned) Skew() float64 {
	if m.Len() == 0 {
		return 1
	}
	max := 0
	for _, p := range m.parts {
		if p.Len() > max {
			max = p.Len()
		}
	}
	mean := float64(m.Len()) / float64(len(m.parts))
	return float64(max) / mean
}

// BuildParallel radix-partitions keys/vals and inserts each partition's
// staged slice as one task on the exec pool — the build phase of a
// partition-based hash join, with the fan-out bounded by Config.Workers
// rather than one goroutine per partition. keys and vals must have equal
// length. It returns the number of newly inserted keys; a non-nil error
// (cancellation via Config.Ctx, or a contained *exec.PanicError) means
// the build stopped with some partitions unapplied.
func (m *Partitioned) BuildParallel(keys, vals []uint64) (int, error) {
	if len(keys) != len(vals) {
		panic("partition: BuildParallel keys/vals length mismatch")
	}
	p := len(m.parts)
	// Partitioning pass (single-threaded scatter, as in the cited joins'
	// partition phase); workers then flush disjoint staged ranges through
	// the batched pipelines, one owner task per partition, no locks.
	st := m.stage(keys)
	for i, oi := range st.Orig {
		st.Vals[i] = vals[oi]
	}
	inserted := make([]int, p)
	err := exec.RunTasks(exec.Config{Workers: m.workers, Ctx: m.ctx}, p, func(_, j int) error {
		lo, hi := st.Starts[j], st.Starts[j+1]
		inserted[j] = table.PutBatch(m.parts[j], st.Keys[lo:hi], st.Vals[lo:hi])
		return nil
	})
	total := 0
	for _, n := range inserted {
		total += n
	}
	return total, err
}

// ProbeParallel looks up every probe key, writing results into out (values)
// and found, with one exec task per partition (fan-out bounded by
// Config.Workers). out and found must be the same length as probes. It
// returns the number of hits; on a non-nil error (cancellation or a
// contained panic) the out/found lanes of unprobed partitions are stale.
func (m *Partitioned) ProbeParallel(probes []uint64, out []uint64, found []bool) (int, error) {
	if len(out) != len(probes) || len(found) != len(probes) {
		panic("partition: ProbeParallel output length mismatch")
	}
	p := len(m.parts)
	st := m.stage(probes)
	hits := make([]int, p)
	err := exec.RunTasks(exec.Config{Workers: m.workers, Ctx: m.ctx}, p, func(_, j int) error {
		lo, hi := st.Starts[j], st.Starts[j+1]
		hits[j] = table.GetBatch(m.parts[j], st.Keys[lo:hi], st.Vals[lo:hi], st.OK[lo:hi])
		return nil
	})
	for i, oi := range st.Orig {
		out[oi], found[oi] = st.Vals[i], st.OK[i]
	}
	total := 0
	for _, h := range hits {
		total += h
	}
	return total, err
}
