package pipe

import (
	"context"

	"repro/exec"
)

// Config sizes one pipeline run. The zero value means "one worker per
// CPU, default morsels, no cancellation, no instrumentation".
type Config struct {
	// Workers bounds the pool executing the pipeline (default
	// runtime.GOMAXPROCS via exec). With Workers == 1 every operator runs
	// serially in input order — the deterministic oracle of the parallel
	// schedule.
	Workers int
	// MorselSize is the batch granularity rows stream in (default
	// exec.DefaultMorselSize). Every batch an operator emits holds at
	// most MorselSize rows.
	MorselSize int
	// Ctx, when non-nil, cancels the run between morsels: the pool's
	// claim cursor stops like on a first error and ctx.Err() is returned
	// from the terminal.
	Ctx context.Context
	// Metrics, when non-nil, receives per-operator telemetry (rows
	// in/out, morsels, per-morsel latency). Nil keeps the hot path free
	// of clock reads and atomics.
	Metrics *Metrics
}

// stage is one fused per-row transform: it maps a (key, value) row and
// reports whether the row survives. Filter and Map both compile to
// stages; adjacent stages are applied back-to-back in one morsel pass.
type stage func(k, v uint64) (uint64, uint64, bool)

// batchSink consumes one batch of column data. Batches from different
// workers may arrive concurrently; batch w is always delivered on worker
// w's goroutine, so per-worker state needs no locks. The slices are
// owned by the producer and invalid after return.
type batchSink func(worker int, keys, vals []uint64) error

// source produces the rows of a Stream. run drives the source to
// completion on rt's pool, applying the fused stage chain per row and
// pushing surviving batches into sink.
type source interface {
	// rows returns an upper bound on the rows the source emits, or -1
	// when unknown — the cardinality hint downstream builds pre-size
	// from.
	rows() int
	run(rt *runtime, stages []stage, sink batchSink) error
}

// Stream is a lazy operator chain: a source plus the fused filter/map
// stages applied to its rows. Streams are immutable — Filter and Map
// return extended copies — and cheap; nothing executes until a terminal
// (Collect, Count, Sink, Drain, GroupBy) runs the stream. A Stream may
// be run multiple times (each terminal is an independent execution).
type Stream struct {
	src    source
	stages []stage
	hint   int // caller-supplied cardinality upper bound; 0 = ask the source
}

// Filter appends a predicate: rows failing pred are dropped. The
// predicate is fused into the producing operator's emission loop —
// pushdown — so dropped rows are never copied into a batch. pred must be
// safe for concurrent calls from different workers.
func (s *Stream) Filter(pred func(k, v uint64) bool) *Stream {
	return s.with(func(k, v uint64) (uint64, uint64, bool) {
		return k, v, pred(k, v)
	})
}

// Map appends a per-row transform, fused like Filter. fn must be safe
// for concurrent calls from different workers.
func (s *Stream) Map(fn func(k, v uint64) (uint64, uint64)) *Stream {
	return s.with(func(k, v uint64) (uint64, uint64, bool) {
		k, v = fn(k, v)
		return k, v, true
	})
}

// Hint declares an upper bound on the rows this stream emits — the
// cardinality hint a downstream HashJoin pre-sizes its build table from
// when the source itself cannot know (e.g. a heavily filtered scan whose
// caller knows the tape's distinct-key count from dist).
func (s *Stream) Hint(rows int) *Stream {
	ns := s.clone()
	ns.hint = rows
	return ns
}

// with returns a copy of s with one more fused stage.
func (s *Stream) with(st stage) *Stream {
	ns := s.clone()
	ns.stages = append(ns.stages, st)
	return ns
}

func (s *Stream) clone() *Stream {
	ns := &Stream{src: s.src, hint: s.hint}
	ns.stages = append([]stage(nil), s.stages...)
	return ns
}

// size returns the stream's cardinality upper bound, or -1 when unknown.
func (s *Stream) size() int {
	if s.hint > 0 {
		return s.hint
	}
	return s.src.rows()
}

// applyStages runs the fused stage chain over one row.
func applyStages(stages []stage, k, v uint64) (uint64, uint64, bool) {
	for _, st := range stages {
		var keep bool
		k, v, keep = st(k, v)
		if !keep {
			return k, v, false
		}
	}
	return k, v, true
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

// runtime is one terminal's execution state: the pool every operator
// phase schedules on, the run's context for serial segments, and the
// optional metrics sink.
type runtime struct {
	pool *exec.Pool
	ctx  context.Context
	met  *Metrics
}

// newRuntime builds the shared pool for one terminal execution.
func newRuntime(cfg Config) *runtime {
	pool := exec.NewPool(exec.Config{
		Workers:    cfg.Workers,
		MorselSize: cfg.MorselSize,
		Ctx:        cfg.Ctx,
	})
	return &runtime{pool: pool, ctx: cfg.Ctx, met: cfg.Metrics}
}

func (rt *runtime) close() { rt.pool.Close() }

// ctxErr reports the run's cancellation, for serial emission loops that
// are not paced by the pool's claim cursor.
func (rt *runtime) ctxErr() error {
	if rt.ctx != nil {
		return rt.ctx.Err()
	}
	return nil
}

// batch is one worker's reusable output column pair.
type batch struct {
	keys, vals []uint64
}

// newBatches allocates one morsel-sized batch per pool worker.
func (rt *runtime) newBatches() []batch {
	bufs := make([]batch, rt.pool.Workers())
	for i := range bufs {
		bufs[i].keys = make([]uint64, rt.pool.MorselSize())
		bufs[i].vals = make([]uint64, rt.pool.MorselSize())
	}
	return bufs
}

// ---------------------------------------------------------------------------
// Terminals
// ---------------------------------------------------------------------------

// Sink runs the stream, delivering every surviving batch to fn with the
// batchSink contract (concurrent calls from different workers; slices
// invalid after return). It is the low-level terminal the others build
// on.
func (s *Stream) Sink(cfg Config, fn func(worker int, keys, vals []uint64) error) error {
	rt := newRuntime(cfg)
	defer rt.close()
	return s.src.run(rt, s.stages, fn)
}

// Drain runs the stream and discards the rows — the terminal for
// pipelines executed for their side effects or their metrics.
func (s *Stream) Drain(cfg Config) error {
	return s.Sink(cfg, func(int, []uint64, []uint64) error { return nil })
}

// Count runs the stream and returns the number of surviving rows.
func (s *Stream) Count(cfg Config) (int, error) {
	rt := newRuntime(cfg)
	defer rt.close()
	counts := make([]int, rt.pool.Workers())
	err := s.src.run(rt, s.stages, func(w int, keys, _ []uint64) error {
		counts[w] += len(keys)
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, nil
}

// Collect runs the stream and materializes the surviving rows as column
// slices. With Workers == 1 rows appear in input order; with more
// workers the order across morsels is the pool's schedule and therefore
// unspecified (rows within one morsel stay contiguous and ordered).
func (s *Stream) Collect(cfg Config) (keys, vals []uint64, err error) {
	rt := newRuntime(cfg)
	defer rt.close()
	type cols struct{ keys, vals []uint64 }
	parts := make([]cols, rt.pool.Workers())
	err = s.src.run(rt, s.stages, func(w int, k, v []uint64) error {
		parts[w].keys = append(parts[w].keys, k...)
		parts[w].vals = append(parts[w].vals, v...)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, p := range parts {
		keys = append(keys, p.keys...)
		vals = append(vals, p.vals...)
	}
	return keys, vals, nil
}
