package pipe_test

// Mid-stream failure semantics: cancellation between morsels surfaces as
// the context error from the terminal, a panicking stage anywhere in the
// chain is contained by the pool and surfaces as *exec.PanicError, and
// neither leaves the process wedged — the same first-error convention as
// the one-shot operators.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/agg"
	"repro/exec"
	"repro/join"
	"repro/pipe"
	"repro/table"
)

func bigColumn(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) + 1
	}
	return keys
}

func TestCancelMidStream(t *testing.T) {
	keys := bigColumn(200_000)
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		var seen atomic.Int64
		err := pipe.FromColumns(keys, nil).
			Filter(func(_, _ uint64) bool {
				if seen.Add(1) == 10_000 {
					cancel()
				}
				return true
			}).
			Drain(pipe.Config{Workers: workers, MorselSize: 512, Ctx: ctx})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := seen.Load(); n >= int64(len(keys)) {
			t.Fatalf("workers=%d: scan ran to completion (%d rows) despite cancellation", workers, n)
		}
	}
}

func TestCancelMidHandleScan(t *testing.T) {
	// The serial handle walk checks cancellation at every morsel flush.
	h := table.MustOpen(table.WithSeed(5))
	for i := uint64(1); i <= 50_000; i++ {
		if _, err := h.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	err := pipe.FromHandle(h).
		Filter(func(_, _ uint64) bool {
			if seen.Add(1) == 1_000 {
				cancel()
			}
			return true
		}).
		Drain(pipe.Config{Workers: 1, MorselSize: 128, Ctx: ctx})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := seen.Load(); n >= 50_000 {
		t.Fatalf("handle scan ran to completion (%d rows) despite cancellation", n)
	}
}

func TestCancelBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := pipe.FromColumns(bigColumn(1024), nil).Collect(pipe.Config{Workers: 4, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPanicInStage(t *testing.T) {
	keys := bigColumn(10_000)
	for _, workers := range []int{1, 8} {
		err := pipe.FromColumns(keys, nil).
			Map(func(k, v uint64) (uint64, uint64) {
				if k == 7_777 {
					panic("stage boom")
				}
				return k, v
			}).
			Drain(pipe.Config{Workers: workers, MorselSize: 256})
		var pe *exec.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *exec.PanicError", workers, err)
		}
		if pe.Value != "stage boom" {
			t.Fatalf("workers=%d: PanicError.Value = %v, want stage boom", workers, pe.Value)
		}
	}
}

func TestPanicInJoinProbeStage(t *testing.T) {
	// A panic downstream of the probe must not leak the build table's
	// state or wedge the probe pass.
	build := join.Relation{{Key: 1, Payload: 1}, {Key: 2, Payload: 2}}
	probe := make(join.Relation, 5_000)
	for i := range probe {
		probe[i] = join.Row{Key: uint64(i%2) + 1, Payload: uint64(i)}
	}
	for _, workers := range []int{1, 8} {
		err := pipe.HashJoin(pipe.FromRelation(build), pipe.FromRelation(probe), pipe.JoinConfig{}).
			Filter(func(_, v uint64) bool {
				if v == 4_000 {
					panic("probe boom")
				}
				return true
			}).
			Drain(pipe.Config{Workers: workers})
		var pe *exec.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *exec.PanicError", workers, err)
		}
	}
}

func TestPanicInGroupDrain(t *testing.T) {
	// The serial group drain runs as a pool task: a panicking downstream
	// stage is contained the same way as in parallel scans.
	err := pipe.GroupByStream(
		pipe.FromColumns(bigColumn(1_000), nil), pipe.GroupConfig{}, agg.Count,
	).
		Map(func(k, v uint64) (uint64, uint64) {
			if k == 500 {
				panic("drain boom")
			}
			return k, v
		}).
		Drain(pipe.Config{Workers: 1})
	var pe *exec.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *exec.PanicError", err)
	}
}

func TestSinkErrorStopsRun(t *testing.T) {
	sentinel := errors.New("sink refused")
	var calls atomic.Int64
	err := pipe.FromColumns(bigColumn(100_000), nil).
		Sink(pipe.Config{Workers: 4, MorselSize: 512}, func(_ int, _, _ []uint64) error {
			if calls.Add(1) == 3 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the sink's sentinel", err)
	}
	if n := calls.Load(); n >= 100_000/512 {
		t.Fatalf("sink called %d times after first error; run did not stop early", n)
	}
}
