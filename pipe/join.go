package pipe

// The streaming hash join: the build side is consumed into a pre-sized
// table through the single-probe GetOrPutBatch pipeline, then the probe
// side streams morsel-at-a-time — each probe batch is answered by one
// GetBatch and the matches flow straight into the downstream stages
// without an intermediate relation.

import (
	"fmt"

	"repro/decision"
	"repro/hashfn"
	"repro/join"
	"repro/table"
)

// JoinConfig parameterizes a streaming hash join.
type JoinConfig struct {
	// Scheme selects the build-side table (default RH, the paper's
	// all-rounder for the read-heavy probe phase).
	Scheme table.Scheme
	// Family is the hash-function class (default Mult).
	Family hashfn.Family
	// LoadFactor is the build-side occupancy target (default 0.5, like
	// join.Config: joins are memory-rich and probe-bound).
	LoadFactor float64
	// BuildRows overrides the build-side cardinality hint the table is
	// pre-sized from (join.CapacityFor); 0 asks the build stream, whose
	// sources usually know (slice lengths, Handle.Len, Hint). When no
	// hint exists anywhere the table starts small and grows.
	BuildRows int
	// Project maps one match to the row the joined stream emits. The
	// default keeps the join key and the probe payload:
	// (key, probeVal). Group-bys over a build-side attribute supply
	// e.g. func(k, b, p) (b, p).
	Project func(key, buildVal, probeVal uint64) (outKey, outVal uint64)
	Seed    uint64
}

func (c JoinConfig) withDefaults() JoinConfig {
	if c.Scheme == "" {
		c.Scheme = table.SchemeRH
	}
	if c.Family == nil {
		c.Family = hashfn.MultFamily{}
	}
	if c.LoadFactor <= 0 || c.LoadFactor >= 1 {
		c.LoadFactor = 0.5
	}
	if c.Project == nil {
		c.Project = func(key, _, probeVal uint64) (uint64, uint64) { return key, probeVal }
	}
	return c
}

// HashJoin joins build ⋈ probe on key, streaming. Build keys are
// expected unique (PK/FK joins); duplicates keep the first payload
// per key — with more than one worker, which concurrent duplicate is
// "first" is the pool's schedule, exactly join.SharedHashJoin's
// contract. The probe side may repeat keys freely. Each match is
// projected through cfg.Project and continues downstream; non-matching
// probe rows are skipped at emission.
func HashJoin(build, probe *Stream, cfg JoinConfig) *Stream {
	return &Stream{src: &joinSource{build: build, probe: probe, cfg: cfg}}
}

type joinSource struct {
	build, probe *Stream
	cfg          JoinConfig
}

// rows: every probe row matches at most once (unique build keys), so the
// probe bound is the join's bound.
func (j *joinSource) rows() int { return j.probe.size() }

// joinScratch is one worker's probe/build column scratch.
type joinScratch struct {
	out    []uint64
	loaded []bool
}

// openBuild opens the build-side table: pre-sized from the cardinality
// hint via the shared join.CapacityFor rule, single-table when the pool
// is serial, sharded (with the engine's incremental growth as a safety
// valve) when workers probe and build concurrently.
func (j *joinSource) openBuild(rt *runtime, cfg JoinConfig) (*table.Handle, error) {
	n := cfg.BuildRows
	if n <= 0 {
		n = j.build.size()
	}
	opts := []table.Option{
		table.WithScheme(cfg.Scheme),
		table.WithHashFamily(cfg.Family),
		table.WithSeed(cfg.Seed),
	}
	if n >= 0 {
		opts = append(opts, table.WithCapacity(join.CapacityFor(n, cfg.LoadFactor)))
	}
	if workers := rt.pool.Workers(); workers > 1 {
		// Concurrent build inserts need the sharded engine; growth stays
		// enabled so an unlucky shard resizes incrementally instead of
		// failing the build.
		opts = append(opts,
			table.WithPartitions(decision.ShardsFor(workers)),
			table.WithMaxLoadFactor(table.DefaultMaxLoadFactor))
	} else if n >= 0 {
		// Serial and pre-sized: the WORM contract, like join.HashJoin.
		opts = append(opts, table.WithMaxLoadFactor(0))
	}
	return table.Open(opts...)
}

func (j *joinSource) run(rt *runtime, stages []stage, sink batchSink) error {
	cfg := j.cfg.withDefaults()
	h, err := j.openBuild(rt, cfg)
	if err != nil {
		return fmt.Errorf("pipe: join build table: %w", err)
	}
	scratch := make([]joinScratch, rt.pool.Workers())
	for w := range scratch {
		scratch[w].out = make([]uint64, rt.pool.MorselSize())
		scratch[w].loaded = make([]bool, rt.pool.MorselSize())
	}
	// Build phase: the build stream drains into the table, one
	// single-probe GetOrPutBatch per incoming batch.
	err = j.build.src.run(rt, j.build.stages, func(w int, keys, vals []uint64) error {
		start := rt.opStart()
		sc := &scratch[w]
		_, err := h.GetOrPutBatch(keys, vals, sc.out[:len(keys)], sc.loaded[:len(keys)])
		rt.opDone(opJoinBuild, w, len(keys), len(keys), start)
		if err != nil {
			return fmt.Errorf("pipe: join build: %w", err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Probe phase: each probe batch is answered by one GetBatch; the
	// matches are projected and pushed through the downstream stages in
	// the same pass — no intermediate join result exists anywhere.
	bufs := rt.newBatches()
	ok := make([][]bool, rt.pool.Workers())
	for w := range ok {
		ok[w] = make([]bool, rt.pool.MorselSize())
	}
	return j.probe.src.run(rt, j.probe.stages, func(w int, keys, vals []uint64) error {
		start := rt.opStart()
		sc := &scratch[w]
		h.GetBatch(keys, sc.out[:len(keys)], ok[w][:len(keys)])
		b := &bufs[w]
		n := 0
		for i := range keys {
			if !ok[w][i] {
				continue
			}
			k, v := cfg.Project(keys[i], sc.out[i], vals[i])
			k, v, keep := applyStages(stages, k, v)
			if keep {
				b.keys[n], b.vals[n] = k, v
				n++
			}
		}
		rt.opDone(opJoinProbe, w, len(keys), n, start)
		if n == 0 {
			return nil
		}
		return sink(w, b.keys[:n], b.vals[:n])
	})
}
