package pipe_test

import (
	"errors"
	"sort"
	"testing"

	"repro/agg"
	"repro/join"
	"repro/pipe"
	"repro/table"
)

// sortedPairs normalizes a collected column pair for order-insensitive
// comparison.
func sortedPairs(keys, vals []uint64) [][2]uint64 {
	out := make([][2]uint64, len(keys))
	for i := range keys {
		out[i] = [2]uint64{keys[i], vals[i]}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func pairsEqual(a, b [][2]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCollectSerialOrder(t *testing.T) {
	keys := []uint64{5, 1, 9, 3}
	vals := []uint64{50, 10, 90, 30}
	gotK, gotV, err := pipe.FromColumns(keys, vals).Collect(pipe.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if gotK[i] != keys[i] || gotV[i] != vals[i] {
			t.Fatalf("row %d: got (%d,%d), want (%d,%d)", i, gotK[i], gotV[i], keys[i], vals[i])
		}
	}
}

func TestFilterMapFusion(t *testing.T) {
	const n = 10_000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	for _, workers := range []int{1, 4} {
		// keep even keys, double them, then drop multiples of 10: three
		// fused stages in one pass.
		s := pipe.FromColumns(keys, nil).
			Filter(func(k, _ uint64) bool { return k%2 == 0 }).
			Map(func(k, v uint64) (uint64, uint64) { return k * 2, v }).
			Filter(func(k, _ uint64) bool { return k%10 != 0 })
		count, err := s.Count(pipe.Config{Workers: workers, MorselSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, k := range keys {
			if k%2 == 0 && (k*2)%10 != 0 {
				want++
			}
		}
		if count != want {
			t.Fatalf("workers=%d: count %d, want %d", workers, count, want)
		}
	}
}

func TestStreamImmutable(t *testing.T) {
	base := pipe.FromColumns([]uint64{1, 2, 3, 4}, nil)
	odd := base.Filter(func(k, _ uint64) bool { return k%2 == 1 })
	even := base.Filter(func(k, _ uint64) bool { return k%2 == 0 })
	no, err := odd.Count(pipe.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ne, err := even.Count(pipe.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := base.Count(pipe.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if no != 2 || ne != 2 || nb != 4 {
		t.Fatalf("odd=%d even=%d base=%d, want 2/2/4", no, ne, nb)
	}
}

func TestHashJoinBasic(t *testing.T) {
	build := join.Relation{{Key: 1, Payload: 100}, {Key: 2, Payload: 200}, {Key: 3, Payload: 300}}
	probe := join.Relation{{Key: 2, Payload: 7}, {Key: 3, Payload: 8}, {Key: 9, Payload: 9}, {Key: 2, Payload: 10}}
	for _, workers := range []int{1, 4} {
		j := pipe.HashJoin(pipe.FromRelation(build), pipe.FromRelation(probe), pipe.JoinConfig{
			Project: func(k, b, p uint64) (uint64, uint64) { return k, b + p },
		})
		keys, vals, err := j.Collect(pipe.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		want := [][2]uint64{{2, 207}, {2, 210}, {3, 308}}
		if got := sortedPairs(keys, vals); !pairsEqual(got, want) {
			t.Fatalf("workers=%d: joined %v, want %v", workers, got, want)
		}
	}
}

func TestHashJoinDefaultProject(t *testing.T) {
	build := join.Relation{{Key: 4, Payload: 40}}
	probe := join.Relation{{Key: 4, Payload: 44}}
	keys, vals, err := pipe.HashJoin(pipe.FromRelation(build), pipe.FromRelation(probe), pipe.JoinConfig{}).
		Collect(pipe.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != 4 || vals[0] != 44 {
		t.Fatalf("default Project emitted (%v, %v), want key + probe payload (4, 44)", keys, vals)
	}
}

func TestGroupByTerminal(t *testing.T) {
	groups := []uint64{1, 2, 1, 3, 2, 1}
	values := []uint64{10, 20, 30, 40, 50, 60}
	g, err := pipe.FromColumns(groups, values).GroupBy(pipe.Config{Workers: 1}, pipe.GroupConfig{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := agg.MustNewGroupBy(agg.Config{})
	if err := oracle.AddBatch(groups, values); err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != oracle.NumGroups() {
		t.Fatalf("%d groups, oracle %d", g.NumGroups(), oracle.NumGroups())
	}
	for key, want := range oracle.Groups() {
		got, ok := g.Get(key)
		if !ok {
			t.Fatalf("group %d missing", key)
		}
		if *got != *want {
			t.Fatalf("group %d: %+v, want %+v", key, got, want)
		}
	}
}

func TestGroupByStreamChains(t *testing.T) {
	// count per group, then keep the groups seen more than once.
	groups := []uint64{1, 2, 1, 3, 2, 1, 4}
	s := pipe.GroupByStream(pipe.FromColumns(groups, nil), pipe.GroupConfig{}, agg.Count).
		Filter(func(_, count uint64) bool { return count > 1 })
	keys, vals, err := s.Collect(pipe.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]uint64{{1, 3}, {2, 2}}
	if got := sortedPairs(keys, vals); !pairsEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestFromGroups(t *testing.T) {
	g := agg.MustNewGroupBy(agg.Config{})
	if err := g.AddBatch([]uint64{7, 8, 7}, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	keys, vals, err := pipe.FromGroups(g, agg.Sum).Collect(pipe.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]uint64{{7, 4}, {8, 2}}
	if got := sortedPairs(keys, vals); !pairsEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestFromGroupsAvgRejected(t *testing.T) {
	g := agg.MustNewGroupBy(agg.Config{})
	if err := g.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := pipe.FromGroups(g, agg.Avg).Drain(pipe.Config{Workers: 1}); err == nil {
		t.Fatal("AVG streamed as uint64 without error")
	}
}

func TestFromHandle(t *testing.T) {
	for _, partitions := range []int{1, 8} {
		h := table.MustOpen(table.WithPartitions(partitions), table.WithSeed(7))
		const n = 5000
		want := make(map[uint64]uint64, n)
		for i := uint64(1); i <= n; i++ {
			if _, err := h.Put(i, i*3); err != nil {
				t.Fatal(err)
			}
			want[i] = i * 3
		}
		for _, workers := range []int{1, 4} {
			keys, vals, err := pipe.FromHandle(h).
				Filter(func(k, _ uint64) bool { return k%2 == 0 }).
				Collect(pipe.Config{Workers: workers, MorselSize: 256})
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != n/2 {
				t.Fatalf("partitions=%d workers=%d: %d rows, want %d", partitions, workers, len(keys), n/2)
			}
			for i := range keys {
				if keys[i]%2 != 0 {
					t.Fatalf("odd key %d leaked through the pushed-down filter", keys[i])
				}
				if want[keys[i]] != vals[i] {
					t.Fatalf("key %d: val %d, want %d", keys[i], vals[i], want[keys[i]])
				}
			}
		}
	}
}

func TestHintPreSizesSerialBuild(t *testing.T) {
	// A serial pre-sized build keeps join.HashJoin's WORM contract: an
	// understated Hint surfaces as a typed ErrFull from the build phase
	// instead of silent growth.
	build := make(join.Relation, 1000)
	for i := range build {
		build[i] = join.Row{Key: uint64(i) + 1, Payload: 1}
	}
	probe := join.Relation{{Key: 1, Payload: 1}}
	err := pipe.HashJoin(pipe.FromRelation(build).Hint(8), pipe.FromRelation(probe), pipe.JoinConfig{}).
		Drain(pipe.Config{Workers: 1})
	if err == nil {
		t.Fatal("understated hint did not fail the WORM build")
	}
	if !errors.Is(err, table.ErrFull) {
		t.Fatalf("build error %v does not wrap table.ErrFull", err)
	}
}
