package pipe

// The streaming GROUP BY: each worker folds the batches it receives
// into its own agg.GroupBy local through the batched single-probe
// pipeline (no locks — the batchSink contract delivers worker w's
// batches on worker w's goroutine), and the locals are merged once on
// drain. GroupByStream re-enters the pipeline: the merged result is
// streamed downstream group-at-a-time via agg's Groups iterator, never
// materialized into a result slice.

import (
	"fmt"

	"repro/agg"
	"repro/hashfn"
	"repro/table"
)

// GroupConfig parameterizes a streaming group-by; it mirrors agg.Config.
type GroupConfig struct {
	// Scheme selects the group-index table (default agg's QP).
	Scheme table.Scheme
	// Family is the hash-function class (default Mult).
	Family hashfn.Family
	// ExpectedGroups pre-sizes each worker's group index; 0 starts small
	// and grows.
	ExpectedGroups int
	Seed           uint64
}

func (c GroupConfig) aggConfig() agg.Config {
	return agg.Config{
		Scheme:         c.Scheme,
		Family:         c.Family,
		ExpectedGroups: c.ExpectedGroups,
		Seed:           c.Seed,
	}
}

// GroupBy is the aggregating terminal: it runs the stream, folding each
// row (k, v) into group k, and returns the merged aggregation. With
// cfg.Workers == 1 the result is state-for-state identical to
// agg.AddBatch over the same rows; with more workers the per-group
// states are identical and only the first-seen group order varies.
func (s *Stream) GroupBy(cfg Config, gcfg GroupConfig) (*agg.GroupBy, error) {
	rt := newRuntime(cfg)
	defer rt.close()
	return s.groupBy(rt, gcfg)
}

// groupBy is GroupBy on an existing runtime, shared with GroupByStream.
func (s *Stream) groupBy(rt *runtime, gcfg GroupConfig) (*agg.GroupBy, error) {
	locals := make([]*agg.GroupBy, rt.pool.Workers())
	err := s.src.run(rt, s.stages, func(w int, keys, vals []uint64) error {
		start := rt.opStart()
		local := locals[w]
		if local == nil {
			c := gcfg.aggConfig()
			// Independent per-worker seeds: the locals' group indexes
			// are private, so their hash functions need not match.
			c.Seed += uint64(w+1) * 0x9e3779b97f4a7c15
			var err error
			local, err = agg.NewGroupBy(c)
			if err != nil {
				return err
			}
			locals[w] = local
		}
		err := local.AddBatch(keys, vals)
		rt.opDone(opGroupBy, w, len(keys), len(keys), start)
		return err
	})
	if err != nil {
		return nil, err
	}
	result, err := agg.NewGroupBy(gcfg.aggConfig())
	if err != nil {
		return nil, err
	}
	for _, local := range locals {
		if local == nil {
			continue
		}
		if err := result.Merge(local); err != nil {
			return nil, err
		}
	}
	return result, nil
}

// GroupByStream is the mid-pipeline group-by: it aggregates src like
// the GroupBy terminal, then streams the merged groups downstream as
// (group key, f(state)) rows — COUNT, SUM, MIN or MAX (AVG is not an
// integer and fails the run). The grouped output is emitted via agg's
// Groups iterator, one morsel-sized batch at a time; the full result
// slice never exists.
func GroupByStream(src *Stream, gcfg GroupConfig, f agg.Func) *Stream {
	hint := gcfg.ExpectedGroups
	if hint <= 0 {
		hint = src.size() // groups ≤ rows
	}
	return &Stream{src: &groupsSource{src: src, gcfg: gcfg, fn: f}, hint: hint}
}

// FromGroups streams an already-built aggregation as
// (group key, f(state)) rows, in first-seen order.
func FromGroups(g *agg.GroupBy, f agg.Func) *Stream {
	return &Stream{src: &groupsSource{agg: g, fn: f}}
}

// stateValue extracts the streamed aggregate from one group state.
func stateValue(f agg.Func, s *agg.State) (uint64, error) {
	switch f {
	case agg.Count:
		return s.Count, nil
	case agg.Sum:
		return s.Sum, nil
	case agg.Min:
		return s.Min, nil
	case agg.Max:
		return s.Max, nil
	}
	return 0, fmt.Errorf("pipe: %v cannot stream as a uint64 column; aggregate with the GroupBy terminal instead", f)
}

// groupsSource streams the groups of an aggregation — either a finished
// one (agg set) or one built on demand from src when the terminal runs.
type groupsSource struct {
	src  *Stream // nil when agg is pre-built
	agg  *agg.GroupBy
	gcfg GroupConfig
	fn   agg.Func
}

func (s *groupsSource) rows() int {
	if s.agg != nil {
		return s.agg.NumGroups()
	}
	if s.gcfg.ExpectedGroups > 0 {
		return s.gcfg.ExpectedGroups
	}
	return s.src.size()
}

func (s *groupsSource) run(rt *runtime, stages []stage, sink batchSink) error {
	g := s.agg
	if g == nil {
		var err error
		if g, err = s.src.groupBy(rt, s.gcfg); err != nil {
			return err
		}
	}
	// The drain is serial (groups live in one merged operator), wrapped
	// as one pool task for panic containment and cancellation parity
	// with the parallel scans.
	return rt.pool.ForEach(1, func(w, _ int) error {
		b := batch{
			keys: make([]uint64, rt.pool.MorselSize()),
			vals: make([]uint64, rt.pool.MorselSize()),
		}
		start := rt.opStart()
		seen, n := 0, 0
		var err error
		flush := func() bool {
			rt.opDone(opScan, w, seen, n, start)
			if n > 0 {
				err = sink(w, b.keys[:n], b.vals[:n])
			}
			if err == nil {
				err = rt.ctxErr()
			}
			seen, n = 0, 0
			start = rt.opStart()
			return err == nil
		}
		for key, st := range g.Groups() {
			seen++
			v, verr := stateValue(s.fn, st)
			if verr != nil {
				return verr
			}
			k, v, keep := applyStages(stages, key, v)
			if keep {
				b.keys[n], b.vals[n] = k, v
				n++
				if n == len(b.keys) && !flush() {
					break
				}
			}
		}
		if err == nil && (seen > 0 || n > 0) {
			flush()
		}
		return err
	})
}
