package pipe

// Per-operator telemetry on the obs primitives: striped counters for
// rows in/out and morsels (stripe hint = worker index, so recording is
// contention-free), a log-bucketed histogram for per-morsel latency, and
// a pull-computed selectivity per operator. Attach via Config.Metrics;
// nil — the default — keeps every pipeline loop free of clock reads and
// atomics (the hooks are nil-guarded on the runtime, not compiled out).

import (
	"fmt"

	"repro/obs"
)

// op indexes the instrumented operators.
type op int

const (
	opScan op = iota // scans and group-drain emission
	opJoinBuild
	opJoinProbe
	opGroupBy
	numOps
)

var opNames = [numOps]string{"scan", "join_build", "join_probe", "group_by"}

// OpMetrics is one operator's instrument set.
type OpMetrics struct {
	// RowsIn counts rows entering the operator (scan: source rows
	// visited; join probe: probe rows; group-by: rows folded).
	RowsIn *obs.Counter
	// RowsOut counts rows emitted downstream after the fused stage
	// chain — RowsOut/RowsIn is the operator's observed selectivity, and
	// for a scan with pushed-down predicates the gap is exactly the rows
	// whose emission was skipped.
	RowsOut *obs.Counter
	// Morsels counts batches processed.
	Morsels *obs.Counter
	// Nanos is the per-morsel processing latency.
	Nanos *obs.Histogram
}

// Metrics is one pipeline's (or one process's — recording is additive
// and concurrent-safe) operator telemetry.
type Metrics struct {
	ops [numOps]OpMetrics
}

// NewMetrics sizes the stripes for the given worker count (as passed in
// Config.Workers; values < 1 get one stripe per CPU worker anyway via
// rounding — stripes only affect contention, not correctness).
func NewMetrics(workers int) *Metrics {
	if workers < 1 {
		workers = 1
	}
	m := &Metrics{}
	for i := range m.ops {
		m.ops[i] = OpMetrics{
			RowsIn:  obs.NewCounter(workers),
			RowsOut: obs.NewCounter(workers),
			Morsels: obs.NewCounter(workers),
			Nanos:   obs.NewHistogram(workers),
		}
	}
	return m
}

// Scan returns the scan/emission instruments.
func (m *Metrics) Scan() *OpMetrics { return &m.ops[opScan] }

// JoinBuild returns the join build-phase instruments.
func (m *Metrics) JoinBuild() *OpMetrics { return &m.ops[opJoinBuild] }

// JoinProbe returns the join probe-phase instruments.
func (m *Metrics) JoinProbe() *OpMetrics { return &m.ops[opJoinProbe] }

// GroupBy returns the group-by instruments.
func (m *Metrics) GroupBy() *OpMetrics { return &m.ops[opGroupBy] }

// Register files every instrument with the registry for the /metrics
// exposition, labeled per operator:
//
//	pipe_rows_total{op="scan",dir="in"}     counter
//	pipe_rows_total{op="scan",dir="out"}    counter
//	pipe_morsels_total{op="scan"}           counter
//	pipe_morsel_nanos{op="scan"}            summary (p50/p90/p99/p999)
//	pipe_selectivity{op="scan"}             gauge, rows out / rows in
//
// prefix replaces the leading "pipe" when non-empty (register two
// pipelines under distinct prefixes).
func (m *Metrics) Register(r *obs.Registry, prefix string) {
	if prefix == "" {
		prefix = "pipe"
	}
	for i := range m.ops {
		o, name := &m.ops[i], opNames[i]
		r.RegisterCounter(
			fmt.Sprintf(`%s_rows_total{op=%q,dir="in"}`, prefix, name),
			"rows entering each pipeline operator", o.RowsIn)
		r.RegisterCounter(
			fmt.Sprintf(`%s_rows_total{op=%q,dir="out"}`, prefix, name),
			"rows emitted downstream by each pipeline operator", o.RowsOut)
		r.RegisterCounter(
			fmt.Sprintf(`%s_morsels_total{op=%q}`, prefix, name),
			"column batches processed by each pipeline operator", o.Morsels)
		r.RegisterHistogram(
			fmt.Sprintf(`%s_morsel_nanos{op=%q}`, prefix, name),
			"per-morsel processing latency by operator", o.Nanos)
		r.RegisterFunc(
			fmt.Sprintf(`%s_selectivity{op=%q}`, prefix, name),
			"rows out / rows in per operator (1 = nothing filtered)",
			func() float64 {
				in := o.RowsIn.Value()
				if in == 0 {
					return 1
				}
				return float64(o.RowsOut.Value()) / float64(in)
			})
	}
}

// opStart samples the morsel start time when instrumented; 0 otherwise.
func (rt *runtime) opStart() int64 {
	if rt.met == nil {
		return 0
	}
	return obs.Now()
}

// opDone records one processed morsel: in rows entered, out survived.
func (rt *runtime) opDone(o op, worker, in, out int, start int64) {
	if rt.met == nil {
		return
	}
	om := &rt.met.ops[o]
	om.RowsIn.Add(worker, uint64(in))
	om.RowsOut.Add(worker, uint64(out))
	om.Morsels.Inc(worker)
	om.Nanos.Record(worker, obs.Now()-start)
}
