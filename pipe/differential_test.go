package pipe_test

// Differential oracle suite: the streaming pipeline must produce exactly
// the rows and aggregate states of the one-shot operator composition
// (join.HashJoin + agg.AddBatch) it replaces — across every registered
// table scheme, serial and parallel, including scans of a sharded engine
// caught mid-resize.

import (
	"math/rand"
	"sort"
	"testing"

	"repro/agg"
	"repro/join"
	"repro/pipe"
	"repro/table"
)

// The TPC-H-flavored fixture: customers carry a market segment, orders
// reference customers by key (with some dangling FKs) and carry a price
// in cents. The query under test is
//
//	SELECT c.segment, SUM(o.cents), COUNT(*), MIN(o.cents), MAX(o.cents)
//	FROM orders o JOIN customers c ON o.custkey = c.custkey
//	WHERE o.cents >= cut
//	GROUP BY c.segment

const (
	diffCustomers = 3_000
	diffOrders    = 20_000
	diffSegments  = 7
	diffCut       = 2_500 // ~75% of orders survive the filter
)

func makeCustomers() join.Relation {
	rel := make(join.Relation, diffCustomers)
	for i := range rel {
		key := uint64(i) + 1
		rel[i] = join.Row{Key: key, Payload: key % diffSegments}
	}
	return rel
}

func makeOrders(rng *rand.Rand) join.Relation {
	rel := make(join.Relation, diffOrders)
	for i := range rel {
		// ~23% of order keys point past the customer range: join misses.
		rel[i] = join.Row{
			Key:     uint64(rng.Intn(diffCustomers*13/10)) + 1,
			Payload: uint64(rng.Intn(10_000)),
		}
	}
	return rel
}

// oracleStates computes the query with the materializing operators.
func oracleStates(t *testing.T, customers, orders join.Relation, scheme table.Scheme) *agg.GroupBy {
	t.Helper()
	filtered := make(join.Relation, 0, len(orders))
	for _, r := range orders {
		if r.Payload >= diffCut {
			filtered = append(filtered, r)
		}
	}
	oracle := agg.MustNewGroupBy(agg.Config{})
	_, err := join.HashJoin(customers, filtered, join.Config{Scheme: scheme, Seed: 99},
		func(_, segment, cents uint64) {
			if err := oracle.Add(segment, cents); err != nil {
				t.Fatal(err)
			}
		})
	if err != nil {
		t.Fatalf("oracle join (%s): %v", scheme, err)
	}
	return oracle
}

func sameGroups(t *testing.T, got, want *agg.GroupBy, label string) {
	t.Helper()
	if got.NumGroups() != want.NumGroups() {
		t.Fatalf("%s: %d groups, oracle %d", label, got.NumGroups(), want.NumGroups())
	}
	for key, ws := range want.Groups() {
		gs, ok := got.Get(key)
		if !ok {
			t.Fatalf("%s: group %d missing", label, key)
		}
		if *gs != *ws {
			t.Fatalf("%s: group %d state %+v, oracle %+v", label, key, gs, ws)
		}
	}
}

func TestDifferentialJoinGroupBy(t *testing.T) {
	customers := makeCustomers()
	orders := makeOrders(rand.New(rand.NewSource(42)))
	for _, scheme := range table.AllSchemes() {
		oracle := oracleStates(t, customers, orders, scheme)
		for _, workers := range []int{1, 8} {
			g, err := pipe.HashJoin(
				pipe.FromRelation(customers),
				pipe.FromRelation(orders).Filter(func(_, cents uint64) bool { return cents >= diffCut }),
				pipe.JoinConfig{
					Scheme:  scheme,
					Seed:    99,
					Project: func(_, segment, cents uint64) (uint64, uint64) { return segment, cents },
				},
			).GroupBy(pipe.Config{Workers: workers, MorselSize: 512}, pipe.GroupConfig{})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", scheme, workers, err)
			}
			sameGroups(t, g, oracle, string(scheme))
		}
	}
}

// TestDifferentialJoinCollect checks the raw joined row multiset (before
// any aggregation) against the NestedLoopJoin oracle.
func TestDifferentialJoinCollect(t *testing.T) {
	customers := makeCustomers()[:500]
	orders := makeOrders(rand.New(rand.NewSource(7)))[:4_000]
	var want [][2]uint64
	join.NestedLoopJoin(customers, orders, func(key, _, cents uint64) {
		want = append(want, [2]uint64{key, cents})
	})
	sortPairs(want)
	for _, workers := range []int{1, 8} {
		keys, vals, err := pipe.HashJoin(
			pipe.FromRelation(customers), pipe.FromRelation(orders), pipe.JoinConfig{},
		).Collect(pipe.Config{Workers: workers, MorselSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		if got := sortedPairs(keys, vals); !pairsEqual(got, want) {
			t.Fatalf("workers=%d: joined multiset diverges from nested-loop oracle (%d vs %d rows)",
				workers, len(got), len(want))
		}
	}
}

// TestDifferentialScanMidResize scans a sharded engine while at least one
// shard has an incremental resize in flight, and checks the streamed rows
// against everything inserted. The weakly-consistent walk must still
// yield each key exactly once with its current value.
func TestDifferentialScanMidResize(t *testing.T) {
	h := table.MustOpen(
		table.WithPartitions(8),
		table.WithCapacity(128), // small: inserts force per-shard resizes
		table.WithSeed(3),
	)
	want := make(map[uint64]uint64)
	var key uint64
	insert := func(n int) {
		for i := 0; i < n; i++ {
			key++
			if _, err := h.Put(key, key*7); err != nil {
				t.Fatal(err)
			}
			want[key] = key * 7
		}
	}
	insert(1024)
	// Push more keys until a resize is observably in flight. The engine
	// migrates incrementally, so the window is wide; give up loudly if
	// the build is too fast to catch.
	migrating := false
	for round := 0; round < 200; round++ {
		insert(256)
		if h.EngineStats().Migrating > 0 {
			migrating = true
			break
		}
	}
	if !migrating {
		t.Skip("could not catch a resize in flight; engine migrated too eagerly")
	}
	for _, workers := range []int{1, 8} {
		if h.EngineStats().Migrating == 0 {
			t.Log("resize completed before scan; coverage is best-effort for this worker count")
		}
		keys, vals, err := pipe.FromHandle(h).Collect(pipe.Config{Workers: workers, MorselSize: 128})
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != len(want) {
			t.Fatalf("workers=%d: scanned %d rows, inserted %d", workers, len(keys), len(want))
		}
		seen := make(map[uint64]bool, len(keys))
		for i := range keys {
			if seen[keys[i]] {
				t.Fatalf("workers=%d: key %d yielded twice", workers, keys[i])
			}
			seen[keys[i]] = true
			if want[keys[i]] != vals[i] {
				t.Fatalf("workers=%d: key %d = %d, want %d", workers, keys[i], vals[i], want[keys[i]])
			}
		}
	}
}

// TestDifferentialGroupByStream checks the two-level aggregation
// (group, then re-group the aggregates) against a serial recomputation.
func TestDifferentialGroupByStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	groups := make([]uint64, 50_000)
	values := make([]uint64, len(groups))
	for i := range groups {
		groups[i] = uint64(rng.Intn(1_000))
		values[i] = uint64(rng.Intn(100))
	}
	// Oracle: per-group counts, then a histogram of those counts.
	perGroup := map[uint64]uint64{}
	for _, g := range groups {
		perGroup[g]++
	}
	wantHist := agg.MustNewGroupBy(agg.Config{})
	for _, c := range perGroup {
		if err := wantHist.Add(c, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 8} {
		got, err := pipe.GroupByStream(
			pipe.FromColumns(groups, values), pipe.GroupConfig{}, agg.Count,
		).Map(func(_, count uint64) (uint64, uint64) { return count, 1 }).
			GroupBy(pipe.Config{Workers: workers, MorselSize: 1024}, pipe.GroupConfig{})
		if err != nil {
			t.Fatal(err)
		}
		sameGroups(t, got, wantHist, "count-histogram")
	}
}

// sortPairs applies sortedPairs' ordering in place, for multiset
// comparison of oracle output.
func sortPairs(p [][2]uint64) {
	sort.Slice(p, func(i, j int) bool {
		if p[i][0] != p[j][0] {
			return p[i][0] < p[j][0]
		}
		return p[i][1] < p[j][1]
	})
}
