package pipe_test

import (
	"strings"
	"testing"

	"repro/join"
	"repro/obs"
	"repro/pipe"
)

func TestMetricsCountersAndSelectivity(t *testing.T) {
	const n = 8_192
	keys := bigColumn(n)
	for _, workers := range []int{1, 4} {
		m := pipe.NewMetrics(workers)
		count, err := pipe.FromColumns(keys, nil).
			Filter(func(k, _ uint64) bool { return k%4 == 0 }).
			Count(pipe.Config{Workers: workers, MorselSize: 1024, Metrics: m})
		if err != nil {
			t.Fatal(err)
		}
		sc := m.Scan()
		if got := sc.RowsIn.Value(); got != n {
			t.Fatalf("workers=%d: scan rows in = %d, want %d", workers, got, n)
		}
		if got := sc.RowsOut.Value(); got != uint64(count) {
			t.Fatalf("workers=%d: scan rows out = %d, want the terminal's count %d", workers, got, count)
		}
		if got := sc.Morsels.Value(); got != n/1024 {
			t.Fatalf("workers=%d: %d morsels, want %d", workers, got, n/1024)
		}
		if got := sc.Nanos.Snapshot().Count; got != n/1024 {
			t.Fatalf("workers=%d: %d latency samples, want %d", workers, got, n/1024)
		}
	}
}

func TestMetricsJoinPhases(t *testing.T) {
	build := join.Relation{{Key: 1, Payload: 1}, {Key: 2, Payload: 2}}
	probe := make(join.Relation, 1_000)
	for i := range probe {
		probe[i] = join.Row{Key: uint64(i % 4), Payload: uint64(i)} // keys 0,3 miss
	}
	m := pipe.NewMetrics(1)
	if err := pipe.HashJoin(pipe.FromRelation(build), pipe.FromRelation(probe), pipe.JoinConfig{}).
		Drain(pipe.Config{Workers: 1, Metrics: m}); err != nil {
		t.Fatal(err)
	}
	if got := m.JoinBuild().RowsIn.Value(); got != uint64(len(build)) {
		t.Fatalf("join build rows = %d, want %d", got, len(build))
	}
	if got := m.JoinProbe().RowsIn.Value(); got != uint64(len(probe)) {
		t.Fatalf("join probe rows in = %d, want %d", got, len(probe))
	}
	if got := m.JoinProbe().RowsOut.Value(); got != 500 {
		t.Fatalf("join probe rows out = %d, want 500 (half the keys match)", got)
	}
}

func TestMetricsRegisterExposition(t *testing.T) {
	m := pipe.NewMetrics(2)
	if _, err := pipe.FromColumns(bigColumn(100), nil).
		Count(pipe.Config{Workers: 2, Metrics: m}); err != nil {
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	m.Register(r, "")
	var sb strings.Builder
	r.WriteText(&sb)
	text := sb.String()
	for _, want := range []string{
		`pipe_rows_total{op="scan",dir="in"} 100`,
		`pipe_morsels_total{op="scan"}`,
		`pipe_morsel_nanos`,
		`pipe_selectivity{op="scan"} 1`,
		`pipe_rows_total{op="join_probe",dir="in"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}
