// Package pipe composes the repo's relational operators — scan, filter,
// hash join, group-by — into lazy, morsel-streaming pipelines on one
// exec.Pool, replacing the materialize-everything composition of one-shot
// join.HashJoin + agg.AddBatch calls.
//
// The one-shot operators allocate every intermediate relation in full
// before the next operator starts: a filtered scan copies the survivors
// into a fresh slice, a join materializes its matches, and only then does
// the aggregation see a row. A pipeline never does that. A Stream is a
// lazy description of the query; nothing runs until a terminal
// (Collect, Count, Sink, Drain, GroupBy) drives it, and then data moves
// through the whole operator chain one MorselSize-granular batch of
// (key, value) columns at a time, on the pool's workers:
//
//	seg := pipe.HashJoin(
//		pipe.FromRelation(customers),                       // build side
//		pipe.FromRelation(orders).Filter(bigOrder),         // probe side
//		pipe.JoinConfig{Project: bySegment},
//	)
//	g, err := seg.GroupBy(pipe.Config{}, pipe.GroupConfig{})
//
// The optimizations are structural, not opt-in:
//
//   - Predicate pushdown: Filter and Map stages are fused into the scan
//     (or the join's probe emission) that feeds them — one pass per
//     morsel applies the whole stage chain per row, and a row failing a
//     predicate is skipped at emission rather than copied and dropped.
//   - Build-side pre-sizing: HashJoin sizes its build table with
//     join.CapacityFor from the build stream's cardinality hint (known
//     slice lengths, table.Handle.Len, or an explicit Hint from a dist
//     tape), so the build never rehashes.
//   - Shared scheduling: every phase of every operator runs on one
//     exec.Pool with the established first-error, cancellation
//     (Config.Ctx) and panic-containment conventions; per-worker column
//     scratch is reused across morsels, so steady-state processing does
//     not allocate.
//   - Observability: Config.Metrics attaches per-operator rows in/out,
//     morsel counts and morsel-latency histograms (obs primitives),
//     registrable on an obs.Registry for the /metrics exposition —
//     including a pull-computed selectivity per operator.
//
// Scans cover the in-memory shapes the repo produces: join.Relation and
// raw columns (FromRelation, FromColumns), live tables (FromHandle —
// sharded handles are walked shard-parallel via shard.Engine.RangeShard,
// weakly consistent and correct mid-resize), and finished aggregations
// (FromGroups, or GroupByStream for a mid-pipeline group-by that streams
// its merged groups downstream via agg's Groups iterator).
//
// Prefer pipe over the one-shot operators when a query chains two or
// more operators or when intermediate results are large relative to
// cache: the one-shot path's intermediates cost allocation, copying and
// cache misses proportional to the *unfiltered* data volume, the
// pipeline's cost is proportional to the rows that survive. Single
// operators over already-materialized inputs (one join, one aggregation)
// lose nothing by staying on join.HashJoin / agg.AddBatch, and
// partition-parallel radix joins (join.PartitionedHashJoin) remain the
// better shape when the build side is too big for one shared table.
package pipe
