package pipe

// The scan operators: every pipeline starts at one. A scan owns the
// pushdown loop — the fused stage chain runs while the source batch is
// being filled, so a row failing a predicate is skipped at emission
// instead of copied and then dropped downstream.

import (
	"fmt"

	"repro/join"
	"repro/table"
)

// FromColumns scans parallel key/value columns. vals may be nil, in
// which case every row's value is 0 (key-only streams). The slices are
// read, not copied: they must stay unmodified for the duration of each
// terminal run.
func FromColumns(keys, vals []uint64) *Stream {
	if vals != nil && len(vals) != len(keys) {
		panic(fmt.Sprintf("pipe: FromColumns length mismatch: %d keys, %d vals", len(keys), len(vals)))
	}
	return &Stream{src: &columnsSource{keys: keys, vals: vals}}
}

// FromRelation scans an in-memory join.Relation as (Key, Payload) rows.
func FromRelation(rel join.Relation) *Stream {
	return &Stream{src: &relationSource{rel: rel}}
}

// FromHandle scans a live table.Handle. A sharded handle (opened
// WithPartitions) is walked shard-parallel — one pool task per shard via
// shard.Engine.RangeShard, weakly consistent and correct mid-resize
// (the migration-aware successor-then-frozen walk yields each key at
// most once). A single-partition handle is walked serially as one task.
// The stage chain and downstream operators run while a shard lock is
// held, so the pipeline must not write back into the same handle.
func FromHandle(h *table.Handle) *Stream {
	return &Stream{src: &handleSource{h: h}}
}

// ---------------------------------------------------------------------------
// Columns / relation scans: morsel-parallel over an index range.
// ---------------------------------------------------------------------------

type columnsSource struct {
	keys, vals []uint64
}

func (s *columnsSource) rows() int { return len(s.keys) }

func (s *columnsSource) run(rt *runtime, stages []stage, sink batchSink) error {
	bufs := rt.newBatches()
	return rt.pool.ForMorsels(len(s.keys), func(w, lo, hi int) error {
		start := rt.opStart()
		b := &bufs[w]
		n := 0
		for i := lo; i < hi; i++ {
			var v uint64
			if s.vals != nil {
				v = s.vals[i]
			}
			k, v, keep := applyStages(stages, s.keys[i], v)
			if keep {
				b.keys[n], b.vals[n] = k, v
				n++
			}
		}
		rt.opDone(opScan, w, hi-lo, n, start)
		if n == 0 {
			return nil
		}
		return sink(w, b.keys[:n], b.vals[:n])
	})
}

type relationSource struct {
	rel join.Relation
}

func (s *relationSource) rows() int { return len(s.rel) }

func (s *relationSource) run(rt *runtime, stages []stage, sink batchSink) error {
	bufs := rt.newBatches()
	return rt.pool.ForMorsels(len(s.rel), func(w, lo, hi int) error {
		start := rt.opStart()
		b := &bufs[w]
		n := 0
		for i := lo; i < hi; i++ {
			k, v, keep := applyStages(stages, s.rel[i].Key, s.rel[i].Payload)
			if keep {
				b.keys[n], b.vals[n] = k, v
				n++
			}
		}
		rt.opDone(opScan, w, hi-lo, n, start)
		if n == 0 {
			return nil
		}
		return sink(w, b.keys[:n], b.vals[:n])
	})
}

// ---------------------------------------------------------------------------
// Handle scan: shard-parallel over a sharded engine, serial otherwise.
// ---------------------------------------------------------------------------

type handleSource struct {
	h *table.Handle
}

func (s *handleSource) rows() int { return s.h.Len() }

func (s *handleSource) run(rt *runtime, stages []stage, sink batchSink) error {
	eng := s.h.Engine()
	if eng == nil {
		// Single-partition handle: a serial walk, wrapped as one pool
		// task so a panicking stage is contained and cancellation is
		// checked like everywhere else.
		return rt.pool.ForEach(1, func(w, _ int) error {
			b := batch{
				keys: make([]uint64, rt.pool.MorselSize()),
				vals: make([]uint64, rt.pool.MorselSize()),
			}
			return s.walk(rt, stages, sink, w, &b, s.h.Range)
		})
	}
	bufs := rt.newBatches()
	return rt.pool.ForEach(eng.Shards(), func(w, shard int) error {
		return s.walk(rt, stages, sink, w, &bufs[w], func(fn func(k, v uint64) bool) {
			eng.RangeShard(shard, fn)
		})
	})
}

// walk streams one range callback into morsel-sized batches through the
// fused stages, flushing to sink as each batch fills and once at the
// end. Cancellation is checked at every flush — the same granularity
// the pool's claim cursor gives morsel-parallel scans.
func (s *handleSource) walk(rt *runtime, stages []stage, sink batchSink, w int, b *batch, rangeFn func(func(k, v uint64) bool)) error {
	start := rt.opStart()
	seen, n := 0, 0
	var err error
	flush := func() bool {
		rt.opDone(opScan, w, seen, n, start)
		if n > 0 {
			err = sink(w, b.keys[:n], b.vals[:n])
		}
		if err == nil {
			err = rt.ctxErr()
		}
		seen, n = 0, 0
		start = rt.opStart()
		return err == nil
	}
	rangeFn(func(k, v uint64) bool {
		seen++
		k, v, keep := applyStages(stages, k, v)
		if keep {
			b.keys[n], b.vals[n] = k, v
			n++
			if n == len(b.keys) {
				return flush()
			}
		}
		return true
	})
	if err == nil && (seen > 0 || n > 0) {
		flush()
	}
	return err
}
