// Package repro is a from-scratch Go reproduction of "A Seven-Dimensional
// Analysis of Hashing Methods and its Implications on Query Processing"
// (Richter, Alvarez, Dittrich; PVLDB 9(3), 2015).
//
// The public entry point is table.Open, a workload-aware façade with
// functional options (scheme, capacity, growth threshold, hash family,
// striped partitioning, or a workload description routed through the
// paper's Figure 8 decision graph). The library lives in the subpackages:
//
//	table    — the Open/Handle façade and the hashing schemes: the paper's
//	           five (+ SoA layout variant) plus the DH probe-kernel extension
//	shard    — the concurrent sharded engine (wait-free seqlock reads, incremental resize)
//	exec     — the morsel-driven parallel execution core (bounded worker
//	           pool, morsel scheduling, the shared scatter→gather primitive)
//	hashfn   — the four hash-function classes
//	dist     — the three key distributions
//	workload — the WORM, RW and concurrent-RW workload drivers
//	stats    — displacement/cluster/chain analysis and Knuth's formulas
//	bench    — the harness regenerating every figure of the evaluation
//	decision — the Figure 8 practitioner decision graph (+ shard/worker-count advice)
//
// See README.md for a tour, the new-API migration table, and how to
// regenerate the paper's figures. The benchmarks in bench_test.go
// regenerate each figure via "go test -bench Fig -benchmem"; the batched
// pipeline is measured by "go test -bench Batch" and the single-probe
// build primitives by "go test -bench BuildSingleProbe ./table/".
package repro
