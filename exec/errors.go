package exec

import (
	"errors"
	"fmt"
)

// ErrOverloaded is the admission-control fast-fail: a submission was
// refused because Config.MaxInFlight submissions are already executing.
// It is returned before any task runs, so a refused submission has no
// partial effects — the caller can shed load or retry with backoff.
var ErrOverloaded = errors.New("exec: pool over its in-flight submission limit")

// PanicError is a worker panic contained by the pool: instead of
// unwinding the process, a panicking task is recovered and surfaces
// through the first-error convention as a typed error carrying the task
// index, the panic value, and the stack at the point of the panic.
type PanicError struct {
	// Task is the task index whose callback panicked.
	Task int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack (debug.Stack).
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: task %d panicked: %v", e.Task, e.Value)
}

// SuppressedError wraps the first error of a run when further tasks
// also failed concurrently: the first error wins the return slot, but
// the losers are counted instead of vanishing, so chaos tests can
// assert nothing was dropped. Unwrap yields the first error, keeping
// errors.Is/As chains intact.
type SuppressedError struct {
	// First is the error that won the first-error slot.
	First error
	// Count is how many additional task errors were suppressed.
	Count int
}

func (e *SuppressedError) Error() string {
	return fmt.Sprintf("%v (+%d suppressed task errors)", e.First, e.Count)
}

// Unwrap exposes the first error to errors.Is/errors.As.
func (e *SuppressedError) Unwrap() error { return e.First }
