package exec_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/exec"
)

func newInstrumented(t *testing.T, workers int) (*exec.Pool, *exec.PoolMetrics, *exec.Trace) {
	t.Helper()
	m := exec.NewPoolMetrics(workers)
	tr := exec.NewTrace(workers, 4096)
	p := exec.NewPool(exec.Config{Workers: workers, Ctx: context.Background(), Metrics: m, Trace: tr})
	t.Cleanup(p.Close)
	return p, m, tr
}

func TestPoolMetricsCounts(t *testing.T) {
	p, m, _ := newInstrumented(t, 4)
	const tasks = 64
	if err := p.ForEach(tasks, func(w, task int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := m.Tasks.Value(); got != tasks {
		t.Fatalf("Tasks = %d, want %d", got, tasks)
	}
	if got := m.Submissions.Value(); got != 1 {
		t.Fatalf("Submissions = %d, want 1", got)
	}
	if snap := m.TaskNanos.Snapshot(); snap.Count != tasks {
		t.Fatalf("TaskNanos count = %d, want %d", snap.Count, tasks)
	}
	if snap := m.QueueWait.Snapshot(); snap.Count != tasks {
		t.Fatalf("QueueWait count = %d, want %d", snap.Count, tasks)
	}
	if m.Steals.Value() > m.Tasks.Value() {
		t.Fatalf("Steals %d exceeds Tasks %d", m.Steals.Value(), m.Tasks.Value())
	}
}

func TestPoolMetricsInlinePath(t *testing.T) {
	// One worker forces the inline fast path: telemetry must still flow.
	p, m, tr := newInstrumented(t, 1)
	if err := p.ForEach(10, func(w, task int) error {
		time.Sleep(time.Microsecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.Tasks.Value(); got != 10 {
		t.Fatalf("inline Tasks = %d, want 10", got)
	}
	if m.BusyNanos.ValueAt(0) == 0 {
		t.Fatal("inline BusyNanos stayed zero across sleeping tasks")
	}
	var taskEvents int
	for _, ev := range tr.Events() {
		if ev.Kind == exec.EvTask {
			taskEvents++
		}
	}
	if taskEvents != 10 {
		t.Fatalf("inline trace task events = %d, want 10", taskEvents)
	}
}

func TestPoolMetricsErrorAndPanic(t *testing.T) {
	p, m, _ := newInstrumented(t, 4)
	boom := errors.New("boom")
	if err := p.ForEach(16, func(w, task int) error {
		if task == 3 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if m.Errors.Value() == 0 {
		t.Fatal("Errors stayed zero after a failing task")
	}
	err := p.ForEach(16, func(w, task int) error {
		if task == 3 {
			panic("kaboom")
		}
		return nil
	})
	var pe *exec.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if m.Panics.Value() == 0 {
		t.Fatal("Panics stayed zero after a panicking task")
	}
}

func TestPoolMetricsCancel(t *testing.T) {
	p, m, tr := newInstrumented(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := p.ForEachCtx(ctx, 256, func(w, task int) error {
		if task == 0 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := m.Cancels.Value(); got != 1 {
		t.Fatalf("Cancels = %d, want exactly 1 per cancelled submission", got)
	}
	var sawCancel bool
	for _, ev := range tr.Events() {
		if ev.Kind == exec.EvCancel {
			sawCancel = true
		}
	}
	if !sawCancel {
		t.Fatal("no EvCancel event in trace")
	}
}

func TestPoolMetricsOverload(t *testing.T) {
	m := exec.NewPoolMetrics(2)
	p := exec.NewPool(exec.Config{Workers: 2, Ctx: context.Background(), MaxInFlight: 1, Metrics: m})
	defer p.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- p.ForEach(2, func(w, task int) error {
			if task == 0 {
				close(started)
			}
			<-release
			return nil
		})
	}()
	<-started
	if err := p.ForEach(2, func(w, task int) error { return nil }); !errors.Is(err, exec.ErrOverloaded) {
		t.Fatalf("second submission err = %v, want ErrOverloaded", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := m.Overloads.Value(); got != 1 {
		t.Fatalf("Overloads = %d, want 1", got)
	}
	if got := m.Submissions.Value(); got != 1 {
		t.Fatalf("Submissions = %d, want 1 (the refused one must not count)", got)
	}
}

func TestTraceEventsCoverTasks(t *testing.T) {
	p, _, tr := newInstrumented(t, 4)
	const n = 100_000
	if err := p.ForMorsels(n, func(w, lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for _, ev := range tr.Events() {
		if ev.Kind == exec.EvTask {
			if ev.End < ev.Start {
				t.Fatalf("task %d: End %d < Start %d", ev.Task, ev.End, ev.Start)
			}
			seen[ev.Task] = true
		}
	}
	morsels := (n + p.MorselSize() - 1) / p.MorselSize()
	if len(seen) != morsels {
		t.Fatalf("trace covers %d distinct tasks, want %d morsels", len(seen), morsels)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d with ample capacity", tr.Dropped())
	}
}

func TestTraceDropsWhenFull(t *testing.T) {
	tr := exec.NewTrace(2, 64) // 64 is the floor capacity
	p := exec.NewPool(exec.Config{Workers: 2, Ctx: context.Background(), Trace: tr})
	defer p.Close()
	if err := p.ForEach(1000, func(w, task int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() == 0 {
		t.Fatal("expected drops on a 64-slot ring after 1000 tasks")
	}
	evs := tr.Events()
	if len(evs) == 0 || len(evs) > 2*64 {
		t.Fatalf("Events() returned %d events from 2 rings of 64", len(evs))
	}
}

func TestTraceChromeJSON(t *testing.T) {
	p, _, tr := newInstrumented(t, 2)
	if err := p.ForEach(8, func(w, task int) error {
		time.Sleep(50 * time.Microsecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete, instant int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur < 0 {
				t.Fatalf("complete event %q has negative dur", ev.Name)
			}
		case "i":
			instant++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta < 3 { // process_name + one thread_name per worker
		t.Fatalf("metadata events = %d, want >= 3", meta)
	}
	if complete != 8 {
		t.Fatalf("complete (task) events = %d, want 8", complete)
	}
	if instant == 0 {
		t.Fatal("no instant (claim/steal) events recorded")
	}
}
