package exec_test

// Benchmarks of the morsel-driven core at workers=1,2,4: the join build
// and probe phases (the pool driving a sharded handle's batched
// pipelines, exactly SharedHashJoin's inner loops) and the parallel
// GROUP BY (AddParallel's per-worker pre-aggregation). Each reports the
// repo's ns/key metric; with BENCH_EXEC_JSON set the datapoints are
// dumped as the BENCH_exec.json CI artifact tracking the execution
// core's trajectory. On a single-vCPU CI runner the worker sweep
// measures scheduling overhead rather than speedup — the artifact's job
// is catching regressions in either.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/agg"
	"repro/dist"
	"repro/exec"
	"repro/internal/prng"
	"repro/table"
)

// execBenchPoint is one ⟨sub-benchmark, ns/key⟩ datapoint.
type execBenchPoint struct {
	Case     string  `json:"case"`
	NsPerKey float64 `json:"ns_per_key"`
}

var execBenchResults []execBenchPoint

// reportExecNs reports ns/key for a benchmark that processed total keys,
// recording the datapoint for the BENCH_exec.json artifact. The framework
// reruns a sub-benchmark with ramping b.N while calibrating; only the
// final (longest) run's datapoint is kept.
func reportExecNs(b *testing.B, total int) {
	ns := float64(b.Elapsed().Nanoseconds()) / float64(total)
	b.ReportMetric(ns, "ns/key")
	if n := len(execBenchResults); n > 0 && execBenchResults[n-1].Case == b.Name() {
		execBenchResults[n-1].NsPerKey = ns
		return
	}
	execBenchResults = append(execBenchResults, execBenchPoint{Case: b.Name(), NsPerKey: ns})
}

// writeExecBenchJSON dumps the accumulated datapoints to the file named
// by BENCH_EXEC_JSON. Both benchmarks call it; the file is rewritten with
// everything collected so far, so invocation order does not matter.
func writeExecBenchJSON(b *testing.B) {
	path := os.Getenv("BENCH_EXEC_JSON")
	if path == "" || len(execBenchResults) == 0 {
		return
	}
	out, err := json.MarshalIndent(struct {
		Benchmark string           `json:"benchmark"`
		Points    []execBenchPoint `json:"points"`
	}{Benchmark: "BenchmarkExecJoin/BenchmarkExecAgg", Points: execBenchResults}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchWorkers is the worker sweep every exec benchmark runs.
var benchWorkers = []int{1, 2, 4}

// openShardedRH opens the sharded build-side handle the join benchmarks
// drive (8 shards, pre-sized like a join build).
func openShardedRH(b *testing.B, capacity int) *table.Handle {
	b.Helper()
	h, err := table.Open(
		table.WithScheme(table.SchemeRH),
		table.WithCapacity(capacity),
		table.WithPartitions(8),
		table.WithSeed(42),
	)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkExecJoin measures the two phases of the shared-memory parallel
// join — morsel-scheduled batched build (GetOrPutBatch) and probe
// (GetBatch) against one sharded handle — at workers=1,2,4.
func BenchmarkExecJoin(b *testing.B) {
	const buildN, probeN = 1 << 17, 1 << 18
	gen := dist.New(dist.Sparse, 1)
	keys := dist.Shuffled(gen.Keys(buildN), 2)
	vals := make([]uint64, buildN)
	for i := range vals {
		vals[i] = uint64(i)
	}
	rng := prng.NewXoshiro256(3)
	probes := make([]uint64, probeN)
	for i := range probes {
		if rng.Uint64n(4) == 0 { // 25% misses
			probes[i] = gen.Key(uint64(buildN) + rng.Uint64n(1<<20))
		} else {
			probes[i] = keys[rng.Intn(buildN)]
		}
	}
	for _, workers := range benchWorkers {
		cfg := exec.Config{Workers: workers}
		b.Run(fmt.Sprintf("build/workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := openShardedRH(b, buildN*2)
				pool := exec.NewPool(cfg)
				out := make([][]uint64, pool.Workers())
				loaded := make([][]bool, pool.Workers())
				for w := range out {
					out[w] = make([]uint64, pool.MorselSize())
					loaded[w] = make([]bool, pool.MorselSize())
				}
				b.StartTimer()
				if err := pool.ForMorsels(buildN, func(w, lo, hi int) error {
					_, err := h.GetOrPutBatch(keys[lo:hi], vals[lo:hi], out[w][:hi-lo], loaded[w][:hi-lo])
					return err
				}); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				pool.Close()
				b.StartTimer()
			}
			reportExecNs(b, b.N*buildN)
		})
		b.Run(fmt.Sprintf("probe/workers%d", workers), func(b *testing.B) {
			h := openShardedRH(b, buildN*2)
			if _, err := h.PutBatch(keys, vals); err != nil {
				b.Fatal(err)
			}
			pool := exec.NewPool(cfg)
			defer pool.Close()
			got := make([][]uint64, pool.Workers())
			ok := make([][]bool, pool.Workers())
			for w := range got {
				got[w] = make([]uint64, pool.MorselSize())
				ok[w] = make([]bool, pool.MorselSize())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pool.ForMorsels(probeN, func(w, lo, hi int) error {
					h.GetBatch(probes[lo:hi], got[w][:hi-lo], ok[w][:hi-lo])
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
			reportExecNs(b, b.N*probeN)
		})
	}
	writeExecBenchJSON(b)
}

// BenchmarkExecAgg measures the parallel GROUP BY (per-worker
// pre-aggregation + merge) at workers=1,2,4.
func BenchmarkExecAgg(b *testing.B) {
	const rows = 1 << 19
	const distinct = 1 << 12
	rng := prng.NewXoshiro256(9)
	groups := make([]uint64, rows)
	values := make([]uint64, rows)
	for i := range groups {
		groups[i] = rng.Uint64n(distinct)
		values[i] = rng.Uint64n(1 << 20)
	}
	for _, workers := range benchWorkers {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := agg.MustNewGroupBy(agg.Config{ExpectedGroups: distinct, Seed: 42})
				b.StartTimer()
				if err := g.AddParallel(exec.Config{Workers: workers}, groups, values); err != nil {
					b.Fatal(err)
				}
				if g.NumGroups() != distinct {
					b.Fatalf("%d groups, want %d", g.NumGroups(), distinct)
				}
			}
			reportExecNs(b, b.N*rows)
		})
	}
	writeExecBenchJSON(b)
}
