package exec

// The one scatter→group-major→gather primitive. Radix-partitioned
// operators and the sharded engine all regroup a key column by the top
// bits of a routing hash before working group-by-group; this file is the
// single implementation of that stable scatter (it replaced
// partition.Partitioned's stage/partitionAll and shard.Engine's private
// scatter, which had drifted into near-identical copies).

import "repro/hashfn"

// Scatter is one stable scatter of a key column into groups (partitions
// or shards): the keys regrouped group-major, the original lane of every
// staged slot, per-group extents, and value/flag staging areas sized to
// match. The scatter is stable — keys of the same group keep their input
// order — so duplicate keys (which always share a group) retain
// sequential semantics when the staged ranges are applied in order.
//
// After Route, group j's staged range is Keys[Starts[j]:Starts[j+1]], and
// staged slot i came from input lane Orig[i]. Vals and OK are scratch
// columns of the same length as Keys for the caller's values and result
// flags; the usual cycle is
//
//	scatter values:  for i, oi := range sc.Orig { sc.Vals[i] = vals[oi] }
//	apply group j:   over sc.Keys[lo:hi], sc.Vals[lo:hi], sc.OK[lo:hi]
//	gather results:  for i, oi := range sc.Orig { out[oi] = sc.Vals[i] }
//
// A Scatter may be reused across calls (Route grows the buffers in place,
// so steady-state staging allocates nothing) but is not safe for
// concurrent Route calls; concurrent workers may write DISJOINT staged
// ranges of Vals/OK between a Route and the gather.
type Scatter struct {
	Keys   []uint64
	Vals   []uint64
	OK     []bool
	Orig   []int32
	Starts []int32

	group []int32
	pos   []int32
	hash  [hashfn.DefaultBatchWidth]uint64
}

// growSlice returns s with length exactly n, reusing its backing array
// when possible.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Route scatters keys into groups groups by the top bits of router's hash
// (group = hash >> shift, the radix scheme the paper cites for parallel
// joins), bulk-hashing the router in batch-width chunks so its dispatch
// is paid once per chunk. shift must be 64 - log2(groups).
func (sc *Scatter) Route(router hashfn.Function, shift uint, groups int, keys []uint64) {
	sc.group = growSlice(sc.group, len(keys))
	group := sc.group
	for base := 0; base < len(keys); base += hashfn.DefaultBatchWidth {
		n := min(hashfn.DefaultBatchWidth, len(keys)-base)
		hashfn.HashBatch(router, keys[base:base+n], sc.hash[:])
		for i := 0; i < n; i++ {
			group[base+i] = int32(sc.hash[i] >> shift)
		}
	}
	sc.Starts = growSlice(sc.Starts, groups+1)
	starts := sc.Starts
	clear(starts)
	for _, j := range group {
		starts[j+1]++
	}
	for j := 0; j < groups; j++ {
		starts[j+1] += starts[j]
	}
	sc.Keys = growSlice(sc.Keys, len(keys))
	sc.Vals = growSlice(sc.Vals, len(keys))
	sc.OK = growSlice(sc.OK, len(keys))
	sc.Orig = growSlice(sc.Orig, len(keys))
	// One stable counting pass over per-group cursors.
	sc.pos = growSlice(sc.pos, groups)
	pos := sc.pos
	copy(pos, starts[:groups])
	for i, k := range keys {
		j := group[i]
		at := pos[j]
		sc.Keys[at] = k
		sc.Orig[at] = int32(i)
		pos[j]++
	}
}
