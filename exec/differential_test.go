package exec_test

// Differential replay of concurrent morsels: the same key/value columns
// are driven through a sharded handle by the exec pool — build morsels,
// probe morsels, delete morsels — and every phase's outcome is checked
// against a serial map oracle. Run under -race (the CI exec job does)
// this exercises the pool's scheduling, the scatter staging, and the
// engine's locking together: pool workers race on shards mid-resize
// while the oracle pins down the per-key results.

import (
	"testing"

	"repro/exec"
	"repro/internal/prng"
	"repro/table"
)

func TestDifferentialConcurrentMorsels(t *testing.T) {
	const n = 60_000
	rng := prng.NewXoshiro256(1234)
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		if i > 0 && rng.Uint64n(4) == 0 {
			keys[i] = keys[int(rng.Uint64n(uint64(i)))] // ~25% duplicates
		} else {
			keys[i] = rng.Next()
		}
		// The value is a function of the key, so whichever duplicate's
		// morsel lands first, the stored value is deterministic.
		vals[i] = keys[i]*2 + 1
	}
	oracle := make(map[uint64]uint64, n)
	for i, k := range keys {
		if _, ok := oracle[k]; !ok {
			oracle[k] = vals[i]
		}
	}

	for _, workers := range []int{1, 8} {
		h, err := table.Open(
			table.WithScheme(table.SchemeRH),
			table.WithCapacity(1<<10), // forces incremental shard resizes under the build
			table.WithPartitions(8),
			table.WithSeed(5),
		)
		if err != nil {
			t.Fatal(err)
		}
		pool := exec.NewPool(exec.Config{Workers: workers, MorselSize: 512})

		// Build phase: GetOrPut morsels (first payload per key wins — the
		// join-build semantics).
		if err := pool.ForMorsels(n, func(_, lo, hi int) error {
			out := make([]uint64, hi-lo)
			loaded := make([]bool, hi-lo)
			_, err := h.GetOrPutBatch(keys[lo:hi], vals[lo:hi], out, loaded)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if h.Len() != len(oracle) {
			t.Fatalf("workers=%d: built %d entries, oracle has %d", workers, h.Len(), len(oracle))
		}

		// Probe phase: batched lookups per morsel, half the lanes swapped
		// for fresh random keys (almost surely absent; the oracle decides
		// hit vs miss either way, so a freak collision is still checked
		// correctly).
		probes := make([]uint64, n)
		for i := range probes {
			if i%2 == 0 {
				probes[i] = keys[i]
			} else {
				probes[i] = rng.Next()
			}
		}
		got := make([]uint64, n)
		ok := make([]bool, n)
		if err := pool.ForMorsels(n, func(_, lo, hi int) error {
			h.GetBatch(probes[lo:hi], got[lo:hi], ok[lo:hi])
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, p := range probes {
			want, present := oracle[p]
			if ok[i] != present {
				t.Fatalf("workers=%d: probe lane %d presence = %v, oracle %v", workers, i, ok[i], present)
			}
			if present && got[i] != want {
				t.Fatalf("workers=%d: probe lane %d = %d, oracle %d", workers, i, got[i], want)
			}
		}

		// Delete phase: every third input lane's key, then re-verify.
		if err := pool.ForMorsels(n, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				if i%3 == 0 {
					h.Delete(keys[i])
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i += 3 {
			delete(oracle, keys[i])
		}
		if h.Len() != len(oracle) {
			t.Fatalf("workers=%d: %d entries after deletes, oracle has %d", workers, h.Len(), len(oracle))
		}
		for i := 0; i < n; i += 7 { // spot-check survivors and victims
			v, present := h.Get(keys[i])
			want, inOracle := oracle[keys[i]]
			if present != inOracle || (present && v != want) {
				t.Fatalf("workers=%d: post-delete key %d = (%d,%v), oracle (%d,%v)",
					workers, keys[i], v, present, want, inOracle)
			}
		}
		pool.Close()

		// Rebuild the oracle for the next worker count (deletes mutated it).
		if workers != 8 {
			oracle = make(map[uint64]uint64, n)
			for i, k := range keys {
				if _, ok := oracle[k]; !ok {
					oracle[k] = vals[i]
				}
			}
		}
	}
}
