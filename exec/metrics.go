package exec

import "repro/obs"

// PoolMetrics is the pool's telemetry surface: striped counters and
// histograms recorded from the hot scheduling path with the worker index
// as the stripe hint, so concurrent workers never contend on a cache
// line. Attach one to a pool via Config.Metrics; a nil Config.Metrics
// (the default) keeps the scheduling path free of any instrumentation.
//
// All fields are constructed by NewPoolMetrics; the zero value is not
// usable. A PoolMetrics may be shared by several pools (e.g. transient
// Run pools in a loop) — the counters simply accumulate across them.
type PoolMetrics struct {
	// Tasks counts executed tasks (morsels, for the morsel entry points).
	Tasks *obs.Counter
	// Steals counts tasks executed by a worker other than the task's
	// home worker (task index modulo workers) — the dynamic
	// self-scheduling at work. A high steal share on a balanced input is
	// normal; on a skewed input it is the pool absorbing the skew.
	Steals *obs.Counter
	// Errors counts tasks that returned a non-nil error (excluding
	// recovered panics, which Panics counts).
	Errors *obs.Counter
	// Panics counts tasks recovered into a *PanicError.
	Panics *obs.Counter
	// Cancels counts submissions stopped by context cancellation (at
	// most one per submission: the cancellation observation that claimed
	// the run's return slot).
	Cancels *obs.Counter
	// Submissions counts admitted submissions (ForEach/ForMorsels/Map/
	// Locals calls that passed admission control).
	Submissions *obs.Counter
	// Overloads counts submissions refused with ErrOverloaded.
	Overloads *obs.Counter
	// BusyNanos accumulates per-worker time spent inside task callbacks;
	// stripe w is worker w's exclusive slot, so ValueAt(w) reads one
	// worker's busy time and Value() the pool total.
	BusyNanos *obs.Counter
	// QueueWait is the submission-to-task-start latency distribution:
	// how long each task sat behind the claim cursor before a worker
	// picked it up.
	QueueWait *obs.Histogram
	// TaskNanos is the per-task execution latency distribution.
	TaskNanos *obs.Histogram
}

// NewPoolMetrics returns a PoolMetrics striped for the given worker
// count (minimum 1).
func NewPoolMetrics(workers int) *PoolMetrics {
	if workers < 1 {
		workers = 1
	}
	return &PoolMetrics{
		Tasks:       obs.NewCounter(workers),
		Steals:      obs.NewCounter(workers),
		Errors:      obs.NewCounter(workers),
		Panics:      obs.NewCounter(workers),
		Cancels:     obs.NewCounter(workers),
		Submissions: obs.NewCounter(1),
		Overloads:   obs.NewCounter(1),
		BusyNanos:   obs.NewCounter(workers),
		QueueWait:   obs.NewHistogram(workers),
		TaskNanos:   obs.NewHistogram(workers),
	}
}

// Register files every metric with r under the conventional exec_*
// names, prefixed by prefix (use "" for the plain names, or e.g.
// "build_" to distinguish two pools in one registry).
func (m *PoolMetrics) Register(r *obs.Registry, prefix string) {
	r.RegisterCounter(prefix+"exec_tasks_total", "tasks executed by the pool", m.Tasks)
	r.RegisterCounter(prefix+`exec_events_total{kind="steal"}`, "scheduling events by kind", m.Steals)
	r.RegisterCounter(prefix+`exec_events_total{kind="error"}`, "", m.Errors)
	r.RegisterCounter(prefix+`exec_events_total{kind="panic"}`, "", m.Panics)
	r.RegisterCounter(prefix+`exec_events_total{kind="cancel"}`, "", m.Cancels)
	r.RegisterCounter(prefix+"exec_submissions_total", "submissions admitted by the pool", m.Submissions)
	r.RegisterCounter(prefix+"exec_overloads_total", "submissions refused with ErrOverloaded", m.Overloads)
	r.RegisterCounter(prefix+"exec_busy_nanos_total", "nanoseconds workers spent inside task callbacks", m.BusyNanos)
	r.RegisterHistogram(prefix+"exec_queue_wait_nanos", "submission-to-task-start latency in nanoseconds", m.QueueWait)
	r.RegisterHistogram(prefix+"exec_task_nanos", "per-task execution latency in nanoseconds", m.TaskNanos)
}
