// Package exec is the repo's one morsel-driven parallel execution core.
//
// Every parallel operator above the table layer — partitioned and shared
// hash joins, parallel aggregation, partition-parallel build/probe, the
// concurrent workload drivers — used to carry its own ad-hoc goroutine
// fan-out: one goroutine per partition regardless of core count, bespoke
// chunking, bespoke error conventions. This package consolidates all of
// that into one scheduling core, the way morsel-driven query execution
// (Leis et al., SIGMOD 2014) structures parallelism: a bounded pool of
// workers, work carved into cache-friendly morsels (index ranges), and
// idle workers claiming the next morsel from a shared cursor — dynamic
// self-scheduling, so a worker that finishes early steals the remaining
// morsels of a slower sibling's input instead of going idle.
//
// The building blocks:
//
//   - Config sizes everything from one place: Workers (default
//     runtime.GOMAXPROCS) bounds the fan-out, MorselSize (default
//     DefaultMorselSize) sets the range granularity.
//   - Pool owns the worker goroutines. ForEach schedules discrete tasks
//     (e.g. one per partition), ForMorsels carves an index range [0, n)
//     into morsels; both propagate the first error and stop scheduling
//     further work once a task fails.
//   - Map / MapMorsels gather per-task results deterministically (in task
//     order, regardless of completion order); Locals threads a per-worker
//     accumulator through the morsels a worker claims — the
//     pre-aggregation pattern — and returns the used accumulators in
//     worker order.
//   - Scatter is the one stable scatter→group-major→gather primitive the
//     sharded engine and the radix-partitioned operators share.
//
// A Pool is safe for concurrent use by multiple goroutines; the task
// callbacks must not call back into the same pool (a worker executing a
// nested submit could deadlock waiting for itself).
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultMorselSize is the morsel granularity when Config.MorselSize is
// zero: 4096 keys (32 KiB of key column) — small enough that a morsel's
// working set is cache-resident and the pool load-balances skewed costs,
// large enough that the shared-cursor claim is amortized over thousands
// of rows.
const DefaultMorselSize = 4096

// Config sizes the execution core. The zero value means "one worker per
// CPU, default morsels".
type Config struct {
	// Workers bounds the number of concurrently executing tasks (default
	// runtime.GOMAXPROCS(0)). Parallel operators accept this instead of
	// spawning one goroutine per partition: the fan-out stays bounded by
	// the machine, not by the data.
	Workers int
	// MorselSize is the number of consecutive indexes per morsel in
	// ForMorsels/MapMorsels/Locals (default DefaultMorselSize).
	MorselSize int
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MorselSize < 1 {
		c.MorselSize = DefaultMorselSize
	}
	return c
}

// Pool is a bounded set of worker goroutines executing tasks. Construct
// with NewPool; Close releases the workers (and is required — an unclosed
// pool leaks its goroutines). The zero value is not usable.
type Pool struct {
	workers int
	morsel  int
	tasks   chan *run
	wg      sync.WaitGroup
}

// NewPool starts cfg.Workers worker goroutines. Callers must Close the
// pool when done with it.
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		workers: cfg.Workers,
		morsel:  cfg.MorselSize,
		tasks:   make(chan *run),
	}
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go func(w int) {
			defer p.wg.Done()
			for r := range p.tasks {
				r.do(w)
				r.wg.Done()
			}
		}(w)
	}
	return p
}

// Workers returns the pool's worker count. Worker indexes passed to task
// callbacks are always in [0, Workers()).
func (p *Pool) Workers() int { return p.workers }

// MorselSize returns the pool's morsel granularity.
func (p *Pool) MorselSize() int { return p.morsel }

// Close shuts the workers down and waits until every worker goroutine has
// exited. Submitting work after Close panics.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}

// run is one scheduled batch of tasks: a shared claim cursor (the
// work-stealing hand-off — idle workers claim the next unclaimed task)
// plus first-error state.
type run struct {
	n      int
	fn     func(worker, task int) error
	cursor atomic.Int64
	failed atomic.Bool
	once   sync.Once
	err    error
	wg     sync.WaitGroup
}

// do claims and executes tasks until the cursor is exhausted or a task
// has failed.
func (r *run) do(worker int) {
	for !r.failed.Load() {
		t := int(r.cursor.Add(1)) - 1
		if t >= r.n {
			return
		}
		if err := r.fn(worker, t); err != nil {
			r.once.Do(func() { r.err = err })
			r.failed.Store(true)
			return
		}
	}
}

// ForEach executes fn(worker, task) for every task in [0, tasks),
// spreading tasks over the pool's workers; an idle worker claims the next
// unstarted task, so uneven task costs balance automatically. The first
// error stops the scheduling of further tasks (tasks already running
// finish) and is returned. With one worker (or one task) fn runs inline
// on the calling goroutine, in task order — the serial oracle of the
// parallel schedule.
func (p *Pool) ForEach(tasks int, fn func(worker, task int) error) error {
	if tasks <= 0 {
		return nil
	}
	if p.workers == 1 || tasks == 1 {
		for t := 0; t < tasks; t++ {
			if err := fn(0, t); err != nil {
				return err
			}
		}
		return nil
	}
	r := &run{n: tasks, fn: fn}
	k := p.workers
	if tasks < k {
		k = tasks
	}
	r.wg.Add(k)
	for i := 0; i < k; i++ {
		p.tasks <- r
	}
	r.wg.Wait()
	return r.err
}

// morselsFor returns the number of size-sized morsels covering [0, n).
func morselsFor(n, size int) int {
	return (n + size - 1) / size
}

// ForMorsels carves the index range [0, n) into MorselSize-sized morsels
// and executes fn(worker, lo, hi) for each, with the same scheduling and
// error contract as ForEach. Indexes are covered exactly once; morsel
// boundaries are deterministic (only the worker assignment varies).
func (p *Pool) ForMorsels(n int, fn func(worker, lo, hi int) error) error {
	size := p.morsel
	return p.ForEach(morselsFor(n, size), func(w, t int) error {
		lo := t * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		return fn(w, lo, hi)
	})
}

// Run executes fn over the morsels of [0, n) on a transient pool sized by
// cfg — the one-shot form of NewPool + ForMorsels + Close for operators
// that parallelize a single phase.
func Run(cfg Config, n int, fn func(worker, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	if m := morselsFor(n, cfg.MorselSize); cfg.Workers > m {
		cfg.Workers = m // never start workers that could not claim a morsel
	}
	p := NewPool(cfg)
	defer p.Close()
	return p.ForMorsels(n, fn)
}

// RunTasks executes fn once per task in [0, tasks) on a transient pool
// sized by cfg — the one-shot form for discrete units of work (one task
// per partition, one per tape).
func RunTasks(cfg Config, tasks int, fn func(worker, task int) error) error {
	if tasks <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	if cfg.Workers > tasks {
		cfg.Workers = tasks
	}
	p := NewPool(cfg)
	defer p.Close()
	return p.ForEach(tasks, fn)
}

// Map executes fn for every task and gathers the results in task order —
// a deterministic gather regardless of which worker ran which task or in
// what order they completed. On error the returned slice is nil.
func Map[T any](p *Pool, tasks int, fn func(worker, task int) (T, error)) ([]T, error) {
	out := make([]T, tasks)
	err := p.ForEach(tasks, func(w, t int) error {
		v, err := fn(w, t)
		if err != nil {
			return err
		}
		out[t] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapMorsels executes fn over the morsels of [0, n) and gathers the
// results in morsel order (deterministic gather). On error the returned
// slice is nil.
func MapMorsels[T any](p *Pool, n int, fn func(worker, lo, hi int) (T, error)) ([]T, error) {
	size := p.morsel
	return Map(p, morselsFor(n, size), func(w, t int) (T, error) {
		lo := t * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		return fn(w, lo, hi)
	})
}

// Locals runs fn over the morsels of [0, n) with one lazily created
// accumulator per worker — the per-worker pre-aggregation pattern: each
// worker folds the morsels it claims into its own state with no
// synchronization, and the states that were actually used are returned in
// worker order for the caller's (sequential, deterministic) merge. init
// is called at most once per worker, from that worker.
func Locals[S any](p *Pool, n int, init func(worker int) (S, error), fn func(s S, worker, lo, hi int) error) ([]S, error) {
	states := make([]S, p.workers)
	used := make([]bool, p.workers)
	err := p.ForMorsels(n, func(w, lo, hi int) error {
		if !used[w] {
			s, err := init(w)
			if err != nil {
				return err
			}
			states[w], used[w] = s, true
		}
		return fn(states[w], w, lo, hi)
	})
	if err != nil {
		return nil, err
	}
	out := make([]S, 0, p.workers)
	for w, u := range used {
		if u {
			out = append(out, states[w])
		}
	}
	return out, nil
}
