// Package exec is the repo's one morsel-driven parallel execution core.
//
// Every parallel operator above the table layer — partitioned and shared
// hash joins, parallel aggregation, partition-parallel build/probe, the
// concurrent workload drivers — used to carry its own ad-hoc goroutine
// fan-out: one goroutine per partition regardless of core count, bespoke
// chunking, bespoke error conventions. This package consolidates all of
// that into one scheduling core, the way morsel-driven query execution
// (Leis et al., SIGMOD 2014) structures parallelism: a bounded pool of
// workers, work carved into cache-friendly morsels (index ranges), and
// idle workers claiming the next morsel from a shared cursor — dynamic
// self-scheduling, so a worker that finishes early steals the remaining
// morsels of a slower sibling's input instead of going idle.
//
// The building blocks:
//
//   - Config sizes everything from one place: Workers (default
//     runtime.GOMAXPROCS) bounds the fan-out, MorselSize (default
//     DefaultMorselSize) sets the range granularity, Ctx cancels
//     everything scheduled on the pool, MaxInFlight bounds concurrent
//     submissions (admission control).
//   - Pool owns the worker goroutines. ForEach schedules discrete tasks
//     (e.g. one per partition), ForMorsels carves an index range [0, n)
//     into morsels; both propagate the first error and stop scheduling
//     further work once a task fails. The Ctx variants thread a
//     per-submission context through the same claim cursor.
//   - Map / MapMorsels gather per-task results deterministically (in task
//     order, regardless of completion order); Locals threads a per-worker
//     accumulator through the morsels a worker claims — the
//     pre-aggregation pattern — and returns the used accumulators in
//     worker order.
//   - Scatter is the one stable scatter→group-major→gather primitive the
//     sharded engine and the radix-partitioned operators share.
//
// Failure is a first-class input: a cancelled context stops the claim
// cursor exactly like a task error does; a panicking task is recovered
// and returned as a typed *PanicError instead of crashing the process;
// concurrent task errors beyond the first are counted on the returned
// error (*SuppressedError) rather than dropped; and a pool over its
// MaxInFlight limit refuses new submissions with ErrOverloaded before
// running anything.
//
// A Pool is safe for concurrent use by multiple goroutines; the task
// callbacks must not call back into the same pool (a worker executing a
// nested submit could deadlock waiting for itself).
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// DefaultMorselSize is the morsel granularity when Config.MorselSize is
// zero: 4096 keys (32 KiB of key column) — small enough that a morsel's
// working set is cache-resident and the pool load-balances skewed costs,
// large enough that the shared-cursor claim is amortized over thousands
// of rows.
const DefaultMorselSize = 4096

// Config sizes the execution core. The zero value means "one worker per
// CPU, default morsels, no cancellation, no admission limit".
type Config struct {
	// Workers bounds the number of concurrently executing tasks (default
	// runtime.GOMAXPROCS(0)). Parallel operators accept this instead of
	// spawning one goroutine per partition: the fan-out stays bounded by
	// the machine, not by the data.
	Workers int
	// MorselSize is the number of consecutive indexes per morsel in
	// ForMorsels/MapMorsels/Locals (default DefaultMorselSize).
	MorselSize int
	// Ctx, when non-nil, is the pool's default context: every submission
	// without an explicit context (ForEach, ForMorsels, Map, ...) is
	// cancelled when Ctx is. Cancellation stops the claim cursor exactly
	// like a task error — running tasks finish, unclaimed tasks never
	// start — and the context's error is returned.
	Ctx context.Context
	// MaxInFlight bounds the number of concurrently executing
	// submissions (ForEach/ForMorsels/Map/Locals calls); 0 means
	// unlimited. A submission beyond the bound fails fast with
	// ErrOverloaded before running any task — the backpressure primitive
	// front-ends shed load on.
	MaxInFlight int
	// Metrics, when non-nil, receives pool telemetry (task and steal
	// counts, queue-wait and task latency, per-worker busy time) from
	// the scheduling path. Nil — the default — keeps the path free of
	// instrumentation; the hooks are nil-guarded, not compiled out.
	Metrics *PoolMetrics
	// Trace, when non-nil, receives per-worker scheduling events (task
	// begin/end, morsel claims, steals, errors, cancellations) into a
	// fixed-capacity lock-free ring, dumpable as Chrome trace JSON.
	Trace *Trace
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MorselSize < 1 {
		c.MorselSize = DefaultMorselSize
	}
	return c
}

// Pool is a bounded set of worker goroutines executing tasks. Construct
// with NewPool; Close releases the workers (and is required — an unclosed
// pool leaks its goroutines). The zero value is not usable.
type Pool struct {
	workers  int
	morsel   int
	limit    int
	ctx      context.Context
	metrics  *PoolMetrics
	trace    *Trace
	tasks    chan *run
	inflight atomic.Int64
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// NewPool starts cfg.Workers worker goroutines. Callers must Close the
// pool when done with it.
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		workers: cfg.Workers,
		morsel:  cfg.MorselSize,
		limit:   cfg.MaxInFlight,
		ctx:     cfg.Ctx,
		metrics: cfg.Metrics,
		trace:   cfg.Trace,
		tasks:   make(chan *run),
	}
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go func(w int) {
			defer p.wg.Done()
			for r := range p.tasks {
				r.do(w)
				r.wg.Done()
			}
		}(w)
	}
	return p
}

// Workers returns the pool's worker count. Worker indexes passed to task
// callbacks are always in [0, Workers()).
func (p *Pool) Workers() int { return p.workers }

// MorselSize returns the pool's morsel granularity.
func (p *Pool) MorselSize() int { return p.morsel }

// Close shuts the workers down and waits until every worker goroutine
// has exited. Close is idempotent: additional calls wait for the same
// shutdown instead of panicking. Submitting work after Close panics.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.tasks)
	}
	p.wg.Wait()
}

// admit claims an in-flight submission slot, refusing with ErrOverloaded
// when the pool is at its MaxInFlight bound.
func (p *Pool) admit() error {
	if p.limit <= 0 {
		return nil
	}
	if p.inflight.Add(1) > int64(p.limit) {
		p.inflight.Add(-1)
		return ErrOverloaded
	}
	return nil
}

func (p *Pool) release() {
	if p.limit > 0 {
		p.inflight.Add(-1)
	}
}

// run is one scheduled batch of tasks: a shared claim cursor (the
// work-stealing hand-off — idle workers claim the next unclaimed task)
// plus first-error state.
type run struct {
	n          int
	workers    int
	fn         func(worker, task int) error
	ctx        context.Context
	metrics    *PoolMetrics
	trace      *Trace
	submit     int64 // obs.Now at submission; 0 when uninstrumented
	cursor     atomic.Int64
	failed     atomic.Bool
	err        error
	suppressed atomic.Int64
	wg         sync.WaitGroup
}

// fail records err under the first-error convention: the first failure
// wins the return slot; concurrent losers are counted so the caller can
// see on the returned *SuppressedError that further errors existed.
func (r *run) fail(err error) {
	if r.failed.CompareAndSwap(false, true) {
		r.err = err
		return
	}
	r.suppressed.Add(1)
}

// cancel records a context cancellation. Unlike fail it never counts as
// a suppressed error: every worker observes the same cancellation, and
// it only claims the return slot when no task error beat it there. The
// observation that wins the slot is the one counted and traced — one
// cancel event per cancelled submission, not one per worker.
func (r *run) cancel(worker int, err error) {
	if r.failed.CompareAndSwap(false, true) {
		r.err = err
		r.noteCancel(worker)
	}
}

// noteCancel records a winning cancellation observation on the attached
// metrics and trace (both nil-guarded).
func (r *run) noteCancel(worker int) {
	if r.metrics != nil {
		r.metrics.Cancels.Inc(worker)
	}
	if r.trace != nil {
		r.trace.record(worker, Event{Kind: EvCancel, Worker: int32(worker), Start: now()})
	}
}

// do claims and executes tasks until the cursor is exhausted, a task
// has failed, or the run's context is cancelled.
func (r *run) do(worker int) {
	for !r.failed.Load() {
		if r.ctx != nil {
			if err := r.ctx.Err(); err != nil {
				r.cancel(worker, err)
				return
			}
		}
		t := int(r.cursor.Add(1)) - 1
		if t >= r.n {
			return
		}
		if r.trace != nil {
			r.trace.record(worker, Event{Kind: EvClaim, Worker: int32(worker), Task: int32(t), Start: now()})
		}
		if err := r.execute(worker, t); err != nil {
			r.fail(err)
			return
		}
	}
}

// execute runs one task through invoke, recording telemetry around it
// when the run is instrumented. The uninstrumented path is a single nil
// check on top of invoke — no clock reads, no atomics.
func (r *run) execute(worker, task int) error {
	m, tr := r.metrics, r.trace
	if m == nil && tr == nil {
		return r.invoke(worker, task)
	}
	start := now()
	err := r.invoke(worker, task)
	end := now()
	// Home worker = task index modulo workers: the assignment a static
	// round-robin schedule would have made. Executing elsewhere means
	// the shared cursor let an idle worker steal it.
	steal := r.workers > 0 && worker != task%r.workers
	if m != nil {
		m.Tasks.Inc(worker)
		m.BusyNanos.Add(worker, uint64(end-start))
		m.TaskNanos.Record(worker, end-start)
		m.QueueWait.Record(worker, start-r.submit)
		if steal {
			m.Steals.Inc(worker)
		}
		if err != nil {
			var pe *PanicError
			if errors.As(err, &pe) {
				m.Panics.Inc(worker)
			} else {
				m.Errors.Inc(worker)
			}
		}
	}
	if tr != nil {
		tr.taskEvent(worker, task, start, end, steal, err != nil)
	}
	return err
}

// invoke runs one task with panic containment: a panicking callback is
// recovered into a typed *PanicError carrying the task index and stack,
// which then flows through the first-error convention instead of
// unwinding the worker and crashing the process. The armed fault
// injector can force a panic here (fault.Panic) — before the callback
// runs, so an injected panic never leaves a task half-applied.
func (r *run) invoke(worker, task int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Task: task, Value: v, Stack: debug.Stack()}
		}
	}()
	if fault.Should(fault.Panic) {
		panic(fmt.Errorf("%w (worker %d, task %d)", fault.ErrInjected, worker, task))
	}
	return r.fn(worker, task)
}

// result assembles the run's return error: the first error, wrapped in
// a *SuppressedError when concurrent tasks also failed.
func (r *run) result() error {
	if r.err != nil {
		if n := r.suppressed.Load(); n > 0 {
			return &SuppressedError{First: r.err, Count: int(n)}
		}
	}
	return r.err
}

// ForEach executes fn(worker, task) for every task in [0, tasks),
// spreading tasks over the pool's workers; an idle worker claims the next
// unstarted task, so uneven task costs balance automatically. The first
// error stops the scheduling of further tasks (tasks already running
// finish) and is returned; a panicking task surfaces as a *PanicError
// the same way. With one worker (or one task) fn runs inline on the
// calling goroutine, in task order — the serial oracle of the parallel
// schedule.
func (p *Pool) ForEach(tasks int, fn func(worker, task int) error) error {
	return p.forEach(p.ctx, tasks, fn)
}

// ForEachCtx is ForEach under an explicit context: cancellation stops
// the claim cursor exactly like a task error (running tasks finish,
// unclaimed tasks never start) and ctx.Err() is returned.
func (p *Pool) ForEachCtx(ctx context.Context, tasks int, fn func(worker, task int) error) error {
	if ctx == nil {
		ctx = p.ctx
	}
	return p.forEach(ctx, tasks, fn)
}

func (p *Pool) forEach(ctx context.Context, tasks int, fn func(worker, task int) error) error {
	if tasks <= 0 {
		return nil
	}
	if err := p.admit(); err != nil {
		if p.metrics != nil {
			p.metrics.Overloads.Inc(0)
		}
		return err
	}
	defer p.release()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	r := &run{n: tasks, workers: p.workers, fn: fn, ctx: ctx, metrics: p.metrics, trace: p.trace}
	if r.metrics != nil || r.trace != nil {
		r.submit = now()
	}
	if r.metrics != nil {
		r.metrics.Submissions.Inc(0)
	}
	if p.workers == 1 || tasks == 1 {
		for t := 0; t < tasks; t++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					r.noteCancel(0)
					return err
				}
			}
			if err := r.execute(0, t); err != nil {
				return err
			}
		}
		return nil
	}
	k := p.workers
	if tasks < k {
		k = tasks
	}
	r.wg.Add(k)
	for i := 0; i < k; i++ {
		p.tasks <- r
	}
	r.wg.Wait()
	return r.result()
}

// morselsFor returns the number of size-sized morsels covering [0, n).
func morselsFor(n, size int) int {
	return (n + size - 1) / size
}

// ForMorsels carves the index range [0, n) into MorselSize-sized morsels
// and executes fn(worker, lo, hi) for each, with the same scheduling and
// error contract as ForEach. Indexes are covered exactly once; morsel
// boundaries are deterministic (only the worker assignment varies).
func (p *Pool) ForMorsels(n int, fn func(worker, lo, hi int) error) error {
	return p.ForMorselsCtx(p.ctx, n, fn)
}

// ForMorselsCtx is ForMorsels under an explicit context, with ForEachCtx
// cancellation semantics.
func (p *Pool) ForMorselsCtx(ctx context.Context, n int, fn func(worker, lo, hi int) error) error {
	size := p.morsel
	return p.ForEachCtx(ctx, morselsFor(n, size), func(w, t int) error {
		lo := t * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		return fn(w, lo, hi)
	})
}

// Run executes fn over the morsels of [0, n) on a transient pool sized by
// cfg — the one-shot form of NewPool + ForMorsels + Close for operators
// that parallelize a single phase.
func Run(cfg Config, n int, fn func(worker, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	if m := morselsFor(n, cfg.MorselSize); cfg.Workers > m {
		cfg.Workers = m // never start workers that could not claim a morsel
	}
	p := NewPool(cfg)
	defer p.Close()
	return p.ForMorsels(n, fn)
}

// RunTasks executes fn once per task in [0, tasks) on a transient pool
// sized by cfg — the one-shot form for discrete units of work (one task
// per partition, one per tape).
func RunTasks(cfg Config, tasks int, fn func(worker, task int) error) error {
	if tasks <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	if cfg.Workers > tasks {
		cfg.Workers = tasks
	}
	p := NewPool(cfg)
	defer p.Close()
	return p.ForEach(tasks, fn)
}

// Map executes fn for every task and gathers the results in task order —
// a deterministic gather regardless of which worker ran which task or in
// what order they completed. On error the returned slice is nil.
func Map[T any](p *Pool, tasks int, fn func(worker, task int) (T, error)) ([]T, error) {
	return MapCtx(p.ctx, p, tasks, fn)
}

// MapCtx is Map under an explicit context, with ForEachCtx cancellation
// semantics. On cancellation the returned slice is nil.
func MapCtx[T any](ctx context.Context, p *Pool, tasks int, fn func(worker, task int) (T, error)) ([]T, error) {
	out := make([]T, tasks)
	err := p.ForEachCtx(ctx, tasks, func(w, t int) error {
		v, err := fn(w, t)
		if err != nil {
			return err
		}
		out[t] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapMorsels executes fn over the morsels of [0, n) and gathers the
// results in morsel order (deterministic gather). On error the returned
// slice is nil.
func MapMorsels[T any](p *Pool, n int, fn func(worker, lo, hi int) (T, error)) ([]T, error) {
	size := p.morsel
	return Map(p, morselsFor(n, size), func(w, t int) (T, error) {
		lo := t * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		return fn(w, lo, hi)
	})
}

// Locals runs fn over the morsels of [0, n) with one lazily created
// accumulator per worker — the per-worker pre-aggregation pattern: each
// worker folds the morsels it claims into its own state with no
// synchronization, and the states that were actually used are returned in
// worker order for the caller's (sequential, deterministic) merge. init
// is called at most once per worker, from that worker.
func Locals[S any](p *Pool, n int, init func(worker int) (S, error), fn func(s S, worker, lo, hi int) error) ([]S, error) {
	states := make([]S, p.workers)
	used := make([]bool, p.workers)
	err := p.ForMorsels(n, func(w, lo, hi int) error {
		if !used[w] {
			s, err := init(w)
			if err != nil {
				return err
			}
			states[w], used[w] = s, true
		}
		return fn(states[w], w, lo, hi)
	})
	if err != nil {
		return nil, err
	}
	out := make([]S, 0, p.workers)
	for w, u := range used {
		if u {
			out = append(out, states[w])
		}
	}
	return out, nil
}
