package exec

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"repro/obs"
)

// EventKind classifies a trace event.
type EventKind uint8

const (
	// EvTask is a completed task execution: Start..End spans the
	// callback (one Chrome "complete" slice per task).
	EvTask EventKind = iota
	// EvClaim marks a worker claiming a task (morsel) from the shared
	// cursor.
	EvClaim
	// EvSteal marks a task executed by a non-home worker.
	EvSteal
	// EvError marks a task that returned an error (or panicked).
	EvError
	// EvCancel marks the cancellation observation that stopped a run.
	EvCancel
)

func (k EventKind) String() string {
	switch k {
	case EvTask:
		return "task"
	case EvClaim:
		return "claim"
	case EvSteal:
		return "steal"
	case EvError:
		return "error"
	case EvCancel:
		return "cancel"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one scheduling event. Timestamps are obs.Now nanoseconds
// (process-epoch monotonic), so events from several pools — and shard
// migration timings — share one timeline. End is zero for instant
// events (everything but EvTask).
type Event struct {
	Kind   EventKind
	Worker int32
	Task   int32
	Start  int64
	End    int64
}

// traceSlot pairs an event with its publication flag: the writer fills
// ev, then releases the slot with done.Store(1); a dumper only reads
// slots whose done it has observed as 1, so a dump racing the recorder
// sees each event wholly or not at all.
type traceSlot struct {
	ev   Event
	done atomic.Uint32
}

// workerRing is one worker's slice of the trace: a claim cursor plus a
// fixed slot array. The cursor is padded onto its own cache line because
// the pool's inline fast path (one worker or one task) records as
// "worker 0" from the submitting goroutine, concurrently with pool
// worker 0 — so a ring can briefly have two writers.
type workerRing struct {
	pos   atomic.Int64
	_     [cacheLinePad]byte
	slots []traceSlot
}

const cacheLinePad = 56 // 64-byte line minus the 8-byte cursor

// Trace is a fixed-capacity, allocation-free execution event ring: one
// ring per worker, recorded lock-free from the scheduling path and
// dumped on demand as Chrome trace JSON. Rings fill until full — once a
// worker's ring is full its further events are counted in Dropped
// rather than overwriting history, which keeps recording a single
// atomic claim and the dump race-free without wraparound tearing.
// Attach via Config.Trace; nil (the default) records nothing.
type Trace struct {
	rings   []workerRing
	dropped atomic.Uint64
}

// NewTrace returns a Trace with one ring per worker, each holding up to
// perWorker events (minimums 1 and 64).
func NewTrace(workers, perWorker int) *Trace {
	if workers < 1 {
		workers = 1
	}
	if perWorker < 64 {
		perWorker = 64
	}
	t := &Trace{rings: make([]workerRing, workers)}
	for i := range t.rings {
		t.rings[i].slots = make([]traceSlot, perWorker)
	}
	return t
}

// record appends ev to worker's ring, or counts a drop when full.
func (t *Trace) record(worker int, ev Event) {
	if worker < 0 || worker >= len(t.rings) {
		worker = 0
	}
	r := &t.rings[worker]
	i := r.pos.Add(1) - 1
	if i >= int64(len(r.slots)) {
		t.dropped.Add(1)
		return
	}
	s := &r.slots[i]
	s.ev = ev
	s.done.Store(1)
}

// Dropped returns the number of events discarded because a ring was
// full. A non-zero value means the trace shows a prefix of the run;
// size perWorker up (or trace a shorter window) to capture it all.
func (t *Trace) Dropped() uint64 { return t.dropped.Load() }

// Events returns a snapshot of every fully recorded event, ordered by
// start time (ties broken by worker then task) — safe to call while the
// pool is still recording.
func (t *Trace) Events() []Event {
	var out []Event
	for w := range t.rings {
		r := &t.rings[w]
		n := r.pos.Load()
		if n > int64(len(r.slots)) {
			n = int64(len(r.slots))
		}
		for i := int64(0); i < n; i++ {
			s := &r.slots[i]
			if s.done.Load() == 1 {
				out = append(out, s.ev)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.Task < b.Task
	})
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (chrome://tracing, also loadable at ui.perfetto.dev): "X" complete
// slices for tasks, "i" instants for claims/steals/errors/cancels, "M"
// metadata naming the process and worker threads. Timestamps and
// durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeJSON renders the trace snapshot as a Chrome trace-event
// JSON object ({"traceEvents": [...]}) on w. Load the output in
// chrome://tracing or ui.perfetto.dev: each worker renders as a thread,
// tasks as slices, scheduling events as instants.
func (t *Trace) WriteChromeJSON(w io.Writer) error {
	const pid = 1
	evs := t.Events()
	out := make([]chromeEvent, 0, len(evs)+len(t.rings)+1)
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": "exec.Pool"},
	})
	for wk := range t.rings {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: wk,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", wk)},
		})
	}
	for _, ev := range evs {
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Pid:  pid,
			Tid:  int(ev.Worker),
			Ts:   float64(ev.Start) / 1e3,
			Args: map[string]any{"task": ev.Task},
		}
		if ev.Kind == EvTask {
			ce.Ph = "X"
			ce.Name = fmt.Sprintf("task %d", ev.Task)
			dur := float64(ev.End-ev.Start) / 1e3
			ce.Dur = &dur
		} else {
			ce.Ph = "i"
			ce.S = "t" // thread-scoped instant
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// taskEvent records a completed task slice plus its derived instants.
func (t *Trace) taskEvent(worker, task int, start, end int64, steal bool, failed bool) {
	t.record(worker, Event{Kind: EvTask, Worker: int32(worker), Task: int32(task), Start: start, End: end})
	if steal {
		t.record(worker, Event{Kind: EvSteal, Worker: int32(worker), Task: int32(task), Start: start})
	}
	if failed {
		t.record(worker, Event{Kind: EvError, Worker: int32(worker), Task: int32(task), Start: end})
	}
}

// now is obs.Now, aliased so exec's hot path reads tidily.
func now() int64 { return obs.Now() }
