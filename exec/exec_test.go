package exec_test

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/exec"
	"repro/hashfn"
	"repro/internal/prng"
)

// TestForEachCoversEachTaskOnce: every task index runs exactly once, no
// matter how tasks and workers divide.
func TestForEachCoversEachTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, tasks := range []int{0, 1, 2, 7, 64, 1000} {
			p := exec.NewPool(exec.Config{Workers: workers})
			counts := make([]atomic.Int32, tasks)
			if err := p.ForEach(tasks, func(w, task int) error {
				if w < 0 || w >= p.Workers() {
					t.Errorf("worker index %d outside [0,%d)", w, p.Workers())
				}
				counts[task].Add(1)
				return nil
			}); err != nil {
				t.Fatalf("workers=%d tasks=%d: %v", workers, tasks, err)
			}
			p.Close()
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d tasks=%d: task %d ran %d times", workers, tasks, i, got)
				}
			}
		}
	}
}

// TestForMorselsCoversRange: morsels tile [0, n) exactly, each no wider
// than the configured morsel size.
func TestForMorselsCoversRange(t *testing.T) {
	const n = 10_000
	p := exec.NewPool(exec.Config{Workers: 4, MorselSize: 256})
	defer p.Close()
	covered := make([]atomic.Int32, n)
	if err := p.ForMorsels(n, func(_, lo, hi int) error {
		if hi-lo > p.MorselSize() || hi-lo <= 0 {
			t.Errorf("morsel [%d,%d) has width %d, want (0,%d]", lo, hi, hi-lo, p.MorselSize())
		}
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range covered {
		if got := covered[i].Load(); got != 1 {
			t.Fatalf("index %d covered %d times", i, got)
		}
	}
}

// TestSingleWorkerRunsInOrder: with one worker the schedule is the serial
// order — the oracle the parallel schedules are tested against.
func TestSingleWorkerRunsInOrder(t *testing.T) {
	p := exec.NewPool(exec.Config{Workers: 1})
	defer p.Close()
	var order []int
	if err := p.ForEach(50, func(_, task int) error {
		order = append(order, task)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, task := range order {
		if task != i {
			t.Fatalf("single-worker schedule out of order at %d: got task %d", i, task)
		}
	}
}

// TestFirstErrorPropagation: a failing task's error is returned and stops
// the scheduling of further tasks.
func TestFirstErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		p := exec.NewPool(exec.Config{Workers: workers})
		var ran atomic.Int32
		err := p.ForEach(1000, func(_, task int) error {
			ran.Add(1)
			if task == 3 {
				return sentinel
			}
			return nil
		})
		p.Close()
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error = %v, want %v", workers, err, sentinel)
		}
		// The inline single-worker path stops deterministically at the
		// failing task; the parallel path stops scheduling as soon as the
		// failure is observed, which is timing-dependent, so only the
		// serial count is asserted exactly.
		if workers == 1 {
			if n := ran.Load(); n != 4 {
				t.Fatalf("serial path ran %d tasks after error at task 3, want 4", n)
			}
		}
	}
}

// TestPoolCloseLeaksNoGoroutines is the shutdown contract: after Close
// returns, every worker goroutine has exited.
func TestPoolCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		p := exec.NewPool(exec.Config{Workers: 16})
		if err := p.ForMorsels(1<<12, func(_, lo, hi int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		p.Close()
	}
	// Close waits for worker exit, but the runtime may account a dying
	// goroutine for a moment; poll briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if now := runtime.NumGoroutine(); now <= before {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after pool shutdowns", before, now)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMapGathersInTaskOrder: Map's gather is deterministic — results land
// at their task index regardless of execution order.
func TestMapGathersInTaskOrder(t *testing.T) {
	p := exec.NewPool(exec.Config{Workers: 8})
	defer p.Close()
	out, err := exec.Map(p, 500, func(_, task int) (int, error) {
		return task * 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}
	if _, err := exec.Map(p, 10, func(_, task int) (int, error) {
		return 0, errors.New("nope")
	}); err == nil {
		t.Fatal("Map swallowed the task error")
	}
}

// TestMapMorselsGather: morsel-order gather with exact range tiling.
func TestMapMorselsGather(t *testing.T) {
	const n = 3000
	p := exec.NewPool(exec.Config{Workers: 4, MorselSize: 128})
	defer p.Close()
	sums, err := exec.MapMorsels(p, n, func(_, lo, hi int) (int, error) {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range sums {
		total += s
	}
	if want := n * (n - 1) / 2; total != want {
		t.Fatalf("morsel sums total %d, want %d", total, want)
	}
}

// TestLocalsPerWorker: per-worker accumulators see every index exactly
// once between them, and at most one accumulator exists per worker.
func TestLocalsPerWorker(t *testing.T) {
	const n = 5000
	p := exec.NewPool(exec.Config{Workers: 4, MorselSize: 64})
	defer p.Close()
	inits := make([]atomic.Int32, p.Workers())
	locals, err := exec.Locals(p, n,
		func(w int) (*[]int, error) {
			inits[w].Add(1)
			s := make([]int, 0, n)
			return &s, nil
		},
		func(s *[]int, _, lo, hi int) error {
			for i := lo; i < hi; i++ {
				*s = append(*s, i)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(locals) > p.Workers() {
		t.Fatalf("%d locals for %d workers", len(locals), p.Workers())
	}
	for w := range inits {
		if got := inits[w].Load(); got > 1 {
			t.Fatalf("worker %d initialized %d accumulators", w, got)
		}
	}
	seen := make([]bool, n)
	for _, s := range locals {
		for _, i := range *s {
			if seen[i] {
				t.Fatalf("index %d folded twice", i)
			}
			seen[i] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d never folded", i)
		}
	}
}

// TestRunAndRunTasks: the transient-pool conveniences cover their ranges
// and tolerate empty input.
func TestRunAndRunTasks(t *testing.T) {
	if err := exec.Run(exec.Config{}, 0, func(_, _, _ int) error {
		t.Error("fn called for empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := exec.RunTasks(exec.Config{}, 0, func(_, _ int) error {
		t.Error("fn called for zero tasks")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var sum atomic.Int64
	if err := exec.Run(exec.Config{Workers: 3, MorselSize: 10}, 100, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("Run sum = %d, want 4950", sum.Load())
	}
	var tasks atomic.Int64
	if err := exec.RunTasks(exec.Config{Workers: 3}, 17, func(_, task int) error {
		tasks.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tasks.Load() != 17 {
		t.Fatalf("RunTasks ran %d tasks, want 17", tasks.Load())
	}
}

// TestScatterStableAndComplete: Route regroups the column group-major,
// Orig is a permutation mapping staged slots to input lanes, every staged
// key actually routes to its group, and same-group keys keep input order
// (the stability that preserves duplicate-key semantics).
func TestScatterStableAndComplete(t *testing.T) {
	const groups = 8
	shift := uint(64 - 3)
	router := hashfn.MultFamily{}.New(99)
	rng := prng.NewXoshiro256(7)
	keys := make([]uint64, 10_000)
	for i := range keys {
		if i > 0 && rng.Uint64n(4) == 0 {
			keys[i] = keys[int(rng.Uint64n(uint64(i)))] // ~25% duplicates
		} else {
			keys[i] = rng.Next()
		}
	}
	var sc exec.Scatter
	for round := 0; round < 2; round++ { // second round reuses the buffers
		sc.Route(router, shift, groups, keys)
		if int(sc.Starts[groups]) != len(keys) {
			t.Fatalf("Starts[%d] = %d, want %d", groups, sc.Starts[groups], len(keys))
		}
		seen := make([]bool, len(keys))
		for j := 0; j < groups; j++ {
			lastOrig := int32(-1)
			for i := sc.Starts[j]; i < sc.Starts[j+1]; i++ {
				k := sc.Keys[i]
				if got := int(router.Hash(k) >> shift); got != j {
					t.Fatalf("staged slot %d: key routes to group %d, staged in %d", i, got, j)
				}
				oi := sc.Orig[i]
				if keys[oi] != k {
					t.Fatalf("staged slot %d: Orig %d holds key %d, staged %d", i, oi, keys[oi], k)
				}
				if seen[oi] {
					t.Fatalf("input lane %d staged twice", oi)
				}
				seen[oi] = true
				if oi <= lastOrig {
					t.Fatalf("group %d not stable: lane %d after %d", j, oi, lastOrig)
				}
				lastOrig = oi
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("input lane %d never staged", i)
			}
		}
	}
}
