package exec_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/exec"
	"repro/internal/fault"
)

// TestPoolCloseIdempotent is the regression for the double-Close panic:
// Close must be callable any number of times, sequentially or
// concurrently, and every call must wait for worker shutdown.
func TestPoolCloseIdempotent(t *testing.T) {
	p := exec.NewPool(exec.Config{Workers: 4})
	if err := p.ForEach(16, func(_, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // must not panic on the closed channel

	p = exec.NewPool(exec.Config{Workers: 4})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
	}
	wg.Wait()
}

// TestPanicContained: a panicking task must come back as a typed
// *PanicError carrying the task index and a stack trace — on both the
// parallel and the serial inline path — and the pool must stay usable.
func TestPanicContained(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := exec.NewPool(exec.Config{Workers: workers})
		err := p.ForEach(8, func(_, task int) error {
			if task == 3 {
				panic("boom")
			}
			return nil
		})
		var pe *exec.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error = %v, want *PanicError", workers, err)
		}
		if pe.Task != 3 {
			t.Errorf("workers=%d: PanicError.Task = %d, want 3", workers, pe.Task)
		}
		if pe.Value != "boom" {
			t.Errorf("workers=%d: PanicError.Value = %v, want boom", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError.Stack is empty", workers)
		}
		if !strings.Contains(pe.Error(), "task 3") {
			t.Errorf("workers=%d: Error() = %q, want task index in message", workers, pe.Error())
		}
		// Containment means the pool survives: the workers recovered, so
		// the next submission runs normally.
		if err := p.ForEach(8, func(_, _ int) error { return nil }); err != nil {
			t.Fatalf("workers=%d: pool unusable after contained panic: %v", workers, err)
		}
		p.Close()
	}
}

// TestInjectedPanic: the armed fault injector's Panic kind fires inside
// the worker before the callback runs, and surfaces through the same
// *PanicError containment.
func TestInjectedPanic(t *testing.T) {
	var rates [fault.NumKinds]float64
	rates[fault.Panic] = 1.0
	fault.Arm(fault.Config{Seed: 9, Rates: rates})
	defer fault.Disarm()

	var ran atomic.Int64
	p := exec.NewPool(exec.Config{Workers: 4})
	defer p.Close()
	err := p.ForEach(4, func(_, _ int) error {
		ran.Add(1)
		return nil
	})
	var pe *exec.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want *PanicError", err)
	}
	if !strings.Contains(fmt.Sprint(pe.Value), fault.ErrInjected.Error()) {
		t.Errorf("PanicError.Value = %v, want injected-fault marker", pe.Value)
	}
	// The injected panic fires before the callback: a panicked task is
	// never half-applied.
	if n := ran.Load(); n >= 4 {
		t.Errorf("all %d tasks ran despite rate-1.0 injected panics", n)
	}
}

// TestForEachCtxCancel: cancelling the context stops the claim cursor
// like a first error — running tasks finish, unclaimed tasks never
// start — and the context's error is returned.
func TestForEachCtxCancel(t *testing.T) {
	const workers, tasks = 4, 64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := exec.NewPool(exec.Config{Workers: workers})
	defer p.Close()

	var ran atomic.Int64
	err := p.ForEachCtx(ctx, tasks, func(_, task int) error {
		ran.Add(1)
		if task == 0 {
			cancel()
			return nil
		}
		<-ctx.Done() // running tasks observe cancellation and finish
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	// Claims stop after cancellation: at most the workers' in-flight
	// tasks (plus one claim racing the cancel per worker) ever ran.
	if n := ran.Load(); n >= tasks {
		t.Errorf("all %d tasks ran despite cancellation", n)
	}
}

// TestPoolCtxPreCancelled: a pool-level Config.Ctx that is already
// cancelled refuses every submission upfront, running nothing, on both
// the parallel and serial paths.
func TestPoolCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		p := exec.NewPool(exec.Config{Workers: workers, Ctx: ctx})
		var ran atomic.Int64
		err := p.ForEach(16, func(_, _ int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: error = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n != 0 {
			t.Errorf("workers=%d: %d tasks ran under a pre-cancelled pool context", workers, n)
		}
		if _, err := exec.Map(p, 4, func(_, t int) (int, error) { return t, nil }); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: Map error = %v, want context.Canceled", workers, err)
		}
		p.Close()
	}
}

// TestOverloaded: MaxInFlight admission control refuses the submission
// beyond the bound with ErrOverloaded before running anything, and
// admits again once the in-flight submission drains.
func TestOverloaded(t *testing.T) {
	p := exec.NewPool(exec.Config{Workers: 2, MaxInFlight: 1})
	defer p.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- p.ForEach(1, func(_, _ int) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started

	var ran atomic.Int64
	err := p.ForEach(4, func(_, _ int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, exec.ErrOverloaded) {
		t.Fatalf("second submission error = %v, want ErrOverloaded", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("refused submission ran %d tasks", n)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("first submission: %v", err)
	}
	if err := p.ForEach(4, func(_, _ int) error { return nil }); err != nil {
		t.Fatalf("submission after drain: %v", err)
	}
}

// TestSuppressedErrors: when several tasks fail concurrently, the first
// error wins the return slot and the rest are counted on the returned
// *SuppressedError instead of silently dropped.
func TestSuppressedErrors(t *testing.T) {
	const tasks = 4
	p := exec.NewPool(exec.Config{Workers: tasks})
	defer p.Close()

	var barrier sync.WaitGroup
	barrier.Add(tasks)
	err := p.ForEach(tasks, func(_, task int) error {
		// All tasks are in flight before any fails, so every failure
		// after the first must be suppressed-and-counted.
		barrier.Done()
		barrier.Wait()
		return fmt.Errorf("task %d failed", task)
	})
	var se *exec.SuppressedError
	if !errors.As(err, &se) {
		t.Fatalf("error = %v, want *SuppressedError", err)
	}
	if se.Count != tasks-1 {
		t.Errorf("SuppressedError.Count = %d, want %d", se.Count, tasks-1)
	}
	if se.First == nil || !errors.Is(err, se.First) {
		t.Errorf("SuppressedError.First = %v, not reachable via Unwrap", se.First)
	}
	if !strings.Contains(err.Error(), "+3 suppressed") {
		t.Errorf("Error() = %q, want suppressed count in message", err.Error())
	}
}
