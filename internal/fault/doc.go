// Package fault provides deterministic, seed-driven fault injection for
// the exec/shard/table stack.
//
// Injection points are compiled into the production code paths but cost
// a single atomic pointer load while disarmed (the default), so they
// stay resident in release builds without measurable overhead. Arming
// installs a schedule:
//
//	fault.Arm(fault.Config{
//		Seed: 42,
//		Rates: func() (r [fault.NumKinds]float64) {
//			r[fault.Alloc] = 0.5  // fail half the table allocations
//			r[fault.Full] = 0.01  // refuse 1% of mutations as "full"
//			r[fault.Panic] = 0.05 // panic 5% of exec worker tasks
//			r[fault.Stall] = 0.02 // stretch 2% of migration steps
//			return
//		}(),
//	})
//	defer fault.Disarm()
//
// Decisions are deterministic: whether the n-th occurrence of a kind
// fires depends only on (seed, kind, n), never on goroutine scheduling.
// Under concurrency the assignment of occurrence indices to call sites
// races, so total fire counts per run are reproducible in aggregate
// (same number of occurrences, same number of fires for a serial
// replay) rather than per call site.
//
// The four kinds map onto the stack's failure contracts:
//
//   - Alloc   -> shard allocator failure -> degraded-but-serving shard,
//     *shard.DegradedError on refused inserts, seeded-backoff retry.
//   - Full    -> synthesized table refusal -> *table.FullError from
//     table.Handle, grow-on-refusal inside the shard engine.
//   - Panic   -> worker panic in exec -> contained *exec.PanicError.
//   - Stall   -> scheduler yields inside migration steps -> widened
//     race windows for -race chaos runs.
//
// The package is internal: it exists for workload.RunChaos, the
// FuzzFaultSchedule target, and robustness tests — not as a public
// chaos API.
package fault
