package fault

import (
	"errors"
	"testing"
)

// TestDisarmedNeverFires pins the disarmed no-op contract.
func TestDisarmedNeverFires(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("Armed() = true after Disarm")
	}
	for k := Alloc; int(k) < NumKinds; k++ {
		for i := 0; i < 1000; i++ {
			if Should(k) {
				t.Fatalf("disarmed Should(%v) fired", k)
			}
		}
	}
	MaybeStall() // must be a no-op, not a crash
	if c := Snapshot(); c.Seen != [NumKinds]uint64{} {
		t.Fatalf("disarmed Snapshot counted occurrences: %+v", c)
	}
}

// TestDeterministicSchedule replays the same serial occurrence stream
// twice and demands bit-identical decisions, and checks rate endpoints.
func TestDeterministicSchedule(t *testing.T) {
	defer Disarm()
	cfg := Config{Seed: 99}
	cfg.Rates[Alloc] = 0.3
	cfg.Rates[Full] = 1.0
	cfg.Rates[Panic] = 0.0

	record := func() []bool {
		Arm(cfg)
		var got []bool
		for i := 0; i < 4096; i++ {
			got = append(got, Should(Alloc))
		}
		return got
	}
	a, b := record(), record()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("occurrence %d decided differently across arms", i)
		}
		if a[i] {
			fired++
		}
	}
	// 30% rate over 4096 draws: demand the ballpark, not the exact count.
	if fired < 1000 || fired > 1500 {
		t.Fatalf("rate 0.3 fired %d/4096 times", fired)
	}

	Arm(cfg)
	for i := 0; i < 64; i++ {
		if !Should(Full) {
			t.Fatalf("rate 1.0 did not fire at occurrence %d", i)
		}
		if Should(Panic) {
			t.Fatalf("rate 0.0 fired at occurrence %d", i)
		}
	}
	c := Snapshot()
	if c.Seen[Full] != 64 || c.Fired[Full] != 64 {
		t.Fatalf("Full counters = %d seen / %d fired, want 64/64", c.Seen[Full], c.Fired[Full])
	}
	if c.Fired[Panic] != 0 {
		t.Fatalf("Panic fired %d times at rate 0", c.Fired[Panic])
	}
}

// TestErrInjectedIsRoot keeps the sentinel stable for errors.Is chains.
func TestErrInjectedIsRoot(t *testing.T) {
	if !errors.Is(ErrInjected, ErrInjected) {
		t.Fatal("ErrInjected does not match itself")
	}
	if ErrInjected.Error() == "" {
		t.Fatal("empty ErrInjected message")
	}
}
