package fault

import (
	"errors"
	"math"
	"runtime"
	"sync/atomic"

	"repro/internal/prng"
)

// Kind enumerates the injection points compiled into the stack. Each
// kind has its own occurrence counter, so the fire/no-fire decision for
// the n-th occurrence of a kind depends only on (seed, kind, n) — never
// on scheduling.
type Kind uint8

const (
	// Alloc fails a table allocation in the shard engine (construction,
	// 2x successor allocation, and rebuilds all pass through the same
	// chokepoint), exercising the degraded-but-serving path.
	Alloc Kind = iota
	// Full refuses a mutation as if the underlying table were full: at
	// the table.Handle entry points it synthesizes a *table.FullError,
	// inside the shard engine's locked paths it forces the
	// grow-on-refusal machinery (and, during migration, the
	// park-and-rebuild path) to run.
	Full
	// Panic panics an exec worker task; the pool must contain it and
	// return a typed *exec.PanicError instead of crashing the process.
	Panic
	// Stall delays a shard migration step by yielding the scheduler,
	// widening the window in which concurrent mutations observe a
	// half-migrated shard.
	Stall

	// NumKinds is the number of injection kinds.
	NumKinds = int(Stall) + 1
)

// String names the kind for counters and logs.
func (k Kind) String() string {
	switch k {
	case Alloc:
		return "alloc"
	case Full:
		return "full"
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	}
	return "unknown"
}

// ErrInjected is the root of every error the injector synthesizes.
// Chaos harnesses use errors.Is(err, fault.ErrInjected) to distinguish
// injected failures from organic ones.
var ErrInjected = errors.New("fault: injected failure")

// Config arms the injector with a deterministic fault schedule.
type Config struct {
	// Seed drives every fire/no-fire decision. The same seed and the
	// same per-kind occurrence index always decide the same way.
	Seed uint64
	// Rates holds the per-kind fire probability in [0,1]. A zero rate
	// disables the kind.
	Rates [NumKinds]float64
	// StallYields is how many scheduler yields one Stall hit performs
	// (default 8).
	StallYields int
}

// plan is an armed schedule. Rates are pre-scaled to uint64 thresholds
// so the hot-path decision is one hash and one compare.
type plan struct {
	seed      uint64
	threshold [NumKinds]uint64
	yields    int
	seen      [NumKinds]atomic.Uint64
	fired     [NumKinds]atomic.Uint64
}

// active is the armed plan; nil means disarmed. Every injection point
// costs exactly one atomic pointer load when disarmed.
var active atomic.Pointer[plan]

// Arm installs a fault schedule process-wide. Arm after constructing
// the structures under test unless construction itself is the target
// (the Alloc kind fires in shard-engine construction too).
func Arm(cfg Config) {
	p := &plan{seed: cfg.Seed, yields: cfg.StallYields}
	if p.yields <= 0 {
		p.yields = 8
	}
	for k, r := range cfg.Rates {
		switch {
		case r <= 0:
			p.threshold[k] = 0
		case r >= 1:
			p.threshold[k] = math.MaxUint64
		default:
			p.threshold[k] = uint64(r * float64(math.MaxUint64))
		}
	}
	active.Store(p)
}

// Disarm removes the schedule; all injection points become no-ops.
func Disarm() { active.Store(nil) }

// Armed reports whether a schedule is installed.
func Armed() bool { return active.Load() != nil }

// Should reports whether the current occurrence of kind k fires. It is
// safe (and free beyond one atomic load) to call when disarmed.
func Should(k Kind) bool {
	p := active.Load()
	if p == nil {
		return false
	}
	return p.should(k)
}

func (p *plan) should(k Kind) bool {
	th := p.threshold[k]
	if th == 0 {
		return false
	}
	n := p.seen[k].Add(1) - 1
	// Deterministic per (seed, kind, occurrence): SplitMix64 finalizer
	// over the three, compared against the pre-scaled rate threshold.
	if prng.Mix(p.seed^(uint64(k)+1)<<56^n) >= th {
		return false
	}
	p.fired[k].Add(1)
	return true
}

// MaybeStall yields the scheduler when the Stall kind fires, stretching
// the critical section it is called from. No-op when disarmed.
func MaybeStall() {
	p := active.Load()
	if p == nil {
		return
	}
	if !p.should(Stall) {
		return
	}
	for i := 0; i < p.yields; i++ {
		runtime.Gosched()
	}
}

// Counts is a snapshot of per-kind occurrence and fire counters.
type Counts struct {
	Seen  [NumKinds]uint64
	Fired [NumKinds]uint64
}

// Snapshot returns the armed plan's counters (zero when disarmed).
func Snapshot() Counts {
	var c Counts
	p := active.Load()
	if p == nil {
		return c
	}
	for k := 0; k < NumKinds; k++ {
		c.Seen[k] = p.seen[k].Load()
		c.Fired[k] = p.fired[k].Load()
	}
	return c
}
