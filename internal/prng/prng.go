// Package prng provides small, fast, deterministic pseudo-random number
// generators used throughout the repository for seed derivation, key
// generation and shuffling.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny 64-bit generator with a single u64 of state. It is
//     primarily used to derive independent seeds and to fill tabulation
//     tables, mirroring the role of the "truly random" bits the paper
//     assumes for Tab.
//   - Xoshiro256: xoshiro256** by Blackman and Vigna, used for bulk key
//     generation where a longer period and better equidistribution matter.
//
// Neither generator is cryptographically secure; they are experiment
// infrastructure. Both are fully deterministic given a seed, which makes
// every experiment in this repository reproducible bit-for-bit.
package prng

import "math/bits"

// SplitMix64 is a 64-bit state pseudo-random generator. The zero value is a
// valid generator (seeded with 0). It is the generator recommended for
// seeding xoshiro-family generators.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next pseudo-random 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix applies the SplitMix64 output function to x without advancing any
// state. It is a convenient stateless 64-bit mixer.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 implements the xoshiro256** generator. Use NewXoshiro256 to
// obtain a correctly seeded instance; the zero value is invalid (all-zero
// state is a fixed point) and is repaired lazily to a fixed nonzero state.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a xoshiro256** generator seeded from seed via
// SplitMix64, as recommended by the algorithm's authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	x := &Xoshiro256{}
	x.s[0] = sm.Next()
	x.s[1] = sm.Next()
	x.s[2] = sm.Next()
	x.s[3] = sm.Next()
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return x
}

// Next returns the next pseudo-random 64-bit value.
func (x *Xoshiro256) Next() uint64 {
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	result := bits.RotateLeft64(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = bits.RotateLeft64(x.s[3], 45)
	return result
}

// Uint64n returns a uniformly distributed value in [0, n). It panics if n is
// zero. It uses Lemire's multiply-shift rejection method, which avoids the
// modulo bias of naive `Next() % n` while performing a single multiplication
// in the common case.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with n == 0")
	}
	for {
		v := x.Next()
		hi, lo := bits.Mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}

// Shuffle pseudo-randomly permutes the first n elements using the
// Fisher-Yates algorithm, calling swap(i, j) for each exchange.
func (x *Xoshiro256) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		swap(i, j)
	}
}

// ShuffleUint64 permutes the slice in place.
func (x *Xoshiro256) ShuffleUint64(keys []uint64) {
	x.Shuffle(len(keys), func(i, j int) {
		keys[i], keys[j] = keys[j], keys[i]
	})
}
