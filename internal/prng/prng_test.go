package prng

import (
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the canonical splitmix64.c with seed 0:
	// successive outputs.
	sm := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Fatalf("SplitMix64(0) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestMixMatchesStatelessApplication(t *testing.T) {
	prop := func(x uint64) bool {
		sm := NewSplitMix64(x)
		return sm.Next() == Mix(x)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := NewXoshiro256(99), NewXoshiro256(99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed xoshiro diverged")
		}
	}
	c := NewXoshiro256(100)
	same := 0
	for i := 0; i < 1000; i++ {
		if b.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds agreed %d/1000 times", same)
	}
}

func TestXoshiroZeroStateRepair(t *testing.T) {
	var x Xoshiro256 // all-zero state is a fixed point if not repaired
	if x.Next() == 0 && x.Next() == 0 && x.Next() == 0 {
		t.Fatal("zero-state xoshiro emitted zeros; repair failed")
	}
}

func TestUint64nRange(t *testing.T) {
	x := NewXoshiro256(1)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := x.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	x.Uint64n(0)
}

func TestUint64nUniform(t *testing.T) {
	x := NewXoshiro256(2)
	const n = 10
	const draws = 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[x.Uint64n(n)]++
	}
	want := draws / n
	for v, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("value %d drawn %d times, want ~%d", v, c, want)
		}
	}
}

func TestIntn(t *testing.T) {
	x := NewXoshiro256(3)
	for i := 0; i < 1000; i++ {
		if v := x.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	x.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(4)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestShuffleUint64IsPermutation(t *testing.T) {
	x := NewXoshiro256(5)
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	x.ShuffleUint64(keys)
	seen := make([]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("key %d appears twice after shuffle", k)
		}
		seen[k] = true
	}
	moved := 0
	for i, k := range keys {
		if uint64(i) != k {
			moved++
		}
	}
	if moved < len(keys)/2 {
		t.Fatalf("shuffle moved only %d/%d elements", moved, len(keys))
	}
}
