package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// taxonomyPkgs are the packages that define the typed error taxonomy:
// table (ErrFull, *FullError), exec (ErrOverloaded, *PanicError,
// *SuppressedError), shard (*DegradedError), and internal/fault
// (ErrInjected). Matching is by package-path base, so the fixture stubs
// of the analysistest harness exercise the same code paths.
var taxonomyPkgs = map[string]bool{
	"table": true,
	"exec":  true,
	"shard": true,
	"fault": true,
}

// isTaxonomyPkg matches taxonomy packages by path base, excluding the
// one standard-library collision (os/exec, whose *ExitError would
// otherwise masquerade as taxonomy).
func isTaxonomyPkg(p *types.Package) bool {
	return p != nil && taxonomyPkgs[PkgBase(p.Path())] && p.Path() != "os/exec"
}

// ErrTaxonomy enforces the PR 6 error-taxonomy contract end to end:
// sentinel errors from the taxonomy packages are matched with errors.Is
// (never == / !=), the concrete *XxxError structs with errors.As (never
// type asserts or type switches), and an error that is re-surfaced
// through fmt.Errorf or panic(fmt.Sprintf(...)) must keep the chain
// intact with %w. Each violation silently severs errors.Is(err,
// table.ErrFull) somewhere above it.
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc:  "require errors.Is/errors.As for taxonomy errors and %w when re-surfacing them",
	Run:  runErrTaxonomy,
}

// isSentinelUse reports whether e is a use of a package-level error
// sentinel (ErrFull, ErrOverloaded, ErrInjected, ...) from a taxonomy
// package.
func (p *Pass) isSentinelUse(e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := p.TypesInfo.Uses[id].(*types.Var)
	if !ok || !isTaxonomyPkg(v.Pkg()) {
		return "", false
	}
	if !strings.HasPrefix(v.Name(), "Err") || !implementsError(v.Type()) {
		return "", false
	}
	// Package-level sentinels only: locals named errX are not taxonomy.
	if v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	return v.Name(), true
}

// isTaxonomyErrorType reports whether the type expression e denotes a
// (pointer to a) concrete error struct of the taxonomy: a named type
// whose name ends in "Error", declared in a taxonomy package, whose
// pointer implements error.
func (p *Pass) isTaxonomyErrorType(e ast.Expr) (string, bool) {
	tv, ok := p.TypesInfo.Types[e]
	if !ok || !tv.IsType() {
		return "", false
	}
	named := namedFrom(tv.Type)
	if named == nil {
		return "", false
	}
	obj := named.Obj()
	if obj == nil || !isTaxonomyPkg(obj.Pkg()) {
		return "", false
	}
	if !strings.HasSuffix(obj.Name(), "Error") {
		return "", false
	}
	if !implementsError(named) && !implementsError(types.NewPointer(named)) {
		return "", false
	}
	return obj.Name(), true
}

// isFmtCall reports whether call is fmt.<name>(...).
func (p *Pass) isFmtCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "fmt"
}

// formatLacksW reports whether call's first argument is a string literal
// without a %w verb, along with whether the literal was inspectable.
func formatLacksW(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return false // dynamic format: give the benefit of the doubt
	}
	return !strings.Contains(lit.Value, "%w")
}

// hasErrorArg reports whether any value argument (after the format)
// statically implements error.
func (p *Pass) hasErrorArg(call *ast.CallExpr) bool {
	for _, arg := range call.Args[1:] {
		if implementsError(p.typeOf(arg)) {
			return true
		}
	}
	return false
}

func runErrTaxonomy(pass *Pass) error {
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if name, ok := pass.isSentinelUse(side); ok {
						pass.Reportf(n.Pos(), "%s compared with %s: use errors.Is — the sentinel is wrapped (FullError, DegradedError, %%w chains) and == misses every wrapped occurrence", name, n.Op)
					}
				}

			case *ast.TypeAssertExpr:
				if n.Type == nil {
					return true // the x.(type) of a type switch; handled below
				}
				if !isErrorInterface(pass.typeOf(n.X)) {
					return true
				}
				if name, ok := pass.isTaxonomyErrorType(n.Type); ok {
					pass.Reportf(n.Pos(), "type assert to *%s on an error: use errors.As — asserts miss the wrapped chain", name)
				}

			case *ast.TypeSwitchStmt:
				assert, ok := switchAssert(n)
				if !ok || !isErrorInterface(pass.typeOf(assert.X)) {
					return true
				}
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, te := range cc.List {
						if name, ok := pass.isTaxonomyErrorType(te); ok {
							pass.Reportf(te.Pos(), "type switch case *%s on an error: use errors.As — switches miss the wrapped chain", name)
						}
					}
				}

			case *ast.CallExpr:
				if pass.isFmtCall(n, "Errorf") && pass.hasErrorArg(n) && formatLacksW(n) {
					pass.Reportf(n.Pos(), "error re-surfaced through fmt.Errorf without %%w: the taxonomy chain (errors.Is/As through FullError, DegradedError, ...) is severed here")
				}
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" && len(n.Args) == 1 {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						if inner, ok := n.Args[0].(*ast.CallExpr); ok && pass.isFmtCall(inner, "Sprintf") && pass.hasErrorArg(inner) {
							pass.Reportf(n.Pos(), "panic(fmt.Sprintf(..., err)) flattens the typed error to a string: panic a wrapped error (fmt.Errorf with %%w) so recover sites keep errors.Is/As")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// switchAssert extracts the x.(type) assertion of a type switch.
func switchAssert(n *ast.TypeSwitchStmt) (*ast.TypeAssertExpr, bool) {
	switch s := n.Assign.(type) {
	case *ast.ExprStmt:
		a, ok := s.X.(*ast.TypeAssertExpr)
		return a, ok
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			a, ok := s.Rhs[0].(*ast.TypeAssertExpr)
			return a, ok
		}
	}
	return nil, false
}
