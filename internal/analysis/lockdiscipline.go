package analysis

import (
	"go/ast"
	"go/types"
)

// LockDiscipline enforces the shard package's locking rules, the ones
// the incremental-resize and degraded-mode machinery depend on:
//
//  1. Every mu.Lock()/mu.RLock() has a matching Unlock()/RUnlock() on
//     the same receiver somewhere in the same function (deferred or
//     explicit) — a shard lock never leaks out of the function that
//     took it.
//  2. The raw table factory (the Config.NewTable function value, stored
//     as Engine.create) is invoked only inside the allocTable
//     chokepoint, so every allocation is fallible in exactly one place
//     and the fault injector's Alloc hook covers all of them.
//  3. No call into the exec package while a shard lock is held: a pool
//     submission under a shard lock can deadlock against a task that
//     needs the same shard (the documented must-not-call-back-into-the-
//     engine contract, checked from the other side).
//
// The analysis is intra-procedural and syntactic about lock identity
// (receivers are matched textually), which is exactly as strong as the
// package's own convention: shard takes locks and releases them in the
// same function, on the same expression.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "shard locking rules: paired Lock/Unlock, allocTable chokepoint, no exec calls under a shard lock",
	Run:  runLockDiscipline,
}

// lockCall describes one mutex method call: the textual receiver and
// whether it is the read flavor.
type lockCall struct {
	recv string
	read bool
}

// asMutexCall decodes call as recv.<method>() on a sync.Mutex or
// sync.RWMutex and returns the receiver text, the method name, and ok.
func (p *Pass) asMutexCall(call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	t := p.typeOf(sel.X)
	if !typeIs(t, "sync", "Mutex") && !typeIs(t, "sync", "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

func runLockDiscipline(pass *Pass) error {
	if PkgBase(pass.Pkg.Path()) != "shard" {
		return nil
	}
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockPairing(pass, fd)
			checkFactoryChokepoint(pass, fd)
			scanHeldRegions(pass, fd.Body.List, nil)
		}
	}
	return nil
}

// checkLockPairing requires a matching unlock for every lock taken in fd.
func checkLockPairing(pass *Pass, fd *ast.FuncDecl) {
	type site struct {
		pos  []ast.Node
		call lockCall
	}
	var locks []site
	unlocks := map[lockCall]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := pass.asMutexCall(call)
		if !ok {
			return true
		}
		switch method {
		case "Lock":
			locks = append(locks, site{[]ast.Node{call}, lockCall{recv, false}})
		case "RLock":
			locks = append(locks, site{[]ast.Node{call}, lockCall{recv, true}})
		case "Unlock":
			unlocks[lockCall{recv, false}] = true
		case "RUnlock":
			unlocks[lockCall{recv, true}] = true
		}
		return true
	})
	for _, l := range locks {
		if !unlocks[l.call] {
			verb := "Lock"
			want := "Unlock"
			if l.call.read {
				verb, want = "RLock", "RUnlock"
			}
			pass.Reportf(l.pos[0].Pos(), "%s.%s() without a matching %s in this function: a shard lock must be released where it was taken (defer it)", l.call.recv, verb, want)
		}
	}
}

// checkFactoryChokepoint flags raw table-factory invocations outside
// allocTable.
func checkFactoryChokepoint(pass *Pass, fd *ast.FuncDecl) {
	if fd.Name.Name == "allocTable" {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		default:
			return true
		}
		if name == "create" || name == "NewTable" {
			pass.Reportf(call.Pos(), "raw table-factory call outside allocTable: every allocation must pass through the one fallible chokepoint (fault injection, degraded-mode accounting)")
		}
		return true
	})
}

// scanHeldRegions walks a statement list tracking which mutexes are
// held, and flags exec-package calls made while any lock is. held maps
// receiver text to the read/write flavor last taken; nested blocks see
// a copy, so branch-local locks do not leak into siblings.
func scanHeldRegions(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	held = copyHeld(held)
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if recv, method, ok := pass.asMutexCall(call); ok {
					switch method {
					case "Lock", "RLock":
						held[recv] = true
					case "Unlock", "RUnlock":
						delete(held, recv)
					}
					continue
				}
			}
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held to function end by
			// design; the region below stays "held".
			if _, _, ok := pass.asMutexCall(&ast.CallExpr{Fun: s.Call.Fun}); ok {
				continue
			}
		}
		if len(held) > 0 {
			flagExecCalls(pass, stmt, held)
		}
		// Recurse into nested statement lists with the current view.
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			scanHeldRegions(pass, s.List, held)
		case *ast.IfStmt:
			scanHeldRegions(pass, s.Body.List, held)
			if el, ok := s.Else.(*ast.BlockStmt); ok {
				scanHeldRegions(pass, el.List, held)
			}
		case *ast.ForStmt:
			scanHeldRegions(pass, s.Body.List, held)
		case *ast.RangeStmt:
			scanHeldRegions(pass, s.Body.List, held)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanHeldRegions(pass, cc.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanHeldRegions(pass, cc.Body, held)
				}
			}
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// flagExecCalls reports exec-package calls inside stmt (excluding nested
// statement lists, which the caller recurses into separately with the
// right held set, but including expressions like call arguments).
func flagExecCalls(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt:
			return false // handled by the caller's recursion
		}
		if call, ok := n.(*ast.CallExpr); ok && pass.isExecCall(call) {
			var some string
			for recv := range held {
				some = recv
				break
			}
			pass.Reportf(call.Pos(), "call into exec while %s is locked: a pool submission under a shard lock can deadlock against tasks touching the same shard — release the lock first", some)
		}
		return true
	})
}
